// Command smvload drives an smvd server with a mixed workload and
// reports cache effectiveness: cold-compile latency, warm-query
// latency, sustained QPS, and verdict divergences against the known
// truth of the generated arbiter models.
//
// With -addr it targets a running server over HTTP; without, it runs
// an in-process server (useful under -race and in CI, where it doubles
// as the concurrency smoke test).
//
// Usage:
//
//	smvload [-addr http://localhost:8611] [-sessions 64] [-clients 8]
//	        [-workers 16] [-duration 5s] [-cache-dir DIR] [-o report.json]
//
// Workload: -sessions distinct arbiter models (same structure, unique
// tag, so each gets its own content-hash session). Phase 1 compiles
// each once (cold). Phase 2 hammers them from -workers goroutines for
// -duration, mixing hot queries, bad-model requests and tiny-deadline
// requests. Every verdict is checked against the arbiter's known
// truth; any divergence fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/modelgen"
	"repro/internal/smvd"
)

type checkFn func(*smvd.CheckRequest) (*smvd.CheckResponse, error)

// Report is the JSON written by -o.
type Report struct {
	Sessions       int     `json:"sessions"`
	Clients        int     `json:"clients"`
	Workers        int     `json:"workers"`
	ColdMs         float64 `json:"cold_ms_p50"`
	ColdMaxMs      float64 `json:"cold_ms_max"`
	WarmMs         float64 `json:"warm_ms_p50"`
	WarmSpeedup    float64 `json:"warm_speedup"`
	QPS            float64 `json:"qps"`
	Queries        uint64  `json:"queries"`
	SpecsChecked   uint64  `json:"specs_checked"`
	BadRejected    uint64  `json:"bad_rejected"`
	DeadlineMisses uint64  `json:"deadline_misses"`
	Divergences    uint64  `json:"divergences"`
	Errors         uint64  `json:"errors"`
}

func main() {
	addr := flag.String("addr", "", "smvd base URL (empty: in-process server)")
	sessions := flag.Int("sessions", 64, "distinct models (= concurrent sessions)")
	clients := flag.Int("clients", 8, "arbiter clients per model")
	workers := flag.Int("workers", 16, "concurrent query goroutines")
	duration := flag.Duration("duration", 5*time.Second, "phase-2 hammer duration")
	cacheDir := flag.String("cache-dir", "", "in-process server's disk cache dir")
	out := flag.String("o", "", "write JSON report here")
	flag.Parse()

	rep, err := run(*addr, *sessions, *clients, *workers, *duration, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cold p50 %.2fms (max %.2fms)  warm p50 %.3fms  speedup %.1fx  %.0f qps\n",
		rep.ColdMs, rep.ColdMaxMs, rep.WarmMs, rep.WarmSpeedup, rep.QPS)
	fmt.Printf("queries %d  specs %d  bad rejected %d  deadline misses %d  errors %d  divergences %d\n",
		rep.Queries, rep.SpecsChecked, rep.BadRejected, rep.DeadlineMisses, rep.Errors, rep.Divergences)
	if *out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if rep.Divergences > 0 {
		fmt.Fprintln(os.Stderr, "smvload: verdicts diverged from known truth")
		os.Exit(1)
	}
}

func run(addr string, sessions, clients, workers int, duration time.Duration, cacheDir string) (*Report, error) {
	check, err := makeClient(addr, sessions, cacheDir)
	if err != nil {
		return nil, err
	}

	specs, holds := modelgen.ArbiterSpecs(clients)
	models := make([]string, sessions)
	base := modelgen.ArbiterSource(clients)
	for i := range models {
		// A unique tag gives each copy its own content hash — distinct
		// sessions with identical checking behaviour.
		models[i] = fmt.Sprintf("-- smvload session %d\n%s", i, base)
	}

	rep := &Report{Sessions: sessions, Clients: clients, Workers: workers}
	var divergences, errors, badRejected, deadlineMisses, queries, specsChecked atomic.Uint64

	verify := func(resp *smvd.CheckResponse) {
		for i, v := range resp.Verdicts {
			specsChecked.Add(1)
			if v.Error == "smvd: deadline exceeded" {
				deadlineMisses.Add(1)
				continue
			}
			if v.Error != "" || v.Holds != holds[i] || (!v.Holds && !v.Validated) {
				divergences.Add(1)
				fmt.Fprintf(os.Stderr, "smvload: divergence on %q: holds=%v want %v err=%q\n",
					v.Spec, v.Holds, holds[i], v.Error)
			}
		}
	}

	// Phase 1: cold compile every session, bounded concurrency.
	coldMs := make([]float64, sessions)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for i := range models {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			resp, err := check(&smvd.CheckRequest{Model: models[i], Specs: specs})
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			queries.Add(1)
			coldMs[i] = float64(time.Since(start)) / float64(time.Millisecond)
			if resp.Warm {
				// A pre-warmed disk cache is fine, but then this is not a
				// cold measurement; flag it by zeroing.
				coldMs[i] = 0
			}
			verify(resp)
		}(i)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, fmt.Errorf("cold phase: %w", err)
	}
	sort.Float64s(coldMs)
	rep.ColdMs = coldMs[len(coldMs)/2]
	rep.ColdMaxMs = coldMs[len(coldMs)-1]

	// Phase 2: hammer. Mostly hot queries; a sprinkle of bad models and
	// tiny-deadline requests to exercise the error paths under load.
	stop := time.Now().Add(duration)
	var warmMu sync.Mutex
	var warmMs []float64
	hammerStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(stop) {
				switch roll := rng.Intn(100); {
				case roll < 3:
					if _, err := check(&smvd.CheckRequest{Model: "MODULE main\nVAR x : oops(;"}); err != nil {
						badRejected.Add(1)
					} else {
						errors.Add(1) // a bad model must NOT succeed
					}
				case roll < 6:
					resp, err := check(&smvd.CheckRequest{
						Model: models[rng.Intn(len(models))], Specs: specs, DeadlineMs: 1,
					})
					if err == nil {
						queries.Add(1)
						for _, v := range resp.Verdicts {
							if v.Error == "smvd: deadline exceeded" {
								deadlineMisses.Add(1)
							}
						}
					} else {
						deadlineMisses.Add(1)
					}
				default:
					m := models[rng.Intn(len(models))]
					start := time.Now()
					resp, err := check(&smvd.CheckRequest{Model: m, Specs: specs})
					if err != nil {
						errors.Add(1)
						continue
					}
					queries.Add(1)
					if resp.Warm {
						warmMu.Lock()
						warmMs = append(warmMs, float64(time.Since(start))/float64(time.Millisecond))
						warmMu.Unlock()
					}
					verify(resp)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(hammerStart)

	if len(warmMs) > 0 {
		sort.Float64s(warmMs)
		rep.WarmMs = warmMs[len(warmMs)/2]
		if rep.WarmMs > 0 {
			rep.WarmSpeedup = rep.ColdMs / rep.WarmMs
		}
	}
	rep.QPS = float64(queries.Load()) / elapsed.Seconds()
	rep.Queries = queries.Load()
	rep.SpecsChecked = specsChecked.Load()
	rep.BadRejected = badRejected.Load()
	rep.DeadlineMisses = deadlineMisses.Load()
	rep.Divergences = divergences.Load()
	rep.Errors = errors.Load()
	return rep, nil
}

// makeClient returns the query function: HTTP against -addr, or an
// in-process server sized for the workload.
func makeClient(addr string, sessions int, cacheDir string) (checkFn, error) {
	if addr == "" {
		cache, err := smvd.NewCache(sessions, 0, cacheDir)
		if err != nil {
			return nil, err
		}
		sv := smvd.NewServer(cache)
		return sv.Check, nil
	}
	client := &http.Client{}
	url := addr + "/check"
	return func(req *smvd.CheckRequest) (*smvd.CheckResponse, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		hr, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			var msg bytes.Buffer
			msg.ReadFrom(hr.Body)
			return nil, fmt.Errorf("smvd: %s: %s", hr.Status, bytes.TrimSpace(msg.Bytes()))
		}
		var resp smvd.CheckResponse
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}, nil
}
