// Command arbiter reproduces the paper's case study end to end
// (experiment E1): it compiles the reconstructed Seitz speed-independent
// arbiter to a symbolic model, counts its reachable states, checks the
// liveness specification AG(tr1 -> AF ta1) under the per-gate fairness
// constraints, and prints the counterexample trace with the prefix and
// cycle lengths the paper reports for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/mc"
)

func main() {
	delta := flag.Bool("delta", true, "print the trace as per-state deltas")
	strategy := flag.String("strategy", "simple", "cycle-closure strategy: simple | precompute")
	flag.Parse()

	start := time.Now()
	netlist := circuit.SeitzArbiter()
	model, err := netlist.Compile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("Seitz arbiter (reconstruction): %d nets, %d fairness constraints\n",
		len(model.Vars), len(model.Fair))

	reach, iters := model.Reachable()
	fmt.Printf("reachable states: %.0f in %d iterations (paper: 33,633 on the original netlist)\n",
		model.CountStates(reach), iters)

	checker := mc.New(model)
	gen := core.NewGenerator(checker)
	if *strategy == "precompute" {
		gen.Strategy = core.StrategyPrecompute
	}

	for _, spec := range circuit.ArbiterSpecs {
		f := ctl.MustParse(spec)
		t0 := time.Now()
		holds, tr, err := gen.CounterexampleInit(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec, err)
			os.Exit(2)
		}
		if holds {
			fmt.Printf("-- specification %s is true   (%.2fs)\n", spec, time.Since(t0).Seconds())
			continue
		}
		fmt.Printf("-- specification %s is false  (%.2fs)\n", spec, time.Since(t0).Seconds())
		fmt.Printf("-- counterexample: %d states, prefix %d, cycle %d (paper: 78 states, cycle 30)\n",
			tr.Len(), tr.PrefixLen(), tr.CycleLen())
		if err := core.ValidatePath(model, tr); err != nil {
			fmt.Fprintf(os.Stderr, "INVALID TRACE: %v\n", err)
			os.Exit(2)
		}
		fmt.Println("-- trace (validated against the model):")
		if *delta {
			fmt.Print(tr.DeltaString())
		} else {
			fmt.Print(tr.String())
		}
	}
	fmt.Printf("\ntotal wall time: %.2fs (paper: \"a few minutes\" on 1994 hardware)\n",
		time.Since(start).Seconds())
	fmt.Printf("witness generator: ring steps %d, restarts %d, closure attempts %d\n",
		gen.Stats.RingSteps, gen.Stats.Restarts, gen.Stats.ClosureAttempts)
}
