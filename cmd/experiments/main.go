// Command experiments runs the full reproduction suite (E1–E12, see
// DESIGN.md §2) and prints one paper-vs-measured block per experiment,
// in the Markdown format EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-only E1,E4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	t0 := time.Now()
	fmt.Printf("# Reproduction results (%s)\n\n", time.Now().Format("2006-01-02"))
	failed := 0
	for _, entry := range experiments.All() {
		if len(want) > 0 && !want[entry.ID] {
			continue
		}
		rep := entry.Run()
		fmt.Println(rep.String())
		if rep.Err != nil {
			failed++
		}
	}
	fmt.Printf("\ntotal wall time: %.1fs\n", time.Since(t0).Seconds())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
