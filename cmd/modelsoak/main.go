// Command modelsoak runs the randomized model-generator differential
// harness for an extended period: each seed produces a well-formed SMV
// program that is compiled through every engine configuration in the
// lattice (monolithic/partitioned/disjunctive × complement edges on/off
// × auto-reorder on/off × 1/4 workers), cross-checked against the
// explicit-state oracle, and every counterexample trace is replayed.
// Any divergence is shrunk to a minimal reproducer and written to the
// -repro directory; the process exits 1 if any seed diverged.
//
// Usage:
//
//	modelsoak [-seed 0] [-n 0] [-duration 10m] [-repro dir] [-v]
//
// With -n 0 (the default) the soak is time-bound: seeds run from -seed
// upward until -duration elapses. With -n > 0 exactly n seeds run and
// -duration is ignored. Progress is reported every -report interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/modelgen"
	"repro/internal/smv"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "first generator seed")
		n        = flag.Int64("n", 0, "number of seeds to run (0 = run until -duration elapses)")
		duration = flag.Duration("duration", 10*time.Minute, "soak length when -n is 0")
		repro    = flag.String("repro", "", "directory for shrunk reproducers (default: don't write)")
		report   = flag.Duration("report", 30*time.Second, "progress report interval")
		verbose  = flag.Bool("v", false, "log every divergence in full")
	)
	flag.Parse()

	start := time.Now()
	deadline := start.Add(*duration)
	var ran, diverged int64
	lastReport := start

	for s := *seed; ; s++ {
		if *n > 0 {
			if ran >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		m := modelgen.Generate(s)
		src := m.Source()
		if _, err := smv.CompileSource(src); err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: generated model does not compile: %v\n", s, err)
			diverged++
			ran++
			continue
		}
		if err := modelgen.CheckModel(src); err != nil {
			diverged++
			fmt.Fprintf(os.Stderr, "seed %d: DIVERGENCE: %v\n", s, err)
			if *verbose {
				fmt.Fprintf(os.Stderr, "%s\n", src)
			}
			if *repro != "" {
				if path, werr := modelgen.WriteReproducer(m, *repro); werr != nil {
					fmt.Fprintf(os.Stderr, "seed %d: writing reproducer: %v\n", s, werr)
				} else {
					fmt.Fprintf(os.Stderr, "seed %d: reproducer written to %s\n", s, path)
				}
			}
		}
		ran++
		if time.Since(lastReport) >= *report {
			lastReport = time.Now()
			fmt.Printf("soak: %d models in %s, %d divergences\n",
				ran, time.Since(start).Round(time.Second), diverged)
		}
	}

	fmt.Printf("soak finished: %d models in %s, %d divergences\n",
		ran, time.Since(start).Round(time.Second), diverged)
	if diverged > 0 {
		os.Exit(1)
	}
}
