// Command smvd is the persistent model-checking server: it keeps
// compiled models, their variable orders and their reachable/fair state
// sets in memory between queries (sessions keyed by a content hash of
// source + engine config) and on disk between restarts (serialize v3
// warm-start records), so re-checking specs against an unchanged model
// skips parsing, compilation, reordering, reachability and the fair-set
// fixpoint.
//
// Usage:
//
//	smvd [-addr :8611] [-cache-dir DIR] [-max-sessions N]
//	     [-node-budget N] [-default-deadline D] [-max-deadline D]
//
// Endpoints:
//
//	POST /check    {"model": "...", "specs": ["AG p"], "ltl": ["G F q"],
//	                "config": {"workers": 4}, "deadline_ms": 5000}
//	GET  /statsz   cache hit/miss counters + per-session RelStats
//	GET  /healthz  liveness probe
//	     /debug/pprof/  live profiling
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight queries
// finish and every session's warm-start record is flushed to the cache
// directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/smvd"
)

func main() {
	addr := flag.String("addr", ":8611", "listen address")
	cacheDir := flag.String("cache-dir", "", "directory for on-disk warm-start records (empty: memory only)")
	maxSessions := flag.Int("max-sessions", 64, "maximum cached sessions (LRU beyond this)")
	nodeBudget := flag.Int("node-budget", 0, "evict a session whose manager exceeds this many live nodes (0: unbounded)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline applied to requests that set none (0: none)")
	maxDeadline := flag.Duration("max-deadline", 0, "hard cap on any request deadline (0: none)")
	flag.Parse()

	if err := run(*addr, *cacheDir, *maxSessions, *nodeBudget, *defaultDeadline, *maxDeadline); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, maxSessions, nodeBudget int, defaultDeadline, maxDeadline time.Duration) error {
	cache, err := smvd.NewCache(maxSessions, nodeBudget, cacheDir)
	if err != nil {
		return err
	}
	server := smvd.NewServer(cache)
	server.DefaultDeadline = defaultDeadline
	server.MaxDeadline = maxDeadline

	hs := &http.Server{Addr: addr, Handler: server.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("smvd listening on %s (max sessions %d, cache dir %q)\n", addr, maxSessions, cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("smvd: shutting down, flushing warm-start records...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := cache.FlushAll(); err != nil {
		return fmt.Errorf("smvd: flush failed: %w", err)
	}
	fmt.Println("smvd: bye")
	return nil
}
