// Command smv is a small symbolic model checker in the style of the SMV
// system the paper describes: it reads a model in an SMV-like input
// language, checks every SPEC, and prints counterexample traces for the
// specifications that fail.
//
// Usage:
//
//	smv [-stats] [-delta] [-reachable] [-witness] [-compact] [-tree]
//	    [-reorder] [-disjunctive] [-workers N] [-ltl "formula"]
//	    [-simulate N -seed S] model.smv
//
// Besides SPEC (CTL) sections the input may contain LTLSPEC sections;
// each is checked by compiling the model in product with the Büchi
// tableau of the negated formula and testing fair emptiness. Failing
// LTL specifications produce a fair lasso (stem + cycle) over the model
// variables.
//
// Flags:
//
//	-stats       print BDD and fixpoint statistics after checking
//	-ltl F       check LTL formula F in addition to the model's LTLSPECs
//	-reorder     enable dynamic variable reordering (growth-triggered sifting)
//	-disjunctive use the disjunctive (per-process) image on interleaved models
//	-workers N   evaluate BDD operations on N goroutines sharing one
//	             manager (all image modes; disjunctive components also
//	             run as concurrent jobs)
//	-delta       print traces showing only changed variables per state
//	-reachable   report the number of reachable states first
//	-witness     for specs that hold and are existential, print a witness
//	-compact     shorten traces with shortcut compaction (§9 extension)
//	-tree        print failures as hierarchical explanation trees (§9)
//	-simulate N  print a random N-step execution instead of checking
//	-server URL  send the model to a running smvd instead of checking
//	             locally (the server's session cache makes repeated
//	             checks of an unchanged model nearly free)
//	-cache-dir D warm-start from (and refresh) smvd-format warm records:
//	             a prior run's variable order, reachable set and fair
//	             set are restored, skipping those fixpoints
//	-cpuprofile F / -memprofile F
//	             write pprof profiles of the run
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/ltl"
	"repro/internal/mc"
	"repro/internal/smv"
	"repro/internal/smvd"
)

func main() {
	stats := flag.Bool("stats", false, "print BDD/fixpoint statistics")
	delta := flag.Bool("delta", false, "print traces as per-state deltas")
	reachable := flag.Bool("reachable", false, "report reachable state count")
	witness := flag.Bool("witness", false, "print witnesses for satisfied existential specs")
	compact := flag.Bool("compact", false, "shorten traces with shortcut compaction")
	tree := flag.Bool("tree", false, "print counterexamples as explanation trees")
	simulate := flag.Int("simulate", 0, "print a random execution of N steps instead of checking")
	seed := flag.Int64("seed", 1, "random seed for -simulate")
	ltlSpec := flag.String("ltl", "", "check an LTL formula in addition to the model's LTLSPEC sections")
	reorder := flag.Bool("reorder", false, "enable dynamic variable reordering")
	disjunctive := flag.Bool("disjunctive", false, "use the disjunctive (per-process) image on interleaved models")
	workers := flag.Int("workers", 1, "worker goroutines for parallel BDD evaluation on the shared manager (all image modes)")
	noComplement := flag.Bool("no-complement", false, "disable complement edges (legacy structural negation)")
	server := flag.String("server", "", "check via a running smvd at this base URL instead of locally")
	cacheDir := flag.String("cache-dir", "", "warm-start from (and write) smvd warm records in this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smv [flags] model.smv")
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	memProfilePath = *memprofile
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	module, err := smv.ParseModule(string(src))
	if err != nil {
		fatal(err)
	}
	engineCfg := smvd.Config{
		Disjunctive:  *disjunctive,
		Workers:      *workers,
		Reorder:      *reorder,
		NoComplement: *noComplement,
	}
	if *server != "" {
		exit(checkRemote(*server, string(src), module, engineCfg, *ltlSpec))
	}
	copts := smv.CompileOptions{DisableComplementEdges: *noComplement}
	compiled, err := smv.CompileWith(module, copts)
	if err != nil {
		fatal(err)
	}
	if *reorder {
		compiled.S.M.EnableAutoReorder(nil)
	}
	if *disjunctive {
		if compiled.S.NumDisjuncts() == 0 {
			fmt.Fprintln(os.Stderr, "warning: -disjunctive has no effect: model declares no processes")
		} else {
			compiled.S.EnableDisjunct(true)
		}
	}
	compiled.S.SetWorkers(*workers)

	// Warm start: restore a previous run's variable order and fixpoint
	// results from the shared smvd record store, if a record exists.
	var store *smvd.DiskStore
	var modelKey string
	var warmReach, warmFair bdd.Ref
	var warmIters int
	warm := false
	if *cacheDir != "" {
		store, err = smvd.OpenDiskStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		modelKey = smvd.ModelKey(string(src), engineCfg)
		warmReach, warmFair, warmIters, warm, err = store.Load(modelKey, compiled.S.M)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: warm-start load failed: %v\n", err)
			warm = false
		}
		compiled.S.EnableReachableCache()
		if warm {
			compiled.S.SetReachable(warmReach, warmIters)
		}
	}

	// CTL semantics assume a total transition relation; warn when the
	// model has deadlocked states so vacuous EG/EX verdicts on them are
	// not mistaken for real ones.
	if dead := compiled.S.DeadlockStates(); dead != bdd.False {
		ex := compiled.S.PickState(dead)
		fmt.Fprintf(os.Stderr,
			"warning: model has %.0f deadlock state(s) with no successor, e.g. [%s]\n",
			compiled.S.CountStates(dead), compiled.FormatStateByVars(ex))
	}

	if *reachable {
		reach, iters := compiled.S.Reachable()
		fmt.Printf("reachable states: %.0f (in %d frontier iterations)\n\n",
			compiled.S.CountStates(reach), iters)
	}

	if *simulate > 0 {
		tr, err := compiled.Simulate(rand.New(rand.NewSource(*seed)), *simulate)
		if tr != nil {
			fmt.Println("-- random execution:")
			printTrace(compiled, tr, *delta)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		exit(0)
	}

	checker := mc.New(compiled.S)
	gen := core.NewGenerator(checker)
	if store != nil {
		if warm {
			// SetCareSet clears the checker's fair cache, so the seed must
			// come after it — same order as an smvd warm start.
			checker.SetCareSet(warmReach)
			checker.SeedFair(warmFair)
		} else {
			// Run the fixpoints now so a record can be written on exit; the
			// care-set restriction matches what a warmed run would use, so
			// cold and warm runs check identically.
			checker.UseReachableCareSet()
			checker.Fair()
		}
	}
	exitCode := 0
	for _, sp := range compiled.Module.Specs {
		fmt.Printf("-- specification %s ", sp.Source)
		if err := compiled.ResolveSpecAtoms(sp.Formula); err != nil {
			fmt.Printf("ERROR: %v\n", err)
			exitCode = 2
			continue
		}
		holds, tr, err := gen.CounterexampleInit(sp.Formula)
		if err != nil {
			fmt.Printf("ERROR: %v\n", err)
			exitCode = 2
			continue
		}
		if holds {
			fmt.Println("is true")
			if *witness {
				printWitness(compiled, gen, sp.Formula, *delta)
			}
			continue
		}
		fmt.Println("is false")
		exitCode = 1
		if *tree && tr != nil {
			start := tr.States[0] // the failing initial state
			if node, terr := gen.CounterexampleTree(sp.Formula, start); terr == nil {
				fmt.Println("-- explanation:")
				fmt.Print(node.Render(func(st kripke.State) string {
					return compiled.FormatStateByVars(st)
				}))
				continue
			}
		}
		if *compact && tr != nil {
			core.Compact(compiled.S, tr, bdd.True)
		}
		fmt.Println("-- as demonstrated by the following execution sequence:")
		printTrace(compiled, tr, *delta)
	}

	// LTL specifications: each check compiles a fresh product of the
	// model with the tableau of the negated formula (own BDD manager, so
	// the per-check flags apply independently).
	ltlSpecs := append([]*smv.LTLSpec(nil), module.LTLSpecs...)
	if *ltlSpec != "" {
		f, err := ltl.Parse(*ltlSpec)
		if err != nil {
			fatal(err)
		}
		ltlSpecs = append(ltlSpecs, &smv.LTLSpec{Source: *ltlSpec, Formula: f})
	}
	for _, sp := range ltlSpecs {
		fmt.Printf("-- LTL specification %s ", sp.Source)
		p, err := smv.CompileLTLWith(module, sp.Formula, sp.Source, copts)
		if err != nil {
			fmt.Printf("ERROR: %v\n", err)
			exitCode = 2
			continue
		}
		if *reorder {
			p.S.M.EnableAutoReorder(nil)
		}
		if *disjunctive && p.S.NumDisjuncts() > 0 {
			p.S.EnableDisjunct(true)
		}
		p.S.SetWorkers(*workers)
		ch := mc.New(p.S)
		holds, tr, err := p.Check(ch)
		if err != nil {
			fmt.Printf("ERROR: %v\n", err)
			exitCode = 2
			ch.Close()
			continue
		}
		if holds {
			fmt.Println("is true")
		} else {
			fmt.Println("is false")
			exitCode = 1
			if err := p.ReplayCounterexample(tr); err != nil {
				fmt.Fprintf(os.Stderr, "warning: counterexample replay failed: %v\n", err)
				exitCode = 2
			}
			fmt.Println("-- as demonstrated by the following fair execution sequence:")
			printTrace(p.Compiled, tr, *delta)
		}
		if *stats {
			rel := p.S.RelStats()
			fmt.Printf("-- LTL product: %d tableau variables, %d fairness sets, %d clusters, "+
				"%d live nodes (peak %d in chains), %d fair-EG outer iterations\n",
				len(p.ElemVars), len(p.S.Fair), p.S.NumClusters(),
				p.S.M.NumNodes(), rel.PeakLiveNodes, ch.Stats.FairEGOuter)
		}
		ch.Close()
	}

	if *stats {
		m := compiled.S.M
		fmt.Printf("\n-- statistics\n")
		fmt.Printf("state variables:    %d (BDD variables: %d)\n", len(compiled.S.Vars), m.NumVars())
		fmt.Printf("live BDD nodes:     %d\n", m.NumNodes())
		fmt.Printf("ITE calls:          %d (cache hits %d / lookups %d)\n",
			m.Stats.ITECalls, m.Stats.CacheHits, m.Stats.CacheLookups)
		rel := compiled.S.RelStats()
		fmt.Printf("computed cache:     %.1f%% hit rate (%d hits / %d lookups), unique-table load %.2f, complement edges %v\n",
			100*rel.CacheHitRate(), rel.CacheHits, rel.CacheLookups,
			rel.UniqueTableLoad, !m.ComplementEdgesDisabled())
		fmt.Printf("EU fixpoints:       %d (%d iterations)\n",
			checker.Stats.EUFixpoints, checker.Stats.EUIterations)
		fmt.Printf("EG fixpoints:       %d (%d iterations, %d fair outer)\n",
			checker.Stats.EGFixpoints, checker.Stats.EGIterations, checker.Stats.FairEGOuter)
		fmt.Printf("peak BDD nodes:     %d\n", checker.Stats.PeakNodes)
		fmt.Printf("transition clusters: %d (preimages %d, images %d, cluster steps %d, peak %d nodes in chains)\n",
			compiled.S.NumClusters(), rel.PreimageCalls, rel.ImageCalls, rel.ClusterSteps, rel.PeakLiveNodes)
		if n := compiled.S.NumDisjuncts(); n > 0 {
			fmt.Printf("disjunctive components: %d (enabled %v, workers %d, disjunct steps %d, parallel batches %d)\n",
				n, compiled.S.DisjunctEnabled(), compiled.S.Workers(),
				rel.DisjunctSteps, rel.ParallelBatches)
		}
		if m.ParallelWorkers() > 1 || m.Stats.ParallelSections > 0 {
			fmt.Printf("parallel engine:    %d workers, %d sections (%d jobs, %d forks, %d retries, peak %d forks in flight)\n",
				m.ParallelWorkers(), m.Stats.ParallelSections, m.Stats.ParallelJobs,
				m.Stats.ParallelForks, m.Stats.ParallelRetries, m.Stats.ParallelPeakInFlight)
		}
		fmt.Printf("checker preimages:  %d (%d cluster steps, %d disjunct steps, AndExists cache hits %d / lookups %d)\n",
			checker.Stats.PreimageCalls, checker.Stats.ClusterSteps, checker.Stats.DisjunctSteps,
			checker.Stats.AndExistsHits, checker.Stats.AndExistsLookups)
		fmt.Printf("witness ring steps: %d (restarts %d, %d single-state images)\n",
			gen.Stats.RingSteps, gen.Stats.Restarts, gen.Stats.ImageCalls)
		fmt.Printf("dynamic reordering: %d sift events (%d passes, %d trials, %d swaps, %d aborted, %d timed out), "+
			"%d nodes saved, %v total\n",
			m.Stats.AutoReorders, m.Stats.SiftPasses, m.Stats.SiftTrials, m.Stats.SiftSwaps,
			m.Stats.SiftAborts, m.Stats.SiftTimeouts,
			m.Stats.ReorderSavedNodes, m.Stats.ReorderTime)
		if top := m.TopLevels(5); len(top) > 0 {
			parts := make([]string, 0, len(top))
			for _, lo := range top {
				parts = append(parts, fmt.Sprintf("L%d(v%d)=%d", lo.Level, lo.Var, lo.Count))
			}
			fmt.Printf("fattest levels:     %s\n", strings.Join(parts, "  "))
		}
		fmt.Printf("checker reorders:   %d (%v during fixpoints)\n",
			checker.Stats.Reorders, checker.Stats.ReorderTime)
	}
	if store != nil && !warm {
		if reach, iters, ok := compiled.S.ReachableCached(); ok {
			if fair, okFair := checker.CachedFair(); okFair {
				if err := store.Save(modelKey, engineCfg, compiled.S.M, reach, fair, iters); err != nil {
					fmt.Fprintf(os.Stderr, "warning: warm-record save failed: %v\n", err)
				}
			}
		}
	}
	exit(exitCode)
}

// checkRemote is -server mode: the model and its spec sources go to a
// running smvd, whose session cache (shared reachable/fair sets,
// subformula memo, warm-start records) answers repeated checks of an
// unchanged model without recompiling it. Output mirrors local mode.
func checkRemote(base, src string, module *smv.Module, cfg smvd.Config, extraLTL string) int {
	req := smvd.CheckRequest{Model: src, Config: cfg}
	for _, sp := range module.Specs {
		req.Specs = append(req.Specs, sp.Source)
	}
	for _, sp := range module.LTLSpecs {
		req.LTL = append(req.LTL, sp.Source)
	}
	if extraLTL != "" {
		req.LTL = append(req.LTL, extraLTL)
	}
	body, err := json.Marshal(&req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	hr, err := http.Post(strings.TrimRight(base, "/")+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(hr.Body)
		fmt.Fprintf(os.Stderr, "smvd: %s: %s\n", hr.Status, bytes.TrimSpace(msg))
		return 2
	}
	var resp smvd.CheckResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	nCTL := len(req.Specs)
	code := 0
	for i, v := range resp.Verdicts {
		kind := "specification"
		if i >= nCTL {
			kind = "LTL specification"
		}
		fmt.Printf("-- %s %s ", kind, v.Spec)
		switch {
		case v.Error != "":
			fmt.Printf("ERROR: %s\n", v.Error)
			code = 2
		case v.Holds:
			fmt.Println("is true")
		default:
			fmt.Println("is false")
			if code == 0 {
				code = 1
			}
			if v.Trace != "" {
				fmt.Println("-- as demonstrated by the following execution sequence:")
				fmt.Print(v.Trace)
			}
		}
	}
	warmth := "cold"
	if resp.Warm {
		warmth = "warm"
		if resp.WarmSource != "" {
			warmth = "warm (" + resp.WarmSource + ")"
		}
	}
	fmt.Printf("-- smvd: session %.12s %s, %.0f reachable states, %.1fms\n",
		resp.ModelKey, warmth, resp.ReachableStates, resp.ElapsedMs)
	return code
}

// printWitness prints a demonstration for satisfied specs whose
// top-level shape is existential (EF/EX/EG/EU) from some initial state.
func printWitness(c *smv.Compiled, gen *core.Generator, f *ctl.Formula, delta bool) {
	switch f.Kind {
	case ctl.KEX, ctl.KEU, ctl.KEG, ctl.KEF:
	default:
		return
	}
	start := c.S.PickState(c.S.Init)
	if start == nil {
		return
	}
	tr, err := gen.Witness(f, start)
	if err != nil {
		return
	}
	fmt.Println("-- witness execution sequence:")
	printTrace(c, tr, delta)
}

func printTrace(c *smv.Compiled, tr *core.Trace, delta bool) {
	if tr == nil {
		return
	}
	if delta {
		fmt.Print(c.DeltaTraceString(tr))
		return
	}
	fmt.Print(c.TraceString(tr))
}

var memProfilePath string

// exit stops the profilers (deferred functions do not survive os.Exit)
// and terminates with the given code.
func exit(code int) {
	pprof.StopCPUProfile()
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		f.Close()
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	exit(2)
}
