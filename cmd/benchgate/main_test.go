package main

import "testing"

func TestKeyIgnoresMeasurements(t *testing.T) {
	a := entry{"model": "ring.smv", "mode": "disjunctive", "workers": 2.0,
		"peak_live_nodes": 1871.0, "wall_ms": 4.2,
		"note": "monolithic Trans materialized in 0.4ms"}
	b := entry{"model": "ring.smv", "mode": "disjunctive", "workers": 2.0,
		"peak_live_nodes": 99999.0, "wall_ms": 0.1,
		"note": "monolithic Trans materialized in 0.8ms"}
	if key(a) != key(b) {
		t.Fatalf("measurement fields leaked into identity:\n%s\n%s", key(a), key(b))
	}
}

func TestKeyDistinguishesParameters(t *testing.T) {
	base := entry{"model": "ring.smv", "mode": "disjunctive", "workers": 2.0}
	for name, other := range map[string]entry{
		"workers": {"model": "ring.smv", "mode": "disjunctive", "workers": 4.0},
		"mode":    {"model": "ring.smv", "mode": "conjunctive", "workers": 2.0},
		"model":   {"model": "mutex.smv", "mode": "disjunctive", "workers": 2.0},
		"cells":   {"model": "ring.smv", "mode": "disjunctive", "workers": 2.0, "cells": 8.0},
		"bool":    {"model": "ring.smv", "mode": "disjunctive", "workers": 2.0, "completed": true},
	} {
		if key(base) == key(other) {
			t.Errorf("%s: identity collision: %s", name, key(base))
		}
	}
}

func TestDescribeSkipsMissingFields(t *testing.T) {
	got := describe(entry{"model": "dining.smv", "mode": "monolithic", "workers": 1.0})
	want := "dining.smv monolithic workers=1"
	if got != want {
		t.Fatalf("describe = %q, want %q", got, want)
	}
}

func index(es ...entry) map[string]entry {
	out := make(map[string]entry, len(es))
	for _, e := range es {
		out[key(e)] = e
	}
	return out
}

func TestGateTimeMetricWithinThreshold(t *testing.T) {
	base := []entry{{"model": "arbiter", "engine": "in-place", "reorder_ms": 100.0}}
	cur := index(entry{"model": "arbiter", "engine": "in-place", "reorder_ms": 190.0})
	if n := gate(base, cur, "reorder_ms", 100, timeGateFloorMS); n != 0 {
		t.Fatalf("1.9x on a 2x threshold failed the gate (%d failures)", n)
	}
}

func TestGateTimeMetricRegression(t *testing.T) {
	base := []entry{{"model": "arbiter", "engine": "in-place", "reorder_ms": 100.0}}
	cur := index(entry{"model": "arbiter", "engine": "in-place", "reorder_ms": 201.0})
	if n := gate(base, cur, "reorder_ms", 100, timeGateFloorMS); n != 1 {
		t.Fatalf("2.01x on a 2x threshold passed the gate (%d failures)", n)
	}
}

func TestGateTimeMetricFloorSkipsNoise(t *testing.T) {
	// A 1ms baseline that jumps to 50ms is scheduler noise, not signal:
	// the floor must keep it out of the gate.
	base := []entry{{"model": "ring", "engine": "rebuild", "reorder_ms": 1.0}}
	cur := index(entry{"model": "ring", "engine": "rebuild", "reorder_ms": 50.0})
	if n := gate(base, cur, "reorder_ms", 100, timeGateFloorMS); n != 0 {
		t.Fatalf("sub-floor baseline was gated (%d failures)", n)
	}
}

func TestGateMissingEntryStillFails(t *testing.T) {
	base := []entry{{"model": "arbiter", "engine": "in-place", "reorder_ms": 100.0}}
	if n := gate(base, index(), "reorder_ms", 100, timeGateFloorMS); n != 1 {
		t.Fatalf("dropped entry passed the time gate (%d failures)", n)
	}
}
