package main

import "testing"

func TestKeyIgnoresMeasurements(t *testing.T) {
	a := entry{"model": "ring.smv", "mode": "disjunctive", "workers": 2.0,
		"peak_live_nodes": 1871.0, "wall_ms": 4.2}
	b := entry{"model": "ring.smv", "mode": "disjunctive", "workers": 2.0,
		"peak_live_nodes": 99999.0, "wall_ms": 0.1}
	if key(a) != key(b) {
		t.Fatalf("measurement fields leaked into identity:\n%s\n%s", key(a), key(b))
	}
}

func TestKeyDistinguishesParameters(t *testing.T) {
	base := entry{"model": "ring.smv", "mode": "disjunctive", "workers": 2.0}
	for name, other := range map[string]entry{
		"workers": {"model": "ring.smv", "mode": "disjunctive", "workers": 4.0},
		"mode":    {"model": "ring.smv", "mode": "conjunctive", "workers": 2.0},
		"model":   {"model": "mutex.smv", "mode": "disjunctive", "workers": 2.0},
		"cells":   {"model": "ring.smv", "mode": "disjunctive", "workers": 2.0, "cells": 8.0},
		"bool":    {"model": "ring.smv", "mode": "disjunctive", "workers": 2.0, "completed": true},
	} {
		if key(base) == key(other) {
			t.Errorf("%s: identity collision: %s", name, key(base))
		}
	}
}

func TestDescribeSkipsMissingFields(t *testing.T) {
	got := describe(entry{"model": "dining.smv", "mode": "monolithic", "workers": 1.0})
	want := "dining.smv monolithic workers=1"
	if got != want {
		t.Fatalf("describe = %q, want %q", got, want)
	}
}
