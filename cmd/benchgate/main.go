// Command benchgate compares a freshly recorded BENCH_*.json artifact
// against the committed baseline and fails (exit 1) when any entry's
// gated metric regressed beyond the allowed percentage. It is the
// quality gate behind the CI bench-smoke job: wall-clock numbers are
// recorded for humans but never gated (shared runners make them noisy);
// peak live BDD nodes are deterministic for a fixed model and schedule,
// so a >25% jump means an algorithmic regression, not jitter.
//
// Usage:
//
//	benchgate -baseline BENCH_disjunctive.json -current new.json \
//	          [-metric peak_live_nodes] [-max-regress 25] \
//	          [-time-metric reorder_ms] [-max-time-regress 100]
//
// -time-metric adds a second, simultaneous gate on a wall-time field.
// Wall time on shared runners is noisy, so its default threshold is a
// generous 2x (-max-time-regress 100) — the gate exists to catch
// algorithmic collapses (an O(two levels) path regressing to O(arena)),
// not percent-level jitter — and baselines under timeGateFloorMS are
// skipped entirely, since a ratio over a near-zero baseline is all
// noise.
//
// -rate-metric adds an inverted gate on a higher-is-better field (e.g.
// cache_hit_rate): the entry fails when the current value DROPS more
// than -max-rate-drop percent below the baseline. Rates are
// deterministic for a fixed model and schedule, like node counts, so a
// large drop means the computed-cache normalization regressed.
//
// The artifact format is an array of flat JSON objects. An entry's
// identity is the concatenation of its string- and bool-valued fields
// plus the numeric fields "cells" and "workers" — which covers every
// recorder in this repo (model/mode/workload/cells/workers/completed) —
// and the gated metric is any numeric field (default peak_live_nodes).
// Entries present in the baseline but missing from the current run fail
// the gate too: silently dropping a configuration is a coverage
// regression, not a pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// identityNumeric names the numeric fields that parameterize an entry
// rather than measure it.
var identityNumeric = map[string]bool{"cells": true, "workers": true}

type entry map[string]any

// key builds the identity string for an entry: every string and bool
// field plus the allowlisted numeric parameters, in sorted field order.
// The "note" field is excluded: recorders embed measurements in it
// (wall times, node counts at abort), so keying on it would turn every
// timing wobble into a spurious MISSING.
func key(e entry) string {
	fields := make([]string, 0, len(e))
	for k := range e {
		fields = append(fields, k)
	}
	sort.Strings(fields)
	var b strings.Builder
	for _, k := range fields {
		if k == "note" {
			continue
		}
		switch v := e[k].(type) {
		case string:
			fmt.Fprintf(&b, "%s=%s|", k, v)
		case bool:
			fmt.Fprintf(&b, "%s=%v|", k, v)
		case float64:
			if identityNumeric[k] {
				fmt.Fprintf(&b, "%s=%g|", k, v)
			}
		}
	}
	return b.String()
}

func load(path string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return out, nil
}

// timeGateFloorMS: baselines faster than this are not time-gated; the
// relative error of a couple of milliseconds of scheduler noise would
// dominate any real signal.
const timeGateFloorMS = 5.0

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline BENCH_*.json")
	currentPath := flag.String("current", "", "freshly recorded BENCH_*.json")
	metric := flag.String("metric", "peak_live_nodes", "numeric field to gate on")
	maxRegress := flag.Float64("max-regress", 25, "allowed regression in percent")
	timeMetric := flag.String("time-metric", "", "optional wall-time field for a second gate (e.g. reorder_ms)")
	maxTimeRegress := flag.Float64("max-time-regress", 100, "allowed regression on -time-metric in percent")
	rateMetric := flag.String("rate-metric", "", "optional higher-is-better field for an inverted gate (e.g. cache_hit_rate)")
	maxRateDrop := flag.Float64("max-rate-drop", 25, "allowed drop on -rate-metric in percent")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -baseline old.json -current new.json "+
			"[-metric f] [-max-regress pct] [-time-metric f] [-max-time-regress pct]")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}
	byKey := make(map[string]entry, len(current))
	for _, e := range current {
		byKey[key(e)] = e
	}

	failures := gate(baseline, byKey, *metric, *maxRegress, 0)
	if *timeMetric != "" {
		failures += gate(baseline, byKey, *timeMetric, *maxTimeRegress, timeGateFloorMS)
	}
	if *rateMetric != "" {
		failures += gateRate(baseline, byKey, *rateMetric, *maxRateDrop)
	}
	if failures > 0 {
		fmt.Printf("\nbenchgate: %d entr%s regressed\n", failures, plural(failures))
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: %d entries within %.0f%% of baseline on %s\n",
		len(baseline), *maxRegress, *metric)
}

// gate compares one numeric field across all baseline entries and
// returns the number of failures. Baseline values below floor are
// skipped (0 = gate everything carrying the field).
func gate(baseline []entry, byKey map[string]entry, metric string, maxRegress, floor float64) int {
	failures := 0
	for _, base := range baseline {
		k := key(base)
		baseVal, ok := base[metric].(float64)
		if !ok {
			continue // entry does not carry the gated metric (e.g. a note-only row)
		}
		cur, ok := byKey[k]
		if !ok {
			fmt.Printf("MISSING  %s — entry absent from current run\n", describe(base))
			failures++
			continue
		}
		if floor > 0 && baseVal < floor {
			fmt.Printf("skipped  %s — %s baseline %.2f below gate floor %.0f\n",
				describe(base), metric, baseVal, floor)
			continue
		}
		curVal, ok := cur[metric].(float64)
		if !ok {
			fmt.Printf("MISSING  %s — current entry lost field %q\n", describe(base), metric)
			failures++
			continue
		}
		limit := baseVal * (1 + maxRegress/100)
		switch {
		case curVal > limit:
			fmt.Printf("REGRESS  %s — %s %.0f -> %.0f (limit %.0f, +%.1f%%)\n",
				describe(base), metric, baseVal, curVal, limit, 100*(curVal-baseVal)/baseVal)
			failures++
		case curVal < baseVal:
			fmt.Printf("improved %s — %s %.0f -> %.0f\n", describe(base), metric, baseVal, curVal)
		default:
			fmt.Printf("ok       %s — %s %.0f -> %.0f\n", describe(base), metric, baseVal, curVal)
		}
	}
	return failures
}

// gateRate is the inverted gate for higher-is-better metrics: the
// entry fails when the current value drops more than maxDrop percent
// below the baseline. Zero baselines are skipped (nothing to preserve);
// a current entry missing the field still fails, as with gate.
func gateRate(baseline []entry, byKey map[string]entry, metric string, maxDrop float64) int {
	failures := 0
	for _, base := range baseline {
		baseVal, ok := base[metric].(float64)
		if !ok {
			continue
		}
		cur, ok := byKey[key(base)]
		if !ok {
			fmt.Printf("MISSING  %s — entry absent from current run\n", describe(base))
			failures++
			continue
		}
		curVal, ok := cur[metric].(float64)
		if !ok {
			fmt.Printf("MISSING  %s — current entry lost field %q\n", describe(base), metric)
			failures++
			continue
		}
		if baseVal <= 0 {
			fmt.Printf("skipped  %s — %s baseline %.3f carries no signal\n", describe(base), metric, baseVal)
			continue
		}
		limit := baseVal * (1 - maxDrop/100)
		switch {
		case curVal < limit:
			fmt.Printf("REGRESS  %s — %s %.3f -> %.3f (limit %.3f, %.1f%% drop)\n",
				describe(base), metric, baseVal, curVal, limit, 100*(baseVal-curVal)/baseVal)
			failures++
		case curVal > baseVal:
			fmt.Printf("improved %s — %s %.3f -> %.3f\n", describe(base), metric, baseVal, curVal)
		default:
			fmt.Printf("ok       %s — %s %.3f -> %.3f\n", describe(base), metric, baseVal, curVal)
		}
	}
	return failures
}

// describe renders the human-readable identity of an entry.
func describe(e entry) string {
	parts := []string{}
	for _, k := range []string{"model", "spec", "mode", "workload", "cells", "workers"} {
		switch v := e[k].(type) {
		case string:
			parts = append(parts, v)
		case float64:
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	return strings.Join(parts, " ")
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
