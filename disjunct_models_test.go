package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/mc"
	"repro/internal/smv"
)

// TestDisjunctiveModelsDifferential is the end-to-end oracle for the
// disjunctive image on every shipped model that declares processes: the
// reachable state set, every CTL verdict, and every generated trace —
// counterexamples for failing specs, witnesses for satisfied
// existential ones — must match the monolithic path, with the traces
// from BOTH paths independently validated against the model
// (ValidatePath, and ValidateFairLasso for fair lassos). Runs
// sequentially and with worker goroutines; `go test -race` exercises
// the shared-manager parallel engine's concurrency model.
func TestDisjunctiveModelsDifferential(t *testing.T) {
	entries, err := os.ReadDir("models")
	if err != nil {
		t.Fatalf("models directory: %v", err)
	}
	processModels := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".smv") {
			continue
		}
		src, err := os.ReadFile(filepath.Join("models", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		probe, err := smv.CompileSource(string(src))
		if err != nil {
			t.Fatal(err)
		}
		if len(probe.Module.Processes) == 0 {
			continue
		}
		processModels++
		for _, workers := range []int{1, 3} {
			for _, rep := range complementOptions {
				workers, rep := workers, rep
				t.Run(ent.Name()+"/workers="+string(rune('0'+workers))+"/"+rep.name, func(t *testing.T) {
					compareDisjunctiveToMonolithic(t, string(src), workers, rep.opts)
				})
			}
		}
	}
	if processModels == 0 {
		t.Fatal("no shipped model declares processes — differential is vacuous")
	}
}

// compareDisjunctiveToMonolithic compiles src twice — one copy checked
// through the disjunctive image, one through the monolithic relation —
// and compares everything observable.
func compareDisjunctiveToMonolithic(t *testing.T, src string, workers int, opts smv.CompileOptions) {
	dis, err := smv.CompileSourceWith(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dis.S.NumDisjuncts() == 0 {
		t.Fatal("process model compiled without disjunctive components")
	}
	dis.S.EnableDisjunct(true)
	dis.S.SetWorkers(workers)

	mono, err := smv.CompileSourceWith(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	mono.S.EnablePartition(false) // force the monolithic relation

	reachD, _ := dis.S.Reachable()
	reachM, _ := mono.S.Reachable()
	if d, m := dis.S.CountStates(reachD), mono.S.CountStates(reachM); d != m {
		t.Fatalf("reachable states differ: disjunctive %v, monolithic %v", d, m)
	}

	genD := core.NewGenerator(mc.New(dis.S))
	genM := core.NewGenerator(mc.New(mono.S))
	checkedTraces := 0
	for i, spD := range dis.Module.Specs {
		spM := mono.Module.Specs[i]
		if err := dis.ResolveSpecAtoms(spD.Formula); err != nil {
			t.Fatal(err)
		}
		if err := mono.ResolveSpecAtoms(spM.Formula); err != nil {
			t.Fatal(err)
		}
		holdsD, trD, err := genD.CounterexampleInit(spD.Formula)
		if err != nil {
			t.Fatalf("disjunctive %s: %v", spD.Source, err)
		}
		holdsM, trM, err := genM.CounterexampleInit(spM.Formula)
		if err != nil {
			t.Fatalf("monolithic %s: %v", spM.Source, err)
		}
		if holdsD != holdsM {
			t.Fatalf("%s: disjunctive verdict %v, monolithic %v", spD.Source, holdsD, holdsM)
		}
		if !holdsD {
			if trD == nil || trM == nil {
				t.Fatalf("%s: failing spec without counterexample", spD.Source)
			}
			// Each path's trace validates against the *other* path's
			// structure too: the traces are concrete executions of the same
			// model, whichever image produced them.
			validateTrace(t, spD.Source+" (disjunctive trace)", dis.S, trD)
			validateTrace(t, spD.Source+" (monolithic trace)", mono.S, trM)
			if err := core.ValidatePath(mono.S, trD); err != nil {
				t.Fatalf("%s: disjunctive counterexample rejected by monolithic structure: %v", spD.Source, err)
			}
			checkedTraces++
			continue
		}
		switch spD.Formula.Kind {
		case ctl.KEX, ctl.KEU, ctl.KEG, ctl.KEF:
			start := dis.S.PickState(dis.S.Init)
			if start == nil {
				t.Fatalf("%s: no initial state", spD.Source)
			}
			trD, err := genD.Witness(spD.Formula, start)
			if err != nil {
				t.Fatalf("disjunctive witness %s: %v", spD.Source, err)
			}
			validateTrace(t, spD.Source+" (disjunctive witness)", dis.S, trD)
			if err := core.ValidatePath(mono.S, trD); err != nil {
				t.Fatalf("%s: disjunctive witness rejected by monolithic structure: %v", spD.Source, err)
			}
			checkedTraces++
		}
	}
	// LTLSPECs run through the tableau product on both image paths:
	// verdicts must agree, and each path's fair lasso must validate
	// against the other path's product structure and falsify the
	// formula under the explicit-state replay oracle.
	for _, sp := range dis.Module.LTLSpecs {
		pD, err := smv.CompileLTLWith(dis.Module, sp.Formula, sp.Source, opts)
		if err != nil {
			t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
		}
		if pD.S.NumDisjuncts() == 0 {
			t.Fatalf("LTLSPEC %s: product lost the disjunctive components", sp.Source)
		}
		pD.S.EnableDisjunct(true)
		pD.S.SetWorkers(workers)
		pM, err := smv.CompileLTLWith(mono.Module, sp.Formula, sp.Source, opts)
		if err != nil {
			t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
		}
		pM.S.EnablePartition(false)

		chD := mc.New(pD.S)
		holdsD, trD, err := pD.Check(chD)
		if err != nil {
			t.Fatalf("disjunctive LTLSPEC %s: %v", sp.Source, err)
		}
		chM := mc.New(pM.S)
		holdsM, trM, err := pM.Check(chM)
		if err != nil {
			t.Fatalf("monolithic LTLSPEC %s: %v", sp.Source, err)
		}
		if holdsD != holdsM {
			t.Fatalf("LTLSPEC %s: disjunctive verdict %v, monolithic %v", sp.Source, holdsD, holdsM)
		}
		if !holdsD {
			if trD == nil || trM == nil {
				t.Fatalf("LTLSPEC %s: failing spec without counterexample", sp.Source)
			}
			validateTrace(t, sp.Source+" (disjunctive lasso)", pD.S, trD)
			validateTrace(t, sp.Source+" (monolithic lasso)", pM.S, trM)
			if err := core.ValidatePath(pM.S, trD); err != nil {
				t.Fatalf("LTLSPEC %s: disjunctive lasso rejected by monolithic product: %v", sp.Source, err)
			}
			if err := pD.ReplayCounterexample(trD); err != nil {
				t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
			}
			if err := pM.ReplayCounterexample(trM); err != nil {
				t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
			}
			checkedTraces++
		}
		chD.Close()
		chM.Close()
	}
	if checkedTraces == 0 {
		t.Fatal("no trace generated — differential is vacuous")
	}
	if dis.S.RelStats().DisjunctSteps == 0 {
		t.Fatal("disjunctive image never ran")
	}
	if workers > 1 && dis.S.RelStats().ParallelBatches == 0 {
		t.Fatal("parallel workers never ran")
	}
}
