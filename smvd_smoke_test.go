package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/modelgen"
	"repro/internal/smvd"
)

// Concurrency smoke for the smvd session cache, designed to run under
// -race in CI: 64 distinct sessions hammered from 16 goroutines with a
// mix of hot queries, bad-model requests and already-expired deadlines,
// then a clean shutdown (FlushAll) and a warm restart over the same
// directory. Every successful verdict must match the single-shot
// reference for the same model — the cache must never change an answer.

func TestSmvdConcurrencySmoke(t *testing.T) {
	const (
		sessions = 64
		workers  = 16
		clients  = 3
	)
	iters := 40
	if testing.Short() {
		iters = 10
	}

	base := modelgen.ArbiterSource(clients)
	specs, expected := modelgen.ArbiterSpecs(clients)

	// Single-shot reference run (the cmd/smv path) over the same model
	// with the workload specs as SPEC sections: its verdicts are the
	// parity oracle for everything the server answers, and they must
	// also match the generator's documented truth.
	refSrc := base
	for _, sp := range specs {
		refSrc += "SPEC " + sp + "\n"
	}
	ref := warmReferenceRun(t, refSrc, smvd.Config{})
	if len(ref.holds) != len(specs) {
		t.Fatalf("reference checked %d specs, want %d", len(ref.holds), len(specs))
	}
	truth := ref.holds
	for j := range truth {
		if truth[j] != expected[j] {
			t.Fatalf("reference verdict for %q is %v, generator documents %v",
				specs[j], truth[j], expected[j])
		}
	}

	models := make([]string, sessions)
	for i := range models {
		models[i] = fmt.Sprintf("-- smoke session %d\n%s", i, base)
	}

	dir := t.TempDir()
	cache, err := smvd.NewCache(sessions, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	sv := smvd.NewServer(cache)

	var divergences, queries, badRejected atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				switch roll := rng.Intn(100); {
				case roll < 5:
					if _, err := sv.Check(&smvd.CheckRequest{Model: "MODULE main\nVAR x : oops(;"}); err != nil {
						badRejected.Add(1)
					} else {
						t.Error("bad model accepted")
					}
				case roll < 10:
					// An already-expired budget: either the request fails with
					// a deadline error or individual specs report one; no
					// verdict may be wrong.
					resp, err := sv.Check(&smvd.CheckRequest{
						Model:      models[rng.Intn(sessions)],
						Specs:      specs,
						DeadlineMs: 1,
					})
					if err == nil {
						for j, v := range resp.Verdicts {
							if v.Error == "" && v.Holds != truth[j] {
								divergences.Add(1)
							}
						}
					}
				default:
					// Round-robin base index so all 64 sessions get traffic.
					m := models[(w*iters+i)%sessions]
					resp, err := sv.Check(&smvd.CheckRequest{Model: m, Specs: specs})
					if err != nil {
						t.Errorf("query failed: %v", err)
						continue
					}
					queries.Add(1)
					for j, v := range resp.Verdicts {
						if v.Error != "" || v.Holds != truth[j] || (!v.Holds && !v.Validated) {
							divergences.Add(1)
							t.Errorf("divergence on %q: holds=%v want %v err=%q",
								v.Spec, v.Holds, truth[j], v.Error)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if divergences.Load() > 0 {
		t.Fatalf("%d verdict divergences under load", divergences.Load())
	}
	if badRejected.Load() == 0 {
		t.Error("no bad-model request exercised")
	}
	st := sv.Cache.Stats()
	if st.Sessions != sessions {
		t.Errorf("cache holds %d sessions, want %d", st.Sessions, sessions)
	}
	if st.CompileErrors == 0 {
		t.Error("bad models produced no compile errors")
	}

	// Clean shutdown: flush every session, then restart over the same
	// directory — the first query must be disk-warm.
	if err := sv.Cache.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	cache2, err := smvd.NewCache(sessions, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	sv2 := smvd.NewServer(cache2)
	resp, err := sv2.Check(&smvd.CheckRequest{Model: models[0], Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Warm || resp.WarmSource != "disk" {
		t.Fatalf("restart not disk-warm: warm=%v source=%q", resp.Warm, resp.WarmSource)
	}
	for j, v := range resp.Verdicts {
		if v.Error != "" || v.Holds != truth[j] {
			t.Errorf("post-restart divergence on %q", v.Spec)
		}
	}
}

// TestSmvdBudgetEvictionUnderLoad exercises the over-budget path
// concurrently: with a 1-node budget every query ends in an eviction,
// and concurrent queries against the same key must still all succeed on
// their private session pointers.
func TestSmvdBudgetEvictionUnderLoad(t *testing.T) {
	const clients = 3
	base := modelgen.ArbiterSource(clients)
	specs, truth := modelgen.ArbiterSpecs(clients)

	cache, err := smvd.NewCache(8, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	sv := smvd.NewServer(cache)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := sv.Check(&smvd.CheckRequest{Model: base, Specs: specs})
				if err != nil {
					t.Errorf("query failed: %v", err)
					return
				}
				for j, v := range resp.Verdicts {
					if v.Error != "" || v.Holds != truth[j] {
						t.Errorf("divergence on %q under eviction churn", v.Spec)
					}
				}
			}
		}()
	}
	wg.Wait()
	st := sv.Cache.Stats()
	if st.EvictionsBudget == 0 {
		t.Error("no budget eviction recorded")
	}
	if st.Sessions != 0 {
		t.Errorf("%d sessions survived a 1-node budget", st.Sessions)
	}
}
