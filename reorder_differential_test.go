package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
	"repro/internal/smv"
)

// Differential test for dynamic reordering: every shipped SMV model and
// the Seitz arbiter are checked twice — once with reordering disabled,
// once with aggressive growth-triggered sifting — and the two runs must
// produce identical verdicts spec by spec. Every trace either run emits
// must independently validate against its model (ValidatePath, plus
// ValidateFairLasso for lassos under fairness). The traces themselves
// may legitimately differ (PickState's choice depends on the variable
// order), so validity rather than state-equality is the contract.

// aggressiveReorder makes sifting fire on modest-sized models while
// keeping each sift cheap (one pass over a bounded window) so the
// differential sweep stays fast.
var aggressiveReorder = bdd.ReorderOptions{
	GrowthTrigger: 1.5,
	MinNodes:      512,
	MaxPasses:     1,
	Window:        4,
	MaxBlocks:     16,
}

type specVerdict struct {
	spec     string
	holds    bool
	hasTrace bool
}

// checkAll checks every formula, validating any counterexample trace.
func checkAll(t *testing.T, s *kripke.Symbolic, specs []string, formulas []*ctl.Formula) []specVerdict {
	t.Helper()
	checker := mc.New(s)
	defer checker.Close()
	gen := core.NewGenerator(checker)
	out := make([]specVerdict, 0, len(formulas))
	for i, f := range formulas {
		holds, tr, err := gen.CounterexampleInit(f)
		if err != nil {
			t.Fatalf("%s: %v", specs[i], err)
		}
		if !holds {
			if tr == nil {
				t.Fatalf("%s: failed without a counterexample", specs[i])
			}
			validateTrace(t, specs[i], s, tr)
		}
		out = append(out, specVerdict{spec: specs[i], holds: holds, hasTrace: tr != nil})
	}
	return out
}

func compareVerdicts(t *testing.T, off, on []specVerdict) {
	t.Helper()
	if len(off) != len(on) {
		t.Fatalf("verdict count differs: %d off vs %d on", len(off), len(on))
	}
	for i := range off {
		if off[i].holds != on[i].holds {
			t.Errorf("%s: verdict differs with reordering (off=%v on=%v)",
				off[i].spec, off[i].holds, on[i].holds)
		}
		if off[i].hasTrace != on[i].hasTrace {
			t.Errorf("%s: trace presence differs with reordering (off=%v on=%v)",
				off[i].spec, off[i].hasTrace, on[i].hasTrace)
		}
	}
}

// complementOptions parametrizes the root differential suites by node
// representation; the structural (nocomp) runs are the oracle for the
// complement-edge engine.
var complementOptions = []struct {
	name string
	opts smv.CompileOptions
}{
	{"comp", smv.CompileOptions{}},
	{"nocomp", smv.CompileOptions{DisableComplementEdges: true}},
}

func TestReorderDifferentialModels(t *testing.T) {
	entries, err := os.ReadDir("models")
	if err != nil {
		t.Fatalf("models directory: %v", err)
	}
	var totalSifts uint64
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".smv") {
			continue
		}
		for _, rep := range complementOptions {
			rep := rep
			t.Run(ent.Name()+"/"+rep.name, func(t *testing.T) {
				src, err := os.ReadFile(filepath.Join("models", ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				run := func(reorder bool) []specVerdict {
					compiled, err := smv.CompileSourceWith(string(src), rep.opts)
					if err != nil {
						t.Fatal(err)
					}
					if reorder {
						compiled.S.M.EnableAutoReorder(&aggressiveReorder)
					}
					var specs []string
					var formulas []*ctl.Formula
					for _, sp := range compiled.Module.Specs {
						if err := compiled.ResolveSpecAtoms(sp.Formula); err != nil {
							t.Fatalf("%s: %v", sp.Source, err)
						}
						specs = append(specs, sp.Source)
						formulas = append(formulas, sp.Formula)
					}
					vs := checkAll(t, compiled.S, specs, formulas)
					if reorder {
						totalSifts += compiled.S.M.Stats.AutoReorders
						if err := bdd.CheckInvariants(compiled.S.M); err != nil {
							t.Fatalf("invariants after reordered run: %v", err)
						}
					}
					return vs
				}
				compareVerdicts(t, run(false), run(true))
			})
		}
	}
	// The differential is vacuous if no reordered run ever sifted.
	if totalSifts == 0 {
		t.Error("no model triggered a single auto-sift; lower the trigger thresholds")
	}
}

func TestReorderDifferentialArbiter(t *testing.T) {
	var formulas []*ctl.Formula
	for _, s := range circuit.ArbiterSpecs {
		formulas = append(formulas, ctl.MustParse(s))
	}
	run := func(reorder bool) []specVerdict {
		model, err := circuit.SeitzArbiter().Compile()
		if err != nil {
			t.Fatal(err)
		}
		if reorder {
			model.M.EnableAutoReorder(&aggressiveReorder)
		}
		vs := checkAll(t, model, circuit.ArbiterSpecs, formulas)
		if reorder {
			if model.M.Stats.AutoReorders == 0 {
				t.Error("arbiter run triggered no auto-sift; lower the trigger thresholds")
			}
			if err := bdd.CheckInvariants(model.M); err != nil {
				t.Fatalf("invariants after reordered run: %v", err)
			}
		}
		return vs
	}
	off := run(false)
	on := run(true)
	compareVerdicts(t, off, on)
	// The paper's headline spec must still fail with a counterexample.
	if off[0].holds || !off[0].hasTrace {
		t.Fatalf("AG (tr1 -> AF ta1) expected to fail with a trace: %+v", off[0])
	}
}
