package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
	"repro/internal/smv"
)

// TestModelTracesValidate exercises core's trace validators directly on
// every shipped model: for each SPEC we generate a counterexample (when
// the property fails) or a witness (when it holds and is existential in
// shape) and run the result through ValidatePath — and, for lassos on
// structures with fairness constraints, ValidateFairLasso. This is the
// end-to-end contract of the paper: every trace the generator emits is
// independently checkable against the model, whichever image path
// (partitioned or monolithic) produced it.
func TestModelTracesValidate(t *testing.T) {
	entries, err := os.ReadDir("models")
	if err != nil {
		t.Fatalf("models directory: %v", err)
	}
	validated := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".smv") {
			continue
		}
		t.Run(ent.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("models", ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := smv.CompileSource(string(src))
			if err != nil {
				t.Fatal(err)
			}
			s := compiled.S
			gen := core.NewGenerator(mc.New(s))
			for _, sp := range compiled.Module.Specs {
				if err := compiled.ResolveSpecAtoms(sp.Formula); err != nil {
					t.Fatalf("%s: %v", sp.Source, err)
				}
				holds, tr, err := gen.CounterexampleInit(sp.Formula)
				if err != nil {
					t.Fatalf("%s: %v", sp.Source, err)
				}
				if !holds {
					if tr == nil {
						t.Fatalf("%s: failed without a counterexample", sp.Source)
					}
					validateTrace(t, sp.Source, s, tr)
					validated++
					continue
				}
				// Satisfied specs with an existential top-level shape get a
				// witness from some initial state, validated the same way.
				switch sp.Formula.Kind {
				case ctl.KEX, ctl.KEU, ctl.KEG, ctl.KEF:
					start := s.PickState(s.Init)
					if start == nil {
						t.Fatalf("%s: no initial state", sp.Source)
					}
					tr, err := gen.Witness(sp.Formula, start)
					if err != nil {
						t.Fatalf("%s: witness: %v", sp.Source, err)
					}
					validateTrace(t, sp.Source, s, tr)
					validated++
				}
			}
			// Every failing LTLSPEC must produce a fair lasso over the
			// tableau product that validates against the product and,
			// projected onto the model, falsifies the formula.
			for _, sp := range compiled.Module.LTLSpecs {
				p, err := smv.CompileLTL(compiled.Module, sp.Formula, sp.Source)
				if err != nil {
					t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
				}
				ch := mc.New(p.S)
				holds, tr, err := p.Check(ch)
				if err != nil {
					t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
				}
				if !holds {
					if tr == nil {
						t.Fatalf("LTLSPEC %s: failed without a counterexample", sp.Source)
					}
					validateTrace(t, sp.Source, p.S, tr)
					if err := p.ReplayCounterexample(tr); err != nil {
						t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
					}
					validated++
				}
				ch.Close()
			}
		})
	}
	if validated == 0 {
		t.Fatal("no trace was generated across all models — test is vacuous")
	}
}

// scenarioVerdicts pins the expected verdict of every SPEC and LTLSPEC
// of the protocol scenario models, in declaration order. The tables
// encode the intended CTL/LTL contrast: on ABP's lossy channels
// acknowledgement stays *possible* (AG (send -> EF ack) holds) but is
// not *inevitable* (G (send -> F ack) fails); on Peterson, fairness
// gives bounded waiting while plain eventuality still fails.
var scenarioVerdicts = map[string]struct{ ctl, ltl []bool }{
	"abp.smv": {
		ctl: []bool{true, true, true, true},
		ltl: []bool{false, true, true, false, true},
	},
	"peterson.smv": {
		ctl: []bool{true, true, true, true},
		ltl: []bool{true, true, true, false, false, false},
	},
}

func TestScenarioModelVerdicts(t *testing.T) {
	for name, want := range scenarioVerdicts {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("models", name))
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := smv.CompileSource(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if got := len(compiled.Module.Specs); got != len(want.ctl) {
				t.Fatalf("model declares %d SPECs, table expects %d", got, len(want.ctl))
			}
			if got := len(compiled.Module.LTLSpecs); got != len(want.ltl) {
				t.Fatalf("model declares %d LTLSPECs, table expects %d", got, len(want.ltl))
			}
			gen := core.NewGenerator(mc.New(compiled.S))
			for i, sp := range compiled.Module.Specs {
				holds, _, err := gen.CounterexampleInit(sp.Formula)
				if err != nil {
					t.Fatalf("%s: %v", sp.Source, err)
				}
				if holds != want.ctl[i] {
					t.Errorf("SPEC %s: got %v, want %v", sp.Source, holds, want.ctl[i])
				}
			}
			for i, sp := range compiled.Module.LTLSpecs {
				holds, _, _, err := smv.CheckLTLSpec(compiled.Module, sp.Formula, sp.Source)
				if err != nil {
					t.Fatalf("%s: %v", sp.Source, err)
				}
				if holds != want.ltl[i] {
					t.Errorf("LTLSPEC %s: got %v, want %v", sp.Source, holds, want.ltl[i])
				}
			}
		})
	}
}

func validateTrace(t *testing.T, spec string, s *kripke.Symbolic, tr *core.Trace) {
	t.Helper()
	if err := core.ValidatePath(s, tr); err != nil {
		t.Fatalf("%s: invalid trace: %v", spec, err)
	}
	if tr.IsLasso() && len(s.Fair) > 0 {
		if err := core.ValidateFairLasso(s, tr); err != nil {
			t.Fatalf("%s: lasso violates fairness: %v", spec, err)
		}
	}
}
