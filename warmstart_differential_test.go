package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/smv"
	"repro/internal/smvd"
)

// Warm-start differential oracle: the smvd session cache must be
// invisible to verdicts. For every shipped model and every applicable
// engine config, the model's own specs are answered four ways —
//
//	reference  single-shot check, no care set, no cache (cmd/smv's path)
//	cold       first query on a fresh smvd session
//	hot        second query on the same session (cached reachable/fair
//	           sets + subformula memo)
//	warm       first query after a simulated restart, seeded from the
//	           on-disk serialize-v3 record (adopted variable order,
//	           restored reachable and fair sets)
//
// — and all four must agree on reachable-state counts, CTL and LTL
// verdicts spec by spec, and every failing spec must carry a trace that
// validated against the model structure that produced it.

func TestWarmStartDifferentialModels(t *testing.T) {
	entries, err := os.ReadDir("models")
	if err != nil {
		t.Fatalf("models directory: %v", err)
	}
	checkedSpecs := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".smv") {
			continue
		}
		src, err := os.ReadFile(filepath.Join("models", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		module, err := smv.ParseModule(string(src))
		if err != nil {
			t.Fatal(err)
		}
		if len(module.Specs) == 0 && len(module.LTLSpecs) == 0 {
			continue
		}
		probe, err := smv.CompileSource(string(src))
		if err != nil {
			t.Fatal(err)
		}
		cfgs := []struct {
			name string
			cfg  smvd.Config
		}{
			{"default", smvd.Config{}},
			{"nocomp", smvd.Config{NoComplement: true}},
		}
		if probe.S.NumDisjuncts() > 0 {
			cfgs = append(cfgs, struct {
				name string
				cfg  smvd.Config
			}{"disjunctive", smvd.Config{Disjunctive: true, Workers: 2}})
		}
		for _, c := range cfgs {
			c := c
			t.Run(ent.Name()+"/"+c.name, func(t *testing.T) {
				checkedSpecs += compareWarmPaths(t, string(src), module, c.cfg)
			})
		}
	}
	if checkedSpecs == 0 {
		t.Fatal("no spec was compared — differential is vacuous")
	}
}

// warmRefRun is the single-shot reference: plain checking without care
// sets or caches, exactly what cmd/smv does by default.
type warmRefRun struct {
	reachable float64
	holds     []bool
	specs     []string
}

func warmReferenceRun(t *testing.T, src string, cfg smvd.Config) warmRefRun {
	t.Helper()
	c, err := smv.CompileSourceWith(src, smv.CompileOptions{
		DisableComplementEdges: cfg.NoComplement,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Disjunctive && c.S.NumDisjuncts() > 0 {
		c.S.EnableDisjunct(true)
		c.S.SetWorkers(cfg.Workers)
	}
	out := warmRefRun{}
	reach, _ := c.S.Reachable()
	out.reachable = c.S.CountStates(reach)

	gen := core.NewGenerator(mc.New(c.S))
	for _, sp := range c.Module.Specs {
		if err := c.ResolveSpecAtoms(sp.Formula); err != nil {
			t.Fatalf("%s: %v", sp.Source, err)
		}
		holds, tr, err := gen.CounterexampleInit(sp.Formula)
		if err != nil {
			t.Fatalf("%s: %v", sp.Source, err)
		}
		if !holds {
			if err := core.ValidatePath(c.S, tr); err != nil {
				t.Fatalf("%s: reference trace invalid: %v", sp.Source, err)
			}
		}
		out.holds = append(out.holds, holds)
		out.specs = append(out.specs, sp.Source)
	}
	for _, sp := range c.Module.LTLSpecs {
		p, err := smv.CompileLTLWith(c.Module, sp.Formula, sp.Source, smv.CompileOptions{
			DisableComplementEdges: cfg.NoComplement,
		})
		if err != nil {
			t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
		}
		if cfg.Disjunctive && p.S.NumDisjuncts() > 0 {
			p.S.EnableDisjunct(true)
			p.S.SetWorkers(cfg.Workers)
		}
		ch := mc.New(p.S)
		holds, tr, err := p.Check(ch)
		if err != nil {
			t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
		}
		if !holds {
			if err := p.ReplayCounterexample(tr); err != nil {
				t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
			}
		}
		out.holds = append(out.holds, holds)
		out.specs = append(out.specs, sp.Source)
		ch.Close()
	}
	return out
}

func checkAgainstReference(t *testing.T, label string, ref warmRefRun, resp *smvd.CheckResponse) {
	t.Helper()
	if resp.ReachableStates != ref.reachable {
		t.Errorf("%s: reachable states %v, reference %v", label, resp.ReachableStates, ref.reachable)
	}
	if len(resp.Verdicts) != len(ref.holds) {
		t.Fatalf("%s: %d verdicts, reference has %d", label, len(resp.Verdicts), len(ref.holds))
	}
	for i, v := range resp.Verdicts {
		if v.Error != "" {
			t.Errorf("%s: %q errored: %s", label, v.Spec, v.Error)
			continue
		}
		if v.Holds != ref.holds[i] {
			t.Errorf("%s: %q holds=%v, reference %v", label, v.Spec, v.Holds, ref.holds[i])
		}
		if !v.Holds && (!v.Validated || v.Trace == "") {
			t.Errorf("%s: failing %q lacks a validated trace", label, v.Spec)
		}
	}
}

func compareWarmPaths(t *testing.T, src string, module *smv.Module, cfg smvd.Config) int {
	t.Helper()
	req := &smvd.CheckRequest{Model: src, Config: cfg}
	for _, sp := range module.Specs {
		req.Specs = append(req.Specs, sp.Source)
	}
	for _, sp := range module.LTLSpecs {
		req.LTL = append(req.LTL, sp.Source)
	}

	ref := warmReferenceRun(t, src, cfg)

	dir := t.TempDir()
	cache1, err := smvd.NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	sv1 := smvd.NewServer(cache1)
	cold, err := sv1.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warm {
		t.Fatal("first query reported warm")
	}
	hot, err := sv1.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if !hot.Warm || hot.WarmSource != "" {
		t.Fatalf("second query not hot: warm=%v source=%q", hot.Warm, hot.WarmSource)
	}
	if err := sv1.Cache.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Simulated restart: a new cache over the same directory.
	cache2, err := smvd.NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	sv2 := smvd.NewServer(cache2)
	warm, err := sv2.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || warm.WarmSource != "disk" {
		t.Fatalf("restarted query not disk-warm: warm=%v source=%q", warm.Warm, warm.WarmSource)
	}
	if warm.ReachIters != cold.ReachIters {
		t.Errorf("warm restart changed frontier iterations: %d vs %d", warm.ReachIters, cold.ReachIters)
	}

	checkAgainstReference(t, "cold", ref, cold)
	checkAgainstReference(t, "hot", ref, hot)
	checkAgainstReference(t, "warm", ref, warm)
	return len(ref.holds)
}
