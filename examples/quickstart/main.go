// Quickstart: model a tiny mutual-exclusion protocol in the SMV-like
// input language, check CTL specifications, and print the counterexample
// trace for the one that fails.
//
// Process 1 respects a turn-based tie breaker, but process 2 was
// "optimized" to enter whenever process 1 is not *currently* in the
// critical section — a classic check-then-act race. The checker finds
// the interleaving where both enter simultaneously and prints it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/smv"
)

const model = `
MODULE main
VAR
  p1 : {idle, trying, critical};
  p2 : {idle, trying, critical};
  turn : boolean;  -- tie breaker: FALSE -> p1 goes first
ASSIGN
  init(p1) := idle;
  init(p2) := idle;
  next(p1) := case
    p1 = idle                        : {idle, trying};
    p1 = trying & (p2 = idle | !turn) : critical;
    p1 = critical                     : idle;
    TRUE                              : p1;
  esac;
  next(p2) := case
    p2 = idle                  : {idle, trying};
    p2 = trying & p1 != critical : critical;   -- BUG: races with p1's entry
    p2 = critical                : idle;
    TRUE                         : p2;
  esac;
  next(turn) := case
    p1 = critical : TRUE;
    p2 = critical : FALSE;
    TRUE          : turn;
  esac;
DEFINE
  both := p1 = critical & p2 = critical;

SPEC AG !both                          -- safety: FAILS (the race)
SPEC AG EF p1 = critical               -- p1 can always eventually enter
SPEC AG (p1 = critical -> AX p1 = idle) -- the section is released
`

func main() {
	compiled, err := smv.CompileSource(model)
	if err != nil {
		log.Fatal(err)
	}

	reach, _ := compiled.S.Reachable()
	fmt.Printf("model compiled: %d state bits, %.0f reachable states\n\n",
		len(compiled.S.Vars), compiled.S.CountStates(reach))

	results, checker := compiled.CheckAll()
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("SPEC %s: %v", r.Spec.Source, r.Err)
		}
		if r.Holds {
			fmt.Printf("-- specification %s is true\n", r.Spec.Source)
			continue
		}
		fmt.Printf("-- specification %s is false\n", r.Spec.Source)
		fmt.Println("-- as demonstrated by the following execution sequence:")
		fmt.Print(compiled.TraceString(r.Trace))
		fmt.Println()
	}

	fmt.Printf("\nfixpoint work: %d EU iterations, %d EG iterations, peak %d BDD nodes\n",
		checker.Stats.EUIterations, checker.Stats.EGIterations, checker.Stats.PeakNodes)
}
