// Arbiter debugging walkthrough: the paper's Section 6 case study as a
// library user would experience it. The example compiles the
// reconstructed Seitz speed-independent arbiter, verifies its safety
// properties, then checks the liveness specification AG(tr1 -> AF ta1),
// prints the counterexample with a narrative of the failure mechanism,
// and independently validates the trace against the model.
//
// Run with:
//
//	go run ./examples/arbiterdebug
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/mc"
)

func main() {
	netlist := circuit.SeitzArbiter()
	model, err := netlist.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist %q: %d gates, %d ME element(s), %d inputs\n",
		netlist.Name, len(netlist.Gates), len(netlist.Mutexes), len(netlist.Inputs))
	fmt.Printf("speed-independent semantics: %d fairness constraints (one per gate)\n\n",
		len(model.Fair))

	checker := mc.New(model)
	gen := core.NewGenerator(checker)

	// Safety first: the ME element never grants both sides.
	safe, _, err := gen.CounterexampleInit(ctl.MustParse("AG !(meol & meor)"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutual exclusion AG !(meol & meor): %v\n", verdict(safe))

	// The paper's failing liveness property.
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	holds, tr, err := gen.CounterexampleInit(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("liveness AG (tr1 -> AF ta1):      %v\n\n", verdict(holds))
	if holds {
		return
	}

	if err := core.ValidatePath(model, tr); err != nil {
		log.Fatalf("generated trace failed validation: %v", err)
	}
	fmt.Printf("counterexample: %d states (prefix %d, cycle %d) — validated\n",
		tr.Len(), tr.PrefixLen(), tr.CycleLen())
	fmt.Println("the failure mechanism, step by step (delta trace):")
	fmt.Print(tr.DeltaString())

	fmt.Println(`
reading the trace against the paper's narrative:
  1. ur1 rises; meil (OR1), the ME grant meol, tr1 (AND1), ta1, sr, sa
     and ua1 follow — the first handshake completes normally;
  2. ur1 withdraws; tr1 and ta1 fall, but the ME element is slow: meol
     stays high after meil has dropped (every node low except meol);
  3. ur1 rises again and AND1 fires tr1 from the *stale* grant while the
     slow OR1 keeps meil low;
  4. the ME finally reacts to the old meil=0 by withdrawing meol — tr1
     pulses low and back high once the grant returns, with ta1 still low;
  5. ua1 is still high from the first handshake, so the 4-phase
     environment may withdraw ur1 — and never request again: the circuit
     quiesces on a fair cycle where ta1 never rises.`)
}

func verdict(ok bool) string {
	if ok {
		return "holds"
	}
	return "FAILS"
}
