// Language-containment example (Section 8): verify a retry-based
// transmitter implementation against a deterministic Streett
// specification, get a concrete counterexample *word* when it fails,
// then strengthen the implementation with a fairness pair and watch the
// check go through.
//
// Alphabet: send, retry, done.
//
//	Spec:  every behaviour must have infinitely many "done"
//	       (a Streett pair forcing progress).
//	Impl1: a transmitter that may retry forever       -> NOT contained
//	Impl2: the same with a Streett pair ruling out
//	       endless retries                            -> contained
//
// Run with:
//
//	go run ./examples/containment
package main

import (
	"fmt"
	"log"

	"repro/internal/automata"
)

var alphabet = []string{"send", "retry", "done"}

// spec accepts exactly the words with infinitely many "done": state 1
// after a done, state 0 otherwise; pair (∅, {1}) requires inf ∩ {1} ≠ ∅.
func spec() *automata.Streett {
	a := automata.NewStreett("spec: infinitely many done", 2, alphabet)
	a.Init = 0
	for _, q := range []int{0, 1} {
		a.AddTrans(q, "send", 0)
		a.AddTrans(q, "retry", 0)
		a.AddTrans(q, "done", 1)
	}
	a.AddPair("progress", nil, []int{1})
	return a
}

// transmitter models: state 0 = idle, 1 = sending.
// idle --send--> sending; sending --retry--> sending; sending --done--> idle.
// Without any acceptance pair constraining retries, the run
// send retry^ω is accepted.
func transmitter(fairRetries bool) *automata.Streett {
	name := "impl: transmitter"
	if fairRetries {
		name += " (fair retries)"
	}
	a := automata.NewStreett(name, 2, alphabet)
	a.Init = 0
	a.AddTrans(0, "send", 1)
	a.AddTrans(1, "retry", 1)
	a.AddTrans(1, "done", 0)
	if fairRetries {
		// Streett pair: stay in {} forever or hit idle infinitely often —
		// i.e. a transmission always eventually completes.
		a.AddPair("eventually-done", nil, []int{0})
	} else {
		all := []int{0, 1}
		a.AddPair("any", all, nil)
	}
	a.MakeComplete()
	return a
}

func main() {
	for _, fair := range []bool{false, true} {
		k := transmitter(fair)
		kp := spec()
		res, err := automata.CheckContainment(k, kp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L(%s) ⊆ L(%s)?\n", k.Name, kp.Name)
		if res.Contained {
			fmt.Println("  yes — every implementation behaviour makes progress")
		} else {
			fmt.Printf("  NO — counterexample word: %s\n", res.Word.Format(alphabet))
			fmt.Printf("  (violates specification pair %d; product trace: %d states, cycle %d)\n",
				res.ViolatedPair, res.Trace.Len(), res.Trace.CycleLen())
			// Double-check the word against both automata.
			inK, err := k.Accepts(res.Word)
			if err != nil {
				log.Fatal(err)
			}
			inKp, err := kp.Accepts(res.Word)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  verified: accepted by implementation = %v, by specification = %v\n",
				inK, inKp)
		}
		fmt.Println()
	}
}
