// Traffic-light controller with a pedestrian button: a liveness-centric
// example exercising fairness constraints and witness generation for the
// CTL* fragment of Section 7.
//
// The controller cycles green -> yellow -> red; a pedestrian request is
// latched and must be served while red. Without a fairness constraint
// the controller may stay green forever; with FAIRNESS the liveness
// property holds. The example also asks the Section 7 engine for a
// witness of the *existence* of a run that serves the pedestrian
// infinitely often.
//
// Run with:
//
//	go run ./examples/trafficlight
package main

import (
	"fmt"
	"log"

	"repro/internal/ctl"
	"repro/internal/ctlstar"
	"repro/internal/mc"
	"repro/internal/smv"
)

const model = `
MODULE main
VAR
  light : {green, yellow, red};
  btn   : boolean;   -- pedestrian button (environment)
  walk  : boolean;   -- walk sign
ASSIGN
  init(light) := green;
  init(walk)  := FALSE;
  next(light) := case
    light = green  : {green, yellow};  -- may dawdle on green
    light = yellow : red;
    light = red    : {red, green};     -- may dawdle on red
  esac;
  next(walk) := case
    next(light) = red & btn : TRUE;
    next(light) = red       : walk;
    TRUE                    : FALSE;   -- walk only while red
  esac;
DEFINE
  serving := walk & light = red;
FAIRNESS light = yellow   -- the controller eventually leaves green
FAIRNESS light = green    -- ... and eventually returns to green
SPEC AG (btn & light = green -> AF light = red)
SPEC AG (walk -> light = red)
SPEC AG EF serving
`

func main() {
	compiled, err := smv.CompileSource(model)
	if err != nil {
		log.Fatal(err)
	}
	results, _ := compiled.CheckAll()
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("SPEC %s: %v", r.Spec.Source, r.Err)
		}
		status := "is true"
		if !r.Holds {
			status = "is false"
		}
		fmt.Printf("-- specification %s %s\n", r.Spec.Source, status)
		if !r.Holds {
			fmt.Print(compiled.TraceString(r.Trace))
		}
	}

	// Section 7: is there a single run on which the pedestrian is served
	// infinitely often AND the light is green infinitely often? Ask for
	// a witness lasso.
	sc := ctlstar.New(mc.New(compiled.S))
	f := ctlstar.Formula{
		{ctlstar.GFTerm(ctl.Atom("serving"))},
		{ctlstar.GFTerm(ctl.Eq("light", "green"))},
	}
	set, err := sc.Check(f)
	if err != nil {
		log.Fatal(err)
	}
	init := compiled.S.PickState(compiled.S.Init)
	if !compiled.S.Holds(set, init) {
		fmt.Println("\nno run serves the pedestrian infinitely often — model bug?")
		return
	}
	tr, err := sc.Witness(f, init)
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.ValidateWitness(f, tr); err != nil {
		log.Fatalf("witness failed validation: %v", err)
	}
	fmt.Printf("\nwitness for %s (validated):\n", f)
	fmt.Print(compiled.TraceString(tr))
}
