// Asynchronous processes, starvation, and the three forms of
// counterexample output.
//
// The model is the classic SMV semaphore: two `process` instances
// compete for a shared flag, with interleaving semantics and
// FAIRNESS running. Mutual exclusion holds; the liveness property
// AG(entering -> AF critical) fails because a hostile scheduler can
// starve process 1 forever. The example prints the refutation three
// ways:
//
//  1. the raw lasso trace (Section 6 of the paper),
//  2. the compacted trace (the Section 9 "shorter counterexamples"
//     extension),
//  3. the hierarchical explanation tree (the Section 9 "more readable"
//     extension).
//
// Run with:
//
//	go run ./examples/semaphore
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
	"repro/internal/smv"
)

const model = `
MODULE user(sem)
VAR st : {idle, entering, critical, exiting};
ASSIGN
  init(st) := idle;
  next(st) := case
    st = idle            : {idle, entering};
    st = entering & !sem : critical;
    st = critical        : {critical, exiting};
    st = exiting         : idle;
    TRUE                 : st;
  esac;
  next(sem) := case
    st = entering & !sem : TRUE;
    st = exiting         : FALSE;
    TRUE                 : sem;
  esac;
FAIRNESS running
DEFINE in_cs := st = critical;

MODULE main
VAR
  sem : boolean;
  p1 : process user(sem);
  p2 : process user(sem);
ASSIGN init(sem) := FALSE;
`

func main() {
	compiled, err := smv.CompileSource(model)
	if err != nil {
		log.Fatal(err)
	}
	checker := mc.New(compiled.S)
	gen := core.NewGenerator(checker)

	mutex := ctl.MustParse("AG !(p1.in_cs & p2.in_cs)")
	live := ctl.MustParse("AG (p1.st = entering -> AF p1.in_cs)")

	ok, _, err := gen.CounterexampleInit(mutex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutual exclusion: %v\n", verdict(ok))

	ok, tr, err := gen.CounterexampleInit(live)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("liveness for p1:  %v\n\n", verdict(ok))
	if ok {
		return
	}

	fmt.Printf("1) raw lasso counterexample (%d states, cycle %d):\n%s\n",
		tr.Len(), tr.CycleLen(), compiled.TraceString(tr))

	removed := core.Compact(compiled.S, tr, bdd.True)
	if err := core.ValidatePath(compiled.S, tr); err != nil {
		log.Fatalf("compaction broke the trace: %v", err)
	}
	fmt.Printf("2) after compaction (removed %d states):\n%s\n",
		removed, compiled.TraceString(tr))

	tree, err := gen.CounterexampleTree(live, tr.States[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Validate(compiled.S); err != nil {
		log.Fatalf("tree invalid: %v", err)
	}
	fmt.Printf("3) explanation tree (%d nodes):\n%s",
		tree.Size(), tree.Render(func(st kripke.State) string {
			return compiled.FormatStateByVars(st)
		}))
	fmt.Println("\nreading it: the root reaches a state where p1 is entering yet a fair")
	fmt.Println("scheduling loop exists (the EG lasso) on which p1 never enters — p2 and")
	fmt.Println("the scheduler conspire to grab the semaphore at every opportunity.")
}

func verdict(ok bool) string {
	if ok {
		return "holds"
	}
	return "FAILS"
}
