package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/ltl"
	"repro/internal/mc"
	"repro/internal/smv"
)

// On a total structure the universal fragments of CTL and LTL agree on
// these template pairs (under the same fairness constraints):
//
//	G p            ≡ AG p
//	F p            ≡ AF p
//	G (r -> F a)   ≡ AG (r -> AF a)
//
// The differential harness instantiates the templates with the boolean
// atoms of every shipped model and demands identical verdicts from the
// CTL checker and the tableau-product LTL checker, in every image mode
// (monolithic, partitioned, and — on process models — disjunctive with
// parallel workers). A divergence means one of the two pipelines is
// wrong; the pair localizes which fixpoint to suspect.

// booleanAtoms collects identifiers usable as boolean atoms: DEFINEs
// that resolve as plain atoms first (they name the interesting protocol
// events), then boolean state variables.
func booleanAtoms(c *smv.Compiled, max int) []string {
	var out []string
	for _, d := range c.Module.Defines {
		if _, err := c.S.AtomSet(ctl.Atom(d.Name)); err == nil {
			out = append(out, d.Name)
		}
	}
	for _, name := range c.Order {
		if c.Vars[name].Decl.Type.Kind == smv.TypeBool {
			out = append(out, name)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

type specPair struct{ ltlSrc, ctlSrc string }

func templatePairs(atoms []string) []specPair {
	var out []specPair
	for _, p := range atoms {
		out = append(out,
			specPair{fmt.Sprintf("G %s", p), fmt.Sprintf("AG %s", p)},
			specPair{fmt.Sprintf("F %s", p), fmt.Sprintf("AF %s", p)},
		)
	}
	for i, r := range atoms {
		a := atoms[(i+1)%len(atoms)]
		out = append(out, specPair{
			fmt.Sprintf("G (%s -> F %s)", r, a),
			fmt.Sprintf("AG (%s -> AF %s)", r, a),
		})
	}
	return out
}

func TestLTLvsCTLDifferential(t *testing.T) {
	entries, err := os.ReadDir("models")
	if err != nil {
		t.Fatalf("models directory: %v", err)
	}
	checked := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".smv") {
			continue
		}
		t.Run(ent.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("models", ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			module, err := smv.ParseModule(string(src))
			if err != nil {
				t.Fatal(err)
			}
			base, err := smv.Compile(module)
			if err != nil {
				t.Fatal(err)
			}
			if !base.S.IsTotal() {
				t.Skip("deadlocking model: CTL and LTL semantics diverge")
			}
			atoms := booleanAtoms(base, 4)
			if len(atoms) == 0 {
				t.Skip("no boolean atoms")
			}
			pairs := templatePairs(atoms)

			modes := []struct {
				name string
				on   bool
			}{
				{"monolithic", true},
				{"partitioned", true},
				{"disjunctive", base.S.NumDisjuncts() > 0},
			}
			for _, mode := range modes {
				if !mode.on {
					continue
				}
				for _, rep := range complementOptions {
					mode, rep := mode, rep
					t.Run(mode.name+"/"+rep.name, func(t *testing.T) {
						configure := func(c *smv.Compiled) {
							switch mode.name {
							case "monolithic":
								c.S.EnablePartition(false)
							case "disjunctive":
								c.S.EnableDisjunct(true)
								c.S.SetWorkers(2)
							}
						}
						cc, err := smv.CompileWith(module, rep.opts)
						if err != nil {
							t.Fatal(err)
						}
						configure(cc)
						gen := core.NewGenerator(mc.New(cc.S))
						for _, pr := range pairs {
							cf, err := ctl.Parse(pr.ctlSrc)
							if err != nil {
								t.Fatalf("ctl %q: %v", pr.ctlSrc, err)
							}
							lf, err := ltl.Parse(pr.ltlSrc)
							if err != nil {
								t.Fatalf("ltl %q: %v", pr.ltlSrc, err)
							}
							ctlHolds, _, err := gen.CounterexampleInit(cf)
							if err != nil {
								t.Fatalf("%q: %v", pr.ctlSrc, err)
							}
							p, err := smv.CompileLTLWith(module, lf, pr.ltlSrc, rep.opts)
							if err != nil {
								t.Fatalf("%q: %v", pr.ltlSrc, err)
							}
							configure(p.Compiled)
							ch := mc.New(p.S)
							ltlHolds, tr, err := p.Check(ch)
							if err != nil {
								t.Fatalf("%q: %v", pr.ltlSrc, err)
							}
							if tr != nil {
								if err := p.ReplayCounterexample(tr); err != nil {
									t.Errorf("%q: %v", pr.ltlSrc, err)
								}
							}
							ch.Close()
							if ctlHolds != ltlHolds {
								t.Errorf("%q says %v but %q says %v",
									pr.ctlSrc, ctlHolds, pr.ltlSrc, ltlHolds)
							}
							checked++
						}
					})
				}
			}
		})
	}
	if checked == 0 {
		t.Fatal("no template pair was checked — differential is vacuous")
	}
}
