// Package repro's root benchmark harness: one benchmark per evaluation
// artifact of the paper (see DESIGN.md §2 and EXPERIMENTS.md), plus
// micro-benchmarks for the BDD substrate. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/bdd"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/ctlstar"
	"repro/internal/explicit"
	"repro/internal/graph"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// --- E1: the Seitz arbiter case study ---------------------------------

// BenchmarkArbiterReachability measures the symbolic reachability sweep
// of the arbiter (paper: 33,633 states, "a few minutes" total).
func BenchmarkArbiterReachability(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Reachable()
	}
}

// BenchmarkArbiterCounterexample measures end-to-end counterexample
// generation for AG(tr1 -> AF ta1), the paper's headline experiment.
func BenchmarkArbiterCounterexample(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		ok, tr, err := gen.CounterexampleInit(spec)
		if err != nil || ok || tr == nil {
			b.Fatalf("expected counterexample: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkArbiterFullVerification checks all four arbiter specs.
func BenchmarkArbiterFullVerification(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	var specs []*ctl.Formula
	for _, s := range circuit.ArbiterSpecs {
		specs = append(specs, ctl.MustParse(s))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		for _, f := range specs {
			if _, _, err := gen.CounterexampleInit(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E2/E3: witness construction across SCC shapes --------------------

func figure1Model() *kripke.Explicit {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false})
	e.AddFairSet("h2", []bool{false, false, true})
	return e
}

func sccChain(depth int) *kripke.Explicit {
	e := kripke.NewExplicit(2 * depth)
	h1 := make([]bool, 2*depth)
	h2 := make([]bool, 2*depth)
	for i := 0; i < depth; i++ {
		a, c := 2*i, 2*i+1
		e.AddEdge(a, c)
		e.AddEdge(c, a)
		if i < depth-1 {
			e.AddEdge(c, a+2)
		}
		h1[a] = true
		if i == depth-1 {
			h2[c] = true
		}
	}
	e.AddInit(0)
	e.AddFairSet("h1", h1)
	e.AddFairSet("h2", h2)
	return e
}

// BenchmarkWitnessSingleSCC: Figure 1 — the cycle closes immediately.
func BenchmarkWitnessSingleSCC(b *testing.B) {
	s := kripke.FromExplicit(figure1Model())
	start := kripke.IndexState(0, len(s.Vars))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(s))
		if _, err := gen.WitnessEG(bdd.True, start); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWitnessMultiSCC: Figure 2 — the walk restarts down the SCC
// DAG; parameterized by chain depth and strategy.
func BenchmarkWitnessMultiSCC(b *testing.B) {
	for _, depth := range []int{3, 6, 12} {
		e := sccChain(depth)
		s := kripke.FromExplicit(e)
		start := kripke.IndexState(0, len(s.Vars))
		for _, strat := range []core.Strategy{core.StrategySimple, core.StrategyPrecompute} {
			b.Run(fmt.Sprintf("depth=%d/strategy=%s", depth, strat), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					gen := core.NewGenerator(mc.New(s))
					gen.Strategy = strat
					if _, err := gen.WitnessEG(bdd.True, start); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E4: minimal vs heuristic witnesses (Theorem 1) -------------------

// BenchmarkMinimalWitnessBruteForce: the NP-complete exact problem.
func BenchmarkMinimalWitnessBruteForce(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		r := rand.New(rand.NewSource(int64(n)))
		e := kripke.RandomExplicit(r, n, 2, nil, 2, 0.3)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graph.MinimalFiniteWitness(e, e.Init[0], e.N*(len(e.Fair)+1))
			}
		})
	}
}

// BenchmarkHeuristicWitness: the paper's polynomial heuristic on the
// same instances.
func BenchmarkHeuristicWitness(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		r := rand.New(rand.NewSource(int64(n)))
		e := kripke.RandomExplicit(r, n, 2, nil, 2, 0.3)
		s := kripke.FromExplicit(e)
		start := kripke.IndexState(e.Init[0], len(s.Vars))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			probe := core.NewGenerator(mc.New(s))
			if !s.Holds(probe.C.Fair(), start) {
				b.Skipf("n=%d: start state is unfair", n)
			}
			for i := 0; i < b.N; i++ {
				gen := core.NewGenerator(mc.New(s))
				if _, err := gen.WitnessEG(bdd.True, start); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHamiltonianReduction exercises the Theorem 1 reduction.
func BenchmarkHamiltonianReduction(b *testing.B) {
	succ := [][]int{{1}, {2}, {3}, {4}, {0}} // 5-ring
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !graph.HamiltonianViaWitness(succ) {
			b.Fatal("ring must be Hamiltonian")
		}
	}
}

// --- E5: the CTL* fragment (Section 7) --------------------------------

func ctlstarModel() *kripke.Symbolic {
	r := rand.New(rand.NewSource(5))
	e := kripke.RandomExplicit(r, 24, 3, []string{"p", "q"}, 1, 0.3)
	return kripke.FromExplicit(e)
}

// BenchmarkCTLStarCheck compares the Emerson–Lei fixpoint against the
// exponential case split.
func BenchmarkCTLStarCheck(b *testing.B) {
	s := ctlstarModel()
	f := ctlstar.MustParse("E (GF p | FG q) & (GF q | FG p)")
	b.Run("emerson-lei", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := ctlstar.New(mc.New(s))
			if _, err := sc.CheckEL(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("case-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := ctlstar.New(mc.New(s))
			if _, err := sc.CheckSplit(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCTLStarWitness measures fragment witness generation.
func BenchmarkCTLStarWitness(b *testing.B) {
	s := ctlstarModel()
	f := ctlstar.MustParse("E (GF p | FG q) & (GF q | FG p)")
	sc := ctlstar.New(mc.New(s))
	set, err := sc.Check(f)
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := s.Reachable()
	states := s.EnumStates(s.M.And(reach, set), 1)
	if len(states) == 0 {
		b.Skip("formula unsatisfied on this model")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := ctlstar.New(mc.New(s))
		if _, err := sc.Witness(f, states[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Streett containment (Section 8) ------------------------------

// BenchmarkStreettContainment measures a failing containment check
// including counterexample word extraction.
func BenchmarkStreettContainment(b *testing.B) {
	mkAll := func() *automata.Streett {
		a := automata.NewStreett("all", 1, []string{"a", "b"})
		a.AddTrans(0, "a", 0)
		a.AddTrans(0, "b", 0)
		a.AddPair("trivial", []int{0}, nil)
		return a
	}
	mkInfA := func() *automata.Streett {
		a := automata.NewStreett("infA", 2, []string{"a", "b"})
		a.Init = 1
		a.AddTrans(0, "a", 0)
		a.AddTrans(0, "b", 1)
		a.AddTrans(1, "a", 0)
		a.AddTrans(1, "b", 1)
		a.AddPair("inf-a", nil, []int{0})
		return a
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := automata.CheckContainment(mkAll(), mkInfA())
		if err != nil || res.Contained {
			b.Fatalf("containment must fail: %v", err)
		}
	}
}

// --- E7: symbolic vs explicit (the EMC baseline) ----------------------

// BenchmarkSymbolicVsExplicit contrasts symbolic reachability with
// explicit enumeration on chained arbiters.
func BenchmarkSymbolicVsExplicit(b *testing.B) {
	for _, k := range []int{1, 2} {
		model, err := circuit.ScaledArbiter(k).Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("symbolic/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.Reachable()
			}
		})
		if k == 1 {
			b.Run(fmt.Sprintf("explicit/k=%d", k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := model.ToExplicit(0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExplicitCTL measures the EMC-style checker on an enumerated
// arbiter, for comparison with the symbolic one.
func BenchmarkExplicitCTL(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	e, _, err := model.ToExplicit(0)
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := explicit.New(e)
		if _, err := c.Check(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicCTL is the symbolic counterpart of
// BenchmarkExplicitCTL (checking only, no counterexample).
func BenchmarkSymbolicCTL(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mc.New(model)
		if _, err := c.Check(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- BDD substrate micro-benchmarks ------------------------------------

// BenchmarkBDDIte builds a dense random function tree.
func BenchmarkBDDIte(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := bdd.New(16)
		f := bdd.False
		for v := 0; v < 16; v++ {
			f = m.Xor(f, m.Var(v))
		}
		g := bdd.True
		for v := 0; v < 16; v += 2 {
			g = m.And(g, m.Or(m.Var(v), m.Var(v+1)))
		}
		m.Ite(f, g, m.Not(g))
	}
}

// BenchmarkRelationalProduct measures the fused AndExists on the
// arbiter's transition relation — the checker's inner loop.
func BenchmarkRelationalProduct(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := model.Reachable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Preimage(reach)
	}
}

// BenchmarkSatCount measures model counting on the reachable set.
func BenchmarkSatCount(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := model.Reachable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.CountStates(reach)
	}
}

// BenchmarkPartitionedVsMonolithic is the E11 ablation: early-quantified
// clustered image computation vs. the monolithic relation.
func BenchmarkPartitionedVsMonolithic(b *testing.B) {
	for _, k := range []int{1, 2} {
		model, err := circuit.ScaledArbiter(k).Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("partitioned/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.Reachable()
			}
		})
		model.SetClusters(nil)
		b.Run(fmt.Sprintf("monolithic/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.Reachable()
			}
		})
	}
}

// BenchmarkTreeArbiterHazard measures the second case study (E12): the
// stale-ack hazard hunt on the 4-user tree arbiter.
func BenchmarkTreeArbiterHazard(b *testing.B) {
	model, err := circuit.TreeArbiter(2).Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse(circuit.TreeArbiterMutexSpec(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		ok, _, err := gen.CounterexampleInit(spec)
		if err != nil || ok {
			b.Fatalf("hazard must be found: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkTraceCompaction measures the Section 9 extension on the
// arbiter counterexample.
func BenchmarkTraceCompaction(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		_, tr, err := gen.CounterexampleInit(spec)
		if err != nil {
			b.Fatal(err)
		}
		core.Compact(model, tr, bdd.True)
	}
}

// BenchmarkBDDSerialization round-trips the arbiter's reachable set.
func BenchmarkBDDSerialization(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := model.Reachable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := model.M.Save(&buf, []bdd.Ref{reach}); err != nil {
			b.Fatal(err)
		}
		if _, err := model.M.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReorder measures offline variable reordering on an
// interleaving-sensitive function.
func BenchmarkReorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bdd.New(12)
		f := bdd.True
		for v := 0; v < 6; v++ {
			f = m.And(f, m.Eq(m.Var(v), m.Var(v+6)))
		}
		order := make([]int, 12)
		for v := 0; v < 6; v++ {
			order[2*v] = v
			order[2*v+1] = v + 6
		}
		m.Reorder(order, []bdd.Ref{f})
	}
}
