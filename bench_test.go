// Package repro's root benchmark harness: one benchmark per evaluation
// artifact of the paper (see DESIGN.md §2 and EXPERIMENTS.md), plus
// micro-benchmarks for the BDD substrate. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/automata"
	"repro/internal/bdd"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/ctlstar"
	"repro/internal/explicit"
	"repro/internal/graph"
	"repro/internal/kripke"
	"repro/internal/mc"
	"repro/internal/modelgen"
	"repro/internal/smv"
	"repro/internal/smvd"
)

// --- E1: the Seitz arbiter case study ---------------------------------

// BenchmarkArbiterReachability measures the symbolic reachability sweep
// of the arbiter (paper: 33,633 states, "a few minutes" total).
func BenchmarkArbiterReachability(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Reachable()
	}
}

// BenchmarkArbiterCounterexample measures end-to-end counterexample
// generation for AG(tr1 -> AF ta1), the paper's headline experiment.
func BenchmarkArbiterCounterexample(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		ok, tr, err := gen.CounterexampleInit(spec)
		if err != nil || ok || tr == nil {
			b.Fatalf("expected counterexample: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkArbiterFullVerification checks all four arbiter specs.
func BenchmarkArbiterFullVerification(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	var specs []*ctl.Formula
	for _, s := range circuit.ArbiterSpecs {
		specs = append(specs, ctl.MustParse(s))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		for _, f := range specs {
			if _, _, err := gen.CounterexampleInit(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E2/E3: witness construction across SCC shapes --------------------

func figure1Model() *kripke.Explicit {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false})
	e.AddFairSet("h2", []bool{false, false, true})
	return e
}

func sccChain(depth int) *kripke.Explicit {
	e := kripke.NewExplicit(2 * depth)
	h1 := make([]bool, 2*depth)
	h2 := make([]bool, 2*depth)
	for i := 0; i < depth; i++ {
		a, c := 2*i, 2*i+1
		e.AddEdge(a, c)
		e.AddEdge(c, a)
		if i < depth-1 {
			e.AddEdge(c, a+2)
		}
		h1[a] = true
		if i == depth-1 {
			h2[c] = true
		}
	}
	e.AddInit(0)
	e.AddFairSet("h1", h1)
	e.AddFairSet("h2", h2)
	return e
}

// BenchmarkWitnessSingleSCC: Figure 1 — the cycle closes immediately.
func BenchmarkWitnessSingleSCC(b *testing.B) {
	s := kripke.FromExplicit(figure1Model())
	start := kripke.IndexState(0, len(s.Vars))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(s))
		if _, err := gen.WitnessEG(bdd.True, start); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWitnessMultiSCC: Figure 2 — the walk restarts down the SCC
// DAG; parameterized by chain depth and strategy.
func BenchmarkWitnessMultiSCC(b *testing.B) {
	for _, depth := range []int{3, 6, 12} {
		e := sccChain(depth)
		s := kripke.FromExplicit(e)
		start := kripke.IndexState(0, len(s.Vars))
		for _, strat := range []core.Strategy{core.StrategySimple, core.StrategyPrecompute} {
			b.Run(fmt.Sprintf("depth=%d/strategy=%s", depth, strat), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					gen := core.NewGenerator(mc.New(s))
					gen.Strategy = strat
					if _, err := gen.WitnessEG(bdd.True, start); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E4: minimal vs heuristic witnesses (Theorem 1) -------------------

// BenchmarkMinimalWitnessBruteForce: the NP-complete exact problem.
func BenchmarkMinimalWitnessBruteForce(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		r := rand.New(rand.NewSource(int64(n)))
		e := kripke.RandomExplicit(r, n, 2, nil, 2, 0.3)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graph.MinimalFiniteWitness(e, e.Init[0], e.N*(len(e.Fair)+1))
			}
		})
	}
}

// BenchmarkHeuristicWitness: the paper's polynomial heuristic on the
// same instances.
func BenchmarkHeuristicWitness(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		r := rand.New(rand.NewSource(int64(n)))
		e := kripke.RandomExplicit(r, n, 2, nil, 2, 0.3)
		s := kripke.FromExplicit(e)
		start := kripke.IndexState(e.Init[0], len(s.Vars))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			probe := core.NewGenerator(mc.New(s))
			if !s.Holds(probe.C.Fair(), start) {
				b.Skipf("n=%d: start state is unfair", n)
			}
			for i := 0; i < b.N; i++ {
				gen := core.NewGenerator(mc.New(s))
				if _, err := gen.WitnessEG(bdd.True, start); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHamiltonianReduction exercises the Theorem 1 reduction.
func BenchmarkHamiltonianReduction(b *testing.B) {
	succ := [][]int{{1}, {2}, {3}, {4}, {0}} // 5-ring
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !graph.HamiltonianViaWitness(succ) {
			b.Fatal("ring must be Hamiltonian")
		}
	}
}

// --- E5: the CTL* fragment (Section 7) --------------------------------

func ctlstarModel() *kripke.Symbolic {
	r := rand.New(rand.NewSource(5))
	e := kripke.RandomExplicit(r, 24, 3, []string{"p", "q"}, 1, 0.3)
	return kripke.FromExplicit(e)
}

// BenchmarkCTLStarCheck compares the Emerson–Lei fixpoint against the
// exponential case split.
func BenchmarkCTLStarCheck(b *testing.B) {
	s := ctlstarModel()
	f := ctlstar.MustParse("E (GF p | FG q) & (GF q | FG p)")
	b.Run("emerson-lei", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := ctlstar.New(mc.New(s))
			if _, err := sc.CheckEL(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("case-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := ctlstar.New(mc.New(s))
			if _, err := sc.CheckSplit(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCTLStarWitness measures fragment witness generation.
func BenchmarkCTLStarWitness(b *testing.B) {
	s := ctlstarModel()
	f := ctlstar.MustParse("E (GF p | FG q) & (GF q | FG p)")
	sc := ctlstar.New(mc.New(s))
	set, err := sc.Check(f)
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := s.Reachable()
	states := s.EnumStates(s.M.And(reach, set), 1)
	if len(states) == 0 {
		b.Skip("formula unsatisfied on this model")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := ctlstar.New(mc.New(s))
		if _, err := sc.Witness(f, states[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Streett containment (Section 8) ------------------------------

// BenchmarkStreettContainment measures a failing containment check
// including counterexample word extraction.
func BenchmarkStreettContainment(b *testing.B) {
	mkAll := func() *automata.Streett {
		a := automata.NewStreett("all", 1, []string{"a", "b"})
		a.AddTrans(0, "a", 0)
		a.AddTrans(0, "b", 0)
		a.AddPair("trivial", []int{0}, nil)
		return a
	}
	mkInfA := func() *automata.Streett {
		a := automata.NewStreett("infA", 2, []string{"a", "b"})
		a.Init = 1
		a.AddTrans(0, "a", 0)
		a.AddTrans(0, "b", 1)
		a.AddTrans(1, "a", 0)
		a.AddTrans(1, "b", 1)
		a.AddPair("inf-a", nil, []int{0})
		return a
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := automata.CheckContainment(mkAll(), mkInfA())
		if err != nil || res.Contained {
			b.Fatalf("containment must fail: %v", err)
		}
	}
}

// --- E7: symbolic vs explicit (the EMC baseline) ----------------------

// BenchmarkSymbolicVsExplicit contrasts symbolic reachability with
// explicit enumeration on chained arbiters.
func BenchmarkSymbolicVsExplicit(b *testing.B) {
	for _, k := range []int{1, 2} {
		model, err := circuit.ScaledArbiter(k).Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("symbolic/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.Reachable()
			}
		})
		if k == 1 {
			b.Run(fmt.Sprintf("explicit/k=%d", k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := model.ToExplicit(0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExplicitCTL measures the EMC-style checker on an enumerated
// arbiter, for comparison with the symbolic one.
func BenchmarkExplicitCTL(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	e, _, err := model.ToExplicit(0)
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := explicit.New(e)
		if _, err := c.Check(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicCTL is the symbolic counterpart of
// BenchmarkExplicitCTL (checking only, no counterexample).
func BenchmarkSymbolicCTL(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mc.New(model)
		if _, err := c.Check(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- BDD substrate micro-benchmarks ------------------------------------

// BenchmarkBDDIte builds a dense random function tree.
func BenchmarkBDDIte(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := bdd.New(16)
		f := bdd.False
		for v := 0; v < 16; v++ {
			f = m.Xor(f, m.Var(v))
		}
		g := bdd.True
		for v := 0; v < 16; v += 2 {
			g = m.And(g, m.Or(m.Var(v), m.Var(v+1)))
		}
		m.Ite(f, g, m.Not(g))
	}
}

// BenchmarkRelationalProduct measures the fused AndExists on the
// arbiter's transition relation — the checker's inner loop.
func BenchmarkRelationalProduct(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := model.Reachable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Preimage(reach)
	}
}

// BenchmarkSatCount measures model counting on the reachable set.
func BenchmarkSatCount(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := model.Reachable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.CountStates(reach)
	}
}

// BenchmarkPartitionedVsMonolithic is the E11 ablation: early-quantified
// clustered image computation vs. the monolithic relation.
func BenchmarkPartitionedVsMonolithic(b *testing.B) {
	for _, k := range []int{1, 2} {
		model, err := circuit.ScaledArbiter(k).Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("partitioned/k=%d", k), func(b *testing.B) {
			model.EnablePartition(true)
			for i := 0; i < b.N; i++ {
				model.Reachable()
			}
		})
		b.Run(fmt.Sprintf("monolithic/k=%d", k), func(b *testing.B) {
			model.EnablePartition(false)
			for i := 0; i < b.N; i++ {
				model.Reachable()
			}
		})
		model.EnablePartition(true)
	}
}

// BenchmarkTreeArbiterHazard measures the second case study (E12): the
// stale-ack hazard hunt on the 4-user tree arbiter.
func BenchmarkTreeArbiterHazard(b *testing.B) {
	model, err := circuit.TreeArbiter(2).Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse(circuit.TreeArbiterMutexSpec(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		ok, _, err := gen.CounterexampleInit(spec)
		if err != nil || ok {
			b.Fatalf("hazard must be found: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkTraceCompaction measures the Section 9 extension on the
// arbiter counterexample.
func BenchmarkTraceCompaction(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	spec := ctl.MustParse("AG (tr1 -> AF ta1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := core.NewGenerator(mc.New(model))
		_, tr, err := gen.CounterexampleInit(spec)
		if err != nil {
			b.Fatal(err)
		}
		core.Compact(model, tr, bdd.True)
	}
}

// BenchmarkBDDSerialization round-trips the arbiter's reachable set.
func BenchmarkBDDSerialization(b *testing.B) {
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		b.Fatal(err)
	}
	reach, _ := model.Reachable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := model.M.Save(&buf, []bdd.Ref{reach}); err != nil {
			b.Fatal(err)
		}
		if _, err := model.M.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReorder measures offline variable reordering on an
// interleaving-sensitive function.
func BenchmarkReorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bdd.New(12)
		f := bdd.True
		for v := 0; v < 6; v++ {
			f = m.And(f, m.Eq(m.Var(v), m.Var(v+6)))
		}
		order := make([]int, 12)
		for v := 0; v < 6; v++ {
			order[2*v] = v
			order[2*v+1] = v + 6
		}
		m.Reorder(order, []bdd.Ref{f})
	}
}

// --- BENCH_partition.json: the partitioning before/after artifact -----
//
// TestRecordPartitionBench is gated behind BENCH_PARTITION=1 (it runs
// minutes of wall time) and writes BENCH_partition.json: for the Seitz
// arbiter and the scaled-arbiter family it records wall time, peak live
// BDD nodes, relational-product counters and AndExists cache behavior
// for the partitioned and the monolithic transition relation. At 6 and
// 8 cells the monolithic BDD cannot even be materialized within the
// node budget — those entries record the capped build attempt, which is
// the paper's point: the conjunction is the object partitioning avoids.

type partitionBenchEntry struct {
	Model            string  `json:"model"`
	Cells            int     `json:"cells"`
	Mode             string  `json:"mode"`
	Workload         string  `json:"workload"`
	Completed        bool    `json:"completed"`
	WallMS           float64 `json:"wall_ms"`
	PeakLiveNodes    int     `json:"peak_live_nodes"`
	ImageCalls       uint64  `json:"image_calls,omitempty"`
	PreimageCalls    uint64  `json:"preimage_calls,omitempty"`
	ClusterSteps     uint64  `json:"cluster_steps,omitempty"`
	AndExistsLookups uint64  `json:"and_exists_lookups,omitempty"`
	AndExistsHits    uint64  `json:"and_exists_hits,omitempty"`
	Clusters         int     `json:"clusters,omitempty"`
	SumClusterNodes  int     `json:"sum_cluster_nodes,omitempty"`
	TransNodes       int     `json:"trans_nodes,omitempty"`
	ReachableStates  float64 `json:"reachable_states,omitempty"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	BytesPerNode     float64 `json:"bytes_per_node"`
	Note             string  `json:"note,omitempty"`
}

// arenaMetrics returns the computed-cache hit rate since the last
// ResetRelStats and the arena footprint per live node, recorded in
// every artifact so benchgate can gate hit-rate regressions.
func arenaMetrics(s *kripke.Symbolic) (hitRate, bytesPerNode float64) {
	rs := s.RelStats()
	return rs.CacheHitRate(), float64(s.M.ArenaBytes()) / float64(s.M.NumNodes())
}

// benchModel compiles a fresh instance so cache and node-table state
// never leaks between measured modes.
type benchModel struct {
	name    string
	cells   int
	compile func() (*kripke.Symbolic, error)
}

func partitionBenchModels() []benchModel {
	models := []benchModel{{
		name:  "seitz.smv",
		cells: 2,
		compile: func() (*kripke.Symbolic, error) {
			src, err := os.ReadFile("models/seitz.smv")
			if err != nil {
				return nil, err
			}
			c, err := smv.CompileSource(string(src))
			if err != nil {
				return nil, err
			}
			return c.S, nil
		},
	}}
	for _, k := range []int{2, 3, 4} {
		k := k
		models = append(models, benchModel{
			name:    fmt.Sprintf("scaled-arbiter-k%d", k),
			cells:   2 * k,
			compile: func() (*kripke.Symbolic, error) { return circuit.ScaledArbiter(k).Compile() },
		})
	}
	return models
}

func TestRecordPartitionBench(t *testing.T) {
	if os.Getenv("BENCH_PARTITION") != "1" {
		t.Skip("set BENCH_PARTITION=1 to record BENCH_partition.json")
	}
	const (
		gcThreshold  = 1 << 16   // tight threshold: peaks reflect live sets
		nodeBudget   = 6_000_000 // cap for the monolithic build attempt
		buildTimeout = 30 * time.Second
		boundedSteps = 10 // BFS steps at sizes where the full fixpoint blows up
	)
	var entries []partitionBenchEntry

	baseEntry := func(bm benchModel, s *kripke.Symbolic, mode, workload string, wall time.Duration, ae0 bdd.Stats) partitionBenchEntry {
		rs := s.RelStats()
		p := s.Partition()
		e := partitionBenchEntry{
			Model:            bm.name,
			Cells:            bm.cells,
			Mode:             mode,
			Workload:         workload,
			Completed:        true,
			WallMS:           float64(wall.Microseconds()) / 1000,
			PeakLiveNodes:    rs.PeakLiveNodes,
			ImageCalls:       rs.ImageCalls,
			PreimageCalls:    rs.PreimageCalls,
			ClusterSteps:     rs.ClusterSteps,
			AndExistsLookups: s.M.Stats.AndExistsLookups - ae0.AndExistsLookups,
			AndExistsHits:    s.M.Stats.AndExistsHits - ae0.AndExistsHits,
		}
		e.CacheHitRate, e.BytesPerNode = arenaMetrics(s)
		if p != nil {
			e.Clusters = p.NumClusters()
			for _, c := range p.Clusters() {
				e.SumClusterNodes += s.M.Size(c)
			}
		}
		return e
	}

	// fullWorkload: the complete reachability fixpoint followed by a
	// short backward EX sweep, exercising both quantification schedules.
	fullWorkload := func(bm benchModel, s *kripke.Symbolic, mode string) partitionBenchEntry {
		s.M.GC()
		s.ResetRelStats()
		ae0 := s.M.Stats
		t0 := time.Now()
		reach, _ := s.Reachable()
		pre := reach
		for i := 0; i < 3; i++ {
			pre = s.Preimage(pre)
		}
		e := baseEntry(bm, s, mode, "reachable+ex3", time.Since(t0), ae0)
		e.ReachableStates = s.CountStates(reach)
		return e
	}

	// boundedWorkload: a fixed number of frontier steps for sizes where
	// the full reachable set is itself out of reach.
	boundedWorkload := func(bm benchModel, s *kripke.Symbolic, mode string) partitionBenchEntry {
		m := s.M
		m.GC()
		s.ResetRelStats()
		ae0 := m.Stats
		t0 := time.Now()
		reached := m.Protect(s.Init)
		frontier := m.Protect(s.Init)
		for i := 0; i < boundedSteps && frontier != bdd.False; i++ {
			img := s.Image(frontier)
			m.Unprotect(frontier)
			frontier = m.Protect(m.Diff(img, reached))
			m.Unprotect(reached)
			reached = m.Protect(m.Or(reached, frontier))
			m.MaybeGC()
		}
		e := baseEntry(bm, s, mode, fmt.Sprintf("bfs-%d", boundedSteps), time.Since(t0), ae0)
		m.Unprotect(frontier)
		m.Unprotect(reached)
		return e
	}

	// cappedMonolithicBuild: try to materialize the monolithic relation
	// under a node and time budget, recording where it gives out.
	cappedMonolithicBuild := func(bm benchModel, s *kripke.Symbolic) partitionBenchEntry {
		m := s.M
		p := s.Partition()
		t0 := time.Now()
		acc := m.Protect(bdd.True)
		for i, c := range p.Clusters() {
			next := m.Protect(m.And(acc, c))
			m.Unprotect(acc)
			acc = next
			if m.NumNodes() > nodeBudget || time.Since(t0) > buildTimeout {
				e := partitionBenchEntry{
					Model:         bm.name,
					Cells:         bm.cells,
					Mode:          "monolithic",
					Workload:      "trans-materialization",
					Completed:     false,
					WallMS:        float64(time.Since(t0).Microseconds()) / 1000,
					PeakLiveNodes: m.NumNodes(),
					Clusters:      p.NumClusters(),
					Note: fmt.Sprintf(
						"monolithic Trans BDD aborted at cluster %d/%d: node budget %d exceeded; partial conjunction already %d nodes",
						i+1, p.NumClusters(), nodeBudget, m.Size(acc)),
				}
				e.CacheHitRate, e.BytesPerNode = arenaMetrics(s)
				m.Unprotect(acc)
				return e
			}
		}
		e := partitionBenchEntry{
			Model: bm.name, Cells: bm.cells, Mode: "monolithic",
			Workload: "trans-materialization", Completed: true,
			WallMS:        float64(time.Since(t0).Microseconds()) / 1000,
			PeakLiveNodes: m.NumNodes(),
			TransNodes:    m.Size(acc),
		}
		e.CacheHitRate, e.BytesPerNode = arenaMetrics(s)
		m.Unprotect(acc)
		return e
	}

	for _, bm := range partitionBenchModels() {
		// Partitioned run.
		s, err := bm.compile()
		if err != nil {
			t.Fatalf("%s: %v", bm.name, err)
		}
		s.M.SetGCThreshold(gcThreshold)
		bounded := bm.cells >= 6
		if bounded {
			entries = append(entries, boundedWorkload(bm, s, "partitioned"))
		} else {
			entries = append(entries, fullWorkload(bm, s, "partitioned"))
		}

		// Monolithic run, on a fresh instance.
		s, err = bm.compile()
		if err != nil {
			t.Fatalf("%s: %v", bm.name, err)
		}
		s.M.SetGCThreshold(gcThreshold)
		if bounded {
			// The full monolithic relation does not fit the node budget
			// at these sizes; record the capped build attempt.
			entries = append(entries, cappedMonolithicBuild(bm, s))
			continue
		}
		s.EnablePartition(false)
		buildStart := time.Now()
		transNodes := s.M.Size(s.Trans()) // materialization is part of the story
		buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
		e := fullWorkload(bm, s, "monolithic")
		e.TransNodes = transNodes
		e.Note = fmt.Sprintf("monolithic Trans materialized in %.1fms", buildMS)
		entries = append(entries, e)
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_partition.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_partition.json with %d entries", len(entries))

	// The artifact must actually demonstrate the claim: at >= 8 cells the
	// partitioned run completes while the monolithic attempt exhausts its
	// node budget, and at sizes where both complete the partitioned run
	// is faster with a lower peak.
	byKey := map[string]partitionBenchEntry{}
	for _, e := range entries {
		byKey[e.Model+"/"+e.Mode] = e
	}
	part8 := byKey["scaled-arbiter-k4/partitioned"]
	mono8 := byKey["scaled-arbiter-k4/monolithic"]
	if !part8.Completed || mono8.Completed {
		t.Fatalf("8-cell separation not demonstrated: partitioned=%+v monolithic=%+v", part8, mono8)
	}
	if part8.PeakLiveNodes >= mono8.PeakLiveNodes {
		t.Fatalf("8 cells: partitioned peak %d not below monolithic peak %d",
			part8.PeakLiveNodes, mono8.PeakLiveNodes)
	}
	part4, mono4 := byKey["scaled-arbiter-k2/partitioned"], byKey["scaled-arbiter-k2/monolithic"]
	if part4.WallMS >= mono4.WallMS || part4.PeakLiveNodes >= mono4.PeakLiveNodes {
		t.Fatalf("4 cells: partitioned (%.1fms, %d nodes) not below monolithic (%.1fms, %d nodes)",
			part4.WallMS, part4.PeakLiveNodes, mono4.WallMS, mono4.PeakLiveNodes)
	}
}

// --- BENCH_reorder.json: the dynamic-reordering artifact --------------
//
// TestRecordReorderBench is gated behind BENCH_REORDER=1 and writes
// BENCH_reorder.json: the scaled-arbiter family at 4..8 cells runs the
// same bounded bfs-10 partitioned workload as the partition benchmark,
// once with reordering off and once with growth-triggered sifting on,
// recording wall time, peak live nodes and sift-event counts. The PR-1
// partitioned baseline from BENCH_partition.json rides along in each
// off entry so the artifact is self-contained.

type reorderBenchEntry struct {
	Model          string  `json:"model"`
	Cells          int     `json:"cells"`
	Reorder        bool    `json:"reorder"`
	Workload       string  `json:"workload"`
	WallMS         float64 `json:"wall_ms"`
	PeakLiveNodes  int     `json:"peak_live_nodes"`
	FinalLiveNodes int     `json:"final_live_nodes"`
	SiftEvents     uint64  `json:"sift_events"`
	SiftPasses     uint64  `json:"sift_passes,omitempty"`
	SiftTrials     uint64  `json:"sift_trials,omitempty"`
	ReorderMS      float64 `json:"reorder_ms,omitempty"`
	NodesSaved     int64   `json:"nodes_saved,omitempty"`
	BaselinePeak   int     `json:"pr1_baseline_peak,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	BytesPerNode   float64 `json:"bytes_per_node"`
	Note           string  `json:"note,omitempty"`
}

func TestRecordReorderBench(t *testing.T) {
	if os.Getenv("BENCH_REORDER") != "1" {
		t.Skip("set BENCH_REORDER=1 to record BENCH_reorder.json")
	}
	const (
		gcThreshold  = 1 << 16 // same as the partition benchmark
		boundedSteps = 10
	)

	// PR-1 partitioned bfs-10 peaks from BENCH_partition.json, keyed by
	// model name, for side-by-side comparison in the artifact.
	baseline := map[string]int{}
	if raw, err := os.ReadFile("BENCH_partition.json"); err == nil {
		var prev []partitionBenchEntry
		if err := json.Unmarshal(raw, &prev); err == nil {
			for _, e := range prev {
				if e.Mode == "partitioned" && strings.HasPrefix(e.Workload, "bfs-") {
					baseline[e.Model] = e.PeakLiveNodes
				}
			}
		}
	}

	run := func(bm benchModel, reorder bool) reorderBenchEntry {
		s, err := bm.compile()
		if err != nil {
			t.Fatalf("%s: %v", bm.name, err)
		}
		m := s.M
		m.SetGCThreshold(gcThreshold)
		if reorder {
			m.EnableAutoReorder(nil)
		}
		m.GC()
		s.ResetRelStats()
		t0 := time.Now()
		reached := m.Protect(s.Init)
		frontier := m.Protect(s.Init)
		// Protection keeps the sets alive across sift events, but the
		// locals must also be rewritten in place when a reorder fires
		// inside Image — that is exactly what the registry is for.
		id := m.RegisterRefs(&reached, &frontier)
		for i := 0; i < boundedSteps && frontier != bdd.False; i++ {
			img := s.Image(frontier)
			m.Unprotect(frontier)
			frontier = m.Protect(m.Diff(img, reached))
			m.Unprotect(reached)
			reached = m.Protect(m.Or(reached, frontier))
			m.MaybeGC()
		}
		wall := time.Since(t0)
		m.Unregister(id)
		m.Unprotect(frontier)
		m.Unprotect(reached)
		rs := s.RelStats()
		e := reorderBenchEntry{
			Model:          bm.name,
			Cells:          bm.cells,
			Reorder:        reorder,
			Workload:       fmt.Sprintf("bfs-%d", boundedSteps),
			WallMS:         float64(wall.Microseconds()) / 1000,
			PeakLiveNodes:  rs.PeakLiveNodes,
			FinalLiveNodes: m.NumNodes(),
			SiftEvents:     m.Stats.AutoReorders,
			SiftPasses:     m.Stats.SiftPasses,
			SiftTrials:     m.Stats.SiftTrials,
			ReorderMS:      float64(m.Stats.ReorderTime.Microseconds()) / 1000,
			NodesSaved:     m.Stats.ReorderSavedNodes,
		}
		e.CacheHitRate, e.BytesPerNode = arenaMetrics(s)
		if !reorder {
			e.BaselinePeak = baseline[bm.name]
		}
		return e
	}

	var entries []reorderBenchEntry
	for _, k := range []int{2, 3, 4} {
		bm := benchModel{
			name:    fmt.Sprintf("scaled-arbiter-k%d", k),
			cells:   2 * k,
			compile: func() (*kripke.Symbolic, error) { return circuit.ScaledArbiter(k).Compile() },
		}
		off := run(bm, false)
		on := run(bm, true)
		entries = append(entries, off, on)
		t.Logf("%s: peak %d -> %d (%d sift events, %.1fms reordering)",
			bm.name, off.PeakLiveNodes, on.PeakLiveNodes, on.SiftEvents, on.ReorderMS)
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_reorder.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Acceptance: at 8 cells the reordered run must finish the bounded
	// sweep with a lower peak than the PR-1 partitioned baseline.
	const pr1Peak = 1_403_708
	want := pr1Peak
	if b, ok := baseline["scaled-arbiter-k4"]; ok {
		want = b
	}
	for _, e := range entries {
		if e.Model == "scaled-arbiter-k4" && e.Reorder {
			if e.SiftEvents == 0 {
				t.Errorf("8 cells: reordering enabled but no sift event fired")
			}
			if e.PeakLiveNodes >= want {
				t.Errorf("8 cells: reordered peak %d not below PR-1 baseline %d",
					e.PeakLiveNodes, want)
			}
		}
	}
}

// --- BENCH_sift.json: rebuild vs in-place sifting engines -------------
//
// TestRecordSiftBench is gated behind BENCH_SIFT=1 and writes
// BENCH_sift.json: the bounded bfs-10 partitioned workload on the
// 6- and 8-cell scaled arbiters and the 8-station token ring, once per
// sifting engine (the legacy rebuild-per-trial engine kept as oracle
// and the in-place adjacent-level-swap engine that replaced it as
// default). Both engines see identical growth triggers and budgets, so
// the artifact isolates the cost of a reorder trial: O(arena) rebuilds
// against O(two levels) swaps. Kept fast on purpose: the CI bench-smoke
// job replays it and gates peak live nodes (25%) plus total reordering
// wall time (generous 2x, cmd/benchgate -time-metric) against this
// baseline.

type siftBenchEntry struct {
	Model          string  `json:"model"`
	Cells          int     `json:"cells"`
	Engine         string  `json:"engine"`
	Workload       string  `json:"workload"`
	WallMS         float64 `json:"wall_ms"`
	PeakLiveNodes  int     `json:"peak_live_nodes"`
	FinalLiveNodes int     `json:"final_live_nodes"`
	SiftEvents     uint64  `json:"sift_events"`
	SiftPasses     uint64  `json:"sift_passes,omitempty"`
	SiftTrials     uint64  `json:"sift_trials,omitempty"`
	SiftSwaps      uint64  `json:"sift_swaps,omitempty"`
	SiftAborts     uint64  `json:"sift_aborts,omitempty"`
	SiftTimeouts   uint64  `json:"sift_timeouts,omitempty"`
	ReorderMS      float64 `json:"reorder_ms"`
	NodesSaved     int64   `json:"nodes_saved,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	BytesPerNode   float64 `json:"bytes_per_node"`
}

func TestRecordSiftBench(t *testing.T) {
	if os.Getenv("BENCH_SIFT") != "1" {
		t.Skip("set BENCH_SIFT=1 to record BENCH_sift.json")
	}
	const (
		gcThreshold  = 1 << 16 // same schedule as the partition/reorder benchmarks
		boundedSteps = 10
	)

	run := func(bm benchModel, engine string) siftBenchEntry {
		s, err := bm.compile()
		if err != nil {
			t.Fatalf("%s: %v", bm.name, err)
		}
		m := s.M
		m.SetGCThreshold(gcThreshold)
		opts := bdd.DefaultReorderOptions()
		opts.UseRebuildSift = engine == "rebuild"
		m.EnableAutoReorder(&opts)
		m.GC()
		s.ResetRelStats()
		t0 := time.Now()
		reached := m.Protect(s.Init)
		frontier := m.Protect(s.Init)
		id := m.RegisterRefs(&reached, &frontier)
		for i := 0; i < boundedSteps && frontier != bdd.False; i++ {
			img := s.Image(frontier)
			m.Unprotect(frontier)
			frontier = m.Protect(m.Diff(img, reached))
			m.Unprotect(reached)
			reached = m.Protect(m.Or(reached, frontier))
			m.MaybeGC()
		}
		wall := time.Since(t0)
		m.Unregister(id)
		m.Unprotect(frontier)
		m.Unprotect(reached)
		rs := s.RelStats()
		hitRate, bpn := arenaMetrics(s)
		return siftBenchEntry{
			CacheHitRate:   hitRate,
			BytesPerNode:   bpn,
			Model:          bm.name,
			Cells:          bm.cells,
			Engine:         engine,
			Workload:       fmt.Sprintf("bfs-%d", boundedSteps),
			WallMS:         float64(wall.Microseconds()) / 1000,
			PeakLiveNodes:  rs.PeakLiveNodes,
			FinalLiveNodes: m.NumNodes(),
			SiftEvents:     m.Stats.AutoReorders,
			SiftPasses:     m.Stats.SiftPasses,
			SiftTrials:     m.Stats.SiftTrials,
			SiftSwaps:      m.Stats.SiftSwaps,
			SiftAborts:     m.Stats.SiftAborts,
			SiftTimeouts:   m.Stats.SiftTimeouts,
			ReorderMS:      float64(m.Stats.ReorderTime.Microseconds()) / 1000,
			NodesSaved:     m.Stats.ReorderSavedNodes,
		}
	}

	models := []benchModel{}
	for _, k := range []int{3, 4} {
		k := k
		models = append(models, benchModel{
			name:    fmt.Sprintf("scaled-arbiter-k%d", k),
			cells:   2 * k,
			compile: func() (*kripke.Symbolic, error) { return circuit.ScaledArbiter(k).Compile() },
		})
	}
	ringSrc := scaledRingSource(8)
	models = append(models, benchModel{
		name:  "scaled-ring-8",
		cells: 8,
		compile: func() (*kripke.Symbolic, error) {
			c, err := smv.CompileSource(ringSrc)
			if err != nil {
				return nil, err
			}
			return c.S, nil
		},
	})

	var entries []siftBenchEntry
	for _, bm := range models {
		rebuild := run(bm, "rebuild")
		inPlace := run(bm, "in-place")
		entries = append(entries, rebuild, inPlace)
		t.Logf("%s: reorder %.1fms -> %.1fms (%.1fx), final live %d -> %d, %d swaps",
			bm.name, rebuild.ReorderMS, inPlace.ReorderMS,
			rebuild.ReorderMS/nonzero(inPlace.ReorderMS),
			rebuild.FinalLiveNodes, inPlace.FinalLiveNodes, inPlace.SiftSwaps)
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sift.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Acceptance (ISSUE 5): on the 8-cell arbiter bfs-10 workload the
	// in-place engine must cut total reordering wall time by at least 5x
	// against the rebuild engine at an equal-or-better final live-node
	// count — the whole point of making trials O(two levels).
	byKey := map[string]siftBenchEntry{}
	for _, e := range entries {
		byKey[e.Model+"/"+e.Engine] = e
	}
	reb, inp := byKey["scaled-arbiter-k4/rebuild"], byKey["scaled-arbiter-k4/in-place"]
	if inp.SiftEvents == 0 || inp.SiftSwaps == 0 {
		t.Errorf("8 cells: in-place engine recorded no sift work (events=%d swaps=%d)",
			inp.SiftEvents, inp.SiftSwaps)
	}
	if inp.ReorderMS*5 > reb.ReorderMS {
		t.Errorf("8 cells: in-place reordering %.1fms not 5x below rebuild %.1fms",
			inp.ReorderMS, reb.ReorderMS)
	}
	// The final count carries heuristic noise: the growth trigger fires
	// at different points of the workload for the two engines, so they
	// sift different DAGs and the greedy walks land on different orders
	// (the gap swings both ways across models — see k3 vs ring-8 in the
	// artifact). Gate it with the same 25% tolerance benchgate uses
	// rather than demanding strict dominance.
	if inp.FinalLiveNodes*4 > reb.FinalLiveNodes*5 {
		t.Errorf("8 cells: in-place final live nodes %d more than 25%% worse than rebuild %d",
			inp.FinalLiveNodes, reb.FinalLiveNodes)
	}
}

// --- BENCH_ltl.json: the LTL tableau-product artifact -----------------
//
// TestRecordLTLBench is gated behind BENCH_LTL=1 and writes
// BENCH_ltl.json: every LTLSPEC of the ABP and Peterson scenario models
// is checked through the tableau product, recording wall time, peak
// live BDD nodes, tableau size (promise variables, generalized-Büchi
// sets, clusters) and counterexample lasso lengths. Verdicts are
// asserted against the scenarioVerdicts tables so a broken product
// cannot silently record a fast-but-wrong run. Kept fast on purpose:
// the CI bench-smoke job replays it on every push and gates peak live
// nodes against this baseline (cmd/benchgate).

type ltlBenchEntry struct {
	Model         string  `json:"model"`
	Spec          string  `json:"spec"`
	Holds         bool    `json:"holds"`
	WallMS        float64 `json:"wall_ms"`
	PeakLiveNodes int     `json:"peak_live_nodes"`
	TableauVars   int     `json:"tableau_vars"`
	FairnessSets  int     `json:"fairness_sets"`
	Clusters      int     `json:"clusters"`
	LassoStem     int     `json:"lasso_stem,omitempty"`
	LassoCycle    int     `json:"lasso_cycle,omitempty"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	BytesPerNode  float64 `json:"bytes_per_node"`
}

func TestRecordLTLBench(t *testing.T) {
	if os.Getenv("BENCH_LTL") != "1" {
		t.Skip("set BENCH_LTL=1 to record BENCH_ltl.json")
	}
	const gcThreshold = 1 << 16 // same schedule as the other artifacts

	var entries []ltlBenchEntry
	for _, name := range []string{"abp.smv", "peterson.smv"} {
		src, err := os.ReadFile("models/" + name)
		if err != nil {
			t.Fatal(err)
		}
		module, err := smv.ParseModule(string(src))
		if err != nil {
			t.Fatal(err)
		}
		want := scenarioVerdicts[name]
		if len(module.LTLSpecs) != len(want.ltl) {
			t.Fatalf("%s: %d LTLSPECs but %d expected verdicts", name, len(module.LTLSpecs), len(want.ltl))
		}
		for i, sp := range module.LTLSpecs {
			p, err := smv.CompileLTL(module, sp.Formula, sp.Source)
			if err != nil {
				t.Fatalf("%s %s: %v", name, sp.Source, err)
			}
			p.S.M.SetGCThreshold(gcThreshold)
			p.S.M.GC()
			p.S.ResetRelStats()
			t0 := time.Now()
			ch := mc.New(p.S)
			holds, tr, err := p.Check(ch)
			wall := time.Since(t0)
			if err != nil {
				t.Fatalf("%s %s: %v", name, sp.Source, err)
			}
			if holds != want.ltl[i] {
				t.Fatalf("%s %s: got %v, want %v — refusing to record a wrong run",
					name, sp.Source, holds, want.ltl[i])
			}
			e := ltlBenchEntry{
				Model:         name,
				Spec:          sp.Formula.String(),
				Holds:         holds,
				WallMS:        float64(wall.Microseconds()) / 1000,
				PeakLiveNodes: p.S.RelStats().PeakLiveNodes,
				TableauVars:   len(p.ElemVars),
				FairnessSets:  len(p.S.Fair),
				Clusters:      p.S.NumClusters(),
			}
			e.CacheHitRate, e.BytesPerNode = arenaMetrics(p.S)
			if tr != nil {
				if err := p.ReplayCounterexample(tr); err != nil {
					t.Fatalf("%s %s: %v", name, sp.Source, err)
				}
				e.LassoStem = tr.CycleStart
				e.LassoCycle = len(tr.States) - tr.CycleStart
			}
			ch.Close()
			entries = append(entries, e)
		}
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ltl.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_ltl.json with %d entries", len(entries))
}

func nonzero(v float64) float64 {
	if v <= 0 {
		return 1e-9
	}
	return v
}

// --- BENCH_models.json: the scenario-corpus artifact ------------------
//
// TestRecordModelsBench is gated behind BENCH_MODELS=1 and writes
// BENCH_models.json: every SPEC and LTLSPEC of the hanoi and chase
// scenario models — the shipped sizes plus scaled instances rendered by
// the modelgen generators — is checked with growth-triggered sifting
// enabled, recording wall time, peak live nodes, sift events and lasso
// shapes. Verdicts are asserted against scenarioVerdicts (the tables
// are size-independent by construction), so a wrong run is never
// recorded. The scaled LTL products are sized to actually trip the
// auto-reorder trigger; the assertion at the bottom keeps that true.
// The CI bench-smoke job replays this and gates peak live nodes (25%)
// plus wall time (2x) against the committed baseline (cmd/benchgate).

type modelsBenchEntry struct {
	Model         string  `json:"model"`
	Spec          string  `json:"spec"`
	Kind          string  `json:"kind"` // "ctl" | "ltl"
	Holds         bool    `json:"holds"`
	WallMS        float64 `json:"wall_ms"`
	PeakLiveNodes int     `json:"peak_live_nodes"`
	SiftEvents    uint64  `json:"sift_events,omitempty"`
	TableauVars   int     `json:"tableau_vars,omitempty"`
	LassoStem     int     `json:"lasso_stem,omitempty"`
	LassoCycle    int     `json:"lasso_cycle,omitempty"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	BytesPerNode  float64 `json:"bytes_per_node"`
}

func TestRecordModelsBench(t *testing.T) {
	if os.Getenv("BENCH_MODELS") != "1" {
		t.Skip("set BENCH_MODELS=1 to record BENCH_models.json")
	}
	const gcThreshold = 1 << 16 // same schedule as the other artifacts
	// Same trigger profile the modelgen lattice uses: MinNodes low
	// enough that scenario-sized products actually sift.
	reorderOpts := bdd.ReorderOptions{
		GrowthTrigger: 1.5,
		MinNodes:      256,
		MaxPasses:     1,
		Window:        4,
		MaxBlocks:     16,
	}

	type scenario struct {
		name     string
		src      string
		verdicts struct{ ctl, ltl []bool }
	}
	mustRead := func(name string) string {
		src, err := os.ReadFile("models/" + name)
		if err != nil {
			t.Fatal(err)
		}
		return string(src)
	}
	scenarios := []scenario{
		{name: "hanoi.smv", src: mustRead("hanoi.smv"), verdicts: scenarioVerdicts["hanoi.smv"]},
		{name: "chase.smv", src: mustRead("chase.smv"), verdicts: scenarioVerdicts["chase.smv"]},
		// Scaled instances: verdicts are size-independent (the puzzle
		// stays solvable, the evader still escapes).
		{name: "hanoi-7", src: modelgen.HanoiSource(7), verdicts: scenarioVerdicts["hanoi.smv"]},
		{name: "chase-16", src: modelgen.ChaseSource(16), verdicts: scenarioVerdicts["chase.smv"]},
	}

	var entries []modelsBenchEntry
	for _, sc := range scenarios {
		module, err := smv.ParseModule(sc.src)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if len(module.Specs) != len(sc.verdicts.ctl) || len(module.LTLSpecs) != len(sc.verdicts.ltl) {
			t.Fatalf("%s: spec counts do not match the verdict table", sc.name)
		}
		for i, sp := range module.Specs {
			c, err := smv.CompileSource(sc.src)
			if err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
			c.S.M.SetGCThreshold(gcThreshold)
			c.S.M.EnableAutoReorder(&reorderOpts)
			c.S.ResetRelStats()
			t0 := time.Now()
			gen := core.NewGenerator(mc.New(c.S))
			holds, tr, err := gen.CounterexampleInit(c.Module.Specs[i].Formula)
			wall := time.Since(t0)
			if err != nil {
				t.Fatalf("%s %s: %v", sc.name, sp.Source, err)
			}
			if holds != sc.verdicts.ctl[i] {
				t.Fatalf("%s %s: got %v, want %v — refusing to record a wrong run",
					sc.name, sp.Source, holds, sc.verdicts.ctl[i])
			}
			e := modelsBenchEntry{
				Model:         sc.name,
				Spec:          sp.Formula.String(),
				Kind:          "ctl",
				Holds:         holds,
				WallMS:        float64(wall.Microseconds()) / 1000,
				PeakLiveNodes: c.S.RelStats().PeakLiveNodes,
				SiftEvents:    c.S.M.Stats.AutoReorders,
			}
			e.CacheHitRate, e.BytesPerNode = arenaMetrics(c.S)
			if tr != nil {
				if err := core.ValidatePath(c.S, tr); err != nil {
					t.Fatalf("%s %s: invalid trace: %v", sc.name, sp.Source, err)
				}
				e.LassoStem = tr.CycleStart
				e.LassoCycle = len(tr.States) - tr.CycleStart
				if !tr.IsLasso() {
					e.LassoStem, e.LassoCycle = len(tr.States), 0
				}
			}
			entries = append(entries, e)
		}
		for i, sp := range module.LTLSpecs {
			p, err := smv.CompileLTL(module, sp.Formula, sp.Source)
			if err != nil {
				t.Fatalf("%s %s: %v", sc.name, sp.Source, err)
			}
			p.S.M.SetGCThreshold(gcThreshold)
			p.S.M.EnableAutoReorder(&reorderOpts)
			p.S.ResetRelStats()
			t0 := time.Now()
			ch := mc.New(p.S)
			holds, tr, err := p.Check(ch)
			wall := time.Since(t0)
			if err != nil {
				t.Fatalf("%s %s: %v", sc.name, sp.Source, err)
			}
			if holds != sc.verdicts.ltl[i] {
				t.Fatalf("%s %s: got %v, want %v — refusing to record a wrong run",
					sc.name, sp.Source, holds, sc.verdicts.ltl[i])
			}
			e := modelsBenchEntry{
				Model:         sc.name,
				Spec:          sp.Formula.String(),
				Kind:          "ltl",
				Holds:         holds,
				WallMS:        float64(wall.Microseconds()) / 1000,
				PeakLiveNodes: p.S.RelStats().PeakLiveNodes,
				SiftEvents:    p.S.M.Stats.AutoReorders,
				TableauVars:   len(p.ElemVars),
			}
			e.CacheHitRate, e.BytesPerNode = arenaMetrics(p.S)
			if tr != nil {
				if err := p.ReplayCounterexample(tr); err != nil {
					t.Fatalf("%s %s: %v", sc.name, sp.Source, err)
				}
				e.LassoStem = tr.CycleStart
				e.LassoCycle = len(tr.States) - tr.CycleStart
			}
			ch.Close()
			entries = append(entries, e)
		}
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_models.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_models.json with %d entries", len(entries))

	// Acceptance: the scaled LTL products must be big enough to trip
	// growth-triggered sifting — otherwise the corpus is not exercising
	// the reordering path it exists to cover.
	var sifted bool
	for _, e := range entries {
		if e.Kind == "ltl" && (e.Model == "hanoi-7" || e.Model == "chase-16") && e.SiftEvents > 0 {
			sifted = true
		}
	}
	if !sifted {
		t.Error("no scaled LTL product triggered auto-reordering")
	}
}

// --- BENCH_disjunctive.json: the disjunctive-partitioning artifact ----
//
// TestRecordDisjunctiveBench is gated behind BENCH_DISJUNCTIVE=1 and
// writes BENCH_disjunctive.json: for the shipped process models and a
// scaled token ring it runs the same reachability workload under the
// conjunctive schedule, the disjunctive image (sequential), and the
// disjunctive image with worker goroutines on the shared parallel
// engine, recording wall time, peak live nodes and the per-mode step
// counters.
// dining.smv and mutex.smv are synchronous — they carry no disjuncts
// and ride along as conjunctive/monolithic continuity entries so the
// artifact covers both composition styles. Kept fast on purpose: the CI
// bench-smoke job replays it on every push and gates peak-live-node
// regressions against the committed baseline (cmd/benchgate).

type disjunctiveBenchEntry struct {
	Model           string  `json:"model"`
	Mode            string  `json:"mode"`
	Workload        string  `json:"workload"`
	Workers         int     `json:"workers"`
	WallMS          float64 `json:"wall_ms"`
	PeakLiveNodes   int     `json:"peak_live_nodes"`
	ImageCalls      uint64  `json:"image_calls,omitempty"`
	PreimageCalls   uint64  `json:"preimage_calls,omitempty"`
	ClusterSteps    uint64  `json:"cluster_steps,omitempty"`
	DisjunctSteps   uint64  `json:"disjunct_steps,omitempty"`
	ParallelBatches uint64  `json:"parallel_batches,omitempty"`
	Clusters        int     `json:"clusters,omitempty"`
	Components      int     `json:"components,omitempty"`
	ReachableStates float64 `json:"reachable_states,omitempty"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	BytesPerNode    float64 `json:"bytes_per_node"`
	Note            string  `json:"note,omitempty"`
}

// scaledRingSource generates an n-station token ring in the SMV input
// language — the scaled interleaved model of the disjunctive benchmark
// (models/ring.smv is the shipped 3-station instance).
func scaledRingSource(n int) string {
	var b strings.Builder
	b.WriteString(`MODULE station(token, me, succ)
VAR
  st : {idle, want, cs};
ASSIGN
  init(st) := idle;
  next(st) := case
    st = idle              : {idle, want};
    st = want & token = me : cs;
    st = cs                : idle;
    TRUE                   : st;
  esac;
  next(token) := case
    st = cs                : succ;
    st = idle & token = me : succ;
    TRUE                   : token;
  esac;
FAIRNESS running

MODULE main
VAR
  token : {`)
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "s%d", i)
	}
	b.WriteString("};\n")
	for i := 1; i <= n; i++ {
		succ := i%n + 1
		fmt.Fprintf(&b, "  st%d : process station(token, s%d, s%d);\n", i, i, succ)
	}
	b.WriteString("ASSIGN\n  init(token) := s1;\n")
	return b.String()
}

func TestRecordDisjunctiveBench(t *testing.T) {
	if os.Getenv("BENCH_DISJUNCTIVE") != "1" {
		t.Skip("set BENCH_DISJUNCTIVE=1 to record BENCH_disjunctive.json")
	}
	const gcThreshold = 1 << 16 // tight threshold: peaks reflect live sets

	fromFile := func(name string) func() (*kripke.Symbolic, error) {
		return func() (*kripke.Symbolic, error) {
			src, err := os.ReadFile("models/" + name)
			if err != nil {
				return nil, err
			}
			c, err := smv.CompileSource(string(src))
			if err != nil {
				return nil, err
			}
			return c.S, nil
		}
	}
	fromSource := func(src string) func() (*kripke.Symbolic, error) {
		return func() (*kripke.Symbolic, error) {
			c, err := smv.CompileSource(src)
			if err != nil {
				return nil, err
			}
			return c.S, nil
		}
	}

	// run measures the reachability fixpoint plus a short backward sweep
	// on a fresh instance per mode, so caches never leak across modes.
	run := func(name string, compile func() (*kripke.Symbolic, error), mode string, workers int) disjunctiveBenchEntry {
		s, err := compile()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := s.M
		m.SetGCThreshold(gcThreshold)
		switch mode {
		case "disjunctive":
			if s.NumDisjuncts() == 0 {
				t.Fatalf("%s: no disjuncts for disjunctive mode", name)
			}
			s.EnableDisjunct(true)
			s.SetWorkers(workers)
		case "conjunctive":
			if !s.HasClusters() {
				t.Fatalf("%s: no clusters for conjunctive mode", name)
			}
		case "monolithic":
			s.EnablePartition(false)
		}
		m.GC()
		s.ResetRelStats()
		t0 := time.Now()
		reach, _ := s.Reachable()
		pre := reach
		for i := 0; i < 3; i++ {
			pre = s.Preimage(pre)
		}
		wall := time.Since(t0)
		rs := s.RelStats()
		hitRate, bpn := arenaMetrics(s)
		return disjunctiveBenchEntry{
			CacheHitRate:    hitRate,
			BytesPerNode:    bpn,
			Model:           name,
			Mode:            mode,
			Workload:        "reachable+ex3",
			Workers:         workers,
			WallMS:          float64(wall.Microseconds()) / 1000,
			PeakLiveNodes:   rs.PeakLiveNodes,
			ImageCalls:      rs.ImageCalls,
			PreimageCalls:   rs.PreimageCalls,
			ClusterSteps:    rs.ClusterSteps,
			DisjunctSteps:   rs.DisjunctSteps,
			ParallelBatches: rs.ParallelBatches,
			Clusters:        s.NumClusters(),
			Components:      s.NumDisjuncts(),
			ReachableStates: s.CountStates(reach),
		}
	}

	var entries []disjunctiveBenchEntry
	// Synchronous continuity entries: no disjuncts to run.
	for _, name := range []string{"dining.smv", "mutex.smv"} {
		for _, mode := range []string{"conjunctive", "monolithic"} {
			e := run(name, fromFile(name), mode, 1)
			e.Note = "synchronous model: no process components"
			entries = append(entries, e)
		}
	}
	// Interleaved models: conjunctive vs disjunctive (seq and parallel).
	type interleaved struct {
		name    string
		compile func() (*kripke.Symbolic, error)
	}
	ringN := 8
	models := []interleaved{
		{"ring.smv", fromFile("ring.smv")},
		{fmt.Sprintf("scaled-ring-%d", ringN), fromSource(scaledRingSource(ringN))},
	}
	for _, im := range models {
		entries = append(entries,
			run(im.name, im.compile, "conjunctive", 1),
			run(im.name, im.compile, "disjunctive", 1),
			run(im.name, im.compile, "disjunctive", 2),
			run(im.name, im.compile, "disjunctive", 4),
		)
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_disjunctive.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_disjunctive.json with %d entries", len(entries))

	// Acceptance: on the scaled interleaved model the disjunctive image
	// with >= 2 workers must beat the conjunctive schedule on peak live
	// nodes or wall time.
	key := func(model, mode string, workers int) *disjunctiveBenchEntry {
		for i := range entries {
			e := &entries[i]
			if e.Model == model && e.Mode == mode && e.Workers == workers {
				return e
			}
		}
		return nil
	}
	scaled := fmt.Sprintf("scaled-ring-%d", ringN)
	conj := key(scaled, "conjunctive", 1)
	for _, w := range []int{2, 4} {
		disj := key(scaled, "disjunctive", w)
		if conj == nil || disj == nil {
			t.Fatal("scaled-ring entries missing")
		}
		if disj.ParallelBatches == 0 {
			t.Fatalf("workers=%d: no parallel batches recorded", w)
		}
		if disj.PeakLiveNodes >= conj.PeakLiveNodes && disj.WallMS >= conj.WallMS {
			t.Errorf("workers=%d: disjunctive (peak %d, %.1fms) beats conjunctive (peak %d, %.1fms) on neither axis",
				w, disj.PeakLiveNodes, disj.WallMS, conj.PeakLiveNodes, conj.WallMS)
		}
		if disj.ReachableStates != conj.ReachableStates {
			t.Errorf("workers=%d: reachable count differs: %v vs %v", w, disj.ReachableStates, conj.ReachableStates)
		}
	}
}

// --- BENCH_parallel.json: the shared-engine parallel-evaluation artifact
//
// TestRecordParallelBench is gated behind BENCH_PARALLEL=1 and writes
// BENCH_parallel.json: the whole-reachability fixpoint on the
// 8-station token ring (disjunctive image — components run as
// concurrent jobs of one parallel section) and a bounded BFS frontier
// sweep on the 8-cell scaled arbiter (conjunctive image — large
// Apply/AndExists calls fork inside the shared engine; the full
// fixpoint is out of reach at this size, matching the partition
// bench's treatment of cells >= 6) for workers in {1, 2, 4, 8}.
// workers=1 is the sequential engine and the wall-time baseline the
// parallel rows are judged against. Peak live nodes stay directly
// comparable across worker counts because every schedule now runs on
// ONE shared manager — no scratch arenas to add in. The host's core
// count goes into the note (not the benchgate identity): wall-time
// wins are only asserted when the host can actually run goroutines in
// parallel.

type parallelBenchEntry struct {
	Model             string  `json:"model"`
	Mode              string  `json:"mode"`
	Workload          string  `json:"workload"`
	Workers           int     `json:"workers"`
	WallMS            float64 `json:"wall_ms"`
	PeakLiveNodes     int     `json:"peak_live_nodes"`
	ParallelSections  uint64  `json:"parallel_sections,omitempty"`
	ParallelJobs      uint64  `json:"parallel_jobs,omitempty"`
	ParallelForks     uint64  `json:"parallel_forks,omitempty"`
	PeakForksInFlight int     `json:"peak_forks_in_flight,omitempty"`
	ReachableStates   float64 `json:"reachable_states,omitempty"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	Note              string  `json:"note,omitempty"`
}

func TestRecordParallelBench(t *testing.T) {
	if os.Getenv("BENCH_PARALLEL") != "1" {
		t.Skip("set BENCH_PARALLEL=1 to record BENCH_parallel.json")
	}
	const gcThreshold = 1 << 16
	note := fmt.Sprintf("cpus=%d gomaxprocs=%d", runtime.NumCPU(), runtime.GOMAXPROCS(0))

	const boundedSteps = 10 // arbiter frontier sweep length (full fixpoint blows up)
	type benchCase struct {
		model    string
		mode     string
		workload string
		compile  func() (*kripke.Symbolic, error)
	}
	cases := []benchCase{
		{
			model:    "scaled-ring-8",
			mode:     "disjunctive",
			workload: "reachable",
			compile: func() (*kripke.Symbolic, error) {
				c, err := smv.CompileSource(scaledRingSource(8))
				if err != nil {
					return nil, err
				}
				c.S.EnableDisjunct(true)
				return c.S, nil
			},
		},
		{
			model:    "scaled-arbiter-k4",
			mode:     "conjunctive",
			workload: fmt.Sprintf("bfs-%d", boundedSteps),
			compile:  func() (*kripke.Symbolic, error) { return circuit.ScaledArbiter(4).Compile() },
		},
	}

	run := func(bc benchCase, workers int) parallelBenchEntry {
		s, err := bc.compile()
		if err != nil {
			t.Fatalf("%s: %v", bc.model, err)
		}
		m := s.M
		m.SetGCThreshold(gcThreshold)
		s.SetWorkers(workers)
		m.GC()
		s.ResetRelStats()
		t0 := time.Now()
		var reach bdd.Ref
		if bc.workload == "reachable" {
			reach, _ = s.Reachable()
		} else {
			reached := m.Protect(s.Init)
			frontier := m.Protect(s.Init)
			for i := 0; i < boundedSteps && frontier != bdd.False; i++ {
				img := s.Image(frontier)
				m.Unprotect(frontier)
				frontier = m.Protect(m.Diff(img, reached))
				m.Unprotect(reached)
				reached = m.Protect(m.Or(reached, frontier))
				m.MaybeGC()
			}
			m.Unprotect(frontier)
			m.Unprotect(reached)
			reach = reached
		}
		wall := time.Since(t0)
		rs := s.RelStats()
		hitRate, _ := arenaMetrics(s)
		return parallelBenchEntry{
			Model:             bc.model,
			Mode:              bc.mode,
			Workload:          bc.workload,
			Workers:           workers,
			WallMS:            float64(wall.Microseconds()) / 1000,
			PeakLiveNodes:     rs.PeakLiveNodes,
			ParallelSections:  m.Stats.ParallelSections,
			ParallelJobs:      m.Stats.ParallelJobs,
			ParallelForks:     m.Stats.ParallelForks,
			PeakForksInFlight: m.Stats.ParallelPeakInFlight,
			ReachableStates:   s.CountStates(reach),
			CacheHitRate:      hitRate,
			Note:              note,
		}
	}

	var entries []parallelBenchEntry
	for _, bc := range cases {
		for _, w := range []int{1, 2, 4, 8} {
			entries = append(entries, run(bc, w))
		}
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_parallel.json with %d entries (%s)", len(entries), note)

	// Acceptance. Correctness and honesty first: same reachable count at
	// every worker count, parallel rows really ran parallel sections, and
	// the shared-manager peak stays under the retired scratch-arena
	// schedule's ~51k-node high-water mark on the ring.
	byWorkers := func(model string, workers int) *parallelBenchEntry {
		for i := range entries {
			if entries[i].Model == model && entries[i].Workers == workers {
				return &entries[i]
			}
		}
		t.Fatalf("missing entry %s workers=%d", model, workers)
		return nil
	}
	const oldScratchSchedulePeak = 51_000
	for _, bc := range cases {
		seq := byWorkers(bc.model, 1)
		for _, w := range []int{2, 4, 8} {
			par := byWorkers(bc.model, w)
			if par.ReachableStates != seq.ReachableStates {
				t.Errorf("%s workers=%d: reachable count differs: %v vs %v",
					bc.model, w, par.ReachableStates, seq.ReachableStates)
			}
			if par.ParallelSections == 0 {
				t.Errorf("%s workers=%d: no parallel sections ran", bc.model, w)
			}
			if bc.model == "scaled-ring-8" && par.PeakLiveNodes >= oldScratchSchedulePeak {
				t.Errorf("%s workers=%d: peak %d nodes exceeds the old scratch schedule's ~%d",
					bc.model, w, par.PeakLiveNodes, oldScratchSchedulePeak)
			}
		}
	}
	// Wall time: on a multi-core host at least one whole-reachability run
	// must be faster with 8 workers than sequential. On a single-core
	// host parallel cannot win wall time — the engine must merely stay
	// within bounded overhead of the sequential baseline.
	if runtime.NumCPU() > 1 {
		won := false
		for _, bc := range cases {
			if byWorkers(bc.model, 8).WallMS < byWorkers(bc.model, 1).WallMS {
				won = true
			}
		}
		if !won {
			t.Errorf("workers=8 beat sequential wall time on no model (cpus=%d)", runtime.NumCPU())
		}
	} else {
		for _, bc := range cases {
			seq, par := byWorkers(bc.model, 1), byWorkers(bc.model, 8)
			if par.WallMS > 3*seq.WallMS+10 {
				t.Errorf("%s: workers=8 wall %.1fms > 3x sequential %.1fms on a single-core host",
					bc.model, par.WallMS, seq.WallMS)
			}
		}
	}
}

// --- BENCH_smvd.json: the persistent-server cache artifact ------------
//
// TestRecordSmvdBench is gated behind BENCH_SMVD=1 and writes
// BENCH_smvd.json, the artifact for the smvd session cache:
//
//	cold_compile  first query on a fresh server: parse + compile +
//	              reachability + fair set + all specs
//	warm_query    median repeat query on the same session (cached
//	              reachable/fair sets + subformula memo); its
//	              warm_speedup over cold is the headline number and
//	              must be at least 5x — the recorder refuses to write
//	              a run below that
//	warm_restart  first query after a simulated restart, seeded from
//	              the on-disk serialize-v3 record; image_calls is
//	              asserted zero (the reachability frontier is the only
//	              Image user in CTL checking, so zero proves the
//	              fixpoint was skipped)
//	sustained     concurrent hot-query throughput
//
// The CI bench-smoke job gates peak_live_nodes (deterministic for a
// fixed model) at 25% and warm_speedup — a same-machine ratio, so
// runner speed cancels out — with a wide 90% band against the
// committed baseline.

type smvdBenchEntry struct {
	Model           string  `json:"model"`
	Phase           string  `json:"phase"`
	WallMS          float64 `json:"wall_ms"`
	PeakLiveNodes   int     `json:"peak_live_nodes,omitempty"`
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`
	ReachableStates float64 `json:"reachable_states,omitempty"`
	ReachIters      int     `json:"reach_iters,omitempty"`
	WarmSpeedup     float64 `json:"warm_speedup,omitempty"`
	ImageCalls      uint64  `json:"image_calls"`
	QPS             float64 `json:"qps,omitempty"`
	Queries         uint64  `json:"queries,omitempty"`
	Note            string  `json:"note,omitempty"`
}

func TestRecordSmvdBench(t *testing.T) {
	if os.Getenv("BENCH_SMVD") != "1" {
		t.Skip("set BENCH_SMVD=1 to record BENCH_smvd.json")
	}
	const clients = 8
	src := modelgen.ArbiterSource(clients)
	specs, truth := modelgen.ArbiterSpecs(clients)
	passing := specs[:2] // the ImageCalls==0 proof needs specs without counterexamples

	verify := func(resp *smvd.CheckResponse, want []bool) {
		t.Helper()
		for i, v := range resp.Verdicts {
			if v.Error != "" {
				t.Fatalf("%q: %s", v.Spec, v.Error)
			}
			if v.Holds != want[i] {
				t.Fatalf("%q: holds=%v want %v — refusing to record a wrong run",
					v.Spec, v.Holds, want[i])
			}
		}
	}

	dir := t.TempDir()
	cache, err := smvd.NewCache(8, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	sv := smvd.NewServer(cache)
	req := &smvd.CheckRequest{Model: src, Specs: specs}

	// Phase 1: cold.
	t0 := time.Now()
	cold, err := sv.Check(req)
	coldWall := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warm {
		t.Fatal("cold query reported warm")
	}
	verify(cold, truth)
	ss := sv.Cache.Sessions()
	if len(ss) != 1 {
		t.Fatalf("got %d sessions", len(ss))
	}
	entries := []smvdBenchEntry{{
		Model:           fmt.Sprintf("arbiter-%d", clients),
		Phase:           "cold_compile",
		WallMS:          float64(coldWall.Microseconds()) / 1000,
		PeakLiveNodes:   ss[0].Rel.PeakLiveNodes,
		CacheHitRate:    ss[0].CacheHitRate,
		ReachableStates: cold.ReachableStates,
		ReachIters:      cold.ReachIters,
		ImageCalls:      ss[0].Rel.ImageCalls,
	}}

	// Phase 2: warm queries on the hot session; median of several runs.
	var warmWalls []time.Duration
	for i := 0; i < 7; i++ {
		t0 = time.Now()
		warm, err := sv.Check(req)
		warmWalls = append(warmWalls, time.Since(t0))
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Warm {
			t.Fatal("repeat query not warm")
		}
		verify(warm, truth)
	}
	sort.Slice(warmWalls, func(i, j int) bool { return warmWalls[i] < warmWalls[j] })
	warmWall := warmWalls[len(warmWalls)/2]
	speedup := float64(coldWall) / float64(warmWall)
	if speedup < 5 {
		t.Fatalf("warm query only %.1fx faster than cold (%v vs %v) — below the 5x floor",
			speedup, warmWall, coldWall)
	}
	entries = append(entries, smvdBenchEntry{
		Model:       fmt.Sprintf("arbiter-%d", clients),
		Phase:       "warm_query",
		WallMS:      float64(warmWall.Microseconds()) / 1000,
		WarmSpeedup: speedup,
	})

	// Phase 3: sustained concurrent hot-query throughput.
	const hammerWorkers, perWorker = 4, 100
	var wg sync.WaitGroup
	t0 = time.Now()
	for w := 0; w < hammerWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := sv.Check(req); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hammer := time.Since(t0)
	entries = append(entries, smvdBenchEntry{
		Model:   fmt.Sprintf("arbiter-%d", clients),
		Phase:   "sustained",
		WallMS:  float64(hammer.Microseconds()) / 1000,
		QPS:     hammerWorkers * perWorker / hammer.Seconds(),
		Queries: hammerWorkers * perWorker,
	})

	// Phase 4: warm restart from the serialize-v3 record.
	if err := sv.Cache.FlushAll(); err != nil {
		t.Fatal(err)
	}
	cache2, err := smvd.NewCache(8, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	sv2 := smvd.NewServer(cache2)
	t0 = time.Now()
	restart, err := sv2.Check(&smvd.CheckRequest{Model: src, Specs: passing})
	restartWall := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if !restart.Warm || restart.WarmSource != "disk" {
		t.Fatalf("restart not disk-warm: warm=%v source=%q", restart.Warm, restart.WarmSource)
	}
	verify(restart, truth[:2])
	if restart.ReachableStates != cold.ReachableStates || restart.ReachIters != cold.ReachIters {
		t.Fatalf("warm restart changed reachability: %v/%d vs %v/%d",
			restart.ReachableStates, restart.ReachIters, cold.ReachableStates, cold.ReachIters)
	}
	ss2 := sv2.Cache.Sessions()
	if len(ss2) != 1 {
		t.Fatalf("got %d sessions after restart", len(ss2))
	}
	if ss2[0].Rel.ImageCalls != 0 {
		t.Fatalf("warm restart ran %d image calls — reachability was not skipped", ss2[0].Rel.ImageCalls)
	}
	entries = append(entries, smvdBenchEntry{
		Model:           fmt.Sprintf("arbiter-%d", clients),
		Phase:           "warm_restart",
		WallMS:          float64(restartWall.Microseconds()) / 1000,
		ReachableStates: restart.ReachableStates,
		ReachIters:      restart.ReachIters,
		ImageCalls:      ss2[0].Rel.ImageCalls,
		WarmSpeedup:     float64(coldWall) / float64(restartWall),
		Note:            "compile re-runs on restart; reach/fair/sift restored from disk",
	})

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_smvd.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_smvd.json with %d entries (cold %.2fms, warm %.3fms, %.0fx, restart %.2fms)",
		len(entries), float64(coldWall.Microseconds())/1000,
		float64(warmWall.Microseconds())/1000, speedup,
		float64(restartWall.Microseconds())/1000)
}
