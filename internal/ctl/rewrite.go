package ctl

// Existential rewrites a CTL formula into the basis {¬, ∧, ∨, EX, EU, EG}
// using the dualities of Section 3:
//
//	AX f      ≡ ¬EX ¬f
//	EF f      ≡ E[true U f]
//	AF f      ≡ ¬EG ¬f
//	AG f      ≡ ¬E[true U ¬f]
//	A[f U g]  ≡ ¬E[¬g U ¬f ∧ ¬g] ∧ ¬EG ¬g
//	f -> g    ≡ ¬f ∨ g
//	f <-> g   ≡ (f ∧ g) ∨ (¬f ∧ ¬g)
//
// The result contains only KTrue, KFalse, KAtom, KEq, KNeq, KNot, KAnd,
// KOr, KEX, KEU and KEG nodes.
func Existential(f *Formula) *Formula {
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KTrue, KFalse, KAtom, KEq, KNeq:
		return f
	case KNot:
		return Not(Existential(f.L))
	case KAnd:
		return And(Existential(f.L), Existential(f.R))
	case KOr:
		return Or(Existential(f.L), Existential(f.R))
	case KImp:
		return Or(Not(Existential(f.L)), Existential(f.R))
	case KIff:
		l, r := Existential(f.L), Existential(f.R)
		return Or(And(l, r), And(Not(l), Not(r)))
	case KEX:
		return EX(Existential(f.L))
	case KEU:
		return EU(Existential(f.L), Existential(f.R))
	case KEG:
		return EG(Existential(f.L))
	case KEF:
		return EU(True(), Existential(f.L))
	case KAX:
		return Not(EX(Not(Existential(f.L))))
	case KAF:
		return Not(EG(Not(Existential(f.L))))
	case KAG:
		return Not(EU(True(), Not(Existential(f.L))))
	case KAU:
		l, r := Existential(f.L), Existential(f.R)
		ng := Not(r)
		return And(
			Not(EU(ng, And(Not(l), ng))),
			Not(EG(ng)),
		)
	default:
		panic("ctl: Existential: unknown kind " + f.Kind.String())
	}
}

// IsExistentialBasis reports whether f only uses the existential basis
// (the output language of Existential).
func IsExistentialBasis(f *Formula) bool {
	if f == nil {
		return true
	}
	switch f.Kind {
	case KTrue, KFalse, KAtom, KEq, KNeq, KNot, KAnd, KOr, KEX, KEU, KEG:
		return IsExistentialBasis(f.L) && IsExistentialBasis(f.R)
	}
	return false
}

// PushNegations converts a basis formula to negation normal form over
// literals and temporal operators where possible; temporal operators
// block negations (¬EX, ¬EU, ¬EG stay as-is). Used by the counterexample
// driver to expose the top-level witness obligation.
func PushNegations(f *Formula) *Formula {
	return pushNeg(f, false)
}

func pushNeg(f *Formula, neg bool) *Formula {
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KTrue:
		if neg {
			return False()
		}
		return f
	case KFalse:
		if neg {
			return True()
		}
		return f
	case KAtom, KEq, KNeq:
		if neg {
			return Not(f)
		}
		return f
	case KNot:
		return pushNeg(f.L, !neg)
	case KAnd:
		if neg {
			return Or(pushNeg(f.L, true), pushNeg(f.R, true))
		}
		return And(pushNeg(f.L, false), pushNeg(f.R, false))
	case KOr:
		if neg {
			return And(pushNeg(f.L, true), pushNeg(f.R, true))
		}
		return Or(pushNeg(f.L, false), pushNeg(f.R, false))
	case KEX, KEU, KEG:
		var g *Formula
		switch f.Kind {
		case KEX:
			g = EX(pushNeg(f.L, false))
		case KEU:
			g = EU(pushNeg(f.L, false), pushNeg(f.R, false))
		default:
			g = EG(pushNeg(f.L, false))
		}
		if neg {
			return Not(g)
		}
		return g
	default:
		panic("ctl: PushNegations expects existential basis, got " + f.Kind.String())
	}
}
