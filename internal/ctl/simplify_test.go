package ctl

import (
	"testing"
)

func TestSimplifyRules(t *testing.T) {
	cases := []struct{ in, want string }{
		{"!!p", "p"},
		{"!true", "false"},
		{"p & true", "p"},
		{"p & false", "false"},
		{"p | false", "p"},
		{"p | true", "true"},
		{"p & p", "p"},
		{"p | p", "p"},
		{"p & !p", "false"},
		{"p | !p", "true"},
		{"p -> p", "true"},
		{"true -> p", "p"},
		{"p -> false", "!p"},
		{"p <-> true", "p"},
		{"p <-> p", "true"},
		{"EX false", "false"},
		{"AX true", "true"},
		{"EF false", "false"},
		{"EF EF p", "EF p"},
		{"AF true", "true"},
		{"AF AF p", "AF p"},
		{"EG false", "false"},
		{"EG EG p", "EG p"},
		{"AG true", "true"},
		{"AG AG p", "AG p"},
		{"E [p U false]", "false"},
		{"E [true U p]", "EF p"},
		{"AG (p & true -> AF (q | false))", "AG (p -> AF q)"},
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in))
		if got.String() != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestSimplifyKeepsFairnessSensitiveFormulas(t *testing.T) {
	// these must NOT be folded to constants: under fair semantics they
	// are not constant.
	keep := []string{
		"EF true",
		"EG true",
		"AF false",
		"AG false",
		"E [p U true]",
		"A [p U false]",
	}
	for _, src := range keep {
		f := MustParse(src)
		got := Simplify(f)
		if got.Kind == KTrue || got.Kind == KFalse {
			t.Errorf("Simplify(%q) folded to a constant (%s) — unsound under fairness", src, got)
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	srcs := []string{
		"AG (p & true -> AF (q | false))",
		"!!(EX false | EG EG p)",
		"E [true U (p & p)]",
	}
	for _, src := range srcs {
		once := Simplify(MustParse(src))
		twice := Simplify(once)
		if !Equal(once, twice) {
			t.Errorf("Simplify not idempotent on %q: %s vs %s", src, once, twice)
		}
	}
}
