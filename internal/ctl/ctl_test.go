package ctl

import (
	"strings"
	"testing"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"true", "true"},
		{"false", "false"},
		{"p", "p"},
		{"!p", "!p"},
		{"p & q", "p & q"},
		{"p | q & r", "p | q & r"},
		{"(p | q) & r", "(p | q) & r"},
		{"p -> q -> r", "p -> q -> r"}, // right assoc
		{"p <-> q", "p <-> q"},
		{"EX p", "EX p"},
		{"EF p", "EF p"},
		{"EG p", "EG p"},
		{"AX p", "AX p"},
		{"AF p", "AF p"},
		{"AG p", "AG p"},
		{"E [p U q]", "E [p U q]"},
		{"A [p U q]", "A [p U q]"},
		{"AG (req -> AF ack)", "AG (req -> AF ack)"},
		{"state = busy", "state = busy"},
		{"state != idle", "state != idle"},
		{"x = 3", "x = 3"},
		{"EG (p & EX q)", "EG (p & EX q)"},
		{"E [p & q U r | s]", "E [p & q U r | s]"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := f.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"AG (tr1 -> AF ta1)",
		"!(p -> EX (q & !r))",
		"A [p | q U EG r]",
		"E [E [a U b] U EG c]",
		"AG AF (p <-> q)",
		"EF (state = granting & EX state = idle)",
	}
	for _, s := range srcs {
		f1, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", f1.String(), err)
		}
		if !Equal(f1, f2) {
			t.Errorf("round trip changed %q: %q", s, f2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"p &",
		"(p",
		"E [p q]",
		"E p U q]",
		"AG",
		"p @ q",
		"p = ",
		"->",
		"p <- q",
		"E [p U q", // missing ]
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestExistentialRewrites(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"AX p", "!EX !p"},
		{"EF p", "E [true U p]"},
		{"AF p", "!EG !p"},
		{"AG p", "!E [true U !p]"},
		{"A [p U q]", "!E [!q U !p & !q] & !EG !q"},
		{"p -> q", "!p | q"},
		{"p <-> q", "p & q | !p & !q"},
		{"EX p", "EX p"},
	}
	for _, c := range cases {
		f := MustParse(c.src)
		g := Existential(f)
		if got := g.String(); got != c.want {
			t.Errorf("Existential(%q) = %q, want %q", c.src, got, c.want)
		}
		if !IsExistentialBasis(g) {
			t.Errorf("Existential(%q) not in basis", c.src)
		}
	}
}

func TestExistentialDeep(t *testing.T) {
	f := MustParse("AG (req -> AF ack)")
	g := Existential(f)
	if !IsExistentialBasis(g) {
		t.Fatal("nested rewrite left non-basis operators")
	}
	if strings.Contains(g.String(), "AG") || strings.Contains(g.String(), "AF") {
		t.Fatalf("universal operators survive: %s", g)
	}
}

func TestPushNegations(t *testing.T) {
	f := MustParse("!(p & !q)")
	g := PushNegations(Existential(f))
	if g.String() != "!p | q" {
		t.Fatalf("PushNegations = %q", g)
	}
	// Temporal operators block the negation.
	h := PushNegations(Existential(MustParse("!EG p")))
	if h.String() != "!EG p" {
		t.Fatalf("PushNegations EG = %q", h)
	}
	// Double negation cancels through.
	d := PushNegations(Existential(MustParse("!!EX p")))
	if d.String() != "EX p" {
		t.Fatalf("double negation = %q", d)
	}
}

func TestAtoms(t *testing.T) {
	f := MustParse("AG (b -> AF (a & state = busy))")
	got := Atoms(f)
	want := []string{"a", "b", "state"}
	if len(got) != len(want) {
		t.Fatalf("Atoms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Atoms = %v, want %v", got, want)
		}
	}
}

func TestAndNOrN(t *testing.T) {
	if AndN().String() != "true" || OrN().String() != "false" {
		t.Fatal("empty fold wrong")
	}
	f := AndN(Atom("a"), Atom("b"), Atom("c"))
	if f.String() != "a & b & c" {
		t.Fatalf("AndN = %s", f)
	}
}

func TestIsPropositional(t *testing.T) {
	if !IsPropositional(MustParse("p & (q | !r)")) {
		t.Fatal("propositional misclassified")
	}
	if IsPropositional(MustParse("p & EX q")) {
		t.Fatal("temporal misclassified")
	}
}

func TestSizeAndEqual(t *testing.T) {
	f := MustParse("EX (p & q)")
	if Size(f) != 4 {
		t.Fatalf("Size = %d", Size(f))
	}
	if !Equal(f, MustParse("EX (p & q)")) {
		t.Fatal("Equal false negative")
	}
	if Equal(f, MustParse("EX (p | q)")) {
		t.Fatal("Equal false positive")
	}
}
