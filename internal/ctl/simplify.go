package ctl

// Simplify applies semantics-preserving rewrites to a formula before
// checking: constant folding, double-negation elimination, idempotence
// and absorption of the boolean connectives, and the temporal-operator
// rules that remain sound under FAIR semantics (Section 5 restricts the
// path quantifiers to fair paths, so rules like "EF true = true" or
// "E[f U true] = true" would be wrong: a state that starts no fair path
// satisfies neither). Smaller formulas mean fewer fixpoint computations
// and more memo hits in the checker; the tests verify semantic
// preservation against the checker itself on random models with and
// without fairness constraints.
func Simplify(f *Formula) *Formula {
	if f == nil {
		return nil
	}
	l := Simplify(f.L)
	r := Simplify(f.R)
	switch f.Kind {
	case KTrue, KFalse, KAtom, KEq, KNeq:
		return f
	case KNot:
		switch l.Kind {
		case KTrue:
			return False()
		case KFalse:
			return True()
		case KNot:
			return l.L
		}
		return Not(l)
	case KAnd:
		switch {
		case l.Kind == KFalse || r.Kind == KFalse:
			return False()
		case l.Kind == KTrue:
			return r
		case r.Kind == KTrue:
			return l
		case Equal(l, r):
			return l
		case l.Kind == KNot && Equal(l.L, r), r.Kind == KNot && Equal(r.L, l):
			return False()
		}
		return And(l, r)
	case KOr:
		switch {
		case l.Kind == KTrue || r.Kind == KTrue:
			return True()
		case l.Kind == KFalse:
			return r
		case r.Kind == KFalse:
			return l
		case Equal(l, r):
			return l
		case l.Kind == KNot && Equal(l.L, r), r.Kind == KNot && Equal(r.L, l):
			return True()
		}
		return Or(l, r)
	case KImp:
		switch {
		case l.Kind == KFalse || r.Kind == KTrue:
			return True()
		case l.Kind == KTrue:
			return r
		case r.Kind == KFalse:
			return Simplify(Not(l))
		case Equal(l, r):
			return True()
		}
		return Imp(l, r)
	case KIff:
		switch {
		case l.Kind == KTrue:
			return r
		case r.Kind == KTrue:
			return l
		case l.Kind == KFalse:
			return Simplify(Not(r))
		case r.Kind == KFalse:
			return Simplify(Not(l))
		case Equal(l, r):
			return True()
		}
		return Iff(l, r)
	case KEX:
		if l.Kind == KFalse {
			return False()
		}
		return EX(l)
	case KAX:
		if l.Kind == KTrue {
			return True()
		}
		return AX(l)
	case KEF:
		switch l.Kind {
		case KFalse:
			return False()
		case KEF: // EF EF f = EF f (holds under fairness too)
			return l
		}
		return EF(l)
	case KAF:
		switch l.Kind {
		case KTrue:
			return True()
		case KAF:
			return l
		}
		return AF(l)
	case KEG:
		switch l.Kind {
		case KFalse:
			return False()
		case KEG:
			return l
		}
		return EG(l)
	case KAG:
		switch l.Kind {
		case KTrue:
			return True()
		case KAG:
			return l
		}
		return AG(l)
	case KEU:
		switch {
		case r.Kind == KFalse:
			return False()
		case l.Kind == KTrue:
			return Simplify(EF(r)) // definitional
		}
		return EU(l, r)
	case KAU:
		// No constant rules: A[f U false] is vacuously TRUE at states
		// that start no fair path, so it is not constant under fairness.
		return AU(l, r)
	}
	return f
}
