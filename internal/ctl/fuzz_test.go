package ctl

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzCTLParse asserts the parser's safety contract: it never panics on
// arbitrary input, and for every input it accepts, printing and
// reparsing is stable — Parse(f.String()).String() == f.String(), so the
// printed form is a fixed point of the parse→print cycle (witness and
// checker memo keys rely on that stability).
func FuzzCTLParse(f *testing.F) {
	seeds := []string{
		"AG (tr1 -> AF ta1)",
		"E [p U q] & !EG r",
		"A [ x U EF (y | !z) ]",
		"EX (a = 1) | AG (b != off)",
		"!(p <-> q) -> A [ true U false ]",
		"EF (p & EX q)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seed with the SPEC lines of the shipped models.
	matches, _ := filepath.Glob(filepath.Join("..", "..", "models", "*.smv"))
	for _, path := range matches {
		file, err := os.Open(path)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(file)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if rest, ok := strings.CutPrefix(line, "SPEC"); ok {
				f.Add(strings.TrimSpace(rest))
			}
		}
		file.Close()
	}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		formula, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := formula.String()
		reparsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", src, printed, err)
		}
		if again := reparsed.String(); again != printed {
			t.Fatalf("print not a parse fixed point: %q -> %q -> %q", src, printed, again)
		}
	})
}
