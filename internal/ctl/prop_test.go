package ctl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFormula builds a random CTL formula over a fixed atom set.
func randomFormula(r *rand.Rand, depth int) *Formula {
	atoms := []string{"p", "q", "r_1", "sig.a"}
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(5) {
		case 0:
			return True()
		case 1:
			return False()
		case 2:
			return Eq("state", "busy")
		case 3:
			return Neq("n", "3")
		default:
			return Atom(atoms[r.Intn(len(atoms))])
		}
	}
	a := randomFormula(r, depth-1)
	b := randomFormula(r, depth-1)
	switch r.Intn(12) {
	case 0:
		return Not(a)
	case 1:
		return And(a, b)
	case 2:
		return Or(a, b)
	case 3:
		return Imp(a, b)
	case 4:
		return Iff(a, b)
	case 5:
		return EX(a)
	case 6:
		return EF(a)
	case 7:
		return EG(a)
	case 8:
		return AX(a)
	case 9:
		return AF(a)
	case 10:
		return AG(a)
	default:
		if r.Intn(2) == 0 {
			return EU(a, b)
		}
		return AU(a, b)
	}
}

// TestPropParsePrintRoundTrip: printing then reparsing any formula is
// the identity (structurally).
func TestPropParsePrintRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 5)
		g, err := Parse(f.String())
		if err != nil {
			t.Logf("formula %q failed to reparse: %v", f, err)
			return false
		}
		if !Equal(f, g) {
			t.Logf("round trip changed %q into %q", f, g)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropExistentialIdempotent: rewriting twice equals rewriting once.
func TestPropExistentialIdempotent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 4)
		once := Existential(f)
		twice := Existential(once)
		return Equal(once, twice) && IsExistentialBasis(once)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropPushNegationsPreservesBasis: NNF keeps the basis and is
// idempotent.
func TestPropPushNegationsPreservesBasis(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := Existential(randomFormula(r, 4))
		nnf := PushNegations(f)
		if !IsExistentialBasis(nnf) {
			return false
		}
		return Equal(PushNegations(nnf), nnf)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropRewriteRoundTripThroughPrinter: the rewritten formula also
// survives print/parse.
func TestPropRewriteRoundTripThroughPrinter(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := Existential(randomFormula(r, 4))
		g, err := Parse(f.String())
		return err == nil && Equal(f, g)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
