// Package ctl defines the abstract syntax of the branching-time temporal
// logic CTL used by the model checker (Section 3 of the paper), a parser
// for it, and the rewriting of universal path quantifiers into the
// existential basis {EX, EU, EG} that the symbolic algorithms operate on.
package ctl

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates Formula nodes.
type Kind int

// Formula node kinds. The first group is propositional, the second the
// existential temporal basis, the third the universal abbreviations that
// Existential rewrites away, and the last the derived operators.
const (
	KTrue Kind = iota
	KFalse
	KAtom // boolean atomic proposition, by name
	KEq   // Name = Value over a finite-domain variable
	KNeq  // Name != Value
	KNot
	KAnd
	KOr
	KImp
	KIff

	KEX
	KEU // E[L U R]
	KEG

	KAX
	KAU // A[L U R]
	KAG
	KEF
	KAF
)

func (k Kind) String() string {
	switch k {
	case KTrue:
		return "true"
	case KFalse:
		return "false"
	case KAtom:
		return "atom"
	case KEq:
		return "="
	case KNeq:
		return "!="
	case KNot:
		return "!"
	case KAnd:
		return "&"
	case KOr:
		return "|"
	case KImp:
		return "->"
	case KIff:
		return "<->"
	case KEX:
		return "EX"
	case KEU:
		return "EU"
	case KEG:
		return "EG"
	case KAX:
		return "AX"
	case KAU:
		return "AU"
	case KAG:
		return "AG"
	case KEF:
		return "EF"
	case KAF:
		return "AF"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Formula is a CTL formula node. Formulas are immutable after
// construction; helpers below build them.
type Formula struct {
	Kind  Kind
	Name  string // KAtom, KEq, KNeq: variable name
	Value string // KEq, KNeq: right-hand constant
	L, R  *Formula
}

// Constructors.

// True is the constant true formula.
func True() *Formula { return &Formula{Kind: KTrue} }

// False is the constant false formula.
func False() *Formula { return &Formula{Kind: KFalse} }

// Atom is the atomic proposition named name.
func Atom(name string) *Formula { return &Formula{Kind: KAtom, Name: name} }

// Eq is the atomic proposition "name = value" over a finite-domain
// variable.
func Eq(name, value string) *Formula { return &Formula{Kind: KEq, Name: name, Value: value} }

// Neq is the atomic proposition "name != value".
func Neq(name, value string) *Formula { return &Formula{Kind: KNeq, Name: name, Value: value} }

// Not negates f.
func Not(f *Formula) *Formula { return &Formula{Kind: KNot, L: f} }

// And conjoins l and r.
func And(l, r *Formula) *Formula { return &Formula{Kind: KAnd, L: l, R: r} }

// Or disjoins l and r.
func Or(l, r *Formula) *Formula { return &Formula{Kind: KOr, L: l, R: r} }

// Imp is l -> r.
func Imp(l, r *Formula) *Formula { return &Formula{Kind: KImp, L: l, R: r} }

// Iff is l <-> r.
func Iff(l, r *Formula) *Formula { return &Formula{Kind: KIff, L: l, R: r} }

// EX: f holds in some successor state.
func EX(f *Formula) *Formula { return &Formula{Kind: KEX, L: f} }

// EU: E[l U r] — along some path, l holds until r does.
func EU(l, r *Formula) *Formula { return &Formula{Kind: KEU, L: l, R: r} }

// EG: along some path f holds globally.
func EG(f *Formula) *Formula { return &Formula{Kind: KEG, L: f} }

// EF: along some path f eventually holds.
func EF(f *Formula) *Formula { return &Formula{Kind: KEF, L: f} }

// AX: f holds in every successor state.
func AX(f *Formula) *Formula { return &Formula{Kind: KAX, L: f} }

// AU: A[l U r] — along every path, l holds until r does.
func AU(l, r *Formula) *Formula { return &Formula{Kind: KAU, L: l, R: r} }

// AG: along every path f holds globally.
func AG(f *Formula) *Formula { return &Formula{Kind: KAG, L: f} }

// AF: along every path f eventually holds.
func AF(f *Formula) *Formula { return &Formula{Kind: KAF, L: f} }

// AndN folds And over fs; True when empty.
func AndN(fs ...*Formula) *Formula {
	if len(fs) == 0 {
		return True()
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = And(out, f)
	}
	return out
}

// OrN folds Or over fs; False when empty.
func OrN(fs ...*Formula) *Formula {
	if len(fs) == 0 {
		return False()
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = Or(out, f)
	}
	return out
}

// precedence for printing: higher binds tighter.
func (f *Formula) prec() int {
	switch f.Kind {
	case KIff:
		return 1
	case KImp:
		return 2
	case KOr:
		return 3
	case KAnd:
		return 4
	case KNot, KEX, KEG, KAX, KAG, KEF, KAF:
		return 5
	default:
		return 6
	}
}

// String renders f in the concrete syntax accepted by Parse.
func (f *Formula) String() string {
	var sb strings.Builder
	f.write(&sb, 0)
	return sb.String()
}

func (f *Formula) write(sb *strings.Builder, outer int) {
	p := f.prec()
	if p < outer {
		sb.WriteByte('(')
	}
	switch f.Kind {
	case KTrue:
		sb.WriteString("true")
	case KFalse:
		sb.WriteString("false")
	case KAtom:
		sb.WriteString(f.Name)
	case KEq:
		fmt.Fprintf(sb, "%s = %s", f.Name, f.Value)
	case KNeq:
		fmt.Fprintf(sb, "%s != %s", f.Name, f.Value)
	case KNot:
		sb.WriteByte('!')
		f.L.write(sb, p)
	case KAnd:
		f.L.write(sb, p)
		sb.WriteString(" & ")
		f.R.write(sb, p+1)
	case KOr:
		f.L.write(sb, p)
		sb.WriteString(" | ")
		f.R.write(sb, p+1)
	case KImp:
		f.L.write(sb, p+1)
		sb.WriteString(" -> ")
		f.R.write(sb, p)
	case KIff:
		f.L.write(sb, p+1)
		sb.WriteString(" <-> ")
		f.R.write(sb, p+1)
	case KEX, KEG, KAX, KAG, KEF, KAF:
		sb.WriteString(f.Kind.String())
		sb.WriteByte(' ')
		f.L.write(sb, p)
	case KEU:
		sb.WriteString("E [")
		f.L.write(sb, 0)
		sb.WriteString(" U ")
		f.R.write(sb, 0)
		sb.WriteString("]")
	case KAU:
		sb.WriteString("A [")
		f.L.write(sb, 0)
		sb.WriteString(" U ")
		f.R.write(sb, 0)
		sb.WriteString("]")
	}
	if p < outer {
		sb.WriteByte(')')
	}
}

// Equal reports structural equality.
func Equal(a, b *Formula) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	return Equal(a.L, b.L) && Equal(a.R, b.R)
}

// Atoms returns the sorted set of atom/variable names appearing in f.
func Atoms(f *Formula) []string {
	set := map[string]bool{}
	var walk func(*Formula)
	walk = func(g *Formula) {
		if g == nil {
			return
		}
		if g.Kind == KAtom || g.Kind == KEq || g.Kind == KNeq {
			set[g.Name] = true
		}
		walk(g.L)
		walk(g.R)
	}
	walk(f)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of nodes in f.
func Size(f *Formula) int {
	if f == nil {
		return 0
	}
	return 1 + Size(f.L) + Size(f.R)
}

// IsPropositional reports whether f contains no temporal operators.
func IsPropositional(f *Formula) bool {
	if f == nil {
		return true
	}
	switch f.Kind {
	case KEX, KEU, KEG, KAX, KAU, KAG, KEF, KAF:
		return false
	}
	return IsPropositional(f.L) && IsPropositional(f.R)
}
