package ctl

import "fmt"

// Parse parses the concrete CTL syntax:
//
//	f ::= f '<->' f            (lowest precedence)
//	    | f '->' f             (right associative)
//	    | f '|' f
//	    | f '&' f
//	    | '!' f
//	    | 'EX' f | 'EF' f | 'EG' f | 'AX' f | 'AF' f | 'AG' f
//	    | 'E' '[' f 'U' f ']' | 'A' '[' f 'U' f ']'
//	    | ident | ident '=' const | ident '!=' const
//	    | 'true' | 'false' | '(' f ')'
//
// Identifiers may contain letters, digits, '_' and '.'.
func Parse(src string) (*Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.iff()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("ctl: unexpected %s after formula", p.cur())
	}
	return f, nil
}

// MustParse parses src and panics on error; intended for tests and
// compile-time-constant specifications.
func MustParse(src string) *Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("ctl: expected %s, found %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) iff() (*Formula, error) {
	l, err := p.imp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tIff {
		p.next()
		r, err := p.imp()
		if err != nil {
			return nil, err
		}
		l = Iff(l, r)
	}
	return l, nil
}

func (p *parser) imp() (*Formula, error) {
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tImp {
		p.next()
		r, err := p.imp() // right associative
		if err != nil {
			return nil, err
		}
		return Imp(l, r), nil
	}
	return l, nil
}

func (p *parser) or() (*Formula, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOr {
		p.next()
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *parser) and() (*Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tAnd {
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *parser) unary() (*Formula, error) {
	t := p.cur()
	switch t.kind {
	case tNot:
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case tLParen:
		p.next()
		f, err := p.iff()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case tIdent:
		return p.identLed()
	}
	return nil, fmt.Errorf("ctl: unexpected %s", t)
}

// identLed handles everything that starts with an identifier: temporal
// operator keywords, E[..U..]/A[..U..], constants, and (in)equality atoms.
func (p *parser) identLed() (*Formula, error) {
	t := p.next()
	switch t.text {
	case "true", "TRUE":
		return True(), nil
	case "false", "FALSE":
		return False(), nil
	case "EX", "EF", "EG", "AX", "AF", "AG":
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "EX":
			return EX(f), nil
		case "EF":
			return EF(f), nil
		case "EG":
			return EG(f), nil
		case "AX":
			return AX(f), nil
		case "AF":
			return AF(f), nil
		default:
			return AG(f), nil
		}
	case "E", "A":
		if _, err := p.expect(tLBracket, "'['"); err != nil {
			return nil, err
		}
		l, err := p.untilOperand()
		if err != nil {
			return nil, err
		}
		r, err := p.iff()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBracket, "']'"); err != nil {
			return nil, err
		}
		if t.text == "E" {
			return EU(l, r), nil
		}
		return AU(l, r), nil
	}
	// plain atom, possibly followed by =/!= constant
	switch p.cur().kind {
	case tEq:
		p.next()
		v, err := p.constOperand()
		if err != nil {
			return nil, err
		}
		return Eq(t.text, v), nil
	case tNeq:
		p.next()
		v, err := p.constOperand()
		if err != nil {
			return nil, err
		}
		return Neq(t.text, v), nil
	}
	return Atom(t.text), nil
}

// untilOperand parses the left operand of U up to the 'U' keyword.
func (p *parser) untilOperand() (*Formula, error) {
	// Parse an iff-level formula, then require the identifier "U".
	// Because "U" lexes as an identifier, we parse with a shim: parse
	// ors/ands greedily; an identifier token "U" terminates the operand.
	f, err := p.iffUntil()
	if err != nil {
		return nil, err
	}
	t, err := p.expect(tIdent, "'U'")
	if err != nil {
		return nil, err
	}
	if t.text != "U" {
		return nil, fmt.Errorf("ctl: expected 'U' in until, found %q", t.text)
	}
	return f, nil
}

// iffUntil parses like iff but stops before a bare identifier token "U".
func (p *parser) iffUntil() (*Formula, error) {
	// Mark-and-restore parse: temporarily rewrite is unnecessary because
	// "U" only ever follows a complete operand; the grammar is such that
	// after a complete formula an identifier cannot continue it, so plain
	// iff() already stops before "U".
	return p.iff()
}

// constOperand parses the right-hand side of =/!=.
func (p *parser) constOperand() (string, error) {
	t := p.cur()
	if t.kind == tIdent || t.kind == tNumber {
		p.next()
		return t.text, nil
	}
	return "", fmt.Errorf("ctl: expected constant after comparison, found %s", t)
}
