package automata

import (
	"errors"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/ctlstar"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// Product is the state-transition system M(K, K′) of Section 8: states
// are pairs (s, s′), with a transition when some common input symbol
// drives both automata. It is materialized explicitly (reachable part)
// and encoded symbolically for the fragment checker; atoms "U<i>",
// "V<i>" (implementation pairs) and "Us<j>", "Vs<j>" (specification
// pairs) label the product states.
type Product struct {
	K, Kp *Streett

	Sym    *kripke.Symbolic
	States []ProdState      // index -> pair
	Index  map[[2]int]int   // pair -> index
	Syms   map[[2]int][]int // edge (by product indices) -> enabling symbols
	bits   int
}

// ProdState is one product state.
type ProdState struct{ S, Sp int }

// NewProduct builds the reachable product of K and K′ (same alphabet).
func NewProduct(k, kp *Streett) (*Product, error) {
	if len(k.Alphabet) != len(kp.Alphabet) {
		return nil, errors.New("automata: alphabet size mismatch")
	}
	for i := range k.Alphabet {
		if k.Alphabet[i] != kp.Alphabet[i] {
			return nil, errors.New("automata: alphabet mismatch")
		}
	}
	p := &Product{K: k, Kp: kp, Index: map[[2]int]int{}, Syms: map[[2]int][]int{}}
	add := func(s, sp int) int {
		key := [2]int{s, sp}
		if i, ok := p.Index[key]; ok {
			return i
		}
		i := len(p.States)
		p.Index[key] = i
		p.States = append(p.States, ProdState{s, sp})
		return i
	}
	start := add(k.Init, kp.Init)
	type edge struct{ u, v int }
	var edges []edge
	queue := []int{start}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		ps := p.States[u]
		for a := range k.Alphabet {
			for _, t := range k.Trans[ps.S][a] {
				for _, tp := range kp.Trans[ps.Sp][a] {
					before := len(p.States)
					v := add(t, tp)
					if v == before {
						queue = append(queue, v)
					}
					key := [2]int{u, v}
					if len(p.Syms[key]) == 0 {
						edges = append(edges, edge{u, v})
					}
					p.Syms[key] = appendUnique(p.Syms[key], a)
				}
			}
		}
	}

	e := kripke.NewExplicit(len(p.States))
	for _, ed := range edges {
		e.AddEdge(ed.u, ed.v)
	}
	e.AddInit(start)
	for i, ps := range p.States {
		for pi, pair := range k.Accept {
			if pair.U[ps.S] {
				e.Label(i, fmt.Sprintf("U%d", pi))
			}
			if pair.V[ps.S] {
				e.Label(i, fmt.Sprintf("V%d", pi))
			}
		}
		for pj, pair := range kp.Accept {
			if pair.U[ps.Sp] {
				e.Label(i, fmt.Sprintf("Us%d", pj))
			}
			if pair.V[ps.Sp] {
				e.Label(i, fmt.Sprintf("Vs%d", pj))
			}
		}
		// per-spec-state atom, used by Muller containment
		e.Label(i, fmt.Sprintf("Sq%d", ps.Sp))
	}
	e.MakeTotal() // complete automata make this a no-op
	p.Sym = kripke.FromExplicit(e)
	p.bits = len(p.Sym.Vars)

	// Register acceptance atoms that label no state at all (empty U or V
	// sets) so the fragment formulas still resolve.
	names := map[string]bool{}
	for _, n := range e.AtomNames() {
		names[n] = true
	}
	for pi := range k.Accept {
		for _, n := range []string{fmt.Sprintf("U%d", pi), fmt.Sprintf("V%d", pi)} {
			if !names[n] {
				p.Sym.RegisterAtom(n, bdd.False)
			}
		}
	}
	for pj := range kp.Accept {
		for _, n := range []string{fmt.Sprintf("Us%d", pj), fmt.Sprintf("Vs%d", pj)} {
			if !names[n] {
				p.Sym.RegisterAtom(n, bdd.False)
			}
		}
	}
	for q := 0; q < kp.NumState; q++ {
		if n := fmt.Sprintf("Sq%d", q); !names[n] {
			p.Sym.RegisterAtom(n, bdd.False)
		}
	}
	return p, nil
}

func appendUnique(xs []int, x int) []int {
	for _, y := range xs {
		if y == x {
			return xs
		}
	}
	return append(xs, x)
}

// acceptanceViolation builds, for specification pair j, the Section 8
// fragment formula expressing "the run satisfies K's acceptance and
// violates pair j of K′'s":
//
//	E ⋀_{(U,V)∈F} (FG U ∨ GF V)  ∧  GF ¬U′_j  ∧  FG ¬V′_j
func (p *Product) acceptanceViolation(j int) ctlstar.Formula {
	var f ctlstar.Formula
	for pi := range p.K.Accept {
		f = append(f, ctlstar.Clause{
			ctlstar.FGTerm(ctl.Atom(fmt.Sprintf("U%d", pi))),
			ctlstar.GFTerm(ctl.Atom(fmt.Sprintf("V%d", pi))),
		})
	}
	f = append(f,
		ctlstar.Clause{ctlstar.GFTerm(ctl.Not(ctl.Atom(fmt.Sprintf("Us%d", j))))},
		ctlstar.Clause{ctlstar.FGTerm(ctl.Not(ctl.Atom(fmt.Sprintf("Vs%d", j))))},
	)
	return f
}

// ContainResult reports the outcome of a containment check.
type ContainResult struct {
	Contained bool
	// On failure: the violated specification pair, the product trace,
	// and the extracted counterexample word (accepted by K, rejected by
	// K′).
	ViolatedPair int
	Trace        *core.Trace
	Word         Word
}

// CheckContainment decides L(K) ⊆ L(K′). K may be nondeterministic; K′
// must be deterministic and complete (the equivalence of Section 8 does
// not hold otherwise). Both automata must be complete.
func CheckContainment(k, kp *Streett) (*ContainResult, error) {
	if !kp.IsDeterministic() {
		return nil, errors.New("automata: specification automaton must be deterministic")
	}
	if !k.IsComplete() || !kp.IsComplete() {
		return nil, errors.New("automata: both automata must be complete (use MakeComplete)")
	}
	p, err := NewProduct(k, kp)
	if err != nil {
		return nil, err
	}
	sc := ctlstar.New(mc.New(p.Sym))
	init := kripke.IndexState(0, p.bits) // product init has index 0

	npairs := len(kp.Accept)
	if npairs == 0 {
		// With no spec pairs every run of K′ accepts, so containment
		// reduces to completeness of K′, which we required.
		return &ContainResult{Contained: true}, nil
	}
	for j := 0; j < npairs; j++ {
		f := p.acceptanceViolation(j)
		set, err := sc.Check(f)
		if err != nil {
			return nil, err
		}
		if !p.Sym.Holds(set, init) {
			continue
		}
		tr, err := sc.Witness(f, init)
		if err != nil {
			return nil, fmt.Errorf("automata: witness extraction: %w", err)
		}
		w, err := p.TraceWord(tr)
		if err != nil {
			return nil, err
		}
		return &ContainResult{Contained: false, ViolatedPair: j, Trace: tr, Word: w}, nil
	}
	return &ContainResult{Contained: true}, nil
}

// TraceWord converts a product lasso trace into an ultimately periodic
// word by choosing, for every edge, a symbol enabling it. The cycle of
// the word corresponds to the cycle of the trace.
func (p *Product) TraceWord(tr *core.Trace) (Word, error) {
	if !tr.IsLasso() {
		return Word{}, errors.New("automata: trace must be a lasso")
	}
	idx := func(st kripke.State) int { return kripke.StateIndex(st) }
	var w Word
	pick := func(u, v int) (int, error) {
		syms := p.Syms[[2]int{u, v}]
		if len(syms) == 0 {
			return 0, fmt.Errorf("automata: no symbol for product edge %d -> %d", u, v)
		}
		return syms[0], nil
	}
	for i := 1; i < len(tr.States); i++ {
		s, err := pick(idx(tr.States[i-1]), idx(tr.States[i]))
		if err != nil {
			return Word{}, err
		}
		if i <= tr.CycleStart {
			w.Prefix = append(w.Prefix, s)
		} else {
			w.Cycle = append(w.Cycle, s)
		}
	}
	// closing edge: last state back to cycle start
	s, err := pick(idx(tr.Last()), idx(tr.States[tr.CycleStart]))
	if err != nil {
		return Word{}, err
	}
	w.Cycle = append(w.Cycle, s)
	return w, nil
}
