package automata

import (
	"errors"
	"fmt"

	"repro/internal/ctl"
	"repro/internal/ctlstar"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// Section 8 closes with: "Counterexamples for the language inclusion
// problems of Büchi, Muller, Rabin, and L automata can be found in
// essentially the same way." This file implements that remark for Rabin
// and Muller specifications (Büchi being the one-pair Rabin special
// case): the negated acceptance of the deterministic specification is
// again a conjunction of (GF ∨ FG) clauses, so the same Section 7
// machinery checks the product and extracts the counterexample word.

// RabinAccepts decides whether the automaton — with its pairs read
// under RABIN semantics: a run is accepted iff for SOME pair (U,V),
// inf(r) ∩ U = ∅ and inf(r) ∩ V ≠ ∅ — accepts the ultimately periodic
// word. Nondeterminism is handled by SCC search on the word product.
func (a *Streett) RabinAccepts(w Word) (bool, error) {
	if len(w.Cycle) == 0 {
		return false, errors.New("automata: word must have a nonempty cycle")
	}
	total := len(w.Prefix) + len(w.Cycle)
	symAt := func(pos int) int {
		if pos < len(w.Prefix) {
			return w.Prefix[pos]
		}
		return w.Cycle[pos-len(w.Prefix)]
	}
	nextPos := func(pos int) int {
		pos++
		if pos >= total {
			pos = len(w.Prefix)
		}
		return pos
	}
	n := a.NumState * total
	succ := make([][]int, n)
	for q := 0; q < a.NumState; q++ {
		for pos := 0; pos < total; pos++ {
			id := q*total + pos
			for _, t := range a.Trans[q][symAt(pos)] {
				succ[id] = append(succ[id], t*total+nextPos(pos))
			}
		}
	}
	start := a.Init * total
	reach := make([]bool, n)
	stack := []int{start}
	reach[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range succ[v] {
			if !reach[u] {
				reach[u] = true
				stack = append(stack, u)
			}
		}
	}
	// For each pair: restrict to states outside U, look for a reachable
	// nontrivial SCC containing a V-state.
	for _, pair := range a.Accept {
		sub := make([]bool, n)
		for v := 0; v < n; v++ {
			sub[v] = reach[v] && !pair.U[v/total]
		}
		for _, comp := range sccList(succ, sub) {
			if !nontrivial(succ, comp, sub) {
				continue
			}
			for _, v := range comp {
				if pair.V[v/total] {
					return true, nil
				}
			}
		}
	}
	return false, nil
}

// Muller is an ω-automaton with a Muller acceptance table: a run is
// accepted iff inf(r) is EXACTLY one of the table's state sets. The
// embedded Streett carries the transition structure; its Accept pairs
// are ignored.
type Muller struct {
	*Streett
	Table [][]bool
}

// NewMuller wraps a transition structure with a Muller table.
func NewMuller(base *Streett, sets ...[]int) *Muller {
	m := &Muller{Streett: base}
	for _, set := range sets {
		row := make([]bool, base.NumState)
		for _, q := range set {
			row[q] = true
		}
		m.Table = append(m.Table, row)
	}
	return m
}

// Accepts decides word acceptance for a DETERMINISTIC Muller automaton
// by running the unique run until the (state, cycle-position) pair
// repeats and reading off the infinity set.
func (m *Muller) Accepts(w Word) (bool, error) {
	if !m.IsDeterministic() || !m.IsComplete() {
		return false, errors.New("automata: Muller acceptance requires a deterministic complete automaton")
	}
	if len(w.Cycle) == 0 {
		return false, errors.New("automata: word must have a nonempty cycle")
	}
	q := m.Init
	for _, sym := range w.Prefix {
		q = m.Trans[q][sym][0]
	}
	type key struct{ q, pos int }
	firstSeen := map[key]int{}
	var visits []int
	step := 0
	pos := 0
	for {
		k := key{q, pos}
		if at, ok := firstSeen[k]; ok {
			// states visited from `at` onward recur forever
			inf := make([]bool, m.NumState)
			for _, v := range visits[at:] {
				inf[v] = true
			}
			for _, row := range m.Table {
				same := true
				for i := range row {
					if row[i] != inf[i] {
						same = false
						break
					}
				}
				if same {
					return true, nil
				}
			}
			return false, nil
		}
		firstSeen[k] = step
		visits = append(visits, q)
		q = m.Trans[q][w.Cycle[pos]][0]
		pos = (pos + 1) % len(w.Cycle)
		step++
	}
}

// CheckContainmentRabin decides L(K) ⊆ L(K′) for a nondeterministic
// Streett implementation K and a deterministic complete RABIN
// specification K′. The negated Rabin acceptance
// ⋀_j (GF U′_j ∨ FG ¬V′_j) is one fragment formula, so a single check
// suffices.
func CheckContainmentRabin(k, kp *Streett) (*ContainResult, error) {
	if !kp.IsDeterministic() {
		return nil, errors.New("automata: specification automaton must be deterministic")
	}
	if !k.IsComplete() || !kp.IsComplete() {
		return nil, errors.New("automata: both automata must be complete (use MakeComplete)")
	}
	p, err := NewProduct(k, kp)
	if err != nil {
		return nil, err
	}
	var f ctlstar.Formula
	for pi := range k.Accept {
		f = append(f, ctlstar.Clause{
			ctlstar.FGTerm(ctl.Atom(fmt.Sprintf("U%d", pi))),
			ctlstar.GFTerm(ctl.Atom(fmt.Sprintf("V%d", pi))),
		})
	}
	for pj := range kp.Accept {
		f = append(f, ctlstar.Clause{
			ctlstar.GFTerm(ctl.Atom(fmt.Sprintf("Us%d", pj))),
			ctlstar.FGTerm(ctl.Not(ctl.Atom(fmt.Sprintf("Vs%d", pj)))),
		})
	}
	return p.decideViolation(f, 0)
}

// CheckContainmentMuller decides L(K) ⊆ L(K′) for a nondeterministic
// Streett K and a deterministic complete Muller specification K′. The
// negated Muller acceptance is the conjunction over table rows S of
// (⋁_{s∈S} FG ¬s ∨ ⋁_{s∉S} GF s).
func CheckContainmentMuller(k *Streett, kp *Muller) (*ContainResult, error) {
	if !kp.IsDeterministic() {
		return nil, errors.New("automata: specification automaton must be deterministic")
	}
	if !k.IsComplete() || !kp.IsComplete() {
		return nil, errors.New("automata: both automata must be complete (use MakeComplete)")
	}
	p, err := NewProduct(k, kp.Streett)
	if err != nil {
		return nil, err
	}
	var f ctlstar.Formula
	for pi := range k.Accept {
		f = append(f, ctlstar.Clause{
			ctlstar.FGTerm(ctl.Atom(fmt.Sprintf("U%d", pi))),
			ctlstar.GFTerm(ctl.Atom(fmt.Sprintf("V%d", pi))),
		})
	}
	for _, row := range kp.Table {
		var cl ctlstar.Clause
		for q := 0; q < kp.NumState; q++ {
			if row[q] {
				cl = append(cl, ctlstar.FGTerm(ctl.Not(ctl.Atom(fmt.Sprintf("Sq%d", q)))))
			} else {
				cl = append(cl, ctlstar.GFTerm(ctl.Atom(fmt.Sprintf("Sq%d", q))))
			}
		}
		f = append(f, cl)
	}
	return p.decideViolation(f, 0)
}

// decideViolation checks one violation formula on the product and, when
// satisfied at the initial state, extracts the counterexample word.
func (p *Product) decideViolation(f ctlstar.Formula, violatedPair int) (*ContainResult, error) {
	sc := ctlstar.New(mc.New(p.Sym))
	init := kripke.IndexState(0, p.bits)
	set, err := sc.Check(f)
	if err != nil {
		return nil, err
	}
	if !p.Sym.Holds(set, init) {
		return &ContainResult{Contained: true}, nil
	}
	tr, err := sc.Witness(f, init)
	if err != nil {
		return nil, fmt.Errorf("automata: witness extraction: %w", err)
	}
	w, err := p.TraceWord(tr)
	if err != nil {
		return nil, err
	}
	return &ContainResult{Contained: false, ViolatedPair: violatedPair, Trace: tr, Word: w}, nil
}
