// Package automata implements Section 8 of the paper: ω-automata
// (Streett acceptance, with Büchi as a special case), the product
// construction M(K, K′), and language-containment checking
// L(K) ⊆ L(K′) for a deterministic complete specification K′ by
// reduction to the CTL* fragment of Section 7. When containment fails,
// a counterexample — an ultimately periodic word accepted by K but not
// by K′ — is extracted from the fragment witness.
package automata

import (
	"errors"
	"fmt"
	"strings"
)

// Pair is one Streett acceptance pair (U, V): a run r is accepted by the
// pair iff inf(r) ⊆ U or inf(r) ∩ V ≠ ∅.
type Pair struct {
	U, V []bool
	Name string
}

// Streett is a (possibly nondeterministic) Streett automaton over a
// finite alphabet. Trans[q][a] lists the successor states of q on
// symbol index a.
type Streett struct {
	Name     string
	Alphabet []string
	NumState int
	Init     int
	Trans    [][][]int // [state][symbol] -> successors
	Accept   []Pair
}

// NewStreett allocates an automaton with the given state count and
// alphabet and no transitions.
func NewStreett(name string, numState int, alphabet []string) *Streett {
	a := &Streett{Name: name, Alphabet: alphabet, NumState: numState}
	a.Trans = make([][][]int, numState)
	for q := range a.Trans {
		a.Trans[q] = make([][]int, len(alphabet))
	}
	return a
}

// Symbol returns the index of a named symbol.
func (a *Streett) Symbol(name string) int {
	for i, s := range a.Alphabet {
		if s == name {
			return i
		}
	}
	panic(fmt.Sprintf("automata: unknown symbol %q", name))
}

// AddTrans adds the transition q --sym--> t.
func (a *Streett) AddTrans(q int, sym string, t int) {
	s := a.Symbol(sym)
	for _, u := range a.Trans[q][s] {
		if u == t {
			return
		}
	}
	a.Trans[q][s] = append(a.Trans[q][s], t)
}

// AddPair appends an acceptance pair given as state index sets.
func (a *Streett) AddPair(name string, u, v []int) {
	us := make([]bool, a.NumState)
	vs := make([]bool, a.NumState)
	for _, q := range u {
		us[q] = true
	}
	for _, q := range v {
		vs[q] = true
	}
	a.Accept = append(a.Accept, Pair{U: us, V: vs, Name: name})
}

// IsDeterministic reports whether every (state, symbol) has at most one
// successor.
func (a *Streett) IsDeterministic() bool {
	for q := range a.Trans {
		for s := range a.Trans[q] {
			if len(a.Trans[q][s]) > 1 {
				return false
			}
		}
	}
	return true
}

// IsComplete reports whether every (state, symbol) has at least one
// successor.
func (a *Streett) IsComplete() bool {
	for q := range a.Trans {
		for s := range a.Trans[q] {
			if len(a.Trans[q][s]) == 0 {
				return false
			}
		}
	}
	return true
}

// MakeComplete adds a rejecting sink state (if needed) so that the
// automaton becomes complete without changing its language. The sink is
// rejecting because it belongs to no U and no V; if the automaton has no
// acceptance pairs, a pair (U = all old states, V = ∅) is added first so
// that runs trapped in the sink are rejected while previously accepting
// runs remain accepting.
func (a *Streett) MakeComplete() {
	if a.IsComplete() {
		return
	}
	if len(a.Accept) == 0 {
		all := make([]int, a.NumState)
		for i := range all {
			all[i] = i
		}
		a.AddPair("total", all, nil)
	}
	sink := a.NumState
	a.NumState++
	a.Trans = append(a.Trans, make([][]int, len(a.Alphabet)))
	for s := range a.Alphabet {
		a.Trans[sink][s] = []int{sink}
	}
	for q := 0; q < sink; q++ {
		for s := range a.Alphabet {
			if len(a.Trans[q][s]) == 0 {
				a.Trans[q][s] = []int{sink}
			}
		}
	}
	for i := range a.Accept {
		a.Accept[i].U = append(a.Accept[i].U, false)
		a.Accept[i].V = append(a.Accept[i].V, false)
	}
}

// FromBuchi builds the Streett automaton equivalent to a Büchi automaton
// with accepting set acc: the single pair (∅, acc) requires inf ∩ acc ≠ ∅.
func FromBuchi(name string, numState int, alphabet []string, init int, acc []int) *Streett {
	a := NewStreett(name, numState, alphabet)
	a.Init = init
	a.AddPair("buchi", nil, acc)
	return a
}

// Word is an ultimately periodic ω-word: Prefix followed by Cycle
// repeated forever. Symbols are alphabet indices.
type Word struct {
	Prefix []int
	Cycle  []int
}

// Format renders the word with symbol names.
func (w Word) Format(alphabet []string) string {
	var sb strings.Builder
	for _, s := range w.Prefix {
		sb.WriteString(alphabet[s])
		sb.WriteByte(' ')
	}
	sb.WriteString("( ")
	for _, s := range w.Cycle {
		sb.WriteString(alphabet[s])
		sb.WriteByte(' ')
	}
	sb.WriteString(")^ω")
	return sb.String()
}

// Accepts decides whether the automaton accepts the ultimately periodic
// word. It explores the product of the automaton with the lasso-shaped
// word structure and applies the standard recursive Streett emptiness
// test on its strongly connected components.
func (a *Streett) Accepts(w Word) (bool, error) {
	if len(w.Cycle) == 0 {
		return false, errors.New("automata: word must have a nonempty cycle")
	}
	total := len(w.Prefix) + len(w.Cycle)
	symAt := func(pos int) int {
		if pos < len(w.Prefix) {
			return w.Prefix[pos]
		}
		return w.Cycle[pos-len(w.Prefix)]
	}
	nextPos := func(pos int) int {
		pos++
		if pos >= total {
			pos = len(w.Prefix)
		}
		return pos
	}
	// node encoding: q*total + pos
	n := a.NumState * total
	succ := make([][]int, n)
	for q := 0; q < a.NumState; q++ {
		for pos := 0; pos < total; pos++ {
			id := q*total + pos
			for _, t := range a.Trans[q][symAt(pos)] {
				succ[id] = append(succ[id], t*total+nextPos(pos))
			}
		}
	}
	start := a.Init*total + 0
	if total == len(w.Cycle) {
		start = a.Init * total // pos 0 is the cycle start anyway
	}
	reach := make([]bool, n)
	stack := []int{start}
	reach[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range succ[v] {
			if !reach[u] {
				reach[u] = true
				stack = append(stack, u)
			}
		}
	}
	// project acceptance through node -> q
	inU := func(pair int, node int) bool { return a.Accept[pair].U[node/total] }
	inV := func(pair int, node int) bool { return a.Accept[pair].V[node/total] }

	// Recursive Streett emptiness on the reachable subgraph: an
	// accepting run exists iff some reachable nontrivial sub-SCC C
	// satisfies, for every pair, C ⊆ U or C ∩ V ≠ ∅.
	var accepting func(sub []bool) bool
	accepting = func(sub []bool) bool {
		comps := sccList(succ, sub)
		for _, comp := range comps {
			if !nontrivial(succ, comp, sub) {
				continue
			}
			// check pairs
			ok := true
			var violated []int
			for p := range a.Accept {
				hasV := false
				allU := true
				for _, v := range comp {
					if inV(p, v) {
						hasV = true
					}
					if !inU(p, v) {
						allU = false
					}
				}
				if !hasV && !allU {
					ok = false
					violated = append(violated, p)
				}
			}
			if ok {
				return true
			}
			// restrict: remove states outside U of each violated pair
			restricted := make([]bool, n)
			changed := false
			for _, v := range comp {
				keep := true
				for _, p := range violated {
					if !inU(p, v) {
						keep = false
						break
					}
				}
				if keep {
					restricted[v] = true
				} else {
					changed = true
				}
			}
			if changed && accepting(restricted) {
				return true
			}
		}
		return false
	}
	return accepting(reach), nil
}

// sccList computes the SCCs of the subgraph as explicit node lists.
func sccList(succ [][]int, sub []bool) [][]int {
	comp, ncomp := tarjan(succ, sub)
	out := make([][]int, ncomp)
	for v, c := range comp {
		if c >= 0 {
			out[c] = append(out[c], v)
		}
	}
	return out
}

// nontrivial reports whether the component can sustain an infinite run:
// more than one node, or a self-loop within the subgraph.
func nontrivial(succ [][]int, comp []int, sub []bool) bool {
	if len(comp) > 1 {
		return true
	}
	v := comp[0]
	for _, u := range succ[v] {
		if u == v && sub[v] {
			return true
		}
	}
	return false
}

// tarjan is an iterative Tarjan SCC over a subgraph (duplicated from
// internal/explicit to keep the packages independent).
func tarjan(succ [][]int, sub []bool) (comp []int, ncomp int) {
	n := len(succ)
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range comp {
		comp[i] = -1
		index[i] = -1
	}
	var stack []int
	next := 0
	type frame struct{ v, ei int }
	var dfs []frame
	for root := 0; root < n; root++ {
		if !sub[root] || index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{root, 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			advanced := false
			for f.ei < len(succ[v]) {
				w := succ[v][f.ei]
				f.ei++
				if !sub[w] {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}
