package automata

import "testing"

// tracker is the two-state last-symbol tracker over {a,b}: state 0 =
// just read a, state 1 = just read b (also initial).
func tracker() *Streett {
	a := NewStreett("tracker", 2, abAlphabet)
	a.Init = 1
	a.AddTrans(0, "a", 0)
	a.AddTrans(0, "b", 1)
	a.AddTrans(1, "a", 0)
	a.AddTrans(1, "b", 1)
	return a
}

func TestRabinAccepts(t *testing.T) {
	// Rabin pair (U={1}, V={0}): accept iff inf avoids state 1 and
	// visits state 0, i.e. eventually only 'a'.
	a := tracker()
	a.AddPair("ev-only-a", []int{1}, []int{0})
	cases := []struct {
		word Word
		want bool
	}{
		{w("", "a"), true},
		{w("bbb", "a"), true},
		{w("", "ab"), false},
		{w("a", "b"), false},
	}
	for _, c := range cases {
		got, err := a.RabinAccepts(c.word)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Rabin accepts %s = %v, want %v", c.word.Format(abAlphabet), got, c.want)
		}
	}
}

func TestRabinAcceptsNondeterministic(t *testing.T) {
	// guess-based: state 0 guessing, state 1 committed-to-only-b; Rabin
	// pair (U={0}, V={1}) — avoid guessing forever, visit committed.
	a := NewStreett("guess", 2, abAlphabet)
	a.Init = 0
	a.AddTrans(0, "a", 0)
	a.AddTrans(0, "b", 0)
	a.AddTrans(0, "b", 1)
	a.AddTrans(1, "b", 1)
	a.AddPair("committed", []int{0}, []int{1})
	a.MakeComplete()
	got, err := a.RabinAccepts(w("aa", "b"))
	if err != nil || !got {
		t.Fatalf("should accept aab^ω: %v %v", got, err)
	}
	got, err = a.RabinAccepts(w("", "ab"))
	if err != nil || got {
		t.Fatalf("should reject (ab)^ω: %v %v", got, err)
	}
}

func TestMullerAccepts(t *testing.T) {
	// Muller table {{0,1}}: accept iff inf = {0,1} — both letters occur
	// infinitely often.
	m := NewMuller(tracker(), []int{0, 1})
	cases := []struct {
		word Word
		want bool
	}{
		{w("", "ab"), true},
		{w("bbb", "ba"), true},
		{w("", "a"), false},
		{w("ab", "b"), false},
	}
	for _, c := range cases {
		got, err := m.Accepts(c.word)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Muller accepts %s = %v, want %v", c.word.Format(abAlphabet), got, c.want)
		}
	}
}

func TestMullerRequiresDeterministic(t *testing.T) {
	a := NewStreett("nd", 1, abAlphabet)
	a.AddTrans(0, "a", 0)
	// incomplete: no b transition
	m := NewMuller(a, []int{0})
	if _, err := m.Accepts(w("", "a")); err == nil {
		t.Fatal("incomplete automaton must be rejected")
	}
}

func TestContainmentRabinSpec(t *testing.T) {
	// Spec (Rabin): eventually only 'a' — pair (U={1}, V={0}).
	spec := tracker()
	spec.AddPair("ev-only-a", []int{1}, []int{0})
	// K1: the language "eventually only a" expressed as Streett
	// (inf ⊆ {0}) — contained.
	k1 := tracker()
	k1.AddPair("fin-b", []int{0}, nil)
	res, err := CheckContainmentRabin(k1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("evA ⊆ evA(Rabin) must hold; counterexample %s", res.Word.Format(abAlphabet))
	}
	// K2: all words — not contained; word must be verified.
	k2 := allWords()
	res, err = CheckContainmentRabin(k2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("all ⊆ evA(Rabin) must fail")
	}
	accK, err := k2.Accepts(res.Word)
	if err != nil {
		t.Fatal(err)
	}
	accSpec, err := spec.RabinAccepts(res.Word)
	if err != nil {
		t.Fatal(err)
	}
	if !accK || accSpec {
		t.Fatalf("bad counterexample %s: K=%v spec=%v", res.Word.Format(abAlphabet), accK, accSpec)
	}
}

func TestContainmentBuchiAsRabin(t *testing.T) {
	// Büchi spec "infinitely many a" = Rabin pair (∅, {0}).
	spec := tracker()
	spec.AddPair("buchi-infA", nil, []int{0})
	// K: (ab)^ω-ish — the tracker with Streett pair forcing both states
	// infinitely often... simpler: K = infinitely many a as Streett.
	k := tracker()
	k.AddPair("inf-a", nil, []int{0})
	res, err := CheckContainmentRabin(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("infA ⊆ infA(Büchi) must hold; cex %s", res.Word.Format(abAlphabet))
	}
	// all words ⊄ Büchi infA: b^ω.
	res, err = CheckContainmentRabin(allWords(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("all ⊆ infA(Büchi) must fail")
	}
	accSpec, _ := spec.RabinAccepts(res.Word)
	if accSpec {
		t.Fatalf("counterexample %s accepted by spec", res.Word.Format(abAlphabet))
	}
}

func TestContainmentMullerSpec(t *testing.T) {
	// Muller spec: inf = {0,1} (both letters infinitely often).
	spec := NewMuller(tracker(), []int{0, 1})
	// K1: Streett automaton for "a infinitely often AND b infinitely
	// often": pairs (∅,{0}) and (∅,{1}) — contained.
	k1 := tracker()
	k1.AddPair("inf-a", nil, []int{0})
	k1.AddPair("inf-b", nil, []int{1})
	res, err := CheckContainmentMuller(k1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("both-inf ⊆ Muller{0,1} must hold; cex %s", res.Word.Format(abAlphabet))
	}
	// K2: all words — a^ω violates.
	res, err = CheckContainmentMuller(allWords(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("all ⊆ Muller{0,1} must fail")
	}
	accK, err := allWords().Accepts(res.Word)
	if err != nil {
		t.Fatal(err)
	}
	accSpec, err := spec.Accepts(res.Word)
	if err != nil {
		t.Fatal(err)
	}
	if !accK || accSpec {
		t.Fatalf("bad Muller counterexample %s: K=%v spec=%v", res.Word.Format(abAlphabet), accK, accSpec)
	}
}

func TestContainmentMullerMultipleSets(t *testing.T) {
	// Muller table {{0},{1}}: inf is exactly {0} or exactly {1} —
	// eventually constant words.
	spec := NewMuller(tracker(), []int{0}, []int{1})
	// K: eventually only b (Streett: inf ⊆ {1}) — contained.
	k := tracker()
	k.AddPair("fin-a", []int{1}, nil)
	res, err := CheckContainmentMuller(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("evB ⊆ Muller{{0},{1}} must hold; cex %s", res.Word.Format(abAlphabet))
	}
	// all words: (ab)^ω violates.
	res, err = CheckContainmentMuller(allWords(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("all ⊆ eventually-constant must fail")
	}
	accSpec, err := spec.Accepts(res.Word)
	if err != nil {
		t.Fatal(err)
	}
	if accSpec {
		t.Fatalf("counterexample %s accepted by Muller spec", res.Word.Format(abAlphabet))
	}
}
