package automata

import (
	"strings"
	"testing"
)

// abAlphabet is the two-letter alphabet used throughout the tests.
var abAlphabet = []string{"a", "b"}

// infinitelyManyA builds the deterministic Büchi-style Streett automaton
// accepting words with infinitely many 'a': two states tracking the last
// symbol, pair (∅, {0}) with state 0 = "just read a".
func infinitelyManyA() *Streett {
	a := NewStreett("infA", 2, abAlphabet)
	a.Init = 1
	a.AddTrans(0, "a", 0)
	a.AddTrans(0, "b", 1)
	a.AddTrans(1, "a", 0)
	a.AddTrans(1, "b", 1)
	a.AddPair("inf-a", nil, []int{0})
	return a
}

// eventuallyOnlyB accepts words that are eventually all 'b':
// pair (U = {1}, V = ∅) — inf(run) ⊆ {1} where 1 = "just read b".
func eventuallyOnlyB() *Streett {
	a := NewStreett("evB", 2, abAlphabet)
	a.Init = 1
	a.AddTrans(0, "a", 0)
	a.AddTrans(0, "b", 1)
	a.AddTrans(1, "a", 0)
	a.AddTrans(1, "b", 1)
	a.AddPair("fin-a", []int{1}, nil)
	return a
}

// allWords accepts everything.
func allWords() *Streett {
	a := NewStreett("all", 1, abAlphabet)
	a.AddTrans(0, "a", 0)
	a.AddTrans(0, "b", 0)
	a.AddPair("trivial", []int{0}, nil)
	return a
}

func w(prefix, cycle string) Word {
	conv := func(s string) []int {
		var out []int
		for _, c := range s {
			if c == 'a' {
				out = append(out, 0)
			} else {
				out = append(out, 1)
			}
		}
		return out
	}
	return Word{Prefix: conv(prefix), Cycle: conv(cycle)}
}

func TestAcceptsDeterministic(t *testing.T) {
	infA := infinitelyManyA()
	cases := []struct {
		word Word
		want bool
	}{
		{w("", "a"), true},
		{w("b", "ab"), true},
		{w("a", "b"), false},
		{w("aaab", "b"), false},
		{w("", "ba"), true},
	}
	for _, c := range cases {
		got, err := infA.Accepts(c.word)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("infA accepts %s = %v, want %v", c.word.Format(abAlphabet), got, c.want)
		}
	}

	evB := eventuallyOnlyB()
	cases2 := []struct {
		word Word
		want bool
	}{
		{w("", "b"), true},
		{w("aaaa", "b"), true},
		{w("", "ab"), false},
		{w("b", "a"), false},
	}
	for _, c := range cases2 {
		got, err := evB.Accepts(c.word)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("evB accepts %s = %v, want %v", c.word.Format(abAlphabet), got, c.want)
		}
	}
}

func TestAcceptsNondeterministic(t *testing.T) {
	// Nondeterministic automaton: guess the point after which only b
	// occurs; accepting iff eventually only b. States: 0 = guessing
	// (U? no), 1 = committed (must see only b).
	a := NewStreett("guess", 2, abAlphabet)
	a.Init = 0
	a.AddTrans(0, "a", 0)
	a.AddTrans(0, "b", 0)
	a.AddTrans(0, "b", 1) // guess: from now on only b
	a.AddTrans(1, "b", 1)
	// state 1 has no 'a' transition: incomplete on purpose; complete it
	a.AddPair("committed", []int{1}, nil)
	a.MakeComplete()
	if !a.IsComplete() {
		t.Fatal("MakeComplete failed")
	}
	cases := []struct {
		word Word
		want bool
	}{
		{w("", "b"), true},
		{w("aab", "b"), true},
		{w("", "ab"), false},
		{w("", "a"), false},
	}
	for _, c := range cases {
		got, err := a.Accepts(c.word)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("guess accepts %s = %v, want %v", c.word.Format(abAlphabet), got, c.want)
		}
	}
}

func TestAcceptsEmptyCycleErrors(t *testing.T) {
	a := allWords()
	if _, err := a.Accepts(Word{Prefix: []int{0}}); err == nil {
		t.Fatal("empty cycle must error")
	}
}

func TestDeterminismAndCompleteness(t *testing.T) {
	a := infinitelyManyA()
	if !a.IsDeterministic() || !a.IsComplete() {
		t.Fatal("infA should be det+complete")
	}
	n := NewStreett("n", 2, abAlphabet)
	n.AddTrans(0, "a", 0)
	n.AddTrans(0, "a", 1)
	if n.IsDeterministic() {
		t.Fatal("should be nondeterministic")
	}
	if n.IsComplete() {
		t.Fatal("should be incomplete")
	}
}

func TestMakeCompleteRejectsSinkRuns(t *testing.T) {
	// automaton accepting (ab)^ω exactly, incomplete; after completion
	// any deviating word must be rejected.
	a := NewStreett("abOmega", 2, abAlphabet)
	a.Init = 0
	a.AddTrans(0, "a", 1)
	a.AddTrans(1, "b", 0)
	a.AddPair("live", []int{0, 1}, nil)
	a.MakeComplete()
	ok, err := a.Accepts(w("", "ab"))
	if err != nil || !ok {
		t.Fatalf("should accept (ab)^ω: %v %v", ok, err)
	}
	ok, err = a.Accepts(w("", "a"))
	if err != nil || ok {
		t.Fatalf("should reject a^ω: %v %v", ok, err)
	}
}

func TestContainmentHolds(t *testing.T) {
	// L(evB) ⊆ L(all)
	res, err := CheckContainment(eventuallyOnlyB(), allWords())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatal("evB ⊆ all must hold")
	}
}

func TestContainmentFails(t *testing.T) {
	// L(all) ⊄ L(infA): b^ω is a counterexample.
	res, err := CheckContainment(allWords(), infinitelyManyA())
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("all ⊆ infA must fail")
	}
	// the counterexample word must be accepted by K and rejected by K'.
	k, kp := allWords(), infinitelyManyA()
	accK, err := k.Accepts(res.Word)
	if err != nil {
		t.Fatal(err)
	}
	accKp, err := kp.Accepts(res.Word)
	if err != nil {
		t.Fatal(err)
	}
	if !accK || accKp {
		t.Fatalf("counterexample word %s: K=%v K'=%v", res.Word.Format(abAlphabet), accK, accKp)
	}
}

func TestContainmentDisjointLanguages(t *testing.T) {
	// infA vs evB: disjoint-ish; infA ⊄ evB (a^ω in infA, not evB).
	res, err := CheckContainment(infinitelyManyA(), eventuallyOnlyB())
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("infA ⊆ evB must fail")
	}
	accK, _ := infinitelyManyA().Accepts(res.Word)
	accKp, _ := eventuallyOnlyB().Accepts(res.Word)
	if !accK || accKp {
		t.Fatalf("bad counterexample %s", res.Word.Format(abAlphabet))
	}
	// and the converse holds? evB ⊆ infA? no: b^ω ∈ evB but ∉ infA.
	res2, err := CheckContainment(eventuallyOnlyB(), infinitelyManyA())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Contained {
		t.Fatal("evB ⊆ infA must fail (b^ω)")
	}
}

func TestContainmentSelf(t *testing.T) {
	for _, mk := range []func() *Streett{infinitelyManyA, eventuallyOnlyB, allWords} {
		a, b := mk(), mk()
		res, err := CheckContainment(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Contained {
			t.Fatalf("L(%s) ⊆ L(%s) must hold", a.Name, b.Name)
		}
	}
}

func TestContainmentNondeterministicImpl(t *testing.T) {
	// Nondeterministic K (guess eventually-only-b) against deterministic
	// spec evB: languages equal, containment holds.
	k := NewStreett("guess", 2, abAlphabet)
	k.Init = 0
	k.AddTrans(0, "a", 0)
	k.AddTrans(0, "b", 0)
	k.AddTrans(0, "b", 1)
	k.AddTrans(1, "b", 1)
	k.AddPair("committed", []int{1}, nil)
	k.MakeComplete()
	res, err := CheckContainment(k, eventuallyOnlyB())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Fatalf("guess ⊆ evB must hold, counterexample %s", res.Word.Format(abAlphabet))
	}
	// against infA it must fail (b^ω).
	res2, err := CheckContainment(k, infinitelyManyA())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Contained {
		t.Fatal("guess ⊆ infA must fail")
	}
}

func TestContainmentRequiresDeterministicSpec(t *testing.T) {
	k := allWords()
	nd := NewStreett("nd", 2, abAlphabet)
	nd.AddTrans(0, "a", 0)
	nd.AddTrans(0, "a", 1)
	nd.AddTrans(0, "b", 0)
	nd.AddTrans(1, "a", 1)
	nd.AddTrans(1, "b", 1)
	nd.AddPair("p", []int{0, 1}, nil)
	if _, err := CheckContainment(k, nd); err == nil {
		t.Fatal("nondeterministic spec must be rejected")
	}
}

func TestFromBuchi(t *testing.T) {
	a := FromBuchi("buchi", 2, abAlphabet, 1, []int{0})
	a.AddTrans(0, "a", 0)
	a.AddTrans(0, "b", 1)
	a.AddTrans(1, "a", 0)
	a.AddTrans(1, "b", 1)
	ok, err := a.Accepts(w("", "a"))
	if err != nil || !ok {
		t.Fatal("Büchi conversion broken (accept)")
	}
	ok, err = a.Accepts(w("a", "b"))
	if err != nil || ok {
		t.Fatal("Büchi conversion broken (reject)")
	}
}

func TestWordFormat(t *testing.T) {
	word := w("ab", "ba")
	got := word.Format(abAlphabet)
	if !strings.Contains(got, "a b ( b a )") {
		t.Fatalf("Format = %q", got)
	}
}

func TestProductSymbols(t *testing.T) {
	p, err := NewProduct(allWords(), infinitelyManyA())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.States) == 0 {
		t.Fatal("empty product")
	}
	// every recorded edge must have at least one symbol
	for key, syms := range p.Syms {
		if len(syms) == 0 {
			t.Fatalf("edge %v without symbols", key)
		}
	}
}
