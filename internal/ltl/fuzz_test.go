package ltl

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// modelLTLSpecs collects the LTLSPEC lines of the shipped models as
// fuzz seeds, mirroring the SPEC loader the CTL fuzzer uses.
func modelLTLSpecs() []string {
	var out []string
	matches, _ := filepath.Glob(filepath.Join("..", "..", "models", "*.smv"))
	for _, path := range matches {
		file, err := os.Open(path)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(file)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if rest, ok := strings.CutPrefix(line, "LTLSPEC"); ok {
				out = append(out, strings.TrimSpace(rest))
			}
		}
		file.Close()
	}
	return out
}

// isNNF reports whether f is in the normal form NNF promises: only
// {true, false, literal, ∧, ∨, X, U, R}, with ! applied to atoms only.
func isNNF(f *Formula) bool {
	if f == nil {
		return true
	}
	switch f.Kind {
	case KTrue, KFalse, KAtom, KEq, KNeq:
		return true
	case KNot:
		switch f.L.Kind {
		case KAtom, KEq, KNeq:
			return true
		}
		return false
	case KAnd, KOr, KX, KU, KR:
		return isNNF(f.L) && isNNF(f.R)
	}
	return false
}

// FuzzLTLParse checks parser/printer round-tripping: any formula that
// parses must print to a string that reparses to a structurally equal
// formula with a stable printed form, and its NNF must be well-formed
// and idempotent.
func FuzzLTLParse(f *testing.F) {
	for _, s := range []string{
		"p", "G p", "F p", "X p", "p U q", "p R q", "p W q",
		"G (send -> F ack)", "p U q U r", "G p U q", "!G p",
		"x = a U y != b", "p <-> q -> r", "true U false",
		"(G) U q", "G F p & F G q", "!(p W q)",
	} {
		f.Add(s)
	}
	for _, s := range modelLTLSpecs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fm, err := Parse(src)
		if err != nil {
			t.Skip()
		}
		printed := fm.String()
		g, err := Parse(printed)
		if err != nil {
			t.Fatalf("String() of %q does not reparse: %q: %v", src, printed, err)
		}
		if !Equal(fm, g) {
			t.Fatalf("round trip changed %q: %q -> %q", src, printed, g)
		}
		if again := g.String(); again != printed {
			t.Fatalf("printing is not stable: %q vs %q", printed, again)
		}
		if Size(fm) > 200 {
			return
		}
		n := NNF(fm)
		if !isNNF(n) {
			t.Fatalf("NNF(%q) = %q is not in normal form", src, n)
		}
		if !Equal(n, NNF(n)) {
			t.Fatalf("NNF is not idempotent on %q", src)
		}
		// The tableau must build without panicking and every elementary
		// subformula must be temporal.
		tab := Translate(fm)
		for _, e := range tab.Elem {
			if e.Kind != KX && e.Kind != KU && e.Kind != KR {
				t.Fatalf("non-temporal elementary subformula %q", e)
			}
		}
	})
}
