package ltl

import (
	"fmt"
	"unicode"
)

// token kinds for the LTL formula lexer.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tLParen
	tRParen
	tNot
	tAnd
	tOr
	tImp
	tIff
	tEq
	tNeq
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a formula string. The temporal operators G/F/X/U/R/W
// lex as plain identifiers; the parser gives them meaning by position.
type lexer struct {
	src  []rune
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src)}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '(':
			l.pos++
			l.emit(tLParen, "(", start)
		case c == ')':
			l.pos++
			l.emit(tRParen, ")", start)
		case c == '&':
			l.pos++
			l.emit(tAnd, "&", start)
		case c == '|':
			l.pos++
			l.emit(tOr, "|", start)
		case c == '!':
			l.pos++
			if l.peek() == '=' {
				l.pos++
				l.emit(tNeq, "!=", start)
			} else {
				l.emit(tNot, "!", start)
			}
		case c == '=':
			l.pos++
			l.emit(tEq, "=", start)
		case c == '-':
			l.pos++
			if l.peek() != '>' {
				return nil, fmt.Errorf("ltl: position %d: expected '>' after '-'", start)
			}
			l.pos++
			l.emit(tImp, "->", start)
		case c == '<':
			l.pos++
			if l.peek() != '-' {
				return nil, fmt.Errorf("ltl: position %d: expected '<->'", start)
			}
			l.pos++
			if l.peek() != '>' {
				return nil, fmt.Errorf("ltl: position %d: expected '<->'", start)
			}
			l.pos++
			l.emit(tIff, "<->", start)
		case unicode.IsDigit(c):
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tNumber, string(l.src[start:l.pos]), start)
		case unicode.IsLetter(c) || c == '_':
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) ||
				unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(tIdent, string(l.src[start:l.pos]), start)
		default:
			return nil, fmt.Errorf("ltl: position %d: unexpected character %q", start, c)
		}
	}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}
