package ltl

import "fmt"

// This file implements the symbolic tableau construction for LTL
// (Clarke–Grumberg–Hamaguchi style). To check M ⊨ φ we build the
// tableau of ψ = ¬φ in negation normal form over the primitives
// {literal, ∧, ∨, X, U, R}:
//
//   - every X/U/R subformula of ψ is "elementary"; each gets one fresh
//     boolean state variable v_i whose value in a state encodes the
//     promise "X(elem_i) holds from the next state on" — for an X g
//     node the variable stands for the node itself;
//
//   - sat(h) maps each subformula h to a present-state condition over
//     model atoms and the v_i:
//       sat(X g)    = v_i
//       sat(g U h)  = sat(h) ∨ (sat(g) ∧ v_i)
//       sat(g R h)  = sat(h) ∧ (sat(g) ∨ v_i)
//
//   - the transition constraint per elementary i ties the promise to
//     the next state:  v_i  ↔  next(expansion_i), where expansion_i is
//     sat(g) for X g and sat(node) for U/R nodes (the self-reference
//     through v_i makes the system triangular, not circular);
//
//   - each U node contributes the generalized-Büchi fairness constraint
//     sat(h) ∨ ¬sat(g U h): on a fair path the until obligation cannot
//     be deferred forever.
//
// A path of M can be decorated with v_i values satisfying the tableau
// and all fairness constraints iff it satisfies ψ; so M has a ψ-path
// iff Init ∧ sat(ψ) intersects the fair-EG states of the product.

// nnf rewrites f (negated if neg) into negation normal form over the
// primitives {true, false, literal, ∧, ∨, X, U, R}. The derived
// operators are rewritten first:
//
//	G g ≡ false R g      F g ≡ true U g      g W h ≡ h R (g ∨ h)
//	g -> h ≡ ¬g ∨ h      g <-> h ≡ (g ∧ h) ∨ (¬g ∧ ¬h)
//
// and negation is pushed through the dualities ¬(g U h) = ¬g R ¬h,
// ¬(g R h) = ¬g U ¬h, ¬X g = X ¬g.
func nnf(f *Formula, neg bool) *Formula {
	switch f.Kind {
	case KTrue:
		if neg {
			return False()
		}
		return True()
	case KFalse:
		if neg {
			return True()
		}
		return False()
	case KAtom:
		if neg {
			return Not(f)
		}
		return f
	case KEq:
		if neg {
			return Neq(f.Name, f.Value)
		}
		return f
	case KNeq:
		if neg {
			return Eq(f.Name, f.Value)
		}
		return f
	case KNot:
		return nnf(f.L, !neg)
	case KAnd:
		if neg {
			return Or(nnf(f.L, true), nnf(f.R, true))
		}
		return And(nnf(f.L, false), nnf(f.R, false))
	case KOr:
		if neg {
			return And(nnf(f.L, true), nnf(f.R, true))
		}
		return Or(nnf(f.L, false), nnf(f.R, false))
	case KImp:
		return nnf(Or(Not(f.L), f.R), neg)
	case KIff:
		// (L ∧ R) ∨ (¬L ∧ ¬R); negation handled by the Or/And cases.
		return nnf(Or(And(f.L, f.R), And(Not(f.L), Not(f.R))), neg)
	case KX:
		return X(nnf(f.L, neg))
	case KU:
		if neg {
			return R(nnf(f.L, true), nnf(f.R, true))
		}
		return U(nnf(f.L, false), nnf(f.R, false))
	case KR:
		if neg {
			return U(nnf(f.L, true), nnf(f.R, true))
		}
		return R(nnf(f.L, false), nnf(f.R, false))
	case KW:
		// g W h ≡ h R (g ∨ h): the release form holds g∨h up to and
		// including the first h, or forever if h never occurs.
		return nnf(R(f.R, Or(f.L, f.R)), neg)
	case KG:
		return nnf(R(False(), f.L), neg)
	case KF:
		return nnf(U(True(), f.L), neg)
	default:
		panic(fmt.Sprintf("ltl: nnf: unexpected kind %v", f.Kind))
	}
}

// NNF returns f in negation normal form over {literal, ∧, ∨, X, U, R}.
func NNF(f *Formula) *Formula { return nnf(f, false) }

// Tableau is the symbolic generalized Büchi automaton for the negation
// of a specification. Formula is NNF(¬spec); Elem lists its elementary
// (X/U/R) subformulas in first-occurrence order, deduplicated
// structurally — Elem[i] corresponds to the i-th fresh product state
// variable.
type Tableau struct {
	Spec    *Formula // the original specification φ
	Formula *Formula // ψ = NNF(¬φ), the path property to search for
	Elem    []*Formula
	index   map[string]int
}

// Translate negates spec, normalizes it, and collects the elementary
// subformulas. The resulting Tableau drives both the symbolic product
// (Attach) and the explicit-state oracle via the generic Sat/
// ElemExpansion/FairTerms evaluators.
func Translate(spec *Formula) *Tableau {
	t := &Tableau{
		Spec:    spec,
		Formula: nnf(spec, true),
		index:   map[string]int{},
	}
	t.collect(t.Formula)
	return t
}

func (t *Tableau) collect(f *Formula) {
	if f == nil {
		return
	}
	switch f.Kind {
	case KX, KU, KR:
		key := f.String()
		if _, ok := t.index[key]; !ok {
			t.index[key] = len(t.Elem)
			t.Elem = append(t.Elem, f)
		}
	}
	t.collect(f.L)
	t.collect(f.R)
}

// ElemIndex returns the product-variable index of elementary formula f,
// which must be an X/U/R node collected by Translate.
func (t *Tableau) ElemIndex(f *Formula) int {
	i, ok := t.index[f.String()]
	if !ok {
		panic(fmt.Sprintf("ltl: %s is not an elementary subformula", f))
	}
	return i
}

// NumFair returns the number of generalized-Büchi fairness constraints
// (one per distinct U node).
func (t *Tableau) NumFair() int {
	n := 0
	for _, e := range t.Elem {
		if e.Kind == KU {
			n++
		}
	}
	return n
}

// Algebra abstracts the value domain the tableau is evaluated in: BDDs
// for the symbolic product, booleans for the explicit-state oracle.
// Sharing one evaluator between the two is what makes the differential
// and replay tests meaningful — the oracle cannot drift from the
// symbolic construction.
type Algebra[T any] struct {
	True  T
	False T
	Not   func(T) T
	And   func(T, T) T
	Or    func(T, T) T
	// Atom evaluates a literal: KAtom, KEq, KNeq, or KNot of one of
	// those (the formula is in NNF, so negation only wraps literals).
	Atom func(*Formula) (T, error)
	// Elem reads the product state variable for elementary index i in
	// the current state.
	Elem func(i int) T
}

// Sat evaluates the present-state characteristic condition sat(f) of a
// subformula of t.Formula.
func Sat[T any](t *Tableau, f *Formula, alg Algebra[T]) (T, error) {
	var zero T
	switch f.Kind {
	case KTrue:
		return alg.True, nil
	case KFalse:
		return alg.False, nil
	case KAtom, KEq, KNeq:
		return alg.Atom(f)
	case KNot:
		// NNF: the operand is a literal.
		v, err := alg.Atom(f.L)
		if err != nil {
			return zero, err
		}
		return alg.Not(v), nil
	case KAnd, KOr:
		l, err := Sat(t, f.L, alg)
		if err != nil {
			return zero, err
		}
		r, err := Sat(t, f.R, alg)
		if err != nil {
			return zero, err
		}
		if f.Kind == KAnd {
			return alg.And(l, r), nil
		}
		return alg.Or(l, r), nil
	case KX:
		return alg.Elem(t.ElemIndex(f)), nil
	case KU:
		// sat(h) ∨ (sat(g) ∧ v)
		h, err := Sat(t, f.R, alg)
		if err != nil {
			return zero, err
		}
		g, err := Sat(t, f.L, alg)
		if err != nil {
			return zero, err
		}
		return alg.Or(h, alg.And(g, alg.Elem(t.ElemIndex(f)))), nil
	case KR:
		// sat(h) ∧ (sat(g) ∨ v)
		h, err := Sat(t, f.R, alg)
		if err != nil {
			return zero, err
		}
		g, err := Sat(t, f.L, alg)
		if err != nil {
			return zero, err
		}
		return alg.And(h, alg.Or(g, alg.Elem(t.ElemIndex(f)))), nil
	default:
		return zero, fmt.Errorf("ltl: sat: unexpected kind %v in NNF formula", f.Kind)
	}
}

// ElemExpansion evaluates, in the *successor* state, the condition the
// promise variable v_i must equal: sat(g) for X g, and sat(node) for
// U/R nodes (whose expansion refers to their own v_i, read in the
// successor).
func ElemExpansion[T any](t *Tableau, i int, alg Algebra[T]) (T, error) {
	e := t.Elem[i]
	if e.Kind == KX {
		return Sat(t, e.L, alg)
	}
	return Sat(t, e, alg)
}

// FairTerms evaluates the generalized-Büchi fairness constraints, one
// per U node: sat(h) ∨ ¬sat(g U h). Results are paired with the
// originating formula for naming/diagnostics.
func FairTerms[T any](t *Tableau, alg Algebra[T]) ([]T, []*Formula, error) {
	var terms []T
	var nodes []*Formula
	for _, e := range t.Elem {
		if e.Kind != KU {
			continue
		}
		h, err := Sat(t, e.R, alg)
		if err != nil {
			return nil, nil, err
		}
		whole, err := Sat(t, e, alg)
		if err != nil {
			return nil, nil, err
		}
		terms = append(terms, alg.Or(h, alg.Not(whole)))
		nodes = append(nodes, e)
	}
	return terms, nodes, nil
}
