package ltl

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
)

// Attached is the symbolic form of a tableau wired into a particular
// structure: the acceptance set sat(ψ) over current-state variables,
// one transition-relation cluster per elementary subformula, and the
// generalized-Büchi fairness sets. The caller owns protection and
// reorder registration of the returned Refs.
type Attached struct {
	Accept    bdd.Ref   // sat(ψ): product states whose runs may satisfy ψ
	Clusters  []bdd.Ref // v_i ↔ next(expansion_i), one per Elem
	Fair      []bdd.Ref // sat(h) ∨ ¬sat(gUh), one per U node
	FairNames []string
}

// BDDAlgebra returns the tableau evaluation algebra over BDDs for a
// structure: atoms resolve through atom (nil defaults to AtomResolver),
// and elementary index i reads the current-state copy of state variable
// elemVars[i].
func BDDAlgebra(s *kripke.Symbolic, elemVars []int, atom func(*Formula) (bdd.Ref, error)) Algebra[bdd.Ref] {
	if atom == nil {
		atom = AtomResolver(s)
	}
	m := s.M
	return Algebra[bdd.Ref]{
		True:  bdd.True,
		False: bdd.False,
		Not:   m.Not,
		And:   m.And,
		Or:    m.Or,
		Atom:  atom,
		Elem:  func(i int) bdd.Ref { return m.Var(s.Vars[elemVars[i]].Cur) },
	}
}

// AtomResolver maps LTL literals to state sets through the structure's
// registered atomic propositions (the same resolution CTL specs use, so
// both logics read identical labelings).
func AtomResolver(s *kripke.Symbolic) func(*Formula) (bdd.Ref, error) {
	return func(f *Formula) (bdd.Ref, error) {
		switch f.Kind {
		case KAtom:
			return s.AtomSet(ctl.Atom(f.Name))
		case KEq:
			return s.AtomSet(ctl.Eq(f.Name, f.Value))
		case KNeq:
			return s.AtomSet(ctl.Neq(f.Name, f.Value))
		}
		return bdd.False, fmt.Errorf("ltl: non-literal %s in atom position", f)
	}
}

// Attach builds the symbolic tableau of t over the structure s, whose
// state variables elemVars[i] have been reserved for the elementary
// subformulas. Each cluster constrains one promise variable against the
// next-state expansion:
//
//	v_i ↔ (expansion_i)[v := v′]
//
// and is intended to join the structure's conjunctive transition
// partition, so the product flows through the same early-quantified
// (and, with disjuncts, Shannon-expanded) image paths as the model
// relation itself. The product is deliberately not total: states whose
// promises are unsatisfiable dead-end, and the fair-EG fixpoint prunes
// them because they have no infinite continuation.
func Attach(t *Tableau, s *kripke.Symbolic, elemVars []int, atom func(*Formula) (bdd.Ref, error)) (*Attached, error) {
	if len(elemVars) != len(t.Elem) {
		return nil, fmt.Errorf("ltl: %d tableau variables reserved for %d elementary subformulas",
			len(elemVars), len(t.Elem))
	}
	m := s.M
	alg := BDDAlgebra(s, elemVars, atom)

	a := &Attached{}
	accept, err := Sat(t, t.Formula, alg)
	if err != nil {
		return nil, err
	}
	a.Accept = accept

	for i := range t.Elem {
		exp, err := ElemExpansion(t, i, alg)
		if err != nil {
			return nil, err
		}
		v := m.Var(s.Vars[elemVars[i]].Cur)
		a.Clusters = append(a.Clusters, m.Eq(v, s.ToNext(exp)))
	}

	terms, nodes, err := FairTerms(t, alg)
	if err != nil {
		return nil, err
	}
	for i, term := range terms {
		a.Fair = append(a.Fair, term)
		a.FairNames = append(a.FairNames, fmt.Sprintf("LTL#%d(%s)", i, nodes[i]))
	}
	return a, nil
}

// ExplicitProduct is the symbolic fair product of an explicit structure
// with the tableau of a specification's negation — the harness the fuzz
// and cross-validation tests check the SMV-level product against.
type ExplicitProduct struct {
	S        *kripke.Symbolic
	T        *Tableau
	Accept   bdd.Ref
	ElemVars []int // indices into S.Vars of the tableau variables
	ModelLen int   // number of index bits; State[:ModelLen] is the model part
}

// ProductFromExplicit encodes e symbolically (index bits b0..), appends
// one tableau variable _ltl{i} per elementary subformula of ¬spec, and
// installs the tableau clusters and fairness constraints alongside the
// model's.
func ProductFromExplicit(e *kripke.Explicit, spec *Formula) (*ExplicitProduct, error) {
	t := Translate(spec)
	extra := make([]string, len(t.Elem))
	for i := range extra {
		extra[i] = fmt.Sprintf("_ltl%d", i)
	}
	b := kripke.FromExplicitBuilder(e, extra)
	nbits := kripke.IndexBits(e.N)
	elemVars := make([]int, len(t.Elem))
	for i := range elemVars {
		elemVars[i] = nbits + i
	}
	a, err := Attach(t, b.S, elemVars, nil)
	if err != nil {
		return nil, err
	}
	for _, c := range a.Clusters {
		b.ConstrainTrans(c)
	}
	for i, set := range a.Fair {
		b.AddFairness(a.FairNames[i], set)
	}
	s := b.Finish()
	return &ExplicitProduct{
		S:        s,
		T:        t,
		Accept:   s.M.Protect(a.Accept),
		ElemVars: elemVars,
		ModelLen: nbits,
	}, nil
}
