package ltl

import "fmt"

// Parse parses the concrete LTL syntax:
//
//	f ::= f '<->' f            (lowest precedence)
//	    | f '->' f             (right associative)
//	    | f '|' f
//	    | f '&' f
//	    | f 'U' f | f 'R' f | f 'W' f   (right associative)
//	    | '!' f | 'X' f | 'G' f | 'F' f
//	    | ident | ident '=' const | ident '!=' const
//	    | 'true' | 'false' | '(' f ')'
//
// The binary temporal operators bind tighter than '&', so
// "p U q & r" parses as "(p U q) & r", and their operands are unary
// formulas: "G p U q" is "(G p) U q". Identifiers may contain letters,
// digits, '_' and '.'. The operator letters G/F/X/U/R/W are reserved
// in operator position but "U", "R" etc. standing alone still parse as
// atoms.
func Parse(src string) (*Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.iff()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("ltl: unexpected %s after formula", p.cur())
	}
	return f, nil
}

// MustParse parses src and panics on error; intended for tests and
// compile-time-constant specifications.
func MustParse(src string) *Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("ltl: expected %s, found %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) iff() (*Formula, error) {
	l, err := p.imp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tIff {
		p.next()
		r, err := p.imp()
		if err != nil {
			return nil, err
		}
		l = Iff(l, r)
	}
	return l, nil
}

func (p *parser) imp() (*Formula, error) {
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tImp {
		p.next()
		r, err := p.imp() // right associative
		if err != nil {
			return nil, err
		}
		return Imp(l, r), nil
	}
	return l, nil
}

func (p *parser) or() (*Formula, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOr {
		p.next()
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *parser) and() (*Formula, error) {
	l, err := p.until()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tAnd {
		p.next()
		r, err := p.until()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

// until parses the right-associative binary temporal level: U, R, W.
func (p *parser) until() (*Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tIdent {
		switch p.cur().text {
		case "U", "R", "W":
			op := p.next().text
			r, err := p.until() // right associative
			if err != nil {
				return nil, err
			}
			switch op {
			case "U":
				return U(l, r), nil
			case "R":
				return R(l, r), nil
			default:
				return W(l, r), nil
			}
		}
	}
	return l, nil
}

func (p *parser) unary() (*Formula, error) {
	t := p.cur()
	switch t.kind {
	case tNot:
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case tLParen:
		p.next()
		f, err := p.iff()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case tIdent:
		return p.identLed()
	}
	return nil, fmt.Errorf("ltl: unexpected %s", t)
}

// identLed handles everything that starts with an identifier: the
// prefix temporal keywords, constants, and (in)equality atoms.
func (p *parser) identLed() (*Formula, error) {
	t := p.next()
	switch t.text {
	case "true", "TRUE":
		return True(), nil
	case "false", "FALSE":
		return False(), nil
	case "X", "G", "F":
		// Prefix operator when followed by the start of a formula;
		// otherwise fall through and treat the letter as a plain atom
		// (e.g. a bare "F" or "F = 1" in a model that names a variable F).
		if startsFormula(p.cur()) {
			f, err := p.unary()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "X":
				return X(f), nil
			case "G":
				return G(f), nil
			default:
				return F(f), nil
			}
		}
	}
	// plain atom, possibly followed by =/!= constant
	switch p.cur().kind {
	case tEq:
		p.next()
		v, err := p.constOperand()
		if err != nil {
			return nil, err
		}
		return Eq(t.text, v), nil
	case tNeq:
		p.next()
		v, err := p.constOperand()
		if err != nil {
			return nil, err
		}
		return Neq(t.text, v), nil
	}
	return Atom(t.text), nil
}

// startsFormula reports whether tok can begin a unary formula.
func startsFormula(tok token) bool {
	switch tok.kind {
	case tNot, tLParen, tIdent:
		return true
	}
	return false
}

// constOperand parses the right-hand side of =/!=.
func (p *parser) constOperand() (string, error) {
	t := p.cur()
	if t.kind == tIdent || t.kind == tNumber {
		p.next()
		return t.text, nil
	}
	return "", fmt.Errorf("ltl: expected constant after comparison, found %s", t)
}
