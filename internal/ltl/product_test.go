package ltl_test

import (
	"bufio"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/explicit"
	"repro/internal/kripke"
	"repro/internal/ltl"
	"repro/internal/mc"
)

// shippedLTLSpecShapes loads the LTLSPEC lines of the shipped models
// and rewrites every literal to the p/q alphabet the differential
// labels, preserving the temporal shape (the interesting part of a
// seed) while making the atoms resolvable.
func shippedLTLSpecShapes() []string {
	var out []string
	matches, _ := filepath.Glob(filepath.Join("..", "..", "models", "*.smv"))
	for _, path := range matches {
		file, err := os.Open(path)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(file)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			rest, ok := strings.CutPrefix(line, "LTLSPEC")
			if !ok {
				continue
			}
			f, err := ltl.Parse(strings.TrimSpace(rest))
			if err != nil {
				continue
			}
			n := 0
			var rename func(g *ltl.Formula)
			rename = func(g *ltl.Formula) {
				if g == nil {
					return
				}
				switch g.Kind {
				case ltl.KAtom, ltl.KEq, ltl.KNeq:
					g.Kind = ltl.KAtom
					g.Value = ""
					g.Name = "p"
					if n%2 == 1 {
						g.Name = "q"
					}
					n++
				}
				rename(g.L)
				rename(g.R)
			}
			rename(f)
			out = append(out, f.String())
		}
		file.Close()
	}
	return out
}

// checkSymbolic decides e ⊨ spec through the symbolic tableau product
// and, on violation, extracts a fair lasso through the ring-walk
// generator, validates it against the product, and replays its model
// projection against LTL semantics. It returns the verdict.
func checkSymbolic(t *testing.T, e *kripke.Explicit, spec *ltl.Formula) bool {
	t.Helper()
	prod, err := ltl.ProductFromExplicit(e, spec)
	if err != nil {
		t.Fatalf("%s: product: %v", spec, err)
	}
	c := mc.New(prod.S)
	defer c.Close()
	empty, start := c.FairEmptiness(prod.Accept)
	if empty {
		return true
	}
	gen := core.NewGenerator(c)
	tr, err := gen.WitnessEG(bdd.True, start)
	if err != nil {
		t.Fatalf("%s: fair lasso extraction: %v", spec, err)
	}
	if !tr.IsLasso() {
		t.Fatalf("%s: counterexample is not a lasso", spec)
	}
	if err := core.ValidatePath(prod.S, tr); err != nil {
		t.Fatalf("%s: invalid product trace: %v", spec, err)
	}
	if len(prod.S.Fair) > 0 {
		if err := core.ValidateFairLasso(prod.S, tr); err != nil {
			t.Fatalf("%s: lasso violates product fairness: %v", spec, err)
		}
	}
	// Replay the model projection of the lasso against LTL semantics:
	// the induced path must falsify the specification.
	holds, err := explicit.EvalLasso(spec, len(tr.States), tr.CycleStart,
		func(pos int, lit *ltl.Formula) (bool, error) {
			u := kripke.StateIndex(tr.States[pos][:prod.ModelLen])
			return explicit.LabelAtom(e, u, lit)
		})
	if err != nil {
		t.Fatalf("%s: replay: %v", spec, err)
	}
	if holds {
		t.Fatalf("%s: symbolic counterexample path satisfies the spec", spec)
	}
	return false
}

func crossCheck(t *testing.T, e *kripke.Explicit, specs []string) {
	t.Helper()
	for _, src := range specs {
		spec := ltl.MustParse(src)
		expHolds, expCex, err := explicit.CheckLTL(e, spec)
		if err != nil {
			t.Fatalf("%s: explicit: %v", src, err)
		}
		symHolds := checkSymbolic(t, e, spec)
		if expHolds != symHolds {
			t.Errorf("%s: explicit says %v, symbolic says %v", src, expHolds, symHolds)
		}
		if !expHolds && expCex != nil {
			// The explicit counterexample must itself falsify the spec.
			holds, err := explicit.EvalLasso(spec, len(expCex.States), expCex.CycleStart,
				func(pos int, lit *ltl.Formula) (bool, error) {
					return explicit.LabelAtom(e, expCex.States[pos], lit)
				})
			if err != nil {
				t.Fatalf("%s: explicit replay: %v", src, err)
			}
			if holds {
				t.Errorf("%s: explicit counterexample satisfies the spec", src)
			}
		}
	}
}

var crossSpecs = []string{
	"G p", "F p", "G q", "F q", "X p", "X X q",
	"G F p", "F G p", "G F q", "F G q",
	"p U q", "q U p", "p R q", "p W q",
	"G (p -> F q)", "G (q -> F p)", "G (p -> X q)",
	"F (p & q)", "G (p | q)", "p -> G q", "!G p", "!(p U q)",
	"G (p -> p U q)", "F p & F q", "G p | G q",
}

func TestProductVsExplicitDeterministic(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(1, 1)
	e.Label(0, "p")
	e.Label(1, "q")
	e.AddInit(0)
	crossCheck(t, e, crossSpecs)
}

func TestProductVsExplicitRandom(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		nfair := int(seed) % 3
		e := kripke.RandomExplicit(r, 3+r.Intn(6), 1.5, []string{"p", "q"}, nfair, 0.4)
		crossCheck(t, e, crossSpecs)
	}
}

// hasComparison reports whether f contains =/!= literals; the fuzz
// differential skips them because the explicit label conventions only
// align with the symbolic atom resolution for plain boolean atoms.
func hasComparison(f *ltl.Formula) bool {
	if f == nil {
		return false
	}
	if f.Kind == ltl.KEq || f.Kind == ltl.KNeq {
		return true
	}
	return hasComparison(f.L) || hasComparison(f.R)
}

func onlyKnownAtoms(f *ltl.Formula, known map[string]bool) bool {
	for _, a := range ltl.Atoms(f) {
		if !known[a] {
			return false
		}
	}
	return true
}

// FuzzLTLTranslate drives the full differential: a random small model
// and a fuzzed specification are checked by the explicit product oracle
// and by the symbolic tableau product; verdicts must agree and every
// symbolic counterexample lasso must replay to false.
func FuzzLTLTranslate(f *testing.F) {
	for _, s := range crossSpecs {
		f.Add(int64(1), uint8(5), s)
	}
	f.Add(int64(7), uint8(4), "G (p -> F q)")
	f.Add(int64(9), uint8(6), "p U (q U p)")
	// The shipped models' LTLSPEC lines ride along as shape seeds. Their
	// atoms are renamed p/q below so the differential body (which only
	// labels p and q) doesn't immediately skip them.
	for i, s := range shippedLTLSpecShapes() {
		f.Add(int64(i), uint8(i), s)
	}
	known := map[string]bool{"p": true, "q": true}
	f.Fuzz(func(t *testing.T, seed int64, size uint8, src string) {
		spec, err := ltl.Parse(src)
		if err != nil {
			t.Skip()
		}
		if hasComparison(spec) || !onlyKnownAtoms(spec, known) || ltl.Size(spec) > 24 {
			t.Skip()
		}
		tab := ltl.Translate(spec)
		if len(tab.Elem) > 5 {
			t.Skip() // keep the explicit product tractable
		}
		n := 2 + int(size)%7
		r := rand.New(rand.NewSource(seed))
		e := kripke.RandomExplicit(r, n, 1.5, []string{"p", "q"}, int(seed)%3, 0.4)

		expHolds, _, err := explicit.CheckLTL(e, spec)
		if err != nil {
			t.Skip()
		}
		symHolds := checkSymbolic(t, e, spec)
		if expHolds != symHolds {
			t.Fatalf("verdict mismatch on %q (seed %d, n %d): explicit %v, symbolic %v",
				src, seed, n, expHolds, symHolds)
		}
	})
}
