// Package ltl defines the abstract syntax of linear temporal logic
// (G/F/X/U/R/W over propositional atoms), a parser for it, and the
// tableau translation of a formula into a generalized Büchi automaton
// represented symbolically: one fresh state variable per elementary
// temporal subformula, a transition constraint per variable, and a
// fairness constraint per until-obligation. Checking M ⊨ φ then reduces
// to emptiness of the fair product M × A_¬φ, which the paper's fair-EG
// machinery (Section 5) decides and whose counterexamples the ring-walk
// generator (Section 6) extracts as fair lassos.
package ltl

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates Formula nodes.
type Kind int

// Formula node kinds: the propositional layer mirrors package ctl; the
// temporal layer is X (next), U (until), R (release), W (weak until)
// and the abbreviations G (globally) and F (finally).
const (
	KTrue Kind = iota
	KFalse
	KAtom // boolean atomic proposition, by name
	KEq   // Name = Value over a finite-domain variable
	KNeq  // Name != Value
	KNot
	KAnd
	KOr
	KImp
	KIff

	KX
	KU // L U R
	KR // L R R: R holds up to and including the first L∧R point, or forever
	KW // L W R: L U R, or L forever
	KG
	KF
)

func (k Kind) String() string {
	switch k {
	case KTrue:
		return "true"
	case KFalse:
		return "false"
	case KAtom:
		return "atom"
	case KEq:
		return "="
	case KNeq:
		return "!="
	case KNot:
		return "!"
	case KAnd:
		return "&"
	case KOr:
		return "|"
	case KImp:
		return "->"
	case KIff:
		return "<->"
	case KX:
		return "X"
	case KU:
		return "U"
	case KR:
		return "R"
	case KW:
		return "W"
	case KG:
		return "G"
	case KF:
		return "F"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Formula is an LTL formula node. Formulas are immutable after
// construction; the helpers below build them.
type Formula struct {
	Kind  Kind
	Name  string // KAtom, KEq, KNeq: variable name
	Value string // KEq, KNeq: right-hand constant
	L, R  *Formula
}

// Constructors.

// True is the constant true formula.
func True() *Formula { return &Formula{Kind: KTrue} }

// False is the constant false formula.
func False() *Formula { return &Formula{Kind: KFalse} }

// Atom is the atomic proposition named name.
func Atom(name string) *Formula { return &Formula{Kind: KAtom, Name: name} }

// Eq is the atomic proposition "name = value" over a finite-domain
// variable.
func Eq(name, value string) *Formula { return &Formula{Kind: KEq, Name: name, Value: value} }

// Neq is the atomic proposition "name != value".
func Neq(name, value string) *Formula { return &Formula{Kind: KNeq, Name: name, Value: value} }

// Not negates f.
func Not(f *Formula) *Formula { return &Formula{Kind: KNot, L: f} }

// And conjoins l and r.
func And(l, r *Formula) *Formula { return &Formula{Kind: KAnd, L: l, R: r} }

// Or disjoins l and r.
func Or(l, r *Formula) *Formula { return &Formula{Kind: KOr, L: l, R: r} }

// Imp is l -> r.
func Imp(l, r *Formula) *Formula { return &Formula{Kind: KImp, L: l, R: r} }

// Iff is l <-> r.
func Iff(l, r *Formula) *Formula { return &Formula{Kind: KIff, L: l, R: r} }

// X: f holds at the next position.
func X(f *Formula) *Formula { return &Formula{Kind: KX, L: f} }

// U: l holds until r does, and r eventually does.
func U(l, r *Formula) *Formula { return &Formula{Kind: KU, L: l, R: r} }

// R: r holds up to and including the first position where l also holds,
// or forever if l never does (the dual of U).
func R(l, r *Formula) *Formula { return &Formula{Kind: KR, L: l, R: r} }

// W: l holds until r does, or l holds forever (weak until).
func W(l, r *Formula) *Formula { return &Formula{Kind: KW, L: l, R: r} }

// G: f holds at every position.
func G(f *Formula) *Formula { return &Formula{Kind: KG, L: f} }

// F: f holds at some position.
func F(f *Formula) *Formula { return &Formula{Kind: KF, L: f} }

// precedence for printing: higher binds tighter. The binary temporal
// operators sit between & and the unary operators, matching the parser.
func (f *Formula) prec() int {
	switch f.Kind {
	case KIff:
		return 1
	case KImp:
		return 2
	case KOr:
		return 3
	case KAnd:
		return 4
	case KU, KR, KW:
		return 5
	case KNot, KX, KG, KF:
		return 6
	default:
		return 7
	}
}

// String renders f in the concrete syntax accepted by Parse.
func (f *Formula) String() string {
	var sb strings.Builder
	f.write(&sb, 0)
	return sb.String()
}

func (f *Formula) write(sb *strings.Builder, outer int) {
	p := f.prec()
	if p < outer {
		sb.WriteByte('(')
	}
	switch f.Kind {
	case KTrue:
		sb.WriteString("true")
	case KFalse:
		sb.WriteString("false")
	case KAtom:
		// An atom literally named X, G or F would be re-read as a prefix
		// operator when followed by a formula; parentheses keep String()
		// round-trippable through Parse.
		switch f.Name {
		case "X", "G", "F":
			sb.WriteByte('(')
			sb.WriteString(f.Name)
			sb.WriteByte(')')
		default:
			sb.WriteString(f.Name)
		}
	case KEq:
		fmt.Fprintf(sb, "%s = %s", f.Name, f.Value)
	case KNeq:
		fmt.Fprintf(sb, "%s != %s", f.Name, f.Value)
	case KNot:
		sb.WriteByte('!')
		f.L.write(sb, p)
	case KAnd:
		f.L.write(sb, p)
		sb.WriteString(" & ")
		f.R.write(sb, p+1)
	case KOr:
		f.L.write(sb, p)
		sb.WriteString(" | ")
		f.R.write(sb, p+1)
	case KImp:
		f.L.write(sb, p+1)
		sb.WriteString(" -> ")
		f.R.write(sb, p)
	case KIff:
		f.L.write(sb, p+1)
		sb.WriteString(" <-> ")
		f.R.write(sb, p+1)
	case KX, KG, KF:
		sb.WriteString(f.Kind.String())
		sb.WriteByte(' ')
		f.L.write(sb, p)
	case KU, KR, KW:
		f.L.write(sb, p+1)
		sb.WriteByte(' ')
		sb.WriteString(f.Kind.String())
		sb.WriteByte(' ')
		f.R.write(sb, p) // right associative
	}
	if p < outer {
		sb.WriteByte(')')
	}
}

// Equal reports structural equality.
func Equal(a, b *Formula) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	return Equal(a.L, b.L) && Equal(a.R, b.R)
}

// Atoms returns the sorted set of atom/variable names appearing in f.
func Atoms(f *Formula) []string {
	set := map[string]bool{}
	var walk func(*Formula)
	walk = func(g *Formula) {
		if g == nil {
			return
		}
		if g.Kind == KAtom || g.Kind == KEq || g.Kind == KNeq {
			set[g.Name] = true
		}
		walk(g.L)
		walk(g.R)
	}
	walk(f)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of nodes in f.
func Size(f *Formula) int {
	if f == nil {
		return 0
	}
	return 1 + Size(f.L) + Size(f.R)
}

// IsPropositional reports whether f contains no temporal operators.
func IsPropositional(f *Formula) bool {
	if f == nil {
		return true
	}
	switch f.Kind {
	case KX, KU, KR, KW, KG, KF:
		return false
	}
	return IsPropositional(f.L) && IsPropositional(f.R)
}
