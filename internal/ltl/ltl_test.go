package ltl

import "testing"

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"p", "p"},
		{"!p", "!p"},
		{"G p", "G p"},
		{"F p", "F p"},
		{"X p", "X p"},
		{"p U q", "p U q"},
		{"p R q", "p R q"},
		{"p W q", "p W q"},
		{"G (send -> F ack)", "G (send -> F ack)"},
		{"p U q U r", "p U q U r"},     // right associative
		{"(p U q) U r", "(p U q) U r"}, // forced left nesting
		{"p U q & r", "p U q & r"},     // U binds tighter than &
		{"(p & q) U r", "(p & q) U r"}, // & forced under U
		{"G p U q", "G p U q"},         // unary binds tighter: (G p) U q
		{"G (p U q)", "G (p U q)"},     // explicit grouping preserved
		{"p -> q -> r", "p -> q -> r"}, // right associative
		{"(p -> q) -> r", "(p -> q) -> r"},
		{"x = a U y != b", "x = a U y != b"},
		{"true U false", "true U false"},
		{"G F p", "G F p"},
		{"!G p", "!G p"},
		{"p <-> q", "p <-> q"},
		{"(G) U q", "(G) U q"}, // atom literally named G
	}
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := f.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Round trip: parse of the printed form must be structurally equal.
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", f.String(), err)
		}
		if !Equal(f, g) {
			t.Errorf("round trip of %q changed the formula: %q", c.in, g)
		}
	}
}

func TestParseAssociativity(t *testing.T) {
	f := MustParse("p U q U r")
	if f.Kind != KU || f.R.Kind != KU {
		t.Fatalf("p U q U r should be right associative, got %s with root L=%s R=%s", f, f.L, f.R)
	}
	f = MustParse("p U q & r")
	if f.Kind != KAnd || f.L.Kind != KU {
		t.Fatalf("p U q & r should parse as (p U q) & r, got kind %v", f.Kind)
	}
	f = MustParse("G p U q")
	if f.Kind != KU || f.L.Kind != KG {
		t.Fatalf("G p U q should parse as (G p) U q, got %s", f)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "p U", "(p", "p &", "p = ", "p ->", "p q", "p <- q"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestNNF(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"!G p", "true U !p"},  // ¬G p = F ¬p
		{"!F p", "false R !p"}, // ¬F p = G ¬p
		{"!(p U q)", "!p R !q"},
		{"!(p R q)", "!p U !q"},
		{"!X p", "X !p"},
		{"!!p", "p"},
		{"p -> q", "!p | q"},
		{"!(p -> q)", "p & !q"},
		{"p W q", "q R (p | q)"},
		{"!(p W q)", "!q U (!p & !q)"},
		{"G p", "false R p"},
		{"F p", "true U p"},
		{"!(x = a)", "x != a"},
		{"!(x != a)", "x = a"},
		{"!true", "false"},
	}
	for _, c := range cases {
		got := NNF(MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("NNF(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestTranslateElems(t *testing.T) {
	// ¬(G (send -> F ack)) = F (send ∧ G ¬ack)
	//                      = true U (send & (false R !ack))
	// Elementary: the U node and the R node.
	tab := Translate(MustParse("G (send -> F ack)"))
	if len(tab.Elem) != 2 {
		t.Fatalf("expected 2 elementary subformulas, got %d: %v", len(tab.Elem), tab.Elem)
	}
	if tab.NumFair() != 1 {
		t.Fatalf("expected 1 fairness term, got %d", tab.NumFair())
	}
	// Duplicated subformulas share one variable.
	tab = Translate(MustParse("!(F p & F p)"))
	if len(tab.Elem) != 1 {
		t.Fatalf("duplicate F p should collapse to 1 elem, got %d", len(tab.Elem))
	}
}

func TestSatBoolAlgebra(t *testing.T) {
	// ψ = NNF(¬spec) with spec = G p is true U !p. In a state where
	// p=true, sat(ψ) should equal the promise variable; with p=false it
	// is true outright.
	tab := Translate(MustParse("G p"))
	if len(tab.Elem) != 1 || tab.Elem[0].Kind != KU {
		t.Fatalf("unexpected tableau %v", tab.Elem)
	}
	alg := func(p, v bool) Algebra[bool] {
		return Algebra[bool]{
			True: true, False: false,
			Not:  func(b bool) bool { return !b },
			And:  func(a, b bool) bool { return a && b },
			Or:   func(a, b bool) bool { return a || b },
			Atom: func(f *Formula) (bool, error) { return p, nil },
			Elem: func(int) bool { return v },
		}
	}
	for _, tc := range []struct{ p, v, want bool }{
		{true, true, true},   // promise carried
		{true, false, false}, // p holds, no promise: ¬p never found
		{false, true, true},  // ¬p found now
		{false, false, true},
	} {
		got, err := Sat(tab, tab.Formula, alg(tc.p, tc.v))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("sat(ψ) with p=%v v=%v: got %v want %v", tc.p, tc.v, got, tc.want)
		}
	}
}
