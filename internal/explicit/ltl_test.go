package explicit

import (
	"testing"

	"repro/internal/kripke"
	"repro/internal/ltl"
)

// lassoAtom evaluates atoms against a per-position truth assignment.
func lassoAtom(rows []map[string]bool) func(int, *ltl.Formula) (bool, error) {
	return func(pos int, lit *ltl.Formula) (bool, error) {
		if lit.Kind != ltl.KAtom {
			return false, nil
		}
		return rows[pos][lit.Name], nil
	}
}

func TestEvalLasso(t *testing.T) {
	// Positions: 0 (stem, p) then cycle 1 → 2 → 1 → 2 ... with p at 2
	// and q at 1.
	rows := []map[string]bool{
		{"p": true},
		{"q": true},
		{"p": true},
	}
	atom := lassoAtom(rows)
	cases := []struct {
		f    string
		want bool
	}{
		{"p", true},
		{"q", false},
		{"X q", true},
		{"X X p", true},
		{"G p", false},
		{"F q", true},
		{"G F p", true},  // p recurs at position 2
		{"G F q", true},  // q recurs at position 1
		{"F G p", false}, // q-positions lack p forever
		{"p U q", true},
		{"q U p", true}, // p holds immediately
		{"G (q -> X p)", true},
		{"G (p -> X q)", true},
		{"p W q", true},
		{"q R (p | q)", true},
		{"G (p | q)", true},
		{"F (p & q)", false},
		{"!G p", true},
		{"p -> X q", true},
		{"p <-> q", false},
	}
	for _, c := range cases {
		got, err := EvalLasso(ltl.MustParse(c.f), len(rows), 1, atom)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if got != c.want {
			t.Errorf("EvalLasso(%s) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestEvalLassoShapeErrors(t *testing.T) {
	atom := func(int, *ltl.Formula) (bool, error) { return true, nil }
	if _, err := EvalLasso(ltl.MustParse("p"), 0, 0, atom); err == nil {
		t.Error("empty lasso should error")
	}
	if _, err := EvalLasso(ltl.MustParse("p"), 2, 2, atom); err == nil {
		t.Error("cycle start past the end should error")
	}
}

// twoState builds 0→1, 1→0, 1→1 with p at 0, q at 1, init 0.
func twoState() *kripke.Explicit {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(1, 1)
	e.Label(0, "p")
	e.Label(1, "q")
	e.AddInit(0)
	return e
}

func TestCheckLTLVerdicts(t *testing.T) {
	e := twoState()
	cases := []struct {
		f    string
		want bool
	}{
		{"F q", true}, // every path moves to 1 at step 1
		{"X q", true},
		{"G p", false},    // step 1 is ¬p
		{"G F q", true},   // 1 is revisited forever on every path
		{"G F p", false},  // the path 0,1,1,1,... starves p
		{"F G q", false},  // the alternating path never settles in q
		{"X X p", false},  // 0,1,1 violates
		{"!X X p", false}, // 0,1,0 satisfies X X p: neither verdict is universal
		{"p U q", true},
		{"G (p -> X q)", true},
		{"G (q -> F p)", false}, // stay at 1 forever
		{"p W q", true},
		{"true", true},
		{"false", false},
	}
	for _, c := range cases {
		holds, cex, err := CheckLTL(e, ltl.MustParse(c.f))
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if holds != c.want {
			t.Errorf("CheckLTL(%s) = %v, want %v", c.f, holds, c.want)
		}
		if holds && cex != nil {
			t.Errorf("%s: counterexample on satisfied spec", c.f)
		}
		if !holds {
			if cex == nil {
				t.Fatalf("%s: no counterexample", c.f)
			}
			replayCounterexample(t, e, c.f, cex)
		}
	}
}

// Counterpart of TestCheckerRangeVarNoBooleanFallback for the LTL
// path: comparisons against 0/1 on a value-labeled variable must use
// the exact "name=value" labels, never the bare-name boolean reading.
func TestCheckLTLRangeVarAtoms(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(0, "n=0")
	e.Label(1, "n=1")
	e.AddInit(0)
	cases := []struct {
		f    string
		want bool
	}{
		{"n = 0", true},
		{"F n = 1", true},
		{"G n = 0", false},   // n leaves 0 at step 1
		{"F G n != 0", true}, // and stays at 1 forever
		{"G n != 1", false},
	}
	for _, c := range cases {
		holds, cex, err := CheckLTL(e, ltl.MustParse(c.f))
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if holds != c.want {
			t.Errorf("CheckLTL(%s) = %v, want %v", c.f, holds, c.want)
		}
		if !holds && cex == nil {
			t.Fatalf("%s: no counterexample", c.f)
		}
	}
}

func TestCheckLTLFairness(t *testing.T) {
	// 0→0, 0→1, 1→1; p at 1; fairness forces visiting 1 infinitely
	// often, so every fair path eventually stays at 1.
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 0)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(1, "p")
	e.AddInit(0)

	holds, _, err := CheckLTL(e, ltl.MustParse("F p"))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("without fairness, 0,0,0,... should falsify F p")
	}

	e.AddFairSet("visit1", []bool{false, true})
	for _, c := range []struct {
		f    string
		want bool
	}{
		{"F p", true},
		{"F G p", true},
		{"G p", false}, // the initial state itself lacks p
	} {
		holds, cex, err := CheckLTL(e, ltl.MustParse(c.f))
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if holds != c.want {
			t.Errorf("CheckLTL(%s) under fairness = %v, want %v", c.f, holds, c.want)
		}
		if !holds {
			replayCounterexample(t, e, c.f, cex)
		}
	}
}

// replayCounterexample checks the lasso is a real fair path of e whose
// induced infinite path falsifies f — the same obligation the symbolic
// checker's counterexamples carry.
func replayCounterexample(t *testing.T, e *kripke.Explicit, f string, cex *Lasso) {
	t.Helper()
	all := make([]bool, e.N)
	for i := range all {
		all[i] = true
	}
	if err := New(e).ValidateLasso(cex, all); err != nil {
		t.Fatalf("%s: counterexample is not a fair lasso of the model: %v", f, err)
	}
	holds, err := EvalLasso(ltl.MustParse(f), len(cex.States), cex.CycleStart,
		func(pos int, lit *ltl.Formula) (bool, error) {
			return LabelAtom(e, cex.States[pos], lit)
		})
	if err != nil {
		t.Fatalf("%s: replay: %v", f, err)
	}
	if holds {
		t.Errorf("%s: counterexample path satisfies the spec", f)
	}
}
