package explicit

import (
	"fmt"
	"strings"

	"repro/internal/ctl"
	"repro/internal/kripke"
)

// hasValueLabel reports whether a state labels variable name with some
// "name=value" pair, identifying it as finite-domain rather than
// boolean for the purposes of the 0/1/true/false comparison fallback.
func hasValueLabel(labels map[string]bool, name string) bool {
	prefix := name + "="
	for k, v := range labels {
		if v && strings.HasPrefix(k, prefix) {
			return true
		}
	}
	return false
}

// Checker evaluates CTL formulas over an explicit structure by graph
// traversal, linear in the size of the graph and the length of the
// formula. Fairness constraints on the structure restrict the path
// quantifiers to fair paths, implemented with SCC analysis.
type Checker struct {
	E *kripke.Explicit

	pred [][]int
	fair []bool // states starting a fair path; nil until computed
}

// New creates an explicit checker.
func New(e *kripke.Explicit) *Checker {
	return &Checker{E: e, pred: e.Pred()}
}

// Check returns the satisfaction set of f (one bool per state).
func (c *Checker) Check(f *ctl.Formula) ([]bool, error) {
	return c.checkBasis(ctl.Existential(f))
}

// CheckInit reports whether all initial states satisfy f.
func (c *Checker) CheckInit(f *ctl.Formula) (bool, error) {
	set, err := c.Check(f)
	if err != nil {
		return false, err
	}
	for _, s := range c.E.Init {
		if !set[s] {
			return false, nil
		}
	}
	return true, nil
}

func (c *Checker) checkBasis(f *ctl.Formula) ([]bool, error) {
	n := c.E.N
	all := func(v bool) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	switch f.Kind {
	case ctl.KTrue:
		return all(true), nil
	case ctl.KFalse:
		return all(false), nil
	case ctl.KAtom:
		out := make([]bool, n)
		for s := 0; s < n; s++ {
			out[s] = c.E.Labels[s][f.Name]
		}
		return out, nil
	case ctl.KEq, ctl.KNeq:
		// Explicit structures label atoms "name=value"; booleans compare
		// against 0/1/true/false. The boolean fallback must not fire for a
		// finite-domain variable (one carrying some "name=value" label at
		// this state), else "x = 0" misreads as "!x" whenever x != 0.
		out := make([]bool, n)
		for s := 0; s < n; s++ {
			v := c.E.Labels[s][f.Name+"="+f.Value]
			if !v && !hasValueLabel(c.E.Labels[s], f.Name) {
				switch f.Value {
				case "1", "true", "TRUE":
					v = c.E.Labels[s][f.Name]
				case "0", "false", "FALSE":
					v = !c.E.Labels[s][f.Name]
				}
			}
			if f.Kind == ctl.KNeq {
				v = !v
			}
			out[s] = v
		}
		return out, nil
	case ctl.KNot:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return nil, err
		}
		for i := range l {
			l[i] = !l[i]
		}
		return l, nil
	case ctl.KAnd, ctl.KOr:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return nil, err
		}
		r, err := c.checkBasis(f.R)
		if err != nil {
			return nil, err
		}
		for i := range l {
			if f.Kind == ctl.KAnd {
				l[i] = l[i] && r[i]
			} else {
				l[i] = l[i] || r[i]
			}
		}
		return l, nil
	case ctl.KEX:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return nil, err
		}
		return c.ex(c.andFair(l)), nil
	case ctl.KEU:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return nil, err
		}
		r, err := c.checkBasis(f.R)
		if err != nil {
			return nil, err
		}
		return c.eu(l, c.andFair(r)), nil
	case ctl.KEG:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return nil, err
		}
		if len(c.E.Fair) == 0 {
			return c.eg(l), nil
		}
		return c.fairEG(l), nil
	default:
		return nil, fmt.Errorf("explicit: formula not in existential basis: %s", f)
	}
}

// andFair intersects a set with the fair states when fairness applies.
func (c *Checker) andFair(set []bool) []bool {
	if len(c.E.Fair) == 0 {
		return set
	}
	fair := c.fairStates()
	out := make([]bool, len(set))
	for i := range set {
		out[i] = set[i] && fair[i]
	}
	return out
}

// fairStates computes (and caches) the states beginning a fair path:
// those that can reach an SCC intersecting every fairness constraint.
func (c *Checker) fairStates() []bool {
	if c.fair != nil {
		return c.fair
	}
	allTrue := make([]bool, c.E.N)
	for i := range allTrue {
		allTrue[i] = true
	}
	c.fair = c.fairEG(allTrue)
	return c.fair
}

// ex computes EX set.
func (c *Checker) ex(set []bool) []bool {
	out := make([]bool, c.E.N)
	for s := 0; s < c.E.N; s++ {
		for _, t := range c.E.Succ[s] {
			if set[t] {
				out[s] = true
				break
			}
		}
	}
	return out
}

// eu computes E[f U g] by backward reachability from g through f.
func (c *Checker) eu(f, g []bool) []bool {
	out := make([]bool, c.E.N)
	var queue []int
	for s := 0; s < c.E.N; s++ {
		if g[s] {
			out[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, s := range c.pred[t] {
			if !out[s] && f[s] {
				out[s] = true
				queue = append(queue, s)
			}
		}
	}
	return out
}

// eg computes EG f (no fairness): states that reach a nontrivial SCC of
// the f-subgraph while staying in f.
func (c *Checker) eg(f []bool) []bool {
	seeds := NontrivialSCCStates(c.E.Succ, f)
	return c.eu(f, seeds)
}

// fairEG computes EG f under the structure's fairness constraints:
// states that can reach, along f-states, a nontrivial SCC of the
// f-subgraph that intersects every fairness constraint.
func (c *Checker) fairEG(f []bool) []bool {
	comp, ncomp := SCC(c.E.Succ, f)
	size := make([]int, ncomp)
	selfLoop := make([]bool, ncomp)
	hits := make([][]bool, ncomp)
	for i := range hits {
		hits[i] = make([]bool, len(c.E.Fair))
	}
	for v, cv := range comp {
		if cv < 0 {
			continue
		}
		size[cv]++
		for _, w := range c.E.Succ[v] {
			if w == v {
				selfLoop[cv] = true
			}
		}
		for k, fs := range c.E.Fair {
			if fs[v] {
				hits[cv][k] = true
			}
		}
	}
	goodComp := make([]bool, ncomp)
	for i := 0; i < ncomp; i++ {
		if size[i] < 2 && !selfLoop[i] {
			continue
		}
		ok := true
		for _, h := range hits[i] {
			if !h {
				ok = false
				break
			}
		}
		goodComp[i] = ok
	}
	seeds := make([]bool, c.E.N)
	for v, cv := range comp {
		if cv >= 0 && goodComp[cv] {
			seeds[v] = true
		}
	}
	return c.eu(f, seeds)
}
