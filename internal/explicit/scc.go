// Package explicit implements an explicit-state CTL model checker in the
// style of the EMC program referenced in Section 4 of the paper. It
// serves two purposes: the baseline whose state-explosion failure on the
// arbiter motivates the symbolic approach (experiment E7), and an
// independent oracle for cross-validating the symbolic checker on small
// models.
package explicit

// Tarjan's strongly connected components over a subgraph. Sub selects
// which states participate; edges leaving the subgraph are ignored. The
// returned comp maps each selected state to its component id (unselected
// states get -1); components are numbered in reverse topological order
// (a component's successors have smaller ids).
func SCC(succ [][]int, sub []bool) (comp []int, ncomp int) {
	n := len(succ)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	// Iterative Tarjan to survive deep graphs.
	type frame struct {
		v  int
		ei int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if !sub[root] || index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{root, 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			advanced := false
			for f.ei < len(succ[v]) {
				w := succ[v][f.ei]
				f.ei++
				if !sub[w] {
					continue
				}
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// finished v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// NontrivialSCCStates returns the set of states lying in a nontrivial
// SCC of the subgraph: a component with more than one state, or a single
// state with a self-loop (within the subgraph).
func NontrivialSCCStates(succ [][]int, sub []bool) []bool {
	comp, ncomp := SCC(succ, sub)
	size := make([]int, ncomp)
	for v, c := range comp {
		if c >= 0 {
			size[c]++
		}
		_ = v
	}
	out := make([]bool, len(succ))
	for v, c := range comp {
		if c < 0 {
			continue
		}
		if size[c] > 1 {
			out[v] = true
			continue
		}
		for _, w := range succ[v] {
			if w == v && sub[v] {
				out[v] = true
				break
			}
		}
	}
	return out
}
