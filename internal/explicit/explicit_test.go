package explicit

import (
	"math/rand"
	"testing"

	"repro/internal/ctl"
	"repro/internal/kripke"
)

func TestSCCBasics(t *testing.T) {
	// 0 <-> 1, 2 -> 0, 3 isolated self-loop
	succ := [][]int{{1}, {0}, {0}, {3}}
	sub := []bool{true, true, true, true}
	comp, n := SCC(succ, sub)
	if n != 3 {
		t.Fatalf("want 3 SCCs, got %d (%v)", n, comp)
	}
	if comp[0] != comp[1] {
		t.Fatal("0 and 1 must share a component")
	}
	if comp[2] == comp[0] || comp[3] == comp[0] {
		t.Fatal("2 and 3 must be separate")
	}
	// reverse-topological numbering: successors have smaller ids
	if comp[2] < comp[0] {
		t.Fatal("component of 2 must come after (be larger than) component of {0,1}")
	}
}

func TestSCCSubgraph(t *testing.T) {
	// full cycle 0->1->2->0 but with 1 excluded: no cycle remains.
	succ := [][]int{{1}, {2}, {0}}
	sub := []bool{true, false, true}
	nt := NontrivialSCCStates(succ, sub)
	for s, v := range nt {
		if v {
			t.Fatalf("state %d should not be in a nontrivial SCC", s)
		}
	}
	// include everyone: all three are.
	sub = []bool{true, true, true}
	nt = NontrivialSCCStates(succ, sub)
	for s, v := range nt {
		if !v {
			t.Fatalf("state %d should be in the cycle", s)
		}
	}
}

func TestSelfLoopIsNontrivial(t *testing.T) {
	succ := [][]int{{0}, {0}}
	nt := NontrivialSCCStates(succ, []bool{true, true})
	if !nt[0] || nt[1] {
		t.Fatalf("self-loop detection wrong: %v", nt)
	}
}

func TestDeepGraphNoStackOverflow(t *testing.T) {
	// A long chain ending in a cycle exercises the iterative Tarjan.
	const n = 200000
	e := kripke.NewExplicit(n)
	for i := 0; i < n-1; i++ {
		e.AddEdge(i, i+1)
	}
	e.AddEdge(n-1, n-2)
	sub := make([]bool, n)
	for i := range sub {
		sub[i] = true
	}
	comp, ncomp := SCC(e.Succ, sub)
	if ncomp != n-1 {
		t.Fatalf("want %d components, got %d", n-1, ncomp)
	}
	if comp[n-1] != comp[n-2] {
		t.Fatal("final two states must form one SCC")
	}
}

func TestCheckerBasicOperators(t *testing.T) {
	// 0 -> 1 -> 2 -> 1, p at 1, q at 2.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 1)
	e.Label(1, "p")
	e.Label(2, "q")
	e.AddInit(0)
	c := New(e)

	cases := []struct {
		src  string
		want []bool
	}{
		{"p", []bool{false, true, false}},
		{"!p", []bool{true, false, true}},
		{"EX p", []bool{true, false, true}},
		{"EF q", []bool{true, true, true}},
		{"EG (p | q)", []bool{false, true, true}},
		{"E [p U q]", []bool{false, true, true}},
		{"AF q", []bool{true, true, true}},
		{"AG (p | q)", []bool{false, true, true}},
		{"A [true U q]", []bool{true, true, true}},
	}
	for _, tc := range cases {
		got, err := c.Check(ctl.MustParse(tc.src))
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		for s := range tc.want {
			if got[s] != tc.want[s] {
				t.Fatalf("%s at state %d: got %v want %v", tc.src, s, got[s], tc.want[s])
			}
		}
	}
	ok, err := c.CheckInit(ctl.MustParse("AF q"))
	if err != nil || !ok {
		t.Fatalf("CheckInit: %v %v", ok, err)
	}
}

func TestCheckerEqNeqAtoms(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(0, "st=idle")
	e.Label(1, "st=busy")
	e.Label(1, "flag")
	e.AddInit(0)
	c := New(e)
	got, err := c.Check(ctl.MustParse("st = busy"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] || !got[1] {
		t.Fatalf("st=busy resolves wrong: %v", got)
	}
	got, err = c.Check(ctl.MustParse("flag = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] || !got[1] {
		t.Fatalf("flag=1 resolves wrong: %v", got)
	}
	got, err = c.Check(ctl.MustParse("flag != 1"))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] {
		t.Fatalf("flag!=1 resolves wrong: %v", got)
	}
}

// A finite-domain variable labeled "name=value" must not trip the
// boolean 0/1 comparison fallback: at a state where n=2, the atom
// "n = 0" used to evaluate as "!n" (vacuously true, since the bare
// label "n" never exists for value-labeled variables).
func TestCheckerRangeVarNoBooleanFallback(t *testing.T) {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 2)
	for s := 0; s < 3; s++ {
		e.Label(s, "n="+string(rune('0'+s)))
	}
	e.AddInit(0)
	c := New(e)
	for _, tc := range []struct {
		spec string
		want [3]bool
	}{
		{"n = 0", [3]bool{true, false, false}},
		{"n != 0", [3]bool{false, true, true}},
		{"n = 1", [3]bool{false, true, false}},
		{"n != 1", [3]bool{true, false, true}},
		{"n = 2", [3]bool{false, false, true}},
	} {
		got, err := c.Check(ctl.MustParse(tc.spec))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			if got[s] != tc.want[s] {
				t.Errorf("%s at state %d: got %v want %v", tc.spec, s, got[s], tc.want[s])
			}
		}
	}
}

func TestFairEGExplicit(t *testing.T) {
	// two loops; fairness only at the right loop.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 0)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 1)
	e.Label(0, "p")
	e.Label(1, "p")
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, false, true})
	c := New(e)
	got, err := c.Check(ctl.MustParse("EG p"))
	if err != nil {
		t.Fatal(err)
	}
	// the only fair loop {1,2} contains 2 which lacks p, so EG p fails
	// everywhere under fairness.
	for s, v := range got {
		if v {
			t.Fatalf("EG p should fail at %d under fairness", s)
		}
	}
	got, err = c.Check(ctl.MustParse("EG true"))
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range got {
		if !v {
			t.Fatalf("EG true should hold at %d (all can reach the fair loop)", s)
		}
	}
}

func TestFairSemanticLaws(t *testing.T) {
	// On random fair structures, EX/EU restricted to fair states must
	// agree with the definitional forms.
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		e := kripke.RandomExplicit(r, 10, 2, []string{"p", "q"}, 1+trial%2, 0.3)
		c := New(e)
		lhs, err := c.Check(ctl.MustParse("EX p"))
		if err != nil {
			t.Fatal(err)
		}
		// EX p under fairness == EX (p & EG true) without fairness
		noFair := kripke.NewExplicit(e.N)
		for u := range e.Succ {
			for _, v := range e.Succ[u] {
				noFair.AddEdge(u, v)
			}
			for a := range e.Labels[u] {
				noFair.Label(u, a)
			}
		}
		fair, err := c.Check(ctl.MustParse("EG true"))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < e.N; s++ {
			if fair[s] {
				noFair.Label(s, "fairstate")
			}
		}
		c2 := New(noFair)
		rhs, err := c2.Check(ctl.MustParse("EX (p & fairstate)"))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < e.N; s++ {
			if lhs[s] != rhs[s] {
				t.Fatalf("trial %d: fair EX law broken at state %d", trial, s)
			}
		}
	}
}
