package explicit

import (
	"errors"
	"fmt"
)

// Explicit-state witness generation: the pre-BDD way of producing the
// same traces Section 6 produces symbolically. Used as the baseline in
// experiment E7 and as an independent oracle for witness shapes.

// Lasso is an explicit witness: States[CycleStart:] repeats forever.
type Lasso struct {
	States     []int
	CycleStart int
}

// Len returns the total number of states.
func (l *Lasso) Len() int { return len(l.States) }

// CycleLen returns the number of states on the cycle.
func (l *Lasso) CycleLen() int { return len(l.States) - l.CycleStart }

// FairEGWitness constructs a fair lasso demonstrating EG f at start:
// BFS to a fair SCC of the f-subgraph, a tour of the fairness
// constraints inside it, and a closing path.
func (c *Checker) FairEGWitness(f []bool, start int) (*Lasso, error) {
	sat := c.fairEG(f)
	if !sat[start] {
		return nil, errors.New("explicit: state does not satisfy fair EG f")
	}
	// Identify the good SCCs (as in fairEG).
	comp, ncomp := SCC(c.E.Succ, f)
	good := c.goodComponents(comp, ncomp, f)

	goodState := make([]bool, c.E.N)
	for v, cv := range comp {
		if cv >= 0 && good[cv] {
			goodState[v] = true
		}
	}
	// Prefix: BFS within f from start to any good state.
	prefix, err := c.bfs(start, f, goodState)
	if err != nil {
		return nil, err
	}
	head := prefix[len(prefix)-1]
	inSCC := make([]bool, c.E.N)
	for v, cv := range comp {
		if cv == comp[head] {
			inSCC[v] = true
		}
	}

	lasso := &Lasso{States: prefix, CycleStart: len(prefix) - 1}
	cur := head
	for k, fs := range c.E.Fair {
		target := make([]bool, c.E.N)
		hit := false
		for v := range target {
			if inSCC[v] && fs[v] {
				target[v] = true
				hit = true
			}
		}
		if !hit {
			return nil, fmt.Errorf("explicit: good SCC misses fairness constraint %d", k)
		}
		segment, err := c.bfs(cur, inSCC, target)
		if err != nil {
			return nil, err
		}
		lasso.States = append(lasso.States, segment[1:]...)
		cur = segment[len(segment)-1]
	}
	// Close the cycle back to head with a nontrivial path.
	headOnly := make([]bool, c.E.N)
	headOnly[head] = true
	closing, err := c.bfsNontrivial(cur, inSCC, headOnly)
	if err != nil {
		return nil, err
	}
	// closing = cur ... head; drop cur and the final head (implicit).
	lasso.States = append(lasso.States, closing[1:len(closing)-1]...)
	return lasso, nil
}

// goodComponents returns which SCCs of the f-subgraph are nontrivial and
// intersect every fairness constraint.
func (c *Checker) goodComponents(comp []int, ncomp int, f []bool) []bool {
	size := make([]int, ncomp)
	selfLoop := make([]bool, ncomp)
	hits := make([][]bool, ncomp)
	for i := range hits {
		hits[i] = make([]bool, len(c.E.Fair))
	}
	for v, cv := range comp {
		if cv < 0 {
			continue
		}
		size[cv]++
		for _, w := range c.E.Succ[v] {
			if w == v {
				selfLoop[cv] = true
			}
		}
		for k, fs := range c.E.Fair {
			if fs[v] {
				hits[cv][k] = true
			}
		}
	}
	good := make([]bool, ncomp)
	for i := 0; i < ncomp; i++ {
		if size[i] < 2 && !selfLoop[i] {
			continue
		}
		ok := true
		for _, h := range hits[i] {
			if !h {
				ok = false
				break
			}
		}
		good[i] = ok
	}
	return good
}

// bfs returns a shortest path from start to any target state, moving
// only through sub states (the start need not be in sub... it must; the
// target states must be in sub). A path of length 0 (start ∈ target) is
// allowed.
func (c *Checker) bfs(start int, sub, target []bool) ([]int, error) {
	if target[start] {
		return []int{start}, nil
	}
	prev := make([]int, c.E.N)
	for i := range prev {
		prev[i] = -1
	}
	queue := []int{start}
	visited := make([]bool, c.E.N)
	visited[start] = true
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range c.E.Succ[u] {
			if visited[v] || !sub[v] {
				continue
			}
			visited[v] = true
			prev[v] = u
			if target[v] {
				return buildPath(prev, start, v), nil
			}
			queue = append(queue, v)
		}
	}
	return nil, errors.New("explicit: BFS target unreachable")
}

// bfsNontrivial is bfs but requires at least one edge (for closing a
// cycle back to the start state itself). Because the path may return to
// start, seed predecessors are marked with -2 ("parent is start").
func (c *Checker) bfsNontrivial(start int, sub, target []bool) ([]int, error) {
	prev := make([]int, c.E.N)
	for i := range prev {
		prev[i] = -1
	}
	build := func(end int) []int {
		var rev []int
		v := end
		for {
			rev = append(rev, v)
			p := prev[v]
			if p == -2 {
				break
			}
			v = p
		}
		rev = append(rev, start)
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}
	var queue []int
	visited := make([]bool, c.E.N)
	// seed with successors, not the start itself
	for _, v := range c.E.Succ[start] {
		if !sub[v] || visited[v] {
			continue
		}
		visited[v] = true
		prev[v] = -2
		if target[v] {
			return build(v), nil
		}
		queue = append(queue, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range c.E.Succ[u] {
			if visited[v] || !sub[v] {
				continue
			}
			visited[v] = true
			prev[v] = u
			if target[v] {
				return build(v), nil
			}
			queue = append(queue, v)
		}
	}
	return nil, errors.New("explicit: nontrivial BFS target unreachable")
}

func buildPath(prev []int, start, end int) []int {
	var rev []int
	for v := end; v != start; v = prev[v] {
		rev = append(rev, v)
	}
	rev = append(rev, start)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EUWitness returns a shortest path demonstrating E[f U g] at start.
func (c *Checker) EUWitness(f, g []bool, start int) ([]int, error) {
	sat := c.eu(f, g)
	if !sat[start] {
		return nil, errors.New("explicit: state does not satisfy E[f U g]")
	}
	// BFS through f-states (g states terminate).
	sub := make([]bool, c.E.N)
	for i := range sub {
		sub[i] = f[i] || g[i]
	}
	return c.bfs(start, sub, g)
}

// ValidateLasso checks a lasso against the structure: edges, closure,
// the invariant f everywhere, and fairness coverage on the cycle.
func (c *Checker) ValidateLasso(l *Lasso, f []bool) error {
	if len(l.States) == 0 || l.CycleStart < 0 || l.CycleStart >= len(l.States) {
		return errors.New("explicit: malformed lasso")
	}
	for i := 1; i < len(l.States); i++ {
		if !hasEdge(c.E.Succ, l.States[i-1], l.States[i]) {
			return fmt.Errorf("explicit: missing edge at step %d", i)
		}
	}
	if !hasEdge(c.E.Succ, l.States[len(l.States)-1], l.States[l.CycleStart]) {
		return errors.New("explicit: cycle does not close")
	}
	for i, s := range l.States {
		if !f[s] {
			return fmt.Errorf("explicit: state %d violates the invariant", i)
		}
	}
	for k, fs := range c.E.Fair {
		hit := false
		for i := l.CycleStart; i < len(l.States); i++ {
			if fs[l.States[i]] {
				hit = true
				break
			}
		}
		if !hit {
			return fmt.Errorf("explicit: fairness constraint %d missed on the cycle", k)
		}
	}
	return nil
}

func hasEdge(succ [][]int, u, v int) bool {
	for _, w := range succ[u] {
		if w == v {
			return true
		}
	}
	return false
}
