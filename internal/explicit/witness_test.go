package explicit

import (
	"math/rand"
	"testing"

	"repro/internal/kripke"
)

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func TestFairEGWitnessRing(t *testing.T) {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false})
	e.AddFairSet("h2", []bool{false, false, true})
	c := New(e)
	l, err := c.FairEGWitness(allTrue(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateLasso(l, allTrue(3)); err != nil {
		t.Fatalf("invalid lasso: %v (%v)", err, l.States)
	}
}

func TestFairEGWitnessMultiSCC(t *testing.T) {
	// two SCCs; only the second satisfies both constraints.
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, true, false})
	e.AddFairSet("h2", []bool{false, false, false, true})
	c := New(e)
	l, err := c.FairEGWitness(allTrue(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateLasso(l, allTrue(4)); err != nil {
		t.Fatalf("invalid: %v (%v)", err, l.States)
	}
	// cycle must live in {2,3}
	for i := l.CycleStart; i < len(l.States); i++ {
		if s := l.States[i]; s != 2 && s != 3 {
			t.Fatalf("cycle escapes the good SCC: %v", l.States)
		}
	}
}

func TestFairEGWitnessUnsatisfied(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.AddInit(0)
	e.AddFairSet("h", []bool{true, false})
	c := New(e)
	if _, err := c.FairEGWitness(allTrue(2), 0); err == nil {
		t.Fatal("should fail: no fair cycle")
	}
}

func TestFairEGWitnessInvariant(t *testing.T) {
	// EG p with p missing on part of the graph.
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(0, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	e.AddInit(0)
	p := []bool{true, true, false, false}
	c := New(e)
	l, err := c.FairEGWitness(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateLasso(l, p); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestEUWitnessShortest(t *testing.T) {
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(0, 3)
	e.AddEdge(3, 3)
	e.AddInit(0)
	c := New(e)
	f := allTrue(4)
	g := []bool{false, false, false, true}
	path, err := c.EUWitness(f, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("EU witness not shortest: %v", path)
	}
}

func TestEUWitnessUnsatisfied(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 0)
	e.AddEdge(1, 1)
	c := New(e)
	g := []bool{false, true}
	if _, err := c.EUWitness(allTrue(2), g, 0); err == nil {
		t.Fatal("unreachable target must fail")
	}
}

func TestRandomExplicitWitnessesAgainstSymbolicSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		e := kripke.RandomExplicit(r, 10+r.Intn(10), 2, nil, 1+trial%3, 0.25)
		c := New(e)
		fair := c.fairStates()
		for s := 0; s < e.N && s < 5; s++ {
			if !fair[s] {
				continue
			}
			l, err := c.FairEGWitness(allTrue(e.N), s)
			if err != nil {
				t.Fatalf("trial %d state %d: %v", trial, s, err)
			}
			if err := c.ValidateLasso(l, allTrue(e.N)); err != nil {
				t.Fatalf("trial %d: invalid lasso: %v", trial, err)
			}
		}
	}
}
