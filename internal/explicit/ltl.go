package explicit

import (
	"fmt"

	"repro/internal/kripke"
	"repro/internal/ltl"
)

// Explicit-state LTL: an independent oracle for the symbolic tableau
// product. EvalLasso decides φ on a concrete ultimately-periodic path
// by fixpoint iteration — the replay check for every symbolic lasso
// counterexample — and CheckLTL decides M ⊨ φ by building the explicit
// product with the very same tableau the symbolic checker compiles,
// sharing the ltl.Sat/ElemExpansion/FairTerms evaluators so the two
// implementations cannot drift apart silently.

// EvalLasso evaluates an arbitrary LTL formula (not necessarily in NNF)
// on the infinite path induced by a lasso of n positions whose position
// n-1 loops back to cycleStart. atom evaluates a literal (ltl.KAtom,
// KEq, KNeq) at a position. It returns the truth value at position 0.
func EvalLasso(f *ltl.Formula, n, cycleStart int, atom func(pos int, lit *ltl.Formula) (bool, error)) (bool, error) {
	if n <= 0 || cycleStart < 0 || cycleStart >= n {
		return false, fmt.Errorf("explicit: malformed lasso shape n=%d cycleStart=%d", n, cycleStart)
	}
	next := func(i int) int {
		if i == n-1 {
			return cycleStart
		}
		return i + 1
	}
	vals, err := evalLasso(f, n, next, atom)
	if err != nil {
		return false, err
	}
	return vals[0], nil
}

func evalLasso(f *ltl.Formula, n int, next func(int) int, atom func(int, *ltl.Formula) (bool, error)) ([]bool, error) {
	fill := func(v bool) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	binop := func(op func(a, b bool) bool) ([]bool, error) {
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		r, err := evalLasso(f.R, n, next, atom)
		if err != nil {
			return nil, err
		}
		for i := range l {
			l[i] = op(l[i], r[i])
		}
		return l, nil
	}
	// fix iterates out[i] = step(out, i) in backward passes until stable.
	// Each pass only moves values monotonically (lfp: false→true from
	// init false; gfp: true→false from init true), so on a lasso of n
	// positions it stabilizes within n+1 passes.
	fix := func(init bool, step func(out []bool, i int) bool) []bool {
		out := fill(init)
		for {
			changed := false
			for i := n - 1; i >= 0; i-- {
				v := step(out, i)
				if v != out[i] {
					out[i] = v
					changed = true
				}
			}
			if !changed {
				return out
			}
		}
	}

	switch f.Kind {
	case ltl.KTrue:
		return fill(true), nil
	case ltl.KFalse:
		return fill(false), nil
	case ltl.KAtom, ltl.KEq, ltl.KNeq:
		out := make([]bool, n)
		for i := range out {
			v, err := atom(i, f)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case ltl.KNot:
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		for i := range l {
			l[i] = !l[i]
		}
		return l, nil
	case ltl.KAnd:
		return binop(func(a, b bool) bool { return a && b })
	case ltl.KOr:
		return binop(func(a, b bool) bool { return a || b })
	case ltl.KImp:
		return binop(func(a, b bool) bool { return !a || b })
	case ltl.KIff:
		return binop(func(a, b bool) bool { return a == b })
	case ltl.KX:
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		for i := range out {
			out[i] = l[next(i)]
		}
		return out, nil
	case ltl.KU: // least fixpoint of  r ∨ (l ∧ X self)
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		r, err := evalLasso(f.R, n, next, atom)
		if err != nil {
			return nil, err
		}
		return fix(false, func(out []bool, i int) bool {
			return r[i] || (l[i] && out[next(i)])
		}), nil
	case ltl.KW: // greatest fixpoint of the same functional as U
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		r, err := evalLasso(f.R, n, next, atom)
		if err != nil {
			return nil, err
		}
		return fix(true, func(out []bool, i int) bool {
			return r[i] || (l[i] && out[next(i)])
		}), nil
	case ltl.KR: // greatest fixpoint of  r ∧ (l ∨ X self)
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		r, err := evalLasso(f.R, n, next, atom)
		if err != nil {
			return nil, err
		}
		return fix(true, func(out []bool, i int) bool {
			return r[i] && (l[i] || out[next(i)])
		}), nil
	case ltl.KG:
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		return fix(true, func(out []bool, i int) bool {
			return l[i] && out[next(i)]
		}), nil
	case ltl.KF:
		l, err := evalLasso(f.L, n, next, atom)
		if err != nil {
			return nil, err
		}
		return fix(false, func(out []bool, i int) bool {
			return l[i] || out[next(i)]
		}), nil
	default:
		return nil, fmt.Errorf("explicit: EvalLasso: unexpected kind %v", f.Kind)
	}
}

// LabelAtom evaluates an LTL literal at a state of an explicit
// structure, using the same label conventions as the CTL checker:
// booleans are labeled by name, finite-domain values as "name=value",
// and booleans may be compared against 0/1/true/false.
func LabelAtom(e *kripke.Explicit, s int, lit *ltl.Formula) (bool, error) {
	switch lit.Kind {
	case ltl.KAtom:
		return e.Labels[s][lit.Name], nil
	case ltl.KEq, ltl.KNeq:
		v := e.Labels[s][lit.Name+"="+lit.Value]
		if !v && !hasValueLabel(e.Labels[s], lit.Name) {
			switch lit.Value {
			case "1", "true", "TRUE":
				v = e.Labels[s][lit.Name]
			case "0", "false", "FALSE":
				v = !e.Labels[s][lit.Name]
			}
		}
		if lit.Kind == ltl.KNeq {
			v = !v
		}
		return v, nil
	}
	return false, fmt.Errorf("explicit: non-literal %s in atom position", lit)
}

// maxProductStates bounds the explicit product construction; the oracle
// is meant for small cross-validation models, not production checking.
const maxProductStates = 1 << 22

// CheckLTL decides e ⊨ spec (over the fair paths of e) by explicit
// construction of the product with the tableau of ¬spec. On violation
// it returns a fair lasso of *model* states whose induced path
// falsifies spec.
//
// The product state is u·2^k + w where u is the model state and w packs
// the k promise-variable bits. The tableau's transition constraints
// determine the predecessor's promise bits uniquely from the successor
// product state (w_i = expansion_i evaluated at the successor), so the
// product has exactly one edge (u,w(u′,v′)) → (u′,v′) per model edge
// u→u′ and successor decoration v′ — no constraint filtering needed.
func CheckLTL(e *kripke.Explicit, spec *ltl.Formula) (holds bool, cex *Lasso, err error) {
	t := ltl.Translate(spec)
	k := len(t.Elem)
	if k > 20 || e.N<<k > maxProductStates || e.N<<k <= 0 {
		return false, nil, fmt.Errorf("explicit: product too large (%d states × 2^%d decorations)", e.N, k)
	}

	algAt := func(u, w int) ltl.Algebra[bool] {
		return ltl.Algebra[bool]{
			True:  true,
			False: false,
			Not:   func(b bool) bool { return !b },
			And:   func(a, b bool) bool { return a && b },
			Or:    func(a, b bool) bool { return a || b },
			Atom:  func(lit *ltl.Formula) (bool, error) { return LabelAtom(e, u, lit) },
			Elem:  func(i int) bool { return w>>i&1 == 1 },
		}
	}

	p := kripke.NewExplicit(e.N << k)
	for u := 0; u < e.N; u++ {
		for _, u2 := range e.Succ[u] {
			for v2 := 0; v2 < 1<<k; v2++ {
				w := 0
				alg := algAt(u2, v2)
				for i := 0; i < k; i++ {
					b, err := ltl.ElemExpansion(t, i, alg)
					if err != nil {
						return false, nil, err
					}
					if b {
						w |= 1 << i
					}
				}
				p.AddEdge(u<<k|w, u2<<k|v2)
			}
		}
	}
	for _, u0 := range e.Init {
		for w := 0; w < 1<<k; w++ {
			p.AddInit(u0<<k | w)
		}
	}
	// Model fairness lifts pointwise; each tableau U node adds one
	// generalized-Büchi constraint.
	for fi, fs := range e.Fair {
		sel := make([]bool, p.N)
		for u := 0; u < e.N; u++ {
			if fs[u] {
				for w := 0; w < 1<<k; w++ {
					sel[u<<k|w] = true
				}
			}
		}
		p.AddFairSet(e.FairNames[fi], sel)
	}
	nfair := t.NumFair()
	if nfair > 0 {
		sels := make([][]bool, nfair)
		var names []string
		for u := 0; u < e.N; u++ {
			for w := 0; w < 1<<k; w++ {
				terms, nodes, err := ltl.FairTerms(t, algAt(u, w))
				if err != nil {
					return false, nil, err
				}
				for ti, tv := range terms {
					if sels[ti] == nil {
						sels[ti] = make([]bool, p.N)
					}
					if tv {
						sels[ti][u<<k|w] = true
					}
				}
				if names == nil {
					for i, node := range nodes {
						names = append(names, fmt.Sprintf("LTL#%d(%s)", i, node))
					}
				}
			}
		}
		for i, sel := range sels {
			p.AddFairSet(names[i], sel)
		}
	}

	pc := New(p)
	allTrue := make([]bool, p.N)
	for i := range allTrue {
		allTrue[i] = true
	}
	// Fair (or, without constraints, merely infinite) paths exist from
	// exactly the fairEG(true) states; the product is not total, so this
	// pruning is what discards inconsistent promise decorations.
	live := pc.fairEG(allTrue)

	bad := -1
	for _, p0 := range p.Init {
		if !live[p0] {
			continue
		}
		accept, err := ltl.Sat(t, t.Formula, algAt(p0>>k, p0&(1<<k-1)))
		if err != nil {
			return false, nil, err
		}
		if accept {
			bad = p0
			break
		}
	}
	if bad < 0 {
		return true, nil, nil
	}
	lasso, err := pc.FairEGWitness(allTrue, bad)
	if err != nil {
		return false, nil, fmt.Errorf("explicit: fair lasso extraction: %w", err)
	}
	proj := &Lasso{States: make([]int, len(lasso.States)), CycleStart: lasso.CycleStart}
	for i, s := range lasso.States {
		proj.States[i] = s >> k
	}
	return false, proj, nil
}
