package smvd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"
)

// Server is the HTTP face of the session cache.
//
//	POST /check    CheckRequest -> CheckResponse
//	GET  /statsz   StatszResponse (cache counters + per-session stats)
//	GET  /healthz  "ok"
//	     /debug/pprof/...  the standard profiling endpoints
type Server struct {
	Cache *Cache

	// MaxDeadline caps (and DefaultDeadline fills in) the per-request
	// deadline; zero means no cap / no default.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	queries          atomic.Uint64
	specsChecked     atomic.Uint64
	deadlineExceeded atomic.Uint64
	requestErrors    atomic.Uint64
}

// CheckRequest asks for a set of specs to be checked against a model.
// The model and config identify the session; the specs ride along with
// each request, so re-checking edited specs against an unchanged model
// hits the session's cached reachable/fair sets and subformula memo.
type CheckRequest struct {
	Model  string   `json:"model"`
	Config Config   `json:"config"`
	Specs  []string `json:"specs,omitempty"`
	LTL    []string `json:"ltl,omitempty"`
	// DeadlineMs bounds the whole request, including waiting for the
	// session to come free. 0: server default.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// CheckResponse is the verdict set plus enough cache telemetry for a
// client (or a load harness) to see whether the query was served warm.
type CheckResponse struct {
	ModelKey string `json:"model_key"`
	// Warm reports that the session's reachable/fair sets already
	// existed when this query arrived (earlier query or disk record):
	// the expensive fixpoints were skipped.
	Warm bool `json:"warm"`
	// WarmSource is "" for a session warmed by an earlier in-process
	// query, "disk" for one restored from a warm-start record.
	WarmSource      string        `json:"warm_source,omitempty"`
	ReachableStates float64       `json:"reachable_states"`
	ReachIters      int           `json:"reach_iters"`
	Verdicts        []SpecVerdict `json:"verdicts"`
	Evicted         bool          `json:"evicted,omitempty"` // session left the cache (over budget)
	ElapsedMs       float64       `json:"elapsed_ms"`
}

// StatszResponse is the /statsz payload.
type StatszResponse struct {
	Cache            CacheStats     `json:"cache"`
	Queries          uint64         `json:"queries"`
	SpecsChecked     uint64         `json:"specs_checked"`
	DeadlineExceeded uint64         `json:"deadline_exceeded"`
	RequestErrors    uint64         `json:"request_errors"`
	Sessions         []SessionStats `json:"sessions"`
}

// NewServer wraps a cache in a server with default deadlines.
func NewServer(cache *Cache) *Server {
	return &Server{Cache: cache}
}

// Handler builds the server's mux, including the pprof endpoints so a
// perf regression on a live server can be profiled without rebuilding.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/check", sv.handleCheck)
	mux.HandleFunc("/statsz", sv.handleStatsz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// deadline resolves the request's absolute deadline; zero means none.
func (sv *Server) deadline(req *CheckRequest, now time.Time) time.Time {
	d := time.Duration(req.DeadlineMs) * time.Millisecond
	if d <= 0 {
		d = sv.DefaultDeadline
	}
	if sv.MaxDeadline > 0 && (d <= 0 || d > sv.MaxDeadline) {
		d = sv.MaxDeadline
	}
	if d <= 0 {
		return time.Time{}
	}
	return now.Add(d)
}

// Check runs one request against the cache — the transport-independent
// core the HTTP handler and in-process harnesses share.
func (sv *Server) Check(req *CheckRequest) (*CheckResponse, error) {
	start := time.Now()
	sv.queries.Add(1)
	if req.Model == "" {
		sv.requestErrors.Add(1)
		return nil, fmt.Errorf("smvd: empty model")
	}
	deadline := sv.deadline(req, start)
	sess, err := sv.Cache.Get(req.Model, req.Config)
	if err != nil {
		sv.requestErrors.Add(1)
		return nil, err
	}
	if err := sess.lock(deadline); err != nil {
		sv.deadlineExceeded.Add(1)
		return nil, err
	}
	wasReady, verdicts := sess.query(req.Specs, req.LTL, deadline)
	resp := &CheckResponse{
		ModelKey:        sess.Key,
		Warm:            wasReady,
		ReachableStates: sess.reachCount,
		ReachIters:      sess.reachIters,
		Verdicts:        verdicts,
	}
	if wasReady {
		resp.WarmSource = sess.warmSource
	}
	live := sess.liveNodes()
	sess.unlock()
	resp.Evicted = sv.Cache.EvictOverBudget(sess, live)
	for _, v := range verdicts {
		sv.specsChecked.Add(1)
		if v.Error == "smvd: deadline exceeded" {
			sv.deadlineExceeded.Add(1)
		}
	}
	resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

func (sv *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sv.requestErrors.Add(1)
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	resp, err := sv.Check(&req)
	if err != nil {
		// Compile/parse errors are the client's; deadline misses are 504.
		code := http.StatusUnprocessableEntity
		if strings.HasPrefix(err.Error(), "smvd: deadline exceeded") {
			code = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (sv *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := StatszResponse{
		Cache:            sv.Cache.Stats(),
		Queries:          sv.queries.Load(),
		SpecsChecked:     sv.specsChecked.Load(),
		DeadlineExceeded: sv.deadlineExceeded.Load(),
		RequestErrors:    sv.requestErrors.Load(),
		Sessions:         sv.Cache.Sessions(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}
