package smvd

import (
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/ltl"
	"repro/internal/mc"
	"repro/internal/smv"
)

// Session is one cached compiled model: a BDD manager, the compiled
// symbolic structure, and a checker whose memo, care set and fair set
// live as long as the session does. Everything under mu is single-
// threaded — a bdd.Manager is not safe for concurrent use — so queries
// against one model serialize while queries against different models
// run in parallel.
type Session struct {
	Key string
	Cfg Config

	mu       chan struct{} // 1-slot semaphore: lockable with a deadline
	src      string
	module   *smv.Module
	compiled *smv.Compiled
	checker  *mc.Checker
	gen      *core.Generator

	ready      bool   // reachable + fair sets populated
	warmSource string // "" (cold), "disk" (restored from a v3 record)
	reachIters int
	reachCount float64

	queries   uint64
	createdAt time.Time
	lastUsed  time.Time
}

// SpecVerdict is the outcome of one spec within a query.
type SpecVerdict struct {
	Spec      string `json:"spec"`
	Holds     bool   `json:"holds"`
	Trace     string `json:"trace,omitempty"`
	States    int    `json:"trace_states,omitempty"`
	Validated bool   `json:"validated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// SessionStats is the per-session block of /statsz.
type SessionStats struct {
	Key             string  `json:"key"`
	Busy            bool    `json:"busy,omitempty"`
	Queries         uint64  `json:"queries"`
	Ready           bool    `json:"ready"`
	WarmSource      string  `json:"warm_source,omitempty"`
	ReachIters      int     `json:"reach_iters"`
	ReachableStates float64 `json:"reachable_states"`
	LiveNodes       int     `json:"live_nodes"`
	CacheSize       int     `json:"cache_size"`
	MemoHits        uint64  `json:"memo_hits"`
	ReachableReuses uint64  `json:"reachable_reuses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`

	Rel kripke.RelStats `json:"rel"`
}

// newSession parses and compiles the model under the given engine
// configuration. The expensive fixpoints (reachability, fair states)
// are NOT run here; they are populated by the first query (ensureReady)
// or seeded from a disk record (warmStart).
func newSession(key, src string, cfg Config) (*Session, error) {
	cfg = cfg.normalize()
	module, err := smv.ParseModule(src)
	if err != nil {
		return nil, err
	}
	compiled, err := smv.CompileWith(module, smv.CompileOptions{
		DisableComplementEdges: cfg.NoComplement,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Reorder {
		compiled.S.M.EnableAutoReorder(nil)
	}
	if cfg.Disjunctive && compiled.S.NumDisjuncts() > 0 {
		compiled.S.EnableDisjunct(true)
	}
	compiled.S.SetWorkers(cfg.Workers)
	compiled.S.EnableReachableCache()
	checker := mc.New(compiled.S)
	s := &Session{
		Key:       key,
		Cfg:       cfg,
		mu:        make(chan struct{}, 1),
		src:       src,
		module:    module,
		compiled:  compiled,
		checker:   checker,
		gen:       core.NewGenerator(checker),
		createdAt: time.Now(),
	}
	return s, nil
}

// lock acquires the session for one query, failing if the deadline
// passes first (a slow query on a shared session must not make later
// ones block past their own budgets).
func (s *Session) lock(deadline time.Time) error {
	if deadline.IsZero() {
		s.mu <- struct{}{}
		return nil
	}
	wait := time.NewTimer(time.Until(deadline))
	defer wait.Stop()
	select {
	case s.mu <- struct{}{}:
		return nil
	case <-wait.C:
		return fmt.Errorf("smvd: deadline exceeded waiting for session %.12s", s.Key)
	}
}

func (s *Session) unlock() { <-s.mu }

// warmStart seeds the session's fixpoint results from a disk record:
// the reachable set becomes the care set and the fair set is installed
// directly, so the first query skips both fixpoints. Caller holds the
// session lock (or exclusivity by construction).
func (s *Session) warmStart(reach, fair bdd.Ref, iters int) {
	s.compiled.S.SetReachable(reach, iters)
	s.checker.SetCareSet(reach)
	// SetCareSet clears the fair cache, so the seed must come after it.
	s.checker.SeedFair(fair)
	s.reachIters = iters
	s.reachCount = s.compiled.S.CountStates(reach)
	s.ready = true
	s.warmSource = "disk"
}

// ensureReady runs the session's one-time fixpoints: reachable states
// (installed as the care set) and the fair-state set. Later queries —
// and later calls here — reuse both.
func (s *Session) ensureReady() {
	if s.ready {
		return
	}
	reach := s.checker.UseReachableCareSet()
	s.checker.Fair()
	_, iters, _ := s.compiled.S.ReachableCached()
	s.reachIters = iters
	s.reachCount = s.compiled.S.CountStates(reach)
	s.ready = true
}

// expired reports whether the deadline (if any) has passed.
func expired(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// budgetReorder maps the remaining request budget onto the sifting
// engine's own time bound, so a reorder triggered mid-query cannot
// consume the whole deadline.
func (s *Session) budgetReorder(deadline time.Time) {
	if !s.Cfg.Reorder || deadline.IsZero() {
		return
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return
	}
	opts := bdd.DefaultReorderOptions()
	opts.SiftMaxTime = remaining / 4
	s.compiled.S.M.EnableAutoReorder(&opts)
}

// checkCTL evaluates one CTL spec, producing a validated trace for
// failures.
func (s *Session) checkCTL(spec string) SpecVerdict {
	v := SpecVerdict{Spec: spec}
	f, err := ctl.Parse(spec)
	if err != nil {
		v.Error = err.Error()
		return v
	}
	if err := s.compiled.ResolveSpecAtoms(f); err != nil {
		v.Error = err.Error()
		return v
	}
	holds, tr, err := s.gen.CounterexampleInit(f)
	if err != nil {
		v.Error = err.Error()
		return v
	}
	v.Holds = holds
	if tr != nil {
		if err := core.ValidatePath(s.compiled.S, tr); err != nil {
			v.Error = fmt.Sprintf("counterexample failed validation: %v", err)
			return v
		}
		v.Validated = true
		v.Trace = s.compiled.TraceString(tr)
		v.States = len(tr.States)
	}
	return v
}

// checkLTL evaluates one LTL spec by compiling the Büchi tableau
// product on a fresh manager — the product's variables and fairness
// sets are per-formula, so it cannot share the session manager — and
// replaying any counterexample against the formula's semantics.
func (s *Session) checkLTL(spec string) SpecVerdict {
	v := SpecVerdict{Spec: spec}
	f, err := ltl.Parse(spec)
	if err != nil {
		v.Error = err.Error()
		return v
	}
	p, err := smv.CompileLTLWith(s.module, f, spec, smv.CompileOptions{
		DisableComplementEdges: s.Cfg.NoComplement,
	})
	if err != nil {
		v.Error = err.Error()
		return v
	}
	if s.Cfg.Reorder {
		p.S.M.EnableAutoReorder(nil)
	}
	if s.Cfg.Disjunctive && p.S.NumDisjuncts() > 0 {
		p.S.EnableDisjunct(true)
	}
	p.S.SetWorkers(s.Cfg.Workers)
	ch := mc.New(p.S)
	defer ch.Close()
	holds, tr, err := p.Check(ch)
	if err != nil {
		v.Error = err.Error()
		return v
	}
	v.Holds = holds
	if tr != nil {
		if err := core.ValidatePath(p.S, tr); err != nil {
			v.Error = fmt.Sprintf("counterexample failed validation: %v", err)
			return v
		}
		if err := p.ReplayCounterexample(tr); err != nil {
			v.Error = fmt.Sprintf("counterexample failed replay: %v", err)
			return v
		}
		v.Validated = true
		v.Trace = p.FormatLassoByVars(tr)
		v.States = len(tr.States)
	}
	return v
}

// query runs one request against the session. Caller holds the lock.
// Specs after a deadline expiry are reported as errors rather than
// silently dropped.
func (s *Session) query(specs, ltlSpecs []string, deadline time.Time) (wasReady bool, out []SpecVerdict) {
	s.queries++
	s.lastUsed = time.Now()
	wasReady = s.ready
	s.budgetReorder(deadline)
	s.ensureReady()
	for _, sp := range specs {
		if expired(deadline) {
			out = append(out, SpecVerdict{Spec: sp, Error: "smvd: deadline exceeded"})
			continue
		}
		out = append(out, s.checkCTL(sp))
	}
	for _, sp := range ltlSpecs {
		if expired(deadline) {
			out = append(out, SpecVerdict{Spec: sp, Error: "smvd: deadline exceeded"})
			continue
		}
		out = append(out, s.checkLTL(sp))
	}
	return wasReady, out
}

// stats snapshots the session counters. Caller holds the lock.
func (s *Session) stats() SessionStats {
	rel := s.compiled.S.RelStats()
	return SessionStats{
		Key:             s.Key,
		Queries:         s.queries,
		Ready:           s.ready,
		WarmSource:      s.warmSource,
		ReachIters:      s.reachIters,
		ReachableStates: s.reachCount,
		LiveNodes:       s.compiled.S.M.NumNodes(),
		CacheSize:       s.compiled.S.M.CacheSize(),
		MemoHits:        s.checker.Stats.MemoHits,
		ReachableReuses: rel.ReachableReuses,
		CacheHitRate:    rel.CacheHitRate(),
		Rel:             rel,
	}
}

// liveNodes reports the manager's live-node count. Caller holds the
// lock.
func (s *Session) liveNodes() int { return s.compiled.S.M.NumNodes() }

// warmRefs returns the roots a warm-start record needs, if the session
// has them. Caller holds the lock.
func (s *Session) warmRefs() (reach, fair bdd.Ref, iters int, ok bool) {
	if !s.ready {
		return 0, 0, 0, false
	}
	reach, iters, ok = s.compiled.S.ReachableCached()
	if !ok {
		return 0, 0, 0, false
	}
	fair, okFair := s.checker.CachedFair()
	if !okFair {
		return 0, 0, 0, false
	}
	return reach, fair, iters, true
}
