package smvd

import (
	"strings"
	"testing"
)

const counterModel = `
MODULE main
VAR
  n    : 0..7;
  tick : boolean;
ASSIGN
  init(n) := 0;
  next(n) := case
    tick : (n + 1) mod 8;
    TRUE : n;
  esac;
FAIRNESS tick
`

const mutexModel = `
MODULE main
VAR
  p1 : {idle, trying, critical};
  p2 : {idle, trying, critical};
  turn : boolean;
ASSIGN
  init(p1) := idle;
  init(p2) := idle;
  next(p1) := case
    p1 = idle                         : {idle, trying};
    p1 = trying & (p2 = idle | !turn) : critical;
    p1 = critical                     : idle;
    TRUE                              : p1;
  esac;
  next(p2) := case
    p2 = idle                    : {idle, trying};
    p2 = trying & p1 != critical : critical;
    p2 = critical                : idle;
    TRUE                         : p2;
  esac;
  next(turn) := case
    p1 = critical : TRUE;
    p2 = critical : FALSE;
    TRUE          : turn;
  esac;
`

func newTestServer(t *testing.T, maxSessions, nodeBudget int, dir string) *Server {
	t.Helper()
	cache, err := NewCache(maxSessions, nodeBudget, dir)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(cache)
}

func TestModelKeyDistinguishesSourceAndConfig(t *testing.T) {
	base := ModelKey(counterModel, Config{})
	if ModelKey(counterModel, Config{}) != base {
		t.Fatal("ModelKey not deterministic")
	}
	if ModelKey(counterModel+" ", Config{}) == base {
		t.Fatal("source change did not change the key")
	}
	if ModelKey(counterModel, Config{Workers: 4}) == base {
		t.Fatal("worker change did not change the key")
	}
	if ModelKey(counterModel, Config{NoComplement: true}) == base {
		t.Fatal("representation change did not change the key")
	}
	// workers 0 and 1 are the same engine.
	if ModelKey(counterModel, Config{Workers: 1}) != base {
		t.Fatal("workers 0 vs 1 must share a key")
	}
}

func TestHotSessionReuse(t *testing.T) {
	sv := newTestServer(t, 8, 0, "")
	req := &CheckRequest{
		Model: counterModel,
		Specs: []string{"AG AF n = 0", "AG EF n = 7", "AG n = 0"},
	}
	r1, err := sv.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Warm {
		t.Fatal("first query reported warm")
	}
	if r1.ReachableStates != 16 {
		t.Fatalf("reachable states = %v, want 16", r1.ReachableStates)
	}
	want := []bool{true, true, false}
	for i, v := range r1.Verdicts {
		if v.Error != "" {
			t.Fatalf("spec %q: %s", v.Spec, v.Error)
		}
		if v.Holds != want[i] {
			t.Fatalf("spec %q: holds=%v want %v", v.Spec, v.Holds, want[i])
		}
	}
	if !r1.Verdicts[2].Validated || r1.Verdicts[2].Trace == "" {
		t.Fatal("failing spec lacks a validated trace")
	}

	r2, err := sv.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Warm || r2.WarmSource != "" {
		t.Fatalf("second query not hot-warm: warm=%v source=%q", r2.Warm, r2.WarmSource)
	}
	for i, v := range r2.Verdicts {
		if v.Holds != r1.Verdicts[i].Holds {
			t.Fatalf("hot query diverged on %q", v.Spec)
		}
	}
	st := sv.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	// The shared checker's memo and the reachable cache did the reuse.
	ss := sv.Cache.Sessions()
	if len(ss) != 1 || ss[0].MemoHits == 0 {
		t.Fatalf("no memo hits recorded across queries: %+v", ss)
	}
}

func TestDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	req := &CheckRequest{Model: counterModel, Specs: []string{"AG AF n = 0"}}

	sv1 := newTestServer(t, 8, 0, dir)
	r1, err := sv1.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv1.Cache.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache over the same directory.
	sv2 := newTestServer(t, 8, 0, dir)
	r2, err := sv2.Check(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Warm || r2.WarmSource != "disk" {
		t.Fatalf("restarted query not disk-warm: warm=%v source=%q", r2.Warm, r2.WarmSource)
	}
	if r2.ReachableStates != r1.ReachableStates || r2.ReachIters != r1.ReachIters {
		t.Fatalf("warm restart changed reachability: %v/%d vs %v/%d",
			r2.ReachableStates, r2.ReachIters, r1.ReachableStates, r1.ReachIters)
	}
	if r2.Verdicts[0].Holds != r1.Verdicts[0].Holds {
		t.Fatal("warm restart changed the verdict")
	}
	// Reachability was skipped: the frontier fixpoint is the only Image
	// user in CTL checking, and this passing spec generated no witness.
	ss := sv2.Cache.Sessions()
	if len(ss) != 1 {
		t.Fatalf("got %d sessions", len(ss))
	}
	if ss[0].Rel.ImageCalls != 0 {
		t.Fatalf("warm restart ran %d image calls; reachability not skipped", ss[0].Rel.ImageCalls)
	}
	if st := sv2.Cache.Stats(); st.DiskWarmStarts != 1 {
		t.Fatalf("DiskWarmStarts = %d, want 1", st.DiskWarmStarts)
	}
}

func TestBadModelReported(t *testing.T) {
	sv := newTestServer(t, 8, 0, "")
	_, err := sv.Check(&CheckRequest{Model: "MODULE main\nVAR x : blorp(;"})
	if err == nil {
		t.Fatal("bad model accepted")
	}
	// The failed entry must not poison the cache: a good model compiles.
	if _, err := sv.Check(&CheckRequest{Model: counterModel, Specs: []string{"AG AF n = 0"}}); err != nil {
		t.Fatal(err)
	}
	// And retrying the bad model re-reports the error (fresh entry).
	if _, err := sv.Check(&CheckRequest{Model: "MODULE main\nVAR x : blorp(;"}); err == nil {
		t.Fatal("bad model accepted on retry")
	}
}

func TestLRUEviction(t *testing.T) {
	sv := newTestServer(t, 1, 0, "")
	if _, err := sv.Check(&CheckRequest{Model: counterModel, Specs: []string{"AG AF n = 0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Check(&CheckRequest{Model: mutexModel, Specs: []string{"AG !(p1 = critical & p2 = critical)"}}); err != nil {
		t.Fatal(err)
	}
	st := sv.Cache.Stats()
	if st.Sessions != 1 || st.EvictionsLRU != 1 {
		t.Fatalf("sessions=%d evictionsLRU=%d, want 1/1", st.Sessions, st.EvictionsLRU)
	}
	// The first model was evicted: querying it again is a miss.
	r, err := sv.Check(&CheckRequest{Model: counterModel, Specs: []string{"AG AF n = 0"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Warm {
		t.Fatal("evicted session served warm")
	}
}

func TestNodeBudgetEviction(t *testing.T) {
	sv := newTestServer(t, 8, 1, "") // 1-node budget: everything is over it
	r, err := sv.Check(&CheckRequest{Model: counterModel, Specs: []string{"AG AF n = 0"}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Evicted {
		t.Fatal("over-budget session not evicted")
	}
	if st := sv.Cache.Stats(); st.EvictionsBudget != 1 || st.Sessions != 0 {
		t.Fatalf("evictionsBudget=%d sessions=%d, want 1/0", st.EvictionsBudget, st.Sessions)
	}
}

func TestDeadlineExpiredSpecsReported(t *testing.T) {
	sv := newTestServer(t, 8, 0, "")
	// Warm the session so the deadline test measures spec dispatch, not
	// compilation.
	if _, err := sv.Check(&CheckRequest{Model: counterModel, Specs: []string{"AG AF n = 0"}}); err != nil {
		t.Fatal(err)
	}
	r, err := sv.Check(&CheckRequest{
		Model:      counterModel,
		Specs:      []string{"AG AF n = 0", "AG EF n = 7"},
		DeadlineMs: -1, // sub-millisecond budgets cannot be expressed; use the past
	})
	// DeadlineMs <= 0 falls back to the server default (none), so this
	// request succeeds; now pin an expired deadline through MaxDeadline.
	if err != nil {
		t.Fatal(err)
	}
	sv.MaxDeadline = 1 // 1ns: expires before the first spec
	r, err = sv.Check(&CheckRequest{
		Model: counterModel,
		Specs: []string{"AG AF n = 0", "AG EF n = 7"},
	})
	if err != nil {
		// The session lock itself may time out; that is also a correct
		// deadline outcome.
		if !strings.HasPrefix(err.Error(), "smvd: deadline exceeded") {
			t.Fatal(err)
		}
		return
	}
	for _, v := range r.Verdicts {
		if v.Error != "smvd: deadline exceeded" {
			t.Fatalf("spec %q not deadline-failed: %+v", v.Spec, v)
		}
	}
}

func TestLTLQuery(t *testing.T) {
	sv := newTestServer(t, 8, 0, "")
	r, err := sv.Check(&CheckRequest{
		Model: counterModel,
		LTL:   []string{"G F n = 0", "G n = 0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Verdicts) != 2 {
		t.Fatalf("got %d verdicts", len(r.Verdicts))
	}
	if v := r.Verdicts[0]; !v.Holds || v.Error != "" {
		t.Fatalf("G F n = 0 should hold: %+v", v)
	}
	if v := r.Verdicts[1]; v.Holds || v.Error != "" || !v.Validated {
		t.Fatalf("G n = 0 should fail with a validated lasso: %+v", v)
	}
}
