package smvd

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is the bounded in-memory session cache: a map from model key to
// session with LRU ordering, an optional per-session node budget, and
// an optional disk cache consulted on miss (warm start) and written on
// eviction and shutdown.
type Cache struct {
	max        int
	nodeBudget int
	disk       *diskCache

	mu       sync.Mutex
	sessions map[string]*entry
	order    *list.List // front = most recently used

	// Counters are atomics so /statsz never contends with compilation.
	hits            atomic.Uint64
	misses          atomic.Uint64
	diskWarmStarts  atomic.Uint64
	compileErrors   atomic.Uint64
	evictionsLRU    atomic.Uint64
	evictionsBudget atomic.Uint64
}

type entry struct {
	key  string
	once sync.Once
	sess *Session
	err  error
	elem *list.Element
}

// CacheStats is the cache-wide block of /statsz.
type CacheStats struct {
	Sessions        int    `json:"sessions"`
	MaxSessions     int    `json:"max_sessions"`
	NodeBudget      int    `json:"node_budget,omitempty"`
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	DiskWarmStarts  uint64 `json:"disk_warm_starts"`
	CompileErrors   uint64 `json:"compile_errors"`
	EvictionsLRU    uint64 `json:"evictions_lru"`
	EvictionsBudget uint64 `json:"evictions_budget"`
}

// NewCache builds a session cache holding at most max sessions (min 1),
// evicting any session whose manager exceeds nodeBudget live nodes
// after a query (0: unbounded), persisting warm-start records under
// diskDir ("": no disk cache).
func NewCache(max, nodeBudget int, diskDir string) (*Cache, error) {
	if max < 1 {
		max = 1
	}
	disk, err := newDiskCache(diskDir)
	if err != nil {
		return nil, err
	}
	return &Cache{
		max:        max,
		nodeBudget: nodeBudget,
		disk:       disk,
		sessions:   map[string]*entry{},
		order:      list.New(),
	}, nil
}

// Get returns the session for the given source and config, compiling it
// (and consulting the disk cache) on miss. Concurrent requests for the
// same key share one compilation; requests for different keys compile
// in parallel.
func (c *Cache) Get(src string, cfg Config) (*Session, error) {
	key := ModelKey(src, cfg)
	c.mu.Lock()
	e, ok := c.sessions[key]
	if ok {
		c.order.MoveToFront(e.elem)
	} else {
		e = &entry{key: key}
		c.sessions[key] = e
		e.elem = c.order.PushFront(e)
	}
	c.mu.Unlock()

	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		sess, err := newSession(key, src, cfg)
		// Publish under the cache lock: evictors reach e.sess through the
		// map while holding it, concurrently with this write.
		c.mu.Lock()
		e.sess, e.err = sess, err
		c.mu.Unlock()
		if err != nil {
			c.compileErrors.Add(1)
			c.remove(e)
			return
		}
		// The session is visible in the map but every other request for
		// this key is blocked on this once, so the warm start runs
		// exclusively.
		if warm, err := c.disk.load(sess); err == nil && warm {
			c.diskWarmStarts.Add(1)
		}
		c.evictOverflow()
	})
	return e.sess, e.err
}

// remove drops the entry from the map and the LRU list.
func (c *Cache) remove(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.sessions[e.key]; ok && cur == e {
		delete(c.sessions, e.key)
		c.order.Remove(e.elem)
	}
}

// evictOverflow evicts least-recently-used sessions until the cache
// fits its bound. Evicted sessions are only unlinked — an in-flight
// query on one finishes safely on its private pointer — and their
// warm-start records are flushed in the background once the session
// lock frees up.
func (c *Cache) evictOverflow() {
	var victims []*Session
	c.mu.Lock()
	for c.order.Len() > c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		v := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.sessions, v.key)
		c.evictionsLRU.Add(1)
		// A still-compiling victim has a nil sess (its own once holds the
		// only reference); there is nothing to flush for it.
		if v.sess != nil {
			victims = append(victims, v.sess)
		}
	}
	c.mu.Unlock()
	for _, s := range victims {
		c.flushAsync(s)
	}
}

// EvictOverBudget evicts the session if its manager outgrew the node
// budget, returning whether it did. Called by the server after each
// query, with the session lock already released.
func (c *Cache) EvictOverBudget(s *Session, liveNodes int) bool {
	if c.nodeBudget <= 0 || liveNodes <= c.nodeBudget {
		return false
	}
	c.mu.Lock()
	e, ok := c.sessions[s.Key]
	if ok && e.sess == s {
		delete(c.sessions, s.Key)
		c.order.Remove(e.elem)
	}
	c.mu.Unlock()
	if ok {
		c.evictionsBudget.Add(1)
		c.flushAsync(s)
	}
	return ok
}

// flushAsync persists an evicted session's warm-start record without
// blocking the evictor on the session lock.
func (c *Cache) flushAsync(s *Session) {
	if c.disk == nil || s == nil {
		return
	}
	go func() {
		s.mu <- struct{}{}
		defer s.unlock()
		_ = c.disk.save(s)
	}()
}

// FlushAll persists every cached session's warm-start record — the
// graceful-shutdown path. Blocks until all sessions are idle and
// written.
func (c *Cache) FlushAll() error {
	if c.disk == nil {
		return nil
	}
	c.mu.Lock()
	var all []*Session
	for _, e := range c.sessions {
		if e.sess != nil {
			all = append(all, e.sess)
		}
	}
	c.mu.Unlock()
	var firstErr error
	for _, s := range all {
		s.mu <- struct{}{}
		err := c.disk.save(s)
		s.unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats snapshots the cache-wide counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.sessions)
	c.mu.Unlock()
	return CacheStats{
		Sessions:        n,
		MaxSessions:     c.max,
		NodeBudget:      c.nodeBudget,
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		DiskWarmStarts:  c.diskWarmStarts.Load(),
		CompileErrors:   c.compileErrors.Load(),
		EvictionsLRU:    c.evictionsLRU.Load(),
		EvictionsBudget: c.evictionsBudget.Load(),
	}
}

// Sessions snapshots per-session stats for /statsz. Sessions busy with
// a query are skipped rather than blocked on.
func (c *Cache) Sessions() []SessionStats {
	c.mu.Lock()
	var all []*Session
	for e := c.order.Front(); e != nil; e = e.Next() {
		if s := e.Value.(*entry).sess; s != nil {
			all = append(all, s)
		}
	}
	c.mu.Unlock()
	var out []SessionStats
	for _, s := range all {
		select {
		case s.mu <- struct{}{}:
			out = append(out, s.stats())
			s.unlock()
		default:
			// Busy with a query: only immutable fields are safe to read.
			out = append(out, SessionStats{Key: s.Key, Busy: true})
		}
	}
	return out
}
