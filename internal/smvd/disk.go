package smvd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"repro/internal/bdd"
	"time"
)

// On-disk warm-start cache. A model's record is two files keyed by its
// content hash:
//
//	<key>.bdd   serialize v3: variable order + named roots "reach", "fair"
//	<key>.json  diskMeta (frontier iterations, engine config, timestamps)
//
// The .bdd is written first and the .json last, both via temp+rename,
// so a crash mid-write leaves either no record or a complete one; the
// loader treats the meta file as the commit marker.

const (
	rootReach = "reach"
	rootFair  = "fair"
)

type diskMeta struct {
	Key        string `json:"key"`
	Config     Config `json:"config"`
	ReachIters int    `json:"reach_iters"`
	SavedAt    int64  `json:"saved_at_unix"`
}

type diskCache struct {
	dir string
}

func newDiskCache(dir string) (*diskCache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskCache{dir: dir}, nil
}

func (d *diskCache) bddPath(key string) string  { return filepath.Join(d.dir, key+".bdd") }
func (d *diskCache) metaPath(key string) string { return filepath.Join(d.dir, key+".json") }

// save writes the session's warm-start record. Caller holds the session
// lock. Sessions that never ran their fixpoints have nothing worth
// persisting and are skipped silently.
func (d *diskCache) save(s *Session) error {
	if d == nil {
		return nil
	}
	reach, fair, iters, ok := s.warmRefs()
	if !ok {
		return nil
	}
	return d.saveRefs(s.Key, s.Cfg, s.compiled.S.M, reach, fair, iters)
}

// saveRefs writes one warm-start record from raw roots.
func (d *diskCache) saveRefs(key string, cfg Config, m *bdd.Manager, reach, fair bdd.Ref, iters int) error {
	if err := writeAtomic(d.bddPath(key), func(f *os.File) error {
		return m.SaveNamed(f, []bdd.NamedRoot{
			{Name: rootReach, Ref: reach},
			{Name: rootFair, Ref: fair},
		})
	}); err != nil {
		return err
	}
	meta := diskMeta{Key: key, Config: cfg, ReachIters: iters, SavedAt: time.Now().Unix()}
	return writeAtomic(d.metaPath(key), func(f *os.File) error {
		return json.NewEncoder(f).Encode(&meta)
	})
}

// load warm-starts the session from its record, if one exists. Returns
// whether the session was seeded. Caller holds the session lock (or
// has exclusivity by construction). A corrupt or mismatched record is
// reported as an error but leaves the session cold and usable.
func (d *diskCache) load(s *Session) (bool, error) {
	if d == nil {
		return false, nil
	}
	reach, fair, iters, ok, err := d.loadRefs(s.Key, s.compiled.S.M)
	if err != nil || !ok {
		return false, err
	}
	s.warmStart(reach, fair, iters)
	return true, nil
}

// loadRefs restores the record's roots into m, adopting the saved
// variable order. ok is false (with a nil error) when no record exists.
func (d *diskCache) loadRefs(key string, m *bdd.Manager) (reach, fair bdd.Ref, iters int, ok bool, err error) {
	mf, err := os.Open(d.metaPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, 0, false, err
	}
	var meta diskMeta
	err = json.NewDecoder(mf).Decode(&meta)
	mf.Close()
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("smvd: corrupt meta record for %.12s: %w", key, err)
	}
	if meta.Key != key {
		return 0, 0, 0, false, fmt.Errorf("smvd: meta record key mismatch for %.12s", key)
	}
	bf, err := os.Open(d.bddPath(key))
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer bf.Close()
	// Adopting the saved order replays the sifted order of the process
	// that wrote the record — the dynamic-reordering work is paid once
	// per model, ever.
	roots, err := m.LoadNamed(bf, true)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("smvd: corrupt warm-start record for %.12s: %w", key, err)
	}
	var haveReach, haveFair bool
	for _, r := range roots {
		switch r.Name {
		case rootReach:
			reach, haveReach = r.Ref, true
		case rootFair:
			fair, haveFair = r.Ref, true
		}
	}
	if !haveReach || !haveFair {
		return 0, 0, 0, false, fmt.Errorf("smvd: warm-start record for %.12s missing named roots", key)
	}
	return reach, fair, meta.ReachIters, true, nil
}

// DiskStore is the single-shot face of the warm-start record store, for
// clients like `smv -cache-dir` that check one model and exit. It uses
// the same key scheme and file format as a running smvd over the same
// directory, so the two interoperate: a record written by either warms
// the other.
type DiskStore struct{ d *diskCache }

// OpenDiskStore opens (creating if needed) a warm-start directory.
func OpenDiskStore(dir string) (*DiskStore, error) {
	d, err := newDiskCache(dir)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("smvd: empty cache directory")
	}
	return &DiskStore{d: d}, nil
}

// Load restores the warm-start roots for key into m, adopting the saved
// variable order. ok is false with a nil error when no record exists.
func (st *DiskStore) Load(key string, m *bdd.Manager) (reach, fair bdd.Ref, iters int, ok bool, err error) {
	return st.d.loadRefs(key, m)
}

// Save writes (or refreshes) the warm-start record for key.
func (st *DiskStore) Save(key string, cfg Config, m *bdd.Manager, reach, fair bdd.Ref, iters int) error {
	return st.d.saveRefs(key, cfg, m, reach, fair, iters)
}

// writeAtomic writes via a temp file in the same directory plus rename.
func writeAtomic(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
