// Package smvd is the persistent model-checking service: a compiled
// SMV model, its variable order, its reachable-state set and its
// fair-state set are expensive to produce and cheap to keep, so the
// service keeps them — in memory across queries (sessions keyed by a
// content hash of source + engine configuration) and on disk across
// process restarts (serialize v3 warm-start records). This is the
// paper's reuse idea lifted one level: where Section 6 replays fixpoint
// frontiers to get counterexamples almost for free, the server replays
// whole verification artifacts to get *re-verification* almost for
// free.
package smvd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Config is the engine configuration a session is compiled under. Two
// queries share a session only when both the SMV source and the config
// agree: image mode, worker count and node representation all change
// the BDDs a session holds, so they are part of the cache key.
type Config struct {
	// Disjunctive selects the per-process disjunctive image when the
	// model declares processes (ignored otherwise, matching cmd/smv).
	Disjunctive bool `json:"disjunctive,omitempty"`
	// Workers is the parallel-engine worker count (<=1: sequential).
	Workers int `json:"workers,omitempty"`
	// Reorder enables growth-triggered dynamic variable reordering.
	Reorder bool `json:"reorder,omitempty"`
	// NoComplement compiles onto the legacy structural representation.
	NoComplement bool `json:"no_complement,omitempty"`
}

// normalize maps equivalent configs onto one representative so they
// hash identically (workers 0 and 1 are both "sequential").
func (c Config) normalize() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// ModelKey is the content hash identifying a session: SHA-256 over the
// SMV source and the normalized engine configuration. Any edit to the
// model text — including comments — yields a new key; specs do not
// participate, since they arrive with queries, not with the model.
func ModelKey(src string, cfg Config) string {
	cfg = cfg.normalize()
	h := sha256.New()
	h.Write([]byte(src))
	fmt.Fprintf(h, "\x00disj=%v workers=%d reorder=%v nocomp=%v",
		cfg.Disjunctive, cfg.Workers, cfg.Reorder, cfg.NoComplement)
	return hex.EncodeToString(h.Sum(nil))
}
