package bdd

import (
	"math/rand"
	"testing"
	"time"
)

// Tests for the in-place adjacent-level swap engine (swap.go): the swap
// primitive against a truth-table oracle with invariants checked after
// every swap, the in-place driver against the rebuild driver from
// identical seeds, Ref stability outside a swapped pair, the lazy
// cache-invalidation granularity, and the SiftMaxTime budget.

// sessionFor protects the roots and opens a swap session the way
// SiftNow would (GC first so the refcounts see only live nodes).
func sessionFor(m *Manager, roots []Ref) {
	for _, r := range roots {
		m.Protect(r)
	}
	m.GC()
	m.beginSwapSession()
}

func TestSwapLevelsPreservesSemantics(t *testing.T) {
	const n = 6
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := New(n)
		roots := make([]Ref, 0, 3)
		tables := make([]bitTable, 0, 3)
		for i := 0; i < 3; i++ {
			f, tt := randTracked(r, m, n, 4)
			roots = append(roots, f)
			tables = append(tables, tt)
		}
		sessionFor(m, roots)
		for step := 0; step < 40; step++ {
			l := r.Intn(n - 1)
			m.swapLevels(l)
			if err := CheckInvariants(m); err != nil {
				t.Fatalf("seed %d step %d swap(%d): %v", seed, step, l, err)
			}
			for i, f := range roots {
				checkRootTable(t, m, f, tables[i], "after swap")
			}
		}
		m.endSwapSession()
		m.GC()
		if err := CheckInvariants(m); err != nil {
			t.Fatalf("seed %d after session: %v", seed, err)
		}
		for i, f := range roots {
			checkRootTable(t, m, f, tables[i], "after session")
		}
	}
}

// TestSwapRefStability pins the headline property of the in-place swap:
// a swap of levels l/l+1 leaves every root-reachable Ref whose top
// level is outside the pair with a bit-identical (level, low, high)
// triple, and every reachable Ref — inside the pair too — denoting the
// same function.
func TestSwapRefStability(t *testing.T) {
	const n = 6
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		m := New(n)
		roots := make([]Ref, 0, 3)
		for i := 0; i < 3; i++ {
			f, _ := randTracked(r, m, n, 4)
			roots = append(roots, f)
		}
		sessionFor(m, roots)
		for step := 0; step < 15; step++ {
			l := r.Intn(n - 1)

			// Track plain (sign-stripped) refs: f and ¬f are one node.
			reach := make(map[Ref]node)
			var walk func(Ref)
			walk = func(f Ref) {
				f &^= compBit
				if f == 0 {
					return
				}
				if _, ok := reach[f]; ok {
					return
				}
				nd := m.nodes[f]
				reach[f] = nd
				walk(nd.low)
				walk(nd.high)
			}
			for _, f := range roots {
				walk(f)
			}
			before := make(map[Ref]bitTable, len(reach))
			for f := range reach {
				tt := newBitTable(n)
				for a := 0; a < 1<<n; a++ {
					tt.set(a, m.Eval(f, envFor(n, a)))
				}
				before[f] = tt
			}

			m.swapLevels(l)

			for f, nd := range reach {
				got := m.nodes[f]
				if got.lvl == terminalLevel {
					// Freed by the swap's cascade: legal only for nodes
					// that genuinely lost their last reference.
					if m.sift.rc[f] != 0 {
						t.Fatalf("seed %d swap(%d): ref %d freed with refcount %d",
							seed, l, f, m.sift.rc[f])
					}
					continue
				}
				if int(nd.lvl) != l && int(nd.lvl) != l+1 {
					if got.lvl != nd.lvl || got.low != nd.low || got.high != nd.high {
						t.Fatalf("seed %d swap(%d): ref %d at level %d changed: (%d,%d,%d) -> (%d,%d,%d)",
							seed, l, f, nd.lvl, nd.lvl, nd.low, nd.high, got.lvl, got.low, got.high)
					}
				}
				tt := before[f]
				for a := 0; a < 1<<n; a++ {
					if m.Eval(f, envFor(n, a)) != tt.get(a) {
						t.Fatalf("seed %d swap(%d): ref %d changed denotation at %b", seed, l, f, a)
					}
				}
			}
		}
		m.endSwapSession()
	}
}

// TestInPlaceVsRebuildSiftDifferential seeds two managers identically,
// sifts one in place and one through the rebuild oracle, and requires
// semantically equal roots and clean invariants from both.
func TestInPlaceVsRebuildSiftDifferential(t *testing.T) {
	const n = 6
	for seed := int64(0); seed < 15; seed++ {
		mgrs := [2]*Manager{}
		roots := [2][]Ref{}
		var tables []bitTable
		for e := 0; e < 2; e++ {
			r := rand.New(rand.NewSource(1000 + seed)) // same stream for both engines
			m := New(n)
			if seed%2 == 0 {
				m.GroupVars(0, 1)
				m.GroupVars(2, 3)
			}
			var tts []bitTable
			for i := 0; i < 4; i++ {
				f, tt := randTracked(r, m, n, 4)
				roots[e] = append(roots[e], f)
				tts = append(tts, tt)
			}
			tables = tts
			m.RegisterRefs(&roots[e][0], &roots[e][1], &roots[e][2], &roots[e][3])
			m.EnableAutoReorder(&ReorderOptions{MinNodes: 1, UseRebuildSift: e == 1})
			mgrs[e] = m
		}
		for e, m := range mgrs {
			m.SiftNow()
			if err := CheckInvariants(m); err != nil {
				t.Fatalf("seed %d engine %d: %v", seed, e, err)
			}
			for i, f := range roots[e] {
				checkRootTable(t, m, f, tables[i], "after sift")
			}
		}
		if mgrs[0].Stats.SiftSwaps == 0 && mgrs[0].Stats.SiftTrials > 0 {
			t.Fatalf("seed %d: in-place engine ran %d trials without a single swap",
				seed, mgrs[0].Stats.SiftTrials)
		}
	}
}

// TestSiftCacheGranularity guards the invalidation granularity: a sift
// event that commits no swap must keep the operation caches warm, and
// after a committed sift the Apply cache must fill and hit again rather
// than collapse (entries keyed by surviving Refs stay meaningful).
func TestSiftCacheGranularity(t *testing.T) {
	// One block only: the driver has nothing to move, so no swap runs.
	m := New(4)
	m.GroupVars(0, 1, 2, 3)
	f := m.Protect(m.Xor(m.Var(0), m.Var(1)))
	g := m.Protect(m.Xor(m.Var(2), m.Var(3)))
	h := m.Protect(m.And(f, g))
	m.EnableAutoReorder(&ReorderOptions{MinNodes: 1})

	m.GC()      // flush construction garbage so the sift's GC frees nothing
	m.And(f, g) // prime the cache (all result nodes already live via h)
	hits := m.Stats.CacheHits
	m.SiftNow()
	if m.Stats.SiftSwaps != 0 {
		t.Fatalf("single-block sift ran %d swaps", m.Stats.SiftSwaps)
	}
	if m.And(f, g) != h {
		t.Fatal("cached op changed value")
	}
	if m.Stats.CacheHits == hits {
		t.Fatal("no-swap sift dropped the op caches: repeated And missed")
	}

	// Committed sift: caches are rebuilt on demand and must hit again.
	m2 := New(6)
	r := rand.New(rand.NewSource(8))
	a, _ := randTracked(r, m2, 6, 4)
	b, _ := randTracked(r, m2, 6, 4)
	m2.Protect(a)
	m2.Protect(b)
	m2.EnableAutoReorder(&ReorderOptions{MinNodes: 1})
	m2.SiftNow()
	if m2.Stats.SiftSwaps == 0 {
		t.Skip("sift moved nothing; nothing to check")
	}
	m2.And(a, b)
	lookups, hits2 := m2.Stats.CacheLookups, m2.Stats.CacheHits
	m2.And(a, b)
	if m2.Stats.CacheLookups == lookups {
		t.Fatal("second And made no cache lookup")
	}
	if m2.Stats.CacheHits == hits2 {
		t.Fatal("apply cache does not hit after a committed sift")
	}
}

func TestSiftMaxTimeBudget(t *testing.T) {
	const n = 6
	r := rand.New(rand.NewSource(9))
	m := New(n)
	roots := make([]Ref, 0, 3)
	tables := make([]bitTable, 0, 3)
	for i := 0; i < 3; i++ {
		f, tt := randTracked(r, m, n, 4)
		roots = append(roots, m.Protect(f))
		tables = append(tables, tt)
	}
	m.EnableAutoReorder(&ReorderOptions{MinNodes: 1, SiftMaxTime: time.Nanosecond})
	m.SiftNow()
	if m.Stats.SiftTimeouts == 0 {
		t.Fatal("nanosecond budget did not time the sift out")
	}
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	for i, f := range roots {
		checkRootTable(t, m, f, tables[i], "after timed-out sift")
	}
}

func TestLevelCountsAndTopLevels(t *testing.T) {
	const n = 6
	r := rand.New(rand.NewSource(11))
	m := New(n)
	for i := 0; i < 3; i++ {
		f, _ := randTracked(r, m, n, 4)
		m.Protect(f)
	}
	check := func(when string) {
		t.Helper()
		counts := m.LevelCounts()
		scan := make([]int, n)
		total := 0
		for i := 1; i < len(m.nodes); i++ {
			if lvl := m.nodes[i].lvl &^ markBit; lvl != terminalLevel {
				scan[lvl]++
				total++
			}
		}
		for l := 0; l < n; l++ {
			if counts[l] != scan[l] {
				t.Fatalf("%s: LevelCounts[%d] = %d, arena scan says %d", when, l, counts[l], scan[l])
			}
		}
		if total != m.NumNodes()-1 {
			t.Fatalf("%s: counts sum %d, live non-terminals %d", when, total, m.NumNodes()-1)
		}
		top := m.TopLevels(3)
		for i := 1; i < len(top); i++ {
			if top[i].Count > top[i-1].Count {
				t.Fatalf("%s: TopLevels not sorted: %+v", when, top)
			}
		}
		for _, lo := range top {
			if counts[lo.Level] != lo.Count || m.VarAtLevel(lo.Level) != lo.Var {
				t.Fatalf("%s: TopLevels entry %+v disagrees with LevelCounts/order", when, lo)
			}
		}
	}
	check("fresh")
	m.GC()
	check("after GC")
	m.EnableAutoReorder(&ReorderOptions{MinNodes: 1})
	m.SiftNow()
	check("after sift")
}

// FuzzSwap drives random swap sequences against an unswapped reference
// manager holding the same functions.
func FuzzSwap(f *testing.F) {
	f.Add(uint16(0xBEEF), uint32(0xCAFEBABE), []byte{0, 1, 2, 3, 2, 1, 0})
	f.Add(uint16(0x1234), uint32(7), []byte{3, 3, 3, 3})
	f.Add(uint16(0xFFFF), uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, bitsA uint16, bitsB uint32, swaps []byte) {
		const n = 5
		if len(swaps) > 32 {
			swaps = swaps[:32]
		}
		m := New(n)
		ref := New(n)
		fa := m.Protect(fromTruthTable(m, n, uint64(bitsA)))
		fb := m.Protect(fromTruthTable(m, n, uint64(bitsB)))
		ra := ref.fromTT(t, n, uint64(bitsA))
		rb := ref.fromTT(t, n, uint64(bitsB))
		m.GC()
		m.beginSwapSession()
		for _, b := range swaps {
			m.swapLevels(int(b) % (n - 1))
			if err := CheckInvariants(m); err != nil {
				t.Fatal(err)
			}
		}
		m.endSwapSession()
		for a := 0; a < 1<<n; a++ {
			env := envFor(n, a)
			if m.Eval(fa, env) != ref.Eval(ra, env) {
				t.Fatalf("root A diverged from reference at assignment %b", a)
			}
			if m.Eval(fb, env) != ref.Eval(rb, env) {
				t.Fatalf("root B diverged from reference at assignment %b", a)
			}
		}
	})
}

// fromTT is fromTruthTable with the *testing.T threaded for symmetry in
// the fuzz body.
func (m *Manager) fromTT(t *testing.T, n int, bits uint64) Ref {
	t.Helper()
	return fromTruthTable(m, n, bits)
}
