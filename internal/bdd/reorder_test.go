package bdd

import (
	"math/rand"
	"testing"
)

// Dynamic-reordering correctness suite. The central property: after any
// sequence of operations, auto-sift events and explicit sifts, every
// ref registered with the reorder registry still denotes the same
// boolean function, verified pointwise against an independently
// maintained truth table over all 2^n assignments.

// bitTable is an explicit truth table over n <= 12 variables: bit a of
// the table (assignment a, bit v of a = variable v) is the function's
// value.
type bitTable struct {
	n    int
	bits []uint64
}

func newBitTable(n int) bitTable {
	return bitTable{n: n, bits: make([]uint64, ((1<<n)+63)/64)}
}

func (t bitTable) get(a int) bool { return t.bits[a/64]>>(a%64)&1 == 1 }
func (t *bitTable) set(a int, v bool) {
	if v {
		t.bits[a/64] |= 1 << (a % 64)
	} else {
		t.bits[a/64] &^= 1 << (a % 64)
	}
}

func (t bitTable) apply(u bitTable, op func(a, b bool) bool) bitTable {
	out := newBitTable(t.n)
	for a := 0; a < 1<<t.n; a++ {
		out.set(a, op(t.get(a), u.get(a)))
	}
	return out
}

// randTracked builds a random BDD alongside its truth table.
func randTracked(r *rand.Rand, m *Manager, n, depth int) (Ref, bitTable) {
	if depth == 0 || r.Intn(4) == 0 {
		v := r.Intn(n)
		tt := newBitTable(n)
		for a := 0; a < 1<<n; a++ {
			tt.set(a, a>>v&1 == 1)
		}
		if r.Intn(2) == 0 {
			return m.Var(v), tt
		}
		neg := tt.apply(tt, func(a, _ bool) bool { return !a })
		return m.NVar(v), neg
	}
	f1, t1 := randTracked(r, m, n, depth-1)
	f2, t2 := randTracked(r, m, n, depth-1)
	switch r.Intn(4) {
	case 0:
		return m.And(f1, f2), t1.apply(t2, func(a, b bool) bool { return a && b })
	case 1:
		return m.Or(f1, f2), t1.apply(t2, func(a, b bool) bool { return a || b })
	case 2:
		return m.Xor(f1, f2), t1.apply(t2, func(a, b bool) bool { return a != b })
	default:
		return m.Eq(f1, f2), t1.apply(t2, func(a, b bool) bool { return a == b })
	}
}

func envFor(n, a int) []bool {
	env := make([]bool, n)
	for v := 0; v < n; v++ {
		env[v] = a>>v&1 == 1
	}
	return env
}

func checkRootTable(t *testing.T, m *Manager, f Ref, tt bitTable, what string) {
	t.Helper()
	for a := 0; a < 1<<tt.n; a++ {
		if m.Eval(f, envFor(tt.n, a)) != tt.get(a) {
			t.Fatalf("%s: mismatch at assignment %b", what, a)
		}
	}
}

// TestAutoReorderPreservesRegisteredRoots is the reorder property test:
// 300 random BDDs (including negations), built across 30 managers with
// aggressive auto-sifting enabled, every root registered; at random
// trigger points the growth check fires a sift, and after every sift
// event — and at the end — every registered root must still equal its
// truth table and the manager must pass CheckInvariants.
func TestAutoReorderPreservesRegisteredRoots(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const trials = 30
	const rootsPerTrial = 10
	for trial := 0; trial < trials; trial++ {
		n := 4 + r.Intn(9) // 4..12 variables
		m := New(n)
		// Pair-group half the managers so grouped and ungrouped sifting
		// both get exercised.
		if trial%2 == 0 && n%2 == 0 {
			for v := 0; v < n; v += 2 {
				m.GroupVars(v, v+1)
			}
		}
		m.EnableAutoReorder(&ReorderOptions{GrowthTrigger: 1.05, MinNodes: 1})

		roots := make([]Ref, 0, rootsPerTrial)
		tables := make([]bitTable, 0, rootsPerTrial)
		id := m.OnReorder(func(translate func(Ref) Ref) {
			for i := range roots {
				roots[i] = translate(roots[i])
			}
		})

		sifts := m.Stats.AutoReorders
		for i := 0; i < rootsPerTrial; i++ {
			f, tt := randTracked(r, m, n, 3+r.Intn(3))
			if i%3 == 2 { // negation cases
				f = m.Not(f)
				tt = tt.apply(tt, func(a, _ bool) bool { return !a })
			}
			roots = append(roots, f)
			tables = append(tables, tt)
			if r.Intn(2) == 0 {
				// Random trigger point: the growth check may fire here.
				m.ReorderIfNeeded()
			}
			if m.Stats.AutoReorders != sifts {
				sifts = m.Stats.AutoReorders
				if err := CheckInvariants(m); err != nil {
					t.Fatalf("trial %d after auto-sift: %v", trial, err)
				}
				for j := range roots {
					checkRootTable(t, m, roots[j], tables[j], "after auto-sift")
				}
			}
		}
		// Force one final explicit sift and re-verify everything.
		m.SiftNow()
		if err := CheckInvariants(m); err != nil {
			t.Fatalf("trial %d after final sift: %v", trial, err)
		}
		for j := range roots {
			checkRootTable(t, m, roots[j], tables[j], "after final sift")
		}
		m.Unregister(id)
	}
}

// TestSiftRewritesRegisteredRefs is the regression test for the
// dangling-ref bug of the pre-registry Sift: a Ref held by a client but
// not passed in the roots slice was silently invalidated by the rebuild.
// With the live-root registry, registered refs are rewritten in place.
func TestSiftRewritesRegisteredRefs(t *testing.T) {
	m := New(6)
	// f is the interleaving blowup Sift reorders; g is held by a
	// "different client" and only registered, not passed to Sift.
	f := m.AndN(
		m.Eq(m.Var(0), m.Var(3)),
		m.Eq(m.Var(1), m.Var(4)),
		m.Eq(m.Var(2), m.Var(5)),
	)
	g := m.Xor(m.Var(0), m.Var(5))
	gBefore := g
	id := m.RegisterRefs(&g)
	defer m.Unregister(id)

	roots := m.Sift([]Ref{f})
	if m.Stats.Reorderings == 0 {
		t.Fatal("sift committed no reorder; blowup case should move variables")
	}
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	// The registered ref was rewritten and still denotes x0 xor x5.
	for a := 0; a < 1<<6; a++ {
		env := envFor(6, a)
		if m.Eval(g, env) != (env[0] != env[5]) {
			t.Fatalf("registered ref wrong after sift at assignment %b", a)
		}
		if m.Eval(roots[0], env) != ((env[0] == env[3]) && (env[1] == env[4]) && (env[2] == env[5])) {
			t.Fatalf("sifted root wrong at assignment %b", a)
		}
	}
	if g == gBefore {
		t.Log("ref unchanged by reorder (same index under both orders); semantic check above still binds")
	}
}

// TestGroupVarsBlocksStayAdjacent: grouped pairs must be adjacent after
// sifting, in the registered within-group order.
func TestGroupVarsBlocksStayAdjacent(t *testing.T) {
	m := New(8)
	for v := 0; v < 8; v += 2 {
		m.GroupVars(v, v+1)
	}
	// A function whose optimal order splits pairs if they may split.
	f := m.AndN(
		m.Eq(m.Var(0), m.Var(6)),
		m.Eq(m.Var(2), m.Var(4)),
		m.Xor(m.Var(1), m.Var(7)),
	)
	id := m.RegisterRefs(&f)
	defer m.Unregister(id)
	m.SiftNow()
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	order := m.Order()
	pos := make([]int, 8)
	for lvl, v := range order {
		pos[v] = lvl
	}
	for v := 0; v < 8; v += 2 {
		if pos[v+1] != pos[v]+1 {
			t.Fatalf("group (%d,%d) split: levels %d and %d (order %v)", v, v+1, pos[v], pos[v+1], order)
		}
	}
}

// TestGroupVarsValidation: out-of-range and doubly-grouped variables
// panic.
func TestGroupVarsValidation(t *testing.T) {
	m := New(4)
	m.GroupVars(0, 1)
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", what)
			}
		}()
		fn()
	}
	mustPanic("regroup", func() { m.GroupVars(1, 2) })
	mustPanic("out of range", func() { m.GroupVars(2, 7) })
}

// TestGrowthTriggerAndPause: the growth trigger fires only past the
// configured multiple of the post-last-sift size, and PauseAutoReorder
// suspends it.
func TestGrowthTriggerAndPause(t *testing.T) {
	m := New(10)
	m.EnableAutoReorder(&ReorderOptions{GrowthTrigger: 1.1, MinNodes: 1})
	if m.ReorderIfNeeded() {
		t.Fatal("trigger fired on an empty manager")
	}
	var f Ref = True
	id := m.RegisterRefs(&f)
	defer m.Unregister(id)
	for i := 0; i < 10; i++ {
		f = m.And(f, m.Xor(m.Var(i), m.Var((i+3)%10)))
	}
	resume := m.PauseAutoReorder()
	if m.ReorderIfNeeded() {
		t.Fatal("trigger fired while paused")
	}
	resume()
	if !m.ReorderIfNeeded() {
		t.Fatal("trigger did not fire after growth")
	}
	if m.Stats.AutoReorders != 1 {
		t.Fatalf("AutoReorders = %d, want 1", m.Stats.AutoReorders)
	}
	// Immediately after a sift the live count equals the baseline; the
	// trigger must not re-fire.
	if m.ReorderIfNeeded() {
		t.Fatal("trigger re-fired immediately after a sift")
	}
}

// TestRegisteredRefsSurviveGC: refs visible through the registry are GC
// roots even without Protect.
func TestRegisteredRefsSurviveGC(t *testing.T) {
	m := New(6)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(2)))
	id := m.RegisterRefs(&f)
	m.GC()
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	if !m.Eval(f, []bool{true, false, false, false, false, false}) {
		t.Fatal("registered ref collected by GC")
	}
	m.Unregister(id)
	m.GC()
	if m.NumNodes() != 1 {
		t.Fatalf("after unregister+GC, %d nodes live (want the terminal only)", m.NumNodes())
	}
}

// TestReorderStatsAccounting: a committed sift updates the counters the
// checker and cmd/smv surface.
func TestReorderStatsAccounting(t *testing.T) {
	m := New(6)
	f := m.AndN(
		m.Eq(m.Var(0), m.Var(3)),
		m.Eq(m.Var(1), m.Var(4)),
		m.Eq(m.Var(2), m.Var(5)),
	)
	id := m.RegisterRefs(&f)
	defer m.Unregister(id)
	m.SiftNow()
	if m.Stats.SiftPasses == 0 || m.Stats.SiftTrials == 0 {
		t.Fatalf("sift counters not updated: %+v", m.Stats)
	}
	if m.Stats.ReorderTime == 0 {
		t.Fatal("ReorderTime not accumulated")
	}
}

// FuzzSift: arbitrary truth tables over 6 variables, optional pair
// grouping, one auto plus one explicit sift; roots must survive
// semantically and the manager structurally.
func FuzzSift(f *testing.F) {
	f.Add(uint64(0xdeadbeefcafe), uint64(0x0123456789ab), true)
	f.Add(uint64(0), uint64(^uint64(0)), false)
	f.Add(uint64(0xaaaaaaaaaaaaaaaa), uint64(0x5555555555555555), true)
	f.Fuzz(func(t *testing.T, bitsA, bitsB uint64, group bool) {
		const n = 6
		m := New(n)
		if group {
			for v := 0; v < n; v += 2 {
				m.GroupVars(v, v+1)
			}
		}
		m.EnableAutoReorder(&ReorderOptions{GrowthTrigger: 1.01, MinNodes: 1})
		a := fromTruthTable(m, n, bitsA)
		b := fromTruthTable(m, n, bitsB)
		c := m.Not(m.And(a, b))
		id := m.RegisterRefs(&a, &b, &c)
		defer m.Unregister(id)
		m.ReorderIfNeeded()
		m.SiftNow()
		if err := CheckInvariants(m); err != nil {
			t.Fatal(err)
		}
		for asg := 0; asg < 1<<n; asg++ {
			env := envFor(n, asg)
			va := bitsA>>asg&1 == 1
			vb := bitsB>>asg&1 == 1
			if m.Eval(a, env) != va {
				t.Fatalf("root a wrong at %b", asg)
			}
			if m.Eval(b, env) != vb {
				t.Fatalf("root b wrong at %b", asg)
			}
			if m.Eval(c, env) != !(va && vb) {
				t.Fatalf("root c wrong at %b", asg)
			}
		}
	})
}
