package bdd

// Serialization of BDDs in a compact binary format, so that computed
// transition relations and reachable-state sets can be checkpointed and
// shared between runs. The format stores the variable order and the
// node triples of the reachable subgraph in topological order; loading
// replays mk() so the result is canonical in the target manager even if
// its arena layout differs.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const serialMagic = "GOBDD1\n"

// Save writes the given roots (and the manager's variable order) to w.
func (m *Manager) Save(w io.Writer, roots []Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(serialMagic); err != nil {
		return err
	}
	writeU32 := func(x uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], x)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := writeU32(uint32(m.NumVars())); err != nil {
		return err
	}
	for _, v := range m.level2var {
		if err := writeU32(uint32(v)); err != nil {
			return err
		}
	}

	// Topological order: children before parents.
	index := map[Ref]uint32{False: 0, True: 1}
	var order []Ref
	var visit func(Ref)
	visit = func(f Ref) {
		if _, ok := index[f]; ok {
			return
		}
		n := &m.nodes[f]
		visit(n.low)
		visit(n.high)
		index[f] = uint32(len(order) + 2)
		order = append(order, f)
	}
	for _, r := range roots {
		m.checkRef(r)
		visit(r)
	}

	if err := writeU32(uint32(len(order))); err != nil {
		return err
	}
	for _, f := range order {
		n := &m.nodes[f]
		if err := writeU32(n.lvl &^ markBit); err != nil {
			return err
		}
		if err := writeU32(index[n.low]); err != nil {
			return err
		}
		if err := writeU32(index[n.high]); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(len(roots))); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeU32(index[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads roots previously written by Save into the manager. The
// manager must have at least as many variables as the saved order; the
// saved levels are interpreted through the *saved* order, i.e. the
// function is reconstructed over the same variable indices it was
// built over (levels follow the target manager's current order).
func (m *Manager) Load(r io.Reader) ([]Ref, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(serialMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != serialMagic {
		return nil, errors.New("bdd: bad magic (not a saved BDD)")
	}
	readU32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	nvars, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(nvars) > m.NumVars() {
		return nil, fmt.Errorf("bdd: saved BDD uses %d variables, manager has %d", nvars, m.NumVars())
	}
	savedLevel2Var := make([]int, nvars)
	for i := range savedLevel2Var {
		v, err := readU32()
		if err != nil {
			return nil, err
		}
		if int(v) >= m.NumVars() {
			return nil, fmt.Errorf("bdd: saved variable %d out of range", v)
		}
		savedLevel2Var[i] = int(v)
	}

	nnodes, err := readU32()
	if err != nil {
		return nil, err
	}
	table := make([]Ref, nnodes+2)
	table[0] = False
	table[1] = True
	for i := uint32(0); i < nnodes; i++ {
		lvl, err := readU32()
		if err != nil {
			return nil, err
		}
		lowIdx, err := readU32()
		if err != nil {
			return nil, err
		}
		highIdx, err := readU32()
		if err != nil {
			return nil, err
		}
		if lvl >= nvars || lowIdx >= i+2 || highIdx >= i+2 {
			return nil, errors.New("bdd: corrupt node record")
		}
		v := savedLevel2Var[lvl]
		low, high := table[lowIdx], table[highIdx]
		// Rebuild through ITE so a different variable order in the
		// target manager still yields the correct (canonical) function.
		table[i+2] = m.ite3(m.Var(v), high, low)
	}
	nroots, err := readU32()
	if err != nil {
		return nil, err
	}
	roots := make([]Ref, nroots)
	for i := range roots {
		idx, err := readU32()
		if err != nil {
			return nil, err
		}
		if idx >= uint32(len(table)) {
			return nil, errors.New("bdd: corrupt root record")
		}
		roots[i] = table[idx]
	}
	return roots, nil
}
