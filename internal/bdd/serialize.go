package bdd

// Serialization of BDDs in a compact binary format, so that computed
// transition relations and reachable-state sets can be checkpointed and
// shared between runs. The format stores the variable order and the
// node triples of the reachable subgraph in topological order; loading
// replays mk() so the result is canonical in the target manager even if
// its arena layout differs.
//
// Format v2 ("GOBDD2\n") carries complement edges: the node table holds
// plain nodes only (table index 0 is the terminal False) and every edge
// and root is encoded as (tableIndex << 1) | complementBit, decoded
// through Not on load — which works whether the target manager uses
// complement edges or the structural representation. Files written by
// the v1 format ("GOBDD1\n", two-terminal, no complement bits) are
// still read; Save always writes v2.
//
// Format v3 ("GOBDD3\n") is the warm-start record: the v2 body followed
// by *named* roots (length-prefixed UTF-8 name + sign-encoded root per
// entry), written by SaveNamed and read by LoadNamed. Because the saved
// variable order travels with every version, a v3 reader can also adopt
// it — reordering the target manager to the saved (sifted) order before
// decoding — so a restarted process pays the dynamic-reordering work of
// a model once, ever. Load accepts v3 files too, dropping the names;
// LoadNamed accepts v1/v2 files, returning empty names.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	serialMagicV1 = "GOBDD1\n"
	serialMagicV2 = "GOBDD2\n"
	serialMagicV3 = "GOBDD3\n"
)

// maxSavedNameLen bounds the name records of a v3 file; anything longer
// is a corrupt record, not a legitimate root name.
const maxSavedNameLen = 1 << 12

// NamedRoot pairs a root BDD with a symbolic name, for warm-start
// records where the loader must know which root is which (e.g. the
// reachable-state set vs. the fair-state set of a model).
type NamedRoot struct {
	Name string
	Ref  Ref
}

// Save writes the given roots (and the manager's variable order) to w
// in format v2.
func (m *Manager) Save(w io.Writer, roots []Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(serialMagicV2); err != nil {
		return err
	}
	enc, err := m.writeOrderAndNodes(bw, roots)
	if err != nil {
		return err
	}
	if err := writeU32To(bw, uint32(len(roots))); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeU32To(bw, enc(r)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveNamed writes the named roots (and the manager's variable order)
// to w in format v3.
func (m *Manager) SaveNamed(w io.Writer, roots []NamedRoot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(serialMagicV3); err != nil {
		return err
	}
	refs := make([]Ref, len(roots))
	for i, r := range roots {
		if len(r.Name) > maxSavedNameLen {
			return fmt.Errorf("bdd: root name %q too long to save", r.Name[:32]+"...")
		}
		refs[i] = r.Ref
	}
	enc, err := m.writeOrderAndNodes(bw, refs)
	if err != nil {
		return err
	}
	if err := writeU32To(bw, uint32(len(roots))); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeU32To(bw, uint32(len(r.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(r.Name); err != nil {
			return err
		}
		if err := writeU32To(bw, enc(r.Ref)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeU32To(bw *bufio.Writer, x uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], x)
	_, err := bw.Write(buf[:])
	return err
}

// writeOrderAndNodes writes the variable order and the topologically
// ordered node table of the given roots — the body shared by v2 and v3
// — and returns the edge encoder ((tableIndex << 1) | complementBit)
// for the trailing root records.
func (m *Manager) writeOrderAndNodes(bw *bufio.Writer, roots []Ref) (func(Ref) uint32, error) {
	if err := writeU32To(bw, uint32(m.NumVars())); err != nil {
		return nil, err
	}
	for _, v := range m.level2var {
		if err := writeU32To(bw, uint32(v)); err != nil {
			return nil, err
		}
	}

	// Topological order over plain refs: children before parents. Table
	// index 0 is the terminal; stored nodes start at 1.
	index := map[Ref]uint32{0: 0}
	var order []Ref
	var visit func(Ref)
	visit = func(f Ref) {
		f &^= compBit
		if _, ok := index[f]; ok {
			return
		}
		n := &m.nodes[f]
		visit(n.low)
		visit(n.high)
		index[f] = uint32(len(order) + 1)
		order = append(order, f)
	}
	for _, r := range roots {
		m.checkRef(r)
		visit(r)
	}
	enc := func(f Ref) uint32 {
		e := index[f&^compBit] << 1
		if f&compBit != 0 {
			e |= 1
		}
		return e
	}

	if err := writeU32To(bw, uint32(len(order))); err != nil {
		return nil, err
	}
	for _, f := range order {
		n := &m.nodes[f]
		if err := writeU32To(bw, n.lvl&^markBit); err != nil {
			return nil, err
		}
		if err := writeU32To(bw, enc(n.low)); err != nil {
			return nil, err
		}
		if err := writeU32To(bw, enc(n.high)); err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// Load reads roots previously written by Save into the manager,
// accepting both the current v2 format and legacy v1 files. The
// manager must have at least as many variables as the saved order; the
// saved levels are interpreted through the *saved* order, i.e. the
// function is reconstructed over the same variable indices it was
// built over (levels follow the target manager's current order).
func (m *Manager) Load(r io.Reader) ([]Ref, error) {
	named, err := m.LoadNamed(r, false)
	if err != nil {
		return nil, err
	}
	roots := make([]Ref, len(named))
	for i, nr := range named {
		roots[i] = nr.Ref
	}
	return roots, nil
}

// LoadNamed reads a saved BDD file of any version and returns its roots
// with their names (v1/v2 files carry no names; theirs are empty). When
// adoptOrder is true the manager is reordered to the saved variable
// order before the nodes are decoded — the warm-start path: the sifted
// order computed by a previous process is restored instead of being
// re-derived by dynamic reordering. Adoption requires the saved order
// to cover exactly the manager's variables.
func (m *Manager) LoadNamed(r io.Reader, adoptOrder bool) ([]NamedRoot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(serialMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	switch string(magic) {
	case serialMagicV3:
		return m.loadV3(br, adoptOrder)
	case serialMagicV2:
		roots, err := m.loadV2(br, adoptOrder)
		return anonRoots(roots), err
	case serialMagicV1:
		roots, err := m.loadV1(br, adoptOrder)
		return anonRoots(roots), err
	}
	return nil, errors.New("bdd: bad magic (not a saved BDD)")
}

func anonRoots(roots []Ref) []NamedRoot {
	if roots == nil {
		return nil
	}
	out := make([]NamedRoot, len(roots))
	for i, r := range roots {
		out[i] = NamedRoot{Ref: r}
	}
	return out
}

// adoptSavedOrder reorders the manager to the saved level-to-variable
// map. It refuses partial orders: adoption only makes sense when the
// file was written by a manager over the same variable set.
func (m *Manager) adoptSavedOrder(savedLevel2Var []int) error {
	if len(savedLevel2Var) != m.NumVars() {
		return fmt.Errorf("bdd: cannot adopt saved order over %d variables into a manager with %d",
			len(savedLevel2Var), m.NumVars())
	}
	seen := make([]bool, len(savedLevel2Var))
	for _, v := range savedLevel2Var {
		if v < 0 || v >= len(seen) || seen[v] {
			return errors.New("bdd: saved order is not a permutation")
		}
		seen[v] = true
	}
	m.Reorder(savedLevel2Var, nil)
	return nil
}

func readU32From(br *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// loadOrder reads the variable count and saved level-to-variable map
// shared by both format versions.
func (m *Manager) loadOrder(br *bufio.Reader) ([]int, error) {
	nvars, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	if int(nvars) > m.NumVars() {
		return nil, fmt.Errorf("bdd: saved BDD uses %d variables, manager has %d", nvars, m.NumVars())
	}
	savedLevel2Var := make([]int, nvars)
	for i := range savedLevel2Var {
		v, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if int(v) >= m.NumVars() {
			return nil, fmt.Errorf("bdd: saved variable %d out of range", v)
		}
		savedLevel2Var[i] = int(v)
	}
	return savedLevel2Var, nil
}

// loadNodeTable reads the saved order and the node table — the body
// shared by v2 and v3 — optionally adopting the saved variable order
// first, and returns the decoded table plus the edge decoder.
func (m *Manager) loadNodeTable(br *bufio.Reader, adoptOrder bool) ([]Ref, func(e, limit uint32) (Ref, error), error) {
	savedLevel2Var, err := m.loadOrder(br)
	if err != nil {
		return nil, nil, err
	}
	if adoptOrder {
		if err := m.adoptSavedOrder(savedLevel2Var); err != nil {
			return nil, nil, err
		}
	}
	nvars := uint32(len(savedLevel2Var))

	nnodes, err := readU32From(br)
	if err != nil {
		return nil, nil, err
	}
	// Grown incrementally: a corrupt count must fail at the first short
	// read, not preallocate gigabytes.
	table := make([]Ref, 1, clampPrealloc(nnodes+1))
	table[0] = False
	// dec resolves a sign-encoded edge against the already-built prefix.
	dec := func(e, limit uint32) (Ref, error) {
		if e>>1 >= limit {
			return 0, errors.New("bdd: corrupt edge record")
		}
		f := table[e>>1]
		if e&1 != 0 {
			f = m.Not(f)
		}
		return f, nil
	}
	for i := uint32(0); i < nnodes; i++ {
		lvl, err := readU32From(br)
		if err != nil {
			return nil, nil, err
		}
		lowEnc, err := readU32From(br)
		if err != nil {
			return nil, nil, err
		}
		highEnc, err := readU32From(br)
		if err != nil {
			return nil, nil, err
		}
		if lvl >= nvars {
			return nil, nil, errors.New("bdd: corrupt node record")
		}
		low, err := dec(lowEnc, i+1)
		if err != nil {
			return nil, nil, err
		}
		high, err := dec(highEnc, i+1)
		if err != nil {
			return nil, nil, err
		}
		v := savedLevel2Var[lvl]
		// Rebuild through ITE so a different variable order in the
		// target manager still yields the correct (canonical) function.
		table = append(table, m.ite3(m.Var(v), high, low))
	}
	return table, dec, nil
}

// loadV2 reads the body of a v2 file: plain node triples with
// sign-encoded edges and roots.
func (m *Manager) loadV2(br *bufio.Reader, adoptOrder bool) ([]Ref, error) {
	table, dec, err := m.loadNodeTable(br, adoptOrder)
	if err != nil {
		return nil, err
	}
	nroots, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	roots := make([]Ref, 0, clampPrealloc(nroots))
	for i := uint32(0); i < nroots; i++ {
		e, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		f, err := dec(e, uint32(len(table)))
		if err != nil {
			return nil, errors.New("bdd: corrupt root record")
		}
		roots = append(roots, f)
	}
	return roots, nil
}

// loadV3 reads the body of a v3 file: the shared node table followed by
// named roots.
func (m *Manager) loadV3(br *bufio.Reader, adoptOrder bool) ([]NamedRoot, error) {
	table, dec, err := m.loadNodeTable(br, adoptOrder)
	if err != nil {
		return nil, err
	}
	nroots, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	roots := make([]NamedRoot, 0, clampPrealloc(nroots))
	for i := uint32(0); i < nroots; i++ {
		nameLen, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if nameLen > maxSavedNameLen {
			return nil, errors.New("bdd: corrupt name record")
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		e, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		f, err := dec(e, uint32(len(table)))
		if err != nil {
			return nil, errors.New("bdd: corrupt root record")
		}
		roots = append(roots, NamedRoot{Name: string(name), Ref: f})
	}
	return roots, nil
}

// clampPrealloc bounds slice preallocation from untrusted counts; the
// slices grow past it by appending, after the stream has actually
// delivered that many records.
func clampPrealloc(n uint32) int {
	const maxPrealloc = 1 << 16
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// loadV1 reads the body of a legacy v1 file: two-terminal node table
// (indices 0 and 1 are False and True), no complement bits.
func (m *Manager) loadV1(br *bufio.Reader, adoptOrder bool) ([]Ref, error) {
	savedLevel2Var, err := m.loadOrder(br)
	if err != nil {
		return nil, err
	}
	if adoptOrder {
		if err := m.adoptSavedOrder(savedLevel2Var); err != nil {
			return nil, err
		}
	}
	nvars := uint32(len(savedLevel2Var))

	nnodes, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	table := make([]Ref, 2, clampPrealloc(nnodes+2))
	table[0] = False
	table[1] = True
	for i := uint32(0); i < nnodes; i++ {
		lvl, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		lowIdx, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		highIdx, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if lvl >= nvars || lowIdx >= i+2 || highIdx >= i+2 {
			return nil, errors.New("bdd: corrupt node record")
		}
		v := savedLevel2Var[lvl]
		low, high := table[lowIdx], table[highIdx]
		table = append(table, m.ite3(m.Var(v), high, low))
	}
	nroots, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	roots := make([]Ref, 0, clampPrealloc(nroots))
	for i := uint32(0); i < nroots; i++ {
		idx, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if idx >= uint32(len(table)) {
			return nil, errors.New("bdd: corrupt root record")
		}
		roots = append(roots, table[idx])
	}
	return roots, nil
}
