package bdd

// Serialization of BDDs in a compact binary format, so that computed
// transition relations and reachable-state sets can be checkpointed and
// shared between runs. The format stores the variable order and the
// node triples of the reachable subgraph in topological order; loading
// replays mk() so the result is canonical in the target manager even if
// its arena layout differs.
//
// Format v2 ("GOBDD2\n") carries complement edges: the node table holds
// plain nodes only (table index 0 is the terminal False) and every edge
// and root is encoded as (tableIndex << 1) | complementBit, decoded
// through Not on load — which works whether the target manager uses
// complement edges or the structural representation. Files written by
// the v1 format ("GOBDD1\n", two-terminal, no complement bits) are
// still read; Save always writes v2.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	serialMagicV1 = "GOBDD1\n"
	serialMagicV2 = "GOBDD2\n"
)

// Save writes the given roots (and the manager's variable order) to w
// in format v2.
func (m *Manager) Save(w io.Writer, roots []Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(serialMagicV2); err != nil {
		return err
	}
	writeU32 := func(x uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], x)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := writeU32(uint32(m.NumVars())); err != nil {
		return err
	}
	for _, v := range m.level2var {
		if err := writeU32(uint32(v)); err != nil {
			return err
		}
	}

	// Topological order over plain refs: children before parents. Table
	// index 0 is the terminal; stored nodes start at 1.
	index := map[Ref]uint32{0: 0}
	var order []Ref
	var visit func(Ref)
	visit = func(f Ref) {
		f &^= compBit
		if _, ok := index[f]; ok {
			return
		}
		n := &m.nodes[f]
		visit(n.low)
		visit(n.high)
		index[f] = uint32(len(order) + 1)
		order = append(order, f)
	}
	for _, r := range roots {
		m.checkRef(r)
		visit(r)
	}
	// encode an edge or root as (tableIndex << 1) | complementBit.
	enc := func(f Ref) uint32 {
		e := index[f&^compBit] << 1
		if f&compBit != 0 {
			e |= 1
		}
		return e
	}

	if err := writeU32(uint32(len(order))); err != nil {
		return err
	}
	for _, f := range order {
		n := &m.nodes[f]
		if err := writeU32(n.lvl &^ markBit); err != nil {
			return err
		}
		if err := writeU32(enc(n.low)); err != nil {
			return err
		}
		if err := writeU32(enc(n.high)); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(len(roots))); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeU32(enc(r)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads roots previously written by Save into the manager,
// accepting both the current v2 format and legacy v1 files. The
// manager must have at least as many variables as the saved order; the
// saved levels are interpreted through the *saved* order, i.e. the
// function is reconstructed over the same variable indices it was
// built over (levels follow the target manager's current order).
func (m *Manager) Load(r io.Reader) ([]Ref, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(serialMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	switch string(magic) {
	case serialMagicV2:
		return m.loadV2(br)
	case serialMagicV1:
		return m.loadV1(br)
	}
	return nil, errors.New("bdd: bad magic (not a saved BDD)")
}

func readU32From(br *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// loadOrder reads the variable count and saved level-to-variable map
// shared by both format versions.
func (m *Manager) loadOrder(br *bufio.Reader) ([]int, error) {
	nvars, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	if int(nvars) > m.NumVars() {
		return nil, fmt.Errorf("bdd: saved BDD uses %d variables, manager has %d", nvars, m.NumVars())
	}
	savedLevel2Var := make([]int, nvars)
	for i := range savedLevel2Var {
		v, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if int(v) >= m.NumVars() {
			return nil, fmt.Errorf("bdd: saved variable %d out of range", v)
		}
		savedLevel2Var[i] = int(v)
	}
	return savedLevel2Var, nil
}

// loadV2 reads the body of a v2 file: plain node triples with
// sign-encoded edges and roots.
func (m *Manager) loadV2(br *bufio.Reader) ([]Ref, error) {
	savedLevel2Var, err := m.loadOrder(br)
	if err != nil {
		return nil, err
	}
	nvars := uint32(len(savedLevel2Var))

	nnodes, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	// Grown incrementally: a corrupt count must fail at the first short
	// read, not preallocate gigabytes.
	table := make([]Ref, 1, clampPrealloc(nnodes+1))
	table[0] = False
	// dec resolves a sign-encoded edge against the already-built prefix.
	dec := func(e, limit uint32) (Ref, error) {
		if e>>1 >= limit {
			return 0, errors.New("bdd: corrupt edge record")
		}
		f := table[e>>1]
		if e&1 != 0 {
			f = m.Not(f)
		}
		return f, nil
	}
	for i := uint32(0); i < nnodes; i++ {
		lvl, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		lowEnc, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		highEnc, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if lvl >= nvars {
			return nil, errors.New("bdd: corrupt node record")
		}
		low, err := dec(lowEnc, i+1)
		if err != nil {
			return nil, err
		}
		high, err := dec(highEnc, i+1)
		if err != nil {
			return nil, err
		}
		v := savedLevel2Var[lvl]
		// Rebuild through ITE so a different variable order in the
		// target manager still yields the correct (canonical) function.
		table = append(table, m.ite3(m.Var(v), high, low))
	}
	nroots, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	roots := make([]Ref, 0, clampPrealloc(nroots))
	for i := uint32(0); i < nroots; i++ {
		e, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		f, err := dec(e, uint32(len(table)))
		if err != nil {
			return nil, errors.New("bdd: corrupt root record")
		}
		roots = append(roots, f)
	}
	return roots, nil
}

// clampPrealloc bounds slice preallocation from untrusted counts; the
// slices grow past it by appending, after the stream has actually
// delivered that many records.
func clampPrealloc(n uint32) int {
	const maxPrealloc = 1 << 16
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// loadV1 reads the body of a legacy v1 file: two-terminal node table
// (indices 0 and 1 are False and True), no complement bits.
func (m *Manager) loadV1(br *bufio.Reader) ([]Ref, error) {
	savedLevel2Var, err := m.loadOrder(br)
	if err != nil {
		return nil, err
	}
	nvars := uint32(len(savedLevel2Var))

	nnodes, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	table := make([]Ref, 2, clampPrealloc(nnodes+2))
	table[0] = False
	table[1] = True
	for i := uint32(0); i < nnodes; i++ {
		lvl, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		lowIdx, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		highIdx, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if lvl >= nvars || lowIdx >= i+2 || highIdx >= i+2 {
			return nil, errors.New("bdd: corrupt node record")
		}
		v := savedLevel2Var[lvl]
		low, high := table[lowIdx], table[highIdx]
		table = append(table, m.ite3(m.Var(v), high, low))
	}
	nroots, err := readU32From(br)
	if err != nil {
		return nil, err
	}
	roots := make([]Ref, 0, clampPrealloc(nroots))
	for i := uint32(0); i < nroots; i++ {
		idx, err := readU32From(br)
		if err != nil {
			return nil, err
		}
		if idx >= uint32(len(table)) {
			return nil, errors.New("bdd: corrupt root record")
		}
		roots = append(roots, table[idx])
	}
	return roots, nil
}
