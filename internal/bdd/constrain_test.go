package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The defining property of both operators: agreement with f on the care
// set, i.e. result ∧ c == f ∧ c.
func TestConstrainAgreesOnCareSet(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	const n = 5
	m := New(n)
	for trial := 0; trial < 300; trial++ {
		f, _ := randPair(r, m, n, 4)
		c, _ := randPair(r, m, n, 4)
		if c == False {
			continue
		}
		g := m.Constrain(f, c)
		if m.And(g, c) != m.And(f, c) {
			t.Fatalf("trial %d: Constrain disagrees on care set", trial)
		}
	}
}

func TestMinimizeAgreesOnCareSet(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	const n = 5
	m := New(n)
	for trial := 0; trial < 300; trial++ {
		f, _ := randPair(r, m, n, 4)
		c, _ := randPair(r, m, n, 4)
		if c == False {
			continue
		}
		g := m.Minimize(f, c)
		if m.And(g, c) != m.And(f, c) {
			t.Fatalf("trial %d: Minimize disagrees on care set", trial)
		}
	}
}

func TestMinimizeStaysInSupport(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	const n = 6
	m := New(n)
	for trial := 0; trial < 200; trial++ {
		f, _ := randPair(r, m, n, 3)
		c, _ := randPair(r, m, n, 3)
		if c == False {
			continue
		}
		inF := map[int]bool{}
		for _, v := range m.Support(f) {
			inF[v] = true
		}
		g := m.Minimize(f, c)
		for _, v := range m.Support(g) {
			if !inF[v] {
				t.Fatalf("trial %d: Minimize introduced variable %d", trial, v)
			}
		}
	}
}

func TestConstrainIdentities(t *testing.T) {
	m := New(4)
	f := m.Xor(m.Var(0), m.Var(1))
	if m.Constrain(f, True) != f {
		t.Fatal("f ⇓ true must be f")
	}
	if m.Constrain(f, f) != True {
		t.Fatal("f ⇓ f must be true")
	}
	if m.Constrain(True, m.Var(2)) != True {
		t.Fatal("true ⇓ c must be true")
	}
	// constraining to a single-variable positive cube cofactors it away
	g := m.Constrain(f, m.Var(0))
	if g != m.Not(m.Var(1)) {
		t.Fatalf("xor constrained to x0: got wrong cofactor")
	}
}

func TestConstrainPanicsOnEmptyCareSet(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Constrain(m.Var(0), False)
}

func TestPropConstrainQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(44))}
	err := quick.Check(func(a, b uint16) bool {
		m := New(propVars)
		f := fromTruthTable(m, propVars, uint64(a))
		c := fromTruthTable(m, propVars, uint64(b))
		if c == False {
			return true
		}
		g := m.Constrain(f, c)
		h := m.Minimize(f, c)
		return m.And(g, c) == m.And(f, c) && m.And(h, c) == m.And(f, c)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
