package bdd

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// parallelWorkload builds a transition-relation-shaped workload on m:
// 2*k interleaved variables (x_i at even levels, y_i at odd levels), a
// relation rel = AND_i (y_i XOR (x_i XOR x_{i+1 mod k})) plus noise
// terms, a random source set over the x variables, and the x cube.
// rng drives the noise so different seeds give different functions.
func parallelWorkload(m *Manager, k int, rng *rand.Rand) (set, rel, cube Ref) {
	for i := 0; i < 2*k; i++ {
		m.AddVar()
	}
	x := func(i int) Ref { return m.Var(2 * (i % k)) }
	y := func(i int) Ref { return m.Var(2*(i%k) + 1) }
	rel = True
	for i := 0; i < k; i++ {
		step := m.Eq(y(i), m.Xor(x(i), x(i+1)))
		rel = m.And(rel, step)
	}
	// Noise: a few random clauses over mixed variables keep the
	// relation from collapsing to a tiny function.
	for c := 0; c < k; c++ {
		cl := False
		for l := 0; l < 3; l++ {
			v := rng.Intn(2 * k)
			lit := m.Lit(v, rng.Intn(2) == 0)
			cl = m.Or(cl, lit)
		}
		rel = m.And(rel, m.Or(cl, y(rng.Intn(k))))
	}
	set = False
	for t := 0; t < 4*k; t++ {
		term := True
		for l := 0; l < k/2+1; l++ {
			v := 2 * rng.Intn(k)
			term = m.And(term, m.Lit(v, rng.Intn(2) == 0))
		}
		set = m.Or(set, term)
	}
	vars := make([]int, k)
	for i := range vars {
		vars[i] = 2 * i
	}
	cube = m.Cube(vars)
	return set, rel, cube
}

// TestParallelMatchesSequential builds the workload twice — once on a
// manager whose big operations run in parallel sections, once on a
// plain sequential manager — and demands semantically identical results
// (SatCount and pointwise evaluation agree), plus clean invariants on
// the parallel manager. Runs across worker counts and both
// representations; parallel-first construction is the hard direction,
// since the parallel engine creates the nodes the checks walk.
func TestParallelMatchesSequential(t *testing.T) {
	const k = 7
	for _, workers := range []int{2, 3, 4, 8} {
		for _, noComp := range []bool{false, true} {
			var opts []Option
			if noComp {
				opts = append(opts, DisableComplementEdges())
			}
			par := New(0, opts...)
			par.SetParallelWorkers(workers)
			par.SetParallelGranularity(1) // force sections even on small operands
			seq := New(0, opts...)

			rngP := rand.New(rand.NewSource(42))
			rngS := rand.New(rand.NewSource(42))
			setP, relP, cubeP := parallelWorkload(par, k, rngP)
			setS, relS, cubeS := parallelWorkload(seq, k, rngS)

			imgP := par.AndExists(relP, setP, cubeP)
			imgS := seq.AndExists(relS, setS, cubeS)
			exP := par.Exists(relP, cubeP)
			exS := seq.Exists(relS, cubeS)
			iteP := par.Ite(setP, relP, imgP)
			iteS := seq.Ite(setS, relS, imgS)

			n := 2 * k
			pairs := [][2]Ref{{imgP, imgS}, {exP, exS}, {iteP, iteS}}
			for pi, pr := range pairs {
				if c, rc := par.SatCount(pr[0], n), seq.SatCount(pr[1], n); math.Abs(c-rc) > 0.5 {
					t.Fatalf("workers=%d noComp=%v result %d: SatCount %v (parallel) vs %v (sequential)",
						workers, noComp, pi, c, rc)
				}
				for a := 0; a < 1<<n; a += 13 { // sampled assignments
					env := envFor(n, a)
					if par.Eval(pr[0], env) != seq.Eval(pr[1], env) {
						t.Fatalf("workers=%d noComp=%v result %d: diverges at assignment %b",
							workers, noComp, pi, a)
					}
				}
			}

			// Canonicity inside one manager: switching the engine off and
			// recomputing must return the exact same Refs without creating
			// a single node.
			par.SetParallelWorkers(1)
			before := par.NumNodes()
			if r := par.AndExists(relP, setP, cubeP); r != imgP {
				t.Fatalf("workers=%d noComp=%v: sequential recompute of AndExists returned %d, parallel %d",
					workers, noComp, r, imgP)
			}
			if r := par.Exists(relP, cubeP); r != exP {
				t.Fatalf("workers=%d noComp=%v: sequential recompute of Exists diverged", workers, noComp)
			}
			if r := par.Ite(setP, relP, imgP); r != iteP {
				t.Fatalf("workers=%d noComp=%v: sequential recompute of Ite diverged", workers, noComp)
			}
			if after := par.NumNodes(); after != before {
				t.Fatalf("workers=%d noComp=%v: sequential recompute allocated %d nodes over %d",
					workers, noComp, after-before, before)
			}

			if err := CheckInvariants(par); err != nil {
				t.Fatalf("workers=%d noComp=%v: parallel manager invariants: %v", workers, noComp, err)
			}
			if st := par.Stats; st.ParallelSections == 0 {
				t.Fatalf("workers=%d noComp=%v: no parallel sections ran", workers, noComp)
			}
		}
	}
}

// TestRunParallelJobs exercises the batch API: independent AndExists
// jobs over shared operands inside one section, results identical to
// the sequential evaluation of the same jobs and stats accounting for
// every job.
func TestRunParallelJobs(t *testing.T) {
	const k = 6
	m := New(0)
	rng := rand.New(rand.NewSource(7))
	set, rel, cube := parallelWorkload(m, k, rng)

	// Sequential oracle results first (engine still off).
	parts := []Ref{set, rel, m.And(set, rel), m.Or(set, rel), m.Xor(set, rel)}
	want := make([]Ref, len(parts))
	for i, p := range parts {
		want[i] = m.AndExists(p, rel, cube)
	}

	m.SetParallelWorkers(4)
	m.SetParallelGranularity(1)
	got := make([]Ref, len(parts))
	jobs := make([]func(op *ParOp), len(parts))
	for i := range parts {
		i := i
		jobs[i] = func(op *ParOp) {
			got[i] = op.AndExists(parts[i], rel, cube)
		}
	}
	m.RunParallel(jobs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("job %d: RunParallel returned %d, sequential oracle %d", i, got[i], want[i])
		}
	}
	if m.Stats.ParallelJobs < uint64(len(jobs)) {
		t.Fatalf("ParallelJobs = %d, want >= %d", m.Stats.ParallelJobs, len(jobs))
	}
	if err := CheckInvariants(m); err != nil {
		t.Fatalf("invariants after RunParallel: %v", err)
	}

	// Disabled engine: same API, sequential execution.
	m.SetParallelWorkers(1)
	got2 := make([]Ref, len(parts))
	jobs2 := make([]func(op *ParOp), len(parts))
	for i := range parts {
		i := i
		jobs2[i] = func(op *ParOp) { got2[i] = op.AndExists(parts[i], rel, cube) }
	}
	m.RunParallel(jobs2)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("job %d: sequential-fallback RunParallel returned %d, want %d", i, got2[i], want[i])
		}
	}
}

// TestCheckInvariantsConcurrent runs the striped-table verifier
// *while* parallel Apply traffic is mutating the table — under -race
// this is the torn-read/striped-consistency regression the CI
// parallel-stress lane exists for. Every operation in the mutation loop
// routes through parallel sections (granularity 1), so the verifier
// only ever races against stripe-locked and atomic accesses.
func TestCheckInvariantsConcurrent(t *testing.T) {
	const k = 6
	m := New(0)
	rng := rand.New(rand.NewSource(11))
	set, rel, cube := parallelWorkload(m, k, rng)
	m.SetParallelWorkers(4)
	m.SetParallelGranularity(1)

	done := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := CheckInvariantsConcurrent(m); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	}()

	cur := set
	for i := 0; i < 60; i++ {
		cur = m.AndExists(cur, rel, cube)
		cur = m.Or(cur, set)
		cur = m.Ite(rel, cur, set)
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent invariant check: %v", err)
	default:
	}
	if err := CheckInvariants(m); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	if m.Stats.ParallelSections == 0 {
		t.Fatal("mutation loop never opened a parallel section")
	}
}

// TestReorderParallelSafePoint is the reorder-during-parallel-Apply
// regression: inside a live section GC, ReorderIfNeeded and SiftNow
// must all be hard no-ops (the arena is shared by workers), and at the
// section boundary auto-reordering must run again and leave a
// consistent manager whose functions are unchanged.
func TestReorderParallelSafePoint(t *testing.T) {
	const k = 6
	m := New(0)
	rng := rand.New(rand.NewSource(3))
	set, rel, cube := parallelWorkload(m, k, rng)
	m.Protect(set)
	m.Protect(rel)
	m.Protect(cube)
	m.SetParallelWorkers(4)
	m.SetParallelGranularity(1)
	m.EnableAutoReorder(&ReorderOptions{MinNodes: 1, GrowthTrigger: 1.01})

	// Mid-section: every restructuring entry point must refuse.
	m.parBegin()
	if m.ReorderIfNeeded() {
		t.Fatal("ReorderIfNeeded ran inside a parallel section")
	}
	if freed := m.GC(); freed != 0 {
		t.Fatalf("GC freed %d nodes inside a parallel section", freed)
	}
	ord := m.Order()
	m.SiftNow()
	if got := m.Order(); !equalIntSlices(got, ord) {
		t.Fatal("SiftNow changed the order inside a parallel section")
	}
	if gcRuns := m.Stats.GCRuns; gcRuns != 0 {
		t.Fatalf("GC recorded %d runs inside a section", gcRuns)
	}
	m.parEnd()

	// At the boundary the growth trigger is armed; parallel traffic
	// interleaved with ReorderIfNeeded safe points must stay correct.
	n := 2 * k
	wantCount := m.SatCount(m.AndExists(set, rel, cube), n)
	for i := 0; i < 5; i++ {
		img := m.AndExists(set, rel, cube)
		if c := m.SatCount(img, n); math.Abs(c-wantCount) > 0.5 {
			t.Fatalf("iteration %d: image SatCount %v, want %v", i, c, wantCount)
		}
		m.ReorderIfNeeded()
	}
	if m.Stats.AutoReorders == 0 {
		t.Fatal("auto-reorder never fired at the section boundary (trigger was armed)")
	}
	if err := CheckInvariants(m); err != nil {
		t.Fatalf("invariants after reorder/parallel interleaving: %v", err)
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelExhaustionRetry drives a parallel construction from a
// cold arena (granularity 1 from the first operation), so early
// sections begin with minimal headroom and the grow-and-retry path
// runs. Correctness is asserted against a sequential twin.
func TestParallelExhaustionRetry(t *testing.T) {
	const k = 8
	par := New(0)
	par.SetParallelWorkers(8)
	par.SetParallelGranularity(1)
	seq := New(0)
	setP, relP, cubeP := parallelWorkload(par, k, rand.New(rand.NewSource(19)))
	setS, relS, cubeS := parallelWorkload(seq, k, rand.New(rand.NewSource(19)))
	// Compact the arena to zero spare capacity so the next section
	// starts with only the minimum pre-section headroom and must hit
	// the exhaustion path at least once on a large operation.
	par.nodes = append(make([]node, 0, len(par.nodes)), par.nodes...)
	imgP := par.AndExists(setP, relP, cubeP)
	imgS := seq.AndExists(setS, relS, cubeS)
	n := 2 * k
	if c, rc := par.SatCount(imgP, n), seq.SatCount(imgS, n); math.Abs(c-rc) > 0.5 {
		t.Fatalf("SatCount %v (parallel) vs %v (sequential)", c, rc)
	}
	if err := CheckInvariants(par); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	t.Logf("sections=%d forks=%d retries=%d peakInFlight=%d",
		par.Stats.ParallelSections, par.Stats.ParallelForks,
		par.Stats.ParallelRetries, par.Stats.ParallelPeakInFlight)

	// Exercise the grow-and-retry protocol deterministically: simulate
	// two exhausted sections before letting the operation through, and
	// check that the manager comes back consistent with the right result
	// and retry accounting.
	a, b := par.Var(0), par.Var(2)
	want := par.Ite(a, b, False)
	retries0 := par.Stats.ParallelRetries
	capBefore := cap(par.nodes)
	attempts := 0
	got := par.parRunOne(func(c *parCtx) (Ref, bool) {
		attempts++
		if attempts <= 2 {
			c.ps.exhausted.Store(true)
			return False, false
		}
		return par.parIte(c, a, b, False, 0)
	})
	if attempts != 3 {
		t.Fatalf("parRunOne ran the operation %d times, want 3", attempts)
	}
	if got != want {
		t.Fatalf("parRunOne after retries returned %d, want %d", got, want)
	}
	if d := par.Stats.ParallelRetries - retries0; d != 2 {
		t.Fatalf("ParallelRetries grew by %d, want 2", d)
	}
	if cap(par.nodes) <= capBefore {
		t.Fatal("retry protocol never grew the arena")
	}
	if err := CheckInvariants(par); err != nil {
		t.Fatalf("invariants after forced retries: %v", err)
	}
}

// TestParallelCacheInvalidation: a GC that frees nodes must make every
// parallel cache entry unreachable (generation bump), never serving a
// stale ref afterwards.
func TestParallelCacheInvalidation(t *testing.T) {
	const k = 6
	m := New(0)
	set, rel, cube := parallelWorkload(m, k, rand.New(rand.NewSource(5)))
	m.SetParallelWorkers(2)
	m.SetParallelGranularity(1)
	img := m.AndExists(set, rel, cube)
	n := 2 * k
	want := m.SatCount(img, n)
	// Drop everything, collect, rebuild: cached (f,g,cube)->res entries
	// now name freed slots; the generation bump must hide them.
	m.GC() // nothing protected: frees the whole workload
	set2, rel2, cube2 := parallelWorkload(m, k, rand.New(rand.NewSource(5)))
	img2 := m.AndExists(set2, rel2, cube2)
	if c := m.SatCount(img2, n); math.Abs(c-want) > 0.5 {
		t.Fatalf("rebuilt image SatCount %v, want %v (stale parallel cache?)", c, want)
	}
	if err := CheckInvariants(m); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// FuzzParallelApply is the lockstep parallel-vs-sequential stack
// machine: the same operation stream runs on a parallel-engine manager
// (worker count and granularity taken from the input) and on a plain
// sequential reference manager, and every pushed result must agree
// pointwise on all assignments. Complements stay enabled — the parallel
// recursion's complement normalization is exactly what this hunts.
func FuzzParallelApply(f *testing.F) {
	f.Add(uint8(2), []byte{0x00, 0x10, 0x06, 0x05, 0x27, 0x3a})
	f.Add(uint8(4), []byte{0x03, 0x04, 0x09, 0x05, 0x05, 0x6b, 0x7c})
	f.Add(uint8(8), []byte{0x00, 0x12, 0x08, 0x4b, 0x0c, 0x1d, 0xa1, 0xb2})
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, workers uint8, ops []byte) {
		const n = 6
		if len(ops) > 64 {
			ops = ops[:64]
		}
		m := New(n)
		m.SetParallelWorkers(int(workers)%8 + 1)
		m.SetParallelGranularity(1)
		ref := New(n)

		var ms, rs []Ref
		push := func(a, b Ref) {
			ms = append(ms, m.Protect(a))
			rs = append(rs, ref.Protect(b))
		}
		pick := func(arg int) int {
			if len(ms) == 0 {
				return -1
			}
			return arg % len(ms)
		}

		for _, b := range ops {
			op, arg := int(b&0xF), int(b>>4)
			switch op {
			case 0, 1:
				v := arg % n
				push(m.Var(v), ref.Var(v))
			case 2:
				v := arg % n
				push(m.NVar(v), ref.NVar(v))
			case 3:
				push(False, False)
			case 4:
				push(True, True)
			case 5: // Not
				if i := pick(arg); i >= 0 {
					push(m.Not(ms[i]), ref.Not(rs[i]))
				}
			case 6: // And
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					push(m.And(ms[i], ms[j]), ref.And(rs[i], rs[j]))
				}
			case 7: // Or
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					push(m.Or(ms[i], ms[j]), ref.Or(rs[i], rs[j]))
				}
			case 8: // Xor
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					push(m.Xor(ms[i], ms[j]), ref.Xor(rs[i], rs[j]))
				}
			case 9: // Ite
				if i, j, k := pick(arg), pick(arg+1), pick(arg+2); i >= 0 {
					push(m.Ite(ms[i], ms[j], ms[k]), ref.Ite(rs[i], rs[j], rs[k]))
				}
			case 10: // Exists over one variable
				if i := pick(arg); i >= 0 {
					v := arg % n
					push(m.Exists(ms[i], m.Cube([]int{v})), ref.Exists(rs[i], ref.Cube([]int{v})))
				}
			case 11: // AndExists over one variable
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					v := arg % n
					push(m.AndExists(ms[i], ms[j], m.Cube([]int{v})),
						ref.AndExists(rs[i], rs[j], ref.Cube([]int{v})))
				}
			case 12: // AndExists over a two-variable cube
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					cv := []int{arg % n, (arg + 3) % n}
					push(m.AndExists(ms[i], ms[j], m.Cube(cv)),
						ref.AndExists(rs[i], rs[j], ref.Cube(cv)))
				}
			case 13: // GC both arenas (safe point: between sections)
				m.GC()
				ref.GC()
			}
		}

		if err := CheckInvariants(m); err != nil {
			t.Fatalf("parallel manager: %v", err)
		}
		if err := CheckInvariants(ref); err != nil {
			t.Fatalf("reference manager: %v", err)
		}
		for idx := range ms {
			if c, rc := m.SatCount(ms[idx], n), ref.SatCount(rs[idx], n); math.Abs(c-rc) > 0.5 {
				t.Fatalf("stack[%d]: SatCount %v (parallel) vs %v (reference)", idx, c, rc)
			}
			for a := 0; a < 1<<n; a++ {
				env := envFor(n, a)
				if m.Eval(ms[idx], env) != ref.Eval(rs[idx], env) {
					t.Fatalf("stack[%d]: engines diverge at assignment %b", idx, a)
				}
			}
		}
	})
}
