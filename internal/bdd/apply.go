package bdd

// This file implements the boolean connectives. Everything reduces to
// the if-then-else operator ITE(f,g,h) = (f ∧ g) ∨ (¬f ∧ h), memoized in
// a direct-mapped computed cache. The complexity of each binary
// operation is O(|f|·|g|) as stated in Section 2 of the paper.

// Ite computes if-then-else: (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) Ite(f, g, h Ref) Ref {
	m.checkRef(f)
	m.checkRef(g)
	m.checkRef(h)
	return m.ite3(f, g, h)
}

func (m *Manager) ite3(f, g, h Ref) Ref {
	m.Stats.ITECalls++
	// Terminal and trivial cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	// Normalization: ITE(f,g,h) with g == f can use True; h == f can use False.
	if g == f {
		g = True
	}
	if h == f {
		h = False
	}
	if g == True && h == False {
		return f
	}

	m.Stats.CacheLookups++
	slot := cacheIndex(uint32(f), uint32(g), uint32(h), 0x17e, uint32(len(m.ite)))
	if e := &m.ite[slot]; e.valid && e.f == f && e.g == g && e.h == h {
		m.Stats.CacheHits++
		return e.res
	}

	lf, lg, lh := m.level(f), m.level(g), m.level(h)
	top := lf
	if lg < top {
		top = lg
	}
	if lh < top {
		top = lh
	}

	f0, f1 := m.cofactors(f, lf, top)
	g0, g1 := m.cofactors(g, lg, top)
	h0, h1 := m.cofactors(h, lh, top)

	low := m.ite3(f0, g0, h0)
	high := m.ite3(f1, g1, h1)
	res := m.mk(top, low, high)

	m.ite[slot] = iteEntry{f: f, g: g, h: h, res: res, valid: true}
	return res
}

// cofactors returns the (low, high) cofactors of f with respect to the
// variable at level top, given that f's own level is lf.
func (m *Manager) cofactors(f Ref, lf, top uint32) (Ref, Ref) {
	if lf != top {
		return f, f
	}
	n := &m.nodes[f]
	return n.low, n.high
}

// Not returns the complement ¬f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Eq returns f ↔ g (exclusive-nor).
func (m *Manager) Eq(f, g Ref) Ref { return m.Ite(f, g, m.Not(g)) }

// Imp returns f → g.
func (m *Manager) Imp(f, g Ref) Ref { return m.Ite(f, g, True) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Ref) Ref { return m.Ite(g, False, f) }

// Nand returns ¬(f ∧ g).
func (m *Manager) Nand(f, g Ref) Ref { return m.Not(m.And(f, g)) }

// Nor returns ¬(f ∨ g).
func (m *Manager) Nor(f, g Ref) Ref { return m.Not(m.Or(f, g)) }

// AndN returns the conjunction of all arguments (True when empty).
func (m *Manager) AndN(fs ...Ref) Ref {
	res := True
	for _, f := range fs {
		res = m.And(res, f)
		if res == False {
			return False
		}
	}
	return res
}

// OrN returns the disjunction of all arguments (False when empty).
func (m *Manager) OrN(fs ...Ref) Ref {
	res := False
	for _, f := range fs {
		res = m.Or(res, f)
		if res == True {
			return True
		}
	}
	return res
}

// Implies reports whether f → g is a tautology, i.e. the state set f is
// contained in g. Thanks to canonicity this is a single ITE plus a
// comparison against True.
func (m *Manager) Implies(f, g Ref) bool { return m.Imp(f, g) == True }

// Disjoint reports whether f ∧ g is unsatisfiable.
func (m *Manager) Disjoint(f, g Ref) bool { return m.And(f, g) == False }
