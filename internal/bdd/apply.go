package bdd

// This file implements the boolean connectives. Everything reduces to
// the if-then-else operator ITE(f,g,h) = (f ∧ g) ∨ (¬f ∧ h), memoized in
// a direct-mapped computed cache. The complexity of each binary
// operation is O(|f|·|g|) as stated in Section 2 of the paper.
//
// With complement edges, negation is free, which makes every triple
// expressible in many equivalent ways — f∧g is ITE(f,g,0) but also
// ITE(g,f,0), ¬ITE(f,¬g,1), ¬ITE(¬g,¬f,1), … Before touching the cache,
// ite3 rewrites the triple to the standard form of Brace, Rudell and
// Bryant (DAC 1990): terminal rules, ¬f collapses, the standard-triple
// argument swaps, and finally the two complement rules (first argument
// never complemented; second argument never complemented, complementing
// the result instead). All equivalent formulations then share one cache
// line, which is where the higher hit rates come from.
//
// Under DisableComplementEdges only the rewrites that exist in the
// structural representation apply (no rule may manufacture a
// complemented ref), and Not(f) builds ¬f node by node through the same
// recursion.

// Ite computes if-then-else: (f ∧ g) ∨ (¬f ∧ h). With the parallel
// engine enabled (SetParallelWorkers), sufficiently large calls
// evaluate in a fork-join parallel section; canonicity guarantees the
// returned Ref is identical either way.
func (m *Manager) Ite(f, g, h Ref) Ref {
	m.checkRef(f)
	m.checkRef(g)
	m.checkRef(h)
	if m.parGate(f, g, h) {
		return m.parRunOne(func(c *parCtx) (Ref, bool) { return m.parIte(c, f, g, h, 0) })
	}
	return m.ite3(f, g, h)
}

// before orders two refs for the standard-triple swaps: primarily by
// level, tie-broken by plain node index. Complement bits are ignored,
// which is what makes the swapped form canonical — ITE(f,1,h) and
// ITE(h,1,f) meet at the same triple whichever way they arrive.
func (m *Manager) before(a, b Ref) bool {
	la, lb := m.level(a), m.level(b)
	if la != lb {
		return la < lb
	}
	return a&^compBit < b&^compBit
}

func (m *Manager) ite3(f, g, h Ref) Ref {
	m.Stats.ITECalls++
	// Terminal and trivial cases (valid in both representations).
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}

	neg := false
	if !m.noComp {
		// ¬f is one comparison away, so the f-collapses come in pairs.
		if g == f {
			g = True
		} else if g == f^compBit {
			g = False
		}
		if h == f {
			h = False
		} else if h == f^compBit {
			h = True
		}
		switch {
		case g == h:
			return g
		case g == True && h == False:
			return f
		case g == False && h == True:
			return f ^ compBit
		}

		// Standard triples: canonicalize the argument order of the
		// commutative forms.
		switch {
		case g == True: // f ∨ h = h ∨ f
			if m.before(h, f) {
				f, h = h, f
			}
		case h == False: // f ∧ g = g ∧ f
			if m.before(g, f) {
				f, g = g, f
			}
		case g == False: // ¬f ∧ h = ¬h' ∧ f' for (f',h') = (¬h,¬f)
			if m.before(h, f) {
				f, h = h^compBit, f^compBit
			}
		case h == True: // ¬f ∨ g = ITE(¬g, ¬f, 1)
			if m.before(g, f) {
				f, g = g^compBit, f^compBit
			}
		case g == h^compBit: // f XNOR g = ITE(g, f, ¬f)
			if m.before(g, f) {
				f, g = g, f
				h = g ^ compBit
			}
		}

		// Complement canonicalization: a complemented first argument
		// swaps the branches; a complemented second argument complements
		// the whole triple, remembering to flip the result.
		if f&compBit != 0 {
			f ^= compBit
			g, h = h, g
		}
		if g&compBit != 0 {
			g ^= compBit
			h ^= compBit
			neg = true
		}
		// The rewrites above can re-expose a trivial triple.
		switch {
		case g == h:
			if neg {
				return g ^ compBit
			}
			return g
		case g == True && h == False:
			if neg {
				return f ^ compBit
			}
			return f
		}
	} else {
		// Structural-mode normalization (no rule may introduce ¬).
		if g == f {
			g = True
		}
		if h == f {
			h = False
		}
		if g == True && h == False {
			return f
		}
	}

	m.Stats.CacheLookups++
	slot := cacheIndex(uint32(f), uint32(g), uint32(h), 0x17e, uint32(len(m.ite)))
	if e := &m.ite[slot]; e.valid && e.f == f && e.g == g && e.h == h {
		m.Stats.CacheHits++
		if neg {
			return e.res ^ compBit
		}
		return e.res
	}

	lf, lg, lh := m.level(f), m.level(g), m.level(h)
	top := lf
	if lg < top {
		top = lg
	}
	if lh < top {
		top = lh
	}

	f0, f1 := m.cofactors(f, lf, top)
	g0, g1 := m.cofactors(g, lg, top)
	h0, h1 := m.cofactors(h, lh, top)

	low := m.ite3(f0, g0, h0)
	high := m.ite3(f1, g1, h1)
	res := m.mk(top, low, high)

	m.ite[slot] = iteEntry{f: f, g: g, h: h, res: res, valid: true}
	if neg {
		return res ^ compBit
	}
	return res
}

// cofactors returns the (low, high) cofactors of f with respect to the
// variable at level top, given that f's own level is lf. The complement
// bit of f is pushed through to the cofactors.
func (m *Manager) cofactors(f Ref, lf, top uint32) (Ref, Ref) {
	if lf != top {
		return f, f
	}
	n := &m.nodes[f&^compBit]
	s := f & compBit
	return n.low ^ s, n.high ^ s
}

// Not returns the complement ¬f. With complement edges this is a single
// bit flip — no node allocation, no cache traffic. Under
// DisableComplementEdges it materializes the complement through ITE.
func (m *Manager) Not(f Ref) Ref {
	if !m.noComp {
		return f ^ compBit
	}
	return m.Ite(f, False, True)
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Eq returns f ↔ g (exclusive-nor).
func (m *Manager) Eq(f, g Ref) Ref { return m.Ite(f, g, m.Not(g)) }

// Imp returns f → g.
func (m *Manager) Imp(f, g Ref) Ref { return m.Ite(f, g, True) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Ref) Ref { return m.Ite(g, False, f) }

// Nand returns ¬(f ∧ g).
func (m *Manager) Nand(f, g Ref) Ref { return m.Not(m.And(f, g)) }

// Nor returns ¬(f ∨ g).
func (m *Manager) Nor(f, g Ref) Ref { return m.Not(m.Or(f, g)) }

// AndN returns the conjunction of all arguments (True when empty).
func (m *Manager) AndN(fs ...Ref) Ref {
	res := True
	for _, f := range fs {
		res = m.And(res, f)
		if res == False {
			return False
		}
	}
	return res
}

// OrN returns the disjunction of all arguments (False when empty).
func (m *Manager) OrN(fs ...Ref) Ref {
	res := False
	for _, f := range fs {
		res = m.Or(res, f)
		if res == True {
			return True
		}
	}
	return res
}

// Implies reports whether f → g is a tautology, i.e. the state set f is
// contained in g. Thanks to canonicity this is a single ITE plus a
// comparison against True.
func (m *Manager) Implies(f, g Ref) bool { return m.Imp(f, g) == True }

// Disjoint reports whether f ∧ g is unsatisfiable.
func (m *Manager) Disjoint(f, g Ref) bool { return m.And(f, g) == False }
