package bdd

import (
	"fmt"
	"io"
	"sort"
)

// ToDot writes a Graphviz DOT rendering of f. names maps variable index
// to display name; variables beyond the slice are rendered as "x<i>".
// Solid edges are then-branches, dashed edges are else-branches.
func (m *Manager) ToDot(w io.Writer, f Ref, names []string) error {
	name := func(v int) string {
		if v < len(names) && names[v] != "" {
			return names[v]
		}
		return fmt.Sprintf("x%d", v)
	}
	if _, err := fmt.Fprintln(w, "digraph bdd {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, `  node0 [label="0", shape=box];`)
	fmt.Fprintln(w, `  node1 [label="1", shape=box];`)

	seen := make(map[Ref]bool)
	var order []Ref
	var collect func(Ref)
	collect = func(g Ref) {
		if IsTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		order = append(order, g)
		collect(m.nodes[g].low)
		collect(m.nodes[g].high)
	}
	collect(f)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	for _, g := range order {
		n := m.nodes[g]
		v := m.level2var[n.lvl&^markBit]
		fmt.Fprintf(w, "  node%d [label=\"%s\", shape=circle];\n", g, name(v))
		fmt.Fprintf(w, "  node%d -> node%d [style=dashed];\n", g, n.low)
		fmt.Fprintf(w, "  node%d -> node%d;\n", g, n.high)
	}
	if IsTerminal(f) {
		fmt.Fprintf(w, "  root [shape=plaintext, label=\"f\"]; root -> node%d;\n", f)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
