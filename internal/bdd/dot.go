package bdd

import (
	"fmt"
	"io"
	"sort"
)

// ToDot writes a Graphviz DOT rendering of f. names maps variable index
// to display name; variables beyond the slice are rendered as "x<i>".
//
// Edge styles follow the usual complement-edge conventions: solid edges
// are then-branches, dashed edges are else-branches, and a dotted edge
// is a complemented arc (the function continues at the negation of its
// target). The single terminal box is the constant 0; the constant 1 is
// a dotted arc into it. A plaintext legend node spells this out in the
// rendering itself.
func (m *Manager) ToDot(w io.Writer, f Ref, names []string) error {
	name := func(v int) string {
		if v < len(names) && names[v] != "" {
			return names[v]
		}
		return fmt.Sprintf("x%d", v)
	}
	if _, err := fmt.Fprintln(w, "digraph bdd {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, `  legend [shape=plaintext, label="solid: then   dashed: else   dotted: complemented"];`)
	fmt.Fprintln(w, `  node0 [label="0", shape=box];`)

	// Collect the plain (sign-stripped) nodes: f and ¬f are the same
	// picture apart from the root arc's style.
	seen := make(map[Ref]bool)
	var order []Ref
	var collect func(Ref)
	collect = func(g Ref) {
		g &^= compBit
		if g == 0 || seen[g] {
			return
		}
		seen[g] = true
		order = append(order, g)
		collect(m.nodes[g].low)
		collect(m.nodes[g].high)
	}
	collect(f)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// edge renders one arc with its branch style, switching to dotted
	// when the target edge is complemented.
	edge := func(from string, to Ref, elseBranch bool) {
		style := ""
		switch {
		case to&compBit != 0:
			style = " [style=dotted]"
		case elseBranch:
			style = " [style=dashed]"
		}
		fmt.Fprintf(w, "  %s -> node%d%s;\n", from, to&^compBit, style)
	}

	for _, g := range order {
		n := m.nodes[g]
		v := m.level2var[n.lvl&^markBit]
		fmt.Fprintf(w, "  node%d [label=\"%s\", shape=circle];\n", g, name(v))
		edge(fmt.Sprintf("node%d", g), n.low, true)
		edge(fmt.Sprintf("node%d", g), n.high, false)
	}
	fmt.Fprintln(w, `  root [shape=plaintext, label="f"];`)
	edge("root", f, false)
	_, err := fmt.Fprintln(w, "}")
	return err
}
