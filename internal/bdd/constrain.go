package bdd

// Generalized cofactor (the "constrain" operator of Coudert/Madre) and
// the sibling "restrict" minimizer. Constrain(f, c) returns a function
// that agrees with f on every assignment satisfying c and is chosen to
// shrink the BDD elsewhere; it is the standard tool for image
// computations restricted to care sets:
//
//	f|c  with  (f ⇓ c) ∧ c  =  f ∧ c
//
// Minimize (a.k.a. restrict) is the variant that skips variables absent
// from f's support, which avoids introducing new variables and often
// minimizes better in practice.

// Constrain computes the generalized cofactor f ⇓ c. c must be
// satisfiable.
func (m *Manager) Constrain(f, c Ref) Ref {
	m.checkRef(f)
	m.checkRef(c)
	if c == False {
		panic("bdd: Constrain with unsatisfiable care set")
	}
	return m.constrain(f, c)
}

const opConstrainTag = opConstrain

func (m *Manager) constrain(f, c Ref) Ref {
	switch {
	case c == True, IsTerminal(f):
		return f
	case f == c:
		return True
	}
	if !m.noComp && f == c^compBit {
		// f is false on all of the care set.
		return False
	}
	if res, ok := m.binCacheGet(opConstrainTag, f, c); ok {
		return res
	}
	lf, lc := m.level(f), m.level(c)
	top := lf
	if lc < top {
		top = lc
	}
	var res Ref
	if lc == top {
		c0, c1 := m.low(c), m.high(c)
		switch {
		case c0 == False:
			// care set forces the variable true
			f1 := f
			if lf == top {
				f1 = m.high(f)
			}
			res = m.constrain(f1, c1)
		case c1 == False:
			f0 := f
			if lf == top {
				f0 = m.low(f)
			}
			res = m.constrain(f0, c0)
		default:
			f0, f1 := m.cofactors(f, lf, top)
			low := m.constrain(f0, c0)
			high := m.constrain(f1, c1)
			res = m.mk(top, low, high)
		}
	} else {
		low := m.constrain(m.low(f), c)
		high := m.constrain(m.high(f), c)
		res = m.mk(top, low, high)
	}
	m.binCachePut(opConstrainTag, f, c, res)
	return res
}

// Minimize computes the "restrict" heuristic minimization of f with
// respect to the care set c: a function that agrees with f on c and
// whose BDD never mentions variables outside f's support.
func (m *Manager) Minimize(f, c Ref) Ref {
	m.checkRef(f)
	m.checkRef(c)
	if c == False {
		panic("bdd: Minimize with unsatisfiable care set")
	}
	return m.minimize(f, c)
}

// opMinimize shares the binop cache with a distinct tag.
const opMinimize uint32 = opPermuteBase + 1<<16

func (m *Manager) minimize(f, c Ref) Ref {
	if c == True || IsTerminal(f) {
		return f
	}
	if res, ok := m.binCacheGet(opMinimize, f, c); ok {
		return res
	}
	lf, lc := m.level(f), m.level(c)
	var res Ref
	if lc < lf {
		// c tests a variable f does not depend on: existentially drop it
		// instead of introducing it.
		cc := m.ite3(m.low(c), True, m.high(c)) // c0 ∨ c1
		res = m.minimize(f, cc)
	} else if lc == lf {
		c0, c1 := m.low(c), m.high(c)
		switch {
		case c0 == False:
			res = m.minimize(m.high(f), c1)
		case c1 == False:
			res = m.minimize(m.low(f), c0)
		default:
			low := m.minimize(m.low(f), c0)
			high := m.minimize(m.high(f), c1)
			res = m.mk(lf, low, high)
		}
	} else {
		low := m.minimize(m.low(f), c)
		high := m.minimize(m.high(f), c)
		res = m.mk(lf, low, high)
	}
	m.binCachePut(opMinimize, f, c, res)
	return res
}
