package bdd

import (
	"testing"
)

// TestSetCacheSizeValidation: only powers of two inside the allowed
// band are accepted, and accepted sizes are observable.
func TestSetCacheSizeValidation(t *testing.T) {
	m := New(4)
	for _, bad := range []int{0, -1, 3, 1000, 1 << 9, 1<<24 + 1, 1 << 25, (1 << 16) + 1} {
		if err := m.SetCacheSize(bad); err == nil {
			t.Errorf("SetCacheSize(%d): want error, got nil", bad)
		}
	}
	for _, good := range []int{1 << 10, 1 << 12, 1 << 16, 1 << 20} {
		if err := m.SetCacheSize(good); err != nil {
			t.Fatalf("SetCacheSize(%d): %v", good, err)
		}
		if m.CacheSize() != good {
			t.Fatalf("CacheSize() = %d, want %d", m.CacheSize(), good)
		}
		if len(m.ite) != good || len(m.binop) != good {
			t.Fatalf("cache slices not resized: ite %d binop %d want %d", len(m.ite), len(m.binop), good)
		}
	}
}

// TestSetCacheSizeKeepsResults: operations after a resize still compute
// correct canonical results (the caches are memoization only).
func TestSetCacheSizeKeepsResults(t *testing.T) {
	m := New(6)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.NVar(2)))
	g := m.Xor(m.Var(3), m.Var(4))
	want := m.And(f, g)
	if err := m.SetCacheSize(1 << 10); err != nil {
		t.Fatal(err)
	}
	if got := m.And(f, g); got != want {
		t.Fatalf("And after resize: got %v want %v", got, want)
	}
	if got := m.Not(m.Or(m.Not(f), m.Not(g))); got != want {
		t.Fatalf("De Morgan after resize: got %v want %v", got, want)
	}
}

// TestCacheAutoGrowth: a manager whose arena outgrows the default
// computed-table size doubles the tables at the next safe point, and a
// pinned manager does not.
func TestCacheAutoGrowth(t *testing.T) {
	grow := func(pin bool) *Manager {
		m := New(64)
		if pin {
			if err := m.SetCacheSize(defaultCacheSize); err != nil {
				t.Fatal(err)
			}
		}
		// Build a function family big enough to push the arena past the
		// default cache size (~65k nodes): disjoint products of xors.
		acc := False
		for i := 0; i < 60; i += 2 {
			acc = m.Or(acc, m.And(m.Xor(m.Var(i), m.Var(i+1)), m.Var((i+7)%64)))
		}
		m.Protect(acc)
		for m.NumNodes() <= defaultCacheSize {
			acc = m.Or(acc, randomDense(m))
			m.Protect(acc)
		}
		m.MaybeGC()
		return m
	}
	if m := grow(false); m.CacheSize() <= defaultCacheSize {
		t.Fatalf("auto growth: cache still %d with %d live nodes", m.CacheSize(), m.NumNodes())
	} else if m.Stats.CacheGrowths == 0 {
		t.Fatal("auto growth: CacheGrowths not counted")
	}
	if m := grow(true); m.CacheSize() != defaultCacheSize {
		t.Fatalf("pinned: cache grew to %d", m.CacheSize())
	}
}

// randomDense builds a dense-ish function to bloat the arena quickly.
var denseSeed uint64 = 1

func randomDense(m *Manager) Ref {
	xorshift := func() uint64 {
		denseSeed ^= denseSeed << 13
		denseSeed ^= denseSeed >> 7
		denseSeed ^= denseSeed << 17
		return denseSeed
	}
	acc := True
	for i := 0; i < 64; i++ {
		if xorshift()%3 == 0 {
			acc = m.And(acc, m.Lit(i, xorshift()%2 == 0))
		} else if xorshift()%3 == 1 {
			acc = m.Xor(acc, m.Var(i))
		}
	}
	return acc
}
