package bdd

// Quantification and restriction. The model checker's image computation
//
//	EX f  =  ∃v' [ f(v') ∧ R(v,v') ]
//
// is provided as the fused AndExists ("relational product"), which avoids
// building the full conjunction before quantifying.
//
// All traversals here go through the sign-aware cofactor helpers: a
// complemented argument ref pushes its complement bit onto the cofactors
// rather than being materialized, and the computed caches key on the
// signed refs, so ∃v.f and ∃v.¬f occupy distinct cache lines (they are
// distinct functions — quantification does not commute with negation).

// Operation tags for the binary computed cache.
const (
	opExists uint32 = 1 + iota
	opForAll
	opRestrict // f restricted by a cube of literals (g = literal cube)
	opConstrain
	opPermuteBase // opPermuteBase+k is the k-th registered permutation
)

func (m *Manager) binCacheGet(op uint32, f, g Ref) (Ref, bool) {
	m.Stats.CacheLookups++
	slot := cacheIndex(op, uint32(f), uint32(g), 0x9d, uint32(len(m.binop)))
	e := &m.binop[slot]
	if e.op == op && e.f == f && e.g == g {
		m.Stats.CacheHits++
		return e.res, true
	}
	return False, false
}

func (m *Manager) binCachePut(op uint32, f, g, res Ref) {
	slot := cacheIndex(op, uint32(f), uint32(g), 0x9d, uint32(len(m.binop)))
	m.binop[slot] = binEntry{op: op, f: f, g: g, res: res}
}

// Cube returns the conjunction of the positive literals of vars, the
// usual encoding of a set of variables to quantify. Positive cubes have
// plain (non-complemented) else edges throughout, so the returned ref is
// never complemented.
func (m *Manager) Cube(vars []int) Ref {
	// Build bottom-up in level order for linear size.
	levels := make([]int, 0, len(vars))
	for _, v := range vars {
		levels = append(levels, m.var2level[v])
	}
	// insertion sort descending (cubes are small)
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] > levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	res := True
	for _, l := range levels {
		res = m.mk(uint32(l), False, res)
	}
	return res
}

// CubeVars decodes a positive cube back into its variable set.
func (m *Manager) CubeVars(cube Ref) []int {
	var vars []int
	for !IsTerminal(cube) {
		vars = append(vars, m.level2var[m.level(cube)])
		if m.low(cube) == False {
			cube = m.high(cube)
		} else {
			cube = m.low(cube)
		}
	}
	return vars
}

// Exists computes ∃ vars . f where vars is a positive cube. With the
// parallel engine enabled, sufficiently large calls evaluate in a
// fork-join parallel section (the result Ref is identical either way).
func (m *Manager) Exists(f, cube Ref) Ref {
	m.checkRef(f)
	m.checkRef(cube)
	if m.parGate(f) {
		return m.parRunOne(func(c *parCtx) (Ref, bool) { return m.parExists(c, f, cube, 0) })
	}
	return m.exists(f, cube)
}

func (m *Manager) exists(f, cube Ref) Ref {
	if IsTerminal(f) || cube == True {
		return f
	}
	lf := m.level(f)
	lc := m.level(cube)
	for lc < lf {
		cube = m.high(cube)
		if cube == True {
			return f
		}
		lc = m.level(cube)
	}
	if res, ok := m.binCacheGet(opExists, f, cube); ok {
		return res
	}
	f0, f1 := m.low(f), m.high(f)
	var res Ref
	if lf == lc {
		// Quantify this variable: f|v=0 ∨ f|v=1.
		low := m.exists(f0, m.high(cube))
		if low == True {
			res = True
		} else {
			high := m.exists(f1, m.high(cube))
			res = m.ite3(low, True, high)
		}
	} else {
		low := m.exists(f0, cube)
		high := m.exists(f1, cube)
		res = m.mk(lf, low, high)
	}
	m.binCachePut(opExists, f, cube, res)
	return res
}

// ForAll computes ∀ vars . f where vars is a positive cube.
func (m *Manager) ForAll(f, cube Ref) Ref {
	m.checkRef(f)
	m.checkRef(cube)
	return m.forall(f, cube)
}

func (m *Manager) forall(f, cube Ref) Ref {
	if IsTerminal(f) || cube == True {
		return f
	}
	lf := m.level(f)
	lc := m.level(cube)
	for lc < lf {
		cube = m.high(cube)
		if cube == True {
			return f
		}
		lc = m.level(cube)
	}
	if res, ok := m.binCacheGet(opForAll, f, cube); ok {
		return res
	}
	f0, f1 := m.low(f), m.high(f)
	var res Ref
	if lf == lc {
		low := m.forall(f0, m.high(cube))
		if low == False {
			res = False
		} else {
			high := m.forall(f1, m.high(cube))
			res = m.ite3(low, high, False)
		}
	} else {
		low := m.forall(f0, cube)
		high := m.forall(f1, cube)
		res = m.mk(lf, low, high)
	}
	m.binCachePut(opForAll, f, cube, res)
	return res
}

// aexEntry caches AndExists triples.
type aexEntry struct {
	f, g, cube Ref
	res        Ref
	valid      bool
}

// AndExists computes ∃ cube . (f ∧ g) without materializing f ∧ g — the
// relational-product operation at the heart of symbolic image
// computation.
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	m.checkRef(f)
	m.checkRef(g)
	m.checkRef(cube)
	m.Stats.AndExistsCalls++
	if m.parGate(f, g) {
		return m.parRunOne(func(c *parCtx) (Ref, bool) { return m.parAndExists(c, f, g, cube, 0) })
	}
	if m.aex == nil {
		m.aex = make([]aexEntry, m.cacheSize)
	}
	return m.andExists(f, g, cube)
}

func (m *Manager) andExists(f, g, cube Ref) Ref {
	if f == False || g == False {
		return False
	}
	if f == True && g == True {
		return True
	}
	if f == True {
		return m.exists(g, cube)
	}
	if g == True {
		return m.exists(f, cube)
	}
	if f == g {
		return m.exists(f, cube)
	}
	if !m.noComp && f == g^compBit {
		return False // f ∧ ¬f
	}
	if cube == True {
		return m.ite3(f, g, False)
	}
	if f > g {
		f, g = g, f // And is commutative; canonicalize for the cache
	}

	lf, lg := m.level(f), m.level(g)
	top := lf
	if lg < top {
		top = lg
	}
	lc := m.level(cube)
	for lc < top {
		cube = m.high(cube)
		if cube == True {
			return m.ite3(f, g, False)
		}
		lc = m.level(cube)
	}

	slot := cacheIndex(uint32(f), uint32(g), uint32(cube), 0xae, uint32(len(m.aex)))
	m.Stats.AndExistsLookups++
	if e := &m.aex[slot]; e.valid && e.f == f && e.g == g && e.cube == cube {
		m.Stats.CacheHits++
		m.Stats.AndExistsHits++
		return e.res
	}

	f0, f1 := m.cofactors(f, lf, top)
	g0, g1 := m.cofactors(g, lg, top)

	var res Ref
	if top == lc {
		rest := m.high(cube)
		low := m.andExists(f0, g0, rest)
		if low == True {
			res = True
		} else {
			high := m.andExists(f1, g1, rest)
			res = m.ite3(low, True, high)
		}
	} else {
		low := m.andExists(f0, g0, cube)
		high := m.andExists(f1, g1, cube)
		res = m.mk(top, low, high)
	}
	m.aex[slot] = aexEntry{f: f, g: g, cube: cube, res: res, valid: true}
	return res
}

// Restrict computes the cofactor f|v=val, the restriction operation of
// Section 2 (linear in the size of f).
func (m *Manager) Restrict(f Ref, v int, val bool) Ref {
	lit := m.Lit(v, val)
	return m.restrictCube(f, lit)
}

// RestrictCube restricts f by a cube of literals (a conjunction where
// each mentioned variable appears exactly once, positively or
// negatively). Negative literals arrive as complemented refs (NVar is
// ¬Var under else-edge canonicalization), so the cube walk reads
// effective — sign-adjusted — children throughout.
func (m *Manager) RestrictCube(f, litCube Ref) Ref {
	m.checkRef(f)
	m.checkRef(litCube)
	return m.restrictCube(f, litCube)
}

func (m *Manager) restrictCube(f, c Ref) Ref {
	if IsTerminal(f) || c == True {
		return f
	}
	if c == False {
		panic("bdd: RestrictCube with contradictory cube")
	}
	lf, lc := m.level(f), m.level(c)
	for lc < lf {
		if m.low(c) == False {
			c = m.high(c)
		} else {
			c = m.low(c)
		}
		if c == True {
			return f
		}
		lc = m.level(c)
	}
	if res, ok := m.binCacheGet(opRestrict, f, c); ok {
		return res
	}
	var res Ref
	if lf == lc {
		if m.low(c) == False { // positive literal: take high branch
			res = m.restrictCube(m.high(f), m.high(c))
		} else { // negative literal
			res = m.restrictCube(m.low(f), m.low(c))
		}
	} else {
		low := m.restrictCube(m.low(f), c)
		high := m.restrictCube(m.high(f), c)
		res = m.mk(lf, low, high)
	}
	m.binCachePut(opRestrict, f, c, res)
	return res
}

// Support returns the variables f depends on, in increasing level order.
// f and ¬f share nodes, so the walk is over plain (sign-stripped) refs.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	levels := make(map[uint32]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		g &^= compBit
		if g == 0 || seen[g] {
			return
		}
		seen[g] = true
		n := &m.nodes[g]
		levels[n.lvl&^markBit] = true
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	var out []int
	for l := 0; l < len(m.level2var); l++ {
		if levels[uint32(l)] {
			out = append(out, m.level2var[l])
		}
	}
	return out
}
