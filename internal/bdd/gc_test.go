package bdd

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGCKeepsProtectedRoots(t *testing.T) {
	m := New(6)
	f := m.Protect(m.Xor(m.Var(0), m.And(m.Var(1), m.Var(2))))
	// create garbage
	for i := 0; i < 100; i++ {
		m.Or(m.And(m.Var(i%6), m.Var((i+1)%6)), m.Var((i+2)%6))
	}
	before := m.NumNodes()
	freed := m.GC()
	if freed == 0 {
		t.Fatal("expected garbage to be freed")
	}
	if m.NumNodes() >= before {
		t.Fatal("node count did not drop")
	}
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	// f must still be intact
	if !m.Eval(f, []bool{true, false, false, false, false, false}) {
		t.Fatal("protected root corrupted by GC")
	}
	if m.Eval(f, []bool{true, true, true, false, false, false}) {
		t.Fatal("protected root corrupted by GC (xor case)")
	}
}

func TestGCRebuildsCanonicity(t *testing.T) {
	m := New(4)
	f := m.Protect(m.Or(m.Var(0), m.Var(1)))
	m.And(m.Var(2), m.Var(3)) // garbage
	m.GC()
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	// Recreating the same function must yield the same ref.
	g := m.Or(m.Var(0), m.Var(1))
	if g != f {
		t.Fatalf("canonicity lost after GC: %d vs %d", g, f)
	}
	// Freed slots must be reused rather than growing the arena.
	n1 := len(m.nodes)
	m.And(m.Var(2), m.Var(3))
	if len(m.nodes) != n1 {
		t.Fatal("free list not reused")
	}
}

func TestProtectNesting(t *testing.T) {
	m := New(2)
	f := m.And(m.Var(0), m.Var(1))
	m.Protect(f)
	m.Protect(f)
	m.Unprotect(f)
	m.GC()
	if m.And(m.Var(0), m.Var(1)) != f {
		t.Fatal("doubly-protected node collected after single unprotect")
	}
	m.Unprotect(f)
	m.GC()
	// After full GC with no roots everything but the terminal goes.
	if m.NumNodes() != 1 {
		t.Fatalf("expected only the terminal to survive, have %d nodes", m.NumNodes())
	}
}

func TestMaybeGC(t *testing.T) {
	m := New(4)
	// Complement edges keep xor-of-variables tiny (one node per pair on
	// top of the four variables), so the threshold sits below that.
	m.SetGCThreshold(6)
	for i := 0; i < 50; i++ {
		m.Xor(m.Var(i%4), m.Var((i+1)%4))
	}
	if m.MaybeGC() == 0 {
		t.Fatal("MaybeGC should have collected above threshold")
	}
	m.SetGCThreshold(1 << 30)
	if m.MaybeGC() != 0 {
		t.Fatal("MaybeGC should be a no-op below threshold")
	}
}

func TestPermutationSwapsVariables(t *testing.T) {
	m := New(4)
	// swap 0<->1, 2<->3
	p := m.NewPermutation([]int{1, 0, 3, 2})
	f := m.And(m.Var(0), m.Or(m.Var(2), m.NVar(3)))
	g := p.Apply(f)
	want := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(2)))
	if g != want {
		t.Fatal("permutation result wrong")
	}
	// applying twice is the identity for an involution
	if p.Apply(g) != f {
		t.Fatal("involution not identity")
	}
}

func TestPermutationInterleaved(t *testing.T) {
	// The model-checking pattern: variables 2i are current, 2i+1 next.
	m := New(6)
	toNext := m.NewPermutation([]int{1, 0, 3, 2, 5, 4})
	cur := m.AndN(m.Var(0), m.NVar(2), m.Var(4))
	next := toNext.Apply(cur)
	want := m.AndN(m.Var(1), m.NVar(3), m.Var(5))
	if next != want {
		t.Fatal("current->next renaming wrong")
	}
}

func TestCompose(t *testing.T) {
	m := New(3)
	// f = x0 xor x1 ; substitute x1 := x2 & x0
	f := m.Xor(m.Var(0), m.Var(1))
	g := m.And(m.Var(2), m.Var(0))
	got := m.Compose(f, 1, g)
	want := m.Xor(m.Var(0), g)
	if got != want {
		t.Fatal("Compose wrong")
	}
}

func TestVectorCompose(t *testing.T) {
	m := New(4)
	f := m.Or(m.Var(0), m.Var(1))
	got := m.VectorCompose(f, map[int]Ref{
		0: m.Var(2),
		1: m.Var(3),
	})
	want := m.Or(m.Var(2), m.Var(3))
	if got != want {
		t.Fatal("VectorCompose wrong")
	}
	// simultaneous swap: x0:=x1, x1:=x0
	h := m.And(m.Var(0), m.NVar(1))
	got = m.VectorCompose(h, map[int]Ref{0: m.Var(1), 1: m.Var(0)})
	want = m.And(m.Var(1), m.NVar(0))
	if got != want {
		t.Fatal("simultaneous VectorCompose wrong")
	}
}

func TestReorderPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n = 5
	for trial := 0; trial < 30; trial++ {
		m := New(n)
		f, ref := randPair(r, m, n, 4)
		order := r.Perm(n)
		roots := m.Reorder(order, []Ref{f})
		checkAgainstTT(t, m, roots[0], ref, "after reorder")
		if err := CheckInvariants(m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// order actually applied
		got := m.Order()
		for i := range order {
			if got[i] != order[i] {
				t.Fatalf("order not applied: %v vs %v", got, order)
			}
		}
	}
}

func TestReorderTranslatesProtectedRoots(t *testing.T) {
	m := New(4)
	f := m.Protect(m.Xor(m.Var(0), m.Var(3)))
	roots := m.Reorder([]int{3, 2, 1, 0}, []Ref{f})
	if m.ProtectedCount() != 1 {
		t.Fatal("protected root lost in reorder")
	}
	m.GC()
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	if !m.Eval(roots[0], []bool{true, false, false, false}) {
		t.Fatal("translated root wrong after reorder+GC")
	}
}

func TestSiftReducesInterleavingBlowup(t *testing.T) {
	// f = (x0↔x3) ∧ (x1↔x4) ∧ (x2↔x5) is exponential when the related
	// pairs are far apart and linear when interleaved.
	m := New(6)
	f := m.AndN(
		m.Eq(m.Var(0), m.Var(3)),
		m.Eq(m.Var(1), m.Var(4)),
		m.Eq(m.Var(2), m.Var(5)),
	)
	before := m.Size(f)
	roots := m.Sift([]Ref{f})
	after := m.Size(roots[0])
	if err := CheckInvariants(m); err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("sifting made things worse: %d -> %d", before, after)
	}
	if after >= before {
		t.Logf("sift: no improvement (%d)", before)
	}
	// semantics preserved
	env := []bool{true, false, true, true, false, true}
	if !m.Eval(roots[0], env) {
		t.Fatal("sift broke semantics")
	}
	env[3] = false
	if m.Eval(roots[0], env) {
		t.Fatal("sift broke semantics (negative case)")
	}
}

func TestToDot(t *testing.T) {
	m := New(2)
	f := m.And(m.Var(0), m.Var(1))
	var sb strings.Builder
	if err := m.ToDot(&sb, f, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", `label="a"`, `label="b"`, "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	m := New(4)
	m.And(m.Var(0), m.Var(1))
	if m.Stats.ITECalls == 0 {
		t.Fatal("ITECalls not counted")
	}
	m.And(m.Var(0), m.Var(1)) // should hit cache
	if m.Stats.CacheHits == 0 {
		t.Fatal("cache hits not counted")
	}
}

func TestAddVarAfterUse(t *testing.T) {
	m := New(2)
	f := m.And(m.Var(0), m.Var(1))
	v := m.AddVar()
	if v != 2 {
		t.Fatalf("AddVar returned %d", v)
	}
	g := m.And(f, m.Var(2))
	if !m.Eval(g, []bool{true, true, true}) || m.Eval(g, []bool{true, true, false}) {
		t.Fatal("late-added variable misbehaves")
	}
}

func TestUniqueTableGrowth(t *testing.T) {
	// Force many nodes to trigger bucket growth and rehash.
	m := New(16)
	f := False
	for i := 0; i < 16; i++ {
		f = m.Xor(f, m.Var(i))
	}
	g := m.Or(f, m.And(m.Var(0), m.Var(15)))
	_ = g
	// canonical check after any growth
	h := False
	for i := 0; i < 16; i++ {
		h = m.Xor(h, m.Var(i))
	}
	if h != f {
		t.Fatal("canonicity lost after table growth")
	}
}
