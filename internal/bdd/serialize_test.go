package bdd

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	const n = 5
	for trial := 0; trial < 30; trial++ {
		m := New(n)
		f, ref := randPair(r, m, n, 4)
		g, ref2 := randPair(r, m, n, 4)

		var buf bytes.Buffer
		if err := m.Save(&buf, []Ref{f, g}); err != nil {
			t.Fatal(err)
		}
		// load into a fresh manager
		m2 := New(n)
		roots, err := m2.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) != 2 {
			t.Fatalf("got %d roots", len(roots))
		}
		checkAgainstTT(t, m2, roots[0], ref, "loaded f")
		checkAgainstTT(t, m2, roots[1], ref2, "loaded g")
	}
}

func TestSaveLoadSameManagerCanonical(t *testing.T) {
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(3)))
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	roots, err := m.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0] != f {
		t.Fatal("loading into the same manager must be the identity")
	}
}

func TestSaveLoadAcrossDifferentOrder(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	const n = 5
	m := New(n)
	f, ref := randPair(r, m, n, 4)
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	// target manager with a scrambled order
	m2 := New(n)
	order := r.Perm(n)
	m2.Reorder(order, nil)
	roots, err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstTT(t, m2, roots[0], ref, "loaded under different order")
}

func TestSaveLoadTerminals(t *testing.T) {
	m := New(2)
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{True, False}); err != nil {
		t.Fatal(err)
	}
	roots, err := m.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0] != True || roots[1] != False {
		t.Fatal("terminal round trip failed")
	}
}

// TestSaveLoadComplementCrossMode is the v2 round-trip property over
// complemented refs: random functions and their negations are saved
// from a manager in either representation and loaded into a manager in
// either representation. All four pairings must reproduce the exact
// function, and a saved f/¬f pair must load as a complement pair.
func TestSaveLoadComplementCrossMode(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	const n = 5
	modes := []struct {
		name string
		opts []Option
	}{
		{"comp", nil},
		{"nocomp", []Option{DisableComplementEdges()}},
	}
	for _, src := range modes {
		for _, dst := range modes {
			t.Run(src.name+"_to_"+dst.name, func(t *testing.T) {
				for trial := 0; trial < 20; trial++ {
					m := New(n, src.opts...)
					f, ref := randPair(r, m, n, 4)
					var buf bytes.Buffer
					if err := m.Save(&buf, []Ref{f, m.Not(f)}); err != nil {
						t.Fatal(err)
					}
					m2 := New(n, dst.opts...)
					roots, err := m2.Load(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					checkAgainstTT(t, m2, roots[0], ref, "loaded f")
					checkAgainstTT(t, m2, roots[1], ref.not(), "loaded ¬f")
					if roots[1] != m2.Not(roots[0]) {
						t.Fatal("loaded pair is not a canonical complement pair")
					}
				}
			})
		}
	}
}

// TestLoadV1Legacy feeds a hand-assembled legacy v1 file (two-terminal
// table, no complement bits) to Load and checks the functions come back
// intact in both representations.
func TestLoadV1Legacy(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("GOBDD1\n")
	u32 := func(xs ...uint32) {
		for _, x := range xs {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], x)
			buf.Write(b[:])
		}
	}
	u32(2)       // nvars
	u32(0)       // level 0 holds variable 0
	u32(1)       // level 1 holds variable 1
	u32(3)       // node count (table indices 0,1 are the terminals)
	u32(1, 0, 1) // idx 2: x1       (level 1, low=False, high=True)
	u32(1, 1, 0) // idx 3: ¬x1      (level 1, low=True, high=False)
	u32(0, 2, 3) // idx 4: x0 ⊕ x1  (level 0, low=x1, high=¬x1)
	u32(2)       // root count
	u32(4, 1)    // roots: x0 ⊕ x1, True

	want := ttVar(2, 0).xor(ttVar(2, 1))
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"comp", nil},
		{"nocomp", []Option{DisableComplementEdges()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := New(2, tc.opts...)
			roots, err := m.Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(roots) != 2 {
				t.Fatalf("got %d roots", len(roots))
			}
			checkAgainstTT(t, m, roots[0], want, "v1 xor")
			if roots[1] != True {
				t.Fatal("v1 terminal root did not load as True")
			}
		})
	}
}

func TestLoadErrors(t *testing.T) {
	m := New(2)
	// bad magic
	if _, err := m.Load(strings.NewReader("NOTABDD")); err == nil {
		t.Fatal("bad magic must fail")
	}
	// truncated
	var buf bytes.Buffer
	f := m.And(m.Var(0), m.Var(1))
	if err := m.Save(&buf, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := m.Load(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated input must fail")
	}
	// too many variables for the target manager
	big := New(8)
	var buf2 bytes.Buffer
	if err := big.Save(&buf2, []Ref{big.Var(7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(&buf2); err == nil {
		t.Fatal("variable overflow must fail")
	}
}
