package bdd

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	const n = 5
	for trial := 0; trial < 30; trial++ {
		m := New(n)
		f, ref := randPair(r, m, n, 4)
		g, ref2 := randPair(r, m, n, 4)

		var buf bytes.Buffer
		if err := m.Save(&buf, []Ref{f, g}); err != nil {
			t.Fatal(err)
		}
		// load into a fresh manager
		m2 := New(n)
		roots, err := m2.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) != 2 {
			t.Fatalf("got %d roots", len(roots))
		}
		checkAgainstTT(t, m2, roots[0], ref, "loaded f")
		checkAgainstTT(t, m2, roots[1], ref2, "loaded g")
	}
}

func TestSaveLoadSameManagerCanonical(t *testing.T) {
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(3)))
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	roots, err := m.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0] != f {
		t.Fatal("loading into the same manager must be the identity")
	}
}

func TestSaveLoadAcrossDifferentOrder(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	const n = 5
	m := New(n)
	f, ref := randPair(r, m, n, 4)
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	// target manager with a scrambled order
	m2 := New(n)
	order := r.Perm(n)
	m2.Reorder(order, nil)
	roots, err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstTT(t, m2, roots[0], ref, "loaded under different order")
}

func TestSaveLoadTerminals(t *testing.T) {
	m := New(2)
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{True, False}); err != nil {
		t.Fatal(err)
	}
	roots, err := m.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0] != True || roots[1] != False {
		t.Fatal("terminal round trip failed")
	}
}

func TestLoadErrors(t *testing.T) {
	m := New(2)
	// bad magic
	if _, err := m.Load(strings.NewReader("NOTABDD")); err == nil {
		t.Fatal("bad magic must fail")
	}
	// truncated
	var buf bytes.Buffer
	f := m.And(m.Var(0), m.Var(1))
	if err := m.Save(&buf, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := m.Load(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated input must fail")
	}
	// too many variables for the target manager
	big := New(8)
	var buf2 bytes.Buffer
	if err := big.Save(&buf2, []Ref{big.Var(7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(&buf2); err == nil {
		t.Fatal("variable overflow must fail")
	}
}
