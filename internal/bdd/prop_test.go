package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the core algebraic laws. Each
// property interprets three random uint16 truth tables over 4 variables
// as BDDs and checks the law by canonicity (equal Refs ⟺ equal
// functions).

// fromTruthTable builds the BDD of the function whose value on
// assignment a (bit v of a = variable v) is bit a of bits.
func fromTruthTable(m *Manager, n int, bits uint64) Ref {
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	var build func(prefix, v int) Ref
	build = func(prefix, v int) Ref {
		if v == n {
			if bits>>prefix&1 == 1 {
				return True
			}
			return False
		}
		low := build(prefix, v+1)
		high := build(prefix|1<<v, v+1)
		return m.Ite(m.Var(v), high, low)
	}
	return build(0, 0)
}

const propVars = 4

func prop3(t *testing.T, law func(m *Manager, f, g, h Ref) bool) {
	t.Helper()
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(99)),
	}
	err := quick.Check(func(a, b, c uint16) bool {
		m := New(propVars)
		f := fromTruthTable(m, propVars, uint64(a))
		g := fromTruthTable(m, propVars, uint64(b))
		h := fromTruthTable(m, propVars, uint64(c))
		return law(m, f, g, h)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropDoubleNegation(t *testing.T) {
	prop3(t, func(m *Manager, f, _, _ Ref) bool {
		return m.Not(m.Not(f)) == f
	})
}

func TestPropDeMorgan(t *testing.T) {
	prop3(t, func(m *Manager, f, g, _ Ref) bool {
		return m.Not(m.And(f, g)) == m.Or(m.Not(f), m.Not(g))
	})
}

func TestPropDistributivity(t *testing.T) {
	prop3(t, func(m *Manager, f, g, h Ref) bool {
		return m.And(f, m.Or(g, h)) == m.Or(m.And(f, g), m.And(f, h))
	})
}

func TestPropAbsorption(t *testing.T) {
	prop3(t, func(m *Manager, f, g, _ Ref) bool {
		return m.Or(f, m.And(f, g)) == f && m.And(f, m.Or(f, g)) == f
	})
}

func TestPropIteShannon(t *testing.T) {
	prop3(t, func(m *Manager, f, g, h Ref) bool {
		return m.Ite(f, g, h) == m.Or(m.And(f, g), m.And(m.Not(f), h))
	})
}

func TestPropXorAlgebra(t *testing.T) {
	prop3(t, func(m *Manager, f, g, _ Ref) bool {
		return m.Xor(f, g) == m.Xor(g, f) &&
			m.Xor(f, f) == False &&
			m.Xor(f, False) == f &&
			m.Xor(f, True) == m.Not(f)
	})
}

func TestPropQuantifierDuality(t *testing.T) {
	prop3(t, func(m *Manager, f, _, _ Ref) bool {
		cube := m.Cube([]int{0, 2})
		return m.Not(m.Exists(m.Not(f), cube)) == m.ForAll(f, cube)
	})
}

func TestPropExistsMonotone(t *testing.T) {
	prop3(t, func(m *Manager, f, g, _ Ref) bool {
		cube := m.Cube([]int{1, 3})
		fg := m.Or(f, g)
		return m.Or(m.Exists(f, cube), m.Exists(g, cube)) == m.Exists(fg, cube)
	})
}

func TestPropShannonExpansion(t *testing.T) {
	prop3(t, func(m *Manager, f, _, _ Ref) bool {
		for v := 0; v < propVars; v++ {
			lo := m.Restrict(f, v, false)
			hi := m.Restrict(f, v, true)
			if m.Ite(m.Var(v), hi, lo) != f {
				return false
			}
		}
		return true
	})
}

func TestPropSatCountComplement(t *testing.T) {
	prop3(t, func(m *Manager, f, _, _ Ref) bool {
		total := pow2(propVars)
		return m.SatCount(f, propVars)+m.SatCount(m.Not(f), propVars) == total
	})
}

func TestPropReorderCanonicityIsomorphism(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(123))}
	err := quick.Check(func(a uint16, seed int64) bool {
		m := New(propVars)
		f := fromTruthTable(m, propVars, uint64(a))
		count := m.SatCount(f, propVars)
		r := rand.New(rand.NewSource(seed))
		order := r.Perm(propVars)
		roots := m.Reorder(order, []Ref{f})
		// model count is order-independent
		return m.SatCount(roots[0], propVars) == count
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropGCPreservesFunctions(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(321))}
	err := quick.Check(func(a, b uint16) bool {
		m := New(propVars)
		f := m.Protect(fromTruthTable(m, propVars, uint64(a)))
		fromTruthTable(m, propVars, uint64(b)) // garbage
		m.GC()
		// rebuilding a yields the same ref (canonicity survived)
		return fromTruthTable(m, propVars, uint64(a)) == f
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
