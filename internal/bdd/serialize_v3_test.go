package bdd

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// TestSaveNamedLoadNamedRoundTrip is the v3 round-trip property: random
// named functions saved from a manager in either complement-edge mode
// load back into a manager in either mode with names and functions
// intact, in record order.
func TestSaveNamedLoadNamedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	const n = 5
	modes := []struct {
		name string
		opts []Option
	}{
		{"comp", nil},
		{"nocomp", []Option{DisableComplementEdges()}},
	}
	for _, src := range modes {
		for _, dst := range modes {
			t.Run(src.name+"_to_"+dst.name, func(t *testing.T) {
				for trial := 0; trial < 15; trial++ {
					m := New(n, src.opts...)
					f, ref := randPair(r, m, n, 4)
					g, ref2 := randPair(r, m, n, 4)
					var buf bytes.Buffer
					err := m.SaveNamed(&buf, []NamedRoot{
						{Name: "reach", Ref: f},
						{Name: "fair", Ref: g},
						{Name: "", Ref: m.Not(f)},
					})
					if err != nil {
						t.Fatal(err)
					}
					m2 := New(n, dst.opts...)
					roots, err := m2.LoadNamed(bytes.NewReader(buf.Bytes()), false)
					if err != nil {
						t.Fatal(err)
					}
					if len(roots) != 3 {
						t.Fatalf("got %d roots", len(roots))
					}
					if roots[0].Name != "reach" || roots[1].Name != "fair" || roots[2].Name != "" {
						t.Fatalf("names not preserved: %q %q %q", roots[0].Name, roots[1].Name, roots[2].Name)
					}
					checkAgainstTT(t, m2, roots[0].Ref, ref, "named reach")
					checkAgainstTT(t, m2, roots[1].Ref, ref2, "named fair")
					checkAgainstTT(t, m2, roots[2].Ref, ref.not(), "named ¬reach")
					if roots[2].Ref != m2.Not(roots[0].Ref) {
						t.Fatal("saved complement pair did not load canonical")
					}
				}
			})
		}
	}
}

// TestLoadNamedAdoptOrder saves from a manager whose order was scrambled
// (standing in for a sifted order) and loads with adoptOrder: the target
// manager must come out in the saved order and the functions must still
// be correct.
func TestLoadNamedAdoptOrder(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	const n = 6
	for trial := 0; trial < 10; trial++ {
		m := New(n)
		f, ref := randPair(r, m, n, 4)
		m.Protect(f)
		order := r.Perm(n)
		rs := m.Reorder(order, []Ref{f})
		f = rs[0]
		var buf bytes.Buffer
		if err := m.SaveNamed(&buf, []NamedRoot{{Name: "reach", Ref: f}}); err != nil {
			t.Fatal(err)
		}
		m2 := New(n)
		roots, err := m2.LoadNamed(bytes.NewReader(buf.Bytes()), true)
		if err != nil {
			t.Fatal(err)
		}
		got, want := m2.Order(), m.Order()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order not adopted: got %v want %v", got, want)
			}
		}
		checkAgainstTT(t, m2, roots[0].Ref, ref, "adopted-order load")
		if m2.Size(roots[0].Ref) != m.Size(f) {
			t.Fatalf("adopted order gives size %d, source had %d", m2.Size(roots[0].Ref), m.Size(f))
		}
	}
}

// TestLoadNamedAdoptOrderPostSift exercises adoption against an order
// produced by the real sifting pass rather than a synthetic permutation.
func TestLoadNamedAdoptOrderPostSift(t *testing.T) {
	const n = 8
	m := New(n)
	// An order-sensitive function: interleaved comparator chain.
	f := True
	for i := 0; i+1 < n; i += 2 {
		f = m.And(f, m.Xor(m.Var(i), m.Var(i+1)))
	}
	m.Protect(f)
	rs := m.Sift([]Ref{f})
	f = rs[0]
	var buf bytes.Buffer
	if err := m.SaveNamed(&buf, []NamedRoot{{Name: "fair", Ref: f}}); err != nil {
		t.Fatal(err)
	}
	m2 := New(n)
	roots, err := m2.LoadNamed(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	got, want := m2.Order(), m.Order()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sifted order not adopted: got %v want %v", got, want)
		}
	}
	if m2.Size(roots[0].Ref) != m.Size(f) {
		t.Fatalf("post-sift sizes differ: got %d want %d", m2.Size(roots[0].Ref), m.Size(f))
	}
}

// TestLoadNamedAdoptOrderLegacy: adoption also applies to v1/v2 files,
// whose headers carry the same saved order.
func TestLoadNamedAdoptOrderLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	const n = 5
	m := New(n)
	f, ref := randPair(r, m, n, 4)
	m.Protect(f)
	rs := m.Reorder(r.Perm(n), []Ref{f})
	f = rs[0]
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{f}); err != nil {
		t.Fatal(err)
	}
	m2 := New(n)
	roots, err := m2.LoadNamed(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0].Name != "" {
		t.Fatalf("v2 file produced a named root %q", roots[0].Name)
	}
	got, want := m2.Order(), m.Order()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order not adopted from v2 file: got %v want %v", got, want)
		}
	}
	checkAgainstTT(t, m2, roots[0].Ref, ref, "v2 adopted-order load")
}

// TestLoadNamedBackCompat reads v1 and v2 streams through LoadNamed:
// functions come back with empty names.
func TestLoadNamedBackCompat(t *testing.T) {
	t.Run("v2", func(t *testing.T) {
		m := New(4)
		f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(3)))
		var buf bytes.Buffer
		if err := m.Save(&buf, []Ref{f, m.Not(f)}); err != nil {
			t.Fatal(err)
		}
		m2 := New(4)
		roots, err := m2.LoadNamed(bytes.NewReader(buf.Bytes()), false)
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) != 2 || roots[0].Name != "" || roots[1].Name != "" {
			t.Fatalf("v2 roots should be anonymous: %+v", roots)
		}
		if roots[1].Ref != m2.Not(roots[0].Ref) {
			t.Fatal("v2 complement pair lost through LoadNamed")
		}
	})
	t.Run("v1", func(t *testing.T) {
		m := New(2)
		roots, err := m.LoadNamed(bytes.NewReader(goldenV1(t)), false)
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) != 2 || roots[0].Name != "" {
			t.Fatalf("v1 roots should be anonymous: %+v", roots)
		}
		want := m.Xor(m.Var(0), m.Var(1))
		if roots[0].Ref != want || roots[1].Ref != True {
			t.Fatal("v1 functions wrong through LoadNamed")
		}
	})
}

// TestLoadStripsV3Names: the unnamed Load entry point accepts v3 files,
// dropping the names but keeping the roots.
func TestLoadStripsV3Names(t *testing.T) {
	m := New(3)
	f := m.Or(m.Var(0), m.And(m.Var(1), m.Var(2)))
	var buf bytes.Buffer
	if err := m.SaveNamed(&buf, []NamedRoot{{Name: "reach", Ref: f}, {Name: "fair", Ref: True}}); err != nil {
		t.Fatal(err)
	}
	m2 := New(3)
	roots, err := m2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 || roots[1] != True {
		t.Fatalf("Load on v3: got %v", roots)
	}
	want := m2.Or(m2.Var(0), m2.And(m2.Var(1), m2.Var(2)))
	if roots[0] != want {
		t.Fatal("Load on v3 lost the function")
	}
}

// TestSaveNamedRejectsHugeName: names beyond the record bound are a save
// error, not a file that can never be read back.
func TestSaveNamedRejectsHugeName(t *testing.T) {
	m := New(2)
	var buf bytes.Buffer
	err := m.SaveNamed(&buf, []NamedRoot{{Name: strings.Repeat("x", maxSavedNameLen+1), Ref: True}})
	if err == nil {
		t.Fatal("oversized name saved without error")
	}
}

// TestAdoptOrderErrors: adoption must reject files over a different
// variable set and non-permutation order records.
func TestAdoptOrderErrors(t *testing.T) {
	t.Run("var count mismatch", func(t *testing.T) {
		m := New(4)
		var buf bytes.Buffer
		if err := m.SaveNamed(&buf, []NamedRoot{{Name: "r", Ref: m.Var(0)}}); err != nil {
			t.Fatal(err)
		}
		m2 := New(6)
		if _, err := m2.LoadNamed(bytes.NewReader(buf.Bytes()), true); err == nil {
			t.Fatal("adopting a 4-var order into a 6-var manager must fail")
		}
		// Without adoption the same file loads fine (the manager is wider).
		if _, err := m2.LoadNamed(bytes.NewReader(buf.Bytes()), false); err != nil {
			t.Fatalf("plain load of narrower file: %v", err)
		}
	})
	t.Run("non-permutation order", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteString("GOBDD3\n")
		u32 := func(xs ...uint32) {
			for _, x := range xs {
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], x)
				buf.Write(b[:])
			}
		}
		u32(2)    // nvars
		u32(0, 0) // order with a duplicate: not a permutation
		u32(0)    // node count
		u32(0)    // root count
		m := New(2)
		if _, err := m.LoadNamed(bytes.NewReader(buf.Bytes()), true); err == nil {
			t.Fatal("duplicate order entry adopted without error")
		}
		// Without adoption the order is only used to map levels; the file
		// (no nodes, no roots) still loads.
		if _, err := m.LoadNamed(bytes.NewReader(buf.Bytes()), false); err != nil {
			t.Fatalf("plain load of duplicate-order file: %v", err)
		}
	})
}
