package bdd

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestToDotGolden pins the DOT rendering of a function/negation pair.
// With complement edges the two graphs share every node; only the root
// arc differs (plain for f, dotted for ¬f), and the legend documents
// the dotted-arc convention. Any representation change that breaks
// this sharing shows up as a golden diff.
func TestToDotGolden(t *testing.T) {
	m := New(2)
	f := m.And(m.Var(0), m.Not(m.Var(1)))

	cases := []struct {
		name   string
		f      Ref
		golden string
	}{
		{"f", f, "dot_f.golden"},
		{"notf", m.Not(f), "dot_notf.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := m.ToDot(&sb, tc.f, []string{"a", "b"}); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if sb.String() != string(want) {
				t.Errorf("DOT output differs from %s:\n got:\n%s\nwant:\n%s", path, sb.String(), want)
			}
		})
	}

	// The complement pair must share all nodes: the renderings may only
	// differ in the style of the root arc.
	var a, b strings.Builder
	m.ToDot(&a, f, nil)
	m.ToDot(&b, m.Not(f), nil)
	if strings.ReplaceAll(a.String(), "root -> node3 [style=dotted];", "root -> node3;") !=
		strings.ReplaceAll(b.String(), "root -> node3 [style=dotted];", "root -> node3;") {
		t.Error("f and ¬f renderings differ beyond the root arc")
	}
}
