package bdd

// Satisfying assignments, model counting, evaluation and size metrics.
// The descents here carry the complement parity explicitly: following an
// edge xors the parent's complement bit onto the child, and a walk that
// lands on the terminal reads its accumulated sign (True = complemented
// terminal). SatCount exploits parity instead of threading it: the
// density of ¬g is 1 minus the density of g, so the memo table holds
// plain refs only and f, ¬f share every entry.

// Eval evaluates f under the assignment env (indexed by variable).
// Variables beyond len(env) are treated as false.
func (m *Manager) Eval(f Ref, env []bool) bool {
	for !IsTerminal(f) {
		n := &m.nodes[f&^compBit]
		s := f & compBit
		v := m.level2var[n.lvl&^markBit]
		if v < len(env) && env[v] {
			f = n.high ^ s
		} else {
			f = n.low ^ s
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over nvars
// variables as a float64. Counts up to 2^53 are exact. It computes the
// density of f (the fraction of all assignments that satisfy it, which
// is order-independent) and scales by 2^nvars.
func (m *Manager) SatCount(f Ref, nvars int) float64 {
	dens := make(map[Ref]float64)
	var density func(Ref) float64
	density = func(g Ref) float64 {
		switch g {
		case False:
			return 0
		case True:
			return 1
		}
		if g&compBit != 0 {
			// density(¬g) = 1 - density(g): memoize on the plain ref.
			return 1 - density(g^compBit)
		}
		if d, ok := dens[g]; ok {
			return d
		}
		n := &m.nodes[g]
		d := 0.5*density(n.low) + 0.5*density(n.high)
		dens[g] = d
		return d
	}
	return density(f) * pow2(nvars)
}

func pow2(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 2
	}
	return r
}

// AnySat returns one satisfying assignment of f as a slice indexed by
// variable: 1 for true, 0 for false, -1 for don't-care. Returns nil when
// f is unsatisfiable. The assignment chosen is deterministic: at each
// node the low branch is preferred when satisfiable.
func (m *Manager) AnySat(f Ref) []int8 {
	if f == False {
		return nil
	}
	out := make([]int8, m.NumVars())
	for i := range out {
		out[i] = -1
	}
	for !IsTerminal(f) {
		n := &m.nodes[f&^compBit]
		s := f & compBit
		v := m.level2var[n.lvl&^markBit]
		if n.low^s != False {
			out[v] = 0
			f = n.low ^ s
		} else {
			out[v] = 1
			f = n.high ^ s
		}
	}
	return out
}

// PickOne returns the lexicographically least full assignment to vars
// that satisfies f (don't-cares resolved to false), or nil if f is
// unsatisfiable. It is the "choose an arbitrary element of the set" step
// of the witness construction, made deterministic for reproducibility.
func (m *Manager) PickOne(f Ref, vars []int) []bool {
	a := m.AnySat(f)
	if a == nil {
		return nil
	}
	out := make([]bool, len(vars))
	for i, v := range vars {
		out[i] = v < len(a) && a[v] == 1
	}
	return out
}

// MintermCube converts a full assignment over vars into the BDD cube of
// that single state.
func (m *Manager) MintermCube(vars []int, vals []bool) Ref {
	if len(vars) != len(vals) {
		panic("bdd: MintermCube length mismatch")
	}
	// Conjoin in decreasing level order for linear construction.
	type lv struct {
		lvl int
		val bool
	}
	lits := make([]lv, len(vars))
	for i, v := range vars {
		lits[i] = lv{m.var2level[v], vals[i]}
	}
	for i := 1; i < len(lits); i++ {
		for j := i; j > 0 && lits[j].lvl > lits[j-1].lvl; j-- {
			lits[j], lits[j-1] = lits[j-1], lits[j]
		}
	}
	res := True
	for _, l := range lits {
		if l.val {
			res = m.mk(uint32(l.lvl), False, res)
		} else {
			res = m.mk(uint32(l.lvl), res, False)
		}
	}
	return res
}

// AllSat invokes fn for every satisfying assignment of f over exactly
// the given vars (don't-cares are expanded). fn may return false to stop
// the enumeration early. The assignment slice is reused between calls.
func (m *Manager) AllSat(f Ref, vars []int, fn func([]bool) bool) {
	if f == False {
		return
	}
	lvlPos := make(map[uint32]int, len(vars)) // level -> position in vars
	for i, v := range vars {
		lvlPos[uint32(m.var2level[v])] = i
	}
	// order positions by level
	order := make([]int, 0, len(vars))
	for l := 0; l < len(m.level2var); l++ {
		if p, ok := lvlPos[uint32(l)]; ok {
			order = append(order, p)
		}
	}
	asg := make([]bool, len(vars))
	stop := false
	var rec func(g Ref, oi int)
	rec = func(g Ref, oi int) {
		if stop || g == False {
			return
		}
		if oi == len(order) {
			if g != True {
				// f depends on a variable outside vars; treat rest as exists
				if m.existsAll(g) {
					if !fn(asg) {
						stop = true
					}
				}
				return
			}
			if !fn(asg) {
				stop = true
			}
			return
		}
		pos := order[oi]
		lvl := uint32(m.var2level[vars[pos]])
		gl := m.level(g)
		if IsTerminal(g) || gl > lvl {
			// variable is a don't-care here: branch both ways
			asg[pos] = false
			rec(g, oi+1)
			asg[pos] = true
			rec(g, oi+1)
			return
		}
		g0, g1 := m.low(g), m.high(g)
		if gl < lvl {
			// g tests a variable not in vars before lvl: existentially
			// branch through it without recording.
			rec(g0, oi)
			if !stop {
				rec(g1, oi)
			}
			return
		}
		asg[pos] = false
		rec(g0, oi+1)
		asg[pos] = true
		rec(g1, oi+1)
	}
	rec(f, 0)
}

// existsAll reports whether g is satisfiable (it always is unless g is
// the False terminal, since BDDs are reduced).
func (m *Manager) existsAll(g Ref) bool { return g != False }

// Size returns the number of distinct nodes reachable from f, including
// the terminal. f and ¬f live on the same nodes, so the walk strips
// complement bits and Size(f) == Size(Not(f)) by construction.
func (m *Manager) Size(f Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		g &^= compBit
		if seen[g] {
			return
		}
		seen[g] = true
		if g == 0 {
			return
		}
		n := &m.nodes[g]
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	return len(seen)
}
