package bdd

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// goldenV2 saves a nontrivial function pair (including a complemented
// root) and returns the raw v2 bytes.
func goldenV2(t *testing.T) []byte {
	t.Helper()
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(3)))
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{f, m.Not(f), m.Or(m.Var(2), f)}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenV3 saves the same function family as named warm-start roots and
// returns the raw v3 bytes.
func goldenV3(t *testing.T) []byte {
	t.Helper()
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(3)))
	var buf bytes.Buffer
	err := m.SaveNamed(&buf, []NamedRoot{
		{Name: "reach", Ref: f},
		{Name: "fair", Ref: m.Not(f)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenV1 hand-assembles a legacy v1 stream (Save only writes v2):
// the two-variable xor from TestLoadV1Legacy.
func goldenV1(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("GOBDD1\n")
	u32 := func(xs ...uint32) {
		for _, x := range xs {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], x)
			buf.Write(b[:])
		}
	}
	u32(2)       // nvars
	u32(0, 1)    // saved order
	u32(3)       // node count
	u32(1, 0, 1) // idx 2: x1
	u32(1, 1, 0) // idx 3: ¬x1
	u32(0, 2, 3) // idx 4: x0 ⊕ x1
	u32(2)       // root count
	u32(4, 1)    // roots
	return buf.Bytes()
}

// loadNoPanic runs Load and converts any panic into a test failure that
// names the mutated input, so one bad offset doesn't mask the rest of
// the sweep.
func loadNoPanic(t *testing.T, m *Manager, data []byte, what string) (roots []Ref, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: Load panicked: %v", what, r)
			err = nil
			roots = nil
		}
	}()
	return m.Load(bytes.NewReader(data))
}

// TestLoadTruncatedEveryPrefix feeds every strict prefix of a valid v1
// and v2 stream to Load: each must return an error — there is no prefix
// of a saved BDD that is itself a complete file — and none may panic.
func TestLoadTruncatedEveryPrefix(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"v2", goldenV2(t)},
		{"v1", goldenV1(t)},
		{"v3", goldenV3(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for cut := 0; cut < len(tc.data); cut++ {
				m := New(4)
				if _, err := loadNoPanic(t, m, tc.data[:cut], "prefix"); err == nil {
					t.Fatalf("prefix of %d/%d bytes loaded without error", cut, len(tc.data))
				}
			}
		})
	}
}

// TestLoadBitFlipSweep mutates every byte of the golden streams (each
// of the 8 bit flips, one at a time). Load may reject the mutant or may
// accept it — a flipped sign bit, say, decodes to the complement, which
// is a perfectly valid file — but it must never panic, and any roots it
// does return must be structurally sound in the target manager.
func TestLoadBitFlipSweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"v2", goldenV2(t)},
		{"v1", goldenV1(t)},
		{"v3", goldenV3(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for pos := 0; pos < len(tc.data); pos++ {
				for bit := 0; bit < 8; bit++ {
					mutant := append([]byte(nil), tc.data...)
					mutant[pos] ^= 1 << bit
					m := New(4)
					roots, err := loadNoPanic(t, m, mutant, "bit flip")
					if err != nil {
						continue
					}
					for _, r := range roots {
						// Size walks the DAG from r; a dangling or
						// out-of-arena ref would be caught here.
						m.checkRef(r)
						m.Size(r)
						if got := m.Not(m.Not(r)); got != r {
							t.Fatalf("pos %d bit %d: loaded root not involutive under Not", pos, bit)
						}
					}
				}
			}
		})
	}
}

// TestLoadCorruptRecords exercises each explicit rejection path of the
// v2 loader with targeted corruptions of a known-good stream, checking
// the error (not a panic, not a silent success) surfaces.
func TestLoadCorruptRecords(t *testing.T) {
	base := goldenV2(t)
	u32at := func(data []byte, off int, v uint32) []byte {
		out := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(out[off:], v)
		return out
	}
	const (
		hdr      = 7       // magic
		offNvars = hdr     // nvars (4)
		offOrder = hdr + 4 // 4 vars × 4 bytes
		offCount = offOrder + 16
		offNodes = offCount + 4 // first node triple
	)
	cases := []struct {
		name string
		data []byte
	}{
		{"wrong magic", append([]byte("NOTBDD!"), base[hdr:]...)},
		{"v3 magic", append([]byte("GOBDD3\n"), base[hdr:]...)},
		{"empty", nil},
		{"magic only", base[:hdr]},
		{"variable overflow", u32at(base, offNvars, 99)},
		{"order entry out of range", u32at(base, offOrder, 7)},
		{"node level out of range", u32at(base, offNodes, 12)},
		{"forward edge reference", u32at(base, offNodes+4, 500<<1)},
		{"huge node count, truncated body", u32at(base, offCount, 0xFFFFFFF0)},
		{"huge root count, truncated body", u32at(base, len(base)-12, 0xFFFFFFF0)},
		{"root index out of range", u32at(base, len(base)-4, 500<<1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(4)
			if _, err := loadNoPanic(t, m, tc.data, tc.name); err == nil {
				t.Fatalf("corrupt stream loaded without error")
			}
		})
	}
}

// TestLoadV3CorruptRecords exercises the rejection paths specific to
// the v3 named-root trailer: name lengths beyond the record bound,
// names longer than the remaining stream, and out-of-range root edges.
func TestLoadV3CorruptRecords(t *testing.T) {
	base := goldenV3(t)
	const hdr = 7
	nnodes := binary.LittleEndian.Uint32(base[hdr+4+16:])
	// Offset of the root count, then of the first root's name-length word.
	rootCountOff := hdr + 4 + 16 + 4 + int(nnodes)*12
	nameLenOff := rootCountOff + 4
	firstName := int(binary.LittleEndian.Uint32(base[nameLenOff:]))
	firstRootOff := nameLenOff + 4 + firstName
	u32at := func(data []byte, off int, v uint32) []byte {
		out := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(out[off:], v)
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"huge name length", u32at(base, nameLenOff, 0xFFFFFFF0)},
		{"name length over bound", u32at(base, nameLenOff, maxSavedNameLen+1)},
		{"name longer than stream", u32at(base, nameLenOff, maxSavedNameLen)},
		{"root edge out of range", u32at(base, firstRootOff, 500<<1)},
		{"huge root count, truncated trailer", u32at(base, rootCountOff, 0xFFFFFFF0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(4)
			if _, err := loadNoPanic(t, m, tc.data, tc.name); err == nil {
				t.Fatalf("corrupt v3 stream loaded without error")
			}
		})
	}
}

// TestLoadSignBitCorruption flips exactly the complement bit of every
// edge and root record in the v2 stream: each mutant is a VALID file
// denoting different functions, so Load must succeed and the loaded
// roots must still be canonical (involutive complements, consistent
// with a fresh evaluation).
func TestLoadSignBitCorruption(t *testing.T) {
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(3)))
	var buf bytes.Buffer
	if err := m.Save(&buf, []Ref{f, m.Not(f)}); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	// Record layout after the 7-byte magic: nvars, order×4, nnodes, then
	// triples (lvl, low, high) and finally nroots + roots. Edge fields
	// are the 2nd and 3rd word of each triple, and every root word.
	var nnodes uint32 = binary.LittleEndian.Uint32(base[7+4+16:])
	edgeOffsets := []int{}
	nodeBase := 7 + 4 + 16 + 4
	for i := uint32(0); i < nnodes; i++ {
		off := nodeBase + int(i)*12
		edgeOffsets = append(edgeOffsets, off+4, off+8)
	}
	rootBase := nodeBase + int(nnodes)*12 + 4
	nroots := binary.LittleEndian.Uint32(base[rootBase-4:])
	for i := uint32(0); i < nroots; i++ {
		edgeOffsets = append(edgeOffsets, rootBase+int(i)*4)
	}
	for _, off := range edgeOffsets {
		mutant := append([]byte(nil), base...)
		mutant[off] ^= 1 // complement bit of the little-endian word
		m2 := New(4)
		roots, err := loadNoPanic(t, m2, mutant, "sign flip")
		if err != nil {
			t.Fatalf("offset %d: sign-flipped stream must stay loadable: %v", off, err)
		}
		if len(roots) != 2 {
			t.Fatalf("offset %d: got %d roots", off, len(roots))
		}
		for _, r := range roots {
			m2.checkRef(r)
			if got := m2.Not(m2.Not(r)); got != r {
				t.Fatalf("offset %d: root not involutive under Not", off)
			}
		}
	}
}
