package bdd

// Variable permutation. The symbolic checker represents the transition
// relation over two copies of the state variables (v, v'); after an image
// computation the result is expressed over v' and must be renamed back to
// v (and vice versa). Permutations are registered once with
// NewPermutation so repeated applications share a per-permutation cache.
//
// Renaming commutes with negation, so all recursions here split the
// complement bit off the argument, memoize on the plain ref and re-apply
// the bit to the result — f and ¬f share one cache entry and one
// traversal.

// Permutation is a registered variable renaming.
type Permutation struct {
	m     *Manager
	id    int
	varTo []int // varTo[v] = image variable of v
	cache map[Ref]Ref
}

// NewPermutation registers the renaming varTo, which must be a bijection
// on the full variable set (varTo[v] is the variable that replaces v).
func (m *Manager) NewPermutation(varTo []int) *Permutation {
	if len(varTo) != m.NumVars() {
		panic("bdd: permutation length mismatch")
	}
	seen := make([]bool, len(varTo))
	for _, w := range varTo {
		if w < 0 || w >= len(varTo) || seen[w] {
			panic("bdd: permutation is not a bijection")
		}
		seen[w] = true
	}
	p := &Permutation{m: m, id: len(m.perms), varTo: append([]int(nil), varTo...)}
	m.perms = append(m.perms, p)
	return p
}

// Apply renames the variables of f according to the permutation.
func (p *Permutation) Apply(f Ref) Ref {
	p.m.checkRef(f)
	if p.cache == nil {
		p.cache = make(map[Ref]Ref)
	}
	return p.apply(f)
}

func (p *Permutation) apply(f Ref) Ref {
	if IsTerminal(f) {
		return f
	}
	s := f & compBit
	fp := f ^ s
	if r, ok := p.cache[fp]; ok {
		return r ^ s
	}
	m := p.m
	n := m.nodes[fp]
	low := p.apply(n.low)
	high := p.apply(n.high)
	v := m.level2var[n.lvl&^markBit]
	w := p.varTo[v]
	res := m.composeVar(w, low, high)
	p.cache[fp] = res
	return res ^ s
}

// composeVar builds ITE(Var(w), high, low) efficiently. When the target
// variable's level is above both cofactor levels this is a single mk;
// otherwise it falls back to full ITE (needed when a permutation does not
// respect the level order).
func (m *Manager) composeVar(w int, low, high Ref) Ref {
	lvl := uint32(m.var2level[w])
	if lvl < m.level(low) && lvl < m.level(high) {
		return m.mk(lvl, low, high)
	}
	return m.ite3(m.Var(w), high, low)
}

// Compose substitutes the function g for variable v in f (functional
// composition f[v := g]).
func (m *Manager) Compose(f Ref, v int, g Ref) Ref {
	m.checkRef(f)
	m.checkRef(g)
	cache := make(map[Ref]Ref)
	lvl := uint32(m.var2level[v])
	var rec func(Ref) Ref
	rec = func(u Ref) Ref {
		if IsTerminal(u) || m.level(u) > lvl {
			return u
		}
		s := u & compBit
		up := u ^ s
		if r, ok := cache[up]; ok {
			return r ^ s
		}
		n := m.nodes[up]
		var res Ref
		if n.lvl&^markBit == lvl {
			res = m.ite3(g, n.high, n.low)
		} else {
			low := rec(n.low)
			high := rec(n.high)
			res = m.composeVar(m.level2var[n.lvl&^markBit], low, high)
		}
		cache[up] = res
		return res ^ s
	}
	return rec(f)
}

// VectorCompose substitutes subst[v] (when non-negative... see note) —
// here represented as a map from variable to replacement function —
// simultaneously into f.
func (m *Manager) VectorCompose(f Ref, subst map[int]Ref) Ref {
	m.checkRef(f)
	if len(subst) == 0 {
		return f
	}
	maxLvl := uint32(0)
	for v := range subst {
		if l := uint32(m.var2level[v]); l > maxLvl {
			maxLvl = l
		}
	}
	cache := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(u Ref) Ref {
		if IsTerminal(u) || m.level(u) > maxLvl {
			return u
		}
		s := u & compBit
		up := u ^ s
		if r, ok := cache[up]; ok {
			return r ^ s
		}
		n := m.nodes[up]
		low := rec(n.low)
		high := rec(n.high)
		v := m.level2var[n.lvl&^markBit]
		var res Ref
		if g, ok := subst[v]; ok {
			res = m.ite3(g, high, low)
		} else {
			res = m.composeVar(v, low, high)
		}
		cache[up] = res
		return res ^ s
	}
	return rec(f)
}
