package bdd

// Cross-manager transfer. CopyTo moves a function between managers —
// isolating a sub-problem in a private arena, differential testing
// across configurations, or persisting into a fresh manager. (The
// parallel disjunctive image used to shard components across
// thread-confined scratch managers this way; that schedule now runs on
// the shared parallel engine in parallel.go, but CopyTo remains the
// tool for deliberate isolation.) The copy is structural — every node
// is re-created level-for-level through the destination's unique
// table — so it is only meaningful between managers that agree on the
// variable order; NewWithOrder exists to mint such scratch arenas from
// a live manager's current order.

// NewWithOrder creates a Manager over len(order) variables whose
// initial variable order places order[i] at level i (order must be a
// permutation of 0..len(order)-1). The arena starts empty apart from
// the terminal, so installing the order is free. Options (e.g.
// DisableComplementEdges) apply as in New; scratch managers minted for
// CopyTo must use the same representation as the source.
func NewWithOrder(order []int, opts ...Option) *Manager {
	m := New(len(order), opts...)
	m.validateOrder(order)
	copy(m.level2var, order)
	for l, v := range order {
		m.var2level[v] = l
	}
	return m
}

// CopyTo rebuilds f — a node of m — inside dst and returns the
// corresponding dst Ref. Both managers must place every variable at the
// same level (in practice dst is created with NewWithOrder(m.Order())):
// the copy re-creates each node at its source level through dst's
// unique table, and a mismatched order would silently assemble a
// diagram violating the ordering invariant, so CopyTo verifies the
// orders agree and panics otherwise. The managers must also agree on
// the node representation (complement edges on or off): a structural
// copy across representations would plant complemented edges in a
// manager whose algorithms assume there are none, so that too panics.
//
// CopyTo only reads m and only writes dst. That asymmetry makes
// thread-confined sharding safe where callers want it: a coordinator
// goroutine may copy into several scratch managers while no operation
// runs on m, and each worker may later mutate its own scratch without
// synchronization.
func (m *Manager) CopyTo(dst *Manager, f Ref) Ref {
	m.checkRef(f)
	if dst == m {
		return f
	}
	if dst.noComp != m.noComp {
		panic("bdd: CopyTo between managers with different node representations")
	}
	if len(dst.level2var) != len(m.level2var) {
		panic("bdd: CopyTo between managers with different variable counts")
	}
	for l, v := range m.level2var {
		if dst.level2var[l] != v {
			panic("bdd: CopyTo between managers with different variable orders")
		}
	}
	// Memoize on plain refs: f and ¬f share the same copied subgraph,
	// and a plain source ref always copies to a plain destination ref
	// (stored else edges are plain, so the sign of a canonical ref is
	// determined by the function's value at the all-false assignment,
	// which the copy preserves).
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(g Ref) Ref {
		if IsTerminal(g) {
			return g
		}
		s := g & compBit
		gp := g ^ s
		if r, ok := memo[gp]; ok {
			return r ^ s
		}
		n := m.nodes[gp]
		low := walk(n.low)
		high := walk(n.high)
		r := dst.mk(n.lvl&^markBit, low, high)
		memo[gp] = r
		return r ^ s
	}
	return walk(f)
}
