package bdd

// Cross-manager transfer. The parallel disjunctive image computation
// (kripke/disjunct.go) evaluates independent AndExists calls in worker
// goroutines; since a Manager is single-threaded by design, each worker
// builds into a private scratch Manager and the coordinator moves
// operands in and results out with CopyTo. The copy is structural —
// every node is re-created level-for-level through the destination's
// unique table — so it is only meaningful between managers that agree
// on the variable order; NewWithOrder exists to mint such scratch
// arenas from a live manager's current order.

// NewWithOrder creates a Manager over len(order) variables whose
// initial variable order places order[i] at level i (order must be a
// permutation of 0..len(order)-1). The arena starts empty apart from
// the terminals, so installing the order is free.
func NewWithOrder(order []int) *Manager {
	m := New(len(order))
	m.validateOrder(order)
	copy(m.level2var, order)
	for l, v := range order {
		m.var2level[v] = l
	}
	return m
}

// CopyTo rebuilds f — a node of m — inside dst and returns the
// corresponding dst Ref. Both managers must place every variable at the
// same level (in practice dst is created with NewWithOrder(m.Order())):
// the copy re-creates each node at its source level through dst's
// unique table, and a mismatched order would silently assemble a
// diagram violating the ordering invariant, so CopyTo verifies the
// orders agree and panics otherwise.
//
// CopyTo only reads m and only writes dst. That asymmetry is what makes
// the scratch-arena concurrency model work: a coordinator goroutine may
// copy into several scratch managers while no operation runs on m, and
// each worker may later mutate its own scratch without synchronization.
func (m *Manager) CopyTo(dst *Manager, f Ref) Ref {
	m.checkRef(f)
	if dst == m {
		return f
	}
	if len(dst.level2var) != len(m.level2var) {
		panic("bdd: CopyTo between managers with different variable counts")
	}
	for l, v := range m.level2var {
		if dst.level2var[l] != v {
			panic("bdd: CopyTo between managers with different variable orders")
		}
	}
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(g Ref) Ref {
		if IsTerminal(g) {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := m.nodes[g]
		low := walk(n.low)
		high := walk(n.high)
		r := dst.mk(n.lvl&^markBit, low, high)
		memo[g] = r
		return r
	}
	return walk(f)
}
