package bdd

import (
	"math"
	"testing"
)

// TestNotNoAlloc pins the headline O(1) property of complement edges:
// negation flips the sign bit and must never touch the arena.
func TestNotNoAlloc(t *testing.T) {
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(2)))
	before := m.numAlloc
	g := m.Not(f)
	if m.numAlloc != before {
		t.Fatalf("Not allocated %d node(s)", m.numAlloc-before)
	}
	if m.Not(g) != f {
		t.Fatal("double negation is not the identity")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("terminal negation broken")
	}
	if m.numAlloc != before {
		t.Fatalf("terminal Not allocated %d node(s)", m.numAlloc-before)
	}
}

// FuzzComplement drives a random operation sequence in lockstep on a
// complement-edge manager and a DisableComplementEdges reference
// manager, then demands the two representations agree on every
// function: identical Eval on every assignment, identical SatCount,
// and clean invariants (including the else-edge canonical form) on
// both arenas. The byte stream is a little stack machine: the low
// nibble selects the operation, the high nibble its argument.
func FuzzComplement(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x06, 0x05, 0x27, 0x3a})
	f.Add([]byte{0x03, 0x04, 0x09, 0x05, 0x05})
	f.Add([]byte{0x00, 0x12, 0x08, 0x4b, 0x0c, 0x1d})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 5
		if len(ops) > 64 {
			ops = ops[:64]
		}
		m := New(n)
		ref := New(n, DisableComplementEdges())

		// Parallel stacks of protected roots. Entries are pushed
		// protected and never unprotected, so GC may run at any point.
		var ms, rs []Ref
		push := func(a, b Ref) {
			ms = append(ms, m.Protect(a))
			rs = append(rs, ref.Protect(b))
		}
		// pick returns the stack slot an argument nibble addresses, or
		// -1 when the stack is empty.
		pick := func(arg int) int {
			if len(ms) == 0 {
				return -1
			}
			return arg % len(ms)
		}

		for _, b := range ops {
			op, arg := int(b&0xF), int(b>>4)
			switch op {
			case 0, 1:
				v := arg % n
				push(m.Var(v), ref.Var(v))
			case 2:
				v := arg % n
				push(m.NVar(v), ref.NVar(v))
			case 3:
				push(False, False)
			case 4:
				push(True, True)
			case 5: // Not
				if i := pick(arg); i >= 0 {
					push(m.Not(ms[i]), ref.Not(rs[i]))
				}
			case 6: // And
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					push(m.And(ms[i], ms[j]), ref.And(rs[i], rs[j]))
				}
			case 7: // Or
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					push(m.Or(ms[i], ms[j]), ref.Or(rs[i], rs[j]))
				}
			case 8: // Xor
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					push(m.Xor(ms[i], ms[j]), ref.Xor(rs[i], rs[j]))
				}
			case 9: // Ite
				if i, j, k := pick(arg), pick(arg+1), pick(arg+2); i >= 0 {
					push(m.Ite(ms[i], ms[j], ms[k]), ref.Ite(rs[i], rs[j], rs[k]))
				}
			case 10: // Exists over one variable
				if i := pick(arg); i >= 0 {
					v := arg % n
					push(m.Exists(ms[i], m.Cube([]int{v})), ref.Exists(rs[i], ref.Cube([]int{v})))
				}
			case 11: // AndExists over one variable
				if i, j := pick(arg), pick(arg+1); i >= 0 {
					v := arg % n
					push(m.AndExists(ms[i], ms[j], m.Cube([]int{v})),
						ref.AndExists(rs[i], rs[j], ref.Cube([]int{v})))
				}
			case 12: // Constrain (skip the empty care set)
				if i, j := pick(arg), pick(arg+1); i >= 0 && ms[j] != False {
					push(m.Constrain(ms[i], ms[j]), ref.Constrain(rs[i], rs[j]))
				}
			case 13: // GC both arenas
				m.GC()
				ref.GC()
			case 14: // adjacent-level swap on both managers
				lvl := arg % (n - 1)
				m.beginSwapSession()
				m.swapLevels(lvl)
				m.endSwapSession()
				ref.beginSwapSession()
				ref.swapLevels(lvl)
				ref.endSwapSession()
			}
		}

		if err := CheckInvariants(m); err != nil {
			t.Fatalf("complement-edge manager: %v", err)
		}
		if err := CheckInvariants(ref); err != nil {
			t.Fatalf("reference manager: %v", err)
		}
		for idx := range ms {
			if c, rc := m.SatCount(ms[idx], n), ref.SatCount(rs[idx], n); math.Abs(c-rc) > 0.5 {
				t.Fatalf("stack[%d]: SatCount %v (complement) vs %v (reference)", idx, c, rc)
			}
			for a := 0; a < 1<<n; a++ {
				env := envFor(n, a)
				if m.Eval(ms[idx], env) != ref.Eval(rs[idx], env) {
					t.Fatalf("stack[%d]: representations diverge at assignment %b", idx, a)
				}
			}
		}
	})
}
