package bdd

// Shared-memory parallel evaluation, in the spirit of Sylvan's multi-core
// decision diagrams (van Dijk & van de Pol, TACAS 2015): one arena, one
// unique table, one computed cache shared by every worker, so a *single*
// big operation parallelizes instead of sharding whole subproblems across
// copied arenas. The engine is strictly additive — with ParallelWorkers
// <= 1 none of this file runs and the sequential recursion is
// byte-identical to the pre-parallel package, which is what every
// differential test leans on. Canonicity makes the parallel results easy
// to check: a parallel operation returns the *same Ref* the sequential
// recursion would, because the shared unique table admits exactly one
// node per (level, low, high) triple no matter which goroutine asks
// first.
//
// Execution model: fork-join sections. A parallel operation (or a batch
// of independent jobs, see RunParallel) runs inside a *section*; within
// it the recursion forks its high-cofactor subproblem onto a fresh
// goroutine while the fork depth and the global in-flight count stay
// under bounds derived from the worker budget, and the Go runtime's
// work-stealing scheduler distributes the resulting subtasks over the
// machine (this is the "work-stealing pool" of the design: we deliberately
// lean on the runtime's per-P deques instead of hand-rolling them). No
// worker outlives its section, so between sections the manager is exactly
// as single-threaded as it always was: garbage collection and dynamic
// reordering run in those gaps, which is the stop-the-world safe point
// the reordering engine requires — and GC()/ReorderIfNeeded()/SiftNow()
// are additionally hard no-ops while a section is in flight.
//
// Memory model inside a section (see DESIGN.md for the long form):
//
//   - node fields (lvl, low, high) are immutable once a node is
//     published; the only mutable per-node field is the unique-table
//     chain pointer (next), which is read and written exclusively under
//     the owning level's lock;
//   - the unique table is striped per level: one mutex per level guards
//     that level's buckets, counts and chains (an adjacent-level swap
//     moves whole subtables between levels, so the stripes belong to the
//     level *positions*, not to the subtable values — and swaps only run
//     between sections anyway);
//   - the arena slice header never changes inside a section: the
//     coordinator pre-extends the backing array before workers start,
//     hands fresh slots and free-list blocks to per-goroutine allocation
//     contexts under one allocator lock, and when the headroom runs out
//     the operation aborts cleanly, every worker joins, the coordinator
//     grows the arena sequentially and retries (subresults already
//     published to the table and cache make the retry cheap);
//   - the computed caches are lossy and lock-free: fixed-size arrays of
//     seqlock entries (an atomic sequence word brackets two atomic
//     payload words; writers claim a slot by CAS to an odd sequence,
//     readers reject torn or in-progress entries), tagged with a cache
//     generation so clearCaches invalidates every entry by bumping one
//     counter instead of scanning. A lost or dropped entry only costs a
//     recomputation — the unique table, not the cache, is what makes
//     results canonical.

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// parCacheSize is the per-operation parallel computed-cache size.
	parCacheSize = 1 << 16
	// parBlockSize is the number of node slots handed to a goroutine's
	// allocation context per refill of the shared allocator.
	parBlockSize = 256
	// defaultParMinNodes gates parallel sections: operations rooted over
	// fewer live nodes than this run sequentially (forking goroutines
	// under a few thousand nodes costs more than the recursion itself).
	defaultParMinNodes = 1 << 12
)

// parEntry is one lossy computed-cache slot. seq holds the cache
// generation in its upper 32 bits and a write sequence in the lower 32
// (odd = a writer holds the slot); a and b are the packed key/result
// payload. All fields are accessed atomically, so readers and writers
// never race; a torn read is detected by the sequence re-check and
// treated as a miss.
type parEntry struct {
	seq  atomic.Uint64
	a, b atomic.Uint64
}

// parCtx is one goroutine's evaluation context inside a section:
// private allocation blocks plus local statistics counters, folded into
// the manager's totals when the section ends. Contexts are pooled and
// reused across forks and sections; a context is only ever used by one
// goroutine at a time.
type parCtx struct {
	m  *Manager
	ps *parState

	// freeBlock holds node slots taken off the manager free list;
	// [next, end) is a block of fresh (never-used) arena slots.
	freeBlock []uint32
	next, end uint32

	// Local statistics, folded by parEnd.
	allocated    uint64
	iteCalls     uint64
	cacheLookups uint64
	cacheHits    uint64
	aexCalls     uint64
	aexLookups   uint64
	aexHits      uint64
	forks        uint64
}

// parState is the parallel engine attached to a Manager by
// SetParallelWorkers. Coordinator-owned fields (inSection, cursor,
// limit) are only touched between or at the boundaries of sections.
type parState struct {
	workers   int
	forkDepth int32 // fork while recursion depth is below this
	forkCap   int32 // global bound on in-flight forked subtasks
	minNodes  int   // granularity gate for parallel sections

	// levelMu[l] guards level l's subtable: buckets, mask, count and
	// every chained node's next pointer.
	levelMu []sync.Mutex

	// arenaMu guards the m.nodes slice *header* against concurrent
	// observers (CheckInvariantsConcurrent). Workers never take it: the
	// header is frozen while they run, which is the point.
	arenaMu sync.RWMutex

	// Shared allocator: fresh arena slots [cursor, limit) plus the
	// manager free list, handed out in blocks under allocMu.
	allocMu   sync.Mutex
	cursor    uint32
	limit     uint32
	exhausted atomic.Bool

	inSection bool // coordinator-owned; true while a section runs

	// Lossy computed caches and their generation tag.
	gen atomic.Uint64
	ite []parEntry
	bin []parEntry
	aex []parEntry

	inflight     atomic.Int32
	peakInFlight atomic.Int32

	ctxMu   sync.Mutex
	all     []*parCtx // every context ever minted (accounted by parEnd)
	freeCtx []*parCtx
}

// SetParallelWorkers configures the shared-memory parallel engine: big
// Ite/Exists/AndExists calls (and RunParallel batches) evaluate their
// recursion on up to n goroutines sharing this manager's arena, unique
// table and a lossy computed cache. n <= 1 disables the engine; the
// sequential path is then bit-for-bit the single-threaded
// implementation. The setting may be changed at any time between
// operations.
func (m *Manager) SetParallelWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if m.par == nil {
		if n == 1 {
			return
		}
		m.par = &parState{
			minNodes: defaultParMinNodes,
			ite:      make([]parEntry, parCacheSize),
			bin:      make([]parEntry, parCacheSize),
			aex:      make([]parEntry, parCacheSize),
			levelMu:  make([]sync.Mutex, len(m.tables)),
		}
	}
	ps := m.par
	ps.workers = n
	// Fork both cofactor branches while depth < forkDepth, giving about
	// 2^forkDepth leaf subtasks — enough to keep n cores fed through
	// imbalance without drowning the scheduler in goroutines.
	ps.forkDepth = int32(bits.Len(uint(n-1)) + 2)
	ps.forkCap = int32(4 * n)
	if len(ps.levelMu) < len(m.tables) {
		ps.levelMu = append(ps.levelMu, make([]sync.Mutex, len(m.tables)-len(ps.levelMu))...)
	}
}

// ParallelWorkers returns the configured parallel worker budget (1 when
// the engine is disabled).
func (m *Manager) ParallelWorkers() int {
	if m.par == nil || m.par.workers < 1 {
		return 1
	}
	return m.par.workers
}

// SetParallelGranularity sets the minimum number of live nodes at or
// below an operation's top level for the operation to open a parallel
// section (smaller operations stay sequential). Only meaningful after
// SetParallelWorkers; primarily a testing knob.
func (m *Manager) SetParallelGranularity(minNodes int) {
	if m.par != nil && minNodes > 0 {
		m.par.minNodes = minNodes
	}
}

// parallelActive reports whether top-level operations may open parallel
// sections right now.
func (m *Manager) parallelActive() bool {
	ps := m.par
	return ps != nil && ps.workers > 1 && !ps.inSection && !m.reordering
}

// parGate decides whether an operation rooted at the given refs is big
// enough to be worth a parallel section: the live-node population at or
// below the highest operand root must reach the granularity threshold.
// O(levels), using the exact per-level counts the subtables maintain.
func (m *Manager) parGate(refs ...Ref) bool {
	if !m.parallelActive() {
		return false
	}
	ps := m.par
	if m.numAlloc < ps.minNodes {
		return false
	}
	top := terminalLevel
	for _, f := range refs {
		if IsTerminal(f) {
			continue
		}
		if l := m.level(f); l < top {
			top = l
		}
	}
	if top == terminalLevel {
		return false
	}
	below := 0
	for l := int(top); l < len(m.tables); l++ {
		below += m.tables[l].count
		if below >= ps.minNodes {
			return true
		}
	}
	return false
}

// ——— sections ———

// parBegin freezes the arena for a section: the backing array is
// pre-extended so no worker ever appends, the fresh-slot cursor is set
// and the exhaustion flag cleared. Coordinator only.
func (m *Manager) parBegin() {
	ps := m.par
	headroom := m.numFree + (cap(m.nodes) - len(m.nodes))
	if min := parBlockSize * (ps.workers + 1); headroom < min {
		m.parGrow(min - headroom)
	}
	ps.arenaMu.Lock()
	base := len(m.nodes)
	m.nodes = m.nodes[:cap(m.nodes)]
	ps.arenaMu.Unlock()
	ps.cursor = uint32(base)
	ps.limit = uint32(len(m.nodes))
	ps.exhausted.Store(false)
	ps.inSection = true
}

// parEnd closes a section after every worker has joined: each context's
// unused slots return to the free list, the untouched fresh region is
// chained as free, and the local counters fold into the manager totals,
// restoring the sequential invariant numAlloc + numFree == len(nodes).
// Coordinator only.
func (m *Manager) parEnd() {
	ps := m.par
	for _, c := range ps.all {
		for _, idx := range c.freeBlock {
			m.parFreeSlot(idx)
		}
		c.freeBlock = c.freeBlock[:0]
		for idx := c.next; idx < c.end; idx++ {
			m.parFreeSlot(idx)
		}
		c.next, c.end = 0, 0
		m.numAlloc += int(c.allocated)
		m.Stats.ITECalls += c.iteCalls
		m.Stats.CacheLookups += c.cacheLookups
		m.Stats.CacheHits += c.cacheHits
		m.Stats.AndExistsCalls += c.aexCalls
		m.Stats.AndExistsLookups += c.aexLookups
		m.Stats.AndExistsHits += c.aexHits
		m.Stats.ParallelForks += c.forks
		c.allocated, c.iteCalls, c.cacheLookups, c.cacheHits = 0, 0, 0, 0
		c.aexCalls, c.aexLookups, c.aexHits, c.forks = 0, 0, 0, 0
	}
	for idx := ps.cursor; idx < ps.limit; idx++ {
		m.parFreeSlot(idx)
	}
	ps.cursor, ps.limit = 0, 0
	if p := int(ps.peakInFlight.Load()); p > m.Stats.ParallelPeakInFlight {
		m.Stats.ParallelPeakInFlight = p
	}
	ps.peakInFlight.Store(0)
	ps.inSection = false
	m.Stats.ParallelSections++
}

// parFreeSlot chains one node slot onto the free list in the standard
// freed-node form. Free-list slots handed out during the section were
// removed from numFree at handout and fresh slots were never counted,
// so chaining always increments.
func (m *Manager) parFreeSlot(idx uint32) {
	m.nodes[idx] = node{lvl: terminalLevel, low: False, high: False, next: m.free}
	m.free = idx
	m.numFree++
}

// parGrow extends the arena capacity by at least extra slots.
// Coordinator only, outside sections.
func (m *Manager) parGrow(extra int) {
	need := len(m.nodes) + extra
	if need <= cap(m.nodes) {
		return
	}
	newCap := 2 * cap(m.nodes)
	if newCap < need {
		newCap = need
	}
	ps := m.par
	ps.arenaMu.Lock()
	nn := make([]node, len(m.nodes), newCap)
	copy(nn, m.nodes)
	m.nodes = nn
	ps.arenaMu.Unlock()
}

// parGrowAmount sizes the growth between an exhausted section and its
// retry.
func (m *Manager) parGrowAmount() int {
	g := len(m.nodes) / 2
	if min := parBlockSize * 4 * m.par.workers; g < min {
		g = min
	}
	return g
}

func (ps *parState) getCtx(m *Manager) *parCtx {
	ps.ctxMu.Lock()
	var c *parCtx
	if n := len(ps.freeCtx); n > 0 {
		c = ps.freeCtx[n-1]
		ps.freeCtx = ps.freeCtx[:n-1]
	} else {
		c = &parCtx{m: m, ps: ps}
		ps.all = append(ps.all, c)
	}
	ps.ctxMu.Unlock()
	return c
}

func (ps *parState) putCtx(c *parCtx) {
	ps.ctxMu.Lock()
	ps.freeCtx = append(ps.freeCtx, c)
	ps.ctxMu.Unlock()
}

// ——— allocation ———

// alloc hands out one node slot from the context's private blocks,
// refilling from the shared allocator when they run dry. ok=false means
// the section's arena headroom is exhausted: the operation must abort
// so the coordinator can grow the arena and retry.
func (c *parCtx) alloc() (uint32, bool) {
	if n := len(c.freeBlock); n > 0 {
		idx := c.freeBlock[n-1]
		c.freeBlock = c.freeBlock[:n-1]
		c.allocated++
		return idx, true
	}
	if c.next < c.end {
		idx := c.next
		c.next++
		c.allocated++
		return idx, true
	}
	return c.refill()
}

func (c *parCtx) refill() (uint32, bool) {
	ps := c.ps
	if ps.exhausted.Load() {
		return 0, false
	}
	m := c.m
	ps.allocMu.Lock()
	for len(c.freeBlock) < parBlockSize && m.free != 0 {
		idx := m.free
		m.free = m.nodes[idx].next
		m.numFree--
		c.freeBlock = append(c.freeBlock, idx)
	}
	if len(c.freeBlock) == 0 && ps.cursor < ps.limit {
		c.next = ps.cursor
		c.end = c.next + parBlockSize
		if c.end > ps.limit {
			c.end = ps.limit
		}
		ps.cursor = c.end
	}
	ps.allocMu.Unlock()
	if n := len(c.freeBlock); n > 0 {
		idx := c.freeBlock[n-1]
		c.freeBlock = c.freeBlock[:n-1]
		c.allocated++
		return idx, true
	}
	if c.next < c.end {
		idx := c.next
		c.next++
		c.allocated++
		return idx, true
	}
	ps.exhausted.Store(true)
	return 0, false
}

// ——— concurrent unique table ———

// parMk is mk for parallel sections: the same reduction and
// complement-edge canonicalization, hash-consed through the striped
// table.
func (m *Manager) parMk(c *parCtx, lvl uint32, low, high Ref) (Ref, bool) {
	if low == high {
		return low, true
	}
	if !m.noComp && low&compBit != 0 {
		r, ok := m.parMkRaw(c, lvl, low^compBit, high^compBit)
		return r ^ compBit, ok
	}
	return m.parMkRaw(c, lvl, low, high)
}

// parMkRaw hash-conses the exact triple under the level's stripe lock.
// A freshly allocated node is fully initialized before it is published
// into the bucket chain, so its lvl/low/high fields are immutable to
// every observer; only next ever changes afterwards, always under this
// same lock.
func (m *Manager) parMkRaw(c *parCtx, lvl uint32, low, high Ref) (Ref, bool) {
	ps := c.ps
	mu := &ps.levelMu[lvl]
	mu.Lock()
	st := &m.tables[lvl]
	b := hash2(low, high, st.mask)
	for i := st.buckets[b]; i != 0; i = m.nodes[i].next {
		n := &m.nodes[i]
		if n.low == low && n.high == high {
			mu.Unlock()
			return Ref(i), true
		}
	}
	idx, ok := c.alloc()
	if !ok {
		mu.Unlock()
		return False, false
	}
	m.nodes[idx] = node{lvl: lvl, low: low, high: high, next: st.buckets[b]}
	st.buckets[b] = idx
	st.count++
	if st.count > len(st.buckets)*3 {
		m.growSubtable(st) // touches only this level's chains, still under mu
	}
	mu.Unlock()
	return Ref(idx), true
}

// ——— lossy lock-free computed cache ———

func parCacheSlot(a, b uint64) uint32 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x ^= x >> 29
	x *= 0x94d049bb133111eb
	x ^= x >> 32
	return uint32(x) & (parCacheSize - 1)
}

// parCacheGet probes a lossy cache for key (a, bKey); the result rides
// in the upper half of the b payload. Any in-progress, torn or
// stale-generation entry is a miss.
func (ps *parState) parCacheGet(tbl []parEntry, a, bKey uint64) (Ref, bool) {
	e := &tbl[parCacheSlot(a, bKey)]
	s1 := e.seq.Load()
	if s1&1 != 0 || s1>>32 != ps.gen.Load()&0xffffffff {
		return False, false
	}
	ea := e.a.Load()
	eb := e.b.Load()
	if e.seq.Load() != s1 {
		return False, false
	}
	if ea != a || eb&0xffffffff != bKey&0xffffffff {
		return False, false
	}
	return Ref(eb >> 32), true
}

// parCachePut publishes key (a, bKey) -> res, lossily: if another
// writer holds the slot the entry is simply dropped.
func (ps *parState) parCachePut(tbl []parEntry, a, bKey uint64, res Ref) {
	e := &tbl[parCacheSlot(a, bKey)]
	s := e.seq.Load()
	if s&1 != 0 {
		return
	}
	if !e.seq.CompareAndSwap(s, s|1) {
		return
	}
	e.a.Store(a)
	e.b.Store(bKey&0xffffffff | uint64(res)<<32)
	e.seq.Store((ps.gen.Load()&0xffffffff)<<32 | (s+2)&0xfffffffe)
}

// parInvalidateCaches makes every parallel cache entry stale by bumping
// the generation tag; called from clearCaches (GC that freed nodes,
// reordering). O(1) — no scan.
func (m *Manager) parInvalidateCaches() {
	if m.par != nil {
		m.par.gen.Add(1)
	}
}

// ——— forking ———

// shouldFork reports whether a recursion site at the given depth may
// fork its high-cofactor subproblem onto a fresh goroutine.
func (c *parCtx) shouldFork(depth int32) bool {
	ps := c.ps
	return depth < ps.forkDepth && ps.inflight.Load() < ps.forkCap
}

// forkEnter registers a fork; the spawned goroutine must decrement
// inflight when it completes.
func (c *parCtx) forkEnter() {
	ps := c.ps
	c.forks++
	n := ps.inflight.Add(1)
	for {
		p := ps.peakInFlight.Load()
		if n <= p || ps.peakInFlight.CompareAndSwap(p, n) {
			break
		}
	}
}

// ——— parallel recursion ———

// parIte is ite3 for parallel sections: identical terminal rules,
// standard-triple and complement canonicalization, with the lossy
// parallel cache in place of the direct-mapped sequential one and
// depth-bounded forking of the cofactor recursion.
func (m *Manager) parIte(c *parCtx, f, g, h Ref, depth int32) (Ref, bool) {
	c.iteCalls++
	switch {
	case f == True:
		return g, true
	case f == False:
		return h, true
	case g == h:
		return g, true
	case g == True && h == False:
		return f, true
	}

	neg := false
	if !m.noComp {
		if g == f {
			g = True
		} else if g == f^compBit {
			g = False
		}
		if h == f {
			h = False
		} else if h == f^compBit {
			h = True
		}
		switch {
		case g == h:
			return g, true
		case g == True && h == False:
			return f, true
		case g == False && h == True:
			return f ^ compBit, true
		}
		switch {
		case g == True:
			if m.before(h, f) {
				f, h = h, f
			}
		case h == False:
			if m.before(g, f) {
				f, g = g, f
			}
		case g == False:
			if m.before(h, f) {
				f, h = h^compBit, f^compBit
			}
		case h == True:
			if m.before(g, f) {
				f, g = g^compBit, f^compBit
			}
		case g == h^compBit:
			if m.before(g, f) {
				f, g = g, f
				h = g ^ compBit
			}
		}
		if f&compBit != 0 {
			f ^= compBit
			g, h = h, g
		}
		if g&compBit != 0 {
			g ^= compBit
			h ^= compBit
			neg = true
		}
		switch {
		case g == h:
			if neg {
				return g ^ compBit, true
			}
			return g, true
		case g == True && h == False:
			if neg {
				return f ^ compBit, true
			}
			return f, true
		}
	} else {
		if g == f {
			g = True
		}
		if h == f {
			h = False
		}
		if g == True && h == False {
			return f, true
		}
	}

	ps := c.ps
	c.cacheLookups++
	key := uint64(f) | uint64(g)<<32
	if res, ok := ps.parCacheGet(ps.ite, key, uint64(h)); ok {
		c.cacheHits++
		if neg {
			return res ^ compBit, true
		}
		return res, true
	}

	lf, lg, lh := m.level(f), m.level(g), m.level(h)
	top := lf
	if lg < top {
		top = lg
	}
	if lh < top {
		top = lh
	}
	f0, f1 := m.cofactors(f, lf, top)
	g0, g1 := m.cofactors(g, lg, top)
	h0, h1 := m.cofactors(h, lh, top)

	var low, high Ref
	var okL, okH bool
	if c.shouldFork(depth) {
		c.forkEnter()
		done := make(chan struct{})
		go func() {
			cc := ps.getCtx(m)
			high, okH = m.parIte(cc, f1, g1, h1, depth+1)
			ps.putCtx(cc)
			ps.inflight.Add(-1)
			close(done)
		}()
		low, okL = m.parIte(c, f0, g0, h0, depth+1)
		<-done
	} else {
		low, okL = m.parIte(c, f0, g0, h0, depth+1)
		if okL {
			high, okH = m.parIte(c, f1, g1, h1, depth+1)
		}
	}
	if !okL || !okH {
		return False, false
	}
	res, ok := m.parMk(c, top, low, high)
	if !ok {
		return False, false
	}
	ps.parCachePut(ps.ite, key, uint64(h), res)
	if neg {
		return res ^ compBit, true
	}
	return res, true
}

// parExists mirrors exists with the lossy cache and forked cofactors.
// The sequential low==True short-circuit survives on the non-forked
// path; a forked pair combines through parIte, which collapses the True
// case for free.
func (m *Manager) parExists(c *parCtx, f, cube Ref, depth int32) (Ref, bool) {
	if IsTerminal(f) || cube == True {
		return f, true
	}
	lf := m.level(f)
	lc := m.level(cube)
	for lc < lf {
		cube = m.high(cube)
		if cube == True {
			return f, true
		}
		lc = m.level(cube)
	}
	ps := c.ps
	c.cacheLookups++
	key := uint64(f) | uint64(cube)<<32
	if res, ok := ps.parCacheGet(ps.bin, key, uint64(opExists)); ok {
		c.cacheHits++
		return res, true
	}
	f0, f1 := m.low(f), m.high(f)
	var res Ref
	if lf == lc {
		rest := m.high(cube)
		if c.shouldFork(depth) {
			var low, high Ref
			var okL, okH bool
			c.forkEnter()
			done := make(chan struct{})
			go func() {
				cc := ps.getCtx(m)
				high, okH = m.parExists(cc, f1, rest, depth+1)
				ps.putCtx(cc)
				ps.inflight.Add(-1)
				close(done)
			}()
			low, okL = m.parExists(c, f0, rest, depth+1)
			<-done
			if !okL || !okH {
				return False, false
			}
			r, ok := m.parIte(c, low, True, high, depth)
			if !ok {
				return False, false
			}
			res = r
		} else {
			low, ok := m.parExists(c, f0, rest, depth+1)
			if !ok {
				return False, false
			}
			if low == True {
				res = True
			} else {
				high, ok := m.parExists(c, f1, rest, depth+1)
				if !ok {
					return False, false
				}
				r, ok := m.parIte(c, low, True, high, depth)
				if !ok {
					return False, false
				}
				res = r
			}
		}
	} else {
		var low, high Ref
		var okL, okH bool
		if c.shouldFork(depth) {
			c.forkEnter()
			done := make(chan struct{})
			go func() {
				cc := ps.getCtx(m)
				high, okH = m.parExists(cc, f1, cube, depth+1)
				ps.putCtx(cc)
				ps.inflight.Add(-1)
				close(done)
			}()
			low, okL = m.parExists(c, f0, cube, depth+1)
			<-done
		} else {
			low, okL = m.parExists(c, f0, cube, depth+1)
			if okL {
				high, okH = m.parExists(c, f1, cube, depth+1)
			}
		}
		if !okL || !okH {
			return False, false
		}
		r, ok := m.parMk(c, lf, low, high)
		if !ok {
			return False, false
		}
		res = r
	}
	ps.parCachePut(ps.bin, key, uint64(opExists), res)
	return res, true
}

// parAndExists mirrors andExists: identical terminal rules, operand
// canonicalization and cube alignment, with the dedicated lossy triple
// cache and forked cofactor recursion. The terminal cases route to the
// parallel variants (never the sequential ones), so a section performs
// no unsynchronized sequential-state mutation whatsoever.
func (m *Manager) parAndExists(c *parCtx, f, g, cube Ref, depth int32) (Ref, bool) {
	if f == False || g == False {
		return False, true
	}
	if f == True && g == True {
		return True, true
	}
	if f == True {
		return m.parExists(c, g, cube, depth)
	}
	if g == True {
		return m.parExists(c, f, cube, depth)
	}
	if f == g {
		return m.parExists(c, f, cube, depth)
	}
	if !m.noComp && f == g^compBit {
		return False, true // f ∧ ¬f
	}
	if cube == True {
		return m.parIte(c, f, g, False, depth)
	}
	if f > g {
		f, g = g, f // And is commutative; canonicalize for the cache
	}

	lf, lg := m.level(f), m.level(g)
	top := lf
	if lg < top {
		top = lg
	}
	lc := m.level(cube)
	for lc < top {
		cube = m.high(cube)
		if cube == True {
			return m.parIte(c, f, g, False, depth)
		}
		lc = m.level(cube)
	}

	ps := c.ps
	c.aexLookups++
	key := uint64(f) | uint64(g)<<32
	if res, ok := ps.parCacheGet(ps.aex, key, uint64(cube)); ok {
		c.cacheHits++
		c.aexHits++
		return res, true
	}

	f0, f1 := m.cofactors(f, lf, top)
	g0, g1 := m.cofactors(g, lg, top)

	var res Ref
	if top == lc {
		rest := m.high(cube)
		if c.shouldFork(depth) {
			var low, high Ref
			var okL, okH bool
			c.forkEnter()
			done := make(chan struct{})
			go func() {
				cc := ps.getCtx(m)
				high, okH = m.parAndExists(cc, f1, g1, rest, depth+1)
				ps.putCtx(cc)
				ps.inflight.Add(-1)
				close(done)
			}()
			low, okL = m.parAndExists(c, f0, g0, rest, depth+1)
			<-done
			if !okL || !okH {
				return False, false
			}
			r, ok := m.parIte(c, low, True, high, depth)
			if !ok {
				return False, false
			}
			res = r
		} else {
			low, ok := m.parAndExists(c, f0, g0, rest, depth+1)
			if !ok {
				return False, false
			}
			if low == True {
				res = True
			} else {
				high, ok := m.parAndExists(c, f1, g1, rest, depth+1)
				if !ok {
					return False, false
				}
				r, ok := m.parIte(c, low, True, high, depth)
				if !ok {
					return False, false
				}
				res = r
			}
		}
	} else {
		var low, high Ref
		var okL, okH bool
		if c.shouldFork(depth) {
			c.forkEnter()
			done := make(chan struct{})
			go func() {
				cc := ps.getCtx(m)
				high, okH = m.parAndExists(cc, f1, g1, cube, depth+1)
				ps.putCtx(cc)
				ps.inflight.Add(-1)
				close(done)
			}()
			low, okL = m.parAndExists(c, f0, g0, cube, depth+1)
			<-done
		} else {
			low, okL = m.parAndExists(c, f0, g0, cube, depth+1)
			if okL {
				high, okH = m.parAndExists(c, f1, g1, cube, depth+1)
			}
		}
		if !okL || !okH {
			return False, false
		}
		r, ok := m.parMk(c, top, low, high)
		if !ok {
			return False, false
		}
		res = r
	}
	ps.parCachePut(ps.aex, key, uint64(cube), res)
	return res, true
}

// ——— top-level drivers ———

// parRunOne runs a single operation in its own section, growing the
// arena and retrying on exhaustion. Subresults already published to the
// unique table survive a retry, so a retry re-derives only the missing
// remainder of the computation.
func (m *Manager) parRunOne(fn func(c *parCtx) (Ref, bool)) Ref {
	ps := m.par
	for {
		m.parBegin()
		c := ps.getCtx(m)
		res, ok := fn(c)
		ps.putCtx(c)
		m.parEnd()
		if ok {
			return res
		}
		m.Stats.ParallelRetries++
		m.parGrow(m.parGrowAmount())
	}
}

// ParOp is the operation handle handed to RunParallel jobs: the same
// boolean and quantification operations as the Manager, evaluated with
// the job's context inside the surrounding parallel section. A ParOp is
// confined to its job's goroutine. When the parallel engine is inactive
// the handle transparently backs onto the ordinary sequential
// operations.
type ParOp struct {
	m      *Manager
	c      *parCtx
	failed bool
}

// Failed reports whether an operation on this handle aborted on arena
// exhaustion (RunParallel retries such jobs after growing the arena).
func (p *ParOp) Failed() bool { return p.failed }

func (p *ParOp) run(fn func(c *parCtx) (Ref, bool)) Ref {
	if p.failed {
		return False
	}
	res, ok := fn(p.c)
	if !ok {
		p.failed = true
		return False
	}
	return res
}

// AndExists computes ∃cube.(f ∧ g) inside the section.
func (p *ParOp) AndExists(f, g, cube Ref) Ref {
	if p.c == nil {
		return p.m.AndExists(f, g, cube)
	}
	p.c.aexCalls++
	return p.run(func(c *parCtx) (Ref, bool) { return p.m.parAndExists(c, f, g, cube, 0) })
}

// Exists computes ∃cube.f inside the section.
func (p *ParOp) Exists(f, cube Ref) Ref {
	if p.c == nil {
		return p.m.Exists(f, cube)
	}
	return p.run(func(c *parCtx) (Ref, bool) { return p.m.parExists(c, f, cube, 0) })
}

// Ite computes if-then-else inside the section.
func (p *ParOp) Ite(f, g, h Ref) Ref {
	if p.c == nil {
		return p.m.Ite(f, g, h)
	}
	return p.run(func(c *parCtx) (Ref, bool) { return p.m.parIte(c, f, g, h, 0) })
}

// And computes f ∧ g inside the section.
func (p *ParOp) And(f, g Ref) Ref { return p.Ite(f, g, False) }

// Or computes f ∨ g inside the section.
func (p *ParOp) Or(f, g Ref) Ref { return p.Ite(f, True, g) }

// RunParallel evaluates independent jobs concurrently inside one
// parallel section on the shared manager, at most the configured worker
// budget at a time. Jobs must be re-runnable — a job whose operations
// hit arena exhaustion is aborted and re-run from the top after the
// coordinator grows the arena (canonicity makes the retry cheap and
// deterministic: it finds its earlier subresults in the unique table).
// Jobs must not touch the Manager API directly — all BDD work goes
// through the supplied ParOp — and every ref a job consumes must exist
// before the call. With the engine disabled (workers <= 1) the jobs run
// sequentially on the caller's goroutine.
func (m *Manager) RunParallel(jobs []func(op *ParOp)) {
	if len(jobs) == 0 {
		return
	}
	if !m.parallelActive() {
		for _, job := range jobs {
			job(&ParOp{m: m})
		}
		return
	}
	ps := m.par
	pending := make([]int, len(jobs))
	for i := range jobs {
		pending[i] = i
	}
	failed := make([]bool, len(jobs))
	for {
		m.parBegin()
		width := ps.workers
		if width > len(pending) {
			width = len(pending)
		}
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < width; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					c := ps.getCtx(m)
					op := &ParOp{m: m, c: c}
					jobs[i](op)
					failed[i] = op.failed
					ps.putCtx(c)
				}
			}()
		}
		for _, i := range pending {
			work <- i
		}
		close(work)
		wg.Wait()
		m.Stats.ParallelJobs += uint64(len(pending))
		m.parEnd()
		var retry []int
		for _, i := range pending {
			if failed[i] {
				retry = append(retry, i)
			}
		}
		if len(retry) == 0 {
			return
		}
		pending = retry
		m.Stats.ParallelRetries++
		m.parGrow(m.parGrowAmount())
	}
}
