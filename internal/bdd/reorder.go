package bdd

import (
	"fmt"
	"sort"
	"time"
)

// Variable reordering.
//
// Two engines share this file's policy layer:
//
//   - The rebuild engine (reorderTo) translates every root it must
//     preserve into a fresh arena under the new order and swaps the
//     arena in. It serves explicit Reorder(order) calls, group-adjacency
//     normalization, and acts as the differential oracle for the swap
//     engine. A rebuild is O(arena).
//
//   - The in-place engine (swap.go) realizes sifting as sequences of
//     adjacent-level swaps, each touching only the nodes at the two
//     swapped levels and preserving every other Ref bit-for-bit. It is
//     the default behind SiftNow/EnableAutoReorder; set
//     ReorderOptions.UseRebuildSift to fall back to the rebuild engine.
//
// What makes reordering *dynamic* (usable mid-computation rather than
// only offline) is the live-root registry: long-lived holders of Refs —
// symbolic structures, checkers, saved witness rings — register a
// rewriter callback (OnReorder) or plain pointers (RegisterRefs), and
// every committed reorder rewrites their Refs in place (after an
// in-place sift the translation is the identity — the hook still fires
// so downstream caches invalidate on the same schedule). Registered
// refs are also treated as GC roots, so a registered local survives
// both a collection and a reorder.
//
// Sifting moves one block at a time: each GroupVars block (typically a
// current/next state-variable pair) travels as a unit, tried at every
// candidate position with the placement minimizing the live-node count
// kept. Trials growing past MaxGrowth times the best size so far are
// abandoned (the rebuild engine aborts mid-translation; the swap engine
// stops walking in that direction and returns to the best position).
//
// Automatic reordering is growth-triggered: ReorderIfNeeded — called at
// safe points where every needed Ref is registered or protected — sifts
// when the live-node count exceeds GrowthTrigger times the post-last-sift
// size.

// rewriter is one registered reorder hook. The callback must be
// deterministic: it is invoked twice per reorder (first to collect the
// refs it holds, then to commit the translated values), and both
// invocations must visit the same refs.
type rewriter struct {
	id int
	fn func(translate func(Ref) Ref)
}

// OnReorder registers a rewriter callback and returns an id for
// Unregister. After every committed reorder the callback is invoked with
// a translation function and must pass every Ref its owner retains
// through it, storing the results back. The refs the callback visits are
// also marked during garbage collection, so they need no separate
// Protect. The callback must not invoke manager operations.
func (m *Manager) OnReorder(fn func(translate func(Ref) Ref)) int {
	m.nextHookID++
	m.rewriters = append(m.rewriters, rewriter{id: m.nextHookID, fn: fn})
	return m.nextHookID
}

// RegisterRefs registers plain Ref pointers: after every reorder each
// *p is rewritten in place, and the referenced nodes survive GC. Returns
// an id for Unregister. Typical use is protecting a fixpoint loop's
// local variables across safe points.
func (m *Manager) RegisterRefs(ps ...*Ref) int {
	return m.OnReorder(func(translate func(Ref) Ref) {
		for _, p := range ps {
			*p = translate(*p)
		}
	})
}

// Unregister removes a rewriter previously installed with OnReorder or
// RegisterRefs. Unknown ids are ignored.
func (m *Manager) Unregister(id int) {
	for i, rw := range m.rewriters {
		if rw.id == id {
			m.rewriters = append(m.rewriters[:i], m.rewriters[i+1:]...)
			return
		}
	}
}

// GroupVars declares that the given variables form one sifting block:
// they are kept adjacent and moved as a unit. The standard use is one
// call per state variable with its current/next pair — splitting such a
// pair explodes the transition relation, so sifting must never consider
// it. A variable may belong to at most one group.
func (m *Manager) GroupVars(vars ...int) {
	if len(vars) == 0 {
		return
	}
	for _, v := range vars {
		if v < 0 || v >= m.NumVars() {
			panic(fmt.Sprintf("bdd: GroupVars: variable %d out of range", v))
		}
		for _, g := range m.groups {
			for _, w := range g {
				if v == w {
					panic(fmt.Sprintf("bdd: GroupVars: variable %d already grouped", v))
				}
			}
		}
	}
	m.groups = append(m.groups, append([]int(nil), vars...))
}

// Groups returns a copy of the registered sifting blocks.
func (m *Manager) Groups() [][]int {
	out := make([][]int, len(m.groups))
	for i, g := range m.groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// ReorderOptions tunes the automatic sifting policy.
type ReorderOptions struct {
	// GrowthTrigger: sift when live nodes exceed this multiple of the
	// post-last-sift size (default 2.0).
	GrowthTrigger float64
	// MinNodes: never auto-sift below this many live nodes (default 16k).
	MinNodes int
	// MaxGrowth: abort a placement trial whose rebuilt arena exceeds this
	// multiple of the best size found so far (default 1.2).
	MaxGrowth float64
	// MaxPasses bounds the converging sift passes per event (default 3).
	MaxPasses int
	// MinImprove: stop passes early once a pass shrinks the live count by
	// less than this fraction (default 0.03).
	MinImprove float64
	// MaxBlocks: sift only the top-contributing blocks per pass
	// (0 = all blocks).
	MaxBlocks int
	// Window: try positions at most this far from a block's current one
	// (0 = every position).
	Window int
	// SiftMaxTime bounds the wall time of one sift event. The in-place
	// engine checks it at swap granularity: when the budget runs out the
	// block being sifted still returns to its best position, the event
	// ends cleanly, and Stats.SiftTimeouts is bumped. 0 = no bound.
	SiftMaxTime time.Duration
	// UseRebuildSift routes SiftNow through the legacy rebuild engine
	// (every trial re-translates the arena) instead of in-place swaps.
	// Kept as a differential oracle and benchmark baseline.
	UseRebuildSift bool
}

// DefaultReorderOptions returns the default automatic-sifting policy.
func DefaultReorderOptions() ReorderOptions {
	return ReorderOptions{
		GrowthTrigger: 2.0,
		MinNodes:      1 << 14,
		MaxGrowth:     1.2,
		MaxPasses:     3,
		MinImprove:    0.03,
	}
}

func (o *ReorderOptions) fillDefaults() {
	d := DefaultReorderOptions()
	if o.GrowthTrigger <= 1 {
		o.GrowthTrigger = d.GrowthTrigger
	}
	if o.MinNodes <= 0 {
		o.MinNodes = d.MinNodes
	}
	if o.MaxGrowth <= 1 {
		o.MaxGrowth = d.MaxGrowth
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = d.MaxPasses
	}
	if o.MinImprove <= 0 {
		o.MinImprove = d.MinImprove
	}
}

// EnableAutoReorder turns on growth-triggered sifting. A nil opts uses
// DefaultReorderOptions; zero fields of a non-nil opts are filled with
// the defaults (MaxBlocks and Window keep 0 = unlimited).
func (m *Manager) EnableAutoReorder(opts *ReorderOptions) {
	o := DefaultReorderOptions()
	if opts != nil {
		o = *opts
		o.fillDefaults()
	}
	m.reorderOpts = o
	m.autoReorder = true
	m.lastSiftSize = m.numAlloc
	if m.lastSiftSize < 1 {
		m.lastSiftSize = 1
	}
}

// DisableAutoReorder turns growth-triggered sifting off.
func (m *Manager) DisableAutoReorder() { m.autoReorder = false }

// AutoReorderEnabled reports whether growth-triggered sifting is on.
func (m *Manager) AutoReorderEnabled() bool { return m.autoReorder }

// PauseAutoReorder suspends growth-triggered sifting and returns the
// function that resumes it. Calls nest. Use around code that holds
// unregistered Refs across operations — witness walks, trace validation.
func (m *Manager) PauseAutoReorder() func() {
	m.reorderPause++
	return func() { m.reorderPause-- }
}

// ReorderIfNeeded is the safe-point check: if automatic reordering is
// enabled, not paused, and the live-node count has grown past
// GrowthTrigger times the post-last-sift size, it runs a sift and
// reports true. Callers must ensure every Ref they still need is
// protected or registered before calling.
func (m *Manager) ReorderIfNeeded() bool {
	if !m.autoReorder || m.reorderPause > 0 || m.reordering {
		return false
	}
	if m.par != nil && m.par.inSection {
		// Parallel workers share the arena right now; sifting waits for
		// the fork-join section boundary (the stop-the-world safe point).
		return false
	}
	if m.numAlloc < m.reorderOpts.MinNodes {
		return false
	}
	if float64(m.numAlloc) < m.reorderOpts.GrowthTrigger*float64(m.lastSiftSize) {
		return false
	}
	m.Stats.AutoReorders++
	m.SiftNow()
	return true
}

// Reorder rebuilds the manager under the new variable order (order[i] is
// the variable to be placed at level i) and returns the given roots
// translated, in the same positions. Protected roots and every ref held
// by a registered rewriter are translated as well; any other Ref is
// invalidated. Registered Permutations remain valid because they are
// expressed over variable indices, not levels.
func (m *Manager) Reorder(order []int, roots []Ref) []Ref {
	m.validateOrder(order)
	for _, r := range roots {
		m.checkRef(r)
	}
	out, _ := m.reorderTo(order, roots, 0)
	return out
}

func (m *Manager) validateOrder(order []int) {
	if len(order) != m.NumVars() {
		panic("bdd: order length mismatch")
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			panic("bdd: order is not a permutation of the variables")
		}
		seen[v] = true
	}
}

// freshForReorder allocates a bare arena for a rebuild under the given
// order: per-level subtables pre-sized to the mean level population, a
// small ITE cache for composeVar's out-of-order fallback, and nothing
// else — trial rebuilds during sifting are frequent and must not
// allocate the full caches.
func (m *Manager) freshForReorder(order []int) *Manager {
	per := 1 << 4
	if len(order) > 0 {
		for per*len(order)*2 < m.numAlloc {
			per <<= 1
		}
	}
	fresh := &Manager{
		ite:       make([]iteEntry, 1<<14),
		var2level: make([]int, len(order)),
		level2var: make([]int, len(order)),
		tables:    make([]subtable, len(order)),
		noComp:    m.noComp, // trial arenas must share the representation
	}
	for l := range fresh.tables {
		fresh.tables[l] = newSubtable(per)
	}
	fresh.nodes = make([]node, 1, m.numAlloc+1)
	fresh.nodes[0] = node{lvl: terminalLevel, low: False, high: False}
	fresh.numAlloc = 1
	copy(fresh.level2var, order)
	for l, v := range order {
		fresh.var2level[v] = l
	}
	return fresh
}

// reorderTo is the rebuild engine behind Reorder and sifting. It runs in
// three phases so a budget abort cannot leave clients inconsistent:
//
//  1. collect: every root the swap must preserve — extra, the protected
//     roots, and each registered rewriter's refs (gathered by invoking
//     the rewriter with an identity collector);
//  2. translate: rebuild the collected roots in a fresh arena; if budget
//     is non-zero and the fresh arena outgrows it, abandon the arena and
//     return (nil, false) with the manager untouched;
//  3. commit: swap the arena in, remap the protected-root table, clear
//     the operation caches, and invoke every rewriter with the memoized
//     translation so clients see the new Refs.
func (m *Manager) reorderTo(order []int, extra []Ref, budget int) ([]Ref, bool) {
	// Phase 1: collect.
	collected := make([]Ref, 0, len(extra)+len(m.roots))
	collected = append(collected, extra...)
	for r := range m.roots {
		collected = append(collected, r)
	}
	for _, rw := range m.rewriters {
		rw.fn(func(r Ref) Ref {
			m.checkRef(r)
			collected = append(collected, r)
			return r
		})
	}

	// Phase 2: translate.
	fresh := m.freshForReorder(order)
	// memo maps old plain ref -> new plain ref (0 = untranslated). The
	// sign splits off before the lookup and is re-applied to the result:
	// translating preserves the function, and a plain canonical ref
	// denotes a function that is false on the all-false assignment, so
	// the translation of a plain non-terminal ref is always plain and
	// non-zero — the 0 sentinel stays unambiguous.
	memo := make([]Ref, len(m.nodes))
	aborted := false
	var translate func(Ref) Ref
	translate = func(f Ref) Ref {
		if IsTerminal(f) || aborted {
			return f
		}
		s := f & compBit
		fp := f ^ s
		if r := memo[fp]; r != 0 {
			return r ^ s
		}
		n := m.nodes[fp]
		low := translate(n.low)
		high := translate(n.high)
		if aborted {
			return False
		}
		v := m.level2var[n.lvl&^markBit]
		res := fresh.composeVar(v, low, high)
		if budget > 0 && fresh.numAlloc > budget {
			aborted = true
			return False
		}
		memo[fp] = res
		return res ^ s
	}
	for _, r := range collected {
		translate(r)
		if aborted {
			return nil, false
		}
	}

	// Phase 3: commit.
	lookup := func(r Ref) Ref {
		if IsTerminal(r) {
			return r
		}
		s := r & compBit
		rp := r ^ s
		if int(rp) >= len(memo) || memo[rp] == 0 {
			panic("bdd: reorder rewriter returned a ref it did not collect")
		}
		return memo[rp] ^ s
	}
	out := make([]Ref, len(extra))
	for i, r := range extra {
		out[i] = lookup(r)
	}
	newRoots := make(map[Ref]int, len(m.roots))
	for r, c := range m.roots {
		newRoots[lookup(r)] += c
	}
	m.nodes = fresh.nodes
	m.tables = fresh.tables
	m.free = fresh.free
	m.numFree = fresh.numFree
	m.numAlloc = fresh.numAlloc
	m.var2level = fresh.var2level
	m.level2var = fresh.level2var
	m.roots = newRoots
	m.clearCaches()
	for _, rw := range m.rewriters {
		rw.fn(lookup)
	}
	m.Stats.Reorderings++
	return out, true
}

// TotalSize returns the number of distinct nodes used by all roots
// together (shared nodes counted once; a root and its complement share
// everything).
func (m *Manager) TotalSize(roots []Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		g &^= compBit
		if seen[g] {
			return
		}
		seen[g] = true
		if g == 0 {
			return
		}
		n := &m.nodes[g]
		walk(n.low)
		walk(n.high)
	}
	for _, r := range roots {
		walk(r)
	}
	return len(seen)
}

// Sift runs a full sifting pass over the manager and returns the given
// roots translated to the new order. The roots are registered for the
// duration, so — unlike the pre-registry implementation — every other
// protected or registered Ref is rewritten too instead of dangling.
// Unprotected, unregistered Refs are invalidated (a collection runs
// first).
func (m *Manager) Sift(roots []Ref) []Ref {
	out := append([]Ref(nil), roots...)
	if m.NumVars() <= 1 {
		return out
	}
	if len(out) > 0 {
		id := m.OnReorder(func(translate func(Ref) Ref) {
			for i := range out {
				out[i] = translate(out[i])
			}
		})
		defer m.Unregister(id)
	}
	m.SiftNow()
	return out
}

// SiftNow runs converging block-sifting passes until the improvement
// drops below MinImprove or MaxPasses is reached. Garbage is collected
// first, so every Ref the caller needs must be protected or registered.
// The in-place swap engine runs unless UseRebuildSift selects the
// legacy rebuild engine.
func (m *Manager) SiftNow() {
	if m.reordering || m.NumVars() <= 1 {
		return
	}
	if m.par != nil && m.par.inSection {
		return // safe point: never restructure under live parallel workers
	}
	m.reordering = true
	defer func() { m.reordering = false }()
	start := time.Now()
	m.GC()
	before := m.numAlloc
	opts := m.reorderOpts

	// Normalize: force every group's variables adjacent so blocks are
	// contiguous level ranges from here on.
	if norm := flattenBlocks(m.blockOrder()); !equalOrder(norm, m.level2var) {
		m.reorderTo(norm, nil, 0)
	}
	if opts.UseRebuildSift {
		m.siftNowRebuild(&opts)
	} else {
		m.siftNowSwap(&opts)
	}
	m.lastSiftSize = m.numAlloc
	m.Stats.ReorderTime += time.Since(start)
	m.Stats.ReorderSavedNodes += int64(before - m.numAlloc)
}

// siftNowRebuild is the legacy engine: every placement trial rebuilds
// the arena under the candidate order. O(arena × trials); kept behind
// UseRebuildSift as differential oracle and benchmark baseline. It
// ignores SiftMaxTime (its trial granularity is a whole rebuild).
func (m *Manager) siftNowRebuild(opts *ReorderOptions) {
	size := m.numAlloc
	for pass := 0; pass < opts.MaxPasses; pass++ {
		m.Stats.SiftPasses++
		prev := size
		size = m.siftPass(opts)
		if prev-size < int(opts.MinImprove*float64(prev)) {
			break
		}
	}
}

// blockOrder returns the sifting blocks in current level order: each
// group one block (members sorted by level), every ungrouped variable a
// singleton.
func (m *Manager) blockOrder() [][]int {
	groupOf := make(map[int]int)
	for gi, g := range m.groups {
		for _, v := range g {
			groupOf[v] = gi
		}
	}
	emitted := make(map[int]bool)
	var blocks [][]int
	for _, v := range m.level2var {
		gi, grouped := groupOf[v]
		if !grouped {
			blocks = append(blocks, []int{v})
			continue
		}
		if emitted[gi] {
			continue
		}
		emitted[gi] = true
		g := append([]int(nil), m.groups[gi]...)
		sort.Slice(g, func(i, j int) bool { return m.var2level[g[i]] < m.var2level[g[j]] })
		blocks = append(blocks, g)
	}
	return blocks
}

func flattenBlocks(blocks [][]int) []int {
	var out []int
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

func equalOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// siftPass sifts the blocks in decreasing order of contribution (live
// nodes labeled with the block's variables) and returns the resulting
// live-node count.
func (m *Manager) siftPass(opts *ReorderOptions) int {
	blocks := m.blockOrder()
	if len(blocks) <= 1 {
		return m.numAlloc
	}
	blockOf := make(map[int]int)
	for bi, b := range blocks {
		for _, v := range b {
			blockOf[v] = bi
		}
	}
	contrib := make([]int, len(blocks))
	for i := 1; i < len(m.nodes); i++ {
		lvl := m.nodes[i].lvl &^ markBit
		if lvl == terminalLevel { // free-list node
			continue
		}
		contrib[blockOf[m.level2var[lvl]]]++
	}
	byContrib := make([]int, len(blocks))
	for i := range byContrib {
		byContrib[i] = i
	}
	sort.Slice(byContrib, func(i, j int) bool { return contrib[byContrib[i]] > contrib[byContrib[j]] })
	limit := len(byContrib)
	if opts.MaxBlocks > 0 && opts.MaxBlocks < limit {
		limit = opts.MaxBlocks
	}
	for _, bi := range byContrib[:limit] {
		if contrib[bi] == 0 {
			continue
		}
		m.siftBlock(blocks[bi], opts)
	}
	return m.numAlloc
}

// siftBlock tries the block at every candidate position (all of them, or
// within Window of the current one) and leaves the manager at the best
// placement found. Trials growing past MaxGrowth times the best size so
// far abort without effect.
func (m *Manager) siftBlock(block []int, opts *ReorderOptions) {
	cur := m.blockOrder()
	pos := -1
	for i, b := range cur {
		if b[0] == block[0] {
			pos = i
			break
		}
	}
	if pos < 0 || len(cur) <= 1 {
		return
	}
	bestSize := m.numAlloc
	bestOrder := flattenBlocks(cur)
	budget := growthBudget(opts, bestSize)
	lo, hi := 0, len(cur)-1
	if opts.Window > 0 {
		if l := pos - opts.Window; l > lo {
			lo = l
		}
		if h := pos + opts.Window; h < hi {
			hi = h
		}
	}
	for t := lo; t <= hi; t++ {
		if t == pos {
			continue
		}
		cand := flattenBlocks(moveBlock(cur, pos, t))
		m.Stats.SiftTrials++
		if _, ok := m.reorderTo(cand, nil, budget); !ok {
			m.Stats.SiftAborts++
			continue
		}
		if m.numAlloc < bestSize {
			bestSize = m.numAlloc
			bestOrder = cand
			budget = growthBudget(opts, bestSize)
		}
	}
	if !equalOrder(bestOrder, m.level2var) {
		m.reorderTo(bestOrder, nil, 0)
	}
}

func growthBudget(opts *ReorderOptions, size int) int {
	return int(opts.MaxGrowth*float64(size)) + 64
}

// moveBlock returns a copy of blocks with the element at from moved to
// position to.
func moveBlock(blocks [][]int, from, to int) [][]int {
	out := make([][]int, 0, len(blocks))
	b := blocks[from]
	for i, x := range blocks {
		if i == from {
			continue
		}
		out = append(out, x)
	}
	out = append(out, nil)
	copy(out[to+1:], out[to:])
	out[to] = b
	return out
}
