package bdd

import "sort"

// Variable reordering. Reordering is offline: the caller supplies the
// roots it cares about, the manager rebuilds them under the new order in
// a fresh arena and swaps it in. Every Ref not passed as a root is
// invalidated (as are protected roots, which are re-protected at their
// translated values). Registered Permutations remain valid because they
// are expressed over variable indices, not levels.

// Reorder rebuilds the given roots under the new variable order (order[i]
// is the variable to be placed at level i) and returns the translated
// roots in the same positions.
func (m *Manager) Reorder(order []int, roots []Ref) []Ref {
	if len(order) != m.NumVars() {
		panic("bdd: order length mismatch")
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			panic("bdd: order is not a permutation of the variables")
		}
		seen[v] = true
	}
	m.Stats.Reorderings++

	fresh := New(0)
	fresh.gcThreshold = m.gcThreshold
	for range order {
		fresh.AddVar()
	}
	copy(fresh.level2var, order)
	for l, v := range order {
		fresh.var2level[v] = l
	}

	memo := make(map[Ref]Ref)
	var translate func(Ref) Ref
	translate = func(f Ref) Ref {
		if IsTerminal(f) {
			return f
		}
		if r, ok := memo[f]; ok {
			return r
		}
		n := m.nodes[f]
		low := translate(n.low)
		high := translate(n.high)
		v := m.level2var[n.lvl&^markBit]
		res := fresh.composeVar(v, low, high)
		memo[f] = res
		return res
	}

	out := make([]Ref, len(roots))
	for i, r := range roots {
		m.checkRef(r)
		out[i] = translate(r)
	}
	newRoots := make(map[Ref]int, len(m.roots))
	for r, c := range m.roots {
		newRoots[translate(r)] += c
	}

	// Swap the fresh guts in, preserving stats and permutations.
	m.nodes = fresh.nodes
	m.buckets = fresh.buckets
	m.mask = fresh.mask
	m.free = fresh.free
	m.numFree = fresh.numFree
	m.numAlloc = fresh.numAlloc
	m.var2level = fresh.var2level
	m.level2var = fresh.level2var
	m.roots = newRoots
	m.clearCaches()
	return out
}

// TotalSize returns the number of distinct nodes used by all roots
// together (shared nodes counted once).
func (m *Manager) TotalSize(roots []Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if seen[g] {
			return
		}
		seen[g] = true
		if IsTerminal(g) {
			return
		}
		n := &m.nodes[g]
		walk(n.low)
		walk(n.high)
	}
	for _, r := range roots {
		walk(r)
	}
	return len(seen)
}

// Sift performs one pass of sifting-style reordering over the given
// roots: variables are considered in decreasing order of contribution,
// and each is tried at every level, keeping the placement that minimizes
// the total shared node count. Returns the translated roots.
//
// This implementation is rebuild-based rather than in-place, trading
// speed for simplicity; it is intended for offline optimization of a
// model's variable order before a long checking run.
func (m *Manager) Sift(roots []Ref) []Ref {
	n := m.NumVars()
	if n <= 1 {
		return append([]Ref(nil), roots...)
	}
	// Contribution of each variable = number of nodes labeled with it.
	contrib := make([]int, n)
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if seen[g] || IsTerminal(g) {
			return
		}
		seen[g] = true
		nd := &m.nodes[g]
		contrib[m.level2var[nd.lvl&^markBit]]++
		walk(nd.low)
		walk(nd.high)
	}
	for _, r := range roots {
		walk(r)
	}
	varsByContrib := make([]int, n)
	for i := range varsByContrib {
		varsByContrib[i] = i
	}
	sort.Slice(varsByContrib, func(i, j int) bool {
		return contrib[varsByContrib[i]] > contrib[varsByContrib[j]]
	})

	cur := append([]Ref(nil), roots...)
	for _, v := range varsByContrib {
		if contrib[v] == 0 {
			continue
		}
		bestSize := m.TotalSize(cur)
		bestOrder := m.Order()
		improved := false
		base := m.Order()
		pos := indexOf(base, v)
		for target := 0; target < n; target++ {
			if target == pos {
				continue
			}
			cand := moveVar(base, pos, target)
			trial := m.Reorder(cand, cur)
			size := m.TotalSize(trial)
			if size < bestSize {
				bestSize = size
				bestOrder = cand
				improved = true
			}
			// restore base order for the next trial
			cur = m.Reorder(base, trial)
		}
		if improved {
			cur = m.Reorder(bestOrder, cur)
			base = bestOrder
		}
	}
	return cur
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// moveVar returns a copy of order with the element at from moved to
// position to.
func moveVar(order []int, from, to int) []int {
	out := make([]int, 0, len(order))
	v := order[from]
	for i, x := range order {
		if i == from {
			continue
		}
		out = append(out, x)
	}
	out = append(out, 0)
	copy(out[to+1:], out[to:])
	out[to] = v
	return out
}
