package bdd

import "fmt"

// CheckInvariants verifies the manager's structural invariants and
// returns the first violation found, or nil. It is a test helper:
// O(nodes + caches), intended to be called after GC, reordering, and
// fuzzing steps.
//
// Checked invariants:
//   - the variable order maps are inverse bijections;
//   - the free list is consistent with numFree/numAlloc;
//   - every live node has a valid level, in-arena non-free children,
//     strictly increasing levels on every path (child level > node
//     level), and is reduced (low != high);
//   - the complement-edge canonical form: no stored else edge carries
//     the complement bit (with DisableComplementEdges, no stored edge
//     other than one to the terminal carries it at all);
//   - no node carries a GC mark bit outside a collection;
//   - the unique table contains every live node exactly once, in its
//     own level's subtable in the bucket its child pair hashes to, with
//     no duplicate triples and exact per-level live counts;
//   - no operation-cache entry (ITE, binary, AndExists, permutation)
//     mentions a freed or out-of-arena node — in particular there are no
//     stale entries after a reorder, which clears all caches.
func CheckInvariants(m *Manager) error {
	n := len(m.nodes)
	if n < 1 {
		return fmt.Errorf("bdd: arena has %d nodes; terminal missing", n)
	}
	if m.nodes[0].lvl != terminalLevel {
		return fmt.Errorf("bdd: node 0 is not the terminal (lvl %d)", m.nodes[0].lvl)
	}

	// Variable order maps.
	if len(m.var2level) != len(m.level2var) {
		return fmt.Errorf("bdd: var2level/level2var length mismatch (%d vs %d)",
			len(m.var2level), len(m.level2var))
	}
	for l, v := range m.level2var {
		if v < 0 || v >= len(m.var2level) {
			return fmt.Errorf("bdd: level2var[%d] = %d out of range", l, v)
		}
		if m.var2level[v] != l {
			return fmt.Errorf("bdd: order maps disagree: level2var[%d]=%d but var2level[%d]=%d",
				l, v, v, m.var2level[v])
		}
	}

	// Free list.
	onFree := make([]bool, n)
	freeLen := 0
	for i := m.free; i != 0; i = m.nodes[i].next {
		if int(i) >= n {
			return fmt.Errorf("bdd: free-list entry %d outside arena of %d", i, n)
		}
		if onFree[i] {
			return fmt.Errorf("bdd: free-list cycle at node %d", i)
		}
		onFree[i] = true
		freeLen++
	}
	if freeLen != m.numFree {
		return fmt.Errorf("bdd: free list has %d entries, numFree says %d", freeLen, m.numFree)
	}
	if m.numAlloc+m.numFree != n {
		return fmt.Errorf("bdd: numAlloc(%d) + numFree(%d) != arena size %d",
			m.numAlloc, m.numFree, n)
	}

	// Live nodes.
	numLevels := uint32(len(m.level2var))
	for i := 1; i < n; i++ {
		if onFree[i] {
			continue
		}
		nd := m.nodes[i]
		if nd.lvl&markBit != 0 {
			return fmt.Errorf("bdd: node %d carries a GC mark bit outside a collection", i)
		}
		if nd.lvl >= numLevels {
			return fmt.Errorf("bdd: node %d has level %d beyond the %d variables", i, nd.lvl, numLevels)
		}
		if int(nd.low&^compBit) >= n || int(nd.high&^compBit) >= n {
			return fmt.Errorf("bdd: node %d has out-of-arena child (%d, %d)", i, nd.low, nd.high)
		}
		if onFree[nd.low&^compBit] || onFree[nd.high&^compBit] {
			return fmt.Errorf("bdd: node %d references a freed child (%d, %d)", i, nd.low, nd.high)
		}
		if nd.low == nd.high {
			return fmt.Errorf("bdd: node %d is unreduced (low == high == %d)", i, nd.low)
		}
		if !m.noComp {
			if nd.low&compBit != 0 {
				return fmt.Errorf("bdd: node %d violates canonical form: complemented else edge %d", i, nd.low)
			}
		} else {
			if nd.low&compBit != 0 && nd.low&^compBit != 0 ||
				nd.high&compBit != 0 && nd.high&^compBit != 0 {
				return fmt.Errorf("bdd: node %d carries a complement edge (%d, %d) "+
					"with complement edges disabled", i, nd.low, nd.high)
			}
		}
		if m.level(nd.low) <= nd.lvl || m.level(nd.high) <= nd.lvl {
			return fmt.Errorf("bdd: node %d at level %d has child at level <= its own "+
				"(low %d at %d, high %d at %d)", i, nd.lvl,
				nd.low, m.level(nd.low), nd.high, m.level(nd.high))
		}
	}

	// Unique table: one subtable per level, each node chained in its own
	// level's table under the hash of its child pair, per-level counts
	// exact, and the counts summing to the live non-terminal population.
	if len(m.tables) != len(m.level2var) {
		return fmt.Errorf("bdd: %d subtables for %d levels", len(m.tables), len(m.level2var))
	}
	type pair struct{ low, high Ref }
	chained := 0
	for l := range m.tables {
		st := &m.tables[l]
		seen := make(map[pair]uint32, st.count)
		inLevel := 0
		for b := range st.buckets {
			steps := 0
			for i := st.buckets[b]; i != 0; i = m.nodes[i].next {
				if int(i) >= n {
					return fmt.Errorf("bdd: level %d bucket %d chains to node %d outside arena", l, b, i)
				}
				if onFree[i] {
					return fmt.Errorf("bdd: level %d bucket %d chains to freed node %d", l, b, i)
				}
				nd := m.nodes[i]
				if nd.lvl&^markBit != uint32(l) {
					return fmt.Errorf("bdd: node %d at level %d chained in level %d's table",
						i, nd.lvl&^markBit, l)
				}
				tr := pair{nd.low, nd.high}
				if hash2(tr.low, tr.high, st.mask) != uint32(b) {
					return fmt.Errorf("bdd: node %d (lvl %d, %d, %d) chained in bucket %d, hashes to %d",
						i, l, tr.low, tr.high, b, hash2(tr.low, tr.high, st.mask))
				}
				if prev, dup := seen[tr]; dup {
					return fmt.Errorf("bdd: duplicate unique-table triple (lvl %d, %d, %d): nodes %d and %d",
						l, tr.low, tr.high, prev, i)
				}
				seen[tr] = uint32(i)
				inLevel++
				if steps++; steps > n {
					return fmt.Errorf("bdd: level %d bucket %d chain does not terminate", l, b)
				}
			}
		}
		if inLevel != st.count {
			return fmt.Errorf("bdd: level %d table chains %d nodes, count says %d", l, inLevel, st.count)
		}
		chained += inLevel
	}
	if chained != m.numAlloc-1 {
		return fmt.Errorf("bdd: unique table holds %d nodes, expected %d live non-terminals",
			chained, m.numAlloc-1)
	}

	// Operation caches must not mention freed or out-of-arena nodes.
	liveRef := func(r Ref) bool {
		p := r &^ compBit
		return int(p) < n && (p == 0 || !onFree[p])
	}
	for i := range m.ite {
		e := &m.ite[i]
		if !e.valid {
			continue
		}
		if !liveRef(e.f) || !liveRef(e.g) || !liveRef(e.h) || !liveRef(e.res) {
			return fmt.Errorf("bdd: stale ITE cache entry %d (%d,%d,%d)->%d", i, e.f, e.g, e.h, e.res)
		}
	}
	for i := range m.binop {
		e := &m.binop[i]
		if e.op == 0 {
			continue
		}
		if !liveRef(e.f) || !liveRef(e.g) || !liveRef(e.res) {
			return fmt.Errorf("bdd: stale binary cache entry %d (op %d: %d,%d)->%d", i, e.op, e.f, e.g, e.res)
		}
	}
	for i := range m.aex {
		e := &m.aex[i]
		if !e.valid {
			continue
		}
		if !liveRef(e.f) || !liveRef(e.g) || !liveRef(e.cube) || !liveRef(e.res) {
			return fmt.Errorf("bdd: stale AndExists cache entry %d (%d,%d,%d)->%d", i, e.f, e.g, e.cube, e.res)
		}
	}
	for pi, p := range m.perms {
		for from, to := range p.cache {
			if !liveRef(from) || !liveRef(to) {
				return fmt.Errorf("bdd: stale permutation %d cache entry %d->%d", pi, from, to)
			}
		}
	}
	return nil
}

// CheckInvariantsConcurrent verifies the striped unique table while
// parallel workers are actively mutating it: it may run concurrently
// with parallel-section Apply traffic (and is race-detector clean
// against it), locking one level stripe at a time and checking, for
// every node chained there, the level match, hash placement,
// reducedness, canonical else-edge form, in-arena children, strict
// level ordering and triple uniqueness, plus the exact per-level count.
//
// It is NOT safe against *sequential* mutation (mk, GC, reordering,
// sift) — those paths don't take the stripe locks; the caller must
// ensure only parallel-routed operations run during the scan. Global
// properties that need a quiescent manager (free-list consistency,
// numAlloc/numFree accounting, sequential-cache staleness) are the
// domain of CheckInvariants, between sections.
//
// Race-freedom argument: a node's lvl/low/high fields are written
// exactly once, before the node is published into its level's bucket
// chain under that level's stripe lock; we observe the node only via
// that chain while holding the same lock, so the happens-before edge
// through the mutex covers the plain field reads. A child ref stored in
// a node was obtained by its creator either under the child's stripe
// lock or from an atomic cache entry — both synchronize with the
// child's field writes — and the creator published the parent after
// that, extending the happens-before chain to our read of the child's
// level. The arena slice header is pinned by the engine's arenaMu
// (held shared here; the coordinator takes it exclusively for the
// pre-section extension and growth).
func CheckInvariantsConcurrent(m *Manager) error {
	ps := m.par
	if ps == nil {
		return CheckInvariants(m)
	}
	ps.arenaMu.RLock()
	defer ps.arenaMu.RUnlock()
	n := len(m.nodes)
	numLevels := uint32(len(m.level2var))
	type pair struct{ low, high Ref }
	for l := range m.tables {
		ps.levelMu[l].Lock()
		st := &m.tables[l]
		seen := make(map[pair]uint32, st.count)
		inLevel := 0
		err := func() error {
			for b := range st.buckets {
				steps := 0
				for i := st.buckets[b]; i != 0; i = m.nodes[i].next {
					if int(i) >= n {
						return fmt.Errorf("bdd: level %d bucket %d chains to node %d outside arena", l, b, i)
					}
					nd := m.nodes[i]
					if nd.lvl != uint32(l) {
						return fmt.Errorf("bdd: node %d at level %d chained in level %d's table", i, nd.lvl, l)
					}
					if nd.lvl >= numLevels {
						return fmt.Errorf("bdd: node %d has level %d beyond the %d variables", i, nd.lvl, numLevels)
					}
					if int(nd.low&^compBit) >= n || int(nd.high&^compBit) >= n {
						return fmt.Errorf("bdd: node %d has out-of-arena child (%d, %d)", i, nd.low, nd.high)
					}
					if nd.low == nd.high {
						return fmt.Errorf("bdd: node %d is unreduced (low == high == %d)", i, nd.low)
					}
					if !m.noComp && nd.low&compBit != 0 {
						return fmt.Errorf("bdd: node %d violates canonical form: complemented else edge %d", i, nd.low)
					}
					if m.level(nd.low) <= nd.lvl || m.level(nd.high) <= nd.lvl {
						return fmt.Errorf("bdd: node %d at level %d has child at level <= its own "+
							"(low %d at %d, high %d at %d)", i, nd.lvl,
							nd.low, m.level(nd.low), nd.high, m.level(nd.high))
					}
					tr := pair{nd.low, nd.high}
					if hash2(tr.low, tr.high, st.mask) != uint32(b) {
						return fmt.Errorf("bdd: node %d (lvl %d, %d, %d) chained in bucket %d, hashes to %d",
							i, l, tr.low, tr.high, b, hash2(tr.low, tr.high, st.mask))
					}
					if prev, dup := seen[tr]; dup {
						return fmt.Errorf("bdd: duplicate unique-table triple (lvl %d, %d, %d): nodes %d and %d",
							l, tr.low, tr.high, prev, i)
					}
					seen[tr] = uint32(i)
					inLevel++
					if steps++; steps > n {
						return fmt.Errorf("bdd: level %d bucket %d chain does not terminate", l, b)
					}
				}
			}
			if inLevel != st.count {
				return fmt.Errorf("bdd: level %d table chains %d nodes, count says %d", l, inLevel, st.count)
			}
			return nil
		}()
		ps.levelMu[l].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
