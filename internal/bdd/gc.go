package bdd

// Mark-and-sweep garbage collection. Live nodes are those reachable from
// the protected roots (see Protect) or from a registered rewriter's refs
// (see OnReorder/RegisterRefs). Collection never moves nodes, so
// protected and registered Refs stay valid; all other Refs obtained
// before a collection must be considered invalid afterwards. The
// operation caches are cleared because they may mention freed nodes.
//
// Complement bits live on edges, not nodes: marking strips the bit and
// walks the shared node, so protecting f keeps ¬f alive and vice versa.

// GC collects every node unreachable from the protected and registered
// roots and returns the number of nodes freed.
func (m *Manager) GC() int {
	if m.par != nil && m.par.inSection {
		// Parallel workers are sharing the arena right now; collection
		// waits for the fork-join section boundary (the safe point).
		return 0
	}
	m.Stats.GCRuns++
	// Mark.
	for r := range m.roots {
		m.mark(r)
	}
	for _, rw := range m.rewriters {
		rw.fn(func(r Ref) Ref {
			m.checkRef(r)
			m.mark(r)
			return r
		})
	}
	// Sweep: rebuild the free list and every level's subtable (counts
	// are recomputed from scratch as live nodes are reinserted).
	freed := 0
	m.free = 0
	m.numFree = 0
	for l := range m.tables {
		st := &m.tables[l]
		for i := range st.buckets {
			st.buckets[i] = 0
		}
		st.count = 0
	}
	alive := 1 // the terminal
	for i := len(m.nodes) - 1; i >= 1; i-- {
		n := &m.nodes[i]
		if n.lvl&markBit != 0 {
			n.lvl &^= markBit
			st := &m.tables[n.lvl]
			b := hash2(n.low, n.high, st.mask)
			n.next = st.buckets[b]
			st.buckets[b] = uint32(i)
			st.count++
			alive++
		} else {
			if n.lvl != terminalLevel {
				freed++ // was live; slots already on the free list are just relinked
			}
			n.lvl = terminalLevel // defensive: freed nodes look terminal-ish
			n.low = False
			n.high = False
			n.next = m.free
			m.free = uint32(i)
			m.numFree++
		}
	}
	m.numAlloc = alive
	m.Stats.NodesFreed += uint64(freed)
	if freed > 0 {
		// A collection that freed nothing invalidated nothing: every
		// cached Ref still denotes the same live node, so the caches
		// stay warm (this keeps a no-op sift event from costing the
		// whole Apply cache).
		m.clearCaches()
	}
	return freed
}

// mark sets the mark bit on every node reachable from f.
func (m *Manager) mark(f Ref) {
	f &^= compBit
	if f == 0 {
		return
	}
	n := &m.nodes[f]
	if n.lvl&markBit != 0 {
		return
	}
	n.lvl |= markBit
	m.mark(n.low)
	m.mark(n.high)
}

// MaybeGC runs a collection if the live-node count exceeds the GC
// threshold, returning the number of nodes freed (0 if no collection
// ran). Callers must ensure every Ref they still need is protected.
func (m *Manager) MaybeGC() int {
	if m.par == nil || !m.par.inSection {
		// MaybeGC is called at fixpoint safe points; scale the computed
		// tables with the arena here even when no collection runs.
		m.maybeGrowCaches()
	}
	if m.numAlloc <= m.gcThreshold {
		return 0
	}
	return m.GC()
}
