package bdd

import (
	"math/rand"
	"testing"
)

// randomFunc builds a random function over the manager's variables.
func randomFunc(r *rand.Rand, m *Manager) Ref {
	f := False
	for t := 0; t < 2+r.Intn(3); t++ {
		cube := True
		for v := 0; v < m.NumVars(); v++ {
			switch r.Intn(3) {
			case 0:
				cube = m.And(cube, m.Var(v))
			case 1:
				cube = m.And(cube, m.NVar(v))
			}
		}
		f = m.Or(f, cube)
	}
	return f
}

// TestCopyToRoundTrip: copying to an order-aligned scratch manager and
// back must be the identity, and the scratch copy must agree with the
// original on every assignment.
func TestCopyToRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := New(6)
		f := randomFunc(r, m)
		scratch := NewWithOrder(m.Order())
		g := m.CopyTo(scratch, f)
		if scratch.Size(g) != m.Size(f) {
			t.Fatalf("trial %d: copy size %d != source size %d", trial, scratch.Size(g), m.Size(f))
		}
		back := scratch.CopyTo(m, g)
		if back != f {
			t.Fatalf("trial %d: round trip not identity", trial)
		}
		env := make([]bool, 6)
		for probe := 0; probe < 64; probe++ {
			for i := range env {
				env[i] = probe>>i&1 == 1
			}
			if m.Eval(f, env) != scratch.Eval(g, env) {
				t.Fatalf("trial %d: copy disagrees on %v", trial, env)
			}
		}
	}
}

// TestCopyToNonIdentityOrder: the transfer must work under any shared
// order, not just the identity — scratch managers inherit whatever
// order dynamic reordering left the main manager in.
func TestCopyToNonIdentityOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := New(6)
	f := m.Protect(randomFunc(r, m))
	f = m.Reorder([]int{3, 1, 5, 0, 4, 2}, []Ref{f})[0]
	scratch := NewWithOrder(m.Order())
	g := m.CopyTo(scratch, f)
	env := make([]bool, 6)
	for probe := 0; probe < 64; probe++ {
		for i := range env {
			env[i] = probe>>i&1 == 1
		}
		if m.Eval(f, env) != scratch.Eval(g, env) {
			t.Fatalf("copy disagrees on %v under permuted order", env)
		}
	}
}

// TestCopyToOrderMismatchPanics: a destination with a different order
// must be rejected, not silently miscopied.
func TestCopyToOrderMismatchPanics(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Var(3))
	dst := NewWithOrder([]int{3, 2, 1, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("CopyTo with mismatched order did not panic")
		}
	}()
	m.CopyTo(dst, f)
}

// TestCopyToOperationsInScratch: results computed in the scratch arena
// transfer back to the values the main manager would have computed.
func TestCopyToOperationsInScratch(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		m := New(8)
		f := randomFunc(r, m)
		g := randomFunc(r, m)
		cube := m.Cube([]int{0, 2, 4})
		want := m.AndExists(f, g, cube)

		sc := NewWithOrder(m.Order())
		got := sc.CopyTo(m, sc.AndExists(m.CopyTo(sc, f), m.CopyTo(sc, g), m.CopyTo(sc, cube)))
		if got != want {
			t.Fatalf("trial %d: scratch AndExists differs from main-manager result", trial)
		}
	}
}
