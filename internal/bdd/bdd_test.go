package bdd

import (
	"math/rand"
	"testing"
)

// tt is a truth-table reference implementation over n variables: a
// function is the set of satisfying assignments encoded as a bitmask
// over all 2^n assignments (assignment a has variable v true iff bit v
// of a is set).
type tt struct {
	n    int
	bits uint64
}

func ttVar(n, v int) tt {
	var b uint64
	for a := 0; a < 1<<n; a++ {
		if a>>v&1 == 1 {
			b |= 1 << a
		}
	}
	return tt{n, b}
}

func (t tt) mask() uint64    { return 1<<(1<<t.n) - 1 }
func (t tt) not() tt         { return tt{t.n, ^t.bits & t.mask()} }
func (t tt) and(u tt) tt     { return tt{t.n, t.bits & u.bits} }
func (t tt) or(u tt) tt      { return tt{t.n, t.bits | u.bits} }
func (t tt) xor(u tt) tt     { return tt{t.n, t.bits ^ u.bits} }
func (t tt) ite(g, h tt) tt  { return t.and(g).or(t.not().and(h)) }
func (t tt) eval(a int) bool { return t.bits>>a&1 == 1 }
func (t tt) restrict(v int, val bool) tt {
	var b uint64
	for a := 0; a < 1<<t.n; a++ {
		fixed := a &^ (1 << v)
		if val {
			fixed |= 1 << v
		}
		if t.eval(fixed) {
			b |= 1 << a
		}
	}
	return tt{t.n, b}
}
func (t tt) exists(v int) tt { return t.restrict(v, false).or(t.restrict(v, true)) }
func (t tt) forall(v int) tt { return t.restrict(v, false).and(t.restrict(v, true)) }
func (t tt) count() int {
	c := 0
	for a := 0; a < 1<<t.n; a++ {
		if t.eval(a) {
			c++
		}
	}
	return c
}

// randPair builds a random boolean expression simultaneously as a BDD and
// a truth table.
func randPair(r *rand.Rand, m *Manager, n, depth int) (Ref, tt) {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return False, tt{n, 0}
		case 1:
			return True, tt{n, tt{n, 0}.mask()}
		default:
			v := r.Intn(n)
			if r.Intn(2) == 0 {
				return m.Var(v), ttVar(n, v)
			}
			bv, tv := m.Var(v), ttVar(n, v)
			return m.Not(bv), tv.not()
		}
	}
	f1, t1 := randPair(r, m, n, depth-1)
	f2, t2 := randPair(r, m, n, depth-1)
	switch r.Intn(5) {
	case 0:
		return m.And(f1, f2), t1.and(t2)
	case 1:
		return m.Or(f1, f2), t1.or(t2)
	case 2:
		return m.Xor(f1, f2), t1.xor(t2)
	case 3:
		return m.Not(f1), t1.not()
	default:
		f3, t3 := randPair(r, m, n, depth-1)
		return m.Ite(f1, f2, f3), t1.ite(t2, t3)
	}
}

func assignEnv(n, a int) []bool {
	env := make([]bool, n)
	for v := 0; v < n; v++ {
		env[v] = a>>v&1 == 1
	}
	return env
}

func checkAgainstTT(t *testing.T, m *Manager, f Ref, ref tt, what string) {
	t.Helper()
	for a := 0; a < 1<<ref.n; a++ {
		if m.Eval(f, assignEnv(ref.n, a)) != ref.eval(a) {
			t.Fatalf("%s: mismatch at assignment %b", what, a)
		}
	}
}

func TestTerminals(t *testing.T) {
	m := New(3)
	if m.Eval(True, []bool{false, false, false}) != true {
		t.Fatal("True must evaluate to true")
	}
	if m.Eval(False, []bool{true, true, true}) != false {
		t.Fatal("False must evaluate to false")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("Not on terminals broken")
	}
	if m.NumNodes() != 1 {
		t.Fatalf("fresh manager has %d nodes, want 1 (single shared terminal)", m.NumNodes())
	}
	if True != m.Not(False) {
		t.Fatal("True must be the complement of False")
	}
}

func TestVarBasics(t *testing.T) {
	m := New(4)
	for v := 0; v < 4; v++ {
		f := m.Var(v)
		g := m.NVar(v)
		if m.Not(f) != g {
			t.Fatalf("Not(Var(%d)) != NVar(%d)", v, v)
		}
		if m.And(f, g) != False {
			t.Fatalf("v ∧ ¬v must be False")
		}
		if m.Or(f, g) != True {
			t.Fatalf("v ∨ ¬v must be True")
		}
		if m.Var(v) != f {
			t.Fatalf("Var not canonical")
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a∧b)∨c  ==  ¬(¬c∧¬(a∧b)) — De Morgan
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Not(m.And(m.Not(c), m.Not(m.And(a, b))))
	if f1 != f2 {
		t.Fatal("canonicity violated: equal functions with different refs")
	}
	// distribution
	f3 := m.And(a, m.Or(b, c))
	f4 := m.Or(m.And(a, b), m.And(a, c))
	if f3 != f4 {
		t.Fatal("distribution law not canonical")
	}
}

func TestRandomOpsAgainstTruthTables(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 5
	for trial := 0; trial < 200; trial++ {
		m := New(n)
		f, ref := randPair(r, m, n, 4)
		checkAgainstTT(t, m, f, ref, "random expr")
	}
}

func TestConnectivesAgainstTruthTables(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 4
	m := New(n)
	for trial := 0; trial < 100; trial++ {
		f, tf := randPair(r, m, n, 3)
		g, tg := randPair(r, m, n, 3)
		checkAgainstTT(t, m, m.Nand(f, g), tf.and(tg).not(), "nand")
		checkAgainstTT(t, m, m.Nor(f, g), tf.or(tg).not(), "nor")
		checkAgainstTT(t, m, m.Imp(f, g), tf.not().or(tg), "imp")
		checkAgainstTT(t, m, m.Eq(f, g), tf.xor(tg).not(), "eq")
		checkAgainstTT(t, m, m.Diff(f, g), tf.and(tg.not()), "diff")
	}
}

func TestRestrict(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 4
	m := New(n)
	for trial := 0; trial < 100; trial++ {
		f, ref := randPair(r, m, n, 3)
		for v := 0; v < n; v++ {
			checkAgainstTT(t, m, m.Restrict(f, v, true), ref.restrict(v, true), "restrict v=1")
			checkAgainstTT(t, m, m.Restrict(f, v, false), ref.restrict(v, false), "restrict v=0")
		}
	}
}

func TestRestrictCube(t *testing.T) {
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(2)))
	// restrict x1=1, x2=0 => f = x0 xor 0 = x0
	cube := m.And(m.Var(1), m.NVar(2))
	got := m.RestrictCube(f, cube)
	if got != m.Var(0) {
		t.Fatalf("RestrictCube wrong: got %v", got)
	}
}

func TestQuantification(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 4
	m := New(n)
	for trial := 0; trial < 100; trial++ {
		f, ref := randPair(r, m, n, 3)
		for v := 0; v < n; v++ {
			cube := m.Cube([]int{v})
			checkAgainstTT(t, m, m.Exists(f, cube), ref.exists(v), "exists one")
			checkAgainstTT(t, m, m.ForAll(f, cube), ref.forall(v), "forall one")
		}
		// multi-variable cube
		cube := m.Cube([]int{0, 2})
		want := ref.exists(0).exists(2)
		checkAgainstTT(t, m, m.Exists(f, cube), want, "exists multi")
		wantA := ref.forall(0).forall(2)
		checkAgainstTT(t, m, m.ForAll(f, cube), wantA, "forall multi")
	}
}

func TestAndExistsEqualsComposed(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	const n = 5
	m := New(n)
	for trial := 0; trial < 200; trial++ {
		f, _ := randPair(r, m, n, 3)
		g, _ := randPair(r, m, n, 3)
		vars := []int{}
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				vars = append(vars, v)
			}
		}
		cube := m.Cube(vars)
		fused := m.AndExists(f, g, cube)
		composed := m.Exists(m.And(f, g), cube)
		if fused != composed {
			t.Fatalf("AndExists != Exists∘And (trial %d)", trial)
		}
	}
}

func TestCubeRoundTrip(t *testing.T) {
	m := New(6)
	vars := []int{1, 3, 5}
	cube := m.Cube(vars)
	back := m.CubeVars(cube)
	if len(back) != len(vars) {
		t.Fatalf("CubeVars returned %v", back)
	}
	for i := range vars {
		if back[i] != vars[i] {
			t.Fatalf("CubeVars order: got %v want %v", back, vars)
		}
	}
}

func TestSatCount(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const n = 5
	m := New(n)
	for trial := 0; trial < 100; trial++ {
		f, ref := randPair(r, m, n, 4)
		got := m.SatCount(f, n)
		want := float64(ref.count())
		if got != want {
			t.Fatalf("SatCount = %v, want %v", got, want)
		}
	}
}

func TestAnySatSatisfies(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	const n = 5
	m := New(n)
	for trial := 0; trial < 200; trial++ {
		f, _ := randPair(r, m, n, 4)
		a := m.AnySat(f)
		if f == False {
			if a != nil {
				t.Fatal("AnySat of False must be nil")
			}
			continue
		}
		env := make([]bool, n)
		for v := 0; v < n; v++ {
			env[v] = a[v] == 1
		}
		if !m.Eval(f, env) {
			t.Fatalf("AnySat returned non-satisfying assignment %v", a)
		}
	}
}

func TestPickOneAndMintermCube(t *testing.T) {
	m := New(4)
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(3))
	vars := []int{0, 1, 2, 3}
	vals := m.PickOne(f, vars)
	if vals == nil {
		t.Fatal("PickOne returned nil for satisfiable f")
	}
	cube := m.MintermCube(vars, vals)
	if m.And(cube, f) != cube {
		t.Fatal("picked minterm not contained in f")
	}
	if m.SatCount(cube, 4) != 1 {
		t.Fatal("minterm cube must have exactly one model")
	}
	if m.PickOne(False, vars) != nil {
		t.Fatal("PickOne of False must be nil")
	}
}

func TestAllSat(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const n = 4
	m := New(n)
	vars := []int{0, 1, 2, 3}
	for trial := 0; trial < 100; trial++ {
		f, ref := randPair(r, m, n, 3)
		got := map[int]bool{}
		m.AllSat(f, vars, func(a []bool) bool {
			key := 0
			for v, b := range a {
				if b {
					key |= 1 << v
				}
			}
			if got[key] {
				t.Fatal("AllSat produced duplicate assignment")
			}
			got[key] = true
			return true
		})
		if len(got) != ref.count() {
			t.Fatalf("AllSat yielded %d assignments, want %d", len(got), ref.count())
		}
		for a := range got {
			if !ref.eval(a) {
				t.Fatalf("AllSat yielded non-model %b", a)
			}
		}
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	m := New(3)
	f := True
	calls := 0
	m.AllSat(f, []int{0, 1, 2}, func(a []bool) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestImpliesAndDisjoint(t *testing.T) {
	m := New(3)
	ab := m.And(m.Var(0), m.Var(1))
	a := m.Var(0)
	if !m.Implies(ab, a) {
		t.Fatal("a∧b must imply a")
	}
	if m.Implies(a, ab) {
		t.Fatal("a must not imply a∧b")
	}
	if !m.Disjoint(a, m.Not(a)) {
		t.Fatal("a and ¬a must be disjoint")
	}
	if m.Disjoint(a, ab) {
		t.Fatal("a and a∧b are not disjoint")
	}
}

func TestSupport(t *testing.T) {
	m := New(6)
	f := m.Xor(m.Var(1), m.And(m.Var(3), m.Var(4)))
	sup := m.Support(f)
	want := []int{1, 3, 4}
	if len(sup) != len(want) {
		t.Fatalf("Support = %v, want %v", sup, want)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("Support = %v, want %v", sup, want)
		}
	}
}

func TestSizeMonotone(t *testing.T) {
	m := New(8)
	f := True
	prev := m.Size(f)
	if prev != 1 {
		t.Fatalf("Size(True) = %d", prev)
	}
	for v := 0; v < 8; v++ {
		f = m.And(f, m.Var(v))
		if s := m.Size(f); s != v+2 { // chain of v+1 nodes + the shared terminal
			t.Fatalf("Size of %d-var cube = %d, want %d", v+1, s, v+2)
		}
	}
}
