package bdd

import (
	"sort"
	"time"
)

// In-place adjacent-level swap: the O(two levels) reordering primitive.
//
// Exchanging the variables at levels l and l+1 rewrites only the nodes
// stored in those two levels' subtables. Every node keeps its arena
// index, so every Ref held anywhere — other levels, protected roots,
// registered rewriters, plain locals — stays valid across the swap with
// its denotation unchanged. That is what makes a sift trial cheap: no
// arena rebuild, no root rewriting, just local surgery plus an exact
// update of the per-level live counts.
//
// Write X for the variable at level l and Y for the one at l+1 before
// the swap. For an upper node n = (X; f0, f1):
//
//   - Case A: neither f0 nor f1 tests Y. Then n's function is
//     independent of Y, its expansion is unchanged, and n simply moves
//     to level l+1 keeping its children and its Ref.
//
//   - Case B: some child tests Y. Cofactoring on Y gives
//     n = (Y; (X; f00, f10), (X; f01, f11)), so n is relabeled in
//     place to test Y (staying at level l and keeping its Ref) over two
//     X-children built by mk at level l+1.
//
// Old Y nodes that remain referenced (by nodes above level l or as
// roots) keep their Refs and drop to level l — they test Y and Y now
// lives there. Unreferenced ones are freed; the freeing can cascade to
// deeper levels, which keeps the live count exact for the sift driver.
//
// Canonicity is preserved without cross-checks between the rewritten
// population and the survivors: a rewritten case-B node genuinely
// depends on X (f0 != f1 before the swap), while a surviving Y node
// cannot (its children lie below both levels), so their denotations —
// and hence, by induction over canonical children, their (low, high)
// pairs at level l — always differ. At level l+1 the inner mk calls
// land in the same subtable the case-A nodes were inserted into first,
// so equal X-cofactors are shared rather than duplicated. Case B cannot
// produce an unreduced node: newLow == newHigh would force f0 == f1.
//
// Complement edges survive the swap through mk itself. An upper node's
// stored else edge f0 is plain, so its else-cofactor f00 is plain and
// the rebuilt else child mk(l+1, f00, f10) comes out plain — the
// relabeled node keeps a canonical (non-complemented) else edge without
// any fixup. The then edge f1 (and the then-cofactors f01, f11) may be
// complemented; their signs are pushed through to the extracted
// cofactors and mk's normalization does the rest. Session refcounts are
// indexed by plain node, since f and ¬f are one node.
//
// Liveness during a sift is tracked by a session-scoped refcount array
// (siftState): in-edges of live nodes plus one per protected root and
// per rewriter-held ref. Counts can transiently reach zero and be
// revived within a swap (an inner mk may reuse the structure), so frees
// are deferred to a dead-candidate stack drained at the end of each
// swap.

// siftState is the bookkeeping of one in-place sift session.
type siftState struct {
	rc            []int32  // per-node refcount: in-edges + roots + rewriter refs
	zero          []uint32 // dead candidates: nodes whose refcount hit zero
	upper, lower  []uint32 // detachLevel scratch
	swaps         uint64   // swaps executed this session
	cachesCleared bool     // op caches dropped (lazily, at the first swap)
	timedOut      bool     // SiftMaxTime expired
}

// bump counts one new reference to f's node (sign-stripped: f and ¬f
// share one count).
func (st *siftState) bump(f Ref) {
	if !IsTerminal(f) {
		st.rc[f&^compBit]++
	}
}

// drop removes one reference to f's node, queuing it for reaping at zero.
func (st *siftState) drop(f Ref) {
	if IsTerminal(f) {
		return
	}
	i := f &^ compBit
	st.rc[i]--
	if st.rc[i] == 0 {
		st.zero = append(st.zero, uint32(i))
	} else if st.rc[i] < 0 {
		panic("bdd: swap refcount underflow")
	}
}

// beginSwapSession builds the refcounts the swaps need. It must run
// right after a GC (every live node reachable, free slots identifiable
// by their terminalLevel sentinel), which SiftNow guarantees.
func (m *Manager) beginSwapSession() {
	st := &siftState{rc: make([]int32, len(m.nodes))}
	for i := 1; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.lvl == terminalLevel { // free slot
			continue
		}
		st.bump(n.low)
		st.bump(n.high)
	}
	for r := range m.roots {
		st.bump(r)
	}
	for _, rw := range m.rewriters {
		rw.fn(func(r Ref) Ref {
			m.checkRef(r)
			st.bump(r)
			return r
		})
	}
	m.sift = st
}

func (m *Manager) endSwapSession() { m.sift = nil }

// swapMk is mk plus refcount upkeep: a freshly created node contributes
// one in-edge to each child. The caller accounts for its own edge to
// the returned Ref.
func (m *Manager) swapMk(lvl uint32, low, high Ref) Ref {
	before := m.numAlloc
	r := m.mk(lvl, low, high)
	st := m.sift
	if len(st.rc) < len(m.nodes) {
		st.rc = append(st.rc, make([]int32, len(m.nodes)-len(st.rc))...)
	}
	if m.numAlloc != before {
		st.bump(low)
		st.bump(high)
	}
	return r
}

// detachLevel empties level l's subtable into buf and returns it. The
// nodes keep their lvl fields; only the table no longer knows them.
func (m *Manager) detachLevel(l int, buf []uint32) []uint32 {
	st := &m.tables[l]
	for b := range st.buckets {
		for i := st.buckets[b]; i != 0; i = m.nodes[i].next {
			buf = append(buf, i)
		}
		st.buckets[b] = 0
	}
	st.count = 0
	return buf
}

// freeSlot returns node i to the free list. The caller has already
// removed it from its subtable (or detached the whole level).
func (m *Manager) freeSlot(i uint32) {
	m.nodes[i] = node{lvl: terminalLevel, low: False, high: False, next: m.free}
	m.free = i
	m.numFree++
	m.numAlloc--
	m.Stats.NodesFreed++
}

// reapDead frees every queued dead candidate that was not revived,
// cascading through children whose counts reach zero in turn.
func (m *Manager) reapDead() {
	st := m.sift
	for len(st.zero) > 0 {
		i := st.zero[len(st.zero)-1]
		st.zero = st.zero[:len(st.zero)-1]
		if st.rc[i] != 0 || m.nodes[i].lvl == terminalLevel {
			continue // revived by an inner mk, or already freed
		}
		m.unlinkNode(i)
		n := m.nodes[i]
		m.freeSlot(i)
		st.drop(n.low)
		st.drop(n.high)
	}
}

// swapLevels exchanges the variables at levels l and l+1 in place. See
// the file comment for the construction and why it is sound. Requires
// an active swap session.
func (m *Manager) swapLevels(l int) {
	st := m.sift
	if st == nil {
		panic("bdd: swapLevels outside a sift session")
	}
	if l < 0 || l+1 >= len(m.level2var) {
		panic("bdd: swapLevels level out of range")
	}
	if !st.cachesCleared {
		// Freed slots may be recycled under cached Refs, so the op
		// caches go once per session — and only if a swap actually
		// runs; a sift that commits nothing keeps them warm.
		m.clearCaches()
		st.cachesCleared = true
	}
	m.Stats.SiftSwaps++
	st.swaps++

	lvlU, lvlL := uint32(l), uint32(l+1)
	st.upper = m.detachLevel(l, st.upper[:0])
	st.lower = m.detachLevel(l+1, st.lower[:0])

	vU, vL := m.level2var[l], m.level2var[l+1]
	m.level2var[l], m.level2var[l+1] = vL, vU
	m.var2level[vU], m.var2level[vL] = l+1, l

	// Pass 1 (case A): upper nodes independent of the lower variable
	// descend to level l+1 unchanged. They go back into that subtable
	// before pass 2 so the rewritten nodes' X-cofactors share them.
	caseB := st.upper[:0] // compacts in place behind the read index
	for _, u := range st.upper {
		n := &m.nodes[u]
		if m.nodes[n.low&^compBit].lvl != lvlL && m.nodes[n.high&^compBit].lvl != lvlL {
			n.lvl = lvlL
			m.insertNode(u)
		} else {
			caseB = append(caseB, u)
		}
	}

	// Pass 2 (case B): rebuild each remaining upper node over its Y
	// cofactors. The node keeps its Ref and level; only its children
	// (and the variable it tests) change.
	for _, u := range caseB {
		n := m.nodes[u] // copy: the arena may grow under swapMk below
		f0, f1 := n.low, n.high
		f00, f01 := f0, f0
		if p := f0 &^ compBit; m.nodes[p].lvl == lvlL {
			s := f0 & compBit
			f00, f01 = m.nodes[p].low^s, m.nodes[p].high^s
		}
		f10, f11 := f1, f1
		if p := f1 &^ compBit; m.nodes[p].lvl == lvlL {
			s := f1 & compBit
			f10, f11 = m.nodes[p].low^s, m.nodes[p].high^s
		}
		newLow := m.swapMk(lvlL, f00, f10)
		newHigh := m.swapMk(lvlL, f01, f11)
		if newLow == newHigh {
			panic("bdd: adjacent swap produced an unreduced node")
		}
		st.bump(newLow)
		st.bump(newHigh)
		st.drop(f0)
		st.drop(f1)
		nd := &m.nodes[u]
		nd.low, nd.high = newLow, newHigh
		m.insertNode(u)
	}

	// Lower pass: still-referenced Y nodes rise to level l keeping
	// their Refs; dead ones are freed (they were never reinserted).
	for _, y := range st.lower {
		if st.rc[y] > 0 {
			m.nodes[y].lvl = lvlU
			m.insertNode(y)
		} else {
			n := m.nodes[y]
			m.freeSlot(y)
			st.drop(n.low)
			st.drop(n.high)
		}
	}
	m.reapDead()
}

// exchangeAdjacentBlocks swaps the adjacent level ranges [s, s+w1) and
// [s+w1, s+w1+w2) by bubbling each level of the second block up through
// the first: w1*w2 adjacent swaps.
func (m *Manager) exchangeAdjacentBlocks(s, w1, w2 int) {
	for j := 0; j < w2; j++ {
		for k := s + w1 + j; k > s+j; k-- {
			m.swapLevels(k - 1)
		}
	}
}

// siftNowSwap is the default SiftNow engine: converging passes of block
// sifting in which every placement trial is a run of in-place swaps.
// SiftNow has already collected garbage and normalized group adjacency.
func (m *Manager) siftNowSwap(opts *ReorderOptions) {
	startOrder := append([]int(nil), m.level2var...)
	var deadline time.Time
	if opts.SiftMaxTime > 0 {
		deadline = time.Now().Add(opts.SiftMaxTime)
	}
	m.beginSwapSession()
	size := m.numAlloc
	for pass := 0; pass < opts.MaxPasses; pass++ {
		m.Stats.SiftPasses++
		prev := size
		size = m.siftPassSwap(opts, deadline)
		if m.sift.timedOut || prev-size < int(opts.MinImprove*float64(prev)) {
			break
		}
	}
	swapped := m.sift.swaps > 0
	if m.sift.timedOut {
		m.Stats.SiftTimeouts++
	}
	m.endSwapSession()
	if !equalOrder(startOrder, m.level2var) {
		m.Stats.Reorderings++
	}
	if swapped {
		// Refs survived the swaps untranslated, but the hook contract
		// is that rewriters fire after every committed sift — clients
		// key their own cache invalidation off that signal.
		for _, rw := range m.rewriters {
			rw.fn(func(r Ref) Ref { return r })
		}
	}
}

// siftPassSwap sifts the blocks in decreasing order of contribution and
// returns the resulting live-node count. Contribution is read off the
// per-level counts — O(levels), where the rebuild pass scans the arena.
func (m *Manager) siftPassSwap(opts *ReorderOptions, deadline time.Time) int {
	blocks := m.blockOrder()
	if len(blocks) <= 1 {
		return m.numAlloc
	}
	contrib := make([]int, len(blocks))
	for bi, b := range blocks {
		for _, v := range b {
			contrib[bi] += m.tables[m.var2level[v]].count
		}
	}
	byContrib := make([]int, len(blocks))
	for i := range byContrib {
		byContrib[i] = i
	}
	sort.Slice(byContrib, func(i, j int) bool { return contrib[byContrib[i]] > contrib[byContrib[j]] })
	limit := len(byContrib)
	if opts.MaxBlocks > 0 && opts.MaxBlocks < limit {
		limit = opts.MaxBlocks
	}
	for _, bi := range byContrib[:limit] {
		if contrib[bi] == 0 || m.sift.timedOut {
			continue
		}
		m.siftBlockSwap(blocks[bi][0], opts, deadline)
	}
	return m.numAlloc
}

// siftBlockSwap walks the block (identified by its lead variable) to
// the nearer end of the order and then the far end via adjacent block
// exchanges, measuring the live count after each position, and finishes
// at the best position seen. Directions abort early past the growth
// budget; the timeout is honored between swap runs, but the final walk
// back to the best position always completes.
func (m *Manager) siftBlockSwap(lead int, opts *ReorderOptions, deadline time.Time) {
	cur := m.blockOrder()
	if len(cur) <= 1 {
		return
	}
	pos := -1
	for i, b := range cur {
		if b[0] == lead {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	widths := make([]int, len(cur))
	start := 0 // top level of the sifted block
	for i, b := range cur {
		widths[i] = len(b)
		if i < pos {
			start += len(b)
		}
	}
	lo, hi := 0, len(cur)-1
	if opts.Window > 0 {
		if l := pos - opts.Window; l > lo {
			lo = l
		}
		if h := pos + opts.Window; h < hi {
			hi = h
		}
	}
	bestSize := m.numAlloc
	bestPos := pos
	budget := growthBudget(opts, bestSize)

	moveDown := func() {
		w, w2 := widths[pos], widths[pos+1]
		m.exchangeAdjacentBlocks(start, w, w2)
		widths[pos], widths[pos+1] = w2, w
		start += w2
		pos++
	}
	moveUp := func() {
		w, w2 := widths[pos], widths[pos-1]
		m.exchangeAdjacentBlocks(start-w2, w2, w)
		widths[pos-1], widths[pos] = w, w2
		start -= w2
		pos--
	}
	outOfTime := func() bool {
		if m.sift.timedOut {
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			m.sift.timedOut = true
			return true
		}
		return false
	}
	walk := func(down bool, until int) {
		for pos != until {
			if outOfTime() {
				return
			}
			if down {
				moveDown()
			} else {
				moveUp()
			}
			m.Stats.SiftTrials++
			if m.numAlloc < bestSize {
				bestSize = m.numAlloc
				bestPos = pos
				budget = growthBudget(opts, bestSize)
			} else if m.numAlloc > budget {
				m.Stats.SiftAborts++
				return
			}
		}
	}
	if pos-lo <= hi-pos {
		walk(false, lo)
		walk(true, hi)
	} else {
		walk(true, hi)
		walk(false, lo)
	}
	for pos > bestPos {
		moveUp()
	}
	for pos < bestPos {
		moveDown()
	}
}
