// Package bdd implements reduced ordered binary decision diagrams (OBDDs)
// as described in Section 2 of Clarke, Grumberg, McMillan and Zhao,
// "Efficient Generation of Counterexamples and Witnesses in Symbolic Model
// Checking" (CMU-CS-94-204 / DAC 1995), following Bryant's original
// construction with the complement-edge refinement of Brace, Rudell and
// Bryant ("Efficient Implementation of a BDD Package", DAC 1990).
//
// Nodes live in a growable arena and are addressed by compact Ref handles.
// Bit 31 of a Ref is the complement bit: ¬f is the same node with the bit
// toggled, so negation is O(1) and allocates nothing, and a function and
// its complement share every node. The arena keeps a single terminal (the
// constant False at index 0); True is its complement. Canonical form is
// enforced the standard way: the else (low) edge of every stored node is
// non-complemented, with mk pulling the complement of an else edge up to
// the parent edge.
//
// For a fixed variable order the representation is canonical: two Refs
// from the same Manager are equal if and only if they denote the same
// boolean function, so equivalence checking is a single integer
// comparison — and checking f = ¬g is one comparison too.
//
// The package provides the operations the symbolic model checker needs:
// the 16 two-argument boolean connectives (via ITE with standard-triple
// and complement normalization, so e.g. f∧g, ¬(¬f∨¬g) and ITE(g,f,False)
// share one computed-cache line), restriction, existential and universal
// quantification, the combined relational product AndExists, variable
// permutation (current-state/next-state renaming), satisfying-assignment
// extraction, model counting, garbage collection and variable reordering.
//
// DisableComplementEdges keeps the pre-complement structural
// representation available behind the same API (negation materializes
// ¬f node by node, every edge is regular apart from the constant True
// itself): the differential suites run every model under both
// representations and demand identical verdicts.
package bdd

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Ref is a handle to a BDD node within a particular Manager. Bit 31 is
// the complement bit: f and f^compBit denote complementary functions
// over the same node. The zero value is the constant false function.
type Ref uint32

// compBit is the complement flag of a Ref. The index bits below it
// address the node arena.
const compBit Ref = 1 << 31

// Terminal constants. The arena holds a single terminal node (index 0)
// denoting False; True is its complement. They are shared by
// construction across every Manager.
const (
	False Ref = 0
	True  Ref = compBit
)

// IsComplement reports whether the Ref carries the complement bit. It
// is a property of the handle, not of the function: the canonical form
// decides which of f, ¬f is stored plain.
func IsComplement(f Ref) bool { return f&compBit != 0 }

// Regular returns f with the complement bit cleared: the plain handle
// of the node f lives on.
func Regular(f Ref) Ref { return f &^ compBit }

// terminalLevel is the level assigned to the terminal node. It
// compares greater than every variable level, which lets the recursive
// operations treat terminals uniformly.
const terminalLevel uint32 = 0x7fffffff

// markBit is or-ed into a node's level during garbage collection.
const markBit uint32 = 0x80000000

// node is a single decision node: if the variable at lvl is false the
// function continues at low, otherwise at high. next chains nodes in the
// unique-table hash buckets.
type node struct {
	lvl  uint32
	low  Ref
	high Ref
	next uint32
}

// subtable is the unique table for a single level: an open hash with
// per-node chaining through node.next. Keeping one table per level is
// what makes an adjacent-level swap O(nodes at the two levels) — the
// swap detaches exactly two subtables and never scans the arena — and
// it gives exact per-level live counts (count) for free, which the
// sift driver reads instead of walking nodes.
type subtable struct {
	buckets []uint32
	mask    uint32
	count   int // live nodes at this level
}

// Manager owns an arena of BDD nodes, the unique table that enforces
// canonicity, and the operation caches. A Manager is not safe for
// concurrent use.
type Manager struct {
	nodes []node

	// unique table, split per level: tables[l] indexes the nodes whose
	// lvl field is l. The terminal lives in no table.
	tables []subtable

	free     uint32 // head of the free list (0 = empty; the terminal is never freed)
	numFree  int
	numAlloc int // live node count including the terminal

	// noComp disables complement edges (DisableComplementEdges): the
	// manager then runs the legacy structural representation — negation
	// builds ¬f node by node and no stored edge carries the complement
	// bit (only the constant True itself does). Kept as the differential
	// oracle for the complement-edge engine.
	noComp bool

	// variable order: var2level[v] is the level of variable v.
	var2level []int
	level2var []int

	ite   []iteEntry
	binop []binEntry
	aex   []aexEntry // lazily allocated by AndExists

	// cacheSize is the current entry count of each computed table
	// (always a power of two). cachePinned is set by SetCacheSize and
	// stops the automatic arena-proportional growth.
	cacheSize   int
	cachePinned bool

	perms []*Permutation // registered variable permutations

	roots map[Ref]int // protected external references

	// Live-root registry (see reorder.go): every registered rewriter is
	// invoked after a reorder to translate the Refs its owner holds, and
	// its refs are treated as GC roots.
	rewriters  []rewriter
	nextHookID int

	groups [][]int // variable blocks that sift as one unit (GroupVars)

	// Automatic dynamic-reordering state (see reorder.go).
	reorderOpts  ReorderOptions
	autoReorder  bool
	reorderPause int  // PauseAutoReorder nesting depth
	reordering   bool // true while a sift is running (reentrancy guard)
	lastSiftSize int  // live nodes after the most recent sift

	// sift is non-nil while an in-place swap session is active; it holds
	// the liveness refcounts that swapLevels needs (see swap.go).
	sift *siftState

	gcThreshold int // run GC opportunistically above this many live nodes

	// par is the shared-memory parallel engine, nil until
	// SetParallelWorkers enables it (see parallel.go).
	par *parState

	// Stats accumulates counters since the Manager was created.
	Stats Stats
}

// Stats records operation counters for benchmarking and regression tests.
type Stats struct {
	ITECalls     uint64
	CacheHits    uint64
	CacheLookups uint64
	GCRuns       uint64
	NodesFreed   uint64
	Reorderings  uint64
	CacheGrowths uint64 // computed-table resizes (automatic + SetCacheSize)

	// Relational-product counters: top-level AndExists calls and the
	// dedicated triple-cache traffic of its recursion. Hit rate here is
	// the observability signal for partitioned image computation.
	AndExistsCalls   uint64
	AndExistsLookups uint64
	AndExistsHits    uint64

	// Dynamic-reordering counters (see reorder.go and swap.go).
	// Reorderings counts committed order changes: every arena rebuild
	// (explicit Reorder and rebuild-engine sift trials) plus every
	// in-place sift event that ends on a different order than it
	// started. AutoReorders counts growth-triggered sift events.
	// SiftTrials counts candidate block positions evaluated, SiftSwaps
	// the adjacent-level swaps executed, SiftTimeouts the sift events
	// cut short by ReorderOptions.SiftMaxTime. ReorderSavedNodes sums
	// the live-node reduction over all sifts and ReorderTime the wall
	// time spent sifting.
	AutoReorders      uint64
	SiftPasses        uint64
	SiftTrials        uint64
	SiftAborts        uint64
	SiftSwaps         uint64
	SiftTimeouts      uint64
	ReorderSavedNodes int64
	ReorderTime       time.Duration

	// Parallel-engine counters (see parallel.go). ParallelSections
	// counts fork-join sections opened, ParallelJobs the RunParallel
	// jobs executed inside them, ParallelForks the recursion subproblems
	// forked onto fresh goroutines, ParallelRetries the sections
	// re-run after arena exhaustion, and ParallelPeakInFlight the
	// high-water mark of simultaneously forked subtasks (the queue-depth
	// signal: it saturates at the fork cap when workers stay busy).
	ParallelSections     uint64
	ParallelJobs         uint64
	ParallelForks        uint64
	ParallelRetries      uint64
	ParallelPeakInFlight int
}

type iteEntry struct {
	f, g, h Ref
	res     Ref
	valid   bool
}

type binEntry struct {
	op   uint32
	f, g Ref
	res  Ref
}

// Cache/bucket sizing. The computed tables start at defaultCacheSize
// entries and, unless pinned with SetCacheSize, grow with the arena up
// to maxAutoCacheSize: a direct-mapped cache much smaller than the live
// node count thrashes, and the fixpoint engines re-derive the same
// subproblems over and over.
const (
	initialLevelBuckets = 1 << 6 // per-level subtable start size
	defaultCacheSize    = 1 << 16
	maxAutoCacheSize    = 1 << 21
)

// Option configures a Manager at construction time.
type Option func(*Manager)

// DisableComplementEdges selects the legacy structural representation:
// no stored edge carries the complement bit (True, being ¬False by
// definition, is the single exception) and Not(f) materializes the
// complement node by node. The resulting manager is semantically
// equivalent and serves as the differential oracle for the
// complement-edge engine.
func DisableComplementEdges() Option {
	return func(m *Manager) { m.noComp = true }
}

// New creates a Manager with numVars variables, numbered 0..numVars-1.
// The initial variable order is the identity (variable i at level i).
// More variables may be added later with AddVar.
func New(numVars int, opts ...Option) *Manager {
	if numVars < 0 {
		panic("bdd: negative variable count")
	}
	m := &Manager{
		ite:         make([]iteEntry, defaultCacheSize),
		binop:       make([]binEntry, defaultCacheSize),
		cacheSize:   defaultCacheSize,
		roots:       make(map[Ref]int),
		gcThreshold: 1 << 20,
		reorderOpts: DefaultReorderOptions(),
	}
	for _, o := range opts {
		o(m)
	}
	m.nodes = make([]node, 1, 1024)
	m.nodes[0] = node{lvl: terminalLevel, low: False, high: False}
	m.numAlloc = 1
	for i := 0; i < numVars; i++ {
		m.AddVar()
	}
	return m
}

// ComplementEdgesDisabled reports whether the manager runs the legacy
// structural representation (see DisableComplementEdges).
func (m *Manager) ComplementEdgesDisabled() bool { return m.noComp }

// AddVar appends a fresh variable at the bottom of the current order and
// returns its index.
func (m *Manager) AddVar() int {
	v := len(m.var2level)
	m.var2level = append(m.var2level, v)
	m.level2var = append(m.level2var, v)
	m.tables = append(m.tables, newSubtable(initialLevelBuckets))
	if m.par != nil && len(m.par.levelMu) < len(m.tables) {
		m.par.levelMu = append(m.par.levelMu, make([]sync.Mutex, len(m.tables)-len(m.par.levelMu))...)
	}
	return v
}

// newSubtable returns an empty subtable with the given power-of-two
// bucket count.
func newSubtable(size int) subtable {
	return subtable{buckets: make([]uint32, size), mask: uint32(size - 1)}
}

// LevelCounts returns the current number of live nodes at each level
// (index = level). The counts are maintained incrementally by mk, GC
// and the in-place swap, so this is O(levels), not O(arena).
func (m *Manager) LevelCounts() []int {
	out := make([]int, len(m.tables))
	for i := range m.tables {
		out[i] = m.tables[i].count
	}
	return out
}

// LevelOccupancy pairs a level with the variable placed there and its
// live-node count.
type LevelOccupancy struct {
	Level int
	Var   int
	Count int
}

// TopLevels returns the k levels holding the most live nodes, fattest
// first (ties broken by level). Levels with zero nodes are omitted.
func (m *Manager) TopLevels(k int) []LevelOccupancy {
	all := make([]LevelOccupancy, 0, len(m.tables))
	for l := range m.tables {
		if c := m.tables[l].count; c > 0 {
			all = append(all, LevelOccupancy{Level: l, Var: m.level2var[l], Count: c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Level < all[j].Level
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// UniqueTableLoadFactor returns the mean occupancy of the unique-table
// buckets: live non-terminal nodes divided by the total bucket count
// over all per-level subtables. With chained buckets a load factor near
// or above 1 means longer probe chains on every mk.
func (m *Manager) UniqueTableLoadFactor() float64 {
	buckets := 0
	for i := range m.tables {
		buckets += len(m.tables[i].buckets)
	}
	if buckets == 0 {
		return 0
	}
	return float64(m.numAlloc-1) / float64(buckets)
}

// ArenaBytes returns the memory footprint of the node arena and the
// unique-table buckets in bytes (capacity, not just the live nodes).
// Divided by NumNodes it gives the bytes-per-live-node figure the
// benchmark recorders track.
func (m *Manager) ArenaBytes() int {
	const nodeBytes = 16 // lvl + low + high + next, 4 bytes each
	b := cap(m.nodes) * nodeBytes
	for i := range m.tables {
		b += len(m.tables[i].buckets) * 4
	}
	return b
}

// NumVars returns the number of variables managed.
func (m *Manager) NumVars() int { return len(m.var2level) }

// NumNodes returns the number of live nodes, including the terminal.
func (m *Manager) NumNodes() int { return m.numAlloc }

// LevelOf returns the current level of variable v.
func (m *Manager) LevelOf(v int) int { return m.var2level[v] }

// VarAtLevel returns the variable currently placed at the given level.
func (m *Manager) VarAtLevel(l int) int { return m.level2var[l] }

// Order returns a copy of the current variable order: element i is the
// variable at level i.
func (m *Manager) Order() []int {
	out := make([]int, len(m.level2var))
	copy(out, m.level2var)
	return out
}

// Var returns the BDD of the single variable v.
func (m *Manager) Var(v int) Ref {
	return m.mk(uint32(m.var2level[v]), False, True)
}

// NVar returns the BDD of the negation of variable v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(uint32(m.var2level[v]), True, False)
}

// Lit returns Var(v) if pos, NVar(v) otherwise.
func (m *Manager) Lit(v int, pos bool) Ref {
	if pos {
		return m.Var(v)
	}
	return m.NVar(v)
}

// IsTerminal reports whether f is one of the two constant functions.
func IsTerminal(f Ref) bool { return f&^compBit == 0 }

// level returns the level of f's node with the GC mark bit stripped.
func (m *Manager) level(f Ref) uint32 { return m.nodes[f&^compBit].lvl &^ markBit }

// Level returns the level of the top variable of f, or a value greater
// than any variable level if f is a terminal.
func (m *Manager) Level(f Ref) int { return int(m.level(f)) }

// TopVar returns the variable tested at the root of f. It panics on
// terminals.
func (m *Manager) TopVar(f Ref) int {
	if IsTerminal(f) {
		panic("bdd: TopVar of terminal")
	}
	return m.level2var[m.level(f)]
}

// low returns the else-cofactor of f: the stored else edge with f's
// complement bit pushed through. On a plain ref this is the raw edge.
func (m *Manager) low(f Ref) Ref { return m.nodes[f&^compBit].low ^ (f & compBit) }

// high returns the then-cofactor of f with the complement bit pushed
// through.
func (m *Manager) high(f Ref) Ref { return m.nodes[f&^compBit].high ^ (f & compBit) }

// Low returns the else-branch (variable false) of f, as a function:
// complement bits on f propagate to the returned cofactor.
func (m *Manager) Low(f Ref) Ref { return m.low(f) }

// High returns the then-branch (variable true) of f, with complement
// bits propagated.
func (m *Manager) High(f Ref) Ref { return m.high(f) }

// hash2 mixes a node's child pair into a bucket index. The level is not
// part of the hash: each level has its own table.
func hash2(low, high Ref, mask uint32) uint32 {
	x := uint64(low)*0xbf58476d1ce4e5b9 ^ uint64(high)*0x94d049bb133111eb
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return uint32(x) & mask
}

// mk returns the canonical ref for (lvl, low, high), applying the
// reduction rules — equal children collapse, structurally identical
// nodes are shared through the level's unique subtable — and the
// complement-edge canonicalization: a complemented else edge is pulled
// up, storing the node over the complemented child pair and returning
// the complemented handle, so exactly one of f, ¬f owns a node.
func (m *Manager) mk(lvl uint32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if !m.noComp && low&compBit != 0 {
		return m.mkRaw(lvl, low^compBit, high^compBit) ^ compBit
	}
	return m.mkRaw(lvl, low, high)
}

// mkRaw is the unique-table half of mk: hash-cons the exact triple.
func (m *Manager) mkRaw(lvl uint32, low, high Ref) Ref {
	st := &m.tables[lvl]
	b := hash2(low, high, st.mask)
	for i := st.buckets[b]; i != 0; i = m.nodes[i].next {
		n := &m.nodes[i]
		if n.low == low && n.high == high {
			return Ref(i)
		}
	}
	var idx uint32
	if m.free != 0 {
		idx = m.free
		m.free = m.nodes[idx].next
		m.numFree--
	} else {
		idx = uint32(len(m.nodes))
		m.nodes = append(m.nodes, node{})
	}
	m.nodes[idx] = node{lvl: lvl, low: low, high: high, next: st.buckets[b]}
	st.buckets[b] = idx
	st.count++
	m.numAlloc++
	if st.count > len(st.buckets)*3 {
		m.growSubtable(st)
	}
	return Ref(idx)
}

// growSubtable doubles one level's table and rehashes its chains. Only
// the nodes at that level are touched — growth never scans the arena.
func (m *Manager) growSubtable(st *subtable) {
	old := st.buckets
	st.buckets = make([]uint32, len(old)*2)
	st.mask = uint32(len(st.buckets) - 1)
	for _, head := range old {
		for i := head; i != 0; {
			n := &m.nodes[i]
			next := n.next
			b := hash2(n.low, n.high, st.mask)
			n.next = st.buckets[b]
			st.buckets[b] = i
			i = next
		}
	}
}

// insertNode links node i into the subtable of its (already set) level
// and bumps the level's live count.
func (m *Manager) insertNode(i uint32) {
	n := &m.nodes[i]
	st := &m.tables[n.lvl]
	b := hash2(n.low, n.high, st.mask)
	n.next = st.buckets[b]
	st.buckets[b] = i
	st.count++
	if st.count > len(st.buckets)*3 {
		m.growSubtable(st)
	}
}

// unlinkNode removes node i from its level's subtable.
func (m *Manager) unlinkNode(i uint32) {
	n := &m.nodes[i]
	st := &m.tables[n.lvl]
	b := hash2(n.low, n.high, st.mask)
	if st.buckets[b] == i {
		st.buckets[b] = n.next
	} else {
		j := st.buckets[b]
		for j != 0 && m.nodes[j].next != i {
			j = m.nodes[j].next
		}
		if j == 0 {
			panic("bdd: unlinkNode: node not in its level's table")
		}
		m.nodes[j].next = n.next
	}
	st.count--
}

// Protect registers f as an external root so that garbage collection
// keeps it (and everything it references) alive. Calls nest: each
// Protect must be balanced by one Unprotect. Protect returns f for
// convenience.
func (m *Manager) Protect(f Ref) Ref {
	m.roots[f]++
	return f
}

// Unprotect removes one protection from f.
func (m *Manager) Unprotect(f Ref) {
	c, ok := m.roots[f]
	if !ok {
		return
	}
	if c <= 1 {
		delete(m.roots, f)
	} else {
		m.roots[f] = c - 1
	}
}

// ProtectedCount returns the number of distinct protected roots.
func (m *Manager) ProtectedCount() int { return len(m.roots) }

// SetGCThreshold sets the live-node count above which MaybeGC collects.
func (m *Manager) SetGCThreshold(n int) { m.gcThreshold = n }

// checkRef panics if f is not a plausible node handle for this manager.
func (m *Manager) checkRef(f Ref) {
	if int(f&^compBit) >= len(m.nodes) {
		panic(fmt.Sprintf("bdd: invalid ref %d (arena size %d)", f, len(m.nodes)))
	}
}

// clearCaches invalidates the operation caches. Required after GC or
// reordering since cached results may reference freed nodes.
func (m *Manager) clearCaches() {
	for i := range m.ite {
		m.ite[i] = iteEntry{}
	}
	for i := range m.binop {
		m.binop[i] = binEntry{}
	}
	for i := range m.aex {
		m.aex[i] = aexEntry{}
	}
	for _, p := range m.perms {
		p.cache = nil
	}
	m.parInvalidateCaches()
}

// cacheIndex hashes up to four words into a cache slot index.
func cacheIndex(a, b, c, d uint32, size uint32) uint32 {
	x := uint64(a)*0x9e3779b97f4a7c15 + uint64(b)*0xbf58476d1ce4e5b9 +
		uint64(c)*0x94d049bb133111eb + uint64(d)*0x2545f4914f6cdd1d
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return uint32(x) & (size - 1)
}

// CacheSize returns the current entry count of each computed table
// (ITE, binary-op and AndExists caches are sized identically).
func (m *Manager) CacheSize() int { return m.cacheSize }

// SetCacheSize resizes the computed tables to n entries each and pins
// them there, disabling the automatic arena-proportional growth. n must
// be a power of two in [2^10, 2^24]. Resizing discards all cached
// results (the slot hash depends on the size), which is always safe —
// the tables are memoization only.
func (m *Manager) SetCacheSize(n int) error {
	if bits.OnesCount(uint(n)) != 1 {
		return fmt.Errorf("bdd: cache size %d is not a power of two", n)
	}
	if n < 1<<10 || n > 1<<24 {
		return fmt.Errorf("bdd: cache size %d outside [%d, %d]", n, 1<<10, 1<<24)
	}
	m.resizeCaches(n)
	m.cachePinned = true
	return nil
}

// resizeCaches reallocates the computed tables at n entries.
func (m *Manager) resizeCaches(n int) {
	m.cacheSize = n
	m.ite = make([]iteEntry, n)
	m.binop = make([]binEntry, n)
	if m.aex != nil {
		m.aex = make([]aexEntry, n)
	}
	m.Stats.CacheGrowths++
}

// maybeGrowCaches scales the computed tables with the arena: whenever
// the live-node count outgrows the cache, the cache doubles (up to
// maxAutoCacheSize) so the hit rate does not collapse on large models.
// Called at safe points only (MaybeGC, GC) — never mid-recursion inside
// a parallel section, where workers read the sequential tables' twin
// seqlock caches instead.
func (m *Manager) maybeGrowCaches() {
	if m.cachePinned || m.cacheSize >= maxAutoCacheSize {
		return
	}
	target := m.cacheSize
	for target < maxAutoCacheSize && m.numAlloc > target {
		target *= 2
	}
	if target > m.cacheSize {
		m.resizeCaches(target)
	}
}
