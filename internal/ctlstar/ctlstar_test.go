package ctlstar

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

func setup(e *kripke.Explicit) (*kripke.Symbolic, *Checker) {
	s := kripke.FromExplicit(e)
	return s, New(mc.New(s))
}

func stateOf(s *kripke.Symbolic, idx int) kripke.State {
	return kripke.IndexState(idx, len(s.Vars))
}

// gfFgModel: states 0->1->0 (cycle A, p at 1), 0->2, 2->3->2 (cycle B,
// q at 2 and 3).
func gfFgModel() *kripke.Explicit {
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(0, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	e.Label(1, "p")
	e.Label(2, "q")
	e.Label(3, "q")
	e.AddInit(0)
	return e
}

func TestParseAndPrint(t *testing.T) {
	f := MustParse("E (GF p | FG q) & (GF r)")
	if len(f) != 2 || len(f[0]) != 2 || len(f[1]) != 1 {
		t.Fatalf("parse shape wrong: %s", f)
	}
	if !f[0][0].GF || f[0][1].GF || !f[1][0].GF {
		t.Fatalf("term kinds wrong: %s", f)
	}
	// without leading E, compound args
	g := MustParse("(FG (a & b))")
	if len(g) != 1 || g[0][0].GF {
		t.Fatalf("parse wrong: %s", g)
	}
	if _, err := Parse("E (XX p)"); err == nil {
		t.Fatal("bad term should fail")
	}
	if _, err := Parse("E (GF p"); err == nil {
		t.Fatal("unbalanced parens should fail")
	}
}

func TestGFHolds(t *testing.T) {
	s, sc := setup(gfFgModel())
	// E GF p: cycle 0<->1 visits p infinitely often.
	set, err := sc.Check(MustParse("E (GF p)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(set, stateOf(s, 0)) {
		t.Fatal("E GF p should hold at 0")
	}
	// but not from states 2,3 (stuck in cycle B, no p)
	if s.Holds(set, stateOf(s, 2)) {
		t.Fatal("E GF p should fail at 2")
	}
}

func TestFGHolds(t *testing.T) {
	s, sc := setup(gfFgModel())
	set, err := sc.Check(MustParse("E (FG q)"))
	if err != nil {
		t.Fatal(err)
	}
	// from 0 we can move to cycle B where q holds forever
	for _, idx := range []int{0, 2, 3} {
		if !s.Holds(set, stateOf(s, idx)) {
			t.Fatalf("E FG q should hold at %d", idx)
		}
	}
}

func TestConjunctionOfClauses(t *testing.T) {
	s, sc := setup(gfFgModel())
	// E (GF p) & (GF !p): alternate 0,1 forever.
	set, err := sc.Check(MustParse("E (GF p) & (GF !p)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(set, stateOf(s, 0)) {
		t.Fatal("should hold at 0")
	}
	// E (GF p) & (FG q): impossible — p-cycle has no q... and q-cycle no p.
	set, err = sc.Check(MustParse("E (GF p) & (FG q)"))
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 4; idx++ {
		if s.Holds(set, stateOf(s, idx)) {
			t.Fatalf("E (GF p)&(FG q) should fail everywhere, holds at %d", idx)
		}
	}
}

func TestDisjunctionWithinClause(t *testing.T) {
	s, sc := setup(gfFgModel())
	set, err := sc.Check(MustParse("E (GF p | FG q)"))
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 4; idx++ {
		if !s.Holds(set, stateOf(s, idx)) {
			t.Fatalf("clause should hold at every state, fails at %d", idx)
		}
	}
}

func TestMultiFGClauseNotOverApproximated(t *testing.T) {
	// Model where G(q1 ∨ q2) holds on a cycle alternating q1,q2 but
	// neither FG q1 nor FG q2 holds: 0(q1) <-> 1(q2).
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.Label(0, "q1")
	e.Label(1, "q2")
	e.AddInit(0)
	s, sc := setup(e)
	set, err := sc.Check(MustParse("E (FG q1 | FG q2)"))
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 2; idx++ {
		if s.Holds(set, stateOf(s, idx)) {
			t.Fatalf("E(FG q1 | FG q2) must fail at %d (naive EL accepts)", idx)
		}
	}
}

func TestAmbientFairnessFolded(t *testing.T) {
	// 0 -> 0 (q), 0 -> 1, 1 -> 1 (h). Ambient fairness h only at 1.
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 0)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(0, "q")
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, true})
	s, sc := setup(e)
	// E FG q would hold via the 0-self-loop, but that path is unfair.
	set, err := sc.Check(MustParse("E (FG q)"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Holds(set, stateOf(s, 0)) {
		t.Fatal("ambient fairness must rule out the q-loop")
	}
}

func TestELAgreesWithCaseSplit(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		e := kripke.RandomExplicit(r, 6+r.Intn(8), 2, []string{"p", "q", "r"}, trial%2, 0.3)
		s, sc := setup(e)
		formulas := []Formula{
			MustParse("E (GF p)"),
			MustParse("E (FG q)"),
			MustParse("E (GF p | FG q)"),
			MustParse("E (GF p) & (GF q)"),
			MustParse("E (GF p | FG q) & (GF r | FG p)"),
			MustParse("E (FG p | FG q)"),
		}
		for _, f := range formulas {
			el, err := sc.CheckEL(f)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := sc.CheckSplit(f)
			if err != nil {
				t.Fatal(err)
			}
			if el != cs {
				t.Fatalf("trial %d: EL and case-split disagree on %s", trial, f)
			}
		}
		_ = s
	}
}

func TestWitnessShapes(t *testing.T) {
	s, sc := setup(gfFgModel())
	for _, src := range []string{
		"E (GF p)",
		"E (FG q)",
		"E (GF p | FG q)",
		"E (GF p) & (GF !p)",
	} {
		f := MustParse(src)
		tr, err := sc.Witness(f, stateOf(s, 0))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if err := sc.ValidateWitness(f, tr); err != nil {
			t.Fatalf("%s: invalid witness: %v\n%s", src, err, tr)
		}
	}
}

func TestWitnessNotSatisfied(t *testing.T) {
	s, sc := setup(gfFgModel())
	f := MustParse("E (GF p) & (FG q)")
	if _, err := sc.Witness(f, stateOf(s, 0)); err != core.ErrNotSatisfied {
		t.Fatalf("want ErrNotSatisfied, got %v", err)
	}
}

func TestRandomWitnessesValidate(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	formulas := []string{
		"E (GF p)",
		"E (FG q)",
		"E (GF p | FG q)",
		"E (GF p) & (GF q)",
		"E (GF p | FG q) & (GF q | FG p)",
	}
	for trial := 0; trial < 25; trial++ {
		e := kripke.RandomExplicit(r, 6+r.Intn(8), 2, []string{"p", "q"}, trial%2, 0.3)
		s, sc := setup(e)
		for _, src := range formulas {
			f := MustParse(src)
			set, err := sc.Check(f)
			if err != nil {
				t.Fatal(err)
			}
			reach, _ := s.Reachable()
			for _, st := range s.EnumStates(s.M.And(reach, set), 3) {
				tr, err := sc.Witness(f, st)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, src, err)
				}
				if err := sc.ValidateWitness(f, tr); err != nil {
					t.Fatalf("trial %d %s: invalid: %v\n%s", trial, src, err, tr)
				}
			}
		}
	}
}

func TestWitnessWithCompoundArgs(t *testing.T) {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 1)
	e.Label(1, "a")
	e.Label(1, "b")
	e.Label(2, "a")
	e.AddInit(0)
	s, sc := setup(e)
	f := MustParse("E (FG (a)) & (GF (a & b))")
	set, err := sc.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(set, stateOf(s, 0)) {
		t.Fatal("formula should hold at 0")
	}
	tr, err := sc.Witness(f, stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.ValidateWitness(f, tr); err != nil {
		t.Fatalf("invalid: %v\n%s", err, tr)
	}
}

func TestFormulaString(t *testing.T) {
	f := Formula{
		{GFTerm(ctl.Atom("p")), FGTerm(ctl.Atom("q"))},
		{GFTerm(ctl.Atom("r"))},
	}
	want := "E (GF (p) | FG (q)) & (GF (r))"
	if f.String() != want {
		t.Fatalf("String = %q, want %q", f.String(), want)
	}
}
