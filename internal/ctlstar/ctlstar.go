// Package ctlstar implements Section 7 of the paper: model checking and
// witness generation for the CTL* fragment
//
//	E ⋀_{j=1..n} ( GF p_j ∨ FG q_j )
//
// over state formulas p_j, q_j. Two checking procedures are provided:
//
//   - the Emerson–Lei fixpoint characterization
//     E ⋀_j (GF p_j ∨ FG q_j) = EF gfp Y [ ⋀_j ((q_j ∧ EX Y) ∨ EX E[Y U p_j ∧ Y]) ]
//     which runs in a single fixpoint computation, and
//
//   - the case-split of the witness construction: each disjunction is
//     resolved to one of its terms, reducing the formula to
//     EF EG(⋀ q chosen) under fairness constraints {p chosen}, which the
//     Section 6 machinery checks and produces witnesses for.
//
// Both must agree; the tests exploit this as a self-check.
package ctlstar

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// Term is one disjunct of a clause: GF p (infinitely often p) when GF is
// true, FG q (eventually always q) otherwise.
type Term struct {
	GF  bool
	Arg *ctl.Formula
}

func (t Term) String() string {
	op := "FG"
	if t.GF {
		op = "GF"
	}
	return op + " (" + t.Arg.String() + ")"
}

// Clause is a disjunction of terms.
type Clause []Term

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// Formula is the existentially quantified conjunction of clauses:
// E ⋀ clauses.
type Formula []Clause

func (f Formula) String() string {
	parts := make([]string, len(f))
	for i, c := range f {
		parts[i] = c.String()
	}
	return "E " + strings.Join(parts, " & ")
}

// GFTerm and FGTerm are convenience constructors.
func GFTerm(arg *ctl.Formula) Term { return Term{GF: true, Arg: arg} }
func FGTerm(arg *ctl.Formula) Term { return Term{GF: false, Arg: arg} }

// Checker evaluates fragment formulas over a symbolic structure. The
// structure's own fairness constraints are folded in as additional
// single-term GF clauses, matching the Section 5 semantics.
type Checker struct {
	C *mc.Checker

	// Stats
	Splits uint64 // case splits examined
}

// New creates a fragment checker on top of a CTL checker.
func New(c *mc.Checker) *Checker { return &Checker{C: c} }

// withAmbient appends the structure's fairness constraints as GF clauses
// (expressed directly as BDD sets).
type bddTerm struct {
	gf  bool
	set bdd.Ref
}

func (sc *Checker) compile(f Formula) ([][]bddTerm, error) {
	var out [][]bddTerm
	for _, cl := range f {
		if len(cl) == 0 {
			return nil, errors.New("ctlstar: empty clause")
		}
		var bc []bddTerm
		for _, t := range cl {
			set, err := sc.C.Check(t.Arg)
			if err != nil {
				return nil, err
			}
			bc = append(bc, bddTerm{gf: t.GF, set: set})
		}
		out = append(out, bc)
	}
	for _, h := range sc.C.S.Fair {
		out = append(out, []bddTerm{{gf: true, set: h}})
	}
	return out, nil
}

// CheckEL computes the satisfaction set with the Emerson–Lei fixpoint.
// Clauses containing more than one FG term are first expanded into
// variants with a single FG term each (the fixpoint formula is only
// sound for the paper's (GF p ∨ FG q) clause shape: a path alternating
// between two FG-sets would otherwise be wrongly accepted), and the
// results are unioned — which is valid because a path satisfying the
// clause satisfies one of the variants.
func (sc *Checker) CheckEL(f Formula) (bdd.Ref, error) {
	// The procedure holds compiled term sets and fixpoint iterates as
	// plain locals and works through unregistered WithFairness views;
	// dynamic reordering is paused for its duration.
	resume := sc.C.S.M.PauseAutoReorder()
	defer resume()
	clauses, err := sc.compile(f)
	if err != nil {
		return bdd.False, err
	}
	m := sc.C.S.M
	result := bdd.False
	for _, variant := range expandFG(clauses) {
		result = m.Or(result, sc.checkELCompiled(variant))
	}
	return result, nil
}

// expandFG rewrites every clause with two or more FG terms into the set
// of variants keeping all GF terms and exactly one FG term, and returns
// the cartesian product of the variants across clauses.
func expandFG(clauses [][]bddTerm) [][][]bddTerm {
	variants := [][][]bddTerm{nil}
	for _, cl := range clauses {
		var gfs, fgs []bddTerm
		for _, t := range cl {
			if t.gf {
				gfs = append(gfs, t)
			} else {
				fgs = append(fgs, t)
			}
		}
		var options [][]bddTerm
		if len(fgs) <= 1 {
			options = [][]bddTerm{cl}
		} else {
			for _, fg := range fgs {
				opt := append(append([]bddTerm(nil), gfs...), fg)
				options = append(options, opt)
			}
		}
		var next [][][]bddTerm
		for _, v := range variants {
			for _, opt := range options {
				nv := append(append([][]bddTerm(nil), v...), opt)
				next = append(next, nv)
			}
		}
		variants = next
	}
	return variants
}

func (sc *Checker) checkELCompiled(clauses [][]bddTerm) bdd.Ref {
	m := sc.C.S.M
	// gfp Y [ ⋀_clauses ⋁_terms step(term, Y) ] where
	//   step(GF p, Y)  = EX E[Y U (p ∧ Y)]
	//   step(FG q, Y)  = (q ∧ EX Y)  ∨  EX E[Y U (p ∧ Y)] — the paper's
	// formula groups a clause (GF p ∨ FG q) as
	//   (q ∧ EX Y) ∨ EX E[Y U (p ∧ Y)].
	// For a general clause we take the disjunction over its terms.
	y := bdd.True
	for {
		next := bdd.True
		for _, cl := range clauses {
			clSet := bdd.False
			for _, t := range cl {
				var step bdd.Ref
				if t.gf {
					target := m.And(t.set, y)
					step = sc.C.EX(sc.C.EU(y, target))
				} else {
					step = m.And(t.set, sc.C.EX(y))
				}
				clSet = m.Or(clSet, step)
			}
			next = m.And(next, clSet)
		}
		next = m.And(next, y)
		if next == y {
			break
		}
		y = next
	}
	// E ⋀ ... = EF (gfp Y)
	return sc.C.EU(bdd.True, y)
}

// Split is one resolution of every clause to a single term.
type Split struct {
	Invariant bdd.Ref   // conjunction of chosen FG arguments
	FairSets  []bdd.Ref // chosen GF arguments
	FairNames []string
	Choice    []int // index of the chosen term per clause
}

// CheckSplit computes the satisfaction set by enumerating all case
// splits (exponential in the number of clauses with 2+ terms) and
// returns, along with the union, the first split satisfying a given
// state when from is non-nil.
func (sc *Checker) CheckSplit(f Formula) (bdd.Ref, error) {
	set, _, err := sc.checkSplitFind(f, nil)
	return set, err
}

func (sc *Checker) checkSplitFind(f Formula, from kripke.State) (bdd.Ref, *Split, error) {
	// See CheckEL: compiled sets and split results are unregistered.
	resume := sc.C.S.M.PauseAutoReorder()
	defer resume()
	clauses, err := sc.compile(f)
	if err != nil {
		return bdd.False, nil, err
	}
	m := sc.C.S.M
	s := sc.C.S
	result := bdd.False
	var found *Split

	choice := make([]int, len(clauses))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(clauses) {
			sc.Splits++
			split := sc.buildSplit(clauses, choice)
			set := sc.splitSet(split)
			result = m.Or(result, set)
			if found == nil && from != nil && s.Holds(set, from) {
				cp := *split
				cp.Choice = append([]int(nil), choice...)
				found = &cp
			}
			return nil
		}
		for c := range clauses[i] {
			choice[i] = c
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return bdd.False, nil, err
	}
	return result, found, nil
}

// buildSplit assembles the invariant and fairness constraints of one
// term choice.
func (sc *Checker) buildSplit(clauses [][]bddTerm, choice []int) *Split {
	m := sc.C.S.M
	split := &Split{Invariant: bdd.True}
	for i, cl := range clauses {
		t := cl[choice[i]]
		if t.gf {
			split.FairSets = append(split.FairSets, t.set)
			split.FairNames = append(split.FairNames, fmt.Sprintf("GF#%d", i))
		} else {
			split.Invariant = m.And(split.Invariant, t.set)
		}
	}
	return split
}

// splitSet computes EF EG(invariant) under fairness {chosen GF sets} —
// the satisfaction set of one split.
func (sc *Checker) splitSet(split *Split) bdd.Ref {
	view := sc.C.S.WithFairness(split.FairSets, split.FairNames)
	vc := mc.New(view)
	defer vc.Close()
	eg, rings := vc.FairEG(split.Invariant)
	rings.Release(view.M)
	// The prefix is unconstrained: plain EF (no ambient fairness — it is
	// already folded into the clauses).
	plain := mc.New(sc.C.S.WithFairness(nil, nil))
	defer plain.Close()
	return plain.EU(bdd.True, eg)
}

// Check verifies the fragment formula with the Emerson–Lei procedure and
// returns its satisfaction set. (CheckSplit is exposed separately for
// cross-checking and is used internally by Witness.)
func (sc *Checker) Check(f Formula) (bdd.Ref, error) { return sc.CheckEL(f) }

// Witness produces a lasso demonstrating E ⋀ clauses from the given
// state: a finite prefix to a state where the chosen EG holds, followed
// by a fair cycle on which every chosen GF term recurs and the chosen FG
// terms hold throughout. It case-splits exactly as the paper describes,
// preferring splits in clause-term order.
func (sc *Checker) Witness(f Formula, from kripke.State) (*core.Trace, error) {
	s := sc.C.S
	// See CheckEL: the split's sets and the view checkers below are not
	// registered with the reorder registry.
	resume := s.M.PauseAutoReorder()
	defer resume()
	_, split, err := sc.checkSplitFind(f, from)
	if err != nil {
		return nil, err
	}
	if split == nil {
		return nil, core.ErrNotSatisfied
	}

	view := s.WithFairness(split.FairSets, split.FairNames)
	vc := mc.New(view)
	defer vc.Close()
	eg, rings := vc.FairEG(split.Invariant)
	defer rings.Release(view.M)

	// Finite prefix: EU(true, eg) with no fairness on the prefix.
	plain := mc.New(s.WithFairness(nil, nil))
	defer plain.Close()
	pgen := core.NewGenerator(plain)
	prefix, err := pgen.WitnessEU(bdd.True, eg, from, false)
	if err != nil {
		return nil, fmt.Errorf("ctlstar: prefix: %w", err)
	}

	// Lasso: fair EG witness from the prefix endpoint.
	vgen := core.NewGenerator(vc)
	lasso, err := vgen.WitnessEG(split.Invariant, prefix.Last())
	if err != nil {
		return nil, fmt.Errorf("ctlstar: lasso: %w", err)
	}

	base := len(prefix.States) - 1
	tr := &core.Trace{S: s, CycleStart: base + lasso.CycleStart, FairHits: map[int]int{}}
	tr.States = append(tr.States, prefix.States...)
	tr.States = append(tr.States, lasso.States[1:]...)
	for h, idx := range lasso.FairHits {
		tr.FairHits[h] = base + idx
	}
	return tr, nil
}

// ValidateWitness checks a fragment witness: the lasso must close, the
// cycle must satisfy every GF argument at least once per chosen... since
// the choice is internal, validation checks the formula semantics
// directly: for each clause, the cycle either contains a state of some
// GF term's set, or consists entirely of states of some FG term's set.
// Ambient fairness constraints must also recur on the cycle.
func (sc *Checker) ValidateWitness(f Formula, tr *core.Trace) error {
	s := sc.C.S
	if err := core.ValidatePath(s, tr); err != nil {
		return err
	}
	if !tr.IsLasso() {
		return errors.New("ctlstar: witness must be a lasso")
	}
	clauses, err := sc.compile(f)
	if err != nil {
		return err
	}
	for ci, cl := range clauses {
		ok := false
		for _, t := range cl {
			if t.gf {
				for i := tr.CycleStart; i < len(tr.States); i++ {
					if s.Holds(t.set, tr.States[i]) {
						ok = true
						break
					}
				}
			} else {
				all := true
				for i := tr.CycleStart; i < len(tr.States); i++ {
					if !s.Holds(t.set, tr.States[i]) {
						all = false
						break
					}
				}
				ok = all
			}
			if ok {
				break
			}
		}
		if !ok {
			return fmt.Errorf("ctlstar: clause %d not satisfied on the cycle", ci)
		}
	}
	return nil
}
