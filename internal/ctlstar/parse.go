package ctlstar

import (
	"fmt"
	"strings"

	"repro/internal/ctl"
)

// Parse reads the concrete fragment syntax
//
//	E (GF p | FG q) & (GF (r & s)) & ...
//
// Each clause is parenthesized; terms are separated by '|'; a term is
// 'GF' or 'FG' followed by a CTL state formula (parenthesize compound
// arguments). The leading 'E' is optional.
func Parse(src string) (Formula, error) {
	s := strings.TrimSpace(src)
	if strings.HasPrefix(s, "E ") || strings.HasPrefix(s, "E(") {
		s = strings.TrimSpace(s[1:])
	}
	clauseSrcs, err := splitTop(s, '&')
	if err != nil {
		return nil, err
	}
	var f Formula
	for _, cs := range clauseSrcs {
		cs = strings.TrimSpace(cs)
		cs = stripOuterParens(cs)
		termSrcs, err := splitTop(cs, '|')
		if err != nil {
			return nil, err
		}
		var cl Clause
		for _, ts := range termSrcs {
			ts = strings.TrimSpace(ts)
			var gf bool
			switch {
			case strings.HasPrefix(ts, "GF"):
				gf = true
			case strings.HasPrefix(ts, "FG"):
				gf = false
			default:
				return nil, fmt.Errorf("ctlstar: term %q must start with GF or FG", ts)
			}
			arg, err := ctl.Parse(strings.TrimSpace(ts[2:]))
			if err != nil {
				return nil, fmt.Errorf("ctlstar: term %q: %w", ts, err)
			}
			cl = append(cl, Term{GF: gf, Arg: arg})
		}
		if len(cl) == 0 {
			return nil, fmt.Errorf("ctlstar: empty clause in %q", src)
		}
		f = append(f, cl)
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("ctlstar: empty formula")
	}
	return f, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// splitTop splits src on sep occurring at parenthesis depth 0.
func splitTop(src string, sep byte) ([]string, error) {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("ctlstar: unbalanced parentheses in %q", src)
			}
		default:
			if depth == 0 && src[i] == sep {
				out = append(out, src[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("ctlstar: unbalanced parentheses in %q", src)
	}
	out = append(out, src[start:])
	return out, nil
}

// stripOuterParens removes one pair of enclosing parentheses if they
// wrap the entire string.
func stripOuterParens(s string) string {
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return s
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 && i != len(s)-1 {
				return s
			}
		}
	}
	return strings.TrimSpace(s[1 : len(s)-1])
}
