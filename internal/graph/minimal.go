// Package graph provides the exact (exponential-time) algorithms that
// Theorem 1 of the paper is about: computing a minimal finite witness —
// the shortest prefix+cycle path whose cycle satisfies every fairness
// constraint — and the Hamiltonian-cycle reduction that proves the
// problem NP-complete. The experiment harness compares these exact
// minima against the lengths produced by the Section 6 heuristic.
package graph

import (
	"repro/internal/kripke"
)

// Witness is a finite witness: a prefix of states followed by a cycle
// (the cycle's last state has an edge back to its first). Length is
// len(Prefix) + len(Cycle), matching the paper's definition.
type Witness struct {
	Prefix []int
	Cycle  []int
}

// Length returns the total witness length.
func (w Witness) Length() int { return len(w.Prefix) + len(w.Cycle) }

// MinimalFiniteWitness finds a minimal-length finite witness for
// "EG true" under the fairness constraints of e, starting at start:
// the shortest path start = s_0, ..., s_{j-1}, [s_j, ..., s_k] with an
// edge s_k -> s_j such that every fairness set intersects
// {s_j, ..., s_k}. It searches by iterative deepening over the total
// length, so the first witness found is minimal; maxLen bounds the
// search (use ~N * (#constraints+1) per the paper's bound). Returns
// ok=false if no witness within maxLen exists.
func MinimalFiniteWitness(e *kripke.Explicit, start, maxLen int) (Witness, bool) {
	nfair := len(e.Fair)
	// Per the paper's NP-membership argument, the cycle of a minimal
	// witness decomposes into at most nfair simple cycles and the prefix
	// is simple, so no state occurs more than nfair+1 times on a minimal
	// witness. This bounds the walk enumeration.
	maxVisits := nfair + 1
	if maxVisits < 2 {
		maxVisits = 2
	}
	counts := make([]int, e.N)
	for total := 1; total <= maxLen; total++ {
		path := make([]int, 0, total)
		path = append(path, start)
		counts[start] = 1
		w, ok := extend(e, path, counts, total, maxVisits)
		counts[start] = 0
		if ok {
			return w, true
		}
	}
	return Witness{}, false
}

// extend tries to complete the walk to a witness of exactly total
// states. Unlike a simple-path search, states may repeat (up to
// maxVisits times) because a minimal cycle may traverse several simple
// cycles sharing states.
func extend(e *kripke.Explicit, path []int, counts []int, total, maxVisits int) (Witness, bool) {
	k := len(path) - 1
	if len(path) == total {
		last := path[k]
		for _, back := range e.Succ[last] {
			for j := 0; j <= k; j++ {
				if path[j] != back {
					continue
				}
				if cycleCoversFairness(e, path[j:]) {
					return Witness{
						Prefix: append([]int(nil), path[:j]...),
						Cycle:  append([]int(nil), path[j:]...),
					}, true
				}
			}
		}
		return Witness{}, false
	}
	for _, next := range e.Succ[path[k]] {
		if counts[next] >= maxVisits {
			continue
		}
		counts[next]++
		path = append(path, next)
		w, ok := extend(e, path, counts, total, maxVisits)
		path = path[:len(path)-1]
		counts[next]--
		if ok {
			return w, true
		}
	}
	return Witness{}, false
}

// cycleCoversFairness reports whether the cycle states hit every
// fairness constraint of e.
func cycleCoversFairness(e *kripke.Explicit, cycle []int) bool {
	for _, fs := range e.Fair {
		hit := false
		for _, s := range cycle {
			if fs[s] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// ValidateWitness checks a finite witness against the structure: edges
// along prefix+cycle, the closing edge, and fairness coverage on the
// cycle.
func ValidateWitness(e *kripke.Explicit, start int, w Witness) bool {
	if len(w.Cycle) == 0 {
		return false
	}
	all := append(append([]int(nil), w.Prefix...), w.Cycle...)
	if all[0] != start {
		return false
	}
	for i := 1; i < len(all); i++ {
		if !hasEdge(e, all[i-1], all[i]) {
			return false
		}
	}
	if !hasEdge(e, w.Cycle[len(w.Cycle)-1], w.Cycle[0]) {
		return false
	}
	return cycleCoversFairness(e, w.Cycle)
}

func hasEdge(e *kripke.Explicit, u, v int) bool {
	for _, w := range e.Succ[u] {
		if w == v {
			return true
		}
	}
	return false
}
