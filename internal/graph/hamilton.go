package graph

import (
	"fmt"

	"repro/internal/kripke"
)

// Theorem 1's reduction: Hamiltonian cycle ≤p minimal finite witness.

// HamiltonianCycle searches for a Hamiltonian cycle in the directed
// graph by backtracking. Returns the cycle as a state sequence (without
// repeating the start at the end) and whether one exists.
func HamiltonianCycle(succ [][]int) ([]int, bool) {
	n := len(succ)
	if n == 0 {
		return nil, false
	}
	visited := make([]bool, n)
	path := make([]int, 0, n)
	path = append(path, 0)
	visited[0] = true
	var rec func() bool
	rec = func() bool {
		if len(path) == n {
			// must close back to 0
			for _, w := range succ[path[n-1]] {
				if w == 0 {
					return true
				}
			}
			return false
		}
		for _, w := range succ[path[len(path)-1]] {
			if visited[w] {
				continue
			}
			visited[w] = true
			path = append(path, w)
			if rec() {
				return true
			}
			path = path[:len(path)-1]
			visited[w] = false
		}
		return false
	}
	if rec() {
		return append([]int(nil), path...), true
	}
	return nil, false
}

// ReduceHamiltonian builds the instance of the minimal-finite-witness
// problem from the proof of Theorem 1: the graph becomes a
// state-transition structure and every state gets its own fairness
// constraint, so any witness cycle must visit all states.
func ReduceHamiltonian(succ [][]int) *kripke.Explicit {
	n := len(succ)
	e := kripke.NewExplicit(n)
	for u := range succ {
		for _, v := range succ[u] {
			e.AddEdge(u, v)
		}
	}
	e.AddInit(0)
	for s := 0; s < n; s++ {
		set := make([]bool, n)
		set[s] = true
		e.AddFairSet(fmt.Sprintf("state%d", s), set)
	}
	return e
}

// HamiltonianViaWitness decides Hamiltonicity by the Theorem 1
// reduction: the graph has a Hamiltonian cycle iff the reduced structure
// has a finite witness of length exactly n from state 0.
func HamiltonianViaWitness(succ [][]int) bool {
	n := len(succ)
	if n == 0 {
		return false
	}
	e := ReduceHamiltonian(succ)
	w, ok := MinimalFiniteWitness(e, 0, n)
	return ok && w.Length() == n && len(w.Prefix) == 0
}
