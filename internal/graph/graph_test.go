package graph

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/kripke"
	"repro/internal/mc"
)

func ring(n int) [][]int {
	succ := make([][]int, n)
	for i := range succ {
		succ[i] = []int{(i + 1) % n}
	}
	return succ
}

func TestMinimalWitnessSimpleRing(t *testing.T) {
	// 3-ring with fairness at state 2: minimal witness from 0 is the
	// whole ring (prefix empty, cycle 0-1-2).
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, false, true})
	w, ok := MinimalFiniteWitness(e, 0, 10)
	if !ok {
		t.Fatal("witness must exist")
	}
	if w.Length() != 3 || len(w.Prefix) != 0 {
		t.Fatalf("minimal witness wrong: %+v", w)
	}
	if !ValidateWitness(e, 0, w) {
		t.Fatal("witness fails validation")
	}
}

func TestMinimalWitnessPrefix(t *testing.T) {
	// 0 -> 1, 1 <-> 2 with fairness at 2: prefix [0], cycle [1,2] (or
	// [2,1]); minimal length 3.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 1)
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, false, true})
	w, ok := MinimalFiniteWitness(e, 0, 10)
	if !ok || w.Length() != 3 || len(w.Prefix) != 1 {
		t.Fatalf("got %+v ok=%v", w, ok)
	}
	if !ValidateWitness(e, 0, w) {
		t.Fatal("validation failed")
	}
}

func TestMinimalWitnessFlower(t *testing.T) {
	// Flower: center 0 with petals 0->1->0 (h1 at 1) and 0->2->0 (h2 at
	// 2). The minimal cycle must revisit the center: 0,1,0,2 (length 4).
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(0, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false})
	e.AddFairSet("h2", []bool{false, false, true})
	w, ok := MinimalFiniteWitness(e, 0, 12)
	if !ok {
		t.Fatal("witness must exist")
	}
	if w.Length() != 4 {
		t.Fatalf("flower minimal length = %d, want 4 (%+v)", w.Length(), w)
	}
	if !ValidateWitness(e, 0, w) {
		t.Fatal("validation failed")
	}
}

func TestMinimalWitnessNone(t *testing.T) {
	// DAG into a sink whose loop misses the constraint.
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.AddInit(0)
	e.AddFairSet("h", []bool{true, false})
	if _, ok := MinimalFiniteWitness(e, 0, 8); ok {
		t.Fatal("no witness should exist")
	}
}

func TestHamiltonianCycleBasics(t *testing.T) {
	// ring of 4 has a Hamiltonian cycle
	if _, ok := HamiltonianCycle(ring(4)); !ok {
		t.Fatal("ring must be Hamiltonian")
	}
	// star (0->1,1->0,0->2,2->0) does not
	star := [][]int{{1, 2}, {0}, {0}}
	if _, ok := HamiltonianCycle(star); ok {
		t.Fatal("star is not Hamiltonian")
	}
}

func TestReductionAgreesWithDirectSearch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(3) // 3..5 states
		succ := make([][]int, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && r.Intn(3) == 0 {
					succ[u] = append(succ[u], v)
				}
			}
			if len(succ[u]) == 0 {
				succ[u] = append(succ[u], (u+1)%n)
			}
		}
		_, direct := HamiltonianCycle(succ)
		viaWitness := HamiltonianViaWitness(succ)
		if direct != viaWitness {
			t.Fatalf("trial %d: direct=%v viaWitness=%v (succ=%v)", trial, direct, viaWitness, succ)
		}
	}
}

// TestHeuristicNeverBeatsMinimal cross-checks Theorem 1's premise: the
// Section 6 heuristic produces valid witnesses that are never shorter
// than the brute-force minimum (and usually not much longer).
func TestHeuristicNeverBeatsMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		e := kripke.RandomExplicit(r, 5+r.Intn(2), 2, nil, 1+r.Intn(2), 0.3)
		s := kripke.FromExplicit(e)
		g := core.NewGenerator(mc.New(s))
		fairSet := g.C.Fair()
		start := kripke.IndexState(e.Init[0], len(s.Vars))
		if !s.Holds(fairSet, start) {
			continue // no fair path from the initial state
		}
		tr, err := g.WitnessEG(bdd.True, start)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.ValidateEG(s, tr, bdd.True); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		maxLen := e.N * (len(e.Fair) + 1)
		w, ok := MinimalFiniteWitness(e, e.Init[0], maxLen)
		if !ok {
			t.Fatalf("trial %d: heuristic found a witness but brute force did not", trial)
		}
		if tr.Len() < w.Length() {
			t.Fatalf("trial %d: heuristic length %d < minimal %d — impossible",
				trial, tr.Len(), w.Length())
		}
	}
}
