package smv

import (
	"fmt"
	"strings"
)

// Hierarchical modules. Real SMV models are structured as parameterized
// modules instantiated from MODULE main:
//
//	MODULE counter(tick)
//	VAR n : 0..3;
//	ASSIGN next(n) := case tick : (n + 1) mod 4; TRUE : n; esac;
//	DEFINE wrap := n = 3 & tick;
//
//	MODULE main
//	VAR t : boolean; c0 : counter(t); c1 : counter(c0.wrap);
//	SPEC AG (c1.n = 3 -> ...)
//
// Flatten instantiates the hierarchy into a single flat module by
// prefixing instance-local names with the instance path ("c0.n") and
// substituting actual parameter expressions (evaluated in the caller's
// scope) for formal parameters. The flat module then compiles through
// the ordinary single-module pipeline; dotted identifiers are ordinary
// identifiers to the lexer and the CTL parser.

// Program is a set of parsed modules indexed by name.
type Program map[string]*Module

// ParseProgram parses source containing one or more MODULE definitions.
func ParseProgram(src string) (Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := Program{}
	for !p.at(tEOF) {
		m, err := p.oneModule()
		if err != nil {
			return nil, err
		}
		if prog[m.Name] != nil {
			return nil, &Error{Msg: fmt.Sprintf("module %q defined twice", m.Name)}
		}
		prog[m.Name] = m
	}
	if prog["main"] == nil {
		return nil, &Error{Msg: "no MODULE main"}
	}
	return prog, nil
}

// CompileProgram parses, flattens and compiles a multi-module source.
func CompileProgram(src string) (*Compiled, error) {
	return CompileProgramWith(src, CompileOptions{})
}

// CompileProgramWith is CompileProgram with explicit engine options.
func CompileProgramWith(src string, opts CompileOptions) (*Compiled, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	flat, err := prog.Flatten()
	if err != nil {
		return nil, err
	}
	return CompileWith(flat, opts)
}

// schedulerVar is the fresh variable Flatten introduces when the model
// declares `process` instances: it ranges over {main, <process paths>}
// and selects which process's next-assignments fire this step
// (asynchronous interleaving semantics). Inside a process body the
// identifier `running` denotes "the scheduler picked this process".
const schedulerVar = "_running"

// Flatten instantiates the hierarchy rooted at main into a single flat
// module.
func (prog Program) Flatten() (*Module, error) {
	flat := &Module{Name: "main"}
	fl := &flattener{prog: prog}
	err := fl.instantiate(prog["main"], "", nil, "", flat, map[string]bool{"main": true})
	if err != nil {
		return nil, err
	}
	// Specs live only on main and are copied verbatim (their atoms are
	// already fully-qualified dotted names).
	flat.Specs = prog["main"].Specs
	flat.LTLSpecs = prog["main"].LTLSpecs

	// Merge process-conditioned next-assignments per target variable:
	//   next(v) := case _running = p1 : rhs1; _running = p2 : rhs2;
	//              TRUE : v; esac;
	merged := map[string]*CaseExpr{}
	var order []string
	for _, pa := range fl.procAssigns {
		ce, ok := merged[pa.target]
		if !ok {
			ce = &CaseExpr{}
			merged[pa.target] = ce
			order = append(order, pa.target)
		}
		guard := &Binary{Op: tEq, L: &Ident{Name: schedulerVar}, R: &Ident{Name: pa.proc}}
		ce.Conds = append(ce.Conds, guard)
		ce.Vals = append(ce.Vals, pa.rhs)
	}
	for _, target := range order {
		ce := merged[target]
		ce.Conds = append(ce.Conds, &BoolLit{Val: true})
		ce.Vals = append(ce.Vals, &Ident{Name: target})
		flat.Assigns = append(flat.Assigns, &Assign{Kind: AssignNext, Var: target, RHS: ce})
	}

	if len(fl.processes) > 0 {
		for _, v := range flat.Vars {
			if v.Name == schedulerVar {
				return nil, &Error{Msg: fmt.Sprintf("variable name %q is reserved for the process scheduler", schedulerVar)}
			}
		}
		flat.Vars = append(flat.Vars, &VarDecl{
			Name: schedulerVar,
			Type: &Type{Kind: TypeEnum, Enum: append([]string{"main"}, fl.processes...)},
		})
		flat.Processes = fl.processes
	}
	if len(flat.Vars) == 0 {
		return nil, &Error{Msg: "model declares no state variables"}
	}
	return flat, nil
}

// flattener carries cross-instance flattening state.
type flattener struct {
	prog      Program
	processes []string // process instance paths, in declaration order

	// procAssigns collects next-assignments made inside processes; they
	// are merged per target variable after instantiation (several
	// processes may drive the same shared variable, e.g. a semaphore
	// passed by parameter — the scheduler makes the guards disjoint).
	procAssigns []procAssign
}

type procAssign struct {
	target string // fully-qualified variable name
	proc   string // process path guarding the assignment
	rhs    Expr   // already rewritten into the flat namespace
	line   int
}

// scope describes one instantiation frame.
type scope struct {
	mod    *Module
	prefix string          // "" for main, "c0." for instance c0, nested "c0.sub."
	bind   map[string]Expr // formal parameter -> caller-scope expression
	locals map[string]bool // local var/define/instance names
	proc   string          // enclosing process path ("" = synchronous/main)
}

func (fl *flattener) instantiate(mod *Module, prefix string, bind map[string]Expr, proc string, flat *Module, inProgress map[string]bool) error {
	prog := fl.prog
	sc := &scope{mod: mod, prefix: prefix, bind: bind, locals: map[string]bool{}, proc: proc}
	for _, v := range mod.Vars {
		sc.locals[v.Name] = true
	}
	for _, d := range mod.Defines {
		sc.locals[d.Name] = true
	}

	// Declarations and sub-instances.
	for _, v := range mod.Vars {
		if v.Type.Kind != TypeInstance {
			flat.Vars = append(flat.Vars, &VarDecl{
				Name: prefix + v.Name,
				Type: v.Type,
				line: v.line,
			})
			continue
		}
		sub := prog[v.Type.Module]
		if sub == nil {
			return &Error{Line: v.line, Msg: fmt.Sprintf("unknown module %q", v.Type.Module)}
		}
		if inProgress[v.Type.Module] {
			return &Error{Line: v.line, Msg: fmt.Sprintf("recursive instantiation of module %q", v.Type.Module)}
		}
		if len(v.Type.Args) != len(sub.Params) {
			return &Error{Line: v.line, Msg: fmt.Sprintf(
				"module %q takes %d parameter(s), got %d", v.Type.Module, len(sub.Params), len(v.Type.Args))}
		}
		subBind := map[string]Expr{}
		for i, formal := range sub.Params {
			arg, err := sc.rewrite(v.Type.Args[i])
			if err != nil {
				return err
			}
			subBind[formal] = arg
		}
		subProc := proc
		if v.Type.IsProcess {
			if proc != "" {
				return &Error{Line: v.line, Msg: "nested process instances are not supported"}
			}
			subProc = prefix + v.Name
			fl.processes = append(fl.processes, subProc)
		}
		inProgress[v.Type.Module] = true
		if err := fl.instantiate(sub, prefix+v.Name+".", subBind, subProc, flat, inProgress); err != nil {
			return err
		}
		delete(inProgress, v.Type.Module)
	}

	for _, a := range mod.Assigns {
		// Resolve the target: a local variable, or a formal parameter
		// bound to a (qualified) variable name — the SMV idiom for
		// processes driving a shared caller variable.
		target := prefix + a.Var
		if !sc.locals[a.Var] {
			bound, ok := bind[a.Var]
			if !ok {
				return &Error{Line: a.line, Msg: fmt.Sprintf("assignment to non-local %q", a.Var)}
			}
			id, okID := bound.(*Ident)
			if !okID {
				return &Error{Line: a.line,
					Msg: fmt.Sprintf("assignment to parameter %q, which is bound to a non-variable expression", a.Var)}
			}
			target = id.Name
		}
		rhs, err := sc.rewrite(a.RHS)
		if err != nil {
			return err
		}
		if a.Kind == AssignNext && proc != "" {
			// interleaving: the assignment fires only when the scheduler
			// picks this process; merged with other processes' drives of
			// the same variable after instantiation.
			fl.procAssigns = append(fl.procAssigns, procAssign{
				target: target, proc: proc, rhs: rhs, line: a.line,
			})
			continue
		}
		flat.Assigns = append(flat.Assigns, &Assign{
			Kind: a.Kind, Var: target, RHS: rhs, line: a.line,
		})
	}
	for _, d := range mod.Defines {
		body, err := sc.rewrite(d.Body)
		if err != nil {
			return err
		}
		flat.Defines = append(flat.Defines, &Define{Name: prefix + d.Name, Body: body, line: d.line})
	}
	copySection := func(src []Expr, dst *[]Expr) error {
		for _, e := range src {
			r, err := sc.rewrite(e)
			if err != nil {
				return err
			}
			*dst = append(*dst, r)
		}
		return nil
	}
	if err := copySection(mod.Inits, &flat.Inits); err != nil {
		return err
	}
	if err := copySection(mod.Trans, &flat.Trans); err != nil {
		return err
	}
	if err := copySection(mod.Invars, &flat.Invars); err != nil {
		return err
	}
	if err := copySection(mod.Fairness, &flat.Fairness); err != nil {
		return err
	}
	if prefix != "" && len(mod.Specs) > 0 {
		return &Error{Msg: fmt.Sprintf("module %q: SPEC is only allowed in main", mod.Name)}
	}
	if prefix != "" && len(mod.LTLSpecs) > 0 {
		return &Error{Msg: fmt.Sprintf("module %q: LTLSPEC is only allowed in main", mod.Name)}
	}
	return nil
}

// rewrite clones an expression, substituting formal parameters and
// prefixing local names.
func (sc *scope) rewrite(e Expr) (Expr, error) {
	switch x := e.(type) {
	case *Num, *BoolLit:
		return e, nil
	case *Ident:
		return sc.rewriteName(x.Name, x.tok, false)
	case *NextRef:
		r, err := sc.rewriteName(x.Name, x.tok, true)
		if err != nil {
			return nil, err
		}
		switch rr := r.(type) {
		case *NextRef:
			return rr, nil
		case *Ident:
			return &NextRef{Name: rr.Name, tok: x.tok}, nil
		default:
			return nil, errAt(x.tok, "next() of a parameter bound to a non-variable expression")
		}
	case *Unary:
		inner, err := sc.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: inner, tok: x.tok}, nil
	case *Binary:
		l, err := sc.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		r, err := sc.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r, tok: x.tok}, nil
	case *SetLit:
		out := &SetLit{tok: x.tok}
		for _, el := range x.Elems {
			r, err := sc.rewrite(el)
			if err != nil {
				return nil, err
			}
			out.Elems = append(out.Elems, r)
		}
		return out, nil
	case *CaseExpr:
		out := &CaseExpr{tok: x.tok}
		for i := range x.Conds {
			c, err := sc.rewrite(x.Conds[i])
			if err != nil {
				return nil, err
			}
			v, err := sc.rewrite(x.Vals[i])
			if err != nil {
				return nil, err
			}
			out.Conds = append(out.Conds, c)
			out.Vals = append(out.Vals, v)
		}
		return out, nil
	default:
		return nil, &Error{Msg: fmt.Sprintf("flatten: unhandled expression %T", e)}
	}
}

// runningExpr builds the "_running = <this process>" test.
func (sc *scope) runningExpr() Expr {
	return &Binary{Op: tEq, L: &Ident{Name: schedulerVar}, R: &Ident{Name: sc.proc}}
}

// rewriteName resolves a (possibly dotted) identifier in this scope.
func (sc *scope) rewriteName(name string, tok token, next bool) (Expr, error) {
	if name == "running" && sc.proc != "" {
		if next {
			return nil, errAt(tok, "next(running) is not supported")
		}
		return sc.runningExpr(), nil
	}
	head := name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		head = name[:i]
	}
	if sub, ok := sc.bind[head]; ok {
		if head != name {
			// parameter used as an instance handle: param.x — only legal
			// when the argument was a plain (possibly dotted) name.
			id, okID := sub.(*Ident)
			if !okID {
				return nil, errAt(tok, "cannot select %q from non-name parameter %q", name[len(head)+1:], head)
			}
			full := id.Name + name[len(head):]
			if next {
				return &NextRef{Name: full, tok: tok}, nil
			}
			return &Ident{Name: full, tok: tok}, nil
		}
		if next {
			id, okID := sub.(*Ident)
			if !okID {
				return nil, errAt(tok, "next(%s): parameter is bound to a non-variable expression", name)
			}
			return &NextRef{Name: id.Name, tok: tok}, nil
		}
		return sub, nil
	}
	if sc.locals[head] {
		if next {
			return &NextRef{Name: sc.prefix + name, tok: tok}, nil
		}
		return &Ident{Name: sc.prefix + name, tok: tok}, nil
	}
	// unknown head: enum literal or (in main) a global name — leave it.
	if next {
		return &NextRef{Name: name, tok: tok}, nil
	}
	return &Ident{Name: name, tok: tok}, nil
}
