package smv

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// SpecResult is the outcome of checking one SPEC.
type SpecResult struct {
	Spec  *Spec
	Holds bool
	Trace *core.Trace // counterexample when !Holds (nil if unavailable)
	Err   error
}

// CheckAll model-checks every SPEC of the module, producing
// counterexamples for failing ones. It also reports basic model
// statistics through the returned checker.
func (c *Compiled) CheckAll() ([]SpecResult, *mc.Checker) {
	checker := mc.New(c.S)
	gen := core.NewGenerator(checker)
	var out []SpecResult
	for _, sp := range c.Module.Specs {
		res := SpecResult{Spec: sp}
		if err := c.ResolveSpecAtoms(sp.Formula); err != nil {
			res.Err = err
			out = append(out, res)
			continue
		}
		holds, tr, err := gen.CounterexampleInit(sp.Formula)
		res.Holds = holds
		res.Trace = tr
		res.Err = err
		out = append(out, res)
	}
	return out, checker
}

// CheckSpec checks a single CTL formula against the compiled model.
func (c *Compiled) CheckSpec(f *ctl.Formula) (bool, *core.Trace, error) {
	if err := c.ResolveSpecAtoms(f); err != nil {
		return false, nil, err
	}
	gen := core.NewGenerator(mc.New(c.S))
	return gen.CounterexampleInit(f)
}

// Simulate performs a random walk of n steps from a random initial
// state, using the given source of randomness, and returns it as a
// trace (CycleStart < 0). It is the non-interactive analogue of SMV's
// simulation mode and is handy for eyeballing a model before checking.
func (c *Compiled) Simulate(rng *rand.Rand, n int) (*core.Trace, error) {
	s := c.S
	states := s.EnumStates(s.Init, 256)
	if len(states) == 0 {
		return nil, fmt.Errorf("smv: model has no initial states")
	}
	cur := states[rng.Intn(len(states))]
	tr := &core.Trace{S: s, CycleStart: -1, FairHits: map[int]int{}}
	tr.States = append(tr.States, cur)
	for i := 0; i < n; i++ {
		succ := s.Successors(cur, 256)
		if len(succ) == 0 {
			return tr, fmt.Errorf("smv: deadlock after %d steps", i)
		}
		cur = succ[rng.Intn(len(succ))]
		tr.States = append(tr.States, cur)
	}
	return tr, nil
}

// DeltaTraceString renders a trace showing, after the first state, only
// the declared variables whose value changed — the compact SMV style.
func (c *Compiled) DeltaTraceString(tr *core.Trace) string {
	if tr == nil {
		return ""
	}
	out := ""
	var prev kripke.State
	for i, st := range tr.States {
		if tr.CycleStart == i {
			out += "-- loop starts here --\n"
		}
		out += fmt.Sprintf("state %d:", i)
		for _, name := range c.Order {
			v := c.StateValue(st, name)
			if prev == nil || c.StateValue(prev, name) != v {
				out += " " + name + "=" + v.String()
			}
		}
		if i < len(tr.Notes) && tr.Notes[i] != "" {
			out += "   (" + tr.Notes[i] + ")"
		}
		out += "\n"
		prev = st
	}
	if tr.IsLasso() {
		out += fmt.Sprintf("-- back to state %d --\n", tr.CycleStart)
	}
	return out
}

// TraceString renders a trace with declared-variable values (rather than
// raw encoding bits).
func (c *Compiled) TraceString(tr *core.Trace) string {
	if tr == nil {
		return ""
	}
	out := ""
	for i, st := range tr.States {
		if tr.CycleStart == i {
			out += "-- loop starts here --\n"
		}
		out += fmt.Sprintf("state %d: %s", i, c.FormatStateByVars(st))
		if i < len(tr.Notes) && tr.Notes[i] != "" {
			out += "   (" + tr.Notes[i] + ")"
		}
		out += "\n"
	}
	if tr.IsLasso() {
		out += fmt.Sprintf("-- back to state %d --\n", tr.CycleStart)
	}
	return out
}
