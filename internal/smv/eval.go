package smv

import (
	"fmt"
	"strconv"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
)

// Expression evaluation: every expression becomes either a boolean state
// set (a single BDD) or a finite partition of the state space by value.

// eval evaluates an expression. allowNext permits next(v) references
// (TRANS sections and next-assignments RHS).
func (c *Compiled) eval(e Expr, allowNext bool) (*result, error) {
	m := c.S.M
	switch x := e.(type) {
	case *BoolLit:
		if x.Val {
			return &result{isBool: true, b: bdd.True}, nil
		}
		return &result{isBool: true, b: bdd.False}, nil
	case *Num:
		return &result{cases: []valCase{{v: Value{Kind: VInt, I: x.Val}, cond: bdd.True}}}, nil
	case *Ident:
		return c.evalIdent(x, allowNext)
	case *NextRef:
		if !allowNext {
			return nil, errAt(x.tok, "next(%s) is only allowed in TRANS and next-assignments", x.Name)
		}
		info := c.Vars[x.Name]
		if info == nil {
			return nil, errAt(x.tok, "next() of undeclared variable %q", x.Name)
		}
		if info.Decl.Type.Kind == TypeBool {
			return &result{isBool: true, b: c.encodeValue(info, 1, true)}, nil
		}
		return &result{cases: c.varCases(info, true)}, nil
	case *Unary:
		inner, err := c.eval(x.X, allowNext)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case tNot:
			b, err := asBool(m, inner, x.tok)
			if err != nil {
				return nil, err
			}
			return &result{isBool: true, b: m.Not(b)}, nil
		case tMinus:
			out := &result{}
			for _, vc := range inner.cases {
				if vc.v.Kind != VInt {
					return nil, errAt(x.tok, "unary minus needs an integer operand")
				}
				out.cases = mergeCase(m, out.cases, Value{Kind: VInt, I: -vc.v.I}, vc.cond)
			}
			if inner.isBool {
				return nil, errAt(x.tok, "unary minus needs an integer operand")
			}
			return out, nil
		}
		return nil, errAt(x.tok, "unknown unary operator")
	case *Binary:
		return c.evalBinary(x, allowNext)
	case *SetLit:
		out := &result{isSet: true}
		sawBool := false
		for _, el := range x.Elems {
			r, err := c.eval(el, allowNext)
			if err != nil {
				return nil, err
			}
			for _, vc := range toCases(m, r) {
				out.cases = append(out.cases, vc) // overlapping allowed
				if vc.v.Kind == VBool {
					sawBool = true
				}
			}
		}
		_ = sawBool
		return out, nil
	case *CaseExpr:
		return c.evalCase(x, allowNext)
	}
	return nil, &Error{Msg: fmt.Sprintf("unhandled expression %T", e)}
}

// evalBool evaluates an expression that must be boolean.
func (c *Compiled) evalBool(e Expr, allowNext bool) (bdd.Ref, error) {
	r, err := c.eval(e, allowNext)
	if err != nil {
		return bdd.False, err
	}
	return asBool(c.S.M, r, token{})
}

func (c *Compiled) evalIdent(x *Ident, allowNext bool) (*result, error) {
	if info := c.Vars[x.Name]; info != nil {
		if info.Decl.Type.Kind == TypeBool {
			return &result{isBool: true, b: c.encodeValue(info, 1, false)}, nil
		}
		return &result{cases: c.varCases(info, false)}, nil
	}
	if d := c.defines[x.Name]; d != nil {
		if r := c.defMemo[x.Name]; r != nil {
			return r, nil
		}
		if c.defBusy[x.Name] {
			return nil, errAt(x.tok, "cyclic DEFINE %q", x.Name)
		}
		c.defBusy[x.Name] = true
		r, err := c.eval(d.Body, false)
		c.defBusy[x.Name] = false
		if err != nil {
			return nil, err
		}
		c.defMemo[x.Name] = r
		return r, nil
	}
	// Bare identifier: an enum literal (symbolic constant).
	return &result{cases: []valCase{{v: Value{Kind: VSym, S: x.Name}, cond: bdd.True}}}, nil
}

func (c *Compiled) evalBinary(x *Binary, allowNext bool) (*result, error) {
	m := c.S.M
	l, err := c.eval(x.L, allowNext)
	if err != nil {
		return nil, err
	}
	r, err := c.eval(x.R, allowNext)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case tAnd, tOr, tImp, tIff:
		lb, err := asBool(m, l, x.tok)
		if err != nil {
			return nil, err
		}
		rb, err := asBool(m, r, x.tok)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case tAnd:
			return &result{isBool: true, b: m.And(lb, rb)}, nil
		case tOr:
			return &result{isBool: true, b: m.Or(lb, rb)}, nil
		case tImp:
			return &result{isBool: true, b: m.Imp(lb, rb)}, nil
		default:
			return &result{isBool: true, b: m.Eq(lb, rb)}, nil
		}
	case tEq, tNeq, tLt, tLe, tGt, tGe:
		return c.evalCompare(x, l, r)
	case tPlus, tMinus, tStar, tSlash, tMod:
		return c.evalArith(x, l, r)
	case tIn:
		return c.evalIn(x, l, r)
	case tUnion:
		out := &result{isSet: true}
		out.cases = append(out.cases, toCases(m, l)...)
		out.cases = append(out.cases, toCases(m, r)...)
		return out, nil
	}
	return nil, errAt(x.tok, "unknown binary operator")
}

func (c *Compiled) evalCompare(x *Binary, l, r *result) (*result, error) {
	m := c.S.M
	if l.isSet || r.isSet {
		return nil, errAt(x.tok, "set expressions cannot be compared")
	}
	// boolean = boolean is equivalence; allow through case pairs too.
	if l.isBool && r.isBool {
		switch x.Op {
		case tEq:
			return &result{isBool: true, b: m.Eq(l.b, r.b)}, nil
		case tNeq:
			return &result{isBool: true, b: m.Xor(l.b, r.b)}, nil
		default:
			return nil, errAt(x.tok, "ordering on boolean operands")
		}
	}
	lc := toCases(m, l)
	rc := toCases(m, r)
	out := bdd.False
	for _, a := range lc {
		for _, b := range rc {
			cond := m.And(a.cond, b.cond)
			if cond == bdd.False {
				continue
			}
			holds, err := compareValues(x.Op, a.v, b.v, x.tok)
			if err != nil {
				return nil, err
			}
			if holds {
				out = m.Or(out, cond)
			}
		}
	}
	return &result{isBool: true, b: out}, nil
}

// evalIn computes set membership: the left value equals some member of
// the right (possibly nondeterministic set) expression under the
// respective conditions.
func (c *Compiled) evalIn(x *Binary, l, r *result) (*result, error) {
	m := c.S.M
	if l.isSet {
		return nil, errAt(x.tok, "left operand of 'in' cannot be a set")
	}
	out := bdd.False
	for _, a := range toCases(m, l) {
		for _, b := range toCases(m, r) {
			cond := m.And(a.cond, b.cond)
			if cond == bdd.False {
				continue
			}
			eq, err := compareValues(tEq, a.v, b.v, x.tok)
			if err != nil {
				return nil, err
			}
			if eq {
				out = m.Or(out, cond)
			}
		}
	}
	return &result{isBool: true, b: out}, nil
}

func compareValues(op tokKind, a, b Value, t token) (bool, error) {
	// Allow ints 0/1 to compare against booleans.
	if a.Kind == VBool && b.Kind == VInt {
		b = Value{Kind: VBool, B: b.I != 0}
	}
	if b.Kind == VBool && a.Kind == VInt {
		a = Value{Kind: VBool, B: a.I != 0}
	}
	switch op {
	case tEq:
		return a.equal(b), nil
	case tNeq:
		return !a.equal(b), nil
	}
	if a.Kind != VInt || b.Kind != VInt {
		return false, errAt(t, "ordering comparison needs integer operands (got %s, %s)", a, b)
	}
	switch op {
	case tLt:
		return a.I < b.I, nil
	case tLe:
		return a.I <= b.I, nil
	case tGt:
		return a.I > b.I, nil
	default:
		return a.I >= b.I, nil
	}
}

func (c *Compiled) evalArith(x *Binary, l, r *result) (*result, error) {
	m := c.S.M
	if l.isBool || r.isBool || l.isSet || r.isSet {
		return nil, errAt(x.tok, "arithmetic needs integer operands")
	}
	out := &result{}
	for _, a := range l.cases {
		for _, b := range r.cases {
			cond := m.And(a.cond, b.cond)
			if cond == bdd.False {
				continue
			}
			if a.v.Kind != VInt || b.v.Kind != VInt {
				return nil, errAt(x.tok, "arithmetic needs integer operands (got %s, %s)", a.v, b.v)
			}
			var v int
			switch x.Op {
			case tPlus:
				v = a.v.I + b.v.I
			case tMinus:
				v = a.v.I - b.v.I
			case tStar:
				v = a.v.I * b.v.I
			case tSlash:
				if b.v.I == 0 {
					return nil, errAt(x.tok, "division by zero")
				}
				v = a.v.I / b.v.I
			case tMod:
				if b.v.I == 0 {
					return nil, errAt(x.tok, "mod by zero")
				}
				v = ((a.v.I % b.v.I) + b.v.I) % b.v.I
			}
			out.cases = mergeCase(m, out.cases, Value{Kind: VInt, I: v}, cond)
		}
	}
	return out, nil
}

func (c *Compiled) evalCase(x *CaseExpr, allowNext bool) (*result, error) {
	m := c.S.M
	notPrev := bdd.True
	out := &result{}
	anyBool := false
	anyCases := false
	boolAcc := bdd.False
	covered := bdd.False
	for i := range x.Conds {
		cond, err := c.evalBool(x.Conds[i], allowNext)
		if err != nil {
			return nil, err
		}
		active := m.And(notPrev, cond)
		notPrev = m.And(notPrev, m.Not(cond))
		val, err := c.eval(x.Vals[i], allowNext)
		if err != nil {
			return nil, err
		}
		if val.isBool {
			anyBool = true
			boolAcc = m.Or(boolAcc, m.And(active, val.b))
		} else {
			anyCases = true
			if val.isSet {
				out.isSet = true
			}
			for _, vc := range val.cases {
				cnd := m.And(active, vc.cond)
				if cnd == bdd.False {
					continue
				}
				out.cases = mergeCase(m, out.cases, vc.v, cnd)
			}
		}
		covered = m.Or(covered, active)
	}
	if anyBool && anyCases {
		return nil, errAt(x.tok, "case branches mix boolean and value results")
	}
	if anyBool {
		// Uncovered states default to FALSE, mirroring NuSMV's
		// requirement of exhaustive cases; we are permissive here but
		// keep determinism.
		return &result{isBool: true, b: boolAcc}, nil
	}
	return out, nil
}

// asBool extracts a boolean BDD, converting 0/1-valued and TRUE/FALSE
// case results.
func asBool(m *bdd.Manager, r *result, t token) (bdd.Ref, error) {
	if r.isBool {
		return r.b, nil
	}
	if r.isSet {
		return bdd.False, errAt(t, "set expression used where a boolean is required")
	}
	out := bdd.False
	for _, vc := range r.cases {
		truthy := false
		switch vc.v.Kind {
		case VBool:
			truthy = vc.v.B
		case VInt:
			if vc.v.I != 0 && vc.v.I != 1 {
				return bdd.False, errAt(t, "value %s used where a boolean is required", vc.v)
			}
			truthy = vc.v.I == 1
		default:
			return bdd.False, errAt(t, "symbolic constant %q used where a boolean is required", vc.v.S)
		}
		if truthy {
			out = m.Or(out, vc.cond)
		}
	}
	return out, nil
}

// toCases views any result as value cases (booleans become TRUE/FALSE
// cases).
func toCases(m *bdd.Manager, r *result) []valCase {
	if !r.isBool {
		return r.cases
	}
	return []valCase{
		{v: Value{Kind: VBool, B: true}, cond: r.b},
		{v: Value{Kind: VBool, B: false}, cond: m.Not(r.b)},
	}
}

// mergeCase adds (v, cond) to cases, merging with an existing case of
// the same value.
func mergeCase(m *bdd.Manager, cases []valCase, v Value, cond bdd.Ref) []valCase {
	for i := range cases {
		if cases[i].v.equal(v) {
			cases[i].cond = m.Or(cases[i].cond, cond)
			return cases
		}
	}
	return append(cases, valCase{v: v, cond: cond})
}

// registerAtoms installs atom resolvers on the symbolic structure so
// that SPEC formulas can mention variables and DEFINEs.
func (c *Compiled) registerAtoms() error {
	m := c.S.M
	for _, name := range c.Order {
		info := c.Vars[name]
		if info.Decl.Type.Kind == TypeBool {
			c.S.RegisterAtom(name, c.encodeValue(info, 1, false))
			continue
		}
		c.S.RegisterEqAtom(name, func(value string) (bdd.Ref, error) {
			v, err := parseDomainValue(info, value)
			if err != nil {
				return bdd.False, err
			}
			idx := info.valueIndex(v)
			if idx < 0 {
				return bdd.False, fmt.Errorf("smv: %q is not in the domain of %q", value, info.Decl.Name)
			}
			return c.encodeValue(info, idx, false), nil
		})
	}
	for name := range c.defines {
		name := name
		// DEFINEs act as boolean atoms and as eq-atoms when valued.
		// Evaluate through the memo (evalIdent) so the eq-atom closure
		// below aliases the case slice the reorder hook rewrites in place.
		r, err := c.evalIdent(&Ident{Name: name}, false)
		if err != nil {
			return err
		}
		if r.isBool {
			c.S.RegisterAtom(name, r.b)
			continue
		}
		cases := r.cases
		c.S.RegisterEqAtom(name, func(value string) (bdd.Ref, error) {
			out := bdd.False
			for _, vc := range cases {
				if vc.v.String() == value ||
					(vc.v.Kind == VBool && boolName(vc.v.B) == value) {
					out = m.Or(out, vc.cond)
				}
			}
			return out, nil
		})
	}
	return nil
}

func boolName(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func parseDomainValue(info *VarInfo, s string) (Value, error) {
	switch info.Decl.Type.Kind {
	case TypeEnum:
		return Value{Kind: VSym, S: s}, nil
	case TypeRange:
		n, err := strconv.Atoi(s)
		if err != nil {
			return Value{}, fmt.Errorf("smv: %q is not an integer value for %q", s, info.Decl.Name)
		}
		return Value{Kind: VInt, I: n}, nil
	default:
		switch s {
		case "1", "true", "TRUE":
			return Value{Kind: VBool, B: true}, nil
		case "0", "false", "FALSE":
			return Value{Kind: VBool, B: false}, nil
		}
		return Value{}, fmt.Errorf("smv: %q is not a boolean value", s)
	}
}

// FormatStateByVars renders a state grouping the encoded bits back into
// declared variables.
func (c *Compiled) FormatStateByVars(st kripke.State) string {
	out := ""
	for i, name := range c.Order {
		if i > 0 {
			out += " "
		}
		out += name + "=" + c.StateValue(st, name).String()
	}
	return out
}

// StateValue decodes the value of a declared variable in a state.
func (c *Compiled) StateValue(st kripke.State, name string) Value {
	info := c.Vars[name]
	idx := 0
	for b, bitPos := range info.Bits {
		if st[bitPos] {
			idx |= 1 << b
		}
	}
	if idx >= len(info.Values) {
		return Value{Kind: VSym, S: "?"}
	}
	return info.Values[idx]
}

// ResolveSpecAtoms verifies that all atoms of a spec formula resolve
// (returns the first error, if any).
func (c *Compiled) ResolveSpecAtoms(f *ctl.Formula) error {
	for _, a := range ctl.Atoms(f) {
		if c.Vars[a] == nil && c.defines[a] == nil {
			return fmt.Errorf("smv: SPEC mentions unknown identifier %q", a)
		}
	}
	return nil
}
