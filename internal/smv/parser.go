package smv

import (
	"strconv"
	"strings"

	"repro/internal/ctl"
	"repro/internal/ltl"
)

// ParseModule parses SMV source — possibly containing several MODULE
// definitions — and returns the hierarchy flattened into a single
// module rooted at main (see flatten.go).
func ParseModule(src string) (*Module, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return prog.Flatten()
}

// MustParseModule parses or panics; for tests and embedded models.
func MustParseModule(src string) *Module {
	m, err := ParseModule(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool {
	return p.cur().kind == k
}
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tIdent && p.cur().text == kw
}
func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, errAt(p.cur(), "expected %s, found %s", tokNames[k], p.cur())
	}
	return p.next(), nil
}
func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return errAt(p.cur(), "expected %q, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

// sectionKeywords end a declaration section.
var sectionKeywords = map[string]bool{
	"MODULE": true, "VAR": true, "ASSIGN": true, "DEFINE": true,
	"INIT": true, "TRANS": true, "INVAR": true, "FAIRNESS": true,
	"SPEC": true, "CTLSPEC": true, "LTLSPEC": true,
}

// oneModule parses a single MODULE definition, stopping before the next
// MODULE keyword or EOF.
func (p *parser) oneModule() (*Module, error) {
	if err := p.expectKeyword("MODULE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name.text}
	if p.at(tLParen) {
		p.next()
		for {
			param, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, param.text)
			if p.at(tComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
	}
	if m.Name == "main" && len(m.Params) > 0 {
		return nil, errAt(name, "MODULE main cannot take parameters")
	}
	for !p.at(tEOF) && !p.atKeyword("MODULE") {
		t := p.cur()
		if t.kind != tIdent {
			return nil, errAt(t, "expected section keyword, found %s", t)
		}
		switch t.text {
		case "VAR":
			p.next()
			if err := p.varSection(m); err != nil {
				return nil, err
			}
		case "ASSIGN":
			p.next()
			if err := p.assignSection(m); err != nil {
				return nil, err
			}
		case "DEFINE":
			p.next()
			if err := p.defineSection(m); err != nil {
				return nil, err
			}
		case "INIT", "TRANS", "INVAR", "FAIRNESS":
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if p.at(tSemi) {
				p.next()
			}
			switch t.text {
			case "INIT":
				m.Inits = append(m.Inits, e)
			case "TRANS":
				m.Trans = append(m.Trans, e)
			case "INVAR":
				m.Invars = append(m.Invars, e)
			case "FAIRNESS":
				m.Fairness = append(m.Fairness, e)
			}
		case "SPEC", "CTLSPEC":
			p.next()
			spec, err := p.spec()
			if err != nil {
				return nil, err
			}
			m.Specs = append(m.Specs, spec)
		case "LTLSPEC":
			p.next()
			spec, err := p.ltlSpec()
			if err != nil {
				return nil, err
			}
			m.LTLSpecs = append(m.LTLSpecs, spec)
		default:
			return nil, errAt(t, "unknown section %q", t.text)
		}
	}
	return m, nil
}

func (p *parser) varSection(m *Module) error {
	for p.at(tIdent) && !sectionKeywords[p.cur().text] {
		name := p.next()
		if _, err := p.expect(tColon); err != nil {
			return err
		}
		typ, err := p.typeDecl()
		if err != nil {
			return err
		}
		if _, err := p.expect(tSemi); err != nil {
			return err
		}
		m.Vars = append(m.Vars, &VarDecl{Name: name.text, Type: typ, line: name.line})
	}
	return nil
}

func (p *parser) typeDecl() (*Type, error) {
	t := p.cur()
	switch {
	case p.atKeyword("boolean"):
		p.next()
		return &Type{Kind: TypeBool}, nil
	case p.at(tIdent):
		// module instantiation: [process] name, optionally with (arg, ...)
		isProcess := false
		if p.atKeyword("process") {
			p.next()
			isProcess = true
			if !p.at(tIdent) {
				return nil, errAt(p.cur(), "expected module name after 'process'")
			}
		}
		name := p.next()
		typ := &Type{Kind: TypeInstance, Module: name.text, IsProcess: isProcess}
		if p.at(tLParen) {
			p.next()
			for {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				typ.Args = append(typ.Args, arg)
				if p.at(tComma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
		}
		return typ, nil
	case p.at(tLBrace):
		p.next()
		var vals []string
		for {
			v, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v.text)
			if p.at(tComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		return &Type{Kind: TypeEnum, Enum: vals}, nil
	case p.at(tNumber):
		lo := p.next()
		if _, err := p.expect(tDotDot); err != nil {
			return nil, err
		}
		hi, err := p.expect(tNumber)
		if err != nil {
			return nil, err
		}
		loV, _ := strconv.Atoi(lo.text)
		hiV, _ := strconv.Atoi(hi.text)
		if hiV < loV {
			return nil, errAt(hi, "empty range %d..%d", loV, hiV)
		}
		return &Type{Kind: TypeRange, Lo: loV, Hi: hiV}, nil
	default:
		return nil, errAt(t, "expected type, found %s", t)
	}
}

func (p *parser) assignSection(m *Module) error {
	for p.at(tIdent) && !sectionKeywords[p.cur().text] {
		kw := p.next()
		var kind AssignKind
		switch kw.text {
		case "init":
			kind = AssignInit
		case "next":
			kind = AssignNext
		default:
			return errAt(kw, "expected init(v) or next(v) in ASSIGN, found %q", kw.text)
		}
		if _, err := p.expect(tLParen); err != nil {
			return err
		}
		v, err := p.expect(tIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tRParen); err != nil {
			return err
		}
		if _, err := p.expect(tAssign); err != nil {
			return err
		}
		rhs, err := p.expr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tSemi); err != nil {
			return err
		}
		m.Assigns = append(m.Assigns, &Assign{Kind: kind, Var: v.text, RHS: rhs, line: kw.line})
	}
	return nil
}

func (p *parser) defineSection(m *Module) error {
	for p.at(tIdent) && !sectionKeywords[p.cur().text] {
		name := p.next()
		if _, err := p.expect(tAssign); err != nil {
			return err
		}
		body, err := p.expr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tSemi); err != nil {
			return err
		}
		m.Defines = append(m.Defines, &Define{Name: name.text, Body: body, line: name.line})
	}
	return nil
}

// specSource captures the raw formula text of a specification section:
// token texts joined by spaces up to ';' (or a section keyword) at
// bracket depth zero.
func (p *parser) specSource() string {
	var parts []string
	depth := 0
	for !p.at(tEOF) {
		t := p.cur()
		if t.kind == tSemi && depth == 0 {
			p.next()
			break
		}
		if t.kind == tIdent && depth == 0 && sectionKeywords[t.text] {
			break
		}
		switch t.kind {
		case tLParen, tLBracket:
			depth++
		case tRParen, tRBracket:
			depth--
		}
		parts = append(parts, t.text)
		p.next()
	}
	return strings.Join(parts, " ")
}

// spec captures the raw CTL formula text until ';' (or a section
// keyword) and parses it with the ctl parser.
func (p *parser) spec() (*Spec, error) {
	start := p.cur()
	src := p.specSource()
	if src == "" {
		return nil, errAt(start, "empty SPEC")
	}
	f, err := ctl.Parse(src)
	if err != nil {
		return nil, errAt(start, "SPEC %q: %v", src, err)
	}
	return &Spec{Source: src, Formula: f, line: start.line}, nil
}

// ltlSpec is spec for LTLSPEC sections, parsed with the ltl parser.
func (p *parser) ltlSpec() (*LTLSpec, error) {
	start := p.cur()
	src := p.specSource()
	if src == "" {
		return nil, errAt(start, "empty LTLSPEC")
	}
	f, err := ltl.Parse(src)
	if err != nil {
		return nil, errAt(start, "LTLSPEC %q: %v", src, err)
	}
	return &LTLSpec{Source: src, Formula: f, line: start.line}, nil
}

// Expression grammar (precedence climbing):
//
//	iff  := imp ('<->' imp)*
//	imp  := or ('->' imp)?
//	or   := and ('|' and)*
//	and  := cmp ('&' cmp)*
//	cmp  := sum (('='|'!='|'<'|'<='|'>'|'>=') sum)?
//	sum  := prod (('+'|'-') prod)*
//	prod := unary (('*'|'/'|'mod') unary)*
//	unary:= '!' unary | '-' unary | atom
//	atom := '(' expr ')' | case..esac | '{' list '}' | next '(' id ')'
//	      | TRUE | FALSE | number | ident
func (p *parser) expr() (Expr, error) { return p.iffExpr() }

func (p *parser) iffExpr() (Expr, error) {
	l, err := p.impExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tIff) {
		op := p.next()
		r, err := p.impExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: tIff, L: l, R: r, tok: op}
	}
	return l, nil
}

func (p *parser) impExpr() (Expr, error) {
	l, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.at(tImp) {
		op := p.next()
		r, err := p.impExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: tImp, L: l, R: r, tok: op}, nil
	}
	return l, nil
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tOr) {
		op := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: tOr, L: l, R: r, tok: op}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tAnd) {
		op := p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: tAnd, L: l, R: r, tok: op}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.unionExpr()
	if err != nil {
		return nil, err
	}
	if p.atKeyword("in") {
		op := p.next()
		r, err := p.unionExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: tIn, L: l, R: r, tok: op}, nil
	}
	switch p.cur().kind {
	case tEq, tNeq, tLt, tLe, tGt, tGe:
		op := p.next()
		r, err := p.unionExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op.kind, L: l, R: r, tok: op}, nil
	}
	return l, nil
}

// unionExpr parses set unions: sum ('union' sum)*.
func (p *parser) unionExpr() (Expr, error) {
	l, err := p.sumExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("union") {
		op := p.next()
		r, err := p.sumExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: tUnion, L: l, R: r, tok: op}
	}
	return l, nil
}

func (p *parser) sumExpr() (Expr, error) {
	l, err := p.prodExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPlus) || p.at(tMinus) {
		op := p.next()
		r, err := p.prodExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op.kind, L: l, R: r, tok: op}
	}
	return l, nil
}

func (p *parser) prodExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tStar) || p.at(tSlash) || p.atKeyword("mod") {
		op := p.next()
		kind := op.kind
		if op.kind == tIdent {
			kind = tMod
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: kind, L: l, R: r, tok: op}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNot:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: tNot, X: x, tok: t}, nil
	case tMinus:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: tMinus, X: x, tok: t}, nil
	}
	return p.atomExpr()
}

func (p *parser) atomExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tLBrace:
		p.next()
		var elems []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.at(tComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		return &SetLit{Elems: elems, tok: t}, nil
	case tNumber:
		p.next()
		v, _ := strconv.Atoi(t.text)
		return &Num{Val: v, tok: t}, nil
	case tIdent:
		switch t.text {
		case "TRUE":
			p.next()
			return &BoolLit{Val: true, tok: t}, nil
		case "FALSE":
			p.next()
			return &BoolLit{Val: false, tok: t}, nil
		case "case":
			return p.caseExpr()
		case "next":
			if p.toks[p.pos+1].kind == tLParen {
				p.next()
				p.next()
				v, err := p.expect(tIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tRParen); err != nil {
					return nil, err
				}
				return &NextRef{Name: v.text, tok: t}, nil
			}
		}
		p.next()
		return &Ident{Name: t.text, tok: t}, nil
	}
	return nil, errAt(t, "unexpected %s in expression", t)
}

func (p *parser) caseExpr() (Expr, error) {
	t := p.next() // 'case'
	ce := &CaseExpr{tok: t}
	for !p.atKeyword("esac") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		ce.Conds = append(ce.Conds, cond)
		ce.Vals = append(ce.Vals, val)
	}
	p.next() // esac
	if len(ce.Conds) == 0 {
		return nil, errAt(t, "empty case expression")
	}
	return ce, nil
}
