package smv

import (
	"math/rand"
	"testing"
)

func TestSimulateProducesValidWalk(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR n : 0..7;
ASSIGN
  init(n) := 0;
  next(n) := {(n + 1) mod 8, n};
`)
	rng := rand.New(rand.NewSource(42))
	tr, err := c.Simulate(rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 21 {
		t.Fatalf("walk has %d states, want 21", tr.Len())
	}
	for i := 1; i < len(tr.States); i++ {
		if !c.S.HasEdge(tr.States[i-1], tr.States[i]) {
			t.Fatalf("invalid step %d", i)
		}
	}
	if !c.S.Holds(c.S.Init, tr.States[0]) {
		t.Fatal("walk must start at an initial state")
	}
}

func TestSimulateDeadlockReported(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR x : boolean;
INIT !x
TRANS !x & next(x)
`)
	rng := rand.New(rand.NewSource(1))
	tr, err := c.Simulate(rng, 10)
	if err == nil {
		t.Fatal("deadlock must be reported")
	}
	if tr == nil || tr.Len() < 2 {
		t.Fatal("partial walk should be returned")
	}
}

func TestSimulateZeroSteps(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR x : boolean;
ASSIGN init(x) := TRUE;
`)
	tr, err := c.Simulate(rand.New(rand.NewSource(3)), 0)
	if err != nil || tr.Len() != 1 {
		t.Fatalf("zero-step walk: %v %v", tr, err)
	}
}
