package smv

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kripke"
)

// A differential test for the expression compiler: random boolean
// expressions over a mixed-type variable set are compiled to BDDs and,
// independently, interpreted concretely on every state; the two must
// agree everywhere.

// concreteEval interprets an expression at a concrete state, returning
// the set of possible values (singleton for deterministic expressions).
func concreteEval(t *testing.T, c *Compiled, e Expr, st kripke.State) []Value {
	t.Helper()
	switch x := e.(type) {
	case *BoolLit:
		return []Value{{Kind: VBool, B: x.Val}}
	case *Num:
		return []Value{{Kind: VInt, I: x.Val}}
	case *Ident:
		if c.Vars[x.Name] != nil {
			return []Value{c.StateValue(st, x.Name)}
		}
		if d := c.defines[x.Name]; d != nil {
			return concreteEval(t, c, d.Body, st)
		}
		return []Value{{Kind: VSym, S: x.Name}}
	case *Unary:
		vs := concreteEval(t, c, x.X, st)
		out := make([]Value, 0, len(vs))
		for _, v := range vs {
			switch x.Op {
			case tNot:
				out = append(out, Value{Kind: VBool, B: !truthy(t, v)})
			case tMinus:
				out = append(out, Value{Kind: VInt, I: -v.I})
			}
		}
		return out
	case *Binary:
		return concreteBinary(t, c, x, st)
	case *SetLit:
		var out []Value
		for _, el := range x.Elems {
			out = append(out, concreteEval(t, c, el, st)...)
		}
		return out
	case *CaseExpr:
		for i := range x.Conds {
			cv := concreteEval(t, c, x.Conds[i], st)
			if truthy(t, cv[0]) {
				return concreteEval(t, c, x.Vals[i], st)
			}
		}
		return []Value{{Kind: VBool, B: false}} // uncovered boolean case
	}
	t.Fatalf("unhandled expr %T", e)
	return nil
}

func truthy(t *testing.T, v Value) bool {
	t.Helper()
	switch v.Kind {
	case VBool:
		return v.B
	case VInt:
		return v.I == 1
	}
	t.Fatalf("non-boolean value %s in boolean position", v)
	return false
}

func concreteBinary(t *testing.T, c *Compiled, x *Binary, st kripke.State) []Value {
	t.Helper()
	l := concreteEval(t, c, x.L, st)
	r := concreteEval(t, c, x.R, st)
	b := func(v bool) []Value { return []Value{{Kind: VBool, B: v}} }
	switch x.Op {
	case tAnd:
		return b(truthy(t, l[0]) && truthy(t, r[0]))
	case tOr:
		return b(truthy(t, l[0]) || truthy(t, r[0]))
	case tImp:
		return b(!truthy(t, l[0]) || truthy(t, r[0]))
	case tIff:
		return b(truthy(t, l[0]) == truthy(t, r[0]))
	case tEq, tNeq, tLt, tLe, tGt, tGe:
		holds, err := compareValues(x.Op, l[0], r[0], x.tok)
		if err != nil {
			t.Fatalf("compare: %v", err)
		}
		return b(holds)
	case tIn:
		for _, rv := range r {
			eq, err := compareValues(tEq, l[0], rv, x.tok)
			if err != nil {
				t.Fatalf("in: %v", err)
			}
			if eq {
				return b(true)
			}
		}
		return b(false)
	case tPlus, tMinus, tStar, tMod:
		a, bb := l[0].I, r[0].I
		switch x.Op {
		case tPlus:
			return []Value{{Kind: VInt, I: a + bb}}
		case tMinus:
			return []Value{{Kind: VInt, I: a - bb}}
		case tStar:
			return []Value{{Kind: VInt, I: a * bb}}
		default:
			return []Value{{Kind: VInt, I: ((a % bb) + bb) % bb}}
		}
	case tUnion:
		return append(append([]Value{}, l...), r...)
	}
	t.Fatalf("unhandled op %v", x.Op)
	return nil
}

// randBoolExpr generates a random boolean expression over the fixture's
// variables; randValExpr generates integer-valued ones.
func randBoolExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(5) {
		case 0:
			return &BoolLit{Val: r.Intn(2) == 0}
		case 1:
			return &Ident{Name: "flag"}
		case 2:
			return &Binary{Op: tEq, L: &Ident{Name: "st"}, R: &Ident{Name: []string{"red", "green", "blue"}[r.Intn(3)]}}
		case 3:
			return &Binary{Op: []tokKind{tLt, tLe, tGt, tGe, tEq, tNeq}[r.Intn(6)],
				L: randValExpr(r, 1), R: randValExpr(r, 1)}
		default:
			return &Binary{Op: tIn, L: randValExpr(r, 0),
				R: &SetLit{Elems: []Expr{randValExpr(r, 0), randValExpr(r, 0)}}}
		}
	}
	switch r.Intn(5) {
	case 0:
		return &Unary{Op: tNot, X: randBoolExpr(r, depth-1)}
	case 1:
		return &Binary{Op: tAnd, L: randBoolExpr(r, depth-1), R: randBoolExpr(r, depth-1)}
	case 2:
		return &Binary{Op: tOr, L: randBoolExpr(r, depth-1), R: randBoolExpr(r, depth-1)}
	case 3:
		return &Binary{Op: tImp, L: randBoolExpr(r, depth-1), R: randBoolExpr(r, depth-1)}
	default:
		ce := &CaseExpr{}
		ce.Conds = append(ce.Conds, randBoolExpr(r, depth-1), &BoolLit{Val: true})
		ce.Vals = append(ce.Vals, randBoolExpr(r, depth-1), randBoolExpr(r, depth-1))
		return ce
	}
}

func randValExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(2) == 0 {
		if r.Intn(2) == 0 {
			return &Ident{Name: "n"}
		}
		return &Num{Val: r.Intn(4)}
	}
	op := []tokKind{tPlus, tMinus, tStar}[r.Intn(3)]
	e := &Binary{Op: op, L: randValExpr(r, depth-1), R: randValExpr(r, depth-1)}
	// keep values in a sane range via mod
	return &Binary{Op: tMod, L: e, R: &Num{Val: 8}}
}

func TestExpressionCompilerAgainstInterpreter(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR
  flag : boolean;
  st   : {red, green, blue};
  n    : 0..3;
`)
	// enumerate the full (valid) state space
	all := c.S.EnumStates(c.S.Invar, 0)
	if len(all) != 2*3*4 {
		t.Fatalf("state space has %d states, want 24", len(all))
	}
	r := rand.New(rand.NewSource(7777))
	for trial := 0; trial < 300; trial++ {
		e := randBoolExpr(r, 3)
		res, err := c.eval(e, false)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, e, err)
		}
		set, err := asBool(c.S.M, res, token{})
		if err != nil {
			t.Fatalf("trial %d: asBool %s: %v", trial, e, err)
		}
		for _, st := range all {
			want := truthy(t, concreteEval(t, c, e, st)[0])
			got := c.S.Holds(set, st)
			if got != want {
				t.Fatalf("trial %d: %s disagrees at %s: bdd=%v interp=%v",
					trial, e, c.FormatStateByVars(st), got, want)
			}
		}
	}
}

// TestValuedExpressionsAgainstInterpreter checks the case partition of
// integer-valued expressions.
func TestValuedExpressionsAgainstInterpreter(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR
  flag : boolean;
  st   : {red, green, blue};
  n    : 0..3;
`)
	all := c.S.EnumStates(c.S.Invar, 0)
	r := rand.New(rand.NewSource(8888))
	for trial := 0; trial < 200; trial++ {
		e := randValExpr(r, 3)
		res, err := c.eval(e, false)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.isBool {
			t.Fatalf("trial %d: integer expression compiled to bool", trial)
		}
		for _, st := range all {
			want := concreteEval(t, c, e, st)[0]
			// find the case whose condition holds at st
			found := false
			for _, vc := range res.cases {
				if c.S.Holds(vc.cond, st) {
					if !vc.v.equal(want) {
						t.Fatalf("trial %d: %s at %s: bdd=%s interp=%s",
							trial, e, c.FormatStateByVars(st), vc.v, want)
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: no case covers state %s", trial, c.FormatStateByVars(st))
			}
		}
	}
}

// sanity: the fixture exposes the names the generators use.
func TestOracleFixture(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR flag : boolean; st : {red, green, blue}; n : 0..3;
`)
	for _, name := range []string{"flag", "st", "n"} {
		if c.Vars[name] == nil {
			t.Fatalf("fixture variable %q missing", name)
		}
	}
	_ = fmt.Sprintf
}
