package smv

import (
	"strings"
	"testing"

	"repro/internal/ltl"
	"repro/internal/mc"
)

func parseOK(t *testing.T, src string) *Module {
	t.Helper()
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// checkLTL runs the one-call path and fails the test on any error
// (including counterexample replay failures).
func checkLTL(t *testing.T, src, spec string) (bool, *LTLProduct) {
	t.Helper()
	m := parseOK(t, src)
	f, err := ltl.Parse(spec)
	if err != nil {
		t.Fatalf("ltl parse %q: %v", spec, err)
	}
	holds, p, _, err := CheckLTLSpec(m, f, spec)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	return holds, p
}

const toggleSrc = `
MODULE main
VAR x : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := !x;
`

func TestLTLSpecSection(t *testing.T) {
	m := parseOK(t, `
MODULE main
VAR x : boolean;
ASSIGN init(x) := FALSE; next(x) := !x;
SPEC AG AF x
LTLSPEC G F x
LTLSPEC G (x -> X !x)
`)
	if len(m.Specs) != 1 {
		t.Fatalf("want 1 CTL spec, got %d", len(m.Specs))
	}
	if len(m.LTLSpecs) != 2 {
		t.Fatalf("want 2 LTL specs, got %d", len(m.LTLSpecs))
	}
	if got := m.LTLSpecs[0].Formula.String(); got != "G F x" {
		t.Errorf("spec 0 formula = %q", got)
	}
	if got := m.LTLSpecs[1].Formula.String(); got != "G (x -> X !x)" {
		t.Errorf("spec 1 formula = %q", got)
	}
	// Source is the token-joined text; it must reparse to the same
	// formula.
	back, err := ltl.Parse(m.LTLSpecs[1].Source)
	if err != nil || !ltl.Equal(back, m.LTLSpecs[1].Formula) {
		t.Errorf("source %q does not reparse to the formula: %v", m.LTLSpecs[1].Source, err)
	}
}

func TestLTLSpecParseError(t *testing.T) {
	bad := []string{
		"MODULE main VAR x : boolean; LTLSPEC",
		"MODULE main VAR x : boolean; LTLSPEC G (x",
		"MODULE main VAR x : boolean; LTLSPEC AG x", // AG is CTL, parses as two atoms
	}
	for _, src := range bad {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("ParseModule(%q) should fail", src)
		}
	}
}

func TestLTLSpecOnlyInMain(t *testing.T) {
	_, err := CompileProgram(`
MODULE main
VAR c : counter;
MODULE counter
VAR x : boolean;
ASSIGN next(x) := !x;
LTLSPEC G F x
`)
	if err == nil || !strings.Contains(err.Error(), "LTLSPEC is only allowed in main") {
		t.Fatalf("want LTLSPEC-in-submodule error, got %v", err)
	}
}

func TestLTLToggleVerdicts(t *testing.T) {
	cases := []struct {
		spec string
		want bool
	}{
		{"G F x", true},
		{"G F !x", true},
		{"G (x -> X !x)", true},
		{"G (!x -> X x)", true},
		{"!x", true},     // initial state
		{"X x", true},    // second state
		{"G x", false},   // x is false initially
		{"F G x", false}, // x toggles forever
		{"x U !x", true}, // immediately: !x holds at position 0
		{"!x U x", true}, // holds at position 1
		{"G (x -> X x)", false},
	}
	for _, c := range cases {
		if got, _ := checkLTL(t, toggleSrc, c.spec); got != c.want {
			t.Errorf("%s: got %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestLTLCounterexampleIsLasso(t *testing.T) {
	m := parseOK(t, toggleSrc)
	f := ltl.MustParse("F G x")
	holds, p, cex, err := CheckLTLSpec(m, f, "F G x")
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Fatal("F G x should fail on the toggle")
	}
	if cex == nil || !cex.IsLasso() {
		t.Fatal("want a lasso counterexample")
	}
	// The rendered trace must decode model variables and hide the
	// tableau bits.
	out := p.FormatLassoByVars(cex)
	if !strings.Contains(out, "x=") {
		t.Errorf("trace does not decode x:\n%s", out)
	}
	if strings.Contains(out, "_ltl") {
		t.Errorf("trace leaks tableau variables:\n%s", out)
	}
	if !strings.Contains(out, "↻") {
		t.Errorf("trace does not mark the cycle start:\n%s", out)
	}
}

func TestLTLDefineAtom(t *testing.T) {
	src := `
MODULE main
VAR s : {idle, req, ack};
ASSIGN
  init(s) := idle;
  next(s) := case
    s = idle : {idle, req};
    s = req  : ack;
    s = ack  : idle;
  esac;
DEFINE requesting := s = req;
FAIRNESS requesting
`
	if got, _ := checkLTL(t, src, "G (requesting -> F s = ack)"); !got {
		t.Error("G (requesting -> F s = ack) should hold")
	}
	if got, _ := checkLTL(t, src, "G F requesting"); !got {
		t.Error("G F requesting should hold under FAIRNESS requesting")
	}
	if got, _ := checkLTL(t, src, "F G requesting"); got {
		t.Error("F G requesting should fail (ack always follows)")
	}
}

func TestLTLEqNeqAtoms(t *testing.T) {
	src := `
MODULE main
VAR n : 0..3;
ASSIGN
  init(n) := 0;
  next(n) := case n = 3 : 0; TRUE : n + 1; esac;
`
	cases := []struct {
		spec string
		want bool
	}{
		{"G F n = 0", true},
		{"G F n = 3", true},
		{"G (n = 1 -> X n = 2)", true},
		{"G n != 2", false},
		{"n = 0 U n = 1", true},
	}
	for _, c := range cases {
		if got, _ := checkLTL(t, src, c.spec); got != c.want {
			t.Errorf("%s: got %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestLTLUnknownAtom(t *testing.T) {
	m := parseOK(t, toggleSrc)
	_, err := CompileLTL(m, ltl.MustParse("G y"), "G y")
	if err == nil || !strings.Contains(err.Error(), "unknown identifier") {
		t.Fatalf("want unknown-identifier error, got %v", err)
	}
	c := compileOK(t, toggleSrc)
	if err := c.ResolveLTLAtoms(ltl.MustParse("G y")); err == nil {
		t.Fatal("ResolveLTLAtoms should reject unknown atom")
	}
	if err := c.ResolveLTLAtoms(ltl.MustParse("G x")); err != nil {
		t.Fatalf("ResolveLTLAtoms rejects declared atom: %v", err)
	}
}

func TestLTLTableauNameCollision(t *testing.T) {
	// A model may legally declare _ltl0; the tableau must step aside.
	src := `
MODULE main
VAR _ltl0 : boolean;
ASSIGN init(_ltl0) := FALSE; next(_ltl0) := !_ltl0;
`
	holds, p := checkLTL(t, src, "G F _ltl0")
	if !holds {
		t.Fatal("G F _ltl0 should hold on the toggle")
	}
	if len(p.ElemVars) == 0 {
		t.Fatal("tableau reserved no variables")
	}
	for _, iv := range p.ElemVars {
		if p.S.Vars[iv].Name == "_ltl0" {
			t.Fatal("tableau variable collides with the declared _ltl0")
		}
	}
}

func TestLTLProductJoinsPartition(t *testing.T) {
	// The tableau clusters must join the conjunctive partition, not
	// bypass it: a multi-variable model with a temporal spec gets at
	// least one more cluster than the plain compile.
	src := `
MODULE main
VAR x : boolean; y : boolean;
ASSIGN
  init(x) := FALSE; next(x) := !x;
  init(y) := FALSE; next(y) := x;
`
	c := compileOK(t, src)
	m := parseOK(t, src)
	p, err := CompileLTL(m, ltl.MustParse("G (x -> F y)"), "")
	if err != nil {
		t.Fatal(err)
	}
	if !p.S.HasClusters() {
		t.Fatal("product lost the conjunctive partition")
	}
	if p.S.NumClusters() <= c.S.NumClusters() {
		t.Fatalf("product has %d clusters, plain model %d: tableau clusters missing",
			p.S.NumClusters(), c.S.NumClusters())
	}
	if len(p.S.Fair) == 0 {
		t.Fatal("product has no generalized-Büchi fairness sets")
	}
	ch := mc.New(p.S)
	defer ch.Close()
	holds, _, err := p.Check(ch)
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Fatal("G (x -> F y) should hold")
	}
}

func TestLTLProcessProductDisjunctive(t *testing.T) {
	// An interleaved model checked with the disjunctive partition
	// enabled must agree with the default conjunctive path.
	src := `
MODULE main
VAR p0 : process worker(turn, 0);
    p1 : process worker(turn, 1);
    turn : 0..1;
LTLSPEC G (turn = 0 -> F turn = 1)
MODULE worker(turn, id)
ASSIGN
  next(turn) := case turn = id : 1 - id; TRUE : turn; esac;
FAIRNESS running
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := prog.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.LTLSpecs) != 1 {
		t.Fatalf("want 1 LTL spec after flatten, got %d", len(flat.LTLSpecs))
	}
	var verdicts []bool
	for _, disj := range []bool{false, true} {
		p, err := CompileLTL(flat, flat.LTLSpecs[0].Formula, flat.LTLSpecs[0].Source)
		if err != nil {
			t.Fatal(err)
		}
		if p.S.NumDisjuncts() == 0 {
			t.Fatal("process product did not emit disjuncts")
		}
		p.S.EnableDisjunct(disj)
		ch := mc.New(p.S)
		holds, cex, err := p.Check(ch)
		if err != nil {
			t.Fatal(err)
		}
		if cex != nil {
			if err := p.ReplayCounterexample(cex); err != nil {
				t.Fatal(err)
			}
		}
		ch.Close()
		verdicts = append(verdicts, holds)
	}
	if verdicts[0] != verdicts[1] {
		t.Fatalf("conjunctive says %v, disjunctive says %v", verdicts[0], verdicts[1])
	}
	if !verdicts[0] {
		t.Fatal("G (turn = 0 -> F turn = 1) should hold under FAIRNESS running")
	}
}
