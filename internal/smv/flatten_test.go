package smv

import (
	"strings"
	"testing"
)

func TestFlattenSimpleInstance(t *testing.T) {
	c, err := CompileProgram(`
MODULE cell(inp)
VAR q : boolean;
ASSIGN
  init(q) := FALSE;
  next(q) := inp;
DEFINE changed := q != inp;

MODULE main
VAR x : boolean; c0 : cell(x);
ASSIGN init(x) := TRUE; next(x) := x;
SPEC AF c0.q
SPEC AG (c0.changed -> AX !c0.changed)
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
	if c.Vars["c0.q"] == nil {
		t.Fatal("instance variable c0.q missing")
	}
}

func TestFlattenNestedInstances(t *testing.T) {
	c, err := CompileProgram(`
MODULE bit(carryIn)
VAR v : boolean;
ASSIGN
  init(v) := FALSE;
  next(v) := v != carryIn;        -- xor
DEFINE carryOut := v & carryIn;

MODULE pair(tick)
VAR lo : bit(tick); hi : bit(lo.carryOut);

MODULE main
VAR p : pair(go); go : boolean;
ASSIGN next(go) := TRUE; init(go) := TRUE;
SPEC AG (p.lo.v & p.hi.v -> AX !p.lo.v)
SPEC EF (p.hi.v)
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Vars["p.lo.v"] == nil || c.Vars["p.hi.v"] == nil {
		t.Fatalf("nested instance variables missing: %v", c.Order)
	}
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v\n%s", r.Spec.Source, r.Holds, r.Err, c.TraceString(r.Trace))
		}
	}
}

func TestFlattenCounterChain(t *testing.T) {
	// two chained 2-bit counters: the second ticks when the first wraps.
	c, err := CompileProgram(`
MODULE counter(tick)
VAR n : 0..3;
ASSIGN
  init(n) := 0;
  next(n) := case tick : (n + 1) mod 4; TRUE : n; esac;
DEFINE wrap := tick & n = 3;

MODULE main
VAR c0 : counter(TRUE); c1 : counter(c0.wrap);
SPEC AG (c0.n = 3 & c1.n = 3 -> AX (c0.n = 0 & c1.n = 0))
SPEC AG AF c1.n = 2
SPEC AG (c1.n = 1 -> c1.n != 2)
`)
	if err != nil {
		t.Fatal(err)
	}
	reach, _ := c.S.Reachable()
	if got := c.S.CountStates(reach); got != 16 {
		t.Fatalf("chained counters reach %v states, want 16", got)
	}
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestFlattenSharedState(t *testing.T) {
	// two observers of the same variable through parameters
	c, err := CompileProgram(`
MODULE watcher(sig)
VAR seen : boolean;
ASSIGN
  init(seen) := FALSE;
  next(seen) := seen | sig;

MODULE main
VAR s : boolean; w1 : watcher(s); w2 : watcher(!s);
ASSIGN init(s) := FALSE; next(s) := {TRUE, FALSE};
SPEC AG (w1.seen & w2.seen -> AX (w1.seen & w2.seen))  -- latching
SPEC EF (w1.seen & w2.seen)
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestFlattenModuleFairness(t *testing.T) {
	// FAIRNESS declared inside a module applies to the instance.
	c, err := CompileProgram(`
MODULE flipper
VAR b : boolean;
ASSIGN next(b) := {TRUE, FALSE};
FAIRNESS b

MODULE main
VAR f : flipper;
SPEC AG AF f.b
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	if results[0].Err != nil || !results[0].Holds {
		t.Fatalf("module fairness not applied: %+v", results[0])
	}
}

func TestFlattenNextOfParameter(t *testing.T) {
	c, err := CompileProgram(`
MODULE follower(x)
VAR y : boolean;
ASSIGN init(y) := FALSE;
TRANS next(y) = next(x)

MODULE main
VAR a : boolean; f : follower(a);
ASSIGN init(a) := FALSE; next(a) := !a;
SPEC AG (f.y = a)
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	if results[0].Err != nil || !results[0].Holds {
		t.Fatalf("next(param) broken: %+v", results[0])
	}
}

func TestFlattenErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"unknown module", "MODULE main VAR x : ghost;"},
		{"recursion", "MODULE a VAR y : a; MODULE main VAR x : a;"},
		{"arity", "MODULE m(p) VAR v : boolean; MODULE main VAR x : m;"},
		{"main with params", "MODULE main(p) VAR x : boolean;"},
		{"spec in submodule", "MODULE m VAR v : boolean; SPEC AG v MODULE main VAR x : m;"},
		{"no main", "MODULE aux VAR v : boolean;"},
		{"dup module", "MODULE main VAR x : boolean; MODULE main VAR y : boolean;"},
		{"next of expr param", `
MODULE m(p)
VAR v : boolean;
TRANS next(v) = next(p)
MODULE main
VAR q : boolean; i : m(!q);`},
		{"select from expr param", `
MODULE m(p)
VAR v : boolean;
ASSIGN next(v) := p.q;
MODULE main
VAR q : boolean; i : m(!q);`},
	}
	for _, c := range bad {
		if _, err := CompileProgram(c.src); err == nil {
			t.Errorf("%s: should fail:\n%s", c.name, c.src)
		}
	}
}

func TestFlattenPreservesEnumLiterals(t *testing.T) {
	c, err := CompileProgram(`
MODULE proc
VAR st : {idle, busy};
ASSIGN
  init(st) := idle;
  next(st) := case st = idle : busy; TRUE : idle; esac;

MODULE main
VAR p : proc;
SPEC AG (p.st = idle -> AX p.st = busy)
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	if results[0].Err != nil || !results[0].Holds {
		t.Fatalf("enum literal handling broken: %+v", results[0])
	}
}

func TestFlattenDottedSpecAtoms(t *testing.T) {
	m, err := ParseModule(`
MODULE inner
VAR v : boolean;
MODULE main
VAR i : inner;
SPEC AG i.v
`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range m.Vars {
		if v.Name == "i.v" {
			found = true
		}
	}
	if !found {
		t.Fatalf("flat vars: %v", m.Vars)
	}
	if !strings.Contains(m.Specs[0].Formula.String(), "i.v") {
		t.Fatalf("spec atom lost: %s", m.Specs[0].Formula)
	}
}
