package smv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShippedModelsCompile compiles every .smv file in models/ and
// checks its SPECs, asserting the intended verdicts.
func TestShippedModelsCompile(t *testing.T) {
	dir := filepath.Join("..", "..", "models")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("models directory not found: %v", err)
	}
	// expected failing specs per model (by substring)
	wantFail := map[string][]string{
		"mutex.smv":     {"AG ! both"},
		"arbiter.smv":   {"AF served1"},
		"cache.smv":     {"AF c1.st = shared"},
		"seitz.smv":     {"AF ta1.out", "AF ta2.out"},
		"semaphore.smv": {"AF p1.in_cs"},
		"ring.smv":      {"AG ! st1.in_cs"},
		// the counterexample to AG !goal is the 31-move solution plan
		"hanoi.smv": {"AG ! goal"},
		// the counterexample to AF caught is the evader's escape lasso
		"chase.smv": {"AF caught"},
	}
	count := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".smv") {
			continue
		}
		count++
		src, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		c, err := CompileSource(string(src))
		if err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		results, _ := c.CheckAll()
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: SPEC %s: %v", ent.Name(), r.Spec.Source, r.Err)
			}
			shouldFail := false
			for _, sub := range wantFail[ent.Name()] {
				if strings.Contains(r.Spec.Source, sub) {
					shouldFail = true
				}
			}
			if r.Holds == shouldFail {
				t.Errorf("%s: SPEC %s: holds=%v, want %v", ent.Name(), r.Spec.Source, r.Holds, !shouldFail)
			}
			if !r.Holds && r.Trace == nil {
				t.Errorf("%s: failing SPEC without a trace", ent.Name())
			}
		}
	}
	if count == 0 {
		t.Fatal("no .smv models found")
	}
}

// TestSeitzModelMatchesCircuitPipeline cross-checks the two independent
// arbiter encodings: the SMV-language model (models/seitz.smv) and the
// gate-netlist compiler (internal/circuit) must produce the same
// reachable-state count and the same fairness-constraint count.
func TestSeitzModelMatchesCircuitPipeline(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "models", "seitz.smv"))
	if err != nil {
		t.Skipf("seitz.smv not found: %v", err)
	}
	c, err := CompileSource(string(src))
	if err != nil {
		t.Fatal(err)
	}
	reach, _ := c.S.Reachable()
	got := c.S.CountStates(reach)
	// the circuit pipeline's count, asserted in internal/circuit's tests
	const want = 12288
	if got != want {
		t.Fatalf("SMV-language arbiter reaches %.0f states, circuit pipeline reaches %d", got, want)
	}
	if len(c.S.Fair) != 12 {
		t.Fatalf("expected 12 per-gate fairness constraints, got %d", len(c.S.Fair))
	}
}
