// Package smv implements a compiler for an SMV-like modeling language —
// the input language of the model checker the paper describes — onto the
// symbolic Kripke structures of internal/kripke.
//
// The supported subset covers the models in the paper's experiments:
//
//	MODULE main
//	VAR   x : boolean;  st : {idle, busy};  n : 0..7;
//	ASSIGN
//	  init(x) := FALSE;
//	  next(x) := case cond1 : expr1; TRUE : expr2; esac;
//	  next(st) := {idle, busy};        -- nondeterministic choice
//	DEFINE ready := st = idle & !x;
//	INIT  expr        TRANS expr       INVAR expr
//	FAIRNESS expr
//	SPEC  AG (req -> AF ack)
//
// Expressions include boolean connectives, (in)equalities, ordering and
// modular arithmetic on range variables, case/esac, and set literals in
// assignment right-hand sides. SPEC formulas use the CTL syntax of
// internal/ctl; DEFINE names act as atomic propositions there.
package smv

import "fmt"

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tSemi
	tColon
	tComma
	tAssign // :=
	tDotDot // ..
	tNot
	tAnd
	tOr
	tImp
	tIff
	tEq
	tNeq
	tLt
	tLe
	tGt
	tGe
	tPlus
	tMinus
	tStar
	tSlash
	tMod   // produced by the parser from the identifier "mod"
	tIn    // produced by the parser from the identifier "in"
	tUnion // produced by the parser from the identifier "union"
)

var tokNames = map[tokKind]string{
	tEOF: "end of input", tIdent: "identifier", tNumber: "number",
	tLParen: "'('", tRParen: "')'", tLBrace: "'{'", tRBrace: "'}'",
	tLBracket: "'['", tRBracket: "']'",
	tSemi: "';'", tColon: "':'", tComma: "','", tAssign: "':='",
	tDotDot: "'..'", tNot: "'!'", tAnd: "'&'", tOr: "'|'", tImp: "'->'",
	tIff: "'<->'", tEq: "'='", tNeq: "'!='", tLt: "'<'", tLe: "'<='",
	tGt: "'>'", tGe: "'>='", tPlus: "'+'", tMinus: "'-'", tStar: "'*'",
	tSlash: "'/'",
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tIdent || t.kind == tNumber {
		return fmt.Sprintf("%q", t.text)
	}
	return tokNames[t.kind]
}

// Error is a parse or compile error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("smv: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return "smv: " + e.Msg
}

func errAt(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}
