package smv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzSMVLex asserts the lexer's safety contract on arbitrary input: it
// never panics, and for every input it accepts, the token stream is
// stable under re-lexing — joining the accepted tokens' texts with
// spaces and lexing again yields the same kinds and texts (comments and
// whitespace are the only things lexing may discard). The parser is
// also driven over accepted inputs purely as a panic probe.
func FuzzSMVLex(f *testing.F) {
	matches, _ := filepath.Glob(filepath.Join("..", "..", "models", "*.smv"))
	for _, path := range matches {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
	}
	f.Add("MODULE main VAR x : boolean; ASSIGN init(x) := FALSE; next(x) := !x;")
	f.Add("-- comment only\n")
	f.Add("a <-> b .. 1..5 := != <= >=")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		toks, err := lex(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		var b strings.Builder
		for _, tk := range toks {
			b.WriteString(tk.text)
			b.WriteByte(' ')
		}
		again, err := lex(b.String())
		if err != nil {
			t.Fatalf("accepted source but rejected its own token join: %v", err)
		}
		if len(again) != len(toks) {
			t.Fatalf("re-lex token count changed: %d -> %d", len(toks), len(again))
		}
		for i := range toks {
			if toks[i].kind != again[i].kind || toks[i].text != again[i].text {
				t.Fatalf("token %d changed under re-lex: %v/%q -> %v/%q",
					i, toks[i].kind, toks[i].text, again[i].kind, again[i].text)
			}
		}
		// The parser must not panic on any lexable input (errors are fine).
		ParseModule(src) //nolint:errcheck
	})
}
