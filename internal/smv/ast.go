package smv

import (
	"fmt"
	"strings"

	"repro/internal/ctl"
	"repro/internal/ltl"
)

// Module is one parsed MODULE (main or a parameterized submodule).
type Module struct {
	Name     string
	Params   []string
	Vars     []*VarDecl
	Assigns  []*Assign
	Defines  []*Define
	Inits    []Expr // INIT sections
	Trans    []Expr // TRANS sections (may mention next(v))
	Invars   []Expr // INVAR sections
	Fairness []Expr // FAIRNESS sections
	Specs    []*Spec
	LTLSpecs []*LTLSpec

	// Processes lists the process instance paths of a flattened program
	// (empty for synchronous models). When non-empty the compiler emits a
	// disjunctive transition component per scheduler value alongside the
	// conjunctive clusters.
	Processes []string
}

// VarDecl declares one state variable.
type VarDecl struct {
	Name string
	Type *Type
	line int
}

// TypeKind discriminates variable types.
type TypeKind int

const (
	TypeBool TypeKind = iota
	TypeEnum
	TypeRange
	TypeInstance // a submodule instantiation, eliminated by Flatten
)

// Type is a variable's domain (or, before flattening, a module
// instantiation).
type Type struct {
	Kind      TypeKind
	Enum      []string // TypeEnum
	Lo, Hi    int      // TypeRange
	Module    string   // TypeInstance
	Args      []Expr   // TypeInstance
	IsProcess bool     // TypeInstance declared with the process keyword
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeBool:
		return "boolean"
	case TypeEnum:
		return "{" + strings.Join(t.Enum, ", ") + "}"
	case TypeInstance:
		return t.Module + "(...)"
	default:
		return fmt.Sprintf("%d..%d", t.Lo, t.Hi)
	}
}

// NumValues returns the domain size.
func (t *Type) NumValues() int {
	switch t.Kind {
	case TypeBool:
		return 2
	case TypeEnum:
		return len(t.Enum)
	default:
		return t.Hi - t.Lo + 1
	}
}

// AssignKind distinguishes init(v) := e from next(v) := e.
type AssignKind int

const (
	AssignInit AssignKind = iota
	AssignNext
)

// Assign is one ASSIGN clause.
type Assign struct {
	Kind AssignKind
	Var  string
	RHS  Expr
	line int
}

// Define is a DEFINE clause: a named expression macro.
type Define struct {
	Name string
	Body Expr
	line int
}

// Spec is a CTL specification with its source text.
type Spec struct {
	Source  string
	Formula *ctl.Formula
	line    int
}

// LTLSpec is an LTLSPEC declaration with its source text.
type LTLSpec struct {
	Source  string
	Formula *ltl.Formula
	line    int
}

// Expr is an SMV expression node.
type Expr interface {
	exprNode()
	String() string
}

// Ident references a variable, DEFINE or enum literal.
type Ident struct {
	Name string
	tok  token
}

// Num is an integer literal.
type Num struct {
	Val int
	tok token
}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Val bool
	tok token
}

// NextRef is next(v), allowed in TRANS expressions.
type NextRef struct {
	Name string
	tok  token
}

// Unary is !e or -e.
type Unary struct {
	Op  tokKind
	X   Expr
	tok token
}

// Binary is a binary operator application.
type Binary struct {
	Op   tokKind
	L, R Expr
	tok  token
}

// SetLit is {e1, e2, ...}: a nondeterministic choice.
type SetLit struct {
	Elems []Expr
	tok   token
}

// CaseExpr is case c1 : e1; ...; esac.
type CaseExpr struct {
	Conds []Expr
	Vals  []Expr
	tok   token
}

func (*Ident) exprNode()    {}
func (*Num) exprNode()      {}
func (*BoolLit) exprNode()  {}
func (*NextRef) exprNode()  {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*SetLit) exprNode()   {}
func (*CaseExpr) exprNode() {}

func (e *Ident) String() string { return e.Name }
func (e *Num) String() string   { return fmt.Sprintf("%d", e.Val) }
func (e *BoolLit) String() string {
	if e.Val {
		return "TRUE"
	}
	return "FALSE"
}
func (e *NextRef) String() string { return "next(" + e.Name + ")" }
func (e *Unary) String() string   { return tokOpName(e.Op) + "(" + e.X.String() + ")" }
func (e *Binary) String() string {
	return "(" + e.L.String() + " " + tokOpName(e.Op) + " " + e.R.String() + ")"
}
func (e *SetLit) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (e *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("case ")
	for i := range e.Conds {
		sb.WriteString(e.Conds[i].String())
		sb.WriteString(" : ")
		sb.WriteString(e.Vals[i].String())
		sb.WriteString("; ")
	}
	sb.WriteString("esac")
	return sb.String()
}

func tokOpName(k tokKind) string {
	switch k {
	case tNot:
		return "!"
	case tAnd:
		return "&"
	case tOr:
		return "|"
	case tImp:
		return "->"
	case tIff:
		return "<->"
	case tEq:
		return "="
	case tNeq:
		return "!="
	case tLt:
		return "<"
	case tLe:
		return "<="
	case tGt:
		return ">"
	case tGe:
		return ">="
	case tPlus:
		return "+"
	case tMinus:
		return "-"
	case tStar:
		return "*"
	case tSlash:
		return "/"
	case tMod:
		return "mod"
	case tIn:
		return "in"
	case tUnion:
		return "union"
	}
	return "?"
}
