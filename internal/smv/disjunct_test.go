package smv

import (
	"testing"

	"repro/internal/bdd"
)

const sharedCounterSrc = `
MODULE incrementer(shared)
VAR mine : boolean;
ASSIGN
  init(mine) := FALSE;
  next(mine) := !mine;
  next(shared) := !shared;

MODULE main
VAR
  p : process incrementer(g);
  q : process incrementer(g);
  g : boolean;
ASSIGN
  init(g) := FALSE;
SPEC EF (p.mine & q.mine)
SPEC AG (g | !g)
SPEC EF g
`

// TestProcessEmitsDisjuncts: a flattened process model installs one
// disjunctive component per scheduler value (synchronous core + one per
// process), named after the scheduler's enum, and their union is
// exactly the monolithic transition relation.
func TestProcessEmitsDisjuncts(t *testing.T) {
	c, err := CompileProgram(sharedCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	d := c.S.Disjunct()
	if d == nil {
		t.Fatal("process model must install disjunctive components")
	}
	if got := c.S.NumDisjuncts(); got != 3 {
		t.Fatalf("want 3 components (main, p, q), got %d", got)
	}
	names := d.ComponentNames()
	want := []string{"main", "p", "q"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("component names = %v, want %v", names, want)
		}
	}
	m := c.S.M
	union := bdd.False
	for _, comp := range d.Components() {
		union = m.Or(union, comp)
	}
	if union != c.S.Trans() {
		t.Fatal("union of disjunctive components differs from the monolithic relation")
	}
	if c.S.DisjunctEnabled() {
		t.Fatal("disjunctive path must start disabled")
	}
}

// TestSynchronousModelEmitsNoDisjuncts: models without processes get no
// disjunctive partition.
func TestSynchronousModelEmitsNoDisjuncts(t *testing.T) {
	c, err := CompileSource(`
MODULE main
VAR x : boolean; y : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := !x;
  next(y) := x;
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.S.NumDisjuncts() != 0 {
		t.Fatal("synchronous model must not install disjuncts")
	}
}

// TestDisjunctCheckAllAgrees: verdicts under the disjunctive image match
// the conjunctive default, sequentially and with workers.
func TestDisjunctCheckAllAgrees(t *testing.T) {
	ref, err := CompileProgram(sharedCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	refResults, _ := ref.CheckAll()

	for _, workers := range []int{1, 3} {
		c, err := CompileProgram(sharedCounterSrc)
		if err != nil {
			t.Fatal(err)
		}
		c.S.EnableDisjunct(true)
		c.S.SetWorkers(workers)
		results, _ := c.CheckAll()
		if len(results) != len(refResults) {
			t.Fatalf("workers=%d: result count differs", workers)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, r.Spec.Source, r.Err)
			}
			if r.Holds != refResults[i].Holds {
				t.Fatalf("workers=%d: %s: disjunctive verdict %v, conjunctive %v",
					workers, r.Spec.Source, r.Holds, refResults[i].Holds)
			}
		}
		if c.S.RelStats().DisjunctSteps == 0 {
			t.Fatalf("workers=%d: disjunctive image never ran", workers)
		}
	}
}
