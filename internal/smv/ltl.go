package smv

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/explicit"
	"repro/internal/ltl"
	"repro/internal/mc"
)

// ltlAttachment carries a tableau through compile (see compile.go): the
// compile engine fills in the reserved state-variable indices and the
// attached symbolic form.
type ltlAttachment struct {
	tab      *ltl.Tableau
	elemVars []int         // indices into S.Vars reserved for the tableau
	attached *ltl.Attached // filled after atom registration
}

// LTLProduct is a module compiled in product with the Büchi tableau of
// a specification's negation. The underlying Compiled is a normal
// symbolic structure — its conjunctive partition (and, for process
// models, its disjunctive partition) simply contains extra clusters for
// the tableau promise variables, and its fairness constraints include
// the generalized-Büchi sets — so reordering, partitioned image
// computation, and disjunctive evaluation all apply unchanged.
//
// M ⊨ Spec iff the fair product is empty from Init ∧ Accept; a
// nonempty product yields a fair lasso whose model projection violates
// Spec (paper Section 6: the counterexample generator doubles as a
// witness generator for the tableau product).
type LTLProduct struct {
	*Compiled
	Spec     *ltl.Formula
	Source   string       // original LTLSPEC text
	Tableau  *ltl.Tableau // tableau of ¬Spec
	Accept   bdd.Ref      // sat(¬Spec): candidate initial product states
	ElemVars []int        // indices into S.Vars of the tableau variables
}

// ResolveLTLAtoms verifies that all atoms of an LTL formula name
// declared variables or DEFINEs of the module.
func resolveLTLAtoms(m *Module, f *ltl.Formula) error {
	names := map[string]bool{}
	for _, vd := range m.Vars {
		names[vd.Name] = true
	}
	for _, d := range m.Defines {
		names[d.Name] = true
	}
	for _, a := range ltl.Atoms(f) {
		if !names[a] {
			return fmt.Errorf("smv: LTLSPEC mentions unknown identifier %q", a)
		}
	}
	return nil
}

// ResolveLTLAtoms verifies that all atoms of an LTL formula resolve
// against this compiled module (returns the first error, if any).
func (c *Compiled) ResolveLTLAtoms(f *ltl.Formula) error {
	for _, a := range ltl.Atoms(f) {
		if c.Vars[a] == nil && c.defines[a] == nil {
			return fmt.Errorf("smv: LTLSPEC mentions unknown identifier %q", a)
		}
	}
	return nil
}

// CompileLTL compiles the module in product with the tableau of
// ¬spec. Each product owns a fresh BDD manager, so per-check settings
// (reordering, disjunctive evaluation, workers) are configured on the
// returned product's structure exactly as for a plain Compiled.
func CompileLTL(m *Module, spec *ltl.Formula, source string) (*LTLProduct, error) {
	return CompileLTLWith(m, spec, source, CompileOptions{})
}

// CompileLTLWith is CompileLTL with explicit engine options.
func CompileLTLWith(m *Module, spec *ltl.Formula, source string, opts CompileOptions) (*LTLProduct, error) {
	if err := resolveLTLAtoms(m, spec); err != nil {
		return nil, err
	}
	la := &ltlAttachment{tab: ltl.Translate(spec)}
	c, err := compile(m, la, opts)
	if err != nil {
		return nil, err
	}
	p := &LTLProduct{
		Compiled: c,
		Spec:     spec,
		Source:   source,
		Tableau:  la.tab,
		Accept:   la.attached.Accept,
		ElemVars: la.elemVars,
	}
	// Accept must survive GC and follow dynamic reordering.
	c.S.M.RegisterRefs(&p.Accept)
	return p, nil
}

// CompileLTLSource parses module source and compiles the product with
// one ad-hoc LTL specification (convenience for tests and cmd/smv
// -ltl).
func CompileLTLSource(src, spec string) (*LTLProduct, error) {
	return CompileLTLSourceWith(src, spec, CompileOptions{})
}

// CompileLTLSourceWith is CompileLTLSource with explicit engine options.
func CompileLTLSourceWith(src, spec string, opts CompileOptions) (*LTLProduct, error) {
	m, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	f, err := ltl.Parse(spec)
	if err != nil {
		return nil, err
	}
	return CompileLTLWith(m, f, spec, opts)
}

// Check decides M ⊨ Spec as emptiness of the fair product, using a
// checker bound to the product's structure. On violation it extracts a
// fair lasso through the ring-walk generator; the trace is over product
// states (model bits first, tableau bits last).
func (p *LTLProduct) Check(ch *mc.Checker) (holds bool, cex *core.Trace, err error) {
	empty, start := ch.FairEmptiness(p.Accept)
	if empty {
		return true, nil, nil
	}
	gen := core.NewGenerator(ch)
	tr, err := gen.WitnessEG(bdd.True, start)
	if err != nil {
		return false, nil, err
	}
	if !tr.IsLasso() {
		return false, nil, fmt.Errorf("smv: LTL counterexample is not a lasso")
	}
	return false, tr, nil
}

// ReplayCounterexample replays the model projection of a product lasso
// against the LTL semantics of the original specification and errors
// unless the induced path falsifies it. This is the independent check
// that the tableau product, the fair fixpoint, and the ring-walk
// generator together produced a genuine counterexample.
func (p *LTLProduct) ReplayCounterexample(tr *core.Trace) error {
	if !tr.IsLasso() {
		return fmt.Errorf("smv: replay requires a lasso trace")
	}
	atom := ltl.AtomResolver(p.S)
	holds, err := explicit.EvalLasso(p.Spec, len(tr.States), tr.CycleStart,
		func(pos int, lit *ltl.Formula) (bool, error) {
			set, err := atom(lit)
			if err != nil {
				return false, err
			}
			return p.S.Holds(set, tr.States[pos]), nil
		})
	if err != nil {
		return err
	}
	if holds {
		return fmt.Errorf("smv: counterexample path satisfies %s", p.Spec)
	}
	return nil
}

// FormatLassoByVars renders a product lasso over the declared model
// variables (tableau bits are internal and hidden), marking the cycle
// start.
func (p *LTLProduct) FormatLassoByVars(tr *core.Trace) string {
	out := ""
	for i, st := range tr.States {
		mark := "  "
		if i == tr.CycleStart {
			mark = "↻ "
		}
		out += fmt.Sprintf("%s%2d: %s\n", mark, i, p.FormatStateByVars(st))
	}
	return out
}

// CheckLTLSpec is the one-call path used by tests and validation
// harnesses: compile the product, run the emptiness check, replay any
// counterexample, and release the checker. The returned trace (if any)
// remains decodable through the returned product.
func CheckLTLSpec(m *Module, spec *ltl.Formula, source string) (holds bool, p *LTLProduct, cex *core.Trace, err error) {
	p, err = CompileLTL(m, spec, source)
	if err != nil {
		return false, nil, nil, err
	}
	ch := mc.New(p.S)
	defer ch.Close()
	holds, cex, err = p.Check(ch)
	if err != nil {
		return false, nil, nil, err
	}
	if cex != nil {
		if err := p.ReplayCounterexample(cex); err != nil {
			return false, nil, nil, err
		}
	}
	return holds, p, cex, nil
}
