package smv

import (
	"strings"
	"testing"

	"repro/internal/ctl"
	"repro/internal/kripke"
)

func compileOK(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                  // no module
		"MODULE other VAR x : boolean;",     // wrong name
		"MODULE main",                       // no vars
		"MODULE main VAR x : boolean",       // missing semicolon
		"MODULE main VAR x : 5..3;",         // empty range
		"MODULE main VAR x : boolean; SPEC", // empty spec
		"MODULE main VAR x : boolean; ASSIGN foo(x) := TRUE;",
		"MODULE main VAR x : boolean; ASSIGN init(x) := case esac;",
		"MODULE main MODULE aux",
	}
	for _, src := range bad {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("ParseModule(%q) should fail", src)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"dup var", "MODULE main VAR x : boolean; x : boolean;"},
		{"dup assign", "MODULE main VAR x : boolean; ASSIGN init(x) := TRUE; init(x) := FALSE;"},
		{"undeclared", "MODULE main VAR x : boolean; ASSIGN init(y) := TRUE;"},
		{"out of domain", "MODULE main VAR n : 0..3; ASSIGN next(n) := n + 1;"},
		{"next in init section", "MODULE main VAR x : boolean; INIT next(x);"},
		{"cyclic define", "MODULE main VAR x : boolean; DEFINE a := b; b := a;"},
		{"bool arith", "MODULE main VAR x : boolean; n : 0..3; ASSIGN next(n) := n + x;"},
		{"set compare", "MODULE main VAR n : 0..3; INIT {1,2} = n;"},
		{"div by zero", "MODULE main VAR n : 0..3; INIT n / 0 = 1;"},
		{"order on enum", "MODULE main VAR s : {a, b}; INIT s < b;"},
	}
	for _, c := range bad {
		if _, err := CompileSource(c.src); err == nil {
			t.Errorf("%s: should fail to compile:\n%s", c.name, c.src)
		}
	}
}

func TestBooleanToggle(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR x : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := !x;
SPEC AG (x -> AX !x)
SPEC AG AF x
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Source, r.Err)
		}
		if !r.Holds {
			t.Fatalf("%s should hold\n%s", r.Spec.Source, c.TraceString(r.Trace))
		}
	}
}

func TestEnumAndCase(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR
  st : {idle, busy, done};
  req : boolean;
ASSIGN
  init(st) := idle;
  next(st) := case
    st = idle & req : busy;
    st = busy : done;
    st = done : idle;
    TRUE : idle;
  esac;
DEFINE working := st = busy;
SPEC AG (working -> AX st = done)
SPEC AG (st = done -> AX st = idle)
SPEC AG EF st = idle
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v\n%s", r.Spec.Source, r.Holds, r.Err, c.TraceString(r.Trace))
		}
	}
}

func TestRangeArithmetic(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR n : 0..7;
ASSIGN
  init(n) := 0;
  next(n) := (n + 1) mod 8;
SPEC AG (n = 7 -> AX n = 0)
SPEC AG (n = 3 -> AX n = 4)
SPEC AG AF n = 5
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
	// 8 reachable states
	reach, _ := c.S.Reachable()
	if got := c.S.CountStates(reach); got != 8 {
		t.Fatalf("reachable = %v, want 8", got)
	}
}

func TestNondeterministicSet(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR st : {a, b, c};
ASSIGN
  init(st) := a;
  next(st) := case
    st = a : {b, c};
    TRUE : a;
  esac;
SPEC EX st = b
SPEC EX st = c
SPEC AX (st = b | st = c)
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestUnassignedVariablesAreFree(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR x : boolean; inp : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := inp;
SPEC EF x
SPEC AG (inp = 1 -> AX x)
SPEC AG (inp = 0 -> AX !x)
SPEC AG (EX inp | EX !inp)
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestInitTransInvarSections(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR n : 0..3;
INIT n = 0
TRANS next(n) = (n + 1) mod 4 | next(n) = n
INVAR n != 3
SPEC AG n != 3
SPEC EF n = 2
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
	// INVAR must exclude n=3 from reachable states.
	reach, _ := c.S.Reachable()
	if got := c.S.CountStates(reach); got != 3 {
		t.Fatalf("reachable = %v, want 3", got)
	}
}

func TestFairnessSection(t *testing.T) {
	// x may stay or flip; fairness forces x to be true infinitely often.
	c := compileOK(t, `
MODULE main
VAR x : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := {TRUE, FALSE};
FAIRNESS x
SPEC AG AF x
`)
	results, _ := c.CheckAll()
	if !results[0].Holds || results[0].Err != nil {
		t.Fatalf("AG AF x should hold under FAIRNESS x: %+v", results[0])
	}
	// without fairness it must fail
	c2 := compileOK(t, `
MODULE main
VAR x : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := {TRUE, FALSE};
SPEC AG AF x
`)
	results2, _ := c2.CheckAll()
	if results2[0].Holds {
		t.Fatal("AG AF x must fail without fairness")
	}
	if results2[0].Trace == nil || !results2[0].Trace.IsLasso() {
		t.Fatal("counterexample lasso expected")
	}
}

func TestCounterexampleDecoding(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR st : {ok, bad};
ASSIGN
  init(st) := ok;
  next(st) := case
    st = ok : {ok, bad};
    TRUE : bad;
  esac;
SPEC AG st = ok
`)
	results, _ := c.CheckAll()
	r := results[0]
	if r.Holds || r.Trace == nil {
		t.Fatal("spec must fail with a trace")
	}
	out := c.TraceString(r.Trace)
	if !strings.Contains(out, "st=ok") || !strings.Contains(out, "st=bad") {
		t.Fatalf("trace not decoded by variable:\n%s", out)
	}
	// final state of the trace must violate st = ok
	last := r.Trace.Last()
	if c.StateValue(last, "st").S != "bad" {
		t.Fatalf("counterexample does not end in a bad state:\n%s", out)
	}
}

func TestDefineAsSpecAtom(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR n : 0..3;
ASSIGN
  init(n) := 0;
  next(n) := (n + 1) mod 4;
DEFINE small := n < 2;
SPEC AG (small -> AX AX !small)
SPEC AG (n = 0 -> small)
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestValuedDefineEqAtom(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR n : 0..3;
ASSIGN
  init(n) := 0;
  next(n) := (n + 1) mod 4;
DEFINE m := (n + 2) mod 4;
SPEC AG (n = 0 -> m = 2)
`)
	results, _ := c.CheckAll()
	if results[0].Err != nil || !results[0].Holds {
		t.Fatalf("valued DEFINE atom: %+v", results[0])
	}
}

func TestSpecUnknownAtom(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR x : boolean;
SPEC AG ghost
`)
	results, _ := c.CheckAll()
	if results[0].Err == nil {
		t.Fatal("unknown SPEC atom must error")
	}
}

func TestComments(t *testing.T) {
	compileOK(t, `
MODULE main -- the module
VAR x : boolean; -- a variable
-- full line comment
ASSIGN init(x) := TRUE; -- set it
`)
}

func TestStateValueDecoding(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR st : {a, b, c}; n : 2..5; x : boolean;
ASSIGN init(st) := b; init(n) := 4; init(x) := TRUE;
`)
	st := c.S.PickState(c.S.Init)
	if st == nil {
		t.Fatal("no initial state")
	}
	if got := c.StateValue(st, "st"); got.S != "b" {
		t.Fatalf("st decodes to %s", got)
	}
	if got := c.StateValue(st, "n"); got.I != 4 {
		t.Fatalf("n decodes to %s", got)
	}
	if got := c.StateValue(st, "x"); !got.B {
		t.Fatalf("x decodes to %s", got)
	}
	_ = kripke.State(nil)
}

func TestDomainValidityInvariant(t *testing.T) {
	// 3-valued enum needs 2 bits; the 4th encoding must be excluded.
	c := compileOK(t, `
MODULE main
VAR st : {a, b, c};
ASSIGN next(st) := st;
`)
	reach, _ := c.S.Reachable()
	if got := c.S.CountStates(reach); got != 3 {
		t.Fatalf("reachable = %v, want 3 (validity invariant broken)", got)
	}
	if !c.S.IsTotal() {
		t.Fatal("model must be total")
	}
}

func TestMustParseModulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseModule should panic on bad input")
		}
	}()
	MustParseModule("garbage")
}

func TestCheckSpecDirect(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR x : boolean;
ASSIGN init(x) := FALSE; next(x) := TRUE;
`)
	holds, _, err := c.CheckSpec(ctl.MustParse("AF x"))
	if err != nil || !holds {
		t.Fatalf("AF x: %v %v", holds, err)
	}
	holds, tr, err := c.CheckSpec(ctl.MustParse("AG !x"))
	if err != nil || holds || tr == nil {
		t.Fatalf("AG !x should fail with trace: %v %v %v", holds, tr, err)
	}
}

func TestInOperator(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR st : {idle, busy, done}; n : 0..7;
ASSIGN
  init(st) := idle;
  next(st) := case
    st = idle : busy;
    st = busy : done;
    TRUE      : idle;
  esac;
  init(n) := 0;
  next(n) := (n + 1) mod 8;
DEFINE active := st in {busy, done};
DEFINE low := n in {0, 1, 2, 3};
SPEC AG (st = busy -> active)
SPEC AG (st = idle -> !active)
SPEC AG (n = 2 -> low)
SPEC AG (n = 5 -> !low)
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestUnionOperator(t *testing.T) {
	c := compileOK(t, `
MODULE main
VAR n : 0..7;
ASSIGN
  init(n) := 0;
  next(n) := {0} union {(n + 1) mod 8} union {n};
SPEC AG (n = 3 -> EX n = 4)
SPEC AG EX n = 0
SPEC AG (n = 3 -> EX n = 3)
SPEC AG (n = 3 -> !EX n = 6)
`)
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestInWithSetOnLeftFails(t *testing.T) {
	if _, err := CompileSource(`
MODULE main
VAR n : 0..3;
INIT {1,2} in {1,2,3}
`); err == nil {
		t.Fatal("set on the left of 'in' must fail")
	}
}
