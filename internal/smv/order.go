package smv

// Netlist-aware static variable ordering. BDD sizes for sequential
// circuits depend heavily on the initial order; the SMV lineage derives
// a decent one from the model text before any dynamic reordering runs:
// variables whose transition functions read each other are placed next
// to each other, and (after flattening) each submodule instance comes
// out contiguous, ordered by its dependencies. The current/next copies
// of every variable are interleaved by kripke.NewSymbolic, so only the
// per-variable sequence is chosen here.

// staticOrder returns the declared variables in allocation order: a
// post-order DFS over the assignment dependency graph, with DEFINEs
// expanded, so each variable lands right after the variables its
// transition function reads. Declaration order is the DFS seed order
// and the fallback for variables with no assignments.
func staticOrder(m *Module) []string {
	declared := map[string]bool{}
	for _, vd := range m.Vars {
		declared[vd.Name] = true
	}
	defines := map[string]*Define{}
	for _, d := range m.Defines {
		defines[d.Name] = d
	}

	// deps[v]: declared variables read by v's assignments, in
	// first-occurrence order.
	deps := map[string][]string{}
	for _, a := range m.Assigns {
		seen := map[string]bool{}
		for _, d := range deps[a.Var] {
			seen[d] = true
		}
		list := deps[a.Var]
		collectVars(a.RHS, declared, defines, map[string]bool{}, seen, &list)
		deps[a.Var] = list
	}

	order := make([]string, 0, len(m.Vars))
	visited := map[string]bool{}
	var visit func(v string)
	visit = func(v string) {
		if visited[v] {
			return
		}
		visited[v] = true
		for _, d := range deps[v] {
			visit(d)
		}
		order = append(order, v)
	}
	for _, vd := range m.Vars {
		visit(vd.Name)
	}
	return order
}

// collectVars appends the declared variables mentioned in e to *out in
// first-occurrence order, expanding DEFINE references. busy cuts DEFINE
// cycles (evaluation reports those as errors later); seen deduplicates
// across calls.
func collectVars(e Expr, declared map[string]bool, defines map[string]*Define, busy, seen map[string]bool, out *[]string) {
	switch x := e.(type) {
	case *Ident:
		if declared[x.Name] {
			if !seen[x.Name] {
				seen[x.Name] = true
				*out = append(*out, x.Name)
			}
			return
		}
		if d := defines[x.Name]; d != nil && !busy[x.Name] {
			busy[x.Name] = true
			collectVars(d.Body, declared, defines, busy, seen, out)
			busy[x.Name] = false
		}
	case *NextRef:
		if declared[x.Name] && !seen[x.Name] {
			seen[x.Name] = true
			*out = append(*out, x.Name)
		}
	case *Unary:
		collectVars(x.X, declared, defines, busy, seen, out)
	case *Binary:
		collectVars(x.L, declared, defines, busy, seen, out)
		collectVars(x.R, declared, defines, busy, seen, out)
	case *SetLit:
		for _, el := range x.Elems {
			collectVars(el, declared, defines, busy, seen, out)
		}
	case *CaseExpr:
		for i := range x.Conds {
			collectVars(x.Conds[i], declared, defines, busy, seen, out)
			collectVars(x.Vals[i], declared, defines, busy, seen, out)
		}
	}
}
