package smv

import (
	"fmt"
	"unicode"
)

// lex tokenizes SMV source. Comments run from "--" to end of line.
func lex(src string) ([]token, error) {
	runes := []rune(src)
	var toks []token
	line, col := 1, 1
	pos := 0

	advance := func() {
		if runes[pos] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		pos++
	}
	peek := func(off int) rune {
		if pos+off >= len(runes) {
			return 0
		}
		return runes[pos+off]
	}
	emit := func(k tokKind, text string, l, c int) {
		toks = append(toks, token{kind: k, text: text, line: l, col: c})
	}

	for pos < len(runes) {
		c := runes[pos]
		switch {
		case unicode.IsSpace(c):
			advance()
		case c == '-' && peek(1) == '-':
			for pos < len(runes) && runes[pos] != '\n' {
				advance()
			}
		case unicode.IsLetter(c) || c == '_':
			l0, c0 := line, col
			start := pos
			for pos < len(runes) && (unicode.IsLetter(runes[pos]) || unicode.IsDigit(runes[pos]) ||
				runes[pos] == '_' || runes[pos] == '.') {
				// ".." is a token, not part of an identifier
				if runes[pos] == '.' && peek(1) == '.' {
					break
				}
				advance()
			}
			emit(tIdent, string(runes[start:pos]), l0, c0)
		case unicode.IsDigit(c):
			l0, c0 := line, col
			start := pos
			for pos < len(runes) && unicode.IsDigit(runes[pos]) {
				advance()
			}
			emit(tNumber, string(runes[start:pos]), l0, c0)
		default:
			l0, c0 := line, col
			two := string(c) + string(peek(1))
			three := two + string(peek(2))
			switch {
			case three == "<->":
				advance()
				advance()
				advance()
				emit(tIff, three, l0, c0)
			case two == ":=":
				advance()
				advance()
				emit(tAssign, two, l0, c0)
			case two == "..":
				advance()
				advance()
				emit(tDotDot, two, l0, c0)
			case two == "->":
				advance()
				advance()
				emit(tImp, two, l0, c0)
			case two == "!=":
				advance()
				advance()
				emit(tNeq, two, l0, c0)
			case two == "<=":
				advance()
				advance()
				emit(tLe, two, l0, c0)
			case two == ">=":
				advance()
				advance()
				emit(tGe, two, l0, c0)
			default:
				var k tokKind
				switch c {
				case '(':
					k = tLParen
				case ')':
					k = tRParen
				case '{':
					k = tLBrace
				case '}':
					k = tRBrace
				case '[':
					k = tLBracket
				case ']':
					k = tRBracket
				case ';':
					k = tSemi
				case ':':
					k = tColon
				case ',':
					k = tComma
				case '!':
					k = tNot
				case '&':
					k = tAnd
				case '|':
					k = tOr
				case '=':
					k = tEq
				case '<':
					k = tLt
				case '>':
					k = tGt
				case '+':
					k = tPlus
				case '-':
					k = tMinus
				case '*':
					k = tStar
				case '/':
					k = tSlash
				default:
					return nil, &Error{Line: l0, Col: c0, Msg: fmt.Sprintf("unexpected character %q", c)}
				}
				advance()
				emit(k, string(c), l0, c0)
			}
		}
	}
	emit(tEOF, "", line, col)
	return toks, nil
}
