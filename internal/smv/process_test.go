package smv

import "testing"

// TestProcessInterleaving: two process counters sharing nothing; with
// interleaving, exactly one advances per step.
func TestProcessInterleaving(t *testing.T) {
	c, err := CompileProgram(`
MODULE counter
VAR n : 0..3;
ASSIGN
  init(n) := 0;
  next(n) := (n + 1) mod 4;

MODULE main
VAR
  a : process counter;
  b : process counter;
SPEC AG !(a.n = 1 & b.n = 1 & EX (a.n = 2 & b.n = 2))
SPEC EF (a.n = 3 & b.n = 3)
SPEC AG (a.n = 0 & b.n = 0 -> AX ((a.n = 1 & b.n = 0) | (a.n = 0 & b.n = 1) | (a.n = 0 & b.n = 0)))
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Vars[schedulerVar] == nil {
		t.Fatal("scheduler variable missing")
	}
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v\n%s", r.Spec.Source, r.Holds, r.Err, c.TraceString(r.Trace))
		}
	}
}

// TestProcessRunningKeyword: `running` inside a process resolves to the
// scheduler test, enabling the standard FAIRNESS running idiom.
func TestProcessRunningKeyword(t *testing.T) {
	c, err := CompileProgram(`
MODULE ticker
VAR x : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := !x;
FAIRNESS running

MODULE main
VAR t1 : process ticker; t2 : process ticker;
SPEC AG AF t1.x
SPEC AG AF t2.x
SPEC AG AF !t1.x
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v\n%s", r.Spec.Source, r.Holds, r.Err, c.TraceString(r.Trace))
		}
	}
}

// TestProcessStarvationWithoutFairness: without FAIRNESS running, one
// process can be starved forever.
func TestProcessStarvationWithoutFairness(t *testing.T) {
	c, err := CompileProgram(`
MODULE ticker
VAR x : boolean;
ASSIGN
  init(x) := FALSE;
  next(x) := !x;

MODULE main
VAR t1 : process ticker; t2 : process ticker;
SPEC AG AF t1.x
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	if results[0].Holds {
		t.Fatal("starvation must be possible without FAIRNESS running")
	}
	if results[0].Trace == nil || !results[0].Trace.IsLasso() {
		t.Fatal("expected a lasso counterexample")
	}
}

// TestProcessSharedVariable: interleaved access to a shared counter via
// parameters — the classic lost-update shape is visible to the checker.
func TestProcessSharedVariable(t *testing.T) {
	c, err := CompileProgram(`
MODULE incrementer(shared)
VAR mine : boolean;
ASSIGN
  init(mine) := FALSE;
  next(mine) := !mine;

MODULE main
VAR
  p : process incrementer(g);
  q : process incrementer(g);
  g : boolean;
ASSIGN
  init(g) := FALSE;
SPEC AG ((p.mine -> AX (p.mine | !p.mine)))   -- sanity
SPEC EF (p.mine & q.mine)
SPEC EF (p.mine & !q.mine)
`)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := c.CheckAll()
	for _, r := range results {
		if r.Err != nil || !r.Holds {
			t.Fatalf("%s: holds=%v err=%v", r.Spec.Source, r.Holds, r.Err)
		}
	}
}

func TestProcessErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"nested process", `
MODULE inner
VAR x : boolean;
MODULE outer
VAR i : process inner;
MODULE main
VAR o : process outer;`},
		{"reserved name", `
MODULE p
VAR x : boolean;
MODULE main
VAR _running : boolean; i : process p;`},
		{"process of unknown module", `
MODULE main
VAR i : process ghost;`},
	}
	for _, c := range bad {
		if _, err := CompileProgram(c.src); err == nil {
			t.Errorf("%s: should fail", c.name)
		}
	}
}
