package smv

import (
	"fmt"
	"strconv"

	"repro/internal/bdd"
	"repro/internal/kripke"
	"repro/internal/ltl"
)

// ValueKind discriminates domain values.
type ValueKind int

const (
	VBool ValueKind = iota
	VInt
	VSym
)

// Value is one element of a variable's domain (or an expression value).
type Value struct {
	Kind ValueKind
	B    bool
	I    int
	S    string
}

func (v Value) String() string {
	switch v.Kind {
	case VBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case VInt:
		return strconv.Itoa(v.I)
	default:
		return v.S
	}
}

func (v Value) equal(w Value) bool { return v == w }

// VarInfo records how a declared variable is encoded.
type VarInfo struct {
	Decl   *VarDecl
	Values []Value // domain in encoding order
	Bits   []int   // indices into Compiled.S.Vars, LSB first
}

// Compiled is the result of compiling a module: a symbolic Kripke
// structure plus the variable encoding and the parsed specifications.
type Compiled struct {
	S      *kripke.Symbolic
	Module *Module
	Vars   map[string]*VarInfo
	Order  []string // variable declaration order

	defines map[string]*Define
	defMemo map[string]*result
	defBusy map[string]bool
}

// result is an evaluated expression: either a boolean state set or a
// partition of the state space by value.
type result struct {
	isBool bool
	isSet  bool // came from a set literal: conditions may overlap
	b      bdd.Ref
	cases  []valCase
}

type valCase struct {
	v    Value
	cond bdd.Ref
}

// CompileOptions carries engine settings that must be fixed before the
// symbolic structure's BDD manager exists.
type CompileOptions struct {
	// DisableComplementEdges compiles onto a manager using the legacy
	// structural node representation (bdd.DisableComplementEdges). Used
	// by the differential suites as the oracle for the complement-edge
	// engine; verdicts and traces must not depend on it.
	DisableComplementEdges bool
}

// bddOptions lowers the compile options to manager options.
func (o CompileOptions) bddOptions() []bdd.Option {
	var opts []bdd.Option
	if o.DisableComplementEdges {
		opts = append(opts, bdd.DisableComplementEdges())
	}
	return opts
}

// Compile type-checks and compiles the module into a symbolic structure.
func Compile(m *Module) (*Compiled, error) {
	return compile(m, nil, CompileOptions{})
}

// CompileWith is Compile with explicit engine options.
func CompileWith(m *Module, opts CompileOptions) (*Compiled, error) {
	return compile(m, nil, opts)
}

// compile is the engine behind Compile and CompileLTL. When la is
// non-nil it interleaves the tableau product construction (see ltl.go)
// into the normal compile: the tableau variables are appended after the
// model's bit allocation, the tableau clusters join the conjunctive
// partition before the SetClusters/emitDisjuncts decision — so the
// product flows through the same early-quantified and Shannon-expanded
// image paths as the model relation — and the generalized-Büchi sets
// are appended after the model's FAIRNESS constraints.
func compile(m *Module, la *ltlAttachment, opts CompileOptions) (*Compiled, error) {
	c := &Compiled{
		Module:  m,
		Vars:    map[string]*VarInfo{},
		defines: map[string]*Define{},
		defMemo: map[string]*result{},
		defBusy: map[string]bool{},
	}
	// Declare variables (c.Order keeps declaration order for display).
	for _, vd := range m.Vars {
		if vd.Type.Kind == TypeInstance {
			return nil, &Error{Line: vd.line,
				Msg: fmt.Sprintf("variable %q instantiates a module; flatten the program first (CompileProgram)", vd.Name)}
		}
		if c.Vars[vd.Name] != nil {
			return nil, &Error{Line: vd.line, Msg: fmt.Sprintf("variable %q redeclared", vd.Name)}
		}
		c.Vars[vd.Name] = &VarInfo{Decl: vd, Values: domainValues(vd.Type)}
		c.Order = append(c.Order, vd.Name)
	}
	// Allocate bits in the netlist-aware static order (see order.go);
	// NewSymbolic interleaves each bit's current/next copies.
	var names []string
	for _, name := range staticOrder(m) {
		info := c.Vars[name]
		nbits := bitsFor(len(info.Values))
		for b := 0; b < nbits; b++ {
			bitName := name
			if nbits > 1 {
				bitName = fmt.Sprintf("%s.%d", name, b)
			}
			info.Bits = append(info.Bits, len(names))
			names = append(names, bitName)
		}
	}
	for _, d := range m.Defines {
		if c.defines[d.Name] != nil {
			return nil, &Error{Line: d.line, Msg: fmt.Sprintf("define %q redeclared", d.Name)}
		}
		if c.Vars[d.Name] != nil {
			return nil, &Error{Line: d.line, Msg: fmt.Sprintf("define %q shadows a variable", d.Name)}
		}
		c.defines[d.Name] = d
	}
	// Tableau variables ride after every model bit so traces and
	// FormatStateByVars (which walk c.Order/VarInfo.Bits) never see them.
	if la != nil {
		for i := range la.tab.Elem {
			name := fmt.Sprintf("_ltl%d", i)
			for c.Vars[name] != nil || c.defines[name] != nil {
				name += "_"
			}
			la.elemVars = append(la.elemVars, len(names))
			names = append(names, name)
		}
	}

	c.S = kripke.NewSymbolic(names, opts.bddOptions()...)
	mgr := c.S.M

	// Domain-validity invariant for domains that are not powers of two.
	valid := bdd.True
	for _, name := range c.Order {
		info := c.Vars[name]
		if len(info.Values) == 1<<len(info.Bits) {
			continue
		}
		anyVal := bdd.False
		for i := range info.Values {
			anyVal = mgr.Or(anyVal, c.encodeValue(info, i, false))
		}
		valid = mgr.And(valid, anyVal)
	}

	// Register atoms for SPEC resolution.
	if err := c.registerAtoms(); err != nil {
		return nil, err
	}
	// The tableau reads atoms through the same resolution SPECs use, so
	// both logics see identical labelings (DEFINEs included).
	if la != nil {
		a, err := ltl.Attach(la.tab, c.S, la.elemVars, nil)
		if err != nil {
			return nil, err
		}
		la.attached = a
	}

	// Assignments. Each next-state assignment and each TRANS section
	// contributes one cluster to the conjunctive partition: the
	// per-assignment granularity is what lets SetClusters' affinity pass
	// schedule early quantification (assignments mention exactly one
	// next-state variable). The monolithic conjunction is never built
	// here — Symbolic.Trans materializes it on demand; on large models
	// it can be exponentially bigger than any cluster.
	seen := map[string]bool{}
	initRel := bdd.True
	var transClusters []bdd.Ref
	addCluster := func(rel bdd.Ref) {
		if rel != bdd.True {
			transClusters = append(transClusters, rel)
		}
	}
	for _, a := range m.Assigns {
		info := c.Vars[a.Var]
		if info == nil {
			return nil, &Error{Line: a.line, Msg: fmt.Sprintf("assignment to undeclared variable %q", a.Var)}
		}
		key := fmt.Sprintf("%d:%s", a.Kind, a.Var)
		if seen[key] {
			return nil, &Error{Line: a.line, Msg: fmt.Sprintf("duplicate assignment for %q", a.Var)}
		}
		seen[key] = true
		rhs, err := c.eval(a.RHS, a.Kind == AssignNext)
		if err != nil {
			return nil, err
		}
		rel, err := c.assignRelation(info, rhs, a)
		if err != nil {
			return nil, err
		}
		if a.Kind == AssignInit {
			initRel = mgr.And(initRel, rel)
		} else {
			addCluster(rel)
		}
	}

	// Constraint sections.
	for _, e := range m.Inits {
		b, err := c.evalBool(e, false)
		if err != nil {
			return nil, err
		}
		initRel = mgr.And(initRel, b)
	}
	for _, e := range m.Trans {
		b, err := c.evalBool(e, true)
		if err != nil {
			return nil, err
		}
		addCluster(b)
	}
	invar := valid
	for _, e := range m.Invars {
		b, err := c.evalBool(e, false)
		if err != nil {
			return nil, err
		}
		invar = mgr.And(invar, b)
	}

	c.S.Init = mgr.And(initRel, invar)
	c.S.Invar = invar
	mgr.Protect(c.S.Init)
	mgr.Protect(c.S.Invar)
	if invar != bdd.True {
		addCluster(invar)
		addCluster(c.S.ToNext(invar))
	}
	if la != nil {
		for _, cl := range la.attached.Clusters {
			addCluster(cl)
		}
	}
	if len(transClusters) > 1 {
		// SetClusters leaves the monolithic relation deferred; the
		// clusters' conjunction defines it.
		c.S.SetClusters(transClusters)
	} else {
		rel := bdd.True
		for _, cl := range transClusters {
			rel = mgr.And(rel, cl)
		}
		c.S.SetTrans(rel)
	}
	if len(m.Processes) > 0 {
		if err := c.emitDisjuncts(transClusters); err != nil {
			return nil, err
		}
	}

	for i, e := range m.Fairness {
		b, err := c.evalBool(e, false)
		if err != nil {
			return nil, err
		}
		c.S.AddFairness(fmt.Sprintf("FAIRNESS#%d(%s)", i, e.String()), b)
	}
	if la != nil {
		for i, set := range la.attached.Fair {
			c.S.AddFairness(la.attached.FairNames[i], set)
		}
	}
	// The DEFINE memo holds raw refs that spec-atom resolution and later
	// evaluation read; register them so dynamic reordering rewrites them
	// in place (the structure's own hook covers everything else).
	mgr.OnReorder(c.rewriteRefs)
	return c, nil
}

// emitDisjuncts installs the disjunctive transition partition of an
// interleaved (process) model: one component per scheduler value — the
// synchronous core (_running = main) plus one per process — obtained by
// Shannon expansion of the cluster conjunction on the scheduler
// variable:
//
//	R = ⋁_s (guard_s ∧ ⋀_c c|guard_s)
//
// The guards are exhaustive over the valid scheduler encodings, and the
// domain-validity invariant cluster zeroes the invalid ones in both
// forms, so the union equals the conjunction exactly. Under a fixed
// scheduler value every other process's assignment collapses to its
// TRUE:v frame, which is what makes each component small. The
// disjunctive path stays disabled until EnableDisjunct(true) (cmd/smv
// -disjunctive); installation is cheap — k restricted products.
func (c *Compiled) emitDisjuncts(transClusters []bdd.Ref) error {
	info := c.Vars[schedulerVar]
	if info == nil {
		return &Error{Msg: "process model without scheduler variable"}
	}
	mgr := c.S.M
	comps := make([]bdd.Ref, len(info.Values))
	names := make([]string, len(info.Values))
	for idx, v := range info.Values {
		guard := c.encodeValue(info, idx, false)
		comp := guard
		for _, cl := range transClusters {
			comp = mgr.And(comp, mgr.RestrictCube(cl, guard))
		}
		comps[idx] = comp
		names[idx] = v.S
	}
	c.S.SetDisjuncts(comps, names)
	return nil
}

// rewriteRefs is the compiled model's reorder hook.
func (c *Compiled) rewriteRefs(translate func(bdd.Ref) bdd.Ref) {
	seen := map[*result]bool{}
	for _, r := range c.defMemo {
		if r == nil || seen[r] {
			continue
		}
		seen[r] = true
		r.b = translate(r.b)
		for i := range r.cases {
			r.cases[i].cond = translate(r.cases[i].cond)
		}
	}
}

// CompileSource parses and compiles in one step.
func CompileSource(src string) (*Compiled, error) {
	return CompileSourceWith(src, CompileOptions{})
}

// CompileSourceWith is CompileSource with explicit engine options.
func CompileSourceWith(src string, opts CompileOptions) (*Compiled, error) {
	m, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	return CompileWith(m, opts)
}

func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

func domainValues(t *Type) []Value {
	switch t.Kind {
	case TypeBool:
		return []Value{{Kind: VBool, B: false}, {Kind: VBool, B: true}}
	case TypeEnum:
		out := make([]Value, len(t.Enum))
		for i, s := range t.Enum {
			out[i] = Value{Kind: VSym, S: s}
		}
		return out
	default:
		out := make([]Value, t.Hi-t.Lo+1)
		for i := range out {
			out[i] = Value{Kind: VInt, I: t.Lo + i}
		}
		return out
	}
}

// encodeValue returns the BDD of "variable = Values[idx]" over the
// current (next=false) or next (next=true) copy.
func (c *Compiled) encodeValue(info *VarInfo, idx int, next bool) bdd.Ref {
	m := c.S.M
	res := bdd.True
	for b, bitPos := range info.Bits {
		sv := c.S.Vars[bitPos]
		var bddVar int
		if next {
			bddVar = sv.Next
		} else {
			bddVar = sv.Cur
		}
		if idx>>b&1 == 1 {
			res = m.And(res, m.Var(bddVar))
		} else {
			res = m.And(res, m.NVar(bddVar))
		}
	}
	return res
}

// varCases returns the partition of the state space by the variable's
// value.
func (c *Compiled) varCases(info *VarInfo, next bool) []valCase {
	out := make([]valCase, len(info.Values))
	for i, v := range info.Values {
		out[i] = valCase{v: v, cond: c.encodeValue(info, i, next)}
	}
	return out
}

// valueIndex finds a value in a variable's domain.
func (info *VarInfo) valueIndex(v Value) int {
	for i, w := range info.Values {
		if w.equal(v) {
			return i
		}
	}
	return -1
}

// assignRelation builds the constraint "copy(var) ∈ rhs" where copy is
// the initial (current) or next copy depending on the assignment kind.
func (c *Compiled) assignRelation(info *VarInfo, rhs *result, a *Assign) (bdd.Ref, error) {
	m := c.S.M
	next := a.Kind == AssignNext
	if rhs.isBool {
		if info.Decl.Type.Kind != TypeBool {
			return bdd.False, &Error{Line: a.line,
				Msg: fmt.Sprintf("assigning boolean expression to %s variable %q", info.Decl.Type, info.Decl.Name)}
		}
		trueEnc := c.encodeValue(info, 1, next)
		return m.Eq(trueEnc, rhs.b), nil
	}
	rel := bdd.False
	for _, vc := range rhs.cases {
		if vc.cond == bdd.False {
			continue
		}
		idx := info.valueIndex(coerceToDomain(vc.v, info.Decl.Type))
		if idx < 0 {
			return bdd.False, &Error{Line: a.line,
				Msg: fmt.Sprintf("value %s outside the domain %s of %q", vc.v, info.Decl.Type, info.Decl.Name)}
		}
		rel = m.Or(rel, m.And(vc.cond, c.encodeValue(info, idx, next)))
	}
	if rel == bdd.False {
		return bdd.False, &Error{Line: a.line, Msg: fmt.Sprintf("assignment to %q has no feasible value", info.Decl.Name)}
	}
	return rel, nil
}

// coerceToDomain maps boolean-ish values into boolean domains.
func coerceToDomain(v Value, t *Type) Value {
	if t.Kind == TypeBool && v.Kind == VInt && (v.I == 0 || v.I == 1) {
		return Value{Kind: VBool, B: v.I == 1}
	}
	return v
}
