// Package experiments implements the reproduction harness: one function
// per evaluation artifact of the paper (see DESIGN.md §2), each
// returning a Report with paper-reported vs. measured values. The
// cmd/experiments binary prints them; the root bench_test.go benchmarks
// the same workloads.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// Row is one paper-vs-measured comparison.
type Row struct {
	Name     string
	Paper    string
	Measured string
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
	Err   error
}

func (r *Report) add(name, paper, measured string) {
	r.Rows = append(r.Rows, Row{Name: name, Paper: paper, Measured: measured})
}

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an EXPERIMENTS.md-ready block.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", r.ID, r.Title)
	if r.Err != nil {
		fmt.Fprintf(&sb, "**FAILED**: %v\n", r.Err)
		return sb.String()
	}
	sb.WriteString("| quantity | paper | measured |\n|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "| %s | %s | %s |\n", row.Name, row.Paper, row.Measured)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "\n%s\n", n)
	}
	return sb.String()
}

// E1Arbiter reproduces the Section 6 case study: the Seitz arbiter,
// reachable-state count, and the AG(tr1 -> AF ta1) counterexample.
func E1Arbiter() *Report {
	r := &Report{ID: "E1", Title: "Seitz arbiter case study (Section 6, Figure 3)"}
	start := time.Now()
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		r.Err = err
		return r
	}
	reach, iters := model.Reachable()
	count := model.CountStates(reach)

	gen := core.NewGenerator(mc.New(model))
	holds, tr, err := gen.CounterexampleInit(ctl.MustParse("AG (tr1 -> AF ta1)"))
	if err != nil {
		r.Err = err
		return r
	}
	if holds {
		r.Err = fmt.Errorf("the arbiter bug was not found")
		return r
	}
	if err := core.ValidatePath(model, tr); err != nil {
		r.Err = fmt.Errorf("counterexample invalid: %w", err)
		return r
	}
	elapsed := time.Since(start)

	r.add("verification outcome", "AG(tr1 -> AF ta1) false", "AG(tr1 -> AF ta1) false")
	r.add("reachable states", "33,633", fmt.Sprintf("%.0f (reconstructed netlist, %d BFS iterations)", count, iters))
	r.add("counterexample length", "78 states", fmt.Sprintf("%d states", tr.Len()))
	r.add("cycle length", "30", fmt.Sprintf("%d", tr.CycleLen()))
	r.add("wall time", "\"a few minutes\" (1994)", fmt.Sprintf("%.3fs", elapsed.Seconds()))
	r.note("The exact Figure 3 netlist is not recoverable from the text; the "+
		"reconstruction reproduces the narrated failure mechanism (stale ME grant, "+
		"slow OR1, tr1 re-raised with ta1 low, ur1 withdrawn). Absolute counts are "+
		"netlist-specific. Counterexample validated: %d fairness constraints hit on the cycle.",
		len(model.Fair))
	return r
}

// figure1Model and figure2Model mirror the test models: one-SCC and
// three-SCC witness scenarios.
func figure1Model() *kripke.Explicit {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false})
	e.AddFairSet("h2", []bool{false, false, true})
	return e
}

func figure2Model() *kripke.Explicit {
	e := kripke.NewExplicit(6)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	e.AddEdge(4, 5)
	e.AddEdge(5, 4)
	e.AddEdge(1, 2)
	e.AddEdge(3, 4)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false, true, true, false})
	e.AddFairSet("h2", []bool{false, false, false, false, false, true})
	return e
}

// E2SingleSCC reproduces Figure 1: the witness cycle closes inside one
// strongly connected component, with no restart.
func E2SingleSCC() *Report {
	r := &Report{ID: "E2", Title: "Witness within a single SCC (Figure 1)"}
	s := kripke.FromExplicit(figure1Model())
	gen := core.NewGenerator(mc.New(s))
	tr, err := gen.WitnessEG(bdd.True, kripke.IndexState(0, len(s.Vars)))
	if err != nil {
		r.Err = err
		return r
	}
	if err := core.ValidateEG(s, tr, bdd.True); err != nil {
		r.Err = err
		return r
	}
	r.add("cycle closes on first attempt", "yes (Figure 1 scenario)", fmt.Sprintf("restarts = %d", gen.Stats.Restarts))
	r.add("witness shape", "prefix + cycle through all constraints",
		fmt.Sprintf("prefix %d, cycle %d, %d constraints hit", tr.PrefixLen(), tr.CycleLen(), len(tr.FairHits)))
	return r
}

// E3MultiSCC reproduces Figure 2: the walk restarts and descends the
// SCC DAG into the terminal component.
func E3MultiSCC() *Report {
	r := &Report{ID: "E3", Title: "Witness spanning three SCCs (Figure 2)"}
	s := kripke.FromExplicit(figure2Model())
	for _, strat := range []core.Strategy{core.StrategySimple, core.StrategyPrecompute} {
		gen := core.NewGenerator(mc.New(s))
		gen.Strategy = strat
		tr, err := gen.WitnessEG(bdd.True, kripke.IndexState(0, len(s.Vars)))
		if err != nil {
			r.Err = err
			return r
		}
		if err := core.ValidateEG(s, tr, bdd.True); err != nil {
			r.Err = err
			return r
		}
		r.add(fmt.Sprintf("strategy=%s", strat),
			"walk descends the SCC DAG, cycle in terminal SCC",
			fmt.Sprintf("restarts=%d earlyExits=%d witness=%d states (prefix %d, cycle %d)",
				gen.Stats.Restarts, gen.Stats.EarlyExits, tr.Len(), tr.PrefixLen(), tr.CycleLen()))
	}
	return r
}
