package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/automata"
	"repro/internal/bdd"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/ctlstar"
	"repro/internal/explicit"
	"repro/internal/graph"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// E4MinimalVsHeuristic quantifies Theorem 1: exact minimal witnesses are
// exponential to find while the heuristic is polynomial, and measures
// how far from minimal the heuristic's witnesses are.
func E4MinimalVsHeuristic(seed int64, trials int) *Report {
	r := &Report{ID: "E4", Title: "Minimal vs. heuristic witness length (Theorem 1)"}
	rng := rand.New(rand.NewSource(seed))

	var sumMin, sumHeur, counted int
	var minTime, heurTime time.Duration
	worst := 0.0
	for trial := 0; trial < trials; trial++ {
		e := kripke.RandomExplicit(rng, 5+rng.Intn(3), 2, nil, 1+rng.Intn(2), 0.3)
		s := kripke.FromExplicit(e)
		gen := core.NewGenerator(mc.New(s))
		start := kripke.IndexState(e.Init[0], len(s.Vars))
		if !s.Holds(gen.C.Fair(), start) {
			continue
		}
		t0 := time.Now()
		tr, err := gen.WitnessEG(bdd.True, start)
		heurTime += time.Since(t0)
		if err != nil {
			r.Err = err
			return r
		}
		t0 = time.Now()
		w, ok := graph.MinimalFiniteWitness(e, e.Init[0], e.N*(len(e.Fair)+1))
		minTime += time.Since(t0)
		if !ok {
			r.Err = fmt.Errorf("brute force found no witness where heuristic did")
			return r
		}
		sumMin += w.Length()
		sumHeur += tr.Len()
		counted++
		if ratio := float64(tr.Len()) / float64(w.Length()); ratio > worst {
			worst = ratio
		}
	}
	if counted == 0 {
		r.Err = fmt.Errorf("no fair instances generated")
		return r
	}
	r.add("problem complexity", "minimal witness NP-complete (Thm 1)",
		fmt.Sprintf("brute force %.1fms vs heuristic %.1fms over %d instances",
			float64(minTime.Milliseconds()), float64(heurTime.Milliseconds()), counted))
	r.add("witness quality", "heuristic \"tends to find short counterexamples\"",
		fmt.Sprintf("avg minimal %.2f vs avg heuristic %.2f states (worst ratio %.2fx)",
			float64(sumMin)/float64(counted), float64(sumHeur)/float64(counted), worst))

	// The Hamiltonian reduction itself, on a cycle graph and a star.
	ringOK := graph.HamiltonianViaWitness([][]int{{1}, {2}, {3}, {0}})
	starOK := graph.HamiltonianViaWitness([][]int{{1, 2}, {0}, {0}})
	r.add("Hamiltonian reduction", "HC ⟺ witness of length n",
		fmt.Sprintf("4-ring: %v (want true), star: %v (want false)", ringOK, starOK))
	return r
}

// E5CTLStar reproduces the Section 7 machinery: the Emerson–Lei check
// and the case-split witness construction on the fragment
// E ⋀ (GF p ∨ FG q), including their agreement and relative cost.
func E5CTLStar() *Report {
	r := &Report{ID: "E5", Title: "CTL* fragment checking and witnesses (Section 7)"}
	rng := rand.New(rand.NewSource(7))

	formulas := []ctlstar.Formula{
		ctlstar.MustParse("E (GF p)"),
		ctlstar.MustParse("E (GF p | FG q)"),
		ctlstar.MustParse("E (GF p) & (GF q)"),
		ctlstar.MustParse("E (GF p | FG q) & (GF q | FG p)"),
	}
	var elTime, splitTime, witTime time.Duration
	agree := 0
	witnesses := 0
	for trial := 0; trial < 20; trial++ {
		e := kripke.RandomExplicit(rng, 10+rng.Intn(10), 2, []string{"p", "q"}, trial%2, 0.3)
		s := kripke.FromExplicit(e)
		sc := ctlstar.New(mc.New(s))
		for _, f := range formulas {
			t0 := time.Now()
			el, err := sc.CheckEL(f)
			elTime += time.Since(t0)
			if err != nil {
				r.Err = err
				return r
			}
			t0 = time.Now()
			cs, err := sc.CheckSplit(f)
			splitTime += time.Since(t0)
			if err != nil {
				r.Err = err
				return r
			}
			if el != cs {
				r.Err = fmt.Errorf("EL and case-split disagree on %s", f)
				return r
			}
			agree++
			reach, _ := s.Reachable()
			for _, st := range s.EnumStates(s.M.And(reach, el), 2) {
				t0 = time.Now()
				tr, err := sc.Witness(f, st)
				witTime += time.Since(t0)
				if err != nil {
					r.Err = err
					return r
				}
				if err := sc.ValidateWitness(f, tr); err != nil {
					r.Err = fmt.Errorf("invalid CTL* witness: %w", err)
					return r
				}
				witnesses++
			}
		}
	}
	r.add("checking procedures agree", "fixpoint formula of [8] is exact",
		fmt.Sprintf("%d formula/model pairs, EL == case-split everywhere", agree))
	r.add("checking cost", "single fixpoint vs exponential case split",
		fmt.Sprintf("EL %.1fms vs split %.1fms total", float64(elTime.Microseconds())/1000, float64(splitTime.Microseconds())/1000))
	r.add("witnesses generated", "reduction to fair EG (Section 7)",
		fmt.Sprintf("%d lassos, all validated (%.1fms)", witnesses, float64(witTime.Microseconds())/1000))
	return r
}

// E6Containment reproduces Section 8: Streett language containment with
// counterexample words.
func E6Containment() *Report {
	r := &Report{ID: "E6", Title: "Streett language containment (Section 8)"}

	infA := func() *automata.Streett {
		a := automata.NewStreett("infA", 2, []string{"a", "b"})
		a.Init = 1
		a.AddTrans(0, "a", 0)
		a.AddTrans(0, "b", 1)
		a.AddTrans(1, "a", 0)
		a.AddTrans(1, "b", 1)
		a.AddPair("inf-a", nil, []int{0})
		return a
	}
	evB := func() *automata.Streett {
		a := automata.NewStreett("evB", 2, []string{"a", "b"})
		a.Init = 1
		a.AddTrans(0, "a", 0)
		a.AddTrans(0, "b", 1)
		a.AddTrans(1, "a", 0)
		a.AddTrans(1, "b", 1)
		a.AddPair("fin-a", []int{1}, nil)
		return a
	}
	all := func() *automata.Streett {
		a := automata.NewStreett("all", 1, []string{"a", "b"})
		a.AddTrans(0, "a", 0)
		a.AddTrans(0, "b", 0)
		a.AddPair("trivial", []int{0}, nil)
		return a
	}

	cases := []struct {
		k, kp *automata.Streett
		want  bool
	}{
		{evB(), all(), true},
		{all(), infA(), false},
		{infA(), evB(), false},
		{evB(), infA(), false},
		{infA(), infA(), true},
	}
	t0 := time.Now()
	checked, cexValid := 0, 0
	for _, c := range cases {
		res, err := automata.CheckContainment(c.k, c.kp)
		if err != nil {
			r.Err = err
			return r
		}
		if res.Contained != c.want {
			r.Err = fmt.Errorf("L(%s) ⊆ L(%s): got %v want %v", c.k.Name, c.kp.Name, res.Contained, c.want)
			return r
		}
		checked++
		if !res.Contained {
			accK, err := c.k.Accepts(res.Word)
			if err != nil {
				r.Err = err
				return r
			}
			accKp, err := c.kp.Accepts(res.Word)
			if err != nil {
				r.Err = err
				return r
			}
			if !accK || accKp {
				r.Err = fmt.Errorf("counterexample word %s not in L(%s)\\L(%s)",
					res.Word.Format(c.k.Alphabet), c.k.Name, c.kp.Name)
				return r
			}
			cexValid++
		}
	}
	r.add("containment checks", "L(K) ⊆ L(K') iff M(K,K') ⊨ ¬E(φ_F ∧ ¬φ_F')",
		fmt.Sprintf("%d pairs decided correctly in %.1fms", checked, float64(time.Since(t0).Microseconds())/1000))
	r.add("counterexample words", "witness of the CTL* formula, lifted to a word",
		fmt.Sprintf("%d ultimately periodic words, each verified ∈ L(K)\\L(K')", cexValid))
	return r
}

// E7SymbolicVsExplicit contrasts the symbolic checker with the explicit
// EMC baseline on chained arbiters: the explicit state count multiplies
// per copy (the paper's [7] failed on one arbiter) while the symbolic
// representation stays small.
func E7SymbolicVsExplicit(maxCopies int, explicitLimit int) *Report {
	r := &Report{ID: "E7", Title: "Symbolic vs. explicit enumeration (the EMC baseline)"}
	for k := 1; k <= maxCopies; k++ {
		model, err := circuit.ScaledArbiter(k).Compile()
		if err != nil {
			r.Err = err
			return r
		}
		t0 := time.Now()
		reach, _ := model.Reachable()
		count := model.CountStates(reach)
		symTime := time.Since(t0)
		nodes := model.M.Size(reach)

		t0 = time.Now()
		e, _, err := model.ToExplicitBounded(explicitLimit, explicitLimit*160)
		expTime := time.Since(t0)
		var expResult string
		if err != nil {
			expResult = fmt.Sprintf("gave up after %.2fs (%v)", expTime.Seconds(), err)
		} else {
			edges := 0
			for _, su := range e.Succ {
				edges += len(su)
			}
			expResult = fmt.Sprintf("enumerated %d states / %d edges in %.2fs", e.N, edges, expTime.Seconds())
		}
		r.add(fmt.Sprintf("%d arbiter(s), %d nets", k, len(model.Vars)),
			"explicit checker \"failed because the number of states was too large\"",
			fmt.Sprintf("%.3g states; symbolic reach %.2fs (%d BDD nodes); explicit %s",
				count, symTime.Seconds(), nodes, expResult))
	}
	r.note("The paper reports the explicit-state checker of [7] could not handle " +
		"the full arbiter and required disabling one input device; the symbolic " +
		"representation grows linearly in the number of chained copies while the " +
		"state count multiplies.")
	return r
}

// E8RestartStrategies is the ablation DESIGN.md calls out: the simple
// restart strategy vs. the precomputed-closure strategy on deep SCC
// chains.
func E8RestartStrategies(depth int) *Report {
	r := &Report{ID: "E8", Title: "Ablation: cycle-closure restart strategies (Section 6)"}
	e := sccChain(depth)
	s := kripke.FromExplicit(e)
	for _, strat := range []core.Strategy{core.StrategySimple, core.StrategyPrecompute} {
		gen := core.NewGenerator(mc.New(s))
		gen.Strategy = strat
		t0 := time.Now()
		tr, err := gen.WitnessEG(bdd.True, kripke.IndexState(0, len(s.Vars)))
		if err != nil {
			r.Err = err
			return r
		}
		if err := core.ValidateEG(s, tr, bdd.True); err != nil {
			r.Err = err
			return r
		}
		r.add(fmt.Sprintf("strategy=%s, %d-SCC chain", strat, depth),
			"\"slightly more sophisticated\" variant saves failed closures",
			fmt.Sprintf("%.2fms, restarts=%d, earlyExits=%d, ringSteps=%d, witness=%d states",
				float64(time.Since(t0).Microseconds())/1000,
				gen.Stats.Restarts, gen.Stats.EarlyExits, gen.Stats.RingSteps, tr.Len()))
	}
	return r
}

// sccChain builds a chain of `depth` 2-state SCCs where only the last
// SCC satisfies the second fairness constraint, forcing depth-1
// restarts.
func sccChain(depth int) *kripke.Explicit {
	e := kripke.NewExplicit(2 * depth)
	h1 := make([]bool, 2*depth)
	h2 := make([]bool, 2*depth)
	for i := 0; i < depth; i++ {
		a, b := 2*i, 2*i+1
		e.AddEdge(a, b)
		e.AddEdge(b, a)
		if i < depth-1 {
			e.AddEdge(b, a+2)
		}
		h1[a] = true
		if i == depth-1 {
			h2[b] = true
		}
	}
	e.AddInit(0)
	e.AddFairSet("h1", h1)
	e.AddFairSet("h2", h2)
	return e
}

// E9Explicit cross-checks the two checkers on random models — the
// correctness keystone, reported as an experiment for visibility.
func E9Explicit(trials int) *Report {
	r := &Report{ID: "E9", Title: "Cross-validation: symbolic vs. explicit CTL semantics"}
	rng := rand.New(rand.NewSource(99))
	atoms := []string{"p", "q"}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		e := kripke.RandomExplicit(rng, 8+rng.Intn(8), 2, atoms, trial%3, 0.25)
		s := kripke.FromExplicit(e)
		sym := mc.New(s)
		exp := explicit.New(e)
		for _, src := range []string{
			"EG p", "E [p U q]", "AG (p -> AF q)", "AF (p & EX q)", "A [p U q]",
		} {
			f := ctl.MustParse(src)
			symSet, err := sym.Check(f)
			if err != nil {
				r.Err = err
				return r
			}
			expSet, err := exp.Check(f)
			if err != nil {
				r.Err = err
				return r
			}
			for st := 0; st < e.N; st++ {
				if s.Holds(symSet, kripke.IndexState(st, len(s.Vars))) != expSet[st] {
					r.Err = fmt.Errorf("disagreement on %s at state %d (trial %d)", src, st, trial)
					return r
				}
				checked++
			}
		}
	}
	r.add("agreement", "symbolic algorithm == graph-traversal semantics",
		fmt.Sprintf("%d state/formula checks, 0 disagreements", checked))
	return r
}

// All returns the experiment list as (id, runner) pairs so callers can
// stream results as they complete.
func All() []Entry {
	return []Entry{
		{"E1", func() *Report { return E1Arbiter() }},
		{"E2", func() *Report { return E2SingleSCC() }},
		{"E3", func() *Report { return E3MultiSCC() }},
		{"E4", func() *Report { return E4MinimalVsHeuristic(11, 15) }},
		{"E5", func() *Report { return E5CTLStar() }},
		{"E6", func() *Report { return E6Containment() }},
		{"E7", func() *Report { return E7SymbolicVsExplicit(2, 20000) }},
		{"E8", func() *Report { return E8RestartStrategies(6) }},
		{"E9", func() *Report { return E9Explicit(20) }},
		{"E10", func() *Report { return E10Compaction() }},
		{"E11", func() *Report { return E11PartitionedTrans() }},
		{"E12", func() *Report { return E12TreeArbiter() }},
	}
}

// E12TreeArbiter is a second debugging case study in the paper's style:
// a naive speed-independent tree arbiter whose per-node ME elements are
// individually correct, but whose delayed acknowledgment gates leak a
// stale grant — end-to-end mutual exclusion fails and the checker
// produces the hazard interleaving.
func E12TreeArbiter() *Report {
	r := &Report{ID: "E12", Title: "Second case study: stale-ack hazard in a naive tree arbiter"}
	for _, levels := range []int{1, 2} {
		start := time.Now()
		model, err := circuit.TreeArbiter(levels).Compile()
		if err != nil {
			r.Err = err
			return r
		}
		reach, _ := model.Reachable()
		count := model.CountStates(reach)

		c := mc.New(model)
		perNode := true
		for k := 1; k < 1<<levels; k++ {
			set, err := c.Check(ctl.MustParse(fmt.Sprintf("AG !(g%d_l & g%d_r)", k, k)))
			if err != nil {
				r.Err = err
				return r
			}
			if !model.M.Implies(model.Init, set) {
				perNode = false
			}
		}
		gen := core.NewGenerator(c)
		ok, tr, err := gen.CounterexampleInit(ctl.MustParse(circuit.TreeArbiterMutexSpec(levels)))
		if err != nil {
			r.Err = err
			return r
		}
		status := "hazard found"
		trLen := 0
		if ok {
			status = "NO hazard (unexpected)"
		} else {
			if err := core.ValidatePath(model, tr); err != nil {
				r.Err = fmt.Errorf("invalid hazard trace: %w", err)
				return r
			}
			trLen = tr.Len()
		}
		r.add(fmt.Sprintf("%d users, %d nets", 1<<levels, len(model.Vars)),
			"counterexamples debug subtle async-circuit races (§6)",
			fmt.Sprintf("%.3g states; per-ME safety=%v; end-to-end mutex: %s (trace %d states, validated) in %.2fs",
				count, perNode, status, trLen, time.Since(start).Seconds()))
	}
	r.note("Every ME element satisfies its own AG !(g_l ∧ g_r); the ack gates' " +
		"independent delays nevertheless let a stale acknowledgment overlap a fresh " +
		"one — the same class of speed-independence bug as the paper's Seitz arbiter.")
	return r
}

// E11PartitionedTrans is the second ablation: monolithic transition
// relation vs. conjunctive partitioning with early quantification, on
// chained arbiters.
func E11PartitionedTrans() *Report {
	r := &Report{ID: "E11", Title: "Ablation: monolithic vs. partitioned transition relation"}
	for _, k := range []int{1, 2} {
		model, err := circuit.ScaledArbiter(k).Compile()
		if err != nil {
			r.Err = err
			return r
		}
		if !model.HasClusters() {
			r.Err = fmt.Errorf("expected clusters on the compiled circuit")
			return r
		}
		transNodes := model.M.Size(model.Trans())
		nclusters := model.NumClusters()

		t0 := time.Now()
		reachPart, _ := model.Reachable()
		partTime := time.Since(t0)

		model.EnablePartition(false)
		t0 = time.Now()
		reachMono, _ := model.Reachable()
		monoTime := time.Since(t0)
		model.EnablePartition(true)

		if reachPart != reachMono {
			r.Err = fmt.Errorf("k=%d: partitioned and monolithic reachability disagree", k)
			return r
		}
		r.add(fmt.Sprintf("%d arbiter(s), %d clusters", k, nclusters),
			"partitioned R with early quantification (SMV technique)",
			fmt.Sprintf("monolithic %0.f-node R: %.3fs; partitioned: %.3fs",
				float64(transNodes), monoTime.Seconds(), partTime.Seconds()))
	}
	r.note("Both paths compute identical reachable sets (checked by canonicity); " +
		"the win of partitioning grows with model size because the monolithic " +
		"relational product drags the full R through every image step.")
	return r
}

// Entry pairs an experiment id with its runner.
type Entry struct {
	ID  string
	Run func() *Report
}

// E10Compaction measures the Section 9 extension: shortcut-based trace
// compaction on the arbiter counterexample and on random fair models.
func E10Compaction() *Report {
	r := &Report{ID: "E10", Title: "Extension: counterexample compaction (Section 9 future work)"}
	model, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		r.Err = err
		return r
	}
	gen := core.NewGenerator(mc.New(model))
	_, tr, err := gen.CounterexampleInit(ctl.MustParse("AG (tr1 -> AF ta1)"))
	if err != nil {
		r.Err = err
		return r
	}
	before := tr.Len()
	removed := core.Compact(model, tr, bdd.True)
	if err := core.ValidatePath(model, tr); err != nil {
		r.Err = fmt.Errorf("compacted trace invalid: %w", err)
		return r
	}
	r.add("arbiter counterexample", "\"techniques for generating even shorter counterexamples\" (§9)",
		fmt.Sprintf("%d -> %d states (%d removed, still a valid fair lasso)", before, tr.Len(), removed))

	rng := rand.New(rand.NewSource(13))
	sumBefore, sumAfter, count := 0, 0, 0
	for trial := 0; trial < 25; trial++ {
		e := kripke.RandomExplicit(rng, 8+rng.Intn(10), 3, nil, 1+trial%3, 0.2)
		s := kripke.FromExplicit(e)
		g := core.NewGenerator(mc.New(s))
		start := kripke.IndexState(e.Init[0], len(s.Vars))
		if !s.Holds(g.C.Fair(), start) {
			continue
		}
		w, err := g.WitnessEG(bdd.True, start)
		if err != nil {
			r.Err = err
			return r
		}
		sumBefore += w.Len()
		core.Compact(s, w, bdd.True)
		if err := core.ValidateEG(s, w, bdd.True); err != nil {
			r.Err = err
			return r
		}
		sumAfter += w.Len()
		count++
	}
	r.add("random fair models", "n/a (extension)",
		fmt.Sprintf("avg witness %.1f -> %.1f states over %d models",
			float64(sumBefore)/float64(count), float64(sumAfter)/float64(count), count))
	return r
}
