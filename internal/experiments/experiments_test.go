package experiments

import (
	"strings"
	"testing"
)

// TestFastExperimentsSucceed runs every experiment except the slow
// enumeration ones and asserts none fails; the report rendering is also
// sanity-checked. E7/E11 are exercised with reduced sizes.
func TestFastExperimentsSucceed(t *testing.T) {
	reports := []*Report{
		E1Arbiter(),
		E2SingleSCC(),
		E3MultiSCC(),
		E4MinimalVsHeuristic(5, 8),
		E6Containment(),
		E8RestartStrategies(4),
		E9Explicit(5),
		E10Compaction(),
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.ID, r.Err)
		}
		out := r.String()
		if !strings.Contains(out, "## "+r.ID) || !strings.Contains(out, "| quantity |") {
			t.Fatalf("%s: malformed report:\n%s", r.ID, out)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s: no rows", r.ID)
		}
	}
}

func TestE5CTLStar(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := E5CTLStar()
	if r.Err != nil {
		t.Fatalf("E5 failed: %v", r.Err)
	}
}

func TestE7SmallScale(t *testing.T) {
	r := E7SymbolicVsExplicit(1, 20000)
	if r.Err != nil {
		t.Fatalf("E7 failed: %v", r.Err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("expected one row, got %d", len(r.Rows))
	}
}

func TestE11SmallScale(t *testing.T) {
	// run only k=1 by constructing directly... E11 is fixed at {1,2};
	// keep the full version but allow it time.
	if testing.Short() {
		t.Skip("short mode")
	}
	r := E11PartitionedTrans()
	if r.Err != nil {
		t.Fatalf("E11 failed: %v", r.Err)
	}
}

func TestAllEntriesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Run == nil {
			t.Fatal("malformed entry")
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"E1", "E7", "E11"} {
		if !seen[want] {
			t.Fatalf("experiment %s missing from All()", want)
		}
	}
}

func TestReportErrorRendering(t *testing.T) {
	r := &Report{ID: "EX", Title: "t"}
	r.Err = errString("boom")
	if !strings.Contains(r.String(), "FAILED") {
		t.Fatal("error reports must render FAILED")
	}
}

type errString string

func (e errString) Error() string { return string(e) }
