package circuit

import "strconv"

// The Seitz arbiter (paper Section 6, Figure 3). The published figure's
// exact wiring is not fully recoverable from the text, so this is a
// reconstruction that reproduces the failure mechanism the paper
// narrates for the specification AG(tr1 -> AF ta1):
//
//   - the ME element can hold its grant meo1 ("meol") long after the
//     request input meil has gone low;
//   - a fresh user request ur1 then races through AND1 (tr1 = ur1 ∧ meo1)
//     using the *stale* grant, and the acknowledgment chain
//     ta1 → sr → sa → ua1 completes;
//   - the slow OR1 gate (meil = ur1 ∨ ua1) means the ME only now sees the
//     request, withdraws and re-issues the grant, pulsing tr1 low and
//     high while ta1 stays low;
//   - because ua1 is still high from the first pulse, the 4-phase
//     environment may withdraw ur1, and the circuit settles into a
//     quiescent state in which ta1 never rises — a fair path falsifying
//     tr1 -> AF ta1.
//
// Netlist (side 2 is symmetric):
//
//	meil = OR1(ur1, ua1)          meir = OR2(ur2, ua2)
//	(meol, meor) = ME(meil, meir)  with grant-holding behaviour
//	tr1  = AND1(ur1, meol)        tr2  = AND2(ur2, meor)
//	ta1  = BUF(tr1)               ta2  = BUF(tr2)
//	sr   = OR(ta1, ta2)
//	sa   = BUF(sr)                 -- the shared service element
//	ua1  = AND(sa, ta1)           ua2  = AND(sa, ta2)
//	ur1, ur2: 4-phase user requests acknowledged by ua1, ua2

// SeitzArbiter builds the reconstructed two-user arbiter.
func SeitzArbiter() *Netlist {
	n := &Netlist{Name: "seitz-arbiter"}
	n.AddInput("ur1", "ua1", false)
	n.AddInput("ur2", "ua2", false)

	n.AddGate("meil", Or, false, "ur1", "ua1")
	n.AddGate("meir", Or, false, "ur2", "ua2")
	n.AddMutex("me", "meil", "meir", "meol", "meor")

	n.AddGate("tr1", And, false, "ur1", "meol")
	n.AddGate("tr2", And, false, "ur2", "meor")
	n.AddGate("ta1", Buf, false, "tr1")
	n.AddGate("ta2", Buf, false, "tr2")
	n.AddGate("sr", Or, false, "ta1", "ta2")
	n.AddGate("sa", Buf, false, "sr")
	n.AddGate("ua1", And, false, "sa", "ta1")
	n.AddGate("ua2", And, false, "sa", "ta2")
	return n
}

// ArbiterSpecs are the liveness properties the paper checks: each t-side
// request must inevitably be acknowledged. The first one is the paper's
// failing specification.
var ArbiterSpecs = []string{
	"AG (tr1 -> AF ta1)",
	"AG (tr2 -> AF ta2)",
	"AG !(meol & meor)",
	"AG (ta1 -> EF !ta1)",
}

// ScaledArbiter chains k independent arbiter copies into one netlist
// (signal names suffixed _0.._k-1). It is the workload generator for the
// symbolic-vs-explicit scaling experiment (E7): the explicit checker's
// state count multiplies with every copy while the BDD representation
// grows roughly linearly.
func ScaledArbiter(k int) *Netlist {
	n := &Netlist{Name: "scaled-arbiter"}
	for i := 0; i < k; i++ {
		s := func(base string) string {
			return base + suffix(i)
		}
		n.AddInput(s("ur1"), s("ua1"), false)
		n.AddInput(s("ur2"), s("ua2"), false)
		n.AddGate(s("meil"), Or, false, s("ur1"), s("ua1"))
		n.AddGate(s("meir"), Or, false, s("ur2"), s("ua2"))
		n.AddMutex(s("me"), s("meil"), s("meir"), s("meol"), s("meor"))
		n.AddGate(s("tr1"), And, false, s("ur1"), s("meol"))
		n.AddGate(s("tr2"), And, false, s("ur2"), s("meor"))
		n.AddGate(s("ta1"), Buf, false, s("tr1"))
		n.AddGate(s("ta2"), Buf, false, s("tr2"))
		n.AddGate(s("sr"), Or, false, s("ta1"), s("ta2"))
		n.AddGate(s("sa"), Buf, false, s("sr"))
		n.AddGate(s("ua1"), And, false, s("sa"), s("ta1"))
		n.AddGate(s("ua2"), And, false, s("sa"), s("ta2"))
	}
	return n
}

func suffix(i int) string {
	return "_" + strconv.Itoa(i)
}
