package circuit

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/mc"
)

// TestTreeArbiterPerNodeSafety: every ME element keeps its own grants
// exclusive, at every size.
func TestTreeArbiterPerNodeSafety(t *testing.T) {
	for _, levels := range []int{1, 2} {
		s, err := TreeArbiter(levels).Compile()
		if err != nil {
			t.Fatalf("levels=%d: %v", levels, err)
		}
		if !s.IsTotal() {
			t.Fatalf("levels=%d: model not total", levels)
		}
		c := mc.New(s)
		for k := 1; k < 1<<levels; k++ {
			spec := fmt.Sprintf("AG !(g%d_l & g%d_r)", k, k)
			set, err := c.Check(ctl.MustParse(spec))
			if err != nil {
				t.Fatal(err)
			}
			if !s.M.Implies(s.Init, set) {
				t.Fatalf("levels=%d: %s violated", levels, spec)
			}
		}
	}
}

// TestTreeArbiterStaleAckHazard: the ack gates' delays break end-to-end
// mutual exclusion — the checker finds the hazard and the counterexample
// validates against the model (the paper's debugging story on a second
// circuit).
func TestTreeArbiterStaleAckHazard(t *testing.T) {
	s, err := TreeArbiter(1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	gen := core.NewGenerator(mc.New(s))
	ok, tr, err := gen.CounterexampleInit(ctl.MustParse(TreeArbiterMutexSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the stale-ack hazard should be detected")
	}
	if err := core.ValidatePath(s, tr); err != nil {
		t.Fatalf("invalid counterexample: %v", err)
	}
	// the final state of the prefix must show both acks high
	a0, _ := s.AtomSet(ctl.Atom("a0"))
	a1, _ := s.AtomSet(ctl.Atom("a1"))
	sawBoth := false
	for _, st := range tr.States {
		if s.Holds(a0, st) && s.Holds(a1, st) {
			sawBoth = true
		}
	}
	if !sawBoth {
		t.Fatalf("counterexample does not exhibit the double ack:\n%s", tr.DeltaString())
	}
	t.Logf("hazard trace: %d states", tr.Len())
}

func TestTreeArbiterGrantsPossible(t *testing.T) {
	s, err := TreeArbiter(2).Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := mc.New(s)
	// every user can eventually be acknowledged
	for u := 0; u < 4; u++ {
		set, err := c.Check(ctl.MustParse(fmt.Sprintf("EF a%d", u)))
		if err != nil {
			t.Fatal(err)
		}
		if !s.M.Implies(s.Init, set) {
			t.Fatalf("user %d can never be acknowledged", u)
		}
	}
	// and the resource can always be released again
	set, err := c.Check(ctl.MustParse("AG (a0 -> EF !a0)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set) {
		t.Fatal("grant cannot be released")
	}
}

func TestTreeArbiterShape(t *testing.T) {
	n := TreeArbiter(2)
	// 4 inputs, 3 ME elements, 3 OR gates + 4 ack gates
	if len(n.Inputs) != 4 || len(n.Mutexes) != 3 {
		t.Fatalf("shape wrong: %d inputs, %d mutexes", len(n.Inputs), len(n.Mutexes))
	}
	gates := map[string]bool{}
	for _, g := range n.Gates {
		gates[g.Name] = true
	}
	for _, want := range []string{"or1", "or2", "or3", "a0", "a1", "a2", "a3"} {
		if !gates[want] {
			t.Fatalf("gate %s missing", want)
		}
	}
	spec := TreeArbiterMutexSpec(1)
	if spec != "AG !(a0 & a1)" {
		t.Fatalf("spec = %q", spec)
	}
}

func TestTreeArbiterReachable(t *testing.T) {
	s, err := TreeArbiter(2).Compile()
	if err != nil {
		t.Fatal(err)
	}
	reach, _ := s.Reachable()
	count := s.CountStates(reach)
	if count < 100 {
		t.Fatalf("suspiciously small reachable set: %v", count)
	}
	t.Logf("tree arbiter (4 users): %d nets, %.0f reachable states, %d fairness constraints",
		len(s.Vars), count, len(s.Fair))
}
