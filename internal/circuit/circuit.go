// Package circuit models speed-independent asynchronous circuits at the
// gate level, the setting of the paper's case study (Section 6,
// Figure 3). Every gate output is a state variable; on each step a gate
// either holds its value or switches to its excitation function —
// "each gate can take an arbitrarily long time to respond to its
// inputs". A fairness constraint per gate ("the gate is stable") encodes
// that every gate eventually responds; mutual-exclusion (ME) elements
// arbitrate between two requests without ever granting both.
package circuit

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/kripke"
)

// Kind enumerates gate types.
type Kind int

const (
	Buf Kind = iota
	Not
	And
	Or
	Nand
	Nor
	Xor
	CElem // Muller C-element: output follows inputs when they agree
)

func (k Kind) String() string {
	switch k {
	case Buf:
		return "BUF"
	case Not:
		return "NOT"
	case And:
		return "AND"
	case Or:
		return "OR"
	case Nand:
		return "NAND"
	case Nor:
		return "NOR"
	case Xor:
		return "XOR"
	case CElem:
		return "C"
	default:
		return "?"
	}
}

// Gate is one logic gate; Name is also its output net.
type Gate struct {
	Name string
	Kind Kind
	In   []string
	Init bool
}

// Mutex is a mutual-exclusion element with two request inputs and two
// grant outputs; it never raises both grants.
type Mutex struct {
	Name       string
	In1, In2   string
	Out1, Out2 string
	Init1      bool
	Init2      bool
}

// Input is a primary input driven by the environment. If Ack is
// non-empty the input follows the 4-phase handshake discipline: it may
// rise only while Ack is low and fall only while Ack is high. With an
// empty Ack the input toggles freely.
type Input struct {
	Name string
	Ack  string
	Init bool
}

// Netlist is a gate-level circuit.
type Netlist struct {
	Name    string
	Gates   []*Gate
	Mutexes []*Mutex
	Inputs  []*Input
}

// AddGate appends a gate and returns its output net name.
func (n *Netlist) AddGate(name string, k Kind, init bool, in ...string) string {
	n.Gates = append(n.Gates, &Gate{Name: name, Kind: k, In: in, Init: init})
	return name
}

// AddMutex appends an ME element.
func (n *Netlist) AddMutex(name, in1, in2, out1, out2 string) {
	n.Mutexes = append(n.Mutexes, &Mutex{Name: name, In1: in1, In2: in2, Out1: out1, Out2: out2})
}

// AddInput appends a primary input.
func (n *Netlist) AddInput(name, ack string, init bool) {
	n.Inputs = append(n.Inputs, &Input{Name: name, Ack: ack, Init: init})
}

// Nets returns all state-variable names in declaration order: inputs,
// then gate outputs, then ME outputs.
func (n *Netlist) Nets() []string {
	var out []string
	for _, in := range n.Inputs {
		out = append(out, in.Name)
	}
	for _, g := range n.Gates {
		out = append(out, g.Name)
	}
	for _, m := range n.Mutexes {
		out = append(out, m.Out1, m.Out2)
	}
	return out
}

// Compile translates the netlist into a symbolic Kripke structure with
// the speed-independent semantics and per-gate fairness constraints.
func (n *Netlist) Compile() (*kripke.Symbolic, error) {
	names := n.Nets()
	seen := map[string]bool{}
	for _, nm := range names {
		if seen[nm] {
			return nil, fmt.Errorf("circuit: net %q driven twice", nm)
		}
		seen[nm] = true
	}
	b := kripke.NewBuilder(names)
	m := b.S.M

	cur := func(net string) (bdd.Ref, error) {
		if !seen[net] {
			return bdd.False, fmt.Errorf("circuit: undriven net %q", net)
		}
		return b.Cur(net), nil
	}

	// Primary inputs.
	for _, in := range n.Inputs {
		b.InitValue(in.Name, in.Init)
		if in.Ack == "" {
			// free toggle: next unconstrained; nothing to add
			continue
		}
		ack, err := cur(in.Ack)
		if err != nil {
			return nil, err
		}
		// 4-phase: may move toward ¬Ack... the input is allowed to rise
		// when ack is low and fall when ack is high, i.e. its "target"
		// is ¬ack when it differs, else it holds.
		b.NextChoice(in.Name, m.Not(ack))
	}

	// Gates.
	for _, g := range n.Gates {
		target, err := n.gateFunc(b, g)
		if err != nil {
			return nil, err
		}
		b.InitValue(g.Name, g.Init)
		b.NextChoice(g.Name, target)
		stable := m.Eq(b.Cur(g.Name), target)
		b.AddFairness(fmt.Sprintf("%s(%s) responds", g.Kind, g.Name), stable)
	}

	// ME elements.
	for _, mx := range n.Mutexes {
		r1, err := cur(mx.In1)
		if err != nil {
			return nil, err
		}
		r2, err := cur(mx.In2)
		if err != nil {
			return nil, err
		}
		g1, g2 := b.Cur(mx.Out1), b.Cur(mx.Out2)
		t1 := m.And(r1, m.Not(g2))
		t2 := m.And(r2, m.Not(g1))
		b.InitValue(mx.Out1, mx.Init1)
		b.InitValue(mx.Out2, mx.Init2)
		b.NextChoice(mx.Out1, t1)
		b.NextChoice(mx.Out2, t2)
		// mutual exclusion also in the next state (no simultaneous grant)
		b.ConstrainTrans(m.Not(m.And(b.Next(mx.Out1), b.Next(mx.Out2))))
		b.AddFairness(fmt.Sprintf("ME(%s).%s responds", mx.Name, mx.Out1), m.Eq(g1, t1))
		b.AddFairness(fmt.Sprintf("ME(%s).%s responds", mx.Name, mx.Out2), m.Eq(g2, t2))
	}

	return b.Finish(), nil
}

// gateFunc builds the excitation function of a gate over current nets.
func (n *Netlist) gateFunc(b *kripke.Builder, g *Gate) (bdd.Ref, error) {
	m := b.S.M
	var ins []bdd.Ref
	nets := map[string]bool{}
	for _, nm := range n.Nets() {
		nets[nm] = true
	}
	for _, in := range g.In {
		if !nets[in] {
			return bdd.False, fmt.Errorf("circuit: gate %q reads undriven net %q", g.Name, in)
		}
		ins = append(ins, b.Cur(in))
	}
	need := func(k int) error {
		if len(ins) != k {
			return fmt.Errorf("circuit: gate %q (%s) needs %d inputs, has %d", g.Name, g.Kind, k, len(ins))
		}
		return nil
	}
	switch g.Kind {
	case Buf:
		if err := need(1); err != nil {
			return bdd.False, err
		}
		return ins[0], nil
	case Not:
		if err := need(1); err != nil {
			return bdd.False, err
		}
		return m.Not(ins[0]), nil
	case And:
		if len(ins) < 2 {
			return bdd.False, fmt.Errorf("circuit: gate %q needs >= 2 inputs", g.Name)
		}
		return m.AndN(ins...), nil
	case Or:
		if len(ins) < 2 {
			return bdd.False, fmt.Errorf("circuit: gate %q needs >= 2 inputs", g.Name)
		}
		return m.OrN(ins...), nil
	case Nand:
		if len(ins) < 2 {
			return bdd.False, fmt.Errorf("circuit: gate %q needs >= 2 inputs", g.Name)
		}
		return m.Not(m.AndN(ins...)), nil
	case Nor:
		if len(ins) < 2 {
			return bdd.False, fmt.Errorf("circuit: gate %q needs >= 2 inputs", g.Name)
		}
		return m.Not(m.OrN(ins...)), nil
	case Xor:
		if err := need(2); err != nil {
			return bdd.False, err
		}
		return m.Xor(ins[0], ins[1]), nil
	case CElem:
		if err := need(2); err != nil {
			return bdd.False, err
		}
		out := b.Cur(g.Name)
		both := m.And(ins[0], ins[1])
		either := m.Or(ins[0], ins[1])
		return m.Or(both, m.And(out, either)), nil
	default:
		return bdd.False, fmt.Errorf("circuit: unknown gate kind %d", g.Kind)
	}
}
