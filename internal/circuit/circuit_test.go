package circuit

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

func TestCompileErrors(t *testing.T) {
	bad := []*Netlist{}
	// duplicate net
	n1 := &Netlist{}
	n1.AddGate("x", Buf, false, "x")
	n1.AddGate("x", Not, false, "x")
	bad = append(bad, n1)
	// undriven input
	n2 := &Netlist{}
	n2.AddGate("y", Buf, false, "ghost")
	bad = append(bad, n2)
	// wrong arity
	n3 := &Netlist{}
	n3.AddGate("z", And, false, "z")
	bad = append(bad, n3)
	for i, n := range bad {
		if _, err := n.Compile(); err == nil {
			t.Errorf("netlist %d should fail to compile", i)
		}
	}
}

func TestGateFunctions(t *testing.T) {
	// ring oscillator: inv = NOT(inv) — oscillates under fairness.
	n := &Netlist{}
	n.AddGate("inv", Not, false, "inv")
	s, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := mc.New(s)
	set, err := c.Check(ctl.MustParse("AG AF inv"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set) {
		t.Fatal("inverter must oscillate under fairness")
	}
	set2, err := c.Check(ctl.MustParse("AG AF !inv"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set2) {
		t.Fatal("inverter must oscillate low under fairness")
	}
}

func TestCElementSemantics(t *testing.T) {
	// c = C(a, b) with free inputs: c rises only when both high, falls
	// only when both low.
	n := &Netlist{}
	n.AddInput("a", "", false)
	n.AddInput("b", "", false)
	n.AddGate("c", CElem, false, "a", "b")
	s, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := mc.New(s)
	// c cannot rise while a&b are not both high
	set, err := c.Check(ctl.MustParse("AG (!c & !(a & b) -> !EX (c & !(a & b)))"))
	if err != nil {
		t.Fatal(err)
	}
	// note: inputs change in the same step, so we assert: from (!c, !a&!b
	// held in the next state too) c stays low. The simpler invariant:
	_ = set
	// c only changes toward its excitation: check a concrete trap —
	// state c=1,a=1,b=0 must not allow c to rise from c=0,a=1,b=0 with
	// inputs constant.
	b := s
	var from kripke.State = kripke.State{true, false, false} // a=1,b=0,c=0
	for _, succ := range b.Successors(from, 0) {
		if succ[2] && succ[0] && !succ[1] {
			t.Fatal("C-element rose with only one input high")
		}
	}
	// and holds state: from a=1,b=0,c=1 it must not fall while one input high
	from = kripke.State{true, false, true}
	for _, succ := range b.Successors(from, 0) {
		if !succ[2] && succ[0] && !succ[1] {
			t.Fatal("C-element fell with one input still high")
		}
	}
}

func TestMutexNeverGrantsBoth(t *testing.T) {
	n := &Netlist{}
	n.AddInput("r1", "", false)
	n.AddInput("r2", "", false)
	n.AddMutex("me", "r1", "r2", "g1", "g2")
	s, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := mc.New(s)
	set, err := c.Check(ctl.MustParse("AG !(g1 & g2)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set) {
		t.Fatal("mutual exclusion violated")
	}
	// liveness: a solo persistent request is eventually granted —
	// formulated existentially here since inputs are free to withdraw:
	set2, err := c.Check(ctl.MustParse("AG (r1 & !g1 & !g2 -> EX g1)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set2) {
		t.Fatal("grant must be possible on request")
	}
}

func TestFourPhaseEnvironment(t *testing.T) {
	n := &Netlist{}
	n.AddInput("req", "ack", false)
	n.AddGate("ack", Buf, false, "req")
	s, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := mc.New(s)
	// req never falls while ack is low: AG(req & !ack -> AX req)
	set, err := c.Check(ctl.MustParse("AG (req & !ack -> AX req)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set) {
		t.Fatal("4-phase discipline violated (early withdrawal)")
	}
	// req never rises while ack is high
	set2, err := c.Check(ctl.MustParse("AG (!req & ack -> AX !req)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set2) {
		t.Fatal("4-phase discipline violated (early re-request)")
	}
	// handshake completes: req leads to ack under fairness
	set3, err := c.Check(ctl.MustParse("AG (req -> AF ack)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set3) {
		t.Fatal("handshake must complete under fairness")
	}
}

// TestArbiterCounterexample is the E1 reproduction: the liveness
// property AG(tr1 -> AF ta1) fails on the reconstructed Seitz arbiter,
// and the generated counterexample is a valid fair lasso reaching a
// tr1-state whose cycle avoids ta1 — the paper's bug.
func TestArbiterCounterexample(t *testing.T) {
	s, err := SeitzArbiter().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsTotal() {
		t.Fatal("arbiter model must be total")
	}
	gen := core.NewGenerator(mc.New(s))
	ok, tr, err := gen.CounterexampleInit(ctl.MustParse("AG (tr1 -> AF ta1)"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the arbiter bug must be found: AG (tr1 -> AF ta1) should fail")
	}
	if tr == nil || !tr.IsLasso() {
		t.Fatal("counterexample must be a lasso")
	}
	if err := core.ValidatePath(s, tr); err != nil {
		t.Fatalf("invalid counterexample: %v", err)
	}
	// The trace must contain a state with tr1 high & ta1 low, and the
	// cycle must avoid ta1.
	tr1Set, _ := s.AtomSet(ctl.Atom("tr1"))
	ta1Set, _ := s.AtomSet(ctl.Atom("ta1"))
	sawViolation := false
	for i := tr.CycleStart; i < len(tr.States); i++ {
		if s.Holds(ta1Set, tr.States[i]) {
			t.Fatalf("cycle contains ta1=1 at %d:\n%s", i, tr)
		}
	}
	for _, st := range tr.States {
		if s.Holds(tr1Set, st) && !s.Holds(ta1Set, st) {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Fatalf("no tr1&!ta1 state on the counterexample:\n%s", tr)
	}
	t.Logf("counterexample: %d states (prefix %d, cycle %d), restarts=%d",
		tr.Len(), tr.PrefixLen(), tr.CycleLen(), gen.Stats.Restarts)
}

func TestArbiterSafetyProperties(t *testing.T) {
	s, err := SeitzArbiter().Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := mc.New(s)
	for _, spec := range []string{
		"AG !(meol & meor)",   // mutual exclusion
		"AG (ta1 -> EF !ta1)", // acknowledgments can clear
		"AG (tr1 -> EF ta1)",  // acknowledgment is *possible* (the bug is liveness)
		"AG EF (!tr1 & !tr2)", // the circuit can always quiesce
	} {
		set, err := c.Check(ctl.MustParse(spec))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !s.M.Implies(s.Init, set) {
			t.Fatalf("%s should hold", spec)
		}
	}
}

func TestArbiterReachableStates(t *testing.T) {
	s, err := SeitzArbiter().Compile()
	if err != nil {
		t.Fatal(err)
	}
	reach, iters := s.Reachable()
	count := s.CountStates(reach)
	if count < 100 {
		t.Fatalf("suspiciously few reachable states: %v", count)
	}
	if count > 1<<14 {
		t.Fatalf("more reachable states than the full space: %v", count)
	}
	t.Logf("arbiter: %.0f reachable states in %d BFS iterations (paper: 33,633)", count, iters)
}

func TestArbiterSecondSideSymmetric(t *testing.T) {
	s, err := SeitzArbiter().Compile()
	if err != nil {
		t.Fatal(err)
	}
	gen := core.NewGenerator(mc.New(s))
	ok, tr, err := gen.CounterexampleInit(ctl.MustParse("AG (tr2 -> AF ta2)"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("side 2 must exhibit the same bug")
	}
	if err := core.ValidatePath(s, tr); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestScaledArbiter(t *testing.T) {
	n := ScaledArbiter(2)
	s, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Vars) != 28 {
		t.Fatalf("2-copy arbiter has %d nets, want 28", len(s.Vars))
	}
	// copies are independent: mutual exclusion per copy
	c := mc.New(s)
	set, err := c.Check(ctl.MustParse("AG !(meol_0 & meor_0) & AG !(meol_1 & meor_1)"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.M.Implies(s.Init, set) {
		t.Fatal("scaled copies broken")
	}
}

func TestNetsOrder(t *testing.T) {
	n := SeitzArbiter()
	nets := n.Nets()
	if nets[0] != "ur1" || nets[1] != "ur2" {
		t.Fatalf("inputs must come first: %v", nets)
	}
	joined := strings.Join(nets, " ")
	for _, want := range []string{"meil", "meol", "tr1", "ta1", "sr", "sa", "ua1"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("net %s missing from %v", want, nets)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{Buf, Not, And, Or, Nand, Nor, Xor, CElem}
	for _, k := range kinds {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
