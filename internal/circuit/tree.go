package circuit

import (
	"fmt"
	"strconv"
)

// TreeArbiter builds a NAIVE speed-independent tree arbiter granting a
// shared resource to one of 2^levels users: mutual-exclusion elements
// are arranged in a binary tree, each arbitrating between its two
// subtrees; a user's acknowledgment gate computes the conjunction of
// the grants on its root-to-leaf path.
//
// The naive design is intentionally buggy in exactly the way the
// paper's case study is: every ME element is correct in isolation
// (AG !(g_l & g_r) holds per node), but the *acknowledgment gates have
// their own delays*, so a stale high ack can coexist with a freshly
// risen ack for another user after the tree re-arbitrates — user-level
// mutual exclusion FAILS, and the checker produces the interleaving
// demonstrating the hazard. A production arbiter needs a full 4-phase
// handshake per tree level (as in Martin's DME cell); the tests pin
// both facts: per-node safety holds, end-to-end safety does not.
//
// Net naming: user requests r0..r{n-1} (4-phase, acked by a0..a{n-1});
// internal tree nodes are numbered heap-style (node 1 is the root, node
// k has children 2k and 2k+1); node k exposes grants g<k>_l and g<k>_r
// and forwards the request or<k> = (left demand) | (right demand).
func TreeArbiter(levels int) *Netlist {
	if levels < 1 {
		levels = 1
	}
	n := &Netlist{Name: fmt.Sprintf("tree-arbiter-%d", 1<<levels)}
	users := 1 << levels

	for u := 0; u < users; u++ {
		n.AddInput("r"+strconv.Itoa(u), "a"+strconv.Itoa(u), false)
	}

	// demand(k) is the net expressing "subtree k wants the resource".
	// Leaf subtrees (k >= 2^levels) map to user requests; internal nodes
	// get an OR gate over their children's demands.
	demand := func(k int) string {
		if k >= users {
			return "r" + strconv.Itoa(k-users)
		}
		return "or" + strconv.Itoa(k)
	}

	// build bottom-up so gate inputs exist
	for k := users - 1; k >= 1; k-- {
		left, right := 2*k, 2*k+1
		n.AddMutex("me"+strconv.Itoa(k), demand(left), demand(right),
			gl(k), gr(k))
		n.AddGate(demand(k), Or, false, demand(left), demand(right))
	}

	// user grant chain: conjunction of grants along the path to the root
	for u := 0; u < users; u++ {
		leaf := users + u
		var path []string
		k := leaf
		for k > 1 {
			parent := k / 2
			if k == 2*parent {
				path = append(path, gl(parent))
			} else {
				path = append(path, gr(parent))
			}
			k = parent
		}
		if len(path) == 1 {
			n.AddGate("a"+strconv.Itoa(u), Buf, false, path[0])
		} else {
			n.AddGate("a"+strconv.Itoa(u), And, false, path...)
		}
	}
	return n
}

func gl(k int) string { return "g" + strconv.Itoa(k) + "_l" }
func gr(k int) string { return "g" + strconv.Itoa(k) + "_r" }

// TreeArbiterMutexSpec is the safety property: no two users are
// acknowledged simultaneously.
func TreeArbiterMutexSpec(levels int) string {
	users := 1 << levels
	spec := ""
	for i := 0; i < users; i++ {
		for j := i + 1; j < users; j++ {
			if spec != "" {
				spec += " & "
			}
			spec += fmt.Sprintf("AG !(a%d & a%d)", i, j)
		}
	}
	return spec
}
