package mc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/explicit"
	"repro/internal/kripke"
)

// diamond builds the 4-state structure
//
//	0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 3
//
// with atom p in {1}, q in {3}.
func diamond() *kripke.Explicit {
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(0, 2)
	e.AddEdge(1, 3)
	e.AddEdge(2, 3)
	e.AddEdge(3, 3)
	e.Label(1, "p")
	e.Label(3, "q")
	e.AddInit(0)
	return e
}

func holdsAt(t *testing.T, c *Checker, s *kripke.Symbolic, f string, state int, want bool) {
	t.Helper()
	set, err := c.Check(ctl.MustParse(f))
	if err != nil {
		t.Fatalf("Check(%s): %v", f, err)
	}
	st := kripke.IndexState(state, len(s.Vars))
	if got := s.Holds(set, st); got != want {
		t.Fatalf("state %d ⊨ %s = %v, want %v", state, f, got, want)
	}
}

func TestDiamondBasics(t *testing.T) {
	e := diamond()
	s := kripke.FromExplicit(e)
	c := New(s)

	holdsAt(t, c, s, "EX p", 0, true)
	holdsAt(t, c, s, "EX p", 1, false)
	holdsAt(t, c, s, "AX q", 1, true)
	holdsAt(t, c, s, "AX q", 0, false)
	holdsAt(t, c, s, "EF q", 0, true)
	holdsAt(t, c, s, "AF q", 0, true)
	holdsAt(t, c, s, "AG q", 3, true)
	holdsAt(t, c, s, "AG q", 0, false)
	holdsAt(t, c, s, "EG q", 3, true)
	holdsAt(t, c, s, "E [!q U q]", 0, true)
	holdsAt(t, c, s, "A [!q U q]", 0, true)
	holdsAt(t, c, s, "EF (p & EX q)", 0, true)
}

func TestCheckInit(t *testing.T) {
	e := diamond()
	s := kripke.FromExplicit(e)
	c := New(s)
	ok, _, err := c.CheckInit(ctl.MustParse("AF q"))
	if err != nil || !ok {
		t.Fatalf("AF q at init: ok=%v err=%v", ok, err)
	}
	ok, _, err = c.CheckInit(ctl.MustParse("AX p"))
	if err != nil || ok {
		t.Fatalf("AX p should fail at init: ok=%v err=%v", ok, err)
	}
}

func TestCheckUnknownAtom(t *testing.T) {
	s := kripke.FromExplicit(diamond())
	c := New(s)
	if _, err := c.Check(ctl.MustParse("EF bogus")); err == nil {
		t.Fatal("unknown atom must error")
	}
}

func TestEGNeedsCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 2 ; p in {0,1} only. EG p is false everywhere since
	// the only cycle (2) lacks p.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 2)
	e.Label(0, "p")
	e.Label(1, "p")
	e.AddInit(0)
	s := kripke.FromExplicit(e)
	c := New(s)
	for st := 0; st < 3; st++ {
		holdsAt(t, c, s, "EG p", st, false)
	}
	// add the cycle 1 -> 0 and EG p becomes true at 0 and 1
	e2 := kripke.NewExplicit(3)
	e2.AddEdge(0, 1)
	e2.AddEdge(1, 2)
	e2.AddEdge(2, 2)
	e2.AddEdge(1, 0)
	e2.Label(0, "p")
	e2.Label(1, "p")
	e2.AddInit(0)
	s2 := kripke.FromExplicit(e2)
	c2 := New(s2)
	holdsAt(t, c2, s2, "EG p", 0, true)
	holdsAt(t, c2, s2, "EG p", 1, true)
	holdsAt(t, c2, s2, "EG p", 2, false)
}

func TestFairnessPrunesUnfairPaths(t *testing.T) {
	// Two self-loop states: 0 -> 0 (p), 0 -> 1, 1 -> 1 (h). Fairness h
	// only holds at 1, so the only fair path from 0 eventually moves to
	// 1 and stays. Under fairness EG p must be false at 0.
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 0)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(0, "p")
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, true})
	s := kripke.FromExplicit(e)
	c := New(s)
	holdsAt(t, c, s, "EG p", 0, false)
	// but without fairness it is true
	e2 := kripke.NewExplicit(2)
	e2.AddEdge(0, 0)
	e2.AddEdge(0, 1)
	e2.AddEdge(1, 1)
	e2.Label(0, "p")
	e2.AddInit(0)
	s2 := kripke.FromExplicit(e2)
	c2 := New(s2)
	holdsAt(t, c2, s2, "EG p", 0, true)
}

func TestFairSetRestrictsEXEU(t *testing.T) {
	// 0 -> 1 -> 1 and 0 -> 2 -> 2. Fairness holds only at 2, so only
	// state 2's branch is fair. q labels state 1.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.AddEdge(0, 2)
	e.AddEdge(2, 2)
	e.Label(1, "q")
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, false, true})
	s := kripke.FromExplicit(e)
	c := New(s)
	// EX q under fairness: successor 1 satisfies q but starts no fair path.
	holdsAt(t, c, s, "EX q", 0, false)
	holdsAt(t, c, s, "EF q", 0, false)
	// EX !q under fairness: successor 2 works.
	holdsAt(t, c, s, "EX !q", 0, true)
}

func TestFairEGRings(t *testing.T) {
	// ring of 3 states, fairness at state 2; rings must grow out from
	// (EG true)∧h.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, false, true})
	s := kripke.FromExplicit(e)
	c := New(s)
	res, rings := c.FairEG(bdd.True)
	defer rings.Release(s.M)
	// every state is fair
	for st := 0; st < 3; st++ {
		if !s.Holds(res, kripke.IndexState(st, len(s.Vars))) {
			t.Fatalf("state %d should satisfy fair EG true", st)
		}
	}
	if len(rings.PerFair) != 1 {
		t.Fatalf("expected 1 ring family, got %d", len(rings.PerFair))
	}
	rs := rings.PerFair[0]
	// Q_0 = {2}, Q_1 ⊇ {1,2}, Q_2 ⊇ {0,1,2}
	if !s.Holds(rs[0], kripke.IndexState(2, len(s.Vars))) {
		t.Fatal("Q_0 must contain the constraint state")
	}
	if s.Holds(rs[0], kripke.IndexState(0, len(s.Vars))) {
		t.Fatal("Q_0 too big")
	}
	last := rs[len(rs)-1]
	for st := 0; st < 3; st++ {
		if !s.Holds(last, kripke.IndexState(st, len(s.Vars))) {
			t.Fatalf("final ring must cover state %d", st)
		}
	}
	// rings increase
	for i := 1; i < len(rs); i++ {
		if !s.M.Implies(rs[i-1], rs[i]) {
			t.Fatal("rings must be increasing")
		}
	}
}

func TestEUApproxRingsSemantics(t *testing.T) {
	// path 0 -> 1 -> 2, self-loop at 2; g at 2. Q_i = states within i
	// steps of 2.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 2)
	e.Label(2, "g")
	e.AddInit(0)
	s := kripke.FromExplicit(e)
	c := New(s)
	g, err := s.AtomSet(ctl.Atom("g"))
	if err != nil {
		t.Fatal(err)
	}
	_, rings := c.EUApprox(bdd.True, g)
	if len(rings) < 3 {
		t.Fatalf("expected at least 3 rings, got %d", len(rings))
	}
	wantIn := func(ring bdd.Ref, st int, want bool) {
		t.Helper()
		if got := s.Holds(ring, kripke.IndexState(st, len(s.Vars))); got != want {
			t.Fatalf("ring membership of %d = %v, want %v", st, got, want)
		}
	}
	wantIn(rings[0], 2, true)
	wantIn(rings[0], 1, false)
	wantIn(rings[1], 1, true)
	wantIn(rings[1], 0, false)
	wantIn(rings[2], 0, true)
}

// randomFormula builds a random CTL formula over the given atoms.
func randomFormula(r *rand.Rand, atoms []string, depth int) *ctl.Formula {
	if depth == 0 || r.Intn(5) == 0 {
		switch r.Intn(3) {
		case 0:
			return ctl.True()
		case 1:
			return ctl.Atom(atoms[r.Intn(len(atoms))])
		default:
			return ctl.Not(ctl.Atom(atoms[r.Intn(len(atoms))]))
		}
	}
	switch r.Intn(10) {
	case 0:
		return ctl.Not(randomFormula(r, atoms, depth-1))
	case 1:
		return ctl.And(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	case 2:
		return ctl.Or(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	case 3:
		return ctl.EX(randomFormula(r, atoms, depth-1))
	case 4:
		return ctl.EU(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	case 5:
		return ctl.EG(randomFormula(r, atoms, depth-1))
	case 6:
		return ctl.AX(randomFormula(r, atoms, depth-1))
	case 7:
		return ctl.AU(randomFormula(r, atoms, depth-1), randomFormula(r, atoms, depth-1))
	case 8:
		return ctl.AG(randomFormula(r, atoms, depth-1))
	default:
		return ctl.AF(randomFormula(r, atoms, depth-1))
	}
}

// TestCrossValidateAgainstExplicit is the central correctness test: on
// random structures (with and without fairness) the symbolic checker
// must agree with the explicit-state checker on every state for random
// CTL formulas.
func TestCrossValidateAgainstExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	atoms := []string{"p", "q"}
	for trial := 0; trial < 60; trial++ {
		nfair := trial % 3 // 0, 1, 2 fairness constraints
		e := kripke.RandomExplicit(r, 8+r.Intn(8), 2, atoms, nfair, 0.25)
		s := kripke.FromExplicit(e)
		sym := New(s)
		exp := explicit.New(e)
		for fi := 0; fi < 8; fi++ {
			f := randomFormula(r, atoms, 3)
			symSet, err := sym.Check(f)
			if err != nil {
				t.Fatalf("symbolic Check(%s): %v", f, err)
			}
			expSet, err := exp.Check(f)
			if err != nil {
				t.Fatalf("explicit Check(%s): %v", f, err)
			}
			for st := 0; st < e.N; st++ {
				got := s.Holds(symSet, kripke.IndexState(st, len(s.Vars)))
				if got != expSet[st] {
					t.Fatalf("trial %d: state %d disagrees on %s (fair=%d): symbolic=%v explicit=%v",
						trial, st, f, nfair, got, expSet[st])
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := kripke.FromExplicit(diamond())
	c := New(s)
	c.MustCheck(ctl.MustParse("EF q"))
	if c.Stats.EUFixpoints == 0 || c.Stats.EUIterations == 0 {
		t.Fatal("EU stats not recorded")
	}
	c.MustCheck(ctl.MustParse("EG q"))
	if c.Stats.EGFixpoints == 0 {
		t.Fatal("EG stats not recorded")
	}
	if c.Stats.PeakNodes == 0 {
		t.Fatal("peak nodes not recorded")
	}
}

func TestMemoization(t *testing.T) {
	s := kripke.FromExplicit(diamond())
	c := New(s)
	c.MustCheck(ctl.MustParse("EF q"))
	n := c.Stats.EUFixpoints
	c.MustCheck(ctl.MustParse("EF q"))
	if c.Stats.EUFixpoints != n {
		t.Fatal("memoization failed: EU recomputed")
	}
}

func TestFairCachedOnce(t *testing.T) {
	e := diamond()
	e.AddFairSet("h", []bool{true, true, true, true})
	s := kripke.FromExplicit(e)
	c := New(s)
	f1 := c.Fair()
	f2 := c.Fair()
	if f1 != f2 {
		t.Fatal("Fair() should be cached")
	}
}

func ExampleChecker_Check() {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(1, "done")
	e.AddInit(0)
	s := kripke.FromExplicit(e)
	c := New(s)
	ok, _, _ := c.CheckInit(ctl.MustParse("AF done"))
	fmt.Println(ok)
	// Output: true
}

// TestSimplifyPreservesSemantics: ctl.Simplify must never change a
// formula's satisfaction set, on models with and without fairness
// constraints — the soundness contract its rules were chosen for.
func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(515))
	atoms := []string{"p", "q"}
	for trial := 0; trial < 40; trial++ {
		e := kripke.RandomExplicit(r, 8+r.Intn(8), 2, atoms, trial%3, 0.25)
		s := kripke.FromExplicit(e)
		c := New(s)
		for fi := 0; fi < 8; fi++ {
			f := randomFormula(r, atoms, 3)
			plain, err := c.Check(f)
			if err != nil {
				t.Fatal(err)
			}
			simplified, err := c.Check(ctl.Simplify(f))
			if err != nil {
				t.Fatalf("simplified %s (from %s): %v", ctl.Simplify(f), f, err)
			}
			if plain != simplified {
				t.Fatalf("trial %d: Simplify changed semantics of %s -> %s (fair=%d)",
					trial, f, ctl.Simplify(f), len(s.Fair))
			}
		}
	}
}

// TestSimplifyPreservesSemanticsWithConstants stresses the folding
// rules on formulas with embedded constants, especially the
// fairness-sensitive shapes that must NOT fold.
func TestSimplifyPreservesSemanticsWithConstants(t *testing.T) {
	r := rand.New(rand.NewSource(616))
	srcs := []string{
		"EF true", "EG true", "AF false", "AG false",
		"E [p U true]", "A [p U false]",
		"EG (p | true)", "AF (p & false)",
		"EX (EF true)", "!EG true",
		"E [true U EG true]",
	}
	for trial := 0; trial < 30; trial++ {
		e := kripke.RandomExplicit(r, 8, 2, []string{"p"}, 1+trial%2, 0.3)
		s := kripke.FromExplicit(e)
		c := New(s)
		for _, src := range srcs {
			f := ctl.MustParse(src)
			plain, err := c.Check(f)
			if err != nil {
				t.Fatal(err)
			}
			simplified, err := c.Check(ctl.Simplify(f))
			if err != nil {
				t.Fatal(err)
			}
			if plain != simplified {
				t.Fatalf("trial %d: Simplify changed semantics of %s -> %s (fair=%d)",
					trial, src, ctl.Simplify(f), len(s.Fair))
			}
		}
	}
}
