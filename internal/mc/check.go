// Package mc implements the symbolic CTL model-checking algorithms of
// Sections 4 and 5 of the paper: the fixpoint procedures CheckEX,
// CheckEU and CheckEG, and their fair variants CheckFairEX, CheckFairEU
// and CheckFairEG. The fair EG procedure additionally saves the
// approximation sequences ("onion rings") of its inner least fixpoints,
// which Section 6's witness construction consumes.
package mc

import (
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
)

// Stats counts fixpoint work for benchmarking. The preimage block
// observes the partitioned relational product: every EX routes through
// kripke's Preimage, and the checker records how many cluster steps the
// installed schedule took, the live-node peak reached inside those
// chains, and the AndExists cache traffic its calls generated.
type Stats struct {
	EXCalls      uint64
	EUFixpoints  uint64
	EUIterations uint64
	EGFixpoints  uint64
	EGIterations uint64
	FairEGOuter  uint64
	PeakNodes    int

	// MemoHits counts checkBasis lookups answered from the per-checker
	// subformula memo — the cross-spec sharing a session-scoped checker
	// gets when overlapping specs are checked against one structure.
	MemoHits uint64

	PreimageCalls    uint64
	ClusterSteps     uint64
	DisjunctSteps    uint64 // component products taken by the disjunctive image
	ParallelBatches  uint64 // disjunctive preimages evaluated on worker goroutines
	PeakClusterNodes int
	AndExistsLookups uint64
	AndExistsHits    uint64

	// Dynamic-reordering deltas: sift events triggered and wall time
	// spent reordering during this checker's work.
	Reorders    uint64
	ReorderTime time.Duration
}

// Checker evaluates CTL formulas over a symbolic Kripke structure. When
// the structure declares fairness constraints, the path quantifiers are
// restricted to fair paths (Section 5).
type Checker struct {
	S     *kripke.Symbolic
	Stats Stats

	fairSet  bdd.Ref // cached CheckFairEG(True); bdd.True when no constraints
	haveFair bool

	care bdd.Ref // don't-care optimization: all results restricted to care

	memo map[string]bdd.Ref // formula string -> protected state set

	hook int // reorder-registry id (see rewriteRefs)
}

// New creates a checker for the structure. The checker registers with
// the manager's reorder registry so its memoized satisfaction sets, the
// fair set and the care set survive dynamic reordering; call Close to
// release the registration and the protections when discarding a
// checker before its manager.
func New(s *kripke.Symbolic) *Checker {
	c := &Checker{S: s, care: bdd.True, memo: map[string]bdd.Ref{}}
	c.hook = s.M.OnReorder(c.rewriteRefs)
	return c
}

// rewriteRefs is the checker's reorder hook.
func (c *Checker) rewriteRefs(translate func(bdd.Ref) bdd.Ref) {
	for k, v := range c.memo {
		c.memo[k] = translate(v)
	}
	if c.haveFair {
		c.fairSet = translate(c.fairSet)
	}
	c.care = translate(c.care)
}

// Close unregisters the checker from the reorder registry and drops its
// protections. The checker must not be used afterwards.
func (c *Checker) Close() {
	m := c.S.M
	m.Unregister(c.hook)
	for _, r := range c.memo {
		m.Unprotect(r)
	}
	c.memo = map[string]bdd.Ref{}
	if c.haveFair {
		m.Unprotect(c.fairSet)
		c.haveFair = false
	}
	if c.care != bdd.True {
		m.Unprotect(c.care)
	}
	c.care = bdd.True
}

// maybeReorder is the checker's fixpoint safe point: it lets the
// manager sift if growth demands it and attributes the work to this
// checker's stats.
func (c *Checker) maybeReorder() {
	m := c.S.M
	before := m.Stats
	if m.ReorderIfNeeded() {
		c.Stats.Reorders += m.Stats.AutoReorders - before.AutoReorders
		c.Stats.ReorderTime += m.Stats.ReorderTime - before.ReorderTime
	}
}

// UseReachableCareSet computes the reachable states and restricts all
// subsequent checking to them — the classic reachability don't-care
// optimization. Satisfaction sets returned by Check afterwards are only
// meaningful on reachable states (which is what CheckInit and witness
// generation from reachable states consume); intermediate BDDs shrink,
// often substantially. Must be called before any Check (the memo is
// cleared).
func (c *Checker) UseReachableCareSet() bdd.Ref {
	before := c.S.M.Stats
	reach, _ := c.S.Reachable()
	c.Stats.Reorders += c.S.M.Stats.AutoReorders - before.AutoReorders
	c.Stats.ReorderTime += c.S.M.Stats.ReorderTime - before.ReorderTime
	c.SetCareSet(reach)
	return reach
}

// SetCareSet installs an arbitrary care set (bdd.True disables the
// optimization).
func (c *Checker) SetCareSet(care bdd.Ref) {
	for _, r := range c.memo {
		c.S.M.Unprotect(r)
	}
	c.memo = map[string]bdd.Ref{}
	if c.haveFair {
		c.S.M.Unprotect(c.fairSet)
		c.haveFair = false
	}
	c.care = c.S.M.Protect(care)
}

func (c *Checker) note() {
	if n := c.S.M.NumNodes(); n > c.Stats.PeakNodes {
		c.Stats.PeakNodes = n
	}
}

// EX computes the states with a successor in f (no fairness),
// restricted to the care set.
func (c *Checker) EX(f bdd.Ref) bdd.Ref {
	c.Stats.EXCalls++
	c.note()
	rel0 := c.S.RelStats()
	ae0 := c.S.M.Stats
	pre := c.S.Preimage(f)
	rel1 := c.S.RelStats()
	c.Stats.PreimageCalls++
	c.Stats.ClusterSteps += rel1.ClusterSteps - rel0.ClusterSteps
	c.Stats.DisjunctSteps += rel1.DisjunctSteps - rel0.DisjunctSteps
	c.Stats.ParallelBatches += rel1.ParallelBatches - rel0.ParallelBatches
	if rel1.PeakLiveNodes > c.Stats.PeakClusterNodes {
		c.Stats.PeakClusterNodes = rel1.PeakLiveNodes
	}
	c.Stats.AndExistsLookups += c.S.M.Stats.AndExistsLookups - ae0.AndExistsLookups
	c.Stats.AndExistsHits += c.S.M.Stats.AndExistsHits - ae0.AndExistsHits
	c.Stats.Reorders += c.S.M.Stats.AutoReorders - ae0.AutoReorders
	c.Stats.ReorderTime += c.S.M.Stats.ReorderTime - ae0.ReorderTime
	if c.care != bdd.True {
		pre = c.S.M.And(pre, c.care)
	}
	return pre
}

// EU computes E[f U g] (no fairness) by the least fixpoint
// lfp Z [ g ∨ (f ∧ EX Z) ].
func (c *Checker) EU(f, g bdd.Ref) bdd.Ref {
	res, _ := c.euApprox(f, g, false)
	return res
}

// EUApprox computes E[f U g] and returns the increasing approximation
// sequence Q_0 ⊆ Q_1 ⊆ ... ⊆ Q_k: Q_i is the set of states from which a
// state in g can be reached in i or fewer steps while satisfying f. The
// rings are the raw material of the witness walk.
func (c *Checker) EUApprox(f, g bdd.Ref) (bdd.Ref, []bdd.Ref) {
	return c.euApprox(f, g, true)
}

func (c *Checker) euApprox(f, g bdd.Ref, keepRings bool) (bdd.Ref, []bdd.Ref) {
	m := c.S.M
	c.Stats.EUFixpoints++
	var rings []bdd.Ref
	q := g
	// The loop's refs are registered so the per-iteration reorder safe
	// point (and any reorder inside EX's cluster chain) rewrites them.
	// The returned rings are only guaranteed until the caller's next
	// operation: callers keeping them must protect and register them
	// (FairEG does) or pause reordering (the witness generator does).
	id := m.OnReorder(func(translate func(bdd.Ref) bdd.Ref) {
		f = translate(f)
		q = translate(q)
		for i := range rings {
			rings[i] = translate(rings[i])
		}
	})
	defer m.Unregister(id)
	if keepRings {
		rings = append(rings, q)
	}
	for {
		c.Stats.EUIterations++
		c.note()
		c.maybeReorder()
		ex := c.EX(q)
		next := m.Or(q, m.And(f, ex))
		if next == q {
			return q, rings
		}
		q = next
		if keepRings {
			rings = append(rings, q)
		}
	}
}

// EG computes EG f (no fairness) by the greatest fixpoint
// gfp Z [ f ∧ EX Z ].
func (c *Checker) EG(f bdd.Ref) bdd.Ref {
	m := c.S.M
	c.Stats.EGFixpoints++
	z := f
	id := m.RegisterRefs(&f, &z)
	defer m.Unregister(id)
	for {
		c.Stats.EGIterations++
		c.note()
		c.maybeReorder()
		ex := c.EX(z)
		next := m.And(f, ex)
		next = m.And(next, z) // monotone anyway; keeps the invariant explicit
		if next == z {
			return z
		}
		z = next
	}
}

// EF computes EF f = E[true U f].
func (c *Checker) EF(f bdd.Ref) bdd.Ref { return c.EU(bdd.True, f) }

// Check evaluates an arbitrary CTL formula and returns the set of states
// satisfying it. The formula is simplified (fairness-soundly) and
// rewritten into the existential basis first; fairness constraints on
// the structure are honored. Results are memoized per formula text, and
// the returned set is protected against garbage collection for the
// checker's lifetime.
func (c *Checker) Check(f *ctl.Formula) (bdd.Ref, error) {
	g := ctl.Existential(ctl.Simplify(f))
	return c.checkBasis(g)
}

// MustCheck is Check, panicking on error (unknown atoms).
func (c *Checker) MustCheck(f *ctl.Formula) bdd.Ref {
	set, err := c.Check(f)
	if err != nil {
		panic(err)
	}
	return set
}

// CheckInit reports whether every initial state satisfies f.
func (c *Checker) CheckInit(f *ctl.Formula) (bool, bdd.Ref, error) {
	set, err := c.Check(f)
	if err != nil {
		return false, bdd.False, err
	}
	return c.S.M.Implies(c.S.Init, set), set, nil
}

// checkBasis evaluates a formula in the existential basis.
func (c *Checker) checkBasis(f *ctl.Formula) (bdd.Ref, error) {
	key := f.String()
	if r, ok := c.memo[key]; ok {
		c.Stats.MemoHits++
		return r, nil
	}
	m := c.S.M
	var res bdd.Ref
	switch f.Kind {
	case ctl.KTrue:
		res = bdd.True
	case ctl.KFalse:
		res = bdd.False
	case ctl.KAtom, ctl.KEq, ctl.KNeq:
		set, err := c.S.AtomSet(f)
		if err != nil {
			return bdd.False, err
		}
		res = set
	case ctl.KNot:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return bdd.False, err
		}
		res = m.Not(l)
	case ctl.KAnd, ctl.KOr:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return bdd.False, err
		}
		r, err := c.checkBasis(f.R)
		if err != nil {
			return bdd.False, err
		}
		// A reorder during f.R's fixpoints invalidates the local copy of
		// l; the memoized entry was rewritten, so re-fetch it.
		l, _ = c.checkBasis(f.L)
		if f.Kind == ctl.KAnd {
			res = m.And(l, r)
		} else {
			res = m.Or(l, r)
		}
	case ctl.KEX:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return bdd.False, err
		}
		res = c.FairEX(l)
	case ctl.KEU:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return bdd.False, err
		}
		r, err := c.checkBasis(f.R)
		if err != nil {
			return bdd.False, err
		}
		l, _ = c.checkBasis(f.L) // see KAnd: refresh after f.R's fixpoints
		res = c.FairEU(l, r)
	case ctl.KEG:
		l, err := c.checkBasis(f.L)
		if err != nil {
			return bdd.False, err
		}
		if len(c.S.Fair) == 0 {
			res = c.EG(l)
		} else {
			fr, rings := c.FairEG(l)
			res = fr
			rings.Release(m)
		}
	default:
		return bdd.False, fmt.Errorf("mc: formula not in existential basis: %s", f)
	}
	if c.care != bdd.True {
		res = m.And(res, c.care)
	}
	m.Protect(res)
	c.memo[key] = res
	return res, nil
}
