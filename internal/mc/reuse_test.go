package mc

import (
	"testing"

	"repro/internal/ctl"
	"repro/internal/kripke"
)

// TestSeedFairSkipsFixpoint: a checker seeded with a precomputed fair
// set must answer fair queries without running the fair EG fixpoint,
// and must give the same verdicts as a cold checker.
func TestSeedFairSkipsFixpoint(t *testing.T) {
	build := func() *kripke.Symbolic {
		e := kripke.NewExplicit(2)
		e.AddEdge(0, 0)
		e.AddEdge(0, 1)
		e.AddEdge(1, 1)
		e.Label(0, "p")
		e.AddInit(0)
		e.AddFairSet("h", []bool{false, true})
		return kripke.FromExplicit(e)
	}

	cold := New(build())
	fairSet := cold.Fair()
	coldVerdict, _, err := cold.CheckInit(ctl.MustParse("EG p"))
	if err != nil {
		t.Fatal(err)
	}

	warm := New(cold.S) // same structure, fresh memo
	warm.SeedFair(fairSet)
	if got, ok := warm.CachedFair(); !ok || got != fairSet {
		t.Fatal("CachedFair does not expose the seed")
	}
	outerBefore := warm.Stats.FairEGOuter
	if got := warm.Fair(); got != fairSet {
		t.Fatal("seeded Fair() diverged")
	}
	// EX/EU route through Fair(); the seed means no fair EG runs for it.
	warm.MustCheck(ctl.MustParse("EX p"))
	if warm.Stats.FairEGOuter != outerBefore {
		t.Fatal("seeded checker still ran the fair EG fixpoint for Fair()")
	}
	warmVerdict, _, err := warm.CheckInit(ctl.MustParse("EG p"))
	if err != nil {
		t.Fatal(err)
	}
	if warmVerdict != coldVerdict {
		t.Fatalf("seeded checker verdict %v, cold %v", warmVerdict, coldVerdict)
	}
}

// TestMemoHitsCounted: repeat and overlapping formulas are answered from
// the memo and counted, the cross-spec sharing counter a session
// surfaces in /statsz.
func TestMemoHitsCounted(t *testing.T) {
	s := kripke.FromExplicit(diamond())
	c := New(s)
	c.MustCheck(ctl.MustParse("EF q"))
	// (checkBasis re-fetches the left operand after the right's fixpoints,
	// so even a first evaluation can record hits; only deltas matter.)
	first := c.Stats.MemoHits
	c.MustCheck(ctl.MustParse("EF q"))
	if c.Stats.MemoHits <= first {
		t.Fatal("repeat formula not counted as a memo hit")
	}
	before := c.Stats.MemoHits
	// Overlapping spec: the EF q subformula is shared.
	c.MustCheck(ctl.MustParse("EX EF q"))
	if c.Stats.MemoHits <= before {
		t.Fatal("shared subformula not answered from the memo")
	}
}
