package mc

import (
	"repro/internal/bdd"
)

// Fair CTL checking (Section 5). A path is fair if every constraint
// h ∈ H holds infinitely often along it. EG is the interesting case:
//
//	CheckFairEG(f) = gfp Z [ f ∧ ⋀_{k} EX( E[f U Z ∧ h_k] ) ]
//
// EX and EU reduce to the unfair procedures against the set fair of
// states that start some fair path:
//
//	CheckFairEX(f)   = CheckEX(f ∧ fair)
//	CheckFairEU(f,g) = CheckEU(f, g ∧ fair)

// Rings holds the saved approximation sequences of the inner least
// fixpoints E[f U Z ∧ h_k] from the final outer iteration of fair EG,
// with Z equal to the fixpoint. Rings[k][i] is the set of states from
// which some state of (EG f) ∧ h_k is reachable in i or fewer steps
// along f-states. This is precisely the data Section 6's witness
// construction walks over. The rings are protected against garbage
// collection and registered with the reorder registry until Release.
type Rings struct {
	F       bdd.Ref     // the f the rings were computed for
	Result  bdd.Ref     // the fair EG f fixpoint
	PerFair [][]bdd.Ref // PerFair[k] = rings for fairness constraint k

	hook int // reorder-registry id
}

// register installs the rings' reorder hook. PerFair may still grow
// afterwards; the hook reads the current slices on every invocation.
func (r *Rings) register(m *bdd.Manager) {
	r.hook = m.OnReorder(func(translate func(bdd.Ref) bdd.Ref) {
		r.F = translate(r.F)
		r.Result = translate(r.Result)
		for _, rs := range r.PerFair {
			for i := range rs {
				rs[i] = translate(rs[i])
			}
		}
	})
}

// FairEG computes EG f under the structure's fairness constraints and
// returns the saved rings. With no fairness constraints it degenerates
// to plain EG and a single pseudo-constraint "true" so that witness
// construction still has rings to walk (the cycle must merely return to
// the EG set).
func (c *Checker) FairEG(f bdd.Ref) (bdd.Ref, *Rings) {
	m := c.S.M
	// c.S.Fair aliases the structure's slice, whose elements the
	// structure's reorder hook rewrites in place — reading fair[k] inside
	// the loops always sees current refs.
	fair := c.S.Fair
	nFair := len(fair)
	useTrue := nFair == 0
	if useTrue {
		// Treat as a single trivial constraint h = true.
		nFair = 1
	}
	h := func(k int) bdd.Ref {
		if useTrue {
			return bdd.True
		}
		return fair[k]
	}

	z := f
	id := m.RegisterRefs(&f, &z)
	for {
		c.Stats.FairEGOuter++
		c.note()
		c.maybeReorder()
		next := f
		nid := m.RegisterRefs(&next)
		for k := 0; k < nFair; k++ {
			target := m.And(z, h(k))
			eu := c.EU(f, target)
			ex := c.EX(eu)
			next = m.And(next, ex)
		}
		m.Unregister(nid)
		next = m.And(next, z)
		if next == z {
			break
		}
		z = next
	}
	m.Unregister(id)

	// Final pass with Z at the fixpoint: save the rings. The rings
	// struct is registered before the pass so sequences already saved
	// survive reorders triggered by the remaining EU fixpoints.
	rings := &Rings{F: m.Protect(f), Result: m.Protect(z)}
	rings.register(m)
	for k := 0; k < nFair; k++ {
		target := m.And(rings.Result, h(k))
		_, rs := c.EUApprox(rings.F, target)
		for _, r := range rs {
			m.Protect(r)
		}
		rings.PerFair = append(rings.PerFair, rs)
	}
	return rings.Result, rings
}

// Release unprotects the rings' BDDs and removes their reorder
// registration. Call when witness construction is done with them.
func (r *Rings) Release(m *bdd.Manager) {
	m.Unregister(r.hook)
	m.Unprotect(r.F)
	m.Unprotect(r.Result)
	for _, rs := range r.PerFair {
		for _, q := range rs {
			m.Unprotect(q)
		}
	}
}

// Fair returns the set of states from which some fair path begins
// (CheckFair(EG true)); it is cached. Without fairness constraints every
// state of a total structure qualifies, so True is returned.
func (c *Checker) Fair() bdd.Ref {
	if c.haveFair {
		return c.fairSet
	}
	if len(c.S.Fair) == 0 {
		c.fairSet = bdd.True
	} else {
		res, rings := c.FairEG(bdd.True)
		c.fairSet = c.S.M.Protect(res)
		rings.Release(c.S.M)
	}
	c.haveFair = true
	return c.fairSet
}

// SeedFair installs a precomputed fair-states set, skipping the fair EG
// fixpoint that Fair would otherwise run — the warm-start path, where
// the set was restored from a disk record or carried over from a prior
// query. Call it after SetCareSet/UseReachableCareSet: installing a care
// set clears the fair cache.
func (c *Checker) SeedFair(fair bdd.Ref) {
	if c.haveFair {
		c.S.M.Unprotect(c.fairSet)
	}
	c.fairSet = c.S.M.Protect(fair)
	c.haveFair = true
}

// CachedFair peeks at the fair-set cache without computing anything.
func (c *Checker) CachedFair() (bdd.Ref, bool) { return c.fairSet, c.haveFair }

// FairEX computes EX f under fairness. The argument is registered across
// the (possibly reordering) fair-set computation.
func (c *Checker) FairEX(f bdd.Ref) bdd.Ref {
	if len(c.S.Fair) == 0 {
		return c.EX(f)
	}
	id := c.S.M.RegisterRefs(&f)
	fairSet := c.Fair()
	c.S.M.Unregister(id)
	return c.EX(c.S.M.And(f, fairSet))
}

// FairEU computes E[f U g] under fairness.
func (c *Checker) FairEU(f, g bdd.Ref) bdd.Ref {
	if len(c.S.Fair) == 0 {
		return c.EU(f, g)
	}
	id := c.S.M.RegisterRefs(&f, &g)
	fairSet := c.Fair()
	c.S.M.Unregister(id)
	return c.EU(f, c.S.M.And(g, fairSet))
}

// FairEUApprox is FairEU with the approximation rings (for witnesses).
func (c *Checker) FairEUApprox(f, g bdd.Ref) (bdd.Ref, []bdd.Ref) {
	if len(c.S.Fair) == 0 {
		return c.EUApprox(f, g)
	}
	id := c.S.M.RegisterRefs(&f, &g)
	fairSet := c.Fair()
	c.S.M.Unregister(id)
	return c.EUApprox(f, c.S.M.And(g, fairSet))
}
