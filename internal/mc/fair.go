package mc

import (
	"repro/internal/bdd"
)

// Fair CTL checking (Section 5). A path is fair if every constraint
// h ∈ H holds infinitely often along it. EG is the interesting case:
//
//	CheckFairEG(f) = gfp Z [ f ∧ ⋀_{k} EX( E[f U Z ∧ h_k] ) ]
//
// EX and EU reduce to the unfair procedures against the set fair of
// states that start some fair path:
//
//	CheckFairEX(f)   = CheckEX(f ∧ fair)
//	CheckFairEU(f,g) = CheckEU(f, g ∧ fair)

// Rings holds the saved approximation sequences of the inner least
// fixpoints E[f U Z ∧ h_k] from the final outer iteration of fair EG,
// with Z equal to the fixpoint. Rings[k][i] is the set of states from
// which some state of (EG f) ∧ h_k is reachable in i or fewer steps
// along f-states. This is precisely the data Section 6's witness
// construction walks over.
type Rings struct {
	F       bdd.Ref     // the f the rings were computed for
	Result  bdd.Ref     // the fair EG f fixpoint
	PerFair [][]bdd.Ref // PerFair[k] = rings for fairness constraint k
}

// FairEG computes EG f under the structure's fairness constraints and
// returns the saved rings. With no fairness constraints it degenerates
// to plain EG and a single pseudo-constraint "true" so that witness
// construction still has rings to walk (the cycle must merely return to
// the EG set).
func (c *Checker) FairEG(f bdd.Ref) (bdd.Ref, *Rings) {
	m := c.S.M
	fair := c.S.Fair
	if len(fair) == 0 {
		// Treat as a single trivial constraint h = true.
		fair = []bdd.Ref{bdd.True}
	}

	z := f
	for {
		c.Stats.FairEGOuter++
		c.note()
		next := f
		for _, h := range fair {
			target := m.And(z, h)
			eu := c.EU(f, target)
			next = m.And(next, c.EX(eu))
		}
		next = m.And(next, z)
		if next == z {
			break
		}
		z = next
	}

	// Final pass with Z at the fixpoint: save the rings.
	rings := &Rings{F: m.Protect(f), Result: m.Protect(z)}
	for _, h := range fair {
		target := m.And(z, h)
		_, rs := c.EUApprox(f, target)
		for _, r := range rs {
			m.Protect(r)
		}
		rings.PerFair = append(rings.PerFair, rs)
	}
	return z, rings
}

// Release unprotects the rings' BDDs. Call when witness construction is
// done with them.
func (r *Rings) Release(m *bdd.Manager) {
	m.Unprotect(r.F)
	m.Unprotect(r.Result)
	for _, rs := range r.PerFair {
		for _, q := range rs {
			m.Unprotect(q)
		}
	}
}

// Fair returns the set of states from which some fair path begins
// (CheckFair(EG true)); it is cached. Without fairness constraints every
// state of a total structure qualifies, so True is returned.
func (c *Checker) Fair() bdd.Ref {
	if c.haveFair {
		return c.fairSet
	}
	if len(c.S.Fair) == 0 {
		c.fairSet = bdd.True
	} else {
		res, rings := c.FairEG(bdd.True)
		rings.Release(c.S.M)
		c.fairSet = c.S.M.Protect(res)
	}
	c.haveFair = true
	return c.fairSet
}

// FairEX computes EX f under fairness.
func (c *Checker) FairEX(f bdd.Ref) bdd.Ref {
	if len(c.S.Fair) == 0 {
		return c.EX(f)
	}
	return c.EX(c.S.M.And(f, c.Fair()))
}

// FairEU computes E[f U g] under fairness.
func (c *Checker) FairEU(f, g bdd.Ref) bdd.Ref {
	if len(c.S.Fair) == 0 {
		return c.EU(f, g)
	}
	return c.EU(f, c.S.M.And(g, c.Fair()))
}

// FairEUApprox is FairEU with the approximation rings (for witnesses).
func (c *Checker) FairEUApprox(f, g bdd.Ref) (bdd.Ref, []bdd.Ref) {
	if len(c.S.Fair) == 0 {
		return c.EUApprox(f, g)
	}
	return c.EUApprox(f, c.S.M.And(g, c.Fair()))
}
