package mc

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
)

// TestFairEGFixpointInvariants checks the defining properties of the
// fair EG fixpoint and its saved rings on random structures:
//
//  1. Result ⊆ f;
//  2. for every constraint k, Result ⊆ EX E[f U Result ∧ h_k];
//  3. the rings are increasing and their union is E[f U Result ∧ h_k];
//  4. Q_0 = Result ∧ h_k.
func TestFairEGFixpointInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 25; trial++ {
		e := kripke.RandomExplicit(r, 8+r.Intn(8), 2, []string{"p"}, 1+trial%3, 0.3)
		s := kripke.FromExplicit(e)
		c := New(s)
		pset, err := s.AtomSet(ctl.Atom("p"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []bdd.Ref{bdd.True, pset} {
			res, rings := c.FairEG(f)
			if !s.M.Implies(res, f) {
				t.Fatalf("trial %d: EG result not within f", trial)
			}
			if len(rings.PerFair) != len(s.Fair) {
				t.Fatalf("ring family count %d != %d", len(rings.PerFair), len(s.Fair))
			}
			for k, rs := range rings.PerFair {
				target := s.M.And(res, s.Fair[k])
				if rs[0] != target {
					t.Fatalf("trial %d: Q_0 != Result ∧ h_%d", trial, k)
				}
				for i := 1; i < len(rs); i++ {
					if !s.M.Implies(rs[i-1], rs[i]) {
						t.Fatalf("trial %d: rings not increasing", trial)
					}
				}
				eu := c.EU(f, target)
				if rs[len(rs)-1] != eu {
					t.Fatalf("trial %d: final ring != EU set", trial)
				}
				// fixpoint step: res ⊆ EX(EU(f, res ∧ h_k))
				if !s.M.Implies(res, c.EX(eu)) {
					t.Fatalf("trial %d: fixpoint property violated for constraint %d", trial, k)
				}
			}
			rings.Release(s.M)
		}
	}
}

// TestFairDefinitionalLaws checks CheckFairEX/EU against their
// definitions at the BDD level.
func TestFairDefinitionalLaws(t *testing.T) {
	r := rand.New(rand.NewSource(3141))
	for trial := 0; trial < 25; trial++ {
		e := kripke.RandomExplicit(r, 10, 2, []string{"p", "q"}, 1+trial%2, 0.3)
		s := kripke.FromExplicit(e)
		c := New(s)
		pset, _ := s.AtomSet(ctl.Atom("p"))
		qset, _ := s.AtomSet(ctl.Atom("q"))
		fair := c.Fair()

		if c.FairEX(pset) != c.EX(s.M.And(pset, fair)) {
			t.Fatal("CheckFairEX law broken")
		}
		if c.FairEU(pset, qset) != c.EU(pset, s.M.And(qset, fair)) {
			t.Fatal("CheckFairEU law broken")
		}
		// fair = FairEG(True)
		res, rings := c.FairEG(bdd.True)
		rings.Release(s.M)
		if res != fair {
			t.Fatal("Fair() != FairEG(True)")
		}
	}
}

// TestEGTrueIsAllStatesWithoutFairness: on a total structure EG true
// holds everywhere when no fairness constraints exist.
func TestEGTrueIsAllStatesWithoutFairness(t *testing.T) {
	r := rand.New(rand.NewSource(999))
	e := kripke.RandomExplicit(r, 12, 2, nil, 0, 0)
	s := kripke.FromExplicit(e)
	c := New(s)
	eg := c.EG(bdd.True)
	// restricted to valid states (the binary encoding may have slack)
	if !s.M.Implies(s.Invar, eg) {
		t.Fatal("EG true must cover all (valid) states of a total structure")
	}
}

// TestNestedFairFormulas exercises fairness interaction with nesting.
func TestNestedFairFormulas(t *testing.T) {
	// 0 -> 1 -> 0 and 1 -> 2 -> 2; fairness at 0 makes the left loop the
	// only fair one, so under fair semantics EG EF p (p at 2) must fail
	// at... EF p holds at 0,1,2; EG (EF p): fair paths looping 0-1 keep
	// EF p true... since 2 is reachable from 0 and 1 always.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(1, 2)
	e.AddEdge(2, 2)
	e.Label(2, "p")
	e.AddInit(0)
	e.AddFairSet("h", []bool{true, false, false})
	s := kripke.FromExplicit(e)
	c := New(s)
	// Fair EF p requires a FAIR path that reaches p; the only p-state
	// (2) starts no fair path, so fair EF p is empty — and so is
	// EG EF p. This is exactly the CheckFairEU(g ∧ fair) restriction.
	set := c.MustCheck(ctl.MustParse("EF p"))
	for st := 0; st < 3; st++ {
		if s.Holds(set, kripke.IndexState(st, len(s.Vars))) {
			t.Fatalf("fair EF p should be empty, holds at %d", st)
		}
	}
	set = c.MustCheck(ctl.MustParse("EG EF p"))
	for st := 0; st < 3; st++ {
		if s.Holds(set, kripke.IndexState(st, len(s.Vars))) {
			t.Fatalf("EG EF p should be empty, holds at %d", st)
		}
	}
	// EF of a fair-loop state works: EF h-state.
	e.Label(0, "q")
	s2 := kripke.FromExplicit(e)
	c2 := New(s2)
	set = c2.MustCheck(ctl.MustParse("EG EF q"))
	for _, st := range []int{0, 1} {
		if !s2.Holds(set, kripke.IndexState(st, len(s2.Vars))) {
			t.Fatalf("EG EF q should hold at %d", st)
		}
	}
	// but EG p fails everywhere: p-states cannot reach the fair loop...
	// state 2 loops forever but unfairly.
	set = c.MustCheck(ctl.MustParse("EG p"))
	for st := 0; st < 3; st++ {
		if s.Holds(set, kripke.IndexState(st, len(s.Vars))) {
			t.Fatalf("EG p should fail at %d under fairness", st)
		}
	}
	// AF !p under fairness: every fair path eventually leaves p... state
	// 2 starts no fair path, so trivially all *fair* paths from 2 — none
	// exist; AF quantifies over fair paths only: at state 2 it holds
	// vacuously. At 0 and 1 (p false) it holds immediately.
	set = c.MustCheck(ctl.MustParse("AF !p"))
	for st := 0; st < 3; st++ {
		if !s.Holds(set, kripke.IndexState(st, len(s.Vars))) {
			t.Fatalf("AF !p should hold at %d", st)
		}
	}
}
