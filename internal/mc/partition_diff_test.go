package mc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
)

// Differential oracle for the partitioned transition relation: on random
// factored Kripke structures, the clustered early-quantification path
// must be BDD-identical to the monolithic ∃v′. Trans ∧ f′ — for raw
// Preimage/Image on random state sets, and verdict-for-verdict for
// CheckInit on random CTL formulas.

// complementModes parametrizes the differential oracles by node
// representation: every oracle runs once on a complement-edge manager
// and once on the structural reference (DisableComplementEdges), with
// identical random streams, so the two representations are checked
// against the monolithic oracle under the exact same workload.
var complementModes = []struct {
	name string
	opts []bdd.Option
}{
	{"comp", nil},
	{"nocomp", []bdd.Option{bdd.DisableComplementEdges()}},
}

// randomFactoredModel builds a random model through the Builder so a
// conjunctive partition is installed: each variable gets a random
// next-state function (deterministic, delayed-choice, or free), and the
// structure optionally carries random fairness constraints. The
// per-variable constraints keep the relation total by construction.
func randomFactoredModel(r *rand.Rand, nvars, nfair int, opts ...bdd.Option) *kripke.Symbolic {
	names := make([]string, nvars)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	b := kripke.NewBuilder(names, opts...)
	m := b.S.M

	// randomFunc: a random boolean function over a couple of current-state
	// variables — small supports give the affinity pass something to chew.
	randomFunc := func() bdd.Ref {
		f := bdd.False
		terms := 1 + r.Intn(2)
		for t := 0; t < terms; t++ {
			cube := bdd.True
			for _, name := range names {
				switch r.Intn(4) {
				case 0:
					cube = m.And(cube, b.Cur(name))
				case 1:
					cube = m.And(cube, m.Not(b.Cur(name)))
				}
			}
			f = m.Or(f, cube)
		}
		return f
	}

	for _, name := range names {
		switch r.Intn(4) {
		case 0, 1:
			b.NextFunc(name, randomFunc())
		case 2:
			b.NextChoice(name, randomFunc())
		default:
			b.NextFree(name)
		}
		if r.Intn(2) == 0 {
			b.InitValue(name, r.Intn(2) == 0)
		}
	}
	for k := 0; k < nfair; k++ {
		// Nonempty fairness set: a random function or'd with one minterm.
		b.AddFairness(fmt.Sprintf("h%d", k), m.Or(randomFunc(), b.Cur(names[r.Intn(nvars)])))
	}
	return b.Finish()
}

// randomStateSet builds a random union of partial cubes over the
// current-state variables.
func randomStateSet(r *rand.Rand, s *kripke.Symbolic) bdd.Ref {
	m := s.M
	set := bdd.False
	for i := 0; i < 1+r.Intn(3); i++ {
		cube := bdd.True
		for _, v := range s.Vars {
			switch r.Intn(3) {
			case 0:
				cube = m.And(cube, m.Var(v.Cur))
			case 1:
				cube = m.And(cube, m.NVar(v.Cur))
			}
		}
		set = m.Or(set, cube)
	}
	return set
}

func TestPartitionedPreimageDifferentialOracle(t *testing.T) {
	for _, mode := range complementModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(4711))
			trials := 200
			partitioned := 0
			for trial := 0; trial < trials; trial++ {
				s := randomFactoredModel(r, 3+r.Intn(4), trial%3, mode.opts...)
				if s.HasClusters() {
					partitioned++
				}
				for i := 0; i < 4; i++ {
					set := randomStateSet(r, s)
					s.EnablePartition(true)
					prePart := s.Preimage(set)
					imgPart := s.Image(set)
					s.EnablePartition(false)
					preMono := s.Preimage(set)
					imgMono := s.Image(set)
					s.EnablePartition(true)
					if prePart != preMono {
						t.Fatalf("trial %d: partitioned Preimage differs from monolithic oracle", trial)
					}
					if imgPart != imgMono {
						t.Fatalf("trial %d: partitioned Image differs from monolithic oracle", trial)
					}
				}
			}
			if partitioned < trials/2 {
				t.Fatalf("only %d/%d random models got a partition — generator too weak", partitioned, trials)
			}
		})
	}
}

func TestPartitionedCheckInitDifferentialOracle(t *testing.T) {
	for _, mode := range complementModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			testPartitionedCheckInit(t, mode.opts)
		})
	}
}

func testPartitionedCheckInit(t *testing.T, opts []bdd.Option) {
	r := rand.New(rand.NewSource(2718))
	atomsFor := func(s *kripke.Symbolic) []string {
		names := s.VarNames()
		if len(names) > 2 {
			names = names[:2]
		}
		return names
	}
	for trial := 0; trial < 120; trial++ {
		s := randomFactoredModel(r, 3+r.Intn(3), trial%3, opts...)
		atoms := atomsFor(s)
		formulas := make([]*struct {
			f       string
			verdict bool
			set     bdd.Ref
		}, 0, 5)
		cp := New(s) // partitioned checker
		for i := 0; i < 5; i++ {
			f := randomFormula(r, atoms, 3)
			ok, set, err := cp.CheckInit(f)
			if err != nil {
				t.Fatalf("partitioned CheckInit(%s): %v", f, err)
			}
			formulas = append(formulas, &struct {
				f       string
				verdict bool
				set     bdd.Ref
			}{f.String(), ok, set})
		}
		s.EnablePartition(false)
		cm := New(s) // monolithic checker over the same structure
		for _, want := range formulas {
			f := ctl.MustParse(want.f)
			ok, set, err := cm.CheckInit(f)
			if err != nil {
				t.Fatalf("monolithic CheckInit(%s): %v", want.f, err)
			}
			if ok != want.verdict {
				t.Fatalf("trial %d: verdict differs on %s: partitioned=%v monolithic=%v",
					trial, want.f, want.verdict, ok)
			}
			if set != want.set {
				t.Fatalf("trial %d: satisfaction set differs on %s", trial, want.f)
			}
		}
		s.EnablePartition(true)
	}
}
