package mc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
)

// Differential oracle for the disjunctive transition partition: on
// random interleaved models carrying all three transition
// representations, the disjunctive image — sequential and parallel —
// must be BDD-identical to the monolithic path, and CheckInit must
// agree verdict-for-verdict and set-for-set (including fair models, so
// FairEG runs over the disjunctive preimage).

// randomInterleavedModel builds a random interleaved model: 2^nSched
// processes selected by scheduler bits, each driving its own data
// variables in its turn while the rest are framed. The monolithic
// relation, the per-variable conjunctive clusters and the per-process
// disjunctive components are all installed on the one structure.
func randomInterleavedModel(r *rand.Rand, nData, nSched, nfair int, opts ...bdd.Option) *kripke.Symbolic {
	names := make([]string, nData+nSched)
	for i := 0; i < nData; i++ {
		names[i] = fmt.Sprintf("v%d", i)
	}
	for i := 0; i < nSched; i++ {
		names[nData+i] = fmt.Sprintf("sch%d", i)
	}
	s := kripke.NewSymbolic(names, opts...)
	m := s.M

	randomFunc := func(n int) bdd.Ref {
		f := bdd.False
		for t := 0; t < 1+r.Intn(2); t++ {
			cube := bdd.True
			for i := 0; i < n; i++ {
				switch r.Intn(3) {
				case 0:
					cube = m.And(cube, m.Var(s.Vars[i].Cur))
				case 1:
					cube = m.And(cube, m.NVar(s.Vars[i].Cur))
				}
			}
			f = m.Or(f, cube)
		}
		return f
	}

	k := 1 << nSched
	guards := make([]bdd.Ref, k)
	for p := 0; p < k; p++ {
		g := bdd.True
		for bit := 0; bit < nSched; bit++ {
			v := s.Vars[nData+bit].Cur
			if p>>bit&1 == 1 {
				g = m.And(g, m.Var(v))
			} else {
				g = m.And(g, m.NVar(v))
			}
		}
		guards[p] = g
	}
	clusters := make([]bdd.Ref, nData)
	comps := make([]bdd.Ref, k)
	for p := range comps {
		comps[p] = guards[p]
	}
	for v := 0; v < nData; v++ {
		cl := bdd.False
		for p := 0; p < k; p++ {
			drive := m.Var(s.Vars[v].Cur) // framed unless owned
			if v%k == p {
				drive = randomFunc(nData)
			}
			step := m.Eq(m.Var(s.Vars[v].Next), drive)
			cl = m.Or(cl, m.And(guards[p], step))
			comps[p] = m.And(comps[p], step)
		}
		clusters[v] = cl
	}
	mono := bdd.True
	for _, cl := range clusters {
		mono = m.And(mono, cl)
	}
	s.SetTrans(mono)
	s.SetClusters(clusters)
	s.SetDisjuncts(comps, nil)
	init := randomFunc(nData + nSched)
	if init == bdd.False {
		init = bdd.True
	}
	s.Init = m.Protect(init)
	for f := 0; f < nfair; f++ {
		s.AddFairness(fmt.Sprintf("h%d", f),
			m.Or(randomFunc(nData), m.Var(s.Vars[r.Intn(len(s.Vars))].Cur)))
	}
	return s
}

func TestDisjunctPreimageDifferentialOracle(t *testing.T) {
	for _, mode := range complementModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			testDisjunctPreimage(t, mode.opts)
		})
	}
}

func testDisjunctPreimage(t *testing.T, opts []bdd.Option) {
	r := rand.New(rand.NewSource(6823))
	for trial := 0; trial < 100; trial++ {
		s := randomInterleavedModel(r, 3+r.Intn(3), 1+r.Intn(2), 0, opts...)
		if trial%2 == 1 {
			s.SetWorkers(3)
		}
		for i := 0; i < 4; i++ {
			set := randomStateSet(r, s)
			s.EnableDisjunct(true)
			preD := s.Preimage(set)
			imgD := s.Image(set)
			s.EnableDisjunct(false)
			s.EnablePartition(false)
			preM := s.Preimage(set)
			imgM := s.Image(set)
			s.EnablePartition(true)
			if preD != preM {
				t.Fatalf("trial %d: disjunctive Preimage differs from monolithic oracle", trial)
			}
			if imgD != imgM {
				t.Fatalf("trial %d: disjunctive Image differs from monolithic oracle", trial)
			}
		}
	}
}

func TestDisjunctCheckInitDifferentialOracle(t *testing.T) {
	for _, mode := range complementModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			testDisjunctCheckInit(t, mode.opts)
		})
	}
}

func testDisjunctCheckInit(t *testing.T, opts []bdd.Option) {
	r := rand.New(rand.NewSource(9157))
	for trial := 0; trial < 60; trial++ {
		// trial%3 fairness sets: FairEG must work unchanged over the
		// disjunctive image.
		s := randomInterleavedModel(r, 3+r.Intn(2), 1, trial%3, opts...)
		atoms := s.VarNames()[:2]

		s.EnableDisjunct(true)
		if trial%2 == 1 {
			s.SetWorkers(3)
		}
		cd := New(s) // disjunctive checker
		type probe struct {
			f       string
			verdict bool
			set     bdd.Ref
		}
		var probes []probe
		for i := 0; i < 5; i++ {
			f := randomFormula(r, atoms, 3)
			ok, set, err := cd.CheckInit(f)
			if err != nil {
				t.Fatalf("disjunctive CheckInit(%s): %v", f, err)
			}
			probes = append(probes, probe{f.String(), ok, set})
		}
		// Propositional-only formula draws make no preimage calls; when
		// one happened it must have routed through the disjuncts.
		if cd.Stats.PreimageCalls > 0 && cd.Stats.DisjunctSteps == 0 {
			t.Fatalf("trial %d: preimages ran but no disjunct steps counted", trial)
		}

		s.EnableDisjunct(false)
		s.EnablePartition(false)
		cm := New(s) // monolithic checker over the same structure
		for _, want := range probes {
			f := ctl.MustParse(want.f)
			ok, set, err := cm.CheckInit(f)
			if err != nil {
				t.Fatalf("monolithic CheckInit(%s): %v", want.f, err)
			}
			if ok != want.verdict {
				t.Fatalf("trial %d: verdict differs on %s: disjunctive=%v monolithic=%v",
					trial, want.f, want.verdict, ok)
			}
			if set != want.set {
				t.Fatalf("trial %d: satisfaction set differs on %s", trial, want.f)
			}
		}
		s.EnablePartition(true)
	}
}
