package mc

import (
	"math/rand"
	"testing"

	"repro/internal/ctl"
	"repro/internal/kripke"
)

// TestCareSetAgreesOnReachable: with the reachability care set
// installed, every formula's satisfaction set must agree with the plain
// checker on all reachable states.
func TestCareSetAgreesOnReachable(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	atoms := []string{"p", "q"}
	for trial := 0; trial < 30; trial++ {
		e := kripke.RandomExplicit(r, 8+r.Intn(8), 2, atoms, trial%3, 0.25)
		s := kripke.FromExplicit(e)
		plain := New(s)
		cared := New(s)
		reach := cared.UseReachableCareSet()
		for fi := 0; fi < 6; fi++ {
			f := randomFormula(r, atoms, 3)
			pSet, err := plain.Check(f)
			if err != nil {
				t.Fatal(err)
			}
			cSet, err := cared.Check(f)
			if err != nil {
				t.Fatal(err)
			}
			if s.M.And(pSet, reach) != cSet {
				t.Fatalf("trial %d: care-set result differs on reachable states for %s", trial, f)
			}
			// the cared set never exceeds the care set
			if !s.M.Implies(cSet, reach) {
				t.Fatalf("trial %d: result escapes the care set", trial)
			}
		}
	}
}

// TestCareSetCheckInitSameVerdicts: verification verdicts at the initial
// states are identical with and without the optimization.
func TestCareSetCheckInitSameVerdicts(t *testing.T) {
	r := rand.New(rand.NewSource(809))
	atoms := []string{"p", "q"}
	for trial := 0; trial < 20; trial++ {
		e := kripke.RandomExplicit(r, 10, 2, atoms, trial%2, 0.3)
		s := kripke.FromExplicit(e)
		plain := New(s)
		cared := New(s)
		cared.UseReachableCareSet()
		for fi := 0; fi < 6; fi++ {
			f := randomFormula(r, atoms, 3)
			v1, _, err := plain.CheckInit(f)
			if err != nil {
				t.Fatal(err)
			}
			v2, _, err := cared.CheckInit(f)
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 {
				t.Fatalf("trial %d: verdicts differ on %s: plain=%v cared=%v", trial, f, v1, v2)
			}
		}
	}
}

// TestCareSetClearsMemo: installing a care set after checking must not
// leak stale unrestricted results.
func TestCareSetClearsMemo(t *testing.T) {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.AddEdge(2, 2) // unreachable
	e.Label(2, "p")
	e.AddInit(0)
	s := kripke.FromExplicit(e)
	c := New(s)
	before, err := c.Check(ctl.MustParse("EF p"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(before, kripke.IndexState(2, len(s.Vars))) {
		t.Fatal("without care set, the unreachable p-state satisfies EF p")
	}
	c.UseReachableCareSet()
	after, err := c.Check(ctl.MustParse("EF p"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Holds(after, kripke.IndexState(2, len(s.Vars))) {
		t.Fatal("care set not applied after SetCareSet")
	}
}
