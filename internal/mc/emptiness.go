package mc

import (
	"repro/internal/bdd"
	"repro/internal/kripke"
)

// FairEmptiness decides language emptiness of the structure viewed as a
// fair automaton: is there an initial state in seed from which a fair
// infinite path starts? This is the decision procedure for LTL checking
// via the tableau product — seed is sat(¬φ), and a non-empty result is
// a counterexample start state to hand to the fair-EG witness
// generator.
//
// Tableau products are deliberately not total: a state whose promise
// variables are unsatisfiable has no successor at all. Checker.Fair
// returns True when the structure declares no fairness constraints
// (correct only under the CTL totality assumption), so with no
// constraints the liveness test falls back to plain EG true — the
// states with some infinite continuation — which prunes dead-ended
// promise states.
func (c *Checker) FairEmptiness(seed bdd.Ref) (empty bool, start kripke.State) {
	m := c.S.M
	id := m.RegisterRefs(&seed)
	defer m.Unregister(id)

	var live bdd.Ref
	if len(c.S.Fair) > 0 {
		live = c.Fair()
	} else {
		live = c.EG(bdd.True)
	}
	bad := m.And(m.And(c.S.Init, seed), live)
	if bad == bdd.False {
		return true, nil
	}
	return false, c.S.PickState(bad)
}
