package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

func setup(e *kripke.Explicit) (*kripke.Symbolic, *Generator) {
	s := kripke.FromExplicit(e)
	return s, NewGenerator(mc.New(s))
}

func stateOf(s *kripke.Symbolic, idx int) kripke.State {
	return kripke.IndexState(idx, len(s.Vars))
}

// figure1Model: a witness entirely inside one SCC (Figure 1). Ring
// 0 -> 1 -> 2 -> 0 with fairness constraints at 1 and 2.
func figure1Model() *kripke.Explicit {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false})
	e.AddFairSet("h2", []bool{false, false, true})
	return e
}

// figure2Model: the witness must span several SCCs (Figure 2). SCC A =
// {0,1} (hits h1 only), SCC B = {2,3} (hits h2 only), terminal SCC C =
// {4,5} (hits both). A -> B -> C.
func figure2Model() *kripke.Explicit {
	e := kripke.NewExplicit(6)
	// SCC A
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	// SCC B
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	// terminal SCC C
	e.AddEdge(4, 5)
	e.AddEdge(5, 4)
	// DAG edges
	e.AddEdge(1, 2)
	e.AddEdge(3, 4)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false, true, true, false})
	e.AddFairSet("h2", []bool{false, false, false, false, false, true})
	return e
}

func TestWitnessEGSingleSCC(t *testing.T) {
	s, g := setup(figure1Model())
	tr, err := g.WitnessEG(bdd.True, stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEG(s, tr, bdd.True); err != nil {
		t.Fatalf("invalid witness: %v\n%s", err, tr)
	}
	if g.Stats.Restarts != 0 {
		t.Fatalf("single-SCC witness should not restart (restarts=%d)", g.Stats.Restarts)
	}
	// The whole structure is one 3-cycle: cycle length must be 3.
	if tr.CycleLen() != 3 {
		t.Fatalf("cycle length = %d, want 3\n%s", tr.CycleLen(), tr)
	}
}

func TestWitnessEGMultiSCCRestarts(t *testing.T) {
	s, g := setup(figure2Model())
	tr, err := g.WitnessEG(bdd.True, stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEG(s, tr, bdd.True); err != nil {
		t.Fatalf("invalid witness: %v\n%s", err, tr)
	}
	if g.Stats.Restarts == 0 {
		t.Fatal("multi-SCC witness should restart at least once")
	}
	// The only component satisfying both constraints is C = {4,5}, so
	// the cycle must live there.
	for i := tr.CycleStart; i < len(tr.States); i++ {
		idx := kripke.StateIndex(tr.States[i])
		if idx != 4 && idx != 5 {
			t.Fatalf("cycle state %d outside terminal SCC\n%s", idx, tr)
		}
	}
}

func TestWitnessEGPrecomputeStrategy(t *testing.T) {
	s, g := setup(figure2Model())
	g.Strategy = StrategyPrecompute
	tr, err := g.WitnessEG(bdd.True, stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEG(s, tr, bdd.True); err != nil {
		t.Fatalf("invalid witness: %v\n%s", err, tr)
	}
}

func TestWitnessEGNotSatisfied(t *testing.T) {
	// p holds nowhere on any cycle.
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(0, "p")
	e.AddInit(0)
	s, g := setup(e)
	pset, _ := s.AtomSet(ctl.Atom("p"))
	if _, err := g.WitnessEG(pset, stateOf(s, 0)); err != ErrNotSatisfied {
		t.Fatalf("want ErrNotSatisfied, got %v", err)
	}
}

func TestWitnessEGRespectsInvariant(t *testing.T) {
	// Two cycles: 0<->1 (p everywhere), 2<->3 (no p). EG p from 0 must
	// stay within {0,1}.
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.AddEdge(0, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	e.Label(0, "p")
	e.Label(1, "p")
	e.AddInit(0)
	s, g := setup(e)
	pset, _ := s.AtomSet(ctl.Atom("p"))
	tr, err := g.WitnessEG(pset, stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEG(s, tr, pset); err != nil {
		t.Fatalf("invalid witness: %v\n%s", err, tr)
	}
}

func TestWitnessEUFinite(t *testing.T) {
	// chain 0 -> 1 -> 2(goal) -> 2
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 2)
	e.Label(2, "goal")
	e.AddInit(0)
	s, g := setup(e)
	goal, _ := s.AtomSet(ctl.Atom("goal"))
	tr, err := g.WitnessEU(bdd.True, goal, stateOf(s, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEU(s, tr, bdd.True, goal); err != nil {
		t.Fatalf("invalid EU witness: %v\n%s", err, tr)
	}
	if tr.Len() != 3 {
		t.Fatalf("EU witness should be minimal-length (3 states), got %d", tr.Len())
	}
	if tr.IsLasso() {
		t.Fatal("finite witness requested")
	}
}

func TestWitnessEUMinimality(t *testing.T) {
	// Two routes to goal: direct (0->g) and long (0->1->2->g). The ring
	// walk must take the 1-step route.
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 3)
	e.Label(3, "goal")
	e.AddInit(0)
	s, g := setup(e)
	goal, _ := s.AtomSet(ctl.Atom("goal"))
	tr, err := g.WitnessEU(bdd.True, goal, stateOf(s, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("EU witness not shortest: %d states\n%s", tr.Len(), tr)
	}
}

func TestWitnessEUExtendedToFairLasso(t *testing.T) {
	// goal at 1; from 1, fair cycle 1->2->1 with h at 2.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 1)
	e.Label(1, "goal")
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, false, true})
	s, g := setup(e)
	goal, _ := s.AtomSet(ctl.Atom("goal"))
	tr, err := g.WitnessEU(bdd.True, goal, stateOf(s, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsLasso() {
		t.Fatal("extended witness must be a lasso")
	}
	if err := ValidateFairLasso(s, tr); err != nil {
		t.Fatalf("fair lasso invalid: %v\n%s", err, tr)
	}
	if !s.Holds(goal, tr.States[1]) {
		t.Fatal("goal state missing from extended witness")
	}
}

func TestWitnessEX(t *testing.T) {
	e := figure1Model()
	s, g := setup(e)
	// EX of "being at state 1" from state 0
	target := s.StateCube(stateOf(s, 1))
	tr, err := g.WitnessEX(target, stateOf(s, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEX(s, tr, target); err != nil {
		t.Fatalf("invalid EX witness: %v", err)
	}
	tr2, err := g.WitnessEX(target, stateOf(s, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.IsLasso() {
		t.Fatal("extended EX witness must be a lasso")
	}
	if err := ValidateFairLasso(s, tr2); err != nil {
		t.Fatalf("extended EX witness invalid: %v", err)
	}
}

func TestWitnessEXNotSatisfied(t *testing.T) {
	e := figure1Model()
	s, g := setup(e)
	// no edge 0 -> 2
	target := s.StateCube(stateOf(s, 2))
	if _, err := g.WitnessEX(target, stateOf(s, 0), false); err != ErrNotSatisfied {
		t.Fatalf("want ErrNotSatisfied, got %v", err)
	}
}

// TestCounterexampleAGAF reproduces the paper's counterexample shape:
// AG(r -> AF a) fails, the counterexample is a path to an r-state
// followed by a fair cycle avoiding a.
func TestCounterexampleAGAF(t *testing.T) {
	// 0 -> 1(r) -> 2 -> 3, 3 -> 2 (cycle without a), 2 -> 4(a), 4 -> 4.
	e := kripke.NewExplicit(5)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	e.AddEdge(2, 4)
	e.AddEdge(4, 4)
	e.Label(1, "r")
	e.Label(4, "a")
	e.AddInit(0)
	s, g := setup(e)
	ok, tr, err := g.CounterexampleInit(ctl.MustParse("AG (r -> AF a)"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("property should fail")
	}
	if tr == nil || !tr.IsLasso() {
		t.Fatalf("counterexample must be a lasso:\n%s", tr)
	}
	if err := ValidatePath(s, tr); err != nil {
		t.Fatalf("invalid counterexample: %v\n%s", err, tr)
	}
	// The trace must start at the initial state, pass through an
	// r-state, and its cycle must avoid a.
	if kripke.StateIndex(tr.States[0]) != 0 {
		t.Fatal("counterexample must start at the initial state")
	}
	rset, _ := s.AtomSet(ctl.Atom("r"))
	aset, _ := s.AtomSet(ctl.Atom("a"))
	sawR := false
	for _, st := range tr.States {
		if s.Holds(rset, st) {
			sawR = true
		}
	}
	if !sawR {
		t.Fatalf("counterexample never reaches an r-state:\n%s", tr)
	}
	for i := tr.CycleStart; i < len(tr.States); i++ {
		if s.Holds(aset, tr.States[i]) {
			t.Fatalf("cycle contains an a-state:\n%s", tr)
		}
	}
}

func TestCounterexampleInitHolds(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(1, "a")
	e.AddInit(0)
	_, g := setup(e)
	ok, tr, err := g.CounterexampleInit(ctl.MustParse("AF a"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || tr != nil {
		t.Fatal("property holds; no counterexample expected")
	}
}

func TestWitnessNestedEF(t *testing.T) {
	// EF (p & EX q): witness should reach p-state then step to q-state.
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 3)
	e.Label(2, "p")
	e.Label(3, "q")
	e.AddInit(0)
	s, g := setup(e)
	tr, err := g.Witness(ctl.MustParse("EF (p & EX q)"), stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePath(s, tr); err != nil {
		t.Fatalf("invalid witness: %v\n%s", err, tr)
	}
	// must visit state 2 (p) then state 3 (q)
	if kripke.StateIndex(tr.States[len(tr.States)-2]) != 2 ||
		kripke.StateIndex(tr.Last()) != 3 {
		t.Fatalf("nested witness path wrong:\n%s", tr)
	}
}

func TestWitnessDisjunction(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(1, "q")
	e.AddInit(0)
	s, g := setup(e)
	// first disjunct false at 0, second true
	tr, err := g.Witness(ctl.MustParse("EX false | EX q"), stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("disjunction witness wrong:\n%s", tr)
	}
}

func TestWitnessNotSatisfiedTopLevel(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(1, "q")
	e.AddInit(0)
	s, g := setup(e)
	if _, err := g.Witness(ctl.MustParse("EX !q"), stateOf(s, 0)); err != ErrNotSatisfied {
		t.Fatalf("want ErrNotSatisfied, got %v", err)
	}
}

func TestTraceFormatting(t *testing.T) {
	s, g := setup(figure1Model())
	tr, err := g.WitnessEG(bdd.True, stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	out := tr.String()
	if !strings.Contains(out, "loop starts here") || !strings.Contains(out, "state 0:") {
		t.Fatalf("String() output malformed:\n%s", out)
	}
	delta := tr.DeltaString()
	if !strings.Contains(delta, "state 0:") {
		t.Fatalf("DeltaString() malformed:\n%s", delta)
	}
	// fairness hits annotated
	if !strings.Contains(out, "fair: h1") || !strings.Contains(out, "fair: h2") {
		t.Fatalf("fairness annotations missing:\n%s", out)
	}
}

// TestRandomFairEGWitnesses is the stress test for the witness
// construction: random fair structures, witnesses generated for every
// initial EG-true state under both strategies, all validated.
func TestRandomFairEGWitnesses(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		nfair := 1 + trial%3
		e := kripke.RandomExplicit(r, 6+r.Intn(10), 2, []string{"p"}, nfair, 0.2)
		s := kripke.FromExplicit(e)
		for _, strat := range []Strategy{StrategySimple, StrategyPrecompute} {
			g := NewGenerator(mc.New(s))
			g.Strategy = strat
			fairSet := g.C.Fair()
			// try every reachable state satisfying fair EG true
			reach, _ := s.Reachable()
			cands := s.M.And(reach, fairSet)
			for _, st := range s.EnumStates(cands, 5) {
				tr, err := g.WitnessEG(bdd.True, st)
				if err != nil {
					t.Fatalf("trial %d strat %v: WitnessEG: %v", trial, strat, err)
				}
				if err := ValidateEG(s, tr, bdd.True); err != nil {
					t.Fatalf("trial %d strat %v: invalid witness: %v\n%s", trial, strat, err, tr)
				}
			}
		}
	}
}

// TestRandomEGWithInvariant stresses EG p witnesses (nontrivial f).
func TestRandomEGWithInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 40; trial++ {
		e := kripke.RandomExplicit(r, 8+r.Intn(8), 2, []string{"p"}, trial%2, 0.4)
		// make p common so EG p is often nonempty
		for st := 0; st < e.N; st++ {
			if r.Intn(4) != 0 {
				e.Labels[st]["p"] = true
			}
		}
		s := kripke.FromExplicit(e)
		g := NewGenerator(mc.New(s))
		pset, err := s.AtomSet(ctl.Atom("p"))
		if err != nil {
			t.Fatal(err)
		}
		var egp bdd.Ref
		if len(s.Fair) == 0 {
			egp = g.C.EG(pset)
		} else {
			egp, _ = g.C.FairEG(pset)
		}
		reach, _ := s.Reachable()
		for _, st := range s.EnumStates(s.M.And(reach, egp), 4) {
			tr, err := g.WitnessEG(pset, st)
			if err != nil {
				t.Fatalf("trial %d: WitnessEG: %v", trial, err)
			}
			if err := ValidateEG(s, tr, pset); err != nil {
				t.Fatalf("trial %d: invalid: %v\n%s", trial, err, tr)
			}
		}
	}
}

// TestRandomEUWitnesses stresses EU witnesses with fair extension.
func TestRandomEUWitnesses(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		e := kripke.RandomExplicit(r, 8+r.Intn(8), 2, []string{"p", "q"}, trial%2, 0.4)
		s := kripke.FromExplicit(e)
		g := NewGenerator(mc.New(s))
		pset, _ := s.AtomSet(ctl.Atom("p"))
		qset, _ := s.AtomSet(ctl.Atom("q"))
		euSet := g.C.FairEU(pset, qset)
		reach, _ := s.Reachable()
		for _, st := range s.EnumStates(s.M.And(reach, euSet), 4) {
			extend := len(s.Fair) > 0
			tr, err := g.WitnessEU(pset, qset, st, extend)
			if err != nil {
				t.Fatalf("trial %d: WitnessEU: %v", trial, err)
			}
			if err := ValidateEU(s, tr, pset, qset); err != nil {
				t.Fatalf("trial %d: invalid EU: %v\n%s", trial, err, tr)
			}
			if extend {
				if err := ValidateFairLasso(s, tr); err != nil {
					t.Fatalf("trial %d: invalid fair tail: %v\n%s", trial, err, tr)
				}
			}
		}
	}
}
