package core

import (
	"errors"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/kripke"
)

// Trace validation. Every witness the generator produces can be checked
// against the model independently of how it was constructed; the tests
// and the experiment harness validate all traces this way.

// ValidatePath checks that consecutive states are transitions of the
// model and, for lassos, that the cycle closes.
func ValidatePath(s *kripke.Symbolic, tr *Trace) error {
	if len(tr.States) == 0 {
		return errors.New("core: empty trace")
	}
	for _, st := range tr.States {
		if len(st) != len(s.Vars) {
			return errors.New("core: state width mismatch")
		}
	}
	for i := 1; i < len(tr.States); i++ {
		if !s.HasEdge(tr.States[i-1], tr.States[i]) {
			return fmt.Errorf("core: missing transition %d -> %d: %s -> %s",
				i-1, i, s.FormatState(tr.States[i-1]), s.FormatState(tr.States[i]))
		}
	}
	if tr.IsLasso() {
		if tr.CycleStart >= len(tr.States) {
			return errors.New("core: cycle start out of range")
		}
		if !s.HasEdge(tr.Last(), tr.States[tr.CycleStart]) {
			return fmt.Errorf("core: cycle does not close: %s -> %s",
				s.FormatState(tr.Last()), s.FormatState(tr.States[tr.CycleStart]))
		}
		if tr.CycleLen() < 1 {
			return errors.New("core: trivial cycle")
		}
	}
	return nil
}

// ValidateEG checks that tr is a proper fair EG f witness: a closed
// lasso, every state satisfying f, and every fairness constraint of the
// structure satisfied somewhere on the cycle.
func ValidateEG(s *kripke.Symbolic, tr *Trace, f bdd.Ref) error {
	if err := ValidatePath(s, tr); err != nil {
		return err
	}
	if !tr.IsLasso() {
		return errors.New("core: EG witness must be a lasso")
	}
	for i, st := range tr.States {
		if !s.Holds(f, st) {
			return fmt.Errorf("core: state %d violates the EG invariant: %s", i, s.FormatState(st))
		}
	}
	for k, h := range s.Fair {
		hit := false
		for i := tr.CycleStart; i < len(tr.States); i++ {
			if s.Holds(h, tr.States[i]) {
				hit = true
				break
			}
		}
		if !hit {
			name := fmt.Sprintf("h%d", k)
			if k < len(s.FairNames) {
				name = s.FairNames[k]
			}
			return fmt.Errorf("core: fairness constraint %s not satisfied on the cycle", name)
		}
	}
	return nil
}

// ValidateEU checks that tr's finite prefix demonstrates E[f U g]: every
// state before the first g-state satisfies f and some state satisfies g.
// For extended (lasso) witnesses only the finite prefix up to the g-state
// is examined here; pair with ValidateEG(s, tr, True) for the fair tail.
func ValidateEU(s *kripke.Symbolic, tr *Trace, f, g bdd.Ref) error {
	if err := ValidatePath(s, tr); err != nil {
		return err
	}
	for i, st := range tr.States {
		if s.Holds(g, st) {
			return nil // states 0..i-1 were checked below on the way
		}
		if !s.Holds(f, st) {
			return fmt.Errorf("core: state %d satisfies neither f nor g: %s", i, s.FormatState(st))
		}
	}
	return errors.New("core: no state satisfies the until-target g")
}

// ValidateEX checks that tr demonstrates EX f: at least two states and
// the second satisfies f.
func ValidateEX(s *kripke.Symbolic, tr *Trace, f bdd.Ref) error {
	if err := ValidatePath(s, tr); err != nil {
		return err
	}
	if len(tr.States) < 2 {
		return errors.New("core: EX witness needs at least two states")
	}
	if !s.Holds(f, tr.States[1]) {
		return errors.New("core: successor state violates f")
	}
	return nil
}

// ValidateFairLasso checks that a lasso's cycle satisfies every fairness
// constraint of the structure (used for extended EU/EX witnesses).
func ValidateFairLasso(s *kripke.Symbolic, tr *Trace) error {
	return ValidateEG(s, tr, bdd.True)
}
