package core

import (
	"fmt"
	"strings"

	"repro/internal/ctl"
	"repro/internal/kripke"
)

// Explanation trees — the second Section 9 wish: "a more readable form
// [of counterexamples] will be helpful to engineers". Where the linear
// Witness trace interleaves every obligation into one path, ExplainTree
// keeps the logical structure: each node demonstrates one (sub)formula
// at one state, path evidence hangs off the node that needs it, and
// boolean structure becomes child nodes. Rendered, it reads as an
// indented argument rather than a flat state dump.

// ExplainNode is one step of the argument: Formula holds at State.
type ExplainNode struct {
	Formula *ctl.Formula
	State   kripke.State
	// Evidence is the path demonstrating this node's own operator (nil
	// for propositional and set-level facts): two states for EX, a
	// finite path for EU, a fair lasso for EG.
	Evidence *Trace
	// Children are the sub-obligations, each anchored at its own state.
	Children []*ExplainNode
	// Comment carries set-level justifications (e.g. negated temporal
	// operators, which no finite path can demonstrate).
	Comment string
}

// ExplainTree builds the explanation tree for a formula that holds at
// the given state. The formula is rewritten to the existential basis in
// negation normal form first; Counterexample-style usage passes the
// negation of a failed property.
func (g *Generator) ExplainTree(f *ctl.Formula, from kripke.State) (*ExplainNode, error) {
	basis := ctl.PushNegations(ctl.Existential(f))
	set, err := g.C.Check(basis)
	if err != nil {
		return nil, err
	}
	if !g.C.S.Holds(set, from) {
		return nil, ErrNotSatisfied
	}
	return g.explainTree(basis, from)
}

// CounterexampleTree is ExplainTree for the negation of a property that
// fails at the state.
func (g *Generator) CounterexampleTree(f *ctl.Formula, from kripke.State) (*ExplainNode, error) {
	return g.ExplainTree(ctl.Not(f), from)
}

func (g *Generator) explainTree(f *ctl.Formula, from kripke.State) (*ExplainNode, error) {
	s := g.C.S
	node := &ExplainNode{Formula: f, State: from}
	switch f.Kind {
	case ctl.KTrue, ctl.KAtom, ctl.KEq, ctl.KNeq:
		return node, nil
	case ctl.KFalse:
		return nil, ErrNotSatisfied
	case ctl.KNot:
		node.Comment = "holds by set membership (no path can demonstrate a negated temporal fact)"
		if ctl.IsPropositional(f.L) {
			node.Comment = ""
		}
		return node, nil
	case ctl.KAnd:
		l, err := g.explainTree(f.L, from)
		if err != nil {
			return nil, err
		}
		r, err := g.explainTree(f.R, from)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, l, r)
		return node, nil
	case ctl.KOr:
		lset, err := g.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		pick := f.R
		if s.Holds(lset, from) {
			pick = f.L
		}
		child, err := g.explainTree(pick, from)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
		return node, nil
	case ctl.KEX:
		inner, err := g.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		tr, err := g.WitnessEX(inner, from, false)
		if err != nil {
			return nil, err
		}
		node.Evidence = tr
		child, err := g.explainTree(f.L, tr.Last())
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
		return node, nil
	case ctl.KEU:
		lset, err := g.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		rset, err := g.C.Check(f.R)
		if err != nil {
			return nil, err
		}
		// A reorder during f.R's fixpoints invalidates the local copy of
		// lset; the memoized entry was rewritten, so re-fetch it.
		lset, _ = g.C.Check(f.L)
		tr, err := g.WitnessEU(lset, rset, from, false)
		if err != nil {
			return nil, err
		}
		node.Evidence = tr
		// the target obligation at the end of the path
		child, err := g.explainTree(f.R, tr.Last())
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
		// the left obligation along the way, expanded only when it has
		// structure worth showing
		if !ctl.IsPropositional(f.L) && tr.Len() > 1 {
			mid, err := g.explainTree(f.L, tr.States[0])
			if err != nil {
				return nil, err
			}
			mid.Comment = strings.TrimSpace(mid.Comment + " (holds at every state before the target)")
			node.Children = append(node.Children, mid)
		}
		return node, nil
	case ctl.KEG:
		inner, err := g.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		tr, err := g.WitnessEG(inner, from)
		if err != nil {
			return nil, err
		}
		node.Evidence = tr
		if !ctl.IsPropositional(f.L) {
			child, err := g.explainTree(f.L, tr.States[tr.CycleStart])
			if err != nil {
				return nil, err
			}
			child.Comment = strings.TrimSpace(child.Comment + " (holds at every state of the lasso)")
			node.Children = append(node.Children, child)
		}
		return node, nil
	default:
		return nil, fmt.Errorf("core: explainTree on non-basis formula %s", f)
	}
}

// Render writes the tree as indented text; states print through the
// given formatter (pass s.FormatState for raw bits or a compiled
// model's pretty-printer).
func (n *ExplainNode) Render(format func(kripke.State) string) string {
	var sb strings.Builder
	n.render(&sb, format, 0)
	return sb.String()
}

func (n *ExplainNode) render(sb *strings.Builder, format func(kripke.State) string, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%s%s  @  %s\n", indent, n.Formula, format(n.State))
	if n.Comment != "" {
		fmt.Fprintf(sb, "%s  -- %s\n", indent, n.Comment)
	}
	if n.Evidence != nil {
		for i, st := range n.Evidence.States {
			marker := "   "
			if n.Evidence.CycleStart == i {
				marker = "(*)" // loop start
			}
			fmt.Fprintf(sb, "%s  %s %s\n", indent, marker, format(st))
		}
		if n.Evidence.IsLasso() {
			fmt.Fprintf(sb, "%s      ... back to (*)\n", indent)
		}
	}
	for _, c := range n.Children {
		c.render(sb, format, depth+1)
	}
}

// Size returns the number of nodes in the tree.
func (n *ExplainNode) Size() int {
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Validate checks the tree's evidence paths against the model and the
// anchoring invariants (children anchored on their parent's evidence
// where applicable).
func (n *ExplainNode) Validate(s *kripke.Symbolic) error {
	if n.Evidence != nil {
		if err := ValidatePath(s, n.Evidence); err != nil {
			return fmt.Errorf("evidence of %s: %w", n.Formula, err)
		}
		if !sameState(n.Evidence.First(), n.State) {
			return fmt.Errorf("evidence of %s does not start at the node's state", n.Formula)
		}
	}
	for _, c := range n.Children {
		if err := c.Validate(s); err != nil {
			return err
		}
	}
	return nil
}
