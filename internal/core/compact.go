package core

import (
	"strings"

	"repro/internal/bdd"
	"repro/internal/kripke"
)

// Trace compaction — the paper's Section 9 notes that "techniques for
// generating even shorter counterexamples will make symbolic model
// checking more useful in practice". Compact post-processes a generated
// lasso with shortcut edges: whenever the model has a direct transition
// from trace state i to trace state j > i+1, the states strictly
// between them can be cut, provided the cut does not remove a state the
// trace needs (the invariant holds everywhere on the trace already, so
// only the cycle's fairness coverage must be re-checked).
//
// The result is not minimal — Theorem 1 shows minimality is NP-complete
// — but on traces produced by the greedy ring walk it often removes the
// detours left by restarts.

// Compact shortens tr in place subject to:
//   - every state of the trace satisfies inv (pass bdd.True when the
//     trace is a plain reachability witness);
//   - after compaction the cycle still visits every fairness constraint
//     of the structure (checked only when the trace is a lasso);
//   - states carrying a demonstration obligation — the annotated
//     until-/next-targets the recursive witness construction recorded —
//     are pinned and never cut (without this, compaction could remove
//     the very state that violates the property).
//
// It returns the number of states removed.
func Compact(s *kripke.Symbolic, tr *Trace, inv bdd.Ref) int {
	removed := 0
	for {
		n := compactOnce(s, tr)
		if n == 0 {
			return removed
		}
		removed += n
	}
}

// pinned marks the state indices that must survive compaction: any
// state with a non-fairness annotation (fairness hits are re-derived;
// obligations are not).
func (t *Trace) pinned() []bool {
	out := make([]bool, len(t.States))
	for i, n := range t.Notes {
		if n == "" {
			continue
		}
		if strings.HasPrefix(n, "fair:") {
			continue
		}
		out[i] = true
	}
	return out
}

func anyPinned(pin []bool, lo, hi int) bool {
	for i := lo; i < hi && i < len(pin); i++ {
		if pin[i] {
			return true
		}
	}
	return false
}

// compactOnce performs one left-to-right shortcut pass.
func compactOnce(s *kripke.Symbolic, tr *Trace) int {
	if len(tr.States) < 3 {
		return 0
	}
	pin := tr.pinned()
	// Prefix shortcuts: cut within [0, CycleStart]; a shortcut from a
	// prefix state directly into the cycle head also shortens the
	// prefix.
	if tr.IsLasso() {
		n := shortcutRange(s, tr, 0, tr.CycleStart, pin)
		if n > 0 {
			return n
		}
		// Cycle shortcuts: cut within the cycle while preserving
		// fairness coverage.
		return shortcutCycle(s, tr, pin)
	}
	return shortcutRange(s, tr, 0, len(tr.States)-1, pin)
}

// shortcutRange cuts the first available shortcut i -> j (j > i+1)
// inside [lo, hi] and returns the number of removed states.
func shortcutRange(s *kripke.Symbolic, tr *Trace, lo, hi int, pin []bool) int {
	for i := lo; i < hi-1; i++ {
		for j := hi; j > i+1; j-- {
			if anyPinned(pin, i+1, j) {
				continue
			}
			if !s.HasEdge(tr.States[i], tr.States[j]) {
				continue
			}
			cut := j - i - 1
			tr.splice(i+1, j)
			return cut
		}
	}
	return 0
}

// shortcutCycle cuts a shortcut within the cycle if the resulting
// shorter cycle still covers every fairness constraint.
func shortcutCycle(s *kripke.Symbolic, tr *Trace, pin []bool) int {
	cs := tr.CycleStart
	n := len(tr.States)
	for i := cs; i < n-1; i++ {
		for j := n - 1; j > i+1; j-- {
			if anyPinned(pin, i+1, j) {
				continue
			}
			if !s.HasEdge(tr.States[i], tr.States[j]) {
				continue
			}
			if !cycleCoversWithout(s, tr, i+1, j) {
				continue
			}
			tr.splice(i+1, j)
			return j - i - 1
		}
	}
	// Also consider trimming the tail: states after the last one with a
	// closing edge to the cycle head.
	for last := n - 2; last >= cs; last-- {
		if anyPinned(pin, last+1, n) {
			continue
		}
		if !s.HasEdge(tr.States[last], tr.States[cs]) {
			continue
		}
		if !cycleCoversWithout(s, tr, last+1, n) {
			continue
		}
		cut := n - 1 - last
		tr.splice(last+1, n)
		return cut
	}
	return 0
}

// cycleCoversWithout checks that the cycle minus states [cutLo, cutHi)
// still hits every fairness constraint.
func cycleCoversWithout(s *kripke.Symbolic, tr *Trace, cutLo, cutHi int) bool {
	for _, h := range s.Fair {
		hit := false
		for i := tr.CycleStart; i < len(tr.States); i++ {
			if i >= cutLo && i < cutHi {
				continue
			}
			if s.Holds(h, tr.States[i]) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// splice removes states [lo, hi) from the trace, fixing up CycleStart,
// FairHits and Notes. Indices with lo <= idx < hi are dropped; larger
// indices shift left.
func (t *Trace) splice(lo, hi int) {
	cut := hi - lo
	t.States = append(t.States[:lo], t.States[hi:]...)
	if t.CycleStart >= hi {
		t.CycleStart -= cut
	} else if t.CycleStart >= lo {
		t.CycleStart = lo
		if t.CycleStart >= len(t.States) {
			t.CycleStart = len(t.States) - 1
		}
	}
	for h, idx := range t.FairHits {
		switch {
		case idx >= hi:
			t.FairHits[h] = idx - cut
		case idx >= lo:
			delete(t.FairHits, h) // hit state removed; coverage re-checked by caller
		}
	}
	if len(t.Notes) > 0 {
		if hi > len(t.Notes) {
			hi = len(t.Notes)
		}
		if lo < len(t.Notes) {
			t.Notes = append(t.Notes[:lo], t.Notes[hi:]...)
		}
	}
}
