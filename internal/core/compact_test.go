package core

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/circuit"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// arbiterModel compiles the Seitz arbiter for the compaction test.
func arbiterModel(t *testing.T) *kripke.Symbolic {
	t.Helper()
	s, err := circuit.SeitzArbiter().Compile()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompactPrefixShortcut(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 plus the shortcut 0 -> 3; 3 -> 3. A trace that
	// took the long way must compact to 0 -> 3.
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(0, 3)
	e.AddEdge(3, 3)
	e.AddInit(0)
	s := kripke.FromExplicit(e)
	tr := &Trace{S: s, CycleStart: -1, FairHits: map[int]int{}}
	for _, idx := range []int{0, 1, 2, 3} {
		tr.States = append(tr.States, stateOf(s, idx))
	}
	removed := Compact(s, tr, bdd.True)
	if removed != 2 {
		t.Fatalf("removed %d states, want 2\n%s", removed, tr)
	}
	if tr.Len() != 2 {
		t.Fatalf("compacted length %d, want 2", tr.Len())
	}
	if err := ValidatePath(s, tr); err != nil {
		t.Fatalf("compacted trace invalid: %v", err)
	}
}

func TestCompactCyclePreservesFairness(t *testing.T) {
	// Cycle 0 -> 1 -> 2 -> 0 with shortcut 0 -> 2. Fairness at state 1:
	// the shortcut would drop the only fair state, so compaction must
	// refuse it.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddEdge(0, 2)
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, true, false})
	s := kripke.FromExplicit(e)
	tr := &Trace{S: s, CycleStart: 0, FairHits: map[int]int{0: 1}}
	for _, idx := range []int{0, 1, 2} {
		tr.States = append(tr.States, stateOf(s, idx))
	}
	if err := ValidateEG(s, tr, bdd.True); err != nil {
		t.Fatalf("setup: %v", err)
	}
	removed := Compact(s, tr, bdd.True)
	if removed != 0 {
		t.Fatalf("compaction removed %d states and broke fairness:\n%s", removed, tr)
	}
	if err := ValidateEG(s, tr, bdd.True); err != nil {
		t.Fatalf("trace invalid after compaction: %v", err)
	}
}

func TestCompactCycleShortcutTaken(t *testing.T) {
	// Same shape but fairness at state 2: the shortcut 0 -> 2 may drop
	// state 1.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddEdge(0, 2)
	e.AddInit(0)
	e.AddFairSet("h", []bool{false, false, true})
	s := kripke.FromExplicit(e)
	tr := &Trace{S: s, CycleStart: 0, FairHits: map[int]int{0: 2}}
	for _, idx := range []int{0, 1, 2} {
		tr.States = append(tr.States, stateOf(s, idx))
	}
	removed := Compact(s, tr, bdd.True)
	if removed != 1 {
		t.Fatalf("removed %d, want 1\n%s", removed, tr)
	}
	if err := ValidateEG(s, tr, bdd.True); err != nil {
		t.Fatalf("invalid after compaction: %v\n%s", err, tr)
	}
}

func TestCompactTailTrim(t *testing.T) {
	// Cycle 0 -> 1 -> 2 -> 1 represented as [0, 1, 2] with cycle start
	// 1; state 2's successor set also contains 1 and 1 -> 1 exists: a
	// self-loop at 1 suffices if fairness allows.
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 1)
	e.AddInit(0)
	s := kripke.FromExplicit(e)
	tr := &Trace{S: s, CycleStart: 1, FairHits: map[int]int{}}
	for _, idx := range []int{0, 1, 2} {
		tr.States = append(tr.States, stateOf(s, idx))
	}
	removed := Compact(s, tr, bdd.True)
	if removed != 1 {
		t.Fatalf("removed %d, want 1 (tail trim)\n%s", removed, tr)
	}
	if err := ValidatePath(s, tr); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if tr.CycleLen() != 1 {
		t.Fatalf("cycle length %d, want 1", tr.CycleLen())
	}
}

// TestCompactRandomStillValid: compaction never invalidates a witness.
func TestCompactRandomStillValid(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	totalRemoved := 0
	for trial := 0; trial < 40; trial++ {
		e := kripke.RandomExplicit(r, 8+r.Intn(10), 3, nil, 1+trial%3, 0.2)
		s := kripke.FromExplicit(e)
		g := NewGenerator(mc.New(s))
		start := kripke.IndexState(e.Init[0], len(s.Vars))
		if !s.Holds(g.C.Fair(), start) {
			continue
		}
		tr, err := g.WitnessEG(bdd.True, start)
		if err != nil {
			t.Fatal(err)
		}
		before := tr.Len()
		removed := Compact(s, tr, bdd.True)
		totalRemoved += removed
		if tr.Len() != before-removed {
			t.Fatalf("length bookkeeping off: %d -> %d (removed %d)", before, tr.Len(), removed)
		}
		if err := ValidateEG(s, tr, bdd.True); err != nil {
			t.Fatalf("trial %d: invalid after compaction: %v\n%s", trial, err, tr)
		}
	}
	t.Logf("total states removed across trials: %d", totalRemoved)
}

// TestCompactArbiterCounterexample: compaction on the real case study.
func TestCompactArbiterCounterexample(t *testing.T) {
	s := arbiterModel(t)
	gen := NewGenerator(mc.New(s))
	_, tr, err := gen.CounterexampleInit(ctl.MustParse("AG (tr1 -> AF ta1)"))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Len()
	removed := Compact(s, tr, bdd.True)
	if err := ValidatePath(s, tr); err != nil {
		t.Fatalf("invalid after compaction: %v", err)
	}
	// fairness on the cycle must survive
	for k, h := range s.Fair {
		hit := false
		for i := tr.CycleStart; i < len(tr.States); i++ {
			if s.Holds(h, tr.States[i]) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("fairness constraint %d lost in compaction", k)
		}
	}
	// the violation state (tr1 & !ta1) must survive compaction
	tr1Set, _ := s.AtomSet(ctl.Atom("tr1"))
	ta1Set, _ := s.AtomSet(ctl.Atom("ta1"))
	sawViolation := false
	for _, st := range tr.States {
		if s.Holds(tr1Set, st) && !s.Holds(ta1Set, st) {
			sawViolation = true
			break
		}
	}
	if !sawViolation {
		t.Fatalf("compaction removed the violation state:\n%s", tr)
	}
	t.Logf("arbiter counterexample: %d -> %d states (removed %d)", before, tr.Len(), removed)
}
