package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

func TestExplainTreePropositional(t *testing.T) {
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 1)
	e.Label(0, "p")
	e.AddInit(0)
	s, g := setup(e)
	n, err := g.ExplainTree(ctl.MustParse("p"), stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 1 || n.Evidence != nil {
		t.Fatalf("propositional tree should be a single leaf: %+v", n)
	}
}

func TestExplainTreeNested(t *testing.T) {
	// EF (p & EX q)
	e := kripke.NewExplicit(4)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 3)
	e.Label(2, "p")
	e.Label(3, "q")
	e.AddInit(0)
	s, g := setup(e)
	n, err := g.ExplainTree(ctl.MustParse("EF (p & EX q)"), stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(s); err != nil {
		t.Fatal(err)
	}
	// root: EU with evidence; child: conjunction; grandchildren: p leaf
	// and EX q with its own 2-state evidence.
	if n.Evidence == nil || n.Evidence.IsLasso() {
		t.Fatal("EU evidence missing or malformed")
	}
	if len(n.Children) != 1 {
		t.Fatalf("EU should have one target child, has %d", len(n.Children))
	}
	and := n.Children[0]
	if len(and.Children) != 2 {
		t.Fatalf("conjunction should have two children, has %d", len(and.Children))
	}
	var sawEX bool
	for _, c := range and.Children {
		if c.Formula.Kind == ctl.KEX {
			sawEX = true
			if c.Evidence == nil || c.Evidence.Len() != 2 {
				t.Fatal("EX evidence malformed")
			}
			if kripke.StateIndex(c.Evidence.Last()) != 3 {
				t.Fatal("EX evidence must step to the q-state")
			}
		}
	}
	if !sawEX {
		t.Fatal("EX child missing")
	}
	out := n.Render(s.FormatState)
	for _, want := range []string{"E [true U p & EX q]", "EX q", "@"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestExplainTreeEGWithStructure(t *testing.T) {
	// EG (p | q): cycle alternates p and q states.
	e := kripke.NewExplicit(2)
	e.AddEdge(0, 1)
	e.AddEdge(1, 0)
	e.Label(0, "p")
	e.Label(1, "q")
	e.AddInit(0)
	s, g := setup(e)
	// propositional body: evidence only, no children
	n, err := g.ExplainTree(ctl.MustParse("EG (p | q)"), stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(s); err != nil {
		t.Fatal(err)
	}
	if n.Evidence == nil || !n.Evidence.IsLasso() {
		t.Fatal("EG needs lasso evidence")
	}
	if len(n.Children) != 0 {
		t.Fatal("propositional body needs no sub-explanation")
	}
	// temporal body: the body is explained at the cycle head
	n, err = g.ExplainTree(ctl.MustParse("EG (p | EX p)"), stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(s); err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 1 {
		t.Fatalf("EG with temporal body should explain the body:\n%s", n.Render(s.FormatState))
	}
}

func TestCounterexampleTreeAGAF(t *testing.T) {
	// Same model as the linear counterexample test.
	e := kripke.NewExplicit(5)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 3)
	e.AddEdge(3, 2)
	e.AddEdge(2, 4)
	e.AddEdge(4, 4)
	e.Label(1, "r")
	e.Label(4, "a")
	e.AddInit(0)
	s, g := setup(e)
	n, err := g.CounterexampleTree(ctl.MustParse("AG (r -> AF a)"), stateOf(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(s); err != nil {
		t.Fatal(err)
	}
	// The tree demonstrates EF(r ∧ EG ¬a): root EU evidence, child
	// conjunction with an r-leaf and an EG node with a lasso avoiding a.
	if n.Formula.Kind != ctl.KEU {
		t.Fatalf("root should be EU, is %s", n.Formula.Kind)
	}
	found := false
	var scan func(*ExplainNode)
	scan = func(x *ExplainNode) {
		if x.Formula.Kind == ctl.KEG && x.Evidence != nil && x.Evidence.IsLasso() {
			found = true
		}
		for _, c := range x.Children {
			scan(c)
		}
	}
	scan(n)
	if !found {
		t.Fatalf("EG lasso node missing:\n%s", n.Render(s.FormatState))
	}
}

func TestExplainTreeNotSatisfied(t *testing.T) {
	e := kripke.NewExplicit(1)
	e.AddEdge(0, 0)
	e.AddInit(0)
	s, g := setup(e)
	if _, err := g.ExplainTree(ctl.MustParse("EX false"), stateOf(s, 0)); err != ErrNotSatisfied {
		t.Fatalf("want ErrNotSatisfied, got %v", err)
	}
}

func TestExplainTreeRandomValidate(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	atoms := []string{"p", "q"}
	formulas := []string{
		"EF (p & EX q)",
		"EG (p | q)",
		"E [p U q] | E [q U p]",
		"EF EG p",
		"!AG p",
	}
	for trial := 0; trial < 25; trial++ {
		e := kripke.RandomExplicit(r, 8+r.Intn(8), 2, atoms, trial%2, 0.3)
		s := kripke.FromExplicit(e)
		g := NewGenerator(mc.New(s))
		for _, src := range formulas {
			f := ctl.MustParse(src)
			set, err := g.C.Check(ctl.PushNegations(ctl.Existential(f)))
			if err != nil {
				t.Fatal(err)
			}
			reach, _ := s.Reachable()
			for _, st := range s.EnumStates(s.M.And(reach, set), 3) {
				n, err := g.ExplainTree(f, st)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, src, err)
				}
				if err := n.Validate(s); err != nil {
					t.Fatalf("trial %d %s: %v", trial, src, err)
				}
			}
		}
	}
}
