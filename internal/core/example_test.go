package core_test

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// ExampleGenerator_WitnessEG demonstrates the paper's central algorithm
// on the Figure 1 scenario: a fair EG witness whose cycle visits both
// fairness constraints.
func ExampleGenerator_WitnessEG() {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 0)
	e.AddInit(0)
	e.AddFairSet("h1", []bool{false, true, false})
	e.AddFairSet("h2", []bool{false, false, true})
	s := kripke.FromExplicit(e)

	gen := core.NewGenerator(mc.New(s))
	tr, err := gen.WitnessEG(bdd.True, kripke.IndexState(0, len(s.Vars)))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("lasso: %d states, prefix %d, cycle %d\n",
		tr.Len(), tr.PrefixLen(), tr.CycleLen())
	fmt.Printf("valid: %v\n", core.ValidateEG(s, tr, bdd.True) == nil)
	// Output:
	// lasso: 4 states, prefix 1, cycle 3
	// valid: true
}

// ExampleGenerator_CounterexampleInit shows the counterexample driver on
// a failing safety property: the trace walks from the initial state to
// the violating state.
func ExampleGenerator_CounterexampleInit() {
	e := kripke.NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(2, 2)
	e.Label(0, "safe")
	e.Label(1, "safe")
	e.AddInit(0)
	s := kripke.FromExplicit(e)

	gen := core.NewGenerator(mc.New(s))
	holds, tr, err := gen.CounterexampleInit(ctl.MustParse("AG safe"))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("holds: %v, counterexample length: %d\n", holds, tr.Len())
	// Output:
	// holds: false, counterexample length: 3
}
