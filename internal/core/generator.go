package core

import (
	"errors"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/kripke"
	"repro/internal/mc"
)

// Strategy selects how the EG witness construction reacts when a
// tentative cycle cannot be closed (end of Section 6).
type Strategy int

const (
	// StrategySimple restarts the constraint tour from the final state
	// s′ after a cycle-closure attempt fails.
	StrategySimple Strategy = iota
	// StrategyPrecompute precomputes E[(EG f) U {t}] when the tentative
	// cycle head t is chosen and restarts the moment the walk exits that
	// set, saving the failed closure attempt.
	StrategyPrecompute
)

func (s Strategy) String() string {
	if s == StrategyPrecompute {
		return "precompute"
	}
	return "simple"
}

// GenStats counts the work done by witness construction.
type GenStats struct {
	Restarts        uint64 // failed cycle attempts that forced a restart
	ClosureAttempts uint64 // cycle-closure checks
	RingSteps       uint64 // states appended by ring walks
	EarlyExits      uint64 // precompute-strategy early restarts
	ImageCalls      uint64 // single-state successor images taken
}

// Generator produces witnesses and counterexamples over a checker's
// structure.
type Generator struct {
	C        *mc.Checker
	Strategy Strategy
	Stats    GenStats

	// MaxRestarts bounds the SCC-descent restarts as a safety net; the
	// construction provably terminates, so hitting the bound indicates a
	// model bug. 0 means the number of structure states is used... since
	// that is unknown cheaply, a large constant default applies.
	MaxRestarts int
}

// NewGenerator creates a witness generator with the simple restart
// strategy.
func NewGenerator(c *mc.Checker) *Generator {
	return &Generator{C: c, MaxRestarts: 1 << 20}
}

// ErrNotSatisfied is returned when a witness is requested from a state
// that does not satisfy the formula.
var ErrNotSatisfied = errors.New("core: state does not satisfy the formula")

// image returns the successor set of a single concrete state. All of
// witness construction's successor computations funnel through here so
// they take the same (possibly partitioned) image path as the fixpoint
// engine and the traces stay consistent with the sets they walk.
func (g *Generator) image(st kripke.State) bdd.Ref {
	g.Stats.ImageCalls++
	s := g.C.S
	return s.Image(s.StateCube(st))
}

// succIn returns one successor of st inside set, or nil.
func (g *Generator) succIn(st kripke.State, set bdd.Ref) kripke.State {
	s := g.C.S
	return s.PickState(s.M.And(g.image(st), set))
}

// WitnessEG constructs a fair lasso witness for EG f starting at from:
// every state of the trace satisfies f, the cycle is reachable from
// `from`, closes, and contains at least one state from every fairness
// constraint. f is given as the BDD of its satisfaction set.
func (g *Generator) WitnessEG(f bdd.Ref, from kripke.State) (*Trace, error) {
	s := g.C.S
	m := s.M

	egf, rings := g.C.FairEG(f)
	defer rings.Release(m)
	if !s.Holds(egf, from) {
		return nil, ErrNotSatisfied
	}
	return g.witnessEGRings(egf, rings, from)
}

// witnessEGRings is the ring-walk construction proper; egf is the fair
// EG fixpoint and rings the saved inner approximations.
func (g *Generator) witnessEGRings(egf bdd.Ref, rings *mc.Rings, from kripke.State) (*Trace, error) {
	s := g.C.S
	m := s.M

	// The walk holds many unregistered refs (successor sets, closure
	// sets, EU rings) across image computations; dynamic reordering is
	// paused for its duration. The expensive fixpoints already ran.
	resume := m.PauseAutoReorder()
	defer resume()
	f := rings.F

	tr := &Trace{S: s, CycleStart: -1, FairHits: map[int]int{}}
	tr.States = append(tr.States, from)
	nFair := len(rings.PerFair)

	restarts := 0
	for {
		// One tour: starting at the last state of the trace, visit every
		// fairness constraint via greedy nearest-first ring walks.
		tourStart := len(tr.States) - 1
		cur := tr.States[tourStart]
		remaining := make([]bool, nFair)
		for i := range remaining {
			remaining[i] = true
		}
		left := nFair

		var cycleHead kripke.State // t: first state after the tour start
		cycleHeadIdx := -1
		var closure bdd.Ref // StrategyPrecompute: E[(EG f) U {t}]
		closureValid := false
		aborted := false

		hits := map[int]int{}

		for left > 0 && !aborted {
			// Find the nearest remaining constraint: smallest ring index
			// i such that some successor of cur lies in Q^h_i.
			succs := g.image(cur)
			var bestH, bestI int
			var bestState kripke.State
			found := false
			maxLen := 0
			for h := 0; h < nFair; h++ {
				if remaining[h] && len(rings.PerFair[h]) > maxLen {
					maxLen = len(rings.PerFair[h])
				}
			}
			for i := 0; i < maxLen && !found; i++ {
				for h := 0; h < nFair; h++ {
					if !remaining[h] || i >= len(rings.PerFair[h]) {
						continue
					}
					cand := m.And(succs, rings.PerFair[h][i])
					if cand != bdd.False {
						bestH, bestI = h, i
						bestState = s.PickState(cand)
						found = true
						break
					}
				}
			}
			if !found {
				return nil, fmt.Errorf("core: tour stuck at %s (model violates fair-EG invariant)", s.FormatState(cur))
			}

			// Descend the rings of constraint bestH: bestState ∈ Q_i,
			// then successors in Q_{i-1}, ..., Q_0 ⊆ (EG f) ∧ h.
			walk := []kripke.State{bestState}
			st := bestState
			for j := bestI - 1; j >= 0; j-- {
				nst := g.succIn(st, rings.PerFair[bestH][j])
				if nst == nil {
					return nil, fmt.Errorf("core: ring descent stuck (constraint %d ring %d)", bestH, j)
				}
				walk = append(walk, nst)
				st = nst
			}

			for _, wst := range walk {
				tr.States = append(tr.States, wst)
				g.Stats.RingSteps++
				if cycleHeadIdx < 0 {
					cycleHeadIdx = len(tr.States) - 1
					cycleHead = wst
					if g.Strategy == StrategyPrecompute {
						closure = g.C.EU(f, s.StateCube(cycleHead))
						closureValid = true
					}
				} else if closureValid && !s.Holds(closure, wst) {
					// The walk left E[(EG f) U {t}]: the cycle can no
					// longer be closed. Restart from here immediately.
					g.Stats.EarlyExits++
					aborted = true
					break
				}
			}
			if aborted {
				break
			}
			hits[bestH] = len(tr.States) - 1
			remaining[bestH] = false
			left--
			cur = st
		}

		if !aborted {
			// All constraints visited; close the cycle with a nontrivial
			// path from s′ back to t: a witness for {s′} ∧ EX E[f U {t}].
			g.Stats.ClosureAttempts++
			sPrime := tr.States[len(tr.States)-1]
			headCube := s.StateCube(cycleHead)
			euSet, euRings := g.C.EUApprox(f, headCube)
			succs := g.image(sPrime)
			if m.And(succs, euSet) != bdd.False {
				// pick the successor in the smallest ring, then descend.
				var u kripke.State
				ui := -1
				for i, ring := range euRings {
					if cand := m.And(succs, ring); cand != bdd.False {
						u = s.PickState(cand)
						ui = i
						break
					}
				}
				st := u
				closing := []kripke.State{}
				if !sameState(u, cycleHead) {
					closing = append(closing, u)
					for j := ui - 1; j >= 0; j-- {
						nst := g.succIn(st, euRings[j])
						if nst == nil {
							return nil, errors.New("core: closure descent stuck")
						}
						st = nst
						if sameState(st, cycleHead) {
							break
						}
						closing = append(closing, st)
					}
					if !sameState(st, cycleHead) && !s.HasEdge(closing[len(closing)-1], cycleHead) {
						return nil, errors.New("core: closure walk failed to reach cycle head")
					}
				}
				tr.States = append(tr.States, closing...)
				g.Stats.RingSteps += uint64(len(closing))
				tr.CycleStart = cycleHeadIdx
				for h, idx := range hits {
					tr.FairHits[h] = idx
				}
				g.annotateFairHits(tr)
				return tr, nil
			}
			// Cannot close: restart from s′ (descend the SCC DAG).
			g.Stats.Restarts++
		} else {
			g.Stats.Restarts++
		}
		restarts++
		if restarts > g.MaxRestarts {
			return nil, errors.New("core: restart bound exceeded (model or generator bug)")
		}
	}
}

// sameState compares two concrete states.
func sameState(a, b kripke.State) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// annotateFairHits adds human-readable notes marking where each fairness
// constraint is satisfied on the cycle.
func (g *Generator) annotateFairHits(tr *Trace) {
	names := g.C.S.FairNames
	for h, idx := range tr.FairHits {
		name := fmt.Sprintf("h%d", h)
		if h < len(names) {
			name = names[h]
		}
		tr.note(idx, "fair: "+name)
	}
}
