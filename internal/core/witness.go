package core

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ctl"
	"repro/internal/kripke"
)

// WitnessEU constructs a witness for E[f U g] (under the structure's
// fairness constraints) starting at from: a finite path of f-states
// ending in a g-state that begins a fair path. If extend is true the
// witness is extended from that state into a full fair lasso (witness
// for EG true), as described at the end of Section 6; otherwise the
// finite prefix is returned.
func (gen *Generator) WitnessEU(f, g bdd.Ref, from kripke.State, extend bool) (*Trace, error) {
	s := gen.C.S
	m := s.M

	euSet, rings := gen.C.FairEUApprox(f, g)
	// The returned rings are neither protected nor registered; pause
	// reordering while the descent walks them (image computations inside
	// the walk are reorder safe points otherwise).
	resume := m.PauseAutoReorder()
	defer resume()
	if !s.Holds(euSet, from) {
		return nil, ErrNotSatisfied
	}
	tr := &Trace{S: s, CycleStart: -1, FairHits: map[int]int{}}
	tr.States = append(tr.States, from)

	// Find the minimal ring containing from, then descend.
	idx := -1
	for i, ring := range rings {
		if s.Holds(ring, from) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("core: state in EU set but in no ring")
	}
	st := from
	for j := idx - 1; j >= 0; j-- {
		nst := gen.succIn(st, rings[j])
		if nst == nil {
			return nil, fmt.Errorf("core: EU ring descent stuck at ring %d", j)
		}
		tr.States = append(tr.States, nst)
		gen.Stats.RingSteps++
		st = nst
	}
	tr.note(len(tr.States)-1, "until-target")

	if extend && len(s.Fair) > 0 {
		if err := gen.extendFair(tr); err != nil {
			return nil, err
		}
	}
	_ = m
	return tr, nil
}

// WitnessEX constructs a witness for EX f (under fairness) from the
// given state: one step to an f-state beginning a fair path, optionally
// extended to a fair lasso.
func (gen *Generator) WitnessEX(f bdd.Ref, from kripke.State, extend bool) (*Trace, error) {
	s := gen.C.S
	// Fair() may run a fair-EG fixpoint and reorder; keep f registered
	// across it, then pause for the single-step walk.
	id := s.M.RegisterRefs(&f)
	fairSet := gen.C.Fair()
	s.M.Unregister(id)
	resume := s.M.PauseAutoReorder()
	defer resume()
	target := s.M.And(f, fairSet)
	next := gen.succIn(from, target)
	if next == nil {
		return nil, ErrNotSatisfied
	}
	tr := &Trace{S: s, CycleStart: -1, FairHits: map[int]int{}}
	tr.States = append(tr.States, from, next)
	tr.note(1, "next-target")
	if extend && len(s.Fair) > 0 {
		if err := gen.extendFair(tr); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// extendFair splices a fair EG-true lasso onto the end of a finite
// trace, turning it into an infinite fair path demonstration.
func (gen *Generator) extendFair(tr *Trace) error {
	last := tr.Last()
	suffix, err := gen.WitnessEG(bdd.True, last)
	if err != nil {
		return fmt.Errorf("core: extending to fair path: %w", err)
	}
	base := len(tr.States) - 1 // suffix state 0 == last
	tr.States = append(tr.States, suffix.States[1:]...)
	tr.CycleStart = base + suffix.CycleStart
	for h, idx := range suffix.FairHits {
		tr.FairHits[h] = base + idx
	}
	for i, n := range suffix.Notes {
		if n != "" && i > 0 {
			tr.note(base+i, n)
		}
	}
	return nil
}

// Witness produces a demonstration trace for a CTL formula that holds at
// the given state. The formula is rewritten to the existential basis;
// the trace is assembled recursively:
//
//   - propositional formulas: the single state;
//   - EX g: one step to a successor satisfying g, then g's witness;
//   - E[f U g]: a ring walk to the nearest g-state, then g's witness;
//   - EG g: a fair lasso of g-states (no recursion into g — the lasso
//     itself is the demonstration);
//   - f ∧ g: a witness of the temporal conjunct (the propositional one
//     is noted); if both conjuncts are temporal the first is followed;
//   - f ∨ g: a witness of whichever disjunct holds;
//   - negations of temporal operators: the single state (set-level
//     justification; no path exhibits a universal fact).
//
// This mirrors what the SMV implementation does: a linear trace that a
// human can follow, not a full tree-shaped proof.
func (gen *Generator) Witness(f *ctl.Formula, from kripke.State) (*Trace, error) {
	basis := ctl.PushNegations(ctl.Existential(f))
	set, err := gen.C.Check(basis)
	if err != nil {
		return nil, err
	}
	if !gen.C.S.Holds(set, from) {
		return nil, ErrNotSatisfied
	}
	return gen.explain(basis, from)
}

// Counterexample produces a counterexample trace for a CTL formula that
// fails at the given state: a witness for its negation (the duality of
// Section 6).
func (gen *Generator) Counterexample(f *ctl.Formula, from kripke.State) (*Trace, error) {
	return gen.Witness(ctl.Not(f), from)
}

// CounterexampleInit checks f at the initial states; when it fails, it
// returns a counterexample from some failing initial state. The boolean
// reports whether the property holds.
func (gen *Generator) CounterexampleInit(f *ctl.Formula) (bool, *Trace, error) {
	set, err := gen.C.Check(f)
	if err != nil {
		return false, nil, err
	}
	s := gen.C.S
	bad := s.M.Diff(s.Init, set)
	if bad == bdd.False {
		return true, nil, nil
	}
	start := s.PickState(bad)
	tr, err := gen.Counterexample(f, start)
	if err != nil {
		return false, nil, err
	}
	return false, tr, nil
}

// explain builds the trace for a basis formula known to hold at from.
func (gen *Generator) explain(f *ctl.Formula, from kripke.State) (*Trace, error) {
	s := gen.C.S
	switch f.Kind {
	case ctl.KTrue, ctl.KAtom, ctl.KEq, ctl.KNeq:
		tr := &Trace{S: s, CycleStart: -1, FairHits: map[int]int{}}
		tr.States = append(tr.States, from)
		tr.note(0, f.String())
		return tr, nil
	case ctl.KFalse:
		return nil, ErrNotSatisfied
	case ctl.KNot:
		// ¬(temporal) or negative literal: set-level fact, single state.
		tr := &Trace{S: s, CycleStart: -1, FairHits: map[int]int{}}
		tr.States = append(tr.States, from)
		tr.note(0, f.String())
		return tr, nil
	case ctl.KAnd:
		lTemp := !ctl.IsPropositional(f.L)
		rTemp := !ctl.IsPropositional(f.R)
		pick := f.L
		if !lTemp && rTemp {
			pick = f.R
		}
		tr, err := gen.explain(pick, from)
		if err != nil {
			return nil, err
		}
		tr.note(0, f.String())
		return tr, nil
	case ctl.KOr:
		lset, err := gen.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		if s.Holds(lset, from) {
			return gen.explain(f.L, from)
		}
		return gen.explain(f.R, from)
	case ctl.KEX:
		inner, err := gen.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		tr, err := gen.WitnessEX(inner, from, false)
		if err != nil {
			return nil, err
		}
		return gen.continueAt(tr, f.L)
	case ctl.KEU:
		lset, err := gen.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		rset, err := gen.C.Check(f.R)
		if err != nil {
			return nil, err
		}
		// A reorder during f.R's fixpoints invalidates the local copy of
		// lset; the memoized entry was rewritten, so re-fetch it.
		lset, _ = gen.C.Check(f.L)
		tr, err := gen.WitnessEU(lset, rset, from, false)
		if err != nil {
			return nil, err
		}
		return gen.continueAt(tr, f.R)
	case ctl.KEG:
		inner, err := gen.C.Check(f.L)
		if err != nil {
			return nil, err
		}
		return gen.WitnessEG(inner, from)
	default:
		return nil, fmt.Errorf("core: explain on non-basis formula %s", f)
	}
}

// continueAt recursively explains the sub-obligation g at the final
// state of tr and splices the resulting trace on. If g's witness is a
// single state the trace is merely annotated.
func (gen *Generator) continueAt(tr *Trace, g *ctl.Formula) (*Trace, error) {
	if ctl.IsPropositional(g) {
		tr.note(len(tr.States)-1, g.String())
		return tr, nil
	}
	cont, err := gen.explain(g, tr.Last())
	if err != nil {
		return nil, err
	}
	base := len(tr.States) - 1
	tr.States = append(tr.States, cont.States[1:]...)
	if cont.CycleStart >= 0 {
		tr.CycleStart = base + cont.CycleStart
	}
	for h, idx := range cont.FairHits {
		tr.FairHits[h] = base + idx
	}
	for i, n := range cont.Notes {
		if n != "" {
			tr.note(base+i, n)
		}
	}
	return tr, nil
}
