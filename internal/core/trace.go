// Package core implements the paper's primary contribution (Section 6):
// generation of counterexamples and witnesses for symbolic CTL model
// checking under fairness constraints.
//
// A witness for EG f under fairness constraints H is an infinite fair
// path represented finitely as a lasso: a prefix followed by a repeating
// cycle on which every h ∈ H occurs at least once. The generator walks
// the saved approximation sequences ("onion rings") of the fair-EG inner
// fixpoints greedily toward the nearest fairness constraint, then closes
// the cycle, restarting further down the DAG of strongly connected
// components when the cycle cannot be closed (Figures 1 and 2 of the
// paper). Witnesses for E[f U g] and EX f reduce to finite ring walks
// optionally extended to fair lassos.
package core

import (
	"fmt"
	"strings"

	"repro/internal/kripke"
)

// Trace is a finite representation of a witness or counterexample path.
// States lists distinct consecutive states; if CycleStart >= 0 the path
// is a lasso: after the last state execution continues at
// States[CycleStart]. If CycleStart < 0 the trace is a finite path
// (enough to demonstrate a reachability witness when fairness is not in
// play).
type Trace struct {
	S          *kripke.Symbolic
	States     []kripke.State
	CycleStart int

	// FairHits[k] is the index in States (within the cycle) where the
	// k-th fairness constraint of the structure is satisfied; nil when
	// not applicable.
	FairHits map[int]int

	// Notes carries per-state annotations (e.g. which subformula a state
	// demonstrates); indexed like States, entries may be empty.
	Notes []string
}

// Len returns the total number of states (prefix + cycle).
func (t *Trace) Len() int { return len(t.States) }

// PrefixLen returns the number of states strictly before the cycle; for
// finite traces this is Len().
func (t *Trace) PrefixLen() int {
	if t.CycleStart < 0 {
		return len(t.States)
	}
	return t.CycleStart
}

// CycleLen returns the number of states on the cycle (0 for finite
// traces).
func (t *Trace) CycleLen() int {
	if t.CycleStart < 0 {
		return 0
	}
	return len(t.States) - t.CycleStart
}

// IsLasso reports whether the trace ends in a cycle.
func (t *Trace) IsLasso() bool { return t.CycleStart >= 0 }

// First returns the first state.
func (t *Trace) First() kripke.State { return t.States[0] }

// Last returns the last listed state.
func (t *Trace) Last() kripke.State { return t.States[len(t.States)-1] }

// note sets the annotation for state index i, growing Notes as needed.
func (t *Trace) note(i int, msg string) {
	for len(t.Notes) < len(t.States) {
		t.Notes = append(t.Notes, "")
	}
	if t.Notes[i] != "" && msg != "" {
		t.Notes[i] += "; " + msg
	} else if msg != "" {
		t.Notes[i] = msg
	}
}

// String renders the trace in an SMV-like style: one state per line,
// with the loop point marked.
func (t *Trace) String() string {
	var sb strings.Builder
	for i, st := range t.States {
		if t.CycleStart == i {
			sb.WriteString("-- loop starts here --\n")
		}
		fmt.Fprintf(&sb, "state %d: %s", i, t.S.FormatState(st))
		if i < len(t.Notes) && t.Notes[i] != "" {
			fmt.Fprintf(&sb, "   (%s)", t.Notes[i])
		}
		sb.WriteByte('\n')
	}
	if t.IsLasso() {
		fmt.Fprintf(&sb, "-- back to state %d --\n", t.CycleStart)
	}
	return sb.String()
}

// DeltaString renders the trace showing, after the first state, only the
// variables that changed — the compact style SMV uses for long circuit
// traces.
func (t *Trace) DeltaString() string {
	var sb strings.Builder
	var prev kripke.State
	for i, st := range t.States {
		if t.CycleStart == i {
			sb.WriteString("-- loop starts here --\n")
		}
		fmt.Fprintf(&sb, "state %d:", i)
		for vi, v := range t.S.Vars {
			if prev == nil || prev[vi] != st[vi] {
				val := "0"
				if st[vi] {
					val = "1"
				}
				fmt.Fprintf(&sb, " %s=%s", v.Name, val)
			}
		}
		if i < len(t.Notes) && t.Notes[i] != "" {
			fmt.Fprintf(&sb, "   (%s)", t.Notes[i])
		}
		sb.WriteByte('\n')
		prev = st
	}
	if t.IsLasso() {
		fmt.Fprintf(&sb, "-- back to state %d --\n", t.CycleStart)
	}
	return sb.String()
}
