package kripke

import "repro/internal/bdd"

// Conjunctively partitioned transition relations. Building the
// monolithic BDD R(v,v′) = ⋀ᵢ Cᵢ(v,v′) can be the bottleneck on large
// models; image computation can instead conjoin the clusters one at a
// time, quantifying each variable out as soon as no remaining cluster
// mentions it ("early quantification"). The SMV lineage of checkers
// uses exactly this technique; Image/Preimage switch to it automatically
// when clusters are installed.

// partition holds the clusters and the precomputed quantification
// schedules for both directions.
type partition struct {
	clusters []bdd.Ref
	// preSched[i]: cube of next-state variables to quantify right after
	// conjoining clusters[i] during Preimage (they appear in no later
	// cluster). preFree: next vars in no cluster at all.
	preSched []bdd.Ref
	preFree  bdd.Ref
	// imgSched/imgFree: same for current-state variables during Image.
	imgSched []bdd.Ref
	imgFree  bdd.Ref
}

// SetClusters installs a conjunctive partition of the transition
// relation (the conjunction of the clusters must equal Trans; the
// builder guarantees this). Passing an empty slice removes the
// partition, reverting Image/Preimage to the monolithic relation.
func (s *Symbolic) SetClusters(clusters []bdd.Ref) {
	if s.part != nil {
		for _, c := range s.part.clusters {
			s.M.Unprotect(c)
		}
		for _, c := range s.part.preSched {
			s.M.Unprotect(c)
		}
		for _, c := range s.part.imgSched {
			s.M.Unprotect(c)
		}
		s.M.Unprotect(s.part.preFree)
		s.M.Unprotect(s.part.imgFree)
		s.part = nil
	}
	if len(clusters) == 0 {
		return
	}
	m := s.M
	p := &partition{}
	for _, c := range clusters {
		p.clusters = append(p.clusters, m.Protect(c))
	}

	isNext := make(map[int]bool, len(s.Vars))
	isCur := make(map[int]bool, len(s.Vars))
	for _, v := range s.Vars {
		isNext[v.Next] = true
		isCur[v.Cur] = true
	}

	build := func(keep func(int) bool) (scheds []bdd.Ref, free bdd.Ref) {
		// lastUse[v] = largest cluster index whose support contains v.
		lastUse := map[int]int{}
		for i, c := range p.clusters {
			for _, v := range m.Support(c) {
				if keep(v) {
					lastUse[v] = i
				}
			}
		}
		byCluster := make([][]int, len(p.clusters))
		var unused []int
		for _, sv := range s.Vars {
			var v int
			if keep(sv.Next) {
				v = sv.Next
			} else {
				v = sv.Cur
			}
			if i, ok := lastUse[v]; ok {
				byCluster[i] = append(byCluster[i], v)
			} else {
				unused = append(unused, v)
			}
		}
		for _, vs := range byCluster {
			scheds = append(scheds, m.Protect(m.Cube(vs)))
		}
		return scheds, m.Protect(m.Cube(unused))
	}
	p.preSched, p.preFree = build(func(v int) bool { return isNext[v] })
	p.imgSched, p.imgFree = build(func(v int) bool { return isCur[v] })
	s.part = p
}

// HasClusters reports whether a conjunctive partition is installed.
func (s *Symbolic) HasClusters() bool { return s.part != nil }

// NumClusters returns the number of installed clusters (0 if none).
func (s *Symbolic) NumClusters() int {
	if s.part == nil {
		return 0
	}
	return len(s.part.clusters)
}

// preimagePart computes EX to using the partition with early
// quantification.
func (s *Symbolic) preimagePart(to bdd.Ref) bdd.Ref {
	m := s.M
	p := s.part
	acc := s.ToNext(to)
	// Quantify next-vars that no cluster mentions immediately.
	acc = m.Exists(acc, p.preFree)
	for i, c := range p.clusters {
		acc = m.AndExists(acc, c, p.preSched[i])
	}
	return acc
}

// imagePart computes successors of from using the partition.
func (s *Symbolic) imagePart(from bdd.Ref) bdd.Ref {
	m := s.M
	p := s.part
	acc := m.Exists(from, p.imgFree)
	for i, c := range p.clusters {
		acc = m.AndExists(acc, c, p.imgSched[i])
	}
	return s.ToCur(acc)
}
