package kripke

import "repro/internal/bdd"

// Conjunctively partitioned transition relations with early
// quantification (Burch/Clarke/Long; the technique the SMV lineage of
// checkers uses for its image computation). Building the monolithic BDD
// R(v,v′) = ⋀ᵢ Cᵢ(v,v′) can be the bottleneck on large models; the
// relational product can instead conjoin the clusters one at a time,
// quantifying each variable out at the earliest cluster after which no
// remaining cluster mentions it. Image/Preimage switch to the clustered
// path automatically when a Partition is installed.
//
// Installation runs two passes:
//
//  1. an affinity pass that drops trivial conjuncts, deduplicates, and
//     merges clusters whose support is contained in another cluster's
//     (such conjuncts can never enable earlier quantification on their
//     own — folding them in shortens the chain for free);
//  2. a greedy schedule per direction (next-state variables for
//     Preimage, current-state variables for Image): repeatedly pick the
//     cluster that kills the most quantification variables — variables
//     appearing in no other unscheduled cluster — breaking ties toward
//     clusters whose variables are closest to dead and then toward
//     smaller BDDs, so that the accumulator's support shrinks as early
//     in the chain as possible.

// Partition holds the clusters of a conjunctive transition partition and
// the precomputed early-quantification schedules for both image
// directions.
type Partition struct {
	clusters []bdd.Ref
	pre      schedule // Preimage: quantifies next-state variables
	img      schedule // Image: quantifies current-state variables
}

// schedule is one direction's evaluation plan: conjoin clusters[order[k]]
// for k = 0, 1, ..., quantifying cubes[k] immediately afterwards. free is
// the cube of quantification variables appearing in no cluster at all;
// they are quantified from the argument before the chain starts.
type schedule struct {
	order []int
	cubes []bdd.Ref
	free  bdd.Ref
}

// NumClusters returns the number of clusters in the partition.
func (p *Partition) NumClusters() int { return len(p.clusters) }

// Clusters returns a copy of the cluster slice (in installation order).
func (p *Partition) Clusters() []bdd.Ref {
	return append([]bdd.Ref(nil), p.clusters...)
}

// PreimageOrder returns the cluster evaluation order used by Preimage.
func (p *Partition) PreimageOrder() []int {
	return append([]int(nil), p.pre.order...)
}

// ImageOrder returns the cluster evaluation order used by Image.
func (p *Partition) ImageOrder() []int {
	return append([]int(nil), p.img.order...)
}

// RelStats counts relational-product work on a Symbolic structure, for
// the monolithic, conjunctive and disjunctive paths. PeakLiveNodes is
// the manager's live-node high-water mark sampled at every image step
// (and at every cluster/component step on the partitioned paths), which
// is where the intermediate-result blow-up of a bad schedule shows up;
// parallel schedules run on the shared manager, so the same counter
// covers them with no off-manager memory to add in.
type RelStats struct {
	PreimageCalls uint64
	ImageCalls    uint64
	ClusterSteps  uint64 // AndExists steps taken: chain links (conjunctive) + component products (disjunctive); 0 on the monolithic path
	DisjunctSteps uint64 // component products taken by the disjunctive image (subset of ClusterSteps)
	// ParallelBatches counts disjunctive image calls whose component
	// products ran as concurrent jobs of a shared-engine parallel
	// section (see bdd.RunParallel).
	ParallelBatches uint64
	PeakLiveNodes   int

	// ReachableReuses counts Reachable calls answered from the cache
	// (EnableReachableCache / SetReachable) without running the fixpoint —
	// the counter a warm-start test asserts on to prove reachability was
	// actually skipped.
	ReachableReuses uint64

	// Computed-cache traffic of the underlying manager (ITE, binary and
	// AndExists lookups all funnel through these counters) accumulated
	// since the last ResetRelStats, and the unique-table load factor
	// sampled when RelStats() is called. Together they make the
	// normalization win of complement edges visible without a profiler:
	// higher hit rate, same load, fewer nodes.
	CacheLookups    uint64
	CacheHits       uint64
	UniqueTableLoad float64
}

// CacheHitRate returns the computed-cache hit rate in [0,1], or 0 when
// no lookups have happened yet.
func (r RelStats) CacheHitRate() float64 {
	if r.CacheLookups == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.CacheLookups)
}

// RelStats returns the accumulated relational-product counters.
func (s *Symbolic) RelStats() RelStats {
	out := s.relStats
	out.CacheLookups = s.M.Stats.CacheLookups - s.stats0.CacheLookups
	out.CacheHits = s.M.Stats.CacheHits - s.stats0.CacheHits
	out.UniqueTableLoad = s.M.UniqueTableLoadFactor()
	return out
}

// ResetRelStats zeroes the relational-product counters.
func (s *Symbolic) ResetRelStats() {
	s.relStats = RelStats{}
	s.stats0 = s.M.Stats
}

func (s *Symbolic) noteLiveNodes() {
	if n := s.M.NumNodes(); n > s.relStats.PeakLiveNodes {
		s.relStats.PeakLiveNodes = n
	}
}

// SetClusters installs a conjunctive partition of the transition
// relation (the conjunction of the clusters must equal Trans; the
// builder and the SMV compiler guarantee this). Passing an empty slice
// removes the partition, reverting Image/Preimage to the monolithic
// relation.
func (s *Symbolic) SetClusters(clusters []bdd.Ref) {
	clusters = s.affinityMerge(clusters)
	if len(clusters) == 0 && !s.transValid {
		// The deferred monolithic relation is derived from the partition
		// being removed; pin it down before the clusters go away.
		s.Trans()
	}
	if s.part != nil {
		for _, c := range s.part.clusters {
			s.M.Unprotect(c)
		}
		s.part.pre.release(s.M)
		s.part.img.release(s.M)
		s.part = nil
	}
	if len(clusters) == 0 {
		return
	}
	m := s.M
	p := &Partition{}
	for _, c := range clusters {
		p.clusters = append(p.clusters, m.Protect(c))
	}

	isNext := make(map[int]bool, len(s.Vars))
	isCur := make(map[int]bool, len(s.Vars))
	for _, v := range s.Vars {
		isNext[v.Next] = true
		isCur[v.Cur] = true
	}
	p.pre = s.buildSchedule(p.clusters, func(v int) bool { return isNext[v] }, true)
	p.img = s.buildSchedule(p.clusters, func(v int) bool { return isCur[v] }, false)
	s.part = p
	// If no monolithic relation was ever installed (trans still True),
	// defer it: Trans() will conjoin the clusters on first demand. On
	// large models that conjunction is the expensive object this
	// partition exists to avoid, so nothing should pay for it eagerly.
	if s.trans == bdd.True {
		s.transValid = false
	}
}

func (sc *schedule) release(m *bdd.Manager) {
	for _, c := range sc.cubes {
		m.Unprotect(c)
	}
	m.Unprotect(sc.free)
}

// affinityMerge is the pre-scheduling cleanup pass: drop trivially true
// conjuncts, deduplicate, and fold any cluster whose support is a subset
// of another cluster's into that cluster. The result preserves the
// conjunction.
func (s *Symbolic) affinityMerge(clusters []bdd.Ref) []bdd.Ref {
	m := s.M
	var out []bdd.Ref
	seen := map[bdd.Ref]bool{}
	for _, c := range clusters {
		if c == bdd.True || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	if len(out) < 2 {
		return out
	}
	sup := make([]map[int]bool, len(out))
	for i, c := range out {
		sup[i] = map[int]bool{}
		for _, v := range m.Support(c) {
			sup[i][v] = true
		}
	}
	subset := func(a, b map[int]bool) bool {
		if len(a) > len(b) {
			return false
		}
		for v := range a {
			if !b[v] {
				return false
			}
		}
		return true
	}
	alive := make([]bool, len(out))
	for i := range alive {
		alive[i] = true
	}
	for i := range out {
		if !alive[i] {
			continue
		}
		for j := range out {
			if i == j || !alive[j] || !alive[i] {
				continue
			}
			// Fold i into j when sup(i) ⊆ sup(j); on equal supports keep
			// the lower index as the host so the pass is deterministic.
			if subset(sup[i], sup[j]) && (len(sup[i]) < len(sup[j]) || i < j) {
				host, dead := j, i
				if len(sup[i]) == len(sup[j]) {
					host, dead = i, j
				}
				out[host] = m.And(out[host], out[dead])
				alive[dead] = false
			}
		}
	}
	var merged []bdd.Ref
	for i, c := range out {
		if alive[i] && c != bdd.True {
			merged = append(merged, c)
		}
	}
	return merged
}

// buildSchedule computes one direction's greedy early-quantification
// schedule. keep selects the quantification variables; protect the cubes
// since they live as long as the partition.
func (s *Symbolic) buildSchedule(clusters []bdd.Ref, keep func(int) bool, nextDir bool) schedule {
	m := s.M
	n := len(clusters)
	// sup[i]: quantification variables in cluster i; occ[v]: number of
	// unscheduled clusters mentioning v.
	sup := make([][]int, n)
	occ := map[int]int{}
	for i, c := range clusters {
		for _, v := range m.Support(c) {
			if keep(v) {
				sup[i] = append(sup[i], v)
				occ[v]++
			}
		}
	}

	var sc schedule
	scheduled := make([]bool, n)
	for step := 0; step < n; step++ {
		best, bestKills := -1, -1
		var bestAffinity float64
		bestSize := 0
		for i := 0; i < n; i++ {
			if scheduled[i] {
				continue
			}
			kills := 0
			affinity := 0.0
			for _, v := range sup[i] {
				if occ[v] == 1 {
					kills++
				}
				affinity += 1.0 / float64(occ[v])
			}
			size := m.Size(clusters[i])
			better := false
			switch {
			case kills != bestKills:
				better = kills > bestKills
			case affinity != bestAffinity:
				better = affinity > bestAffinity
			default:
				better = size < bestSize
			}
			if best < 0 || better {
				best, bestKills, bestAffinity, bestSize = i, kills, affinity, size
			}
		}
		scheduled[best] = true
		var dead []int
		for _, v := range sup[best] {
			occ[v]--
			if occ[v] == 0 {
				dead = append(dead, v)
			}
		}
		sc.order = append(sc.order, best)
		sc.cubes = append(sc.cubes, m.Protect(m.Cube(dead)))
	}

	// Quantification variables mentioned by no cluster at all: quantified
	// from the argument before the chain starts.
	var unused []int
	for _, sv := range s.Vars {
		v := sv.Cur
		if nextDir {
			v = sv.Next
		}
		if _, mentioned := occ[v]; !mentioned {
			unused = append(unused, v)
		}
	}
	sc.free = m.Protect(m.Cube(unused))
	return sc
}

// EnablePartition toggles use of an installed partition without
// discarding it, so benchmarks and differential tests can flip between
// the clustered and the monolithic path on the same structure.
func (s *Symbolic) EnablePartition(on bool) { s.partOff = !on }

// PartitionEnabled reports whether Image/Preimage currently use the
// installed partition.
func (s *Symbolic) PartitionEnabled() bool { return s.part != nil && !s.partOff }

// Partition returns the installed partition, or nil.
func (s *Symbolic) Partition() *Partition { return s.part }

// HasClusters reports whether a conjunctive partition is installed.
func (s *Symbolic) HasClusters() bool { return s.part != nil }

// NumClusters returns the number of installed clusters (0 if none).
func (s *Symbolic) NumClusters() int {
	if s.part == nil {
		return 0
	}
	return len(s.part.clusters)
}

// preimagePart computes EX to over the cluster schedule with early
// quantification. The accumulator is registered so the per-step reorder
// safe point can fire mid-chain: the structure's hook rewrites the
// clusters and cubes, the registration rewrites acc.
func (s *Symbolic) preimagePart(to bdd.Ref) bdd.Ref {
	m := s.M
	p := s.part
	acc := s.ToNext(to)
	// Quantify next-state vars that no cluster mentions immediately.
	acc = m.Exists(acc, p.pre.free)
	id := m.RegisterRefs(&acc)
	for k := range p.pre.order {
		m.ReorderIfNeeded()
		acc = m.AndExists(acc, p.clusters[p.pre.order[k]], p.pre.cubes[k])
		s.relStats.ClusterSteps++
		s.noteLiveNodes()
	}
	m.Unregister(id)
	return acc
}

// imagePart computes successors of from over the cluster schedule.
func (s *Symbolic) imagePart(from bdd.Ref) bdd.Ref {
	m := s.M
	p := s.part
	acc := m.Exists(from, p.img.free)
	id := m.RegisterRefs(&acc)
	for k := range p.img.order {
		m.ReorderIfNeeded()
		acc = m.AndExists(acc, p.clusters[p.img.order[k]], p.img.cubes[k])
		s.relStats.ClusterSteps++
		s.noteLiveNodes()
	}
	m.Unregister(id)
	return s.ToCur(acc)
}
