package kripke

import "testing"

// TestReachableCacheReuse: with the cache enabled the fixpoint runs
// once; later calls return the identical set and count as reuses.
func TestReachableCacheReuse(t *testing.T) {
	s := twoBitCounter(t)
	s.EnableReachableCache()
	r1, it1 := s.Reachable()
	if s.RelStats().ReachableReuses != 0 {
		t.Fatal("first Reachable must not count as a reuse")
	}
	r2, it2 := s.Reachable()
	if r2 != r1 || it2 != it1 {
		t.Fatalf("cached Reachable diverged: (%v,%d) vs (%v,%d)", r2, it2, r1, it1)
	}
	if got := s.RelStats().ReachableReuses; got != 1 {
		t.Fatalf("ReachableReuses = %d, want 1", got)
	}
	if c, it, ok := s.ReachableCached(); !ok || c != r1 || it != it1 {
		t.Fatal("ReachableCached does not expose the cache")
	}
}

// TestReachableCacheOffByDefault: without EnableReachableCache nothing
// sticks and nothing is counted.
func TestReachableCacheOffByDefault(t *testing.T) {
	s := twoBitCounter(t)
	s.Reachable()
	s.Reachable()
	if got := s.RelStats().ReachableReuses; got != 0 {
		t.Fatalf("ReachableReuses = %d with caching off", got)
	}
	if _, _, ok := s.ReachableCached(); ok {
		t.Fatal("cache populated without EnableReachableCache")
	}
}

// TestSetReachableSkipsFixpoint: a seeded set is served as-is — the
// warm-start contract — and survives image calls that trigger GC.
func TestSetReachableSkipsFixpoint(t *testing.T) {
	s := twoBitCounter(t)
	want, wantIters := s.Reachable() // computed without caching
	s.SetReachable(want, wantIters)
	got, iters := s.Reachable()
	if got != want || iters != wantIters {
		t.Fatal("seeded reachable set not served back")
	}
	if s.RelStats().ReachableReuses != 1 {
		t.Fatal("seeded Reachable call not counted as reuse")
	}
	// The seed is protected: a GC must not collect it.
	s.M.GC()
	got2, _ := s.Reachable()
	if s.CountStates(got2) != 4 {
		t.Fatalf("seeded set damaged by GC: %v states", s.CountStates(got2))
	}
}
