package kripke

import (
	"strconv"
	"sync"

	"repro/internal/bdd"
)

// Disjunctively partitioned transition relations for asynchronous
// interleaving models. Where the conjunctive partition (partition.go)
// factors a synchronous relation R = ⋀ᵢ Cᵢ, an interleaved model is
// naturally a union of per-process step relations
//
//	R(v,v′) = ⋁ᵢ Tᵢ(v,v′)
//
// (each Tᵢ: "process i takes a step, everything it does not drive is
// framed"), and the image distributes over the union:
//
//	Image(S) = ⋃ᵢ ∃v.(S ∧ Tᵢ)
//
// Each component gets its own quantification cubes: variables outside
// Tᵢ's support are quantified from the argument *before* the relational
// product (∃x.(S ∧ T) = (∃x.S) ∧ T when x ∉ sup(T)), shrinking the
// operand AndExists actually sees. Components are independent — no
// chain threads an accumulator through them — which is what makes the
// disjunctive image parallelizable: with SetWorkers(n>1) the
// per-component AndExists calls run in worker goroutines, each inside a
// thread-confined scratch Manager aligned to the main manager's
// variable order, and the coordinator OR-merges the copied-back results
// (see DESIGN.md §5 for the worker-safety model and the tradeoff
// against pipelining on the shared manager).
//
// Reachability additionally tracks a per-component frontier: fed[i] is
// the set of states already expanded through component i, so a round
// only feeds each component the states it has not seen. Sequentially
// the components chain — states discovered by component i feed
// component i+1 within the same round — while the parallel schedule
// expands all components from the same snapshot and merges.

// component is one disjunct Tᵢ with its precomputed quantification
// cubes for both image directions.
type component struct {
	rel  bdd.Ref
	name string

	imgCube bdd.Ref // current-state vars in sup(rel): quantified inside AndExists
	imgFree bdd.Ref // current-state vars absent from rel: pre-quantified from the argument
	preCube bdd.Ref // next-state vars in sup(rel)
	preFree bdd.Ref // next-state vars absent from rel
}

// scratch is one component's thread-confined evaluation arena for the
// parallel schedule. The component relation is copied in once and
// cached; the copy (and the arena's operation caches, which persist
// between image calls) is invalidated whenever the main manager
// reorders, since the arenas must agree on the variable order for
// CopyTo to be meaningful.
type scratch struct {
	m       *bdd.Manager
	rel     bdd.Ref // cached component copy, protected in m
	haveRel bool
	valid   bool
}

// scratchGCThreshold: collect a scratch arena after a batch once it
// holds this many nodes (only the cached component copy survives).
// Kept small: arena garbage left between batches is live memory that
// counts against the peak, and collecting a few thousand nodes costs
// less than the CopyTo traffic the batch already paid.
const scratchGCThreshold = 1 << 12

// Disjunct holds the components of a disjunctive transition partition
// and their scratch arenas.
type Disjunct struct {
	comps   []component
	scratch []scratch
}

// NumComponents returns the number of disjunctive components.
func (d *Disjunct) NumComponents() int { return len(d.comps) }

// ComponentNames returns the component display names in installation
// order.
func (d *Disjunct) ComponentNames() []string {
	out := make([]string, len(d.comps))
	for i := range d.comps {
		out[i] = d.comps[i].name
	}
	return out
}

// Components returns a copy of the component relations.
func (d *Disjunct) Components() []bdd.Ref {
	out := make([]bdd.Ref, len(d.comps))
	for i := range d.comps {
		out[i] = d.comps[i].rel
	}
	return out
}

// invalidateScratch drops every cached scratch arena; called from the
// structure's reorder hook (the arenas' variable orders no longer match
// the main manager) and when the partition is replaced.
func (d *Disjunct) invalidateScratch() {
	for i := range d.scratch {
		d.scratch[i] = scratch{}
	}
}

// SetDisjuncts installs a disjunctive partition of the transition
// relation: the union of the components must equal Trans (the SMV
// compiler guarantees this for process models). Constant-false
// components are dropped. names supplies display names per component
// (nil for positional defaults). Passing an empty slice removes the
// partition. Installation computes the per-component quantification
// cubes from the components' supports.
//
// The disjunctive path starts disabled; EnableDisjunct(true) switches
// Image/Preimage/Reachable over to it.
func (s *Symbolic) SetDisjuncts(comps []bdd.Ref, names []string) {
	m := s.M
	if s.disj != nil {
		for i := range s.disj.comps {
			c := &s.disj.comps[i]
			m.Unprotect(c.rel)
			m.Unprotect(c.imgCube)
			m.Unprotect(c.imgFree)
			m.Unprotect(c.preCube)
			m.Unprotect(c.preFree)
		}
		s.disj = nil
	}
	if len(comps) == 0 {
		return
	}
	isCur := make(map[int]bool, len(s.Vars))
	isNext := make(map[int]bool, len(s.Vars))
	for _, v := range s.Vars {
		isCur[v.Cur] = true
		isNext[v.Next] = true
	}
	d := &Disjunct{}
	for i, rel := range comps {
		if rel == bdd.False {
			continue
		}
		name := ""
		if names != nil && i < len(names) {
			name = names[i]
		}
		if name == "" {
			name = "component#" + strconv.Itoa(i)
		}
		inSup := map[int]bool{}
		for _, v := range m.Support(rel) {
			inSup[v] = true
		}
		var curIn, curOut, nextIn, nextOut []int
		for _, sv := range s.Vars {
			if inSup[sv.Cur] {
				curIn = append(curIn, sv.Cur)
			} else {
				curOut = append(curOut, sv.Cur)
			}
			if inSup[sv.Next] {
				nextIn = append(nextIn, sv.Next)
			} else {
				nextOut = append(nextOut, sv.Next)
			}
		}
		d.comps = append(d.comps, component{
			rel:     m.Protect(rel),
			name:    name,
			imgCube: m.Protect(m.Cube(curIn)),
			imgFree: m.Protect(m.Cube(curOut)),
			preCube: m.Protect(m.Cube(nextIn)),
			preFree: m.Protect(m.Cube(nextOut)),
		})
	}
	d.scratch = make([]scratch, len(d.comps))
	s.disj = d
	// Defer the monolithic relation when nothing installed one: Trans()
	// will OR the components on first demand, exactly as the conjunctive
	// partition defers the cluster conjunction.
	if s.trans == bdd.True && s.part == nil {
		s.transValid = false
	}
}

// EnableDisjunct toggles use of an installed disjunctive partition.
// When enabled it takes precedence over a conjunctive partition, so
// differential tests can flip one structure between all three image
// strategies (disjunctive, conjunctive, monolithic).
func (s *Symbolic) EnableDisjunct(on bool) { s.disjOn = on }

// DisjunctEnabled reports whether Image/Preimage currently use the
// disjunctive partition.
func (s *Symbolic) DisjunctEnabled() bool { return s.disj != nil && s.disjOn }

// Disjunct returns the installed disjunctive partition, or nil.
func (s *Symbolic) Disjunct() *Disjunct { return s.disj }

// NumDisjuncts returns the number of installed disjunctive components
// (0 if none).
func (s *Symbolic) NumDisjuncts() int {
	if s.disj == nil {
		return 0
	}
	return len(s.disj.comps)
}

// SetWorkers sets the number of goroutines the disjunctive image uses
// to evaluate components (n <= 1: sequential, on the main manager).
func (s *Symbolic) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured disjunctive worker count.
func (s *Symbolic) Workers() int { return s.workers }

// imageDisjunct computes successors over the disjunctive components.
func (s *Symbolic) imageDisjunct(from bdd.Ref) bdd.Ref {
	args := make([]bdd.Ref, len(s.disj.comps))
	for i := range args {
		args[i] = from
	}
	return s.ToCur(s.disjunctApply(args, false))
}

// preimageDisjunct computes EX to over the disjunctive components.
func (s *Symbolic) preimageDisjunct(to bdd.Ref) bdd.Ref {
	next := s.ToNext(to)
	args := make([]bdd.Ref, len(s.disj.comps))
	for i := range args {
		args[i] = next
	}
	return s.disjunctApply(args, true)
}

// disjunctApply evaluates ⋁ᵢ ∃cubeᵢ.(argsᵢ ∧ Tᵢ) and returns the union
// (over next-state variables for the image direction, current-state for
// the preimage direction). args holds one argument per component —
// identical refs for a plain image, per-component deltas for the
// reachability sweep; bdd.False entries are skipped.
func (s *Symbolic) disjunctApply(args []bdd.Ref, pre bool) bdd.Ref {
	if s.workers > 1 && len(s.disj.comps) > 1 {
		return s.disjunctApplyParallel(args, pre)
	}
	return s.disjunctApplySeq(args, pre)
}

// disjunctApplySeq is the sequential schedule: every component's
// relational product runs on the main manager (sharing its AndExists
// cache), with a reorder safe point between components.
func (s *Symbolic) disjunctApplySeq(args []bdd.Ref, pre bool) bdd.Ref {
	m := s.M
	d := s.disj
	res := bdd.False
	ptrs := make([]*bdd.Ref, 0, len(args)+1)
	ptrs = append(ptrs, &res)
	for i := range args {
		ptrs = append(ptrs, &args[i])
	}
	id := m.RegisterRefs(ptrs...)
	for i := range d.comps {
		if args[i] == bdd.False {
			continue
		}
		m.ReorderIfNeeded()
		c := &d.comps[i]
		cube, free := c.imgCube, c.imgFree
		if pre {
			cube, free = c.preCube, c.preFree
		}
		part := m.AndExists(m.Exists(args[i], free), c.rel, cube)
		res = m.Or(res, part)
		s.relStats.ClusterSteps++
		s.relStats.DisjunctSteps++
		s.noteLiveNodes()
	}
	m.Unregister(id)
	return res
}

// disjunctTask is one component's unit of parallel work. The coordinator
// fills the scratch-manager operand refs before the workers start and
// reads res/peak after they join, so no field is accessed concurrently.
type disjunctTask struct {
	sc        *scratch
	arg, cube bdd.Ref // operands in sc.m
	res       bdd.Ref // result in sc.m, protected until copied back
	peak      int     // sc.m nodes after the product and the arena sweep
	stats0    bdd.Stats
}

// disjunctApplyParallel is the worker schedule. The main manager is
// only ever touched by the calling goroutine: it projects and copies
// the operands into per-component scratch arenas up front, the workers
// run AndExists entirely inside their (mutually disjoint) arenas, and
// after the join the coordinator copies the results back and OR-merges
// them. Automatic reordering is paused for the duration so the arenas'
// variable orders stay aligned with the main manager's.
func (s *Symbolic) disjunctApplyParallel(args []bdd.Ref, pre bool) bdd.Ref {
	m := s.M
	d := s.disj
	resume := m.PauseAutoReorder()
	defer resume()

	var tasks []*disjunctTask
	for i := range d.comps {
		if args[i] == bdd.False {
			continue
		}
		c := &d.comps[i]
		cube, free := c.imgCube, c.imgFree
		if pre {
			cube, free = c.preCube, c.preFree
		}
		proj := m.Exists(args[i], free)
		if proj == bdd.False {
			continue
		}
		sc := &d.scratch[i]
		if !sc.valid {
			// Scratch arenas must share the main manager's node
			// representation or CopyTo would refuse the transfer.
			var opts []bdd.Option
			if m.ComplementEdgesDisabled() {
				opts = append(opts, bdd.DisableComplementEdges())
			}
			sc.m = bdd.NewWithOrder(m.Order(), opts...)
			sc.haveRel = false
			sc.valid = true
		}
		if !sc.haveRel {
			sc.rel = sc.m.Protect(m.CopyTo(sc.m, c.rel))
			sc.haveRel = true
		}
		tasks = append(tasks, &disjunctTask{
			sc:     sc,
			arg:    m.CopyTo(sc.m, proj),
			cube:   m.CopyTo(sc.m, cube),
			stats0: sc.m.Stats,
		})
	}
	if len(tasks) == 0 {
		return bdd.False
	}

	ch := make(chan *disjunctTask)
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t.res = t.sc.m.AndExists(t.arg, t.sc.rel, t.cube)
				// Sweep the arena before the next task: with the result
				// protected, only the cached relation copy and pending results
				// survive, so a batch never holds every component's product
				// garbage at once. GC never moves nodes, so t.res stays valid.
				t.sc.m.Protect(t.res)
				if t.sc.m.NumNodes() > scratchGCThreshold {
					t.sc.m.GC()
				}
				t.peak = t.sc.m.NumNodes()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()

	res := bdd.False
	scratchNodes := 0
	for _, t := range tasks {
		res = m.Or(res, t.sc.m.CopyTo(m, t.res))
		t.sc.m.Unprotect(t.res) // swept by the arena's next in-worker GC
		scratchNodes += t.peak
		// Fold the arena's relational-product cache traffic into the main
		// manager's counters so -stats stays truthful in parallel mode.
		delta := t.sc.m.Stats
		m.Stats.AndExistsCalls += delta.AndExistsCalls - t.stats0.AndExistsCalls
		m.Stats.AndExistsLookups += delta.AndExistsLookups - t.stats0.AndExistsLookups
		m.Stats.AndExistsHits += delta.AndExistsHits - t.stats0.AndExistsHits
		s.relStats.ClusterSteps++
		s.relStats.DisjunctSteps++
	}
	s.relStats.ParallelBatches++
	if scratchNodes > s.relStats.ScratchPeakNodes {
		s.relStats.ScratchPeakNodes = scratchNodes
	}
	s.noteLiveNodesExtra(scratchNodes)
	return res
}

// reachableDisjunct is the disjunctive reachability sweep with
// per-component frontier tracking: fed[i] is the set of states already
// expanded through component i, and each round feeds component i only
// reached ∖ fed[i]. Sequentially the components chain (states found by
// an earlier component feed later components in the same round); with
// workers the round expands every component from the same snapshot and
// merges. Returns the reachable set and the number of rounds.
func (s *Symbolic) reachableDisjunct() (bdd.Ref, int) {
	m := s.M
	d := s.disj
	k := len(d.comps)
	reached := m.Protect(s.Init)
	fed := make([]bdd.Ref, k) // zero value bdd.False
	id := m.OnReorder(func(translate func(bdd.Ref) bdd.Ref) {
		reached = translate(reached)
		for i := range fed {
			fed[i] = translate(fed[i])
		}
	})
	parallel := s.workers > 1 && k > 1
	rounds := 0
	for {
		m.ReorderIfNeeded()
		changed := false
		if parallel {
			args := make([]bdd.Ref, k)
			for i := range d.comps {
				args[i] = m.Diff(reached, fed[i])
			}
			snapshot := reached
			img := s.ToCur(s.disjunctApply(args, false))
			for i := range fed {
				fed[i] = snapshot
			}
			next := m.Or(reached, img)
			if next != reached {
				changed = true
				m.Unprotect(reached)
				reached = m.Protect(next)
			}
		} else {
			for i := range d.comps {
				delta := m.Diff(reached, fed[i])
				if delta == bdd.False {
					continue
				}
				fed[i] = reached
				args := make([]bdd.Ref, k)
				args[i] = delta
				img := s.ToCur(s.disjunctApplySeq(args, false))
				next := m.Or(reached, img)
				if next != reached {
					changed = true
					m.Unprotect(reached)
					reached = m.Protect(next)
				}
			}
		}
		if !changed {
			break
		}
		rounds++
		m.MaybeGC()
	}
	m.Unregister(id)
	m.Unprotect(reached)
	return reached, rounds
}
